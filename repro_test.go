package repro

import (
	"testing"

	"repro/internal/consent"
	"repro/internal/simtime"
)

// TestFacade exercises the public API surface end-to-end at tiny
// scale: the README quickstart must keep working.
func TestFacade(t *testing.T) {
	cfg := TestConfig()
	cfg.Domains = 2_000
	cfg.SharesPerDay = 120
	cfg.ToplistSize = 500
	cfg.CrawlFrom = simtime.Date(2020, 1, 1)
	cfg.CrawlTo = simtime.Date(2020, 6, 30)
	s := NewStudy(cfg)
	if s.World.NumDomains() != 2_000 || s.Toplist.Len() != 2_000 {
		t.Fatalf("study wiring: domains=%d toplist=%d", s.World.NumDomains(), s.Toplist.Len())
	}
	s.RunSocialCrawl(nil)
	if s.Observations.Total == 0 {
		t.Fatal("no captures")
	}
	pts, err := s.AdoptionOverTime(cfg.ToplistSize, 30)
	if err != nil || len(pts) == 0 {
		t.Fatalf("adoption: %v", err)
	}
	vt := s.VantageTable(Table1Snapshot, 500)
	if vt.Totals["us-cloud/default"] == 0 {
		t.Error("vantage table empty")
	}
}

func TestFacadeConsentString(t *testing.T) {
	history := GenerateGVLHistory(DefaultGVLConfig())
	list := &history.Versions[len(history.Versions)-1]
	exp := NewFieldExperiment(1, list)
	exp.Visitors = 500
	sessions := exp.Run()
	res, err := AnalyzeSessions(sessions)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalShown == 0 {
		t.Fatal("no dialogs shown")
	}
	// Find a decided session and decode its consent string via the
	// facade codec. (A second exp.Run() would show no dialogs: every
	// visitor's decision now sits in the global consensu.org store.)
	for _, s := range sessions {
		if s.Decision == consent.DecisionAccept {
			c, err := DecodeConsentString(s.ConsentString)
			if err != nil {
				t.Fatal(err)
			}
			if c.VendorListVersion != list.VendorListVersion {
				t.Errorf("vendor list version = %d", c.VendorListVersion)
			}
			return
		}
	}
	t.Fatal("no accepting session")
}

func TestFacadeStats(t *testing.T) {
	res, err := MannWhitney([]float64{1, 2, 3}, []float64{4, 5, 6})
	if err != nil || res.U != 0 {
		t.Errorf("MannWhitney: %+v, %v", res, err)
	}
	if len(PriorWork()) < 6 {
		t.Error("PriorWork incomplete")
	}
	flow := NewTrustArcFlow(1)
	if run := flow.RunOptOut(0); run.Clicks != 7 {
		t.Errorf("clicks = %d", run.Clicks)
	}
	if !GDPREffective.Valid() || !CCPAEffective.Valid() || GDPREffective >= CCPAEffective {
		t.Error("well-known days broken")
	}
}
