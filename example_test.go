package repro_test

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/tcf"
)

// ExampleDecodeConsentString decodes the TCF v1.1 cookie a consenting
// user ends up storing.
func ExampleDecodeConsentString() {
	// Build the consent string an accept-all decision produces.
	c := tcf.New(time.Date(2020, time.May, 15, 12, 0, 0, 0, time.UTC))
	c.CMPID = 10
	c.VendorListVersion = 183
	c.SetAllPurposes(true)
	c.SetAllVendors(600, true)
	encoded, err := c.Encode()
	if err != nil {
		panic(err)
	}

	decoded, err := repro.DecodeConsentString(encoded)
	if err != nil {
		panic(err)
	}
	fmt.Println("vendor list:", decoded.VendorListVersion)
	fmt.Println("purposes:", len(decoded.PurposesAllowed))
	fmt.Println("vendors granted:", len(decoded.ConsentedVendors()))
	// Output:
	// vendor list: 183
	// purposes: 5
	// vendors granted: 600
}

// ExampleMannWhitney reproduces the statistical test behind Figure 10.
func ExampleMannWhitney() {
	acceptTimes := []float64{2.8, 3.1, 3.2, 3.4, 3.9}
	rejectTimes := []float64{5.9, 6.4, 6.7, 7.2, 8.8}
	res, err := repro.MannWhitney(acceptTimes, rejectTimes)
	if err != nil {
		panic(err)
	}
	fmt.Printf("U=%.0f significant=%v\n", res.U, res.P < 0.05)
	// Output:
	// U=0 significant=true
}

// ExamplePriorWork lists the snapshot studies the paper's longitudinal
// design improves on (Figure 1).
func ExamplePriorWork() {
	for _, s := range repro.PriorWork() {
		if !s.Snapshot {
			fmt.Printf("%s: %d domains, longitudinal\n", s.Venue, s.Domains)
		}
	}
	// Output:
	// IMC '20: 4200000 domains, longitudinal
}

// ExampleNewTrustArcFlow measures the Figure 9 opt-out cost.
func ExampleNewTrustArcFlow() {
	flow := repro.NewTrustArcFlow(1)
	run := flow.RunOptOut(0)
	fmt.Println("clicks:", run.Clicks)
	fmt.Println("partner domains:", run.ExtraDomains)
	fmt.Println("opt-out slower than 30s:", run.TotalMS > 30_000)
	// Output:
	// clicks: 7
	// partner domains: 25
	// opt-out slower than 30s: true
}
