package repro

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md §3), plus ablation benches for the design
// choices called out in DESIGN.md §5. The expensive setup — crawling
// the full 2.5-year window over the synthetic web — runs once and is
// shared; each benchmark iteration regenerates its table/figure from
// the crawl data, which is the quantity of interest for a measurement
// pipeline.
//
// Shapes (who wins, by what factor, where crossovers fall) match the
// paper; absolute capture volumes are ≈1/100 scale. EXPERIMENTS.md
// records paper-vs-measured values produced by cmd/analyze.

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/analytics"
	"repro/internal/capstore"
	"repro/internal/capstore/replica"
	"repro/internal/capture"
	"repro/internal/capturedb"
	"repro/internal/cmps"
	"repro/internal/compliance"
	"repro/internal/consent"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/decision"
	"repro/internal/detect"
	"repro/internal/gvl"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/simtime"
	"repro/internal/socialfeed"
	"repro/internal/tcf"
	"repro/internal/webserve"
	"repro/internal/webworld"
)

var (
	benchOnce     sync.Once
	benchStudy    *core.Study
	benchCampaign *crawler.CampaignResult
)

// benchSetup crawls once at a scale sized for benchmarking.
func benchSetup(b *testing.B) *core.Study {
	b.Helper()
	benchOnce.Do(func() {
		cfg := core.TestConfig()
		benchStudy = core.NewStudy(cfg)
		benchStudy.RunSocialCrawl(nil)
		benchCampaign = benchStudy.RunToplistCampaign(simtime.Table1Snapshot, 1_000)
	})
	b.ResetTimer()
	return benchStudy
}

// BenchmarkFigure1PriorWork regenerates the related-work inventory.
func BenchmarkFigure1PriorWork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		studies := analysis.PriorWork()
		if len(studies) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkTable1Vantage regenerates Table 1: CMP occurrence across
// the six vantage configurations at the May 2020 snapshot.
func BenchmarkTable1Vantage(b *testing.B) {
	s := benchSetup(b)
	for i := 0; i < b.N; i++ {
		vt := s.VantageTable(simtime.Table1Snapshot, 1_000)
		if vt.Totals[analysis.EUUniversityExtendedKey()] == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTableA3VantageJan regenerates Table A.3 (January 2020).
func BenchmarkTableA3VantageJan(b *testing.B) {
	s := benchSetup(b)
	for i := 0; i < b.N; i++ {
		vt := s.VantageTable(simtime.TableA3Snapshot, 1_000)
		if vt.Totals[analysis.EUUniversityExtendedKey()] == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure4Switching regenerates the CMP switching flows.
func BenchmarkFigure4Switching(b *testing.B) {
	s := benchSetup(b)
	var losses int
	for i := 0; i < b.N; i++ {
		m, err := s.SwitchingFlows()
		if err != nil {
			b.Fatal(err)
		}
		losses = m.LossesToCompetitors(cmps.Cookiebot)
	}
	b.ReportMetric(float64(losses), "cookiebot-losses")
}

// BenchmarkFigure5MarketShare regenerates cumulative market share as
// a function of toplist size (May 2020).
func BenchmarkFigure5MarketShare(b *testing.B) {
	s := benchSetup(b)
	sizes := []int{100, 500, 1_000, 2_000, 5_000, s.Config.Domains}
	var top1k float64
	for i := 0; i < b.N; i++ {
		pts, err := s.MarketShareByRank(simtime.Table1Snapshot, sizes)
		if err != nil {
			b.Fatal(err)
		}
		top1k = pts[2].TotalShare
	}
	b.ReportMetric(top1k*100, "top1k-share-%")
}

// BenchmarkFigureA4A5MarketShareHistoric regenerates the January 2019
// and January 2020 market-share snapshots (Figures A.4/A.5).
func BenchmarkFigureA4A5MarketShareHistoric(b *testing.B) {
	s := benchSetup(b)
	sizes := []int{100, 1_000, 5_000}
	for i := 0; i < b.N; i++ {
		for _, day := range []simtime.Day{
			simtime.Date(2019, 1, 15), simtime.Date(2020, 1, 15),
		} {
			if _, err := s.MarketShareByRank(day, sizes); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure6Adoption regenerates adoption over time in the
// toplist with weekly resolution.
func BenchmarkFigure6Adoption(b *testing.B) {
	s := benchSetup(b)
	top := s.Toplist.Top(s.Config.ToplistSize)
	var endShare float64
	for i := 0; i < b.N; i++ {
		pts := analysis.AdoptionOverTime(s.Presence, top, 7)
		last := pts[len(pts)-1]
		endShare = float64(last.Total) / float64(len(top))
	}
	b.ReportMetric(endShare*100, "sep2020-share-%")
}

// BenchmarkFigure7GVLGrowth regenerates the GVL vendor/purpose series.
func BenchmarkFigure7GVLGrowth(b *testing.B) {
	h := gvl.GenerateHistory(gvl.DefaultHistoryConfig())
	b.ResetTimer()
	var vendors int
	for i := 0; i < b.N; i++ {
		series := h.PurposeSeries()
		vendors = series[len(series)-1].VendorCount
	}
	b.ReportMetric(float64(vendors), "final-vendors")
}

// BenchmarkFigure8LegalBasis regenerates the monthly legal-basis
// change flows.
func BenchmarkFigure8LegalBasis(b *testing.B) {
	h := gvl.GenerateHistory(gvl.DefaultHistoryConfig())
	b.ResetTimer()
	var net int
	for i := 0; i < b.N; i++ {
		if flows := h.LegalBasisFlows(); len(flows) == 0 {
			b.Fatal("empty")
		}
		net = h.NetLegIntToConsent()
	}
	b.ReportMetric(float64(net), "net-LI-to-consent")
}

// BenchmarkFigure9TrustArcOptOut regenerates the two-week hourly
// opt-out measurement series.
func BenchmarkFigure9TrustArcOptOut(b *testing.B) {
	var median float64
	for i := 0; i < b.N; i++ {
		flow := consent.NewTrustArcFlow(1)
		runs := flow.HourlySeries(consent.MeasurementWindowDays)
		median = consent.MedianTotalMS(runs) / 1000
	}
	b.ReportMetric(median, "median-optout-s")
}

// BenchmarkFigure10QuantcastTiming regenerates the randomized dialog
// timing experiment.
func BenchmarkFigure10QuantcastTiming(b *testing.B) {
	h := gvl.GenerateHistory(gvl.HistoryConfig{Seed: 1, Versions: 5, InitialVendors: 150, PeakVendors: 300})
	list := &h.Versions[len(h.Versions)-1]
	b.ResetTimer()
	var medB float64
	for i := 0; i < b.N; i++ {
		exp := consent.NewFieldExperiment(1, list)
		res, err := consent.Analyze(exp.Run())
		if err != nil {
			b.Fatal(err)
		}
		medB = res.MoreOptions.MedianRejectSec
	}
	b.ReportMetric(medB, "configB-median-reject-s")
}

// BenchmarkCustomizationI3 regenerates the publisher customization
// statistics from the EU-university DOM store.
func BenchmarkCustomizationI3(b *testing.B) {
	s := benchSetup(b)
	for i := 0; i < b.N; i++ {
		stats := s.Customization(benchCampaign)
		if stats[cmps.OneTrust] == nil {
			b.Fatal("missing stats")
		}
	}
}

// BenchmarkCoverageMissingData regenerates the Section 3.5 missing-
// data breakdown.
func BenchmarkCoverageMissingData(b *testing.B) {
	s := benchSetup(b)
	top := s.Toplist.Top(s.Config.ToplistSize)
	for i := 0; i < b.N; i++ {
		md := analysis.ComputeMissingData(s.World, top, func(domain string) bool {
			d := s.World.Domain(domain)
			return d != nil && !d.NeverShared
		})
		if md.NeverShared == 0 {
			b.Fatal("empty breakdown")
		}
	}
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationInterpolation compares presence reconstruction with
// the paper's interpolation + fade-out against raw observations.
func BenchmarkAblationInterpolation(b *testing.B) {
	s := benchSetup(b)
	b.Run("paper", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.RebuildPresence(interp.Options{})
		}
	})
	b.Run("raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.RebuildPresence(interp.Options{NoInterpolation: true, FadeOut: -1})
		}
	})
}

// BenchmarkAblationSiteHeuristic compares the ≥⅓-captures site
// heuristic against any-capture and majority rules.
func BenchmarkAblationSiteHeuristic(b *testing.B) {
	s := benchSetup(b)
	domains := s.Observations.Domains()
	for _, tc := range []struct {
		name      string
		threshold float64
	}{
		{"any-capture", 0.0001}, {"one-third", detect.SiteHeuristicThreshold}, {"majority", 0.5},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				classifiedDays := 0
				for _, d := range domains {
					for _, o := range s.Observations.DayObservationsWithThreshold(d, tc.threshold) {
						if o.CMP != cmps.None {
							classifiedDays++
						}
					}
				}
				b.ReportMetric(float64(classifiedDays), "cmp-domain-days")
			}
		})
	}
}

// BenchmarkAblationDetectorKind compares hostname-fingerprint
// detection against DOM matching. The paper found DOM parsing "much
// more unreliable": it fails whenever the site's configuration does
// not render a dialog, so the gap is largest from the US vantage where
// EU-configured sites suppress their dialogs but still load CMP
// resources.
func BenchmarkAblationDetectorKind(b *testing.B) {
	benchSetup(b)
	det := detect.Default()
	stores := map[string][]*capture.Capture{
		"eu-university": core.EUUniversityStore(benchCampaign).All(),
		"us-cloud":      benchCampaign.Stores["us-cloud/default"].All(),
	}
	for vantage, caps := range stores {
		b.Run("network/"+vantage, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				found := 0
				for _, c := range caps {
					if det.DetectOne(c) != cmps.None {
						found++
					}
				}
				b.ReportMetric(float64(found), "detected")
			}
		})
		b.Run("dom/"+vantage, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				found := 0
				for _, c := range caps {
					if det.DetectDOM(c) != cmps.None {
						found++
					}
				}
				b.ReportMetric(float64(found), "detected")
			}
		})
	}
}

// BenchmarkAblationSampling compares toplist-frontpage-only detection
// against the social-feed subsite sample at the Table 1 snapshot.
func BenchmarkAblationSampling(b *testing.B) {
	s := benchSetup(b)
	top := s.Toplist.Top(1_000)
	det := detect.Default()
	b.Run("toplist-frontpage", func(b *testing.B) {
		store := core.EUUniversityStore(benchCampaign)
		for i := 0; i < b.N; i++ {
			found := map[string]bool{}
			for _, c := range store.All() {
				if det.DetectOne(c) != cmps.None {
					found[c.FinalDomain] = true
				}
			}
			b.ReportMetric(float64(len(found)), "cmp-domains")
		}
	})
	b.Run("social-subsites", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			found := 0
			for _, d := range top {
				if s.Presence.CMPAt(d, simtime.Table1Snapshot) != cmps.None {
					found++
				}
			}
			b.ReportMetric(float64(found), "cmp-domains")
		}
	})
}

// BenchmarkCoverageSeries measures the monthly vantage-coverage series
// (continuous Tables 1/A.3).
func BenchmarkCoverageSeries(b *testing.B) {
	s := benchSetup(b)
	var rise float64
	for i := 0; i < b.N; i++ {
		pts := s.CoverageSeries(simtime.Date(2019, 10, 1), simtime.Date(2020, 5, 31), 300)
		rise = pts[len(pts)-1].USCloud - pts[0].USCloud
	}
	b.ReportMetric(100*rise, "us-coverage-rise-pts")
}

// BenchmarkSubsiteCoverage measures the front-page vs subsite
// detection comparison (Section 3.5).
func BenchmarkSubsiteCoverage(b *testing.B) {
	s := benchSetup(b)
	domains := s.Toplist.Top(500)
	var gain float64
	for i := 0; i < b.N; i++ {
		cov := analysis.CompareSubsiteCoverage(s.World, domains, simtime.Table1Snapshot, 4)
		gain = cov.Gain()
	}
	b.ReportMetric(100*gain, "subsite-gain-%")
}

// BenchmarkTracking measures the identifying-storage analysis.
func BenchmarkTracking(b *testing.B) {
	benchSetup(b)
	store := core.EUUniversityStore(benchCampaign)
	var share float64
	for i := 0; i < b.N; i++ {
		share = analysis.ComputeTracking(store).IdentifyingShare()
	}
	b.ReportMetric(100*share, "identifying-%")
}

// BenchmarkComplianceAudit measures the Matte-et-al violation survey
// over the toplist.
func BenchmarkComplianceAudit(b *testing.B) {
	s := benchSetup(b)
	for i := 0; i < b.N; i++ {
		res, err := s.ComplianceSurvey(simtime.Table1Snapshot, 1_000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Share(compliance.ConsentBeforeChoice), "pre-choice-%")
	}
}

// BenchmarkPromptChanges measures recovering the Figure 1 prompt-
// change history from longitudinal dialog captures.
func BenchmarkPromptChanges(b *testing.B) {
	s := benchSetup(b)
	var qc int
	for i := 0; i < b.N; i++ {
		qc = s.PromptChanges()[cmps.Quantcast]
	}
	b.ReportMetric(float64(qc), "quantcast-changes")
}

// BenchmarkCaptureDB measures capture persistence throughput.
func BenchmarkCaptureDB(b *testing.B) {
	s := benchSetup(b)
	store := core.EUUniversityStore(benchCampaign)
	caps := store.All()
	b.Run("write", func(b *testing.B) {
		// Write one representative record per iteration; throughput is
		// its encoded size, fixed before the loop so MB/s is exact
		// regardless of b.N.
		rec := caps[0]
		enc, err := capturedb.Encode(rec)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(enc)))
		var buf bytes.Buffer
		w := capturedb.NewWriter(&buf)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Record(rec)
		}
		b.StopTimer()
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		if buf.Len() != b.N*len(enc) {
			b.Fatalf("wrote %d bytes, want %d", buf.Len(), b.N*len(enc))
		}
	})
	b.Run("scan", func(b *testing.B) {
		var buf bytes.Buffer
		w := capturedb.NewWriter(&buf)
		for _, c := range caps {
			w.Record(c)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		data := buf.Bytes()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n, err := capturedb.Count(bytes.NewReader(data), capturedb.Query{})
			if err != nil || n == 0 {
				b.Fatal(err)
			}
		}
	})
	_ = s
}

// BenchmarkDetectOne measures the per-capture network-detection hot
// path with a live metrics recorder attached. It must stay
// allocation-free: Record calls it (via DetectMask) once per capture
// under a shard lock. BenchmarkDetectOneNop is the same loop with the
// no-op recorder; `make obs-overhead` gates the pair at 5%.
func BenchmarkDetectOne(b *testing.B) {
	det := detect.Default()
	det.SetMetrics(detect.NewMetrics(obs.NewRegistry()))
	benchDetectOne(b, det)
}

// BenchmarkDetectOneNop is the detection hot path with the no-op (nil)
// recorder — the baseline for the telemetry-overhead gate.
func BenchmarkDetectOneNop(b *testing.B) {
	benchDetectOne(b, detect.Default())
}

func benchDetectOne(b *testing.B, det *detect.Detector) {
	benchSetup(b)
	caps := core.EUUniversityStore(benchCampaign).All()
	b.ReportAllocs()
	b.ResetTimer()
	found := 0
	for i := 0; i < b.N; i++ {
		if det.DetectOne(caps[i%len(caps)]) != cmps.None {
			found++
		}
	}
	if b.N >= len(caps) && found == 0 {
		b.Fatal("no CMPs detected in EU university captures")
	}
}

// BenchmarkStreamVisit drives the streaming pipeline end to end —
// Submit through politeness, browser visit, detection-free discard
// sink — and reports the per-share cost. The nop/live pair bounds the
// overhead of the visit-path telemetry (latency histogram, outcome
// counters, visit/store spans with cross-process id derivation);
// `make obs-overhead` gates it at 5%.
func BenchmarkStreamVisit(b *testing.B) {
	b.Run("nop", func(b *testing.B) { benchStreamVisit(b, false) })
	b.Run("live", func(b *testing.B) { benchStreamVisit(b, true) })
}

func benchStreamVisit(b *testing.B, live bool) {
	world := webworld.New(webworld.Config{Seed: 1, Domains: 3_000})
	feed := socialfeed.New(world, socialfeed.Config{Seed: 1, SharesPerDay: 200})
	type sub struct {
		day   simtime.Day
		share socialfeed.Share
	}
	var subs []sub
	for day := simtime.Day(0); len(subs) < 512; day++ {
		for _, s := range feed.Day(day) {
			subs = append(subs, sub{day, s})
		}
	}
	cfg := crawler.StreamConfig{
		Seed:           1,
		Workers:        4,
		PerDomainDelay: time.Nanosecond,
		Retry:          resilience.RetryPolicy{MaxAttempts: 2},
	}
	if live {
		cfg.Metrics = crawler.NewStreamMetrics(obs.NewRegistry())
		cfg.Tracer = obs.NewTracer(obs.TracerConfig{Cap: 4096})
		// Propagation on: every visit span derives its ids under a
		// remote parent, the same path a fleet worker exercises.
		lease := obs.NewTracer(obs.TracerConfig{Service: "fleetd"}).
			Start("lease", obs.A("first", "0"), obs.A("attempt", "1"))
		cfg.TraceContext = lease.Context()
	}
	p := crawler.NewStreamPlatform(world, cfg)
	ctx := context.Background()
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Run(ctx, discardSink{})
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := subs[i%len(subs)]
		if err := p.Submit(ctx, s.day, s.share); err != nil {
			b.Fatal(err)
		}
	}
	p.Close()
	<-done
	b.StopTimer()
	st := p.Stats()
	if st.Succeeded+st.FailedRecorded+st.DeadLettered+st.Dropped != st.Submitted {
		b.Fatalf("ledger identity broken: %+v", st)
	}
}

type discardSink struct{}

func (discardSink) Record(*capture.Capture) {}

// BenchmarkHTTPCrawl measures the wire-level pipeline: serving a page
// over real HTTP and reassembling the capture.
func BenchmarkHTTPCrawl(b *testing.B) {
	s := benchSetup(b)
	history := gvl.GenerateHistory(gvl.HistoryConfig{Seed: 1, Versions: 5, InitialVendors: 50, PeakVendors: 100})
	ts := httptest.NewServer(webserve.NewServer(s.World, history))
	defer ts.Close()
	u, err := url.Parse(ts.URL)
	if err != nil {
		b.Fatal(err)
	}
	crawler := webserve.NewCrawler(u.Host)
	day := simtime.Table1Snapshot
	var target string
	for _, d := range s.World.Domains() {
		if d.CMPAt(day) != cmps.None && !d.Unreachable && d.RedirectTo == "" && !d.Geo451 &&
			!s.World.TransientDown(d.Name, day) {
			target = "http://www." + d.Name + "/"
			break
		}
	}
	if target == "" {
		b.Skip("no target")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cap, err := crawler.Fetch(target, day, capture.EUUniversity)
		if err != nil || cap.Failed {
			b.Fatalf("%v %s", err, cap.Error)
		}
	}
}

// BenchmarkTCFv2Codec measures v2 consent-string encode+decode.
func BenchmarkTCFv2Codec(b *testing.B) {
	c := tcf.NewV2(simtime.Table1Snapshot.Time())
	c.MaxVendorID = 700
	for v := 1; v <= 700; v += 3 {
		c.VendorConsent[v] = true
	}
	c.MaxVendorLIID = 650
	for v := 5; v <= 650; v += 7 {
		c.VendorLegInt[v] = true
	}
	for p := 1; p <= 10; p++ {
		c.PurposesConsent[p] = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := c.EncodeV2()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tcf.DecodeV2(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTCFEncoding compares the bitfield and range vendor
// encodings of the TCF consent string.
func BenchmarkAblationTCFEncoding(b *testing.B) {
	c := tcf.New(simtime.Table1Snapshot.Time())
	c.SetAllPurposes(true)
	c.SetAllVendors(650, true)
	for v := 10; v < 650; v += 13 {
		c.VendorConsent[v] = false // sparse exceptions favour ranges
	}
	for _, tc := range []struct {
		name string
		enc  tcf.VendorEncoding
	}{
		{"bitfield", tcf.EncodingBitField}, {"range", tcf.EncodingRange},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				s, err := c.EncodeWith(tc.enc)
				if err != nil {
					b.Fatal(err)
				}
				size = len(s)
			}
			b.ReportMetric(float64(size), "string-bytes")
		})
	}
}

// BenchmarkDecideOne is the zero-alloc gate on the steady-state
// decision path: one cache-hit lookup of a compiled consent string
// plus one kernel decision with a pre-resolved GVL table. allocs/op
// must be 0.
func BenchmarkDecideOne(b *testing.B) {
	pop, err := decision.GeneratePopulation(decision.PopulationConfig{Seed: 1, Size: 64})
	if err != nil {
		b.Fatal(err)
	}
	h := gvl.GenerateHistory(gvl.HistoryConfig{Seed: 1, Versions: 40, PeakVendors: 400})
	resolver := decision.NewResolver(gvl.UpgradeHistory(h, gvl.DefaultV2UpgradeConfig()))
	cache := decision.NewCache(decision.CacheConfig{})
	keys := make([][]byte, len(pop.Strings))
	for i, s := range pop.Strings {
		if _, err := cache.Get(s); err != nil {
			b.Fatal(err)
		}
		keys[i] = []byte(s)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink decision.Basis
	for i := 0; i < b.N; i++ {
		c, err := cache.GetBytes(keys[i%len(keys)])
		if err != nil {
			b.Fatal(err)
		}
		sink = decision.Decide(c, resolver.Table(c.VendorListVersion), 1+i%650, 1+i%10)
	}
	_ = sink
}

// BenchmarkDecideBatch measures the consent-decision service end to
// end: one iteration posts a pre-rendered 512-decision NDJSON batch to
// a real decision server over HTTP and drains the response. The
// decisions/sec metric is the service throughput figure (cmd/
// decisionload measures the same path against a consentd process).
func BenchmarkDecideBatch(b *testing.B) {
	const batchSize = 512
	pop, err := decision.GeneratePopulation(decision.PopulationConfig{Seed: 1, Size: 2000, MaxVLV: 40})
	if err != nil {
		b.Fatal(err)
	}
	h := gvl.GenerateHistory(gvl.HistoryConfig{Seed: 1, Versions: 40, PeakVendors: 400})
	srv := decision.NewServer(decision.ServerConfig{
		Resolver: decision.NewResolver(gvl.UpgradeHistory(h, gvl.DefaultV2UpgradeConfig())),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// One pre-rendered body, built by the load driver's generator via a
	// single-request dry run configuration.
	bodies := decision.PrerenderBodies(decision.LoadConfig{
		ServerURL:  ts.URL,
		Population: pop,
		BatchSize:  batchSize,
		Bodies:     4,
	})
	client := ts.Client()
	// Warm the compiled-string cache.
	for _, body := range bodies {
		resp, err := client.Post(ts.URL+"/v1/batch", "application/x-ndjson", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("batch returned %s", resp.Status)
		}
	}
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/v1/batch", "application/x-ndjson", bytes.NewReader(bodies[i%len(bodies)]))
		if err != nil {
			b.Fatal(err)
		}
		n, err := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if n != batchSize*decision.BatchAnswerLen {
			b.Fatalf("answered %d bytes, want %d", n, batchSize*decision.BatchAnswerLen)
		}
	}
	elapsed := time.Since(start)
	b.ReportMetric(float64(b.N)*batchSize/elapsed.Seconds(), "decisions/sec")
	b.ReportMetric(float64(elapsed.Nanoseconds())/float64(int64(b.N)*batchSize), "ns/decision")
}

// BenchmarkReplicatedQueryFanout prices the replicated store's read
// path (DESIGN.md §11): a full query sweep through replica.Reader,
// which serves each store segment from the first healthy replica, as a
// single-node degenerate ring (R=1 — the fan-out machinery with no
// replication) versus a three-node R=2 ring. The records and shard
// layout are identical, so the delta is pure placement/fan-out cost:
// per-segment replica selection plus the connection spread across
// three backends instead of one.
func BenchmarkReplicatedQueryFanout(b *testing.B) {
	benchSetup(b)
	caps := core.EUUniversityStore(benchCampaign).All()
	const shards = 8
	run := func(nodes, replicas int) func(b *testing.B) {
		return func(b *testing.B) {
			cfg := replica.Config{
				Shards:        shards,
				Seed:          11,
				Replicas:      replicas,
				Quorum:        1,
				QuorumTimeout: 10 * time.Second,
				NodeTimeout:   30 * time.Second,
			}
			for i := 0; i < nodes; i++ {
				store, err := capstore.Create(b.TempDir(), shards)
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { store.Close() })
				ing, err := capstore.NewIngester(store, capstore.IngestConfig{})
				if err != nil {
					b.Fatal(err)
				}
				mux := http.NewServeMux()
				mux.Handle("/ingest", ing)
				mux.Handle("/", capstore.NewResilientHandler(store, capstore.ServeConfig{}))
				srv := httptest.NewServer(mux)
				b.Cleanup(srv.Close)
				cfg.Nodes = append(cfg.Nodes, replica.NodeConfig{Name: "node-" + strconv.Itoa(i), URL: srv.URL})
			}
			w, err := replica.NewWriter(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { w.Close() })
			if _, err := w.RecordBatch(caps); err != nil {
				b.Fatal(err)
			}
			if err := w.WaitConverged(30 * time.Second); err != nil {
				b.Fatal(err)
			}
			r := w.Reader()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got := 0
				if err := r.Query(capturedb.Query{}, 0, 0, func(*capture.Capture) bool {
					got++
					return true
				}); err != nil {
					b.Fatal(err)
				}
				if got != len(caps) {
					b.Fatalf("sweep returned %d records, want %d", got, len(caps))
				}
			}
		}
	}
	b.Run("nodes=1", run(1, 1))
	b.Run("nodes=3", run(3, 2))
}

// The open-path fixture stores, keyed "records-variant", are built
// once per process (they are expensive at the 1M size) and removed by
// TestMain. Records are deliberately small so the 1M store stays
// modest on disk; what matters to Open is the record *count*, which
// drives the unpacked scan, not the record size.
var (
	openBenchMu   sync.Mutex
	openBenchRoot string
	openBenchDirs = map[string]string{}
)

func TestMain(m *testing.M) {
	code := m.Run()
	if openBenchRoot != "" {
		os.RemoveAll(openBenchRoot)
	}
	os.Exit(code)
}

func openBenchCapture(i int) *capture.Capture {
	d := "s" + strconv.Itoa(i%1000) + ".ex"
	u := "https://" + d + "/" + strconv.Itoa(i)
	return &capture.Capture{
		SeedURL:     u,
		FinalURL:    u,
		FinalDomain: d,
		Day:         simtime.Day(i % 900),
		Vantage:     capture.USCloud,
		Status:      200,
		Requests:    []capture.Request{{Host: "cmp" + strconv.Itoa(i%7) + ".ex", Path: "/c.js", Status: 200}},
	}
}

func openBenchDir(b *testing.B, n int, packed bool) string {
	b.Helper()
	openBenchMu.Lock()
	defer openBenchMu.Unlock()
	key := strconv.Itoa(n) + "-tail"
	if packed {
		key = strconv.Itoa(n) + "-packed"
	}
	if dir, ok := openBenchDirs[key]; ok {
		return dir
	}
	if openBenchRoot == "" {
		root, err := os.MkdirTemp("", "benchopen-")
		if err != nil {
			b.Fatal(err)
		}
		openBenchRoot = root
	}
	dir := filepath.Join(openBenchRoot, key)
	s, err := capstore.Create(dir, 16)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		s.Record(openBenchCapture(i))
	}
	if packed {
		if _, err := s.CompactAll(); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	openBenchDirs[key] = dir
	return dir
}

// BenchmarkOpenStore prices Store.Open across record counts, packed
// (pack footer indexes load in O(packs); only the empty tail is
// scanned) versus unpacked (the whole segment file is scanned and
// decoded to rebuild indexes). The pack engine's core claim is the
// shape of this table: the unpacked column grows linearly with record
// count while the packed column stays flat — O(1)-open stores.
func BenchmarkOpenStore(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		for _, packed := range []bool{false, true} {
			variant := "tail"
			if packed {
				variant = "packed"
			}
			b.Run("n="+strconv.Itoa(n)+"/"+variant, func(b *testing.B) {
				dir := openBenchDir(b, n, packed)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s, err := capstore.Open(dir)
					if err != nil {
						b.Fatal(err)
					}
					if got := s.Len(); got != int64(n) {
						b.Fatalf("opened %d records, want %d", got, n)
					}
					if err := s.Close(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// analyticsCaptures fabricates a deterministic capture stream for the
// incremental-analytics benchmarks: a few hundred domains cycling
// through the studied CMPs, with CMP-less and failed pages mixed in.
func analyticsCaptures(n int) []*capture.Capture {
	caps := make([]*capture.Capture, n)
	for i := range caps {
		domain := "site" + strconv.Itoa(i%311) + ".example"
		c := &capture.Capture{
			SeedURL:     "https://" + domain + "/p/" + strconv.Itoa(i),
			FinalURL:    "https://" + domain + "/",
			FinalDomain: domain,
			Day:         simtime.Day((i * 5) % simtime.NumDays),
			Vantage:     capture.EUCloud,
			Config:      "default",
			Status:      200,
		}
		switch i % 7 {
		case 0:
		case 1:
			c.Failed = true
			c.Error = "timeout"
		default:
			id := cmps.ID(1 + i%int(cmps.Count))
			c.Requests = []capture.Request{{Host: id.Hostname(), Path: "/cmp.js", Status: 200}}
		}
		caps[i] = c
	}
	return caps
}

// BenchmarkViewFold prices the incremental engine's per-record fold —
// the work analyzed does for every committed capture, excluding view
// marshalling. This is the path that must keep up with live ingest.
func BenchmarkViewFold(b *testing.B) {
	caps := analyticsCaptures(4096)
	e := analytics.NewEngine(analytics.Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Apply(i%4, []*capture.Capture{caps[i%len(caps)]})
	}
}

// BenchmarkAnalyzedQuery prices view serving: "cached" is the steady
// state (repeated queries between commits hit the per-cursor snapshot
// cache), "rebuild" folds one record first so every query pays the
// full view refresh + marshal — the worst-case update latency the
// analytics_view_update_seconds histogram tracks.
func BenchmarkAnalyzedQuery(b *testing.B) {
	caps := analyticsCaptures(5000)
	mk := func() *analytics.Engine {
		e := analytics.NewEngine(analytics.Config{})
		for i, c := range caps {
			e.Apply(i%4, []*capture.Capture{c})
		}
		return e
	}
	b.Run("cached", func(b *testing.B) {
		e := mk()
		if _, err := e.SnapshotAll(); err != nil {
			b.Fatal(err)
		}
		names := analytics.ViewNames()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Snapshot(names[i%len(names)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		e := mk()
		names := analytics.ViewNames()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Apply(i%4, []*capture.Capture{caps[i%len(caps)]})
			if _, err := e.Snapshot(names[i%len(names)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
