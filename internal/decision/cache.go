package decision

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// A consentd serves a working set of TC strings far smaller than its
// request stream: real consent populations are heavily skewed (a few
// accept-all and reject-all strings dominate, with a long tail of
// partial grants). The cache exploits that: a sharded, bounded LRU
// keyed by the raw string, so the steady-state decision path compiles
// nothing. Shards cut lock contention; per-shard LRU keeps eviction
// O(1). Failed compiles are cached too — a malformed string hammered
// by a buggy client must not cost a full parse per request.

// CacheConfig sizes the compiled-form cache.
type CacheConfig struct {
	// Capacity is the total number of cached entries across all
	// shards (default 32768; compiled forms are a few hundred bytes).
	Capacity int
	// Shards is the shard count, rounded up to a power of two
	// (default 16).
	Shards int
}

func (c CacheConfig) withDefaults() CacheConfig {
	if c.Capacity <= 0 {
		c.Capacity = 32768
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	n := 1
	for n < c.Shards {
		n <<= 1
	}
	c.Shards = n
	if c.Capacity < c.Shards {
		c.Capacity = c.Shards
	}
	return c
}

// Cache is a sharded, bounded LRU of compiled consent strings.
type Cache struct {
	shards []cacheShard
	mask   uint64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheShard struct {
	mu  sync.Mutex
	m   map[string]*list.Element
	ll  *list.List // front = most recently used
	cap int
	_   [24]byte // keep shards off one another's cache lines
}

type cacheEntry struct {
	key string
	c   *Compiled
	err error
}

// NewCache returns an empty cache.
func NewCache(cfg CacheConfig) *Cache {
	cfg = cfg.withDefaults()
	c := &Cache{shards: make([]cacheShard, cfg.Shards), mask: uint64(cfg.Shards - 1)}
	per := cfg.Capacity / cfg.Shards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*list.Element, per+1)
		c.shards[i].ll = list.New()
		c.shards[i].cap = per
	}
	return c
}

// fnv1a hashes the key bytes; inlined so the hit path never escapes
// its argument.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Get returns the compiled form for raw, compiling and inserting on a
// miss. The hit path takes one shard lock and allocates nothing.
func (c *Cache) Get(raw string) (*Compiled, error) {
	s := &c.shards[fnv1a(raw)&c.mask]
	s.mu.Lock()
	if el, ok := s.m[raw]; ok {
		s.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		s.mu.Unlock()
		c.hits.Add(1)
		return e.c, e.err
	}
	s.mu.Unlock()
	return c.compileInsert(s, raw)
}

// GetBytes is Get for a key still held as bytes (the batch endpoint's
// line parser). The hit path probes the shard map via the compiler's
// map-access optimization and does not copy the key; only a miss
// materializes the string.
func (c *Cache) GetBytes(raw []byte) (*Compiled, error) {
	s := &c.shards[fnv1aBytes(raw)&c.mask]
	s.mu.Lock()
	if el, ok := s.m[string(raw)]; ok { // no alloc: map access special case
		s.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		s.mu.Unlock()
		c.hits.Add(1)
		return e.c, e.err
	}
	s.mu.Unlock()
	return c.compileInsert(s, string(raw))
}

func fnv1aBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= 1099511628211
	}
	return h
}

// compileInsert compiles outside the shard lock (two goroutines may
// race to compile the same string; last insert wins, both results are
// identical) and inserts with LRU eviction.
func (c *Cache) compileInsert(s *cacheShard, raw string) (*Compiled, error) {
	c.misses.Add(1)
	compiled, err := Compile(raw)
	e := &cacheEntry{key: raw, c: compiled, err: err}
	s.mu.Lock()
	if el, ok := s.m[raw]; ok {
		// Lost the race; adopt the winner for a consistent view.
		s.ll.MoveToFront(el)
		won := el.Value.(*cacheEntry)
		s.mu.Unlock()
		return won.c, won.err
	}
	s.m[raw] = s.ll.PushFront(e)
	for s.ll.Len() > s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.m, oldest.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
	s.mu.Unlock()
	return compiled, err
}

// CacheStats is a counter snapshot.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
}

// HitRatio returns hits/(hits+misses), or 0 before any traffic.
func (s CacheStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Size += s.ll.Len()
		st.Capacity += s.cap
		s.mu.Unlock()
	}
	return st
}
