package decision

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/gvl"
	"repro/internal/simtime"
	"repro/internal/tcf"
)

func mustEncodeV2(t testing.TB, c *tcf.V2ConsentString) string {
	t.Helper()
	s, err := c.EncodeV2()
	if err != nil {
		t.Fatalf("EncodeV2: %v", err)
	}
	return s
}

// acceptAllV2 builds a v2 string consenting to everything up to
// maxVendor.
func acceptAllV2(t testing.TB, maxVendor int) *tcf.V2ConsentString {
	t.Helper()
	c := tcf.NewV2(simtime.Date(2020, time.March, 1).Time())
	c.VendorListVersion = 30
	c.MaxVendorID = maxVendor
	for p := 1; p <= tcf.NumPurposesV2; p++ {
		c.PurposesConsent[p] = true
	}
	for v := 1; v <= maxVendor; v++ {
		c.VendorConsent[v] = true
	}
	return c
}

func TestBitset(t *testing.T) {
	b := newBitset(130)
	for _, id := range []int{1, 64, 65, 128, 130} {
		b.set(id)
	}
	b.set(0)   // ignored
	b.set(200) // beyond the word capacity, ignored
	for _, id := range []int{1, 64, 65, 128, 130} {
		if !b.test(id) {
			t.Errorf("bit %d not set", id)
		}
	}
	for _, id := range []int{-1, 0, 2, 63, 66, 129, 131, 200, 1000} {
		if b.test(id) {
			t.Errorf("bit %d unexpectedly set", id)
		}
	}
	if got := b.count(); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
}

func TestCompileV2RoundTrip(t *testing.T) {
	c := acceptAllV2(t, 100)
	c.PurposesLITransparency[2] = true
	c.MaxVendorLIID = 80
	c.VendorLegInt[40] = true
	c.SpecialFeatureOptIns[1] = true
	raw := mustEncodeV2(t, c)

	cp, err := Compile(raw)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if cp.WireVersion != tcf.V2Version || cp.VendorListVersion != 30 {
		t.Fatalf("header mismatch: %+v", cp)
	}
	if !cp.PurposeConsent(3) || cp.PurposeConsent(11) {
		t.Errorf("purpose consent bits wrong")
	}
	if !cp.PurposeLI(2) || cp.PurposeLI(3) {
		t.Errorf("purpose LI bits wrong")
	}
	if !cp.VendorConsent(100) || cp.VendorConsent(101) {
		t.Errorf("vendor consent bits wrong")
	}
	if !cp.VendorLI(40) || cp.VendorLI(41) {
		t.Errorf("vendor LI bits wrong")
	}
	if !cp.SpecialFeature(1) || cp.SpecialFeature(2) {
		t.Errorf("special feature bits wrong")
	}
	if cp.ConsentedVendors() != 100 {
		t.Errorf("ConsentedVendors = %d, want 100", cp.ConsentedVendors())
	}
}

func TestCompileV1Migration(t *testing.T) {
	c := tcf.New(simtime.Date(2019, time.June, 1).Time())
	c.VendorListVersion = 10
	c.PurposesAllowed[2] = true // → v2 purposes 3, 5
	c.PurposesAllowed[5] = true // → v2 purposes 7, 8
	c.MaxVendorID = 20
	c.VendorConsent[7] = true
	raw, err := c.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	cp, err := Compile(raw)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if cp.WireVersion != tcf.Version {
		t.Fatalf("WireVersion = %d", cp.WireVersion)
	}
	wantOn := map[int]bool{3: true, 5: true, 7: true, 8: true}
	for p := 1; p <= 10; p++ {
		if cp.PurposeConsent(p) != wantOn[p] {
			t.Errorf("purpose %d = %v, want %v", p, cp.PurposeConsent(p), wantOn[p])
		}
	}
	if !cp.VendorConsent(7) || cp.VendorConsent(8) {
		t.Errorf("vendor consent wrong")
	}
	// v1 has no LI signals: the LI path must be dead.
	for p := 1; p <= 10; p++ {
		if cp.PurposeLI(p) {
			t.Errorf("v1 string has purpose LI %d", p)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	for _, raw := range []string{"", "!", "ZZZZ", "Caaaa#aaa"} {
		if _, err := Compile(raw); err == nil {
			t.Errorf("Compile(%q) succeeded", raw)
		}
	}
}

func TestDecideBasics(t *testing.T) {
	c := acceptAllV2(t, 50)
	c.PurposesConsent[4] = false
	raw := mustEncodeV2(t, c)
	cp, err := Compile(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got := Decide(cp, nil, 10, 1); got != BasisConsent {
		t.Errorf("vendor 10 purpose 1 = %v, want consent", got)
	}
	if got := Decide(cp, nil, 10, 4); got != BasisNone {
		t.Errorf("withheld purpose = %v, want none", got)
	}
	if got := Decide(cp, nil, 51, 1); got != BasisNone {
		t.Errorf("out-of-range vendor = %v, want none", got)
	}
	for _, bad := range [][2]int{{0, 1}, {-3, 1}, {1, 0}, {1, 25}, {1, -1}} {
		if got := Decide(cp, nil, bad[0], bad[1]); got != BasisNone {
			t.Errorf("Decide(%d,%d) = %v, want none", bad[0], bad[1], got)
		}
	}
	if Decide(nil, nil, 1, 1) != BasisNone {
		t.Errorf("nil compiled must deny")
	}
}

func TestDecideLegitimateInterest(t *testing.T) {
	c := tcf.NewV2(simtime.Date(2020, time.March, 1).Time())
	c.VendorListVersion = 30
	c.PurposesLITransparency[7] = true
	c.MaxVendorLIID = 10
	c.VendorLegInt[9] = true
	raw := mustEncodeV2(t, c)
	cp, err := Compile(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got := Decide(cp, nil, 9, 7); got != BasisLegInt {
		t.Errorf("LI decision = %v, want legitimate-interest", got)
	}
	if got := Decide(cp, nil, 9, 8); got != BasisNone {
		t.Errorf("no transparency = %v, want none", got)
	}
	if got := Decide(cp, nil, 8, 7); got != BasisNone {
		t.Errorf("no vendor LI = %v, want none", got)
	}
}

func TestDecideConsentWinsOverLI(t *testing.T) {
	c := acceptAllV2(t, 10)
	c.PurposesLITransparency[2] = true
	c.MaxVendorLIID = 10
	c.VendorLegInt[5] = true
	cp, err := Compile(mustEncodeV2(t, c))
	if err != nil {
		t.Fatal(err)
	}
	if got := Decide(cp, nil, 5, 2); got != BasisConsent {
		t.Errorf("both paths open = %v, want consent", got)
	}
}

func TestDecidePurposeOneTreatment(t *testing.T) {
	c := tcf.NewV2(simtime.Date(2020, time.March, 1).Time())
	c.VendorListVersion = 30
	c.PurposeOneTreatment = true
	c.MaxVendorID = 5
	c.VendorConsent[3] = true
	cp, err := Compile(mustEncodeV2(t, c))
	if err != nil {
		t.Fatal(err)
	}
	// Purpose-1 signal is treated as granted, but vendor consent is
	// still required.
	if got := Decide(cp, nil, 3, 1); got != BasisConsent {
		t.Errorf("P1T vendor 3 = %v, want consent", got)
	}
	if got := Decide(cp, nil, 2, 1); got != BasisNone {
		t.Errorf("P1T vendor 2 (no consent) = %v, want none", got)
	}
	if got := Decide(cp, nil, 3, 2); got != BasisNone {
		t.Errorf("P1T must not leak to purpose 2: got %v", got)
	}
}

func TestDecideRestrictions(t *testing.T) {
	c := acceptAllV2(t, 20)
	c.PurposesLITransparency[2] = true
	c.MaxVendorLIID = 20
	for v := 1; v <= 20; v++ {
		c.VendorLegInt[v] = true
	}
	c.PubRestrictions = []tcf.PubRestriction{
		{Purpose: 2, Type: tcf.RestrictionNotAllowed, VendorIDs: []int{4}},
		{Purpose: 2, Type: tcf.RestrictionRequireConsent, VendorIDs: []int{5}},
		{Purpose: 2, Type: tcf.RestrictionRequireLegInt, VendorIDs: []int{6}},
	}
	cp, err := Compile(mustEncodeV2(t, c))
	if err != nil {
		t.Fatal(err)
	}
	if got := Decide(cp, nil, 4, 2); got != BasisNone {
		t.Errorf("NotAllowed = %v, want none", got)
	}
	if got := Decide(cp, nil, 4, 3); got != BasisConsent {
		t.Errorf("NotAllowed must not leak to purpose 3: %v", got)
	}
	if got := Decide(cp, nil, 5, 2); got != BasisConsent {
		t.Errorf("RequireConsent with consent = %v, want consent", got)
	}
	if got := Decide(cp, nil, 6, 2); got != BasisLegInt {
		t.Errorf("RequireLegInt forces LI = %v, want legitimate-interest", got)
	}
	if got := Decide(cp, nil, 7, 2); got != BasisConsent {
		t.Errorf("unrestricted vendor = %v, want consent", got)
	}
}

// TestDecideWithTable pins the GVL-declaration semantics against a
// hand-built list.
func TestDecideWithTable(t *testing.T) {
	l := &gvl.ListV2{
		GVLSpecificationVersion: 2,
		VendorListVersion:       30,
		Vendors: []gvl.VendorV2{
			{ID: 1, Name: "consent-only", Purposes: []int{2}},
			{ID: 2, Name: "li-only", LegIntPurposes: []int{2}},
			{ID: 3, Name: "flex-li", LegIntPurposes: []int{2}, FlexiblePurposes: []int{2}},
			{ID: 4, Name: "flex-consent", Purposes: []int{2}, FlexiblePurposes: []int{2}},
		},
	}
	table := NewVendorTable(l)
	if table.Vendors() != 4 || table.MaxVendorID != 4 {
		t.Fatalf("table shape: %+v", table)
	}

	c := acceptAllV2(t, 10)
	c.PurposesLITransparency[2] = true
	c.MaxVendorLIID = 10
	for v := 1; v <= 10; v++ {
		c.VendorLegInt[v] = true
	}
	base := mustEncodeV2(t, c)
	cp, err := Compile(base)
	if err != nil {
		t.Fatal(err)
	}

	// Declared-basis gating.
	if got := Decide(cp, table, 1, 2); got != BasisConsent {
		t.Errorf("consent-only vendor = %v, want consent", got)
	}
	if got := Decide(cp, table, 2, 2); got != BasisLegInt {
		t.Errorf("li-only vendor = %v, want legitimate-interest", got)
	}
	// Vendor absent from the list: denied.
	if got := Decide(cp, table, 9, 2); got != BasisNone {
		t.Errorf("unregistered vendor = %v, want none", got)
	}

	// Flexible LI vendor under a RequireConsent restriction: the
	// flexible purpose switches to the consent basis.
	c.PubRestrictions = []tcf.PubRestriction{
		{Purpose: 2, Type: tcf.RestrictionRequireConsent, VendorIDs: []int{2, 3}},
	}
	cp2, err := Compile(mustEncodeV2(t, c))
	if err != nil {
		t.Fatal(err)
	}
	if got := Decide(cp2, table, 3, 2); got != BasisConsent {
		t.Errorf("flexible LI vendor under RequireConsent = %v, want consent", got)
	}
	// Non-flexible LI vendor under RequireConsent: dead on both paths.
	if got := Decide(cp2, table, 2, 2); got != BasisNone {
		t.Errorf("rigid LI vendor under RequireConsent = %v, want none", got)
	}

	// Flexible consent vendor under RequireLegInt switches to LI.
	c.PubRestrictions = []tcf.PubRestriction{
		{Purpose: 2, Type: tcf.RestrictionRequireLegInt, VendorIDs: []int{1, 4}},
	}
	cp3, err := Compile(mustEncodeV2(t, c))
	if err != nil {
		t.Fatal(err)
	}
	if got := Decide(cp3, table, 4, 2); got != BasisLegInt {
		t.Errorf("flexible consent vendor under RequireLegInt = %v, want legitimate-interest", got)
	}
	if got := Decide(cp3, table, 1, 2); got != BasisNone {
		t.Errorf("rigid consent vendor under RequireLegInt = %v, want none", got)
	}
}

func TestFilterVendors(t *testing.T) {
	c := acceptAllV2(t, 10)
	delete(c.VendorConsent, 4)
	cp, err := Compile(mustEncodeV2(t, c))
	if err != nil {
		t.Fatal(err)
	}
	got := FilterVendors(cp, nil, []int{1, 4, 9, 11}, 1, nil)
	want := []int{1, 9}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("FilterVendors = %v, want %v", got, want)
	}
}

func TestCacheHitMissEvict(t *testing.T) {
	cache := NewCache(CacheConfig{Capacity: 4, Shards: 1})
	raws := make([]string, 6)
	for i := range raws {
		c := acceptAllV2(t, 10+i)
		raws[i] = mustEncodeV2(t, c)
	}
	for _, r := range raws[:4] {
		if _, err := cache.Get(r); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.Misses != 4 || st.Hits != 0 || st.Size != 4 {
		t.Fatalf("after fills: %+v", st)
	}
	if _, err := cache.Get(raws[0]); err != nil {
		t.Fatal(err)
	}
	if st = cache.Stats(); st.Hits != 1 {
		t.Fatalf("hit not counted: %+v", st)
	}
	// Two more inserts evict the two least-recently-used.
	cache.Get(raws[4])
	cache.Get(raws[5])
	st = cache.Stats()
	if st.Evictions != 2 || st.Size != 4 {
		t.Fatalf("eviction: %+v", st)
	}
	// raws[0] was refreshed by the hit above: still cached.
	cache.Get(raws[0])
	if got := cache.Stats().Hits; got != 2 {
		t.Fatalf("LRU refresh lost: hits = %d", got)
	}
}

func TestCacheCachesErrors(t *testing.T) {
	cache := NewCache(CacheConfig{})
	bad := "C!!!!not-a-consent-string"
	if _, err := cache.Get(bad); err == nil {
		t.Fatal("bad string compiled")
	}
	if _, err := cache.Get(bad); err == nil {
		t.Fatal("bad string compiled on second get")
	}
	st := cache.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("error not cached: %+v", st)
	}
}

func TestCacheGetBytes(t *testing.T) {
	cache := NewCache(CacheConfig{})
	raw := mustEncodeV2(t, acceptAllV2(t, 25))
	c1, err := cache.Get(raw)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := cache.GetBytes([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("GetBytes returned a different compiled form")
	}
	if cache.Stats().Hits != 1 {
		t.Fatalf("GetBytes did not hit: %+v", cache.Stats())
	}
}

// TestDecideNoAllocs is the zero-alloc gate for the steady-state path:
// cache hit (string and bytes keys) plus Decide with a table.
func TestDecideNoAllocs(t *testing.T) {
	cache := NewCache(CacheConfig{})
	c := acceptAllV2(t, 650)
	c.PurposesLITransparency[7] = true
	c.MaxVendorLIID = 650
	for v := 1; v <= 650; v += 3 {
		c.VendorLegInt[v] = true
	}
	raw := mustEncodeV2(t, c)
	rawBytes := []byte(raw)
	if _, err := cache.Get(raw); err != nil {
		t.Fatal(err)
	}
	table := NewVendorTable(&gvl.ListV2{
		VendorListVersion: 30,
		Vendors: []gvl.VendorV2{
			{ID: 9, Purposes: []int{1, 2, 3}},
			{ID: 650, Purposes: []int{1}, LegIntPurposes: []int{7}},
		},
	})

	var sink Basis
	allocs := testing.AllocsPerRun(1000, func() {
		cp, err := cache.GetBytes(rawBytes)
		if err != nil {
			t.Fatal(err)
		}
		sink = Decide(cp, table, 9, 2)
		sink = Decide(cp, table, 650, 7)
		sink = Decide(cp, nil, 123, 3)
	})
	if allocs != 0 {
		t.Fatalf("steady-state decision path allocates: %v allocs/op", allocs)
	}
	_ = sink
}
