// Package decision is the real-time consent-decision kernel: the
// serving-side counterpart of this repository's batch TCF analyses.
// Every ad auction must answer "does this TC string grant vendor N /
// purpose P, and under which legal basis?" at sub-millisecond latency
// — the pre-auction vendor-filtering pattern the TCF ecosystem runs at
// scale.
//
// The batch codec in internal/tcf stores vendors and purposes as
// map[int]bool, so a naive decision pays a full base64+bit decode plus
// map lookups and allocations per question. This package decodes a raw
// v1 or v2 string exactly once into a Compiled form — packed []uint64
// bitsets for vendor consent, vendor legitimate interest, purposes,
// purpose LI, special features and publisher TC — held in a sharded,
// bounded LRU keyed by the raw string. The steady-state decision path
// (Decide on a cache hit) is pure bit arithmetic: 0 allocs/op.
//
// Legal-basis resolution uses a pre-resolved vendor table per GVL
// version (see gvltable.go), built from internal/gvl history at
// startup, so checking what a vendor registered never touches maps or
// JSON at decision time.
//
// Correctness bar: for every string the fuzzer or the population
// generator produces, Decide over the Compiled form must agree
// bit-for-bit with NaiveDecide, which re-decodes via tcf.Decode /
// tcf.DecodeV2 and answers from the original map representation.
package decision

import (
	"fmt"

	"repro/internal/tcf"
)

// Basis is the outcome of a consent decision: whether the processing
// may happen, and under which GDPR legal basis.
type Basis uint8

const (
	// BasisNone: the vendor may not process for this purpose.
	BasisNone Basis = iota
	// BasisConsent: allowed, grounded in user consent (Art. 6(1)a).
	BasisConsent
	// BasisLegInt: allowed, grounded in legitimate interest with
	// established transparency (Art. 6(1)f).
	BasisLegInt
)

// Allowed reports whether the decision permits processing.
func (b Basis) Allowed() bool { return b != BasisNone }

func (b Basis) String() string {
	switch b {
	case BasisConsent:
		return "consent"
	case BasisLegInt:
		return "legitimate-interest"
	default:
		return "none"
	}
}

// Letter is the one-byte wire encoding used by the batch endpoint:
// 'N' denied, 'C' consent, 'L' legitimate interest.
func (b Basis) Letter() byte { return "NCL"[b] }

// NumPurposeBits is the width of the purpose fields on the wire; the
// kernel answers purposes 1..NumPurposeBits (10 are standardized).
const NumPurposeBits = 24

// bitset is a packed 1-based id set.
type bitset []uint64

// newBitset returns a bitset able to hold ids 1..max.
func newBitset(max int) bitset {
	if max <= 0 {
		return nil
	}
	return make(bitset, (max+63)/64)
}

// set marks a 1-based id; out-of-range ids are ignored.
func (b bitset) set(id int) {
	if id <= 0 {
		return
	}
	id--
	if w := id >> 6; w < len(b) {
		b[w] |= 1 << (uint(id) & 63)
	}
}

// test reports whether a 1-based id is present.
func (b bitset) test(id int) bool {
	if id <= 0 {
		return false
	}
	id--
	w := id >> 6
	return w < len(b) && b[w]>>(uint(id)&63)&1 == 1
}

// count returns the number of set bits.
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// packMap packs a 1-based map[int]bool into a bitset bounded by max.
func packMap(m map[int]bool, max int) bitset {
	b := newBitset(max)
	for id, ok := range m {
		if ok && id >= 1 && id <= max {
			b.set(id)
		}
	}
	return b
}

// packBits packs purposes 1..n of a map into a uint32 (bit p-1).
func packBits(m map[int]bool, n int) uint32 {
	var v uint32
	for p := 1; p <= n && p <= 32; p++ {
		if m[p] {
			v |= 1 << uint(p-1)
		}
	}
	return v
}

// restriction is one compiled publisher restriction: the vendors a
// restriction type applies to for one purpose. Restrictions are rare,
// so Decide scans a short slice instead of indexing by purpose.
type restriction struct {
	purpose uint8
	vendors bitset
}

// covers reports whether any restriction in rs hits (vendor, purpose).
func covers(rs []restriction, vendor, purpose int) bool {
	for i := range rs {
		if int(rs[i].purpose) == purpose && rs[i].vendors.test(vendor) {
			return true
		}
	}
	return false
}

// Compiled is the decision-ready form of one TC string: everything the
// kernel needs, packed so a decision is pure bit arithmetic. Compiled
// values are immutable after Compile and safe for concurrent use.
type Compiled struct {
	// Raw is the source string (the cache key).
	Raw string
	// WireVersion is the source wire format, 1 or 2. v1 strings are
	// compiled through their v2 upgrade (the IAB migration mapping),
	// so the kernel always operates in v2 purpose space.
	WireVersion int
	// VendorListVersion stamps which GVL the string was written under.
	VendorListVersion int
	// PurposeOneTreatment: purpose 1 is handled by local law; the
	// kernel treats the purpose-1 consent signal as granted (vendor
	// consent is still required).
	PurposeOneTreatment bool
	// MaxVendorID / MaxVendorLIID bound the vendor sections.
	MaxVendorID   int
	MaxVendorLIID int

	purposes        uint32 // purpose consent, bit p-1
	purposesLI      uint32 // purpose LI transparency
	specialFeatures uint32 // special-feature opt-ins
	pubPurposes     uint32 // publisher-TC purposes consent
	pubPurposesLI   uint32 // publisher-TC purposes LI
	hasPublisherTC  bool

	vendorConsent bitset
	vendorLI      bitset
	disclosed     bitset

	restrictNA []restriction // RestrictionNotAllowed
	restrictRC []restriction // RestrictionRequireConsent
	restrictRL []restriction // RestrictionRequireLegInt
}

// PurposeConsent reports the string's consent signal for a purpose
// (before restriction or GVL resolution), including the purpose-one
// treatment.
func (c *Compiled) PurposeConsent(p int) bool {
	if p < 1 || p > NumPurposeBits {
		return false
	}
	if p == 1 && c.PurposeOneTreatment {
		return true
	}
	return c.purposes>>uint(p-1)&1 == 1
}

// PurposeLI reports the string's LI-transparency signal for a purpose.
func (c *Compiled) PurposeLI(p int) bool {
	if p < 1 || p > NumPurposeBits {
		return false
	}
	return c.purposesLI>>uint(p-1)&1 == 1
}

// VendorConsent reports per-vendor consent.
func (c *Compiled) VendorConsent(v int) bool { return c.vendorConsent.test(v) }

// VendorLI reports per-vendor legitimate-interest establishment.
func (c *Compiled) VendorLI(v int) bool { return c.vendorLI.test(v) }

// SpecialFeature reports the opt-in for a special feature.
func (c *Compiled) SpecialFeature(f int) bool {
	if f < 1 || f > 12 {
		return false
	}
	return c.specialFeatures>>uint(f-1)&1 == 1
}

// ConsentedVendors returns the number of vendors with consent.
func (c *Compiled) ConsentedVendors() int { return c.vendorConsent.count() }

// sixBits maps the first base64 character of a TC string to its
// sextet — the consent-string version field, which occupies exactly
// the first six wire bits. Both RawURL and padded URL alphabets share
// these characters.
func sixBits(ch byte) (int, bool) {
	switch {
	case ch >= 'A' && ch <= 'Z':
		return int(ch - 'A'), true
	case ch >= 'a' && ch <= 'z':
		return int(ch-'a') + 26, true
	case ch >= '0' && ch <= '9':
		return int(ch-'0') + 52, true
	case ch == '-' || ch == '+':
		return 62, true
	case ch == '_' || ch == '/':
		return 63, true
	}
	return 0, false
}

// Compile decodes a raw v1 or v2 consent string (auto-detected from
// the leading version sextet) into its decision-ready form. Compile is
// the slow path — it allocates freely; Decide over the result does
// not.
func Compile(raw string) (*Compiled, error) {
	if raw == "" {
		return nil, fmt.Errorf("decision: empty consent string")
	}
	version, ok := sixBits(raw[0])
	if !ok {
		return nil, fmt.Errorf("decision: %q is not a base64 consent string", raw[0])
	}
	switch version {
	case tcf.Version:
		c, err := tcf.Decode(raw)
		if err != nil {
			return nil, err
		}
		return compileV1(raw, c), nil
	case tcf.V2Version:
		c, err := tcf.DecodeV2(raw)
		if err != nil {
			return nil, err
		}
		return compileV2(raw, c), nil
	default:
		return nil, fmt.Errorf("decision: unsupported consent string version %d", version)
	}
}

// compileV1 compiles a v1 string through the IAB v1→v2 migration
// mapping (the same mapping tcf.UpgradeToV2 applies): purposes 1–5 map
// onto their v2 successors, vendor consent carries over, and
// legitimate interest stays empty — a v1 string cannot express it.
func compileV1(raw string, c *tcf.ConsentString) *Compiled {
	cp := &Compiled{
		Raw:               raw,
		WireVersion:       tcf.Version,
		VendorListVersion: c.VendorListVersion,
		MaxVendorID:       c.MaxVendorID,
	}
	// v1→v2 purpose mapping: storage/access → 1; personalisation →
	// profiles (3, 5); ad selection → 2, 4; content selection → 6;
	// measurement → 7, 8.
	mapping := [...][]int{1: {1}, 2: {3, 5}, 3: {2, 4}, 4: {6}, 5: {7, 8}}
	for p1 := 1; p1 <= tcf.NumPurposes; p1++ {
		if !c.PurposesAllowed[p1] {
			continue
		}
		for _, p2 := range mapping[p1] {
			cp.purposes |= 1 << uint(p2-1)
		}
	}
	cp.vendorConsent = packMap(c.VendorConsent, c.MaxVendorID)
	return cp
}

func compileV2(raw string, c *tcf.V2ConsentString) *Compiled {
	cp := &Compiled{
		Raw:                 raw,
		WireVersion:         tcf.V2Version,
		VendorListVersion:   c.VendorListVersion,
		PurposeOneTreatment: c.PurposeOneTreatment,
		MaxVendorID:         c.MaxVendorID,
		MaxVendorLIID:       c.MaxVendorLIID,
		purposes:            packBits(c.PurposesConsent, 24),
		purposesLI:          packBits(c.PurposesLITransparency, 24),
		specialFeatures:     packBits(c.SpecialFeatureOptIns, 12),
		hasPublisherTC:      c.HasPublisherTC,
		pubPurposes:         packBits(c.PubPurposesConsent, 24),
		pubPurposesLI:       packBits(c.PubPurposesLITransparency, 24),
		vendorConsent:       packMap(c.VendorConsent, c.MaxVendorID),
		vendorLI:            packMap(c.VendorLegInt, c.MaxVendorLIID),
	}
	if len(c.DisclosedVendors) > 0 {
		max := 0
		for id, ok := range c.DisclosedVendors {
			if ok && id > max {
				max = id
			}
		}
		cp.disclosed = packMap(c.DisclosedVendors, max)
	}
	for _, pr := range c.PubRestrictions {
		if pr.Purpose < 1 || pr.Purpose > NumPurposeBits || len(pr.VendorIDs) == 0 {
			// Restrictions outside the queryable purpose range can
			// never match a decision; NaiveDecide skips them the same
			// way.
			continue
		}
		max := 0
		for _, id := range pr.VendorIDs {
			if id > max {
				max = id
			}
		}
		r := restriction{purpose: uint8(pr.Purpose), vendors: newBitset(max)}
		for _, id := range pr.VendorIDs {
			r.vendors.set(id)
		}
		switch pr.Type {
		case tcf.RestrictionNotAllowed:
			cp.restrictNA = append(cp.restrictNA, r)
		case tcf.RestrictionRequireConsent:
			cp.restrictRC = append(cp.restrictRC, r)
		case tcf.RestrictionRequireLegInt:
			cp.restrictRL = append(cp.restrictRL, r)
		}
	}
	return cp
}
