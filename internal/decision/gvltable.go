package decision

import (
	"sort"

	"repro/internal/gvl"
)

// Pre-resolved GVL serving tables. Legal-basis resolution must answer
// "did vendor N register purpose P under consent / legitimate
// interest / flexibly on list version V?" without touching the JSON
// vendor lists (slices searched linearly, maps, allocations) at
// decision time. A VendorTable flattens one published v2 list into
// arrays indexed by vendor ID: presence bitset plus three uint16
// purpose masks per vendor. The Resolver holds one table per version
// and resolves a consent string's stamped version to the list it was
// written under.

// purposeMaskBits bounds the declared-purpose masks. GVL v2 declares
// purposes 1..10; 16 bits leave headroom without widening the table.
const purposeMaskBits = 16

// VendorTable is one GVL version pre-resolved for serving. Immutable
// after construction; safe for concurrent use.
type VendorTable struct {
	// Version is the vendor-list version the table was built from.
	Version int
	// MaxVendorID bounds the arrays.
	MaxVendorID int

	present  bitset
	consent  []uint16 // indexed by vendor ID; bit p-1 set ⇒ declared under consent
	legInt   []uint16 // declared under legitimate interest
	flexible []uint16 // declared flexible
}

// NewVendorTable flattens one v2 list into its serving form.
func NewVendorTable(l *gvl.ListV2) *VendorTable {
	max := l.MaxVendorID()
	t := &VendorTable{
		Version:     l.VendorListVersion,
		MaxVendorID: max,
		present:     newBitset(max),
		consent:     make([]uint16, max+1),
		legInt:      make([]uint16, max+1),
		flexible:    make([]uint16, max+1),
	}
	for i := range l.Vendors {
		v := &l.Vendors[i]
		if v.ID < 1 || v.ID > max {
			continue
		}
		t.present.set(v.ID)
		t.consent[v.ID] = purposeMask(v.Purposes)
		t.legInt[v.ID] = purposeMask(v.LegIntPurposes)
		t.flexible[v.ID] = purposeMask(v.FlexiblePurposes)
	}
	return t
}

func purposeMask(purposes []int) uint16 {
	var m uint16
	for _, p := range purposes {
		if p >= 1 && p <= purposeMaskBits {
			m |= 1 << uint(p-1)
		}
	}
	return m
}

// Registered reports whether the vendor is on this list version.
func (t *VendorTable) Registered(vendor int) bool { return t.present.test(vendor) }

// Vendors returns the number of registered vendors.
func (t *VendorTable) Vendors() int { return t.present.count() }

func (t *VendorTable) declaresConsent(vendor, purpose int) bool {
	return purpose >= 1 && purpose <= purposeMaskBits &&
		vendor < len(t.consent) && t.consent[vendor]>>uint(purpose-1)&1 == 1
}

func (t *VendorTable) declaresLegInt(vendor, purpose int) bool {
	return purpose >= 1 && purpose <= purposeMaskBits &&
		vendor < len(t.legInt) && t.legInt[vendor]>>uint(purpose-1)&1 == 1
}

func (t *VendorTable) declaresFlexible(vendor, purpose int) bool {
	return purpose >= 1 && purpose <= purposeMaskBits &&
		vendor < len(t.flexible) && t.flexible[vendor]>>uint(purpose-1)&1 == 1
}

// Resolver maps a consent string's VendorListVersion to the serving
// table (and, for the differential reference path, the source list) of
// the GVL it was written under. Immutable after construction.
type Resolver struct {
	versions []int // ascending
	tables   map[int]*VendorTable
	lists    map[int]*gvl.ListV2
}

// NewResolver pre-resolves every version of a v2 history.
func NewResolver(h *gvl.HistoryV2) *Resolver {
	r := &Resolver{
		tables: make(map[int]*VendorTable, len(h.Versions)),
		lists:  make(map[int]*gvl.ListV2, len(h.Versions)),
	}
	for i := range h.Versions {
		l := &h.Versions[i]
		r.versions = append(r.versions, l.VendorListVersion)
		r.tables[l.VendorListVersion] = NewVendorTable(l)
		r.lists[l.VendorListVersion] = l
	}
	sort.Ints(r.versions)
	return r
}

// resolve returns the newest known version ≤ the given version, or 0.
// A string stamped with an unpublished intermediate version resolves
// to the list it was actually written under; a version predating the
// history resolves to nothing (no declaration check possible).
func (r *Resolver) resolve(version int) int {
	i := sort.Search(len(r.versions), func(i int) bool { return r.versions[i] > version })
	if i == 0 {
		return 0
	}
	return r.versions[i-1]
}

// Table returns the serving table for a stamped vendor-list version,
// or nil when the version predates the history.
func (r *Resolver) Table(version int) *VendorTable {
	return r.tables[r.resolve(version)]
}

// List returns the source v2 list for a stamped version under the same
// resolution rule — the reference the naive decision path reads.
func (r *Resolver) List(version int) *gvl.ListV2 {
	return r.lists[r.resolve(version)]
}

// Versions returns the resolver's version span and count.
func (r *Resolver) Versions() (min, max, count int) {
	if len(r.versions) == 0 {
		return 0, 0, 0
	}
	return r.versions[0], r.versions[len(r.versions)-1], len(r.versions)
}
