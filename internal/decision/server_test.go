package decision

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/gvl"
	"repro/internal/obs"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	h := gvl.GenerateHistory(gvl.HistoryConfig{
		Seed: 7, Versions: 20, InitialVendors: 60, PeakVendors: 200,
	})
	srv := NewServer(ServerConfig{
		Resolver: NewResolver(gvl.UpgradeHistory(h, gvl.DefaultV2UpgradeConfig())),
		Registry: obs.NewRegistry(),
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestParseBatchLine(t *testing.T) {
	tc, v, p, err := parseBatchLine([]byte(`{"t":"COtybn4PA","v":12,"p":3}`))
	if err != nil || string(tc) != "COtybn4PA" || v != 12 || p != 3 {
		t.Fatalf("full line: tc=%q v=%d p=%d err=%v", tc, v, p, err)
	}
	tc, v, p, err = parseBatchLine([]byte(`{"v":650,"p":10}`))
	if err != nil || tc != nil || v != 650 || p != 10 {
		t.Fatalf("sticky line: tc=%q v=%d p=%d err=%v", tc, v, p, err)
	}
	for _, bad := range []string{
		``, `{}`, `{"v":1}`, `{"p":1,"v":2}`, `[1,2]`,
		`{"t":"abc","v":1,"p":2} `, `{"v":1,"p":2}x`,
		`{"t":"unterminated,"v":1,"p":2}`,
		"{\"t\":\"a\x00b\",\"v\":1,\"p\":2}",
		`{"v":99999999999999999999,"p":1}`,
		`{"v":-1,"p":2}`, `{"v":1.5,"p":2}`,
		`{ "v":1,"p":2}`, `{"v":1, "p":2}`,
	} {
		if _, _, _, err := parseBatchLine([]byte(bad)); err == nil {
			t.Errorf("parseBatchLine(%q) accepted", bad)
		}
	}
}

func TestServerDecide(t *testing.T) {
	_, ts := testServer(t)
	raw := mustEncodeV2(t, acceptAllV2(t, 100))

	resp, err := http.Get(ts.URL + "/decide?tc=" + raw + "&vendor=3&purpose=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	var dr decideResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	if dr.WireVersion != 2 || dr.VendorListVersion != 30 {
		t.Fatalf("response header: %+v", dr)
	}
	if dr.GVLResolved == 0 {
		t.Fatalf("GVL did not resolve: %+v", dr)
	}
	// Missing params and bad strings are client errors.
	for _, q := range []string{"", "?tc=xyz", "?tc=" + raw + "&vendor=a&purpose=1"} {
		r2, err := http.Get(ts.URL + "/decide" + q)
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /decide%s: status %s, want 400", q, r2.Status)
		}
	}
}

func TestServerBatch(t *testing.T) {
	srv, ts := testServer(t)
	raw := mustEncodeV2(t, acceptAllV2(t, 100))

	body := `{"t":"` + raw + `","v":3,"p":1}` + "\n" +
		`{"v":5,"p":2}` + "\n" +
		`{"v":9999,"p":1}` + "\n"
	resp, err := http.Post(ts.URL+"/v1/batch", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	var out strings.Builder
	if _, err := io.Copy(&out, resp.Body); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(out.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d answer lines: %q", len(lines), out.String())
	}
	// Vendor 9999 is outside every section and list: denied.
	if lines[2] != `{"b":"N"}` {
		t.Errorf("line 3 = %q, want denial", lines[2])
	}
	for _, l := range lines {
		if len(l) != BatchAnswerLen-1 {
			t.Errorf("answer line %q is %d bytes, want %d", l, len(l), BatchAnswerLen-1)
		}
	}
	if got := srv.decisions.Load(); got != 3 {
		t.Errorf("server counted %d decisions, want 3", got)
	}

	// First line without a consent string is a 400.
	r2, err := http.Post(ts.URL+"/v1/batch", "application/x-ndjson",
		strings.NewReader(`{"v":1,"p":1}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("headless batch: status %s, want 400", r2.Status)
	}
	// GET is rejected.
	r3, err := http.Get(ts.URL + "/v1/batch")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET batch: status %s, want 405", r3.Status)
	}
}

func TestServerFilter(t *testing.T) {
	_, ts := testServer(t)
	c := acceptAllV2(t, 50)
	delete(c.VendorConsent, 7)
	raw := mustEncodeV2(t, c)

	req := `{"t":"` + raw + `","purpose":1,"vendors":[3,7,20,51]}`
	resp, err := http.Post(ts.URL+"/v1/filter", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	var fr filterResponse
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	if fr.Checked != 4 {
		t.Errorf("checked = %d, want 4", fr.Checked)
	}
	// Vendor 7 lost consent; 51 is out of range; 3 and 20 pass the
	// string but must also be registered on the resolved list, so just
	// assert the denials are absent.
	for _, v := range fr.Allowed {
		if v == 7 || v == 51 {
			t.Errorf("vendor %d allowed, want denied", v)
		}
	}

	r2, err := http.Post(ts.URL+"/v1/filter", "application/json", strings.NewReader(`{"vendors":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("empty filter: status %s, want 400", r2.Status)
	}
}

func TestServerHealthz(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.GVL.Versions != 20 || h.GVL.MinVersion != 1 {
		t.Errorf("GVL health: %+v", h.GVL)
	}
	if h.Cache.Capacity == 0 {
		t.Errorf("cache health empty: %+v", h.Cache)
	}
}

// TestLoadDriver runs the full loop: generate a population, boot a
// server, drive a small load, then validate every sampled batch answer
// against the naive path.
func TestLoadDriver(t *testing.T) {
	srv, ts := testServer(t)
	pop, err := GeneratePopulation(PopulationConfig{Seed: 3, Size: 300, MaxVLV: 20})
	if err != nil {
		t.Fatal(err)
	}
	cfg := LoadConfig{
		ServerURL:  ts.URL,
		Population: pop,
		Workers:    2,
		Decisions:  4000,
		BatchSize:  128,
		Bodies:     8,
	}
	res, err := RunLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions < 4000 {
		t.Fatalf("only %d decisions", res.Decisions)
	}
	if res.DecisionsPerSec <= 0 || res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("implausible result: %+v", res)
	}
	var answered int64
	for _, n := range res.Bases {
		answered += n
	}
	if answered != res.Decisions {
		t.Fatalf("basis counts %v do not sum to %d", res.Bases, res.Decisions)
	}

	vr, err := ValidateAgainstNaive(cfg, srv.resolver, 4)
	if err != nil {
		t.Fatal(err)
	}
	if vr.Checked != 4*128 {
		t.Fatalf("validated %d answers, want %d", vr.Checked, 4*128)
	}
	if vr.Mismatches != 0 {
		t.Fatalf("%d mismatches vs naive: %s", vr.Mismatches, vr.FirstMismatch)
	}
}
