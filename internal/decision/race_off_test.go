//go:build !race

package decision

// differentialPopulationSize is the full acceptance-scale population
// for the compiled-vs-naive identity check.
const differentialPopulationSize = 100_000
