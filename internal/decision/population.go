package decision

import (
	"fmt"
	"time"

	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/tcf"
)

// Synthetic consent-string populations for load-testing and
// differential testing. The mix follows what the measurement side of
// this repository observes in its webworld: accept-all strings
// dominate (most users click the highlighted button), reject-all is a
// sizeable minority, and a tail of partial grants carries every
// encoding feature the codec supports — v1 bitfield and range
// encodings, v2 legitimate-interest signals, special-feature opt-ins,
// publisher restrictions and publisher-TC segments. Identical seeds
// generate identical populations, so a load run against consentd can
// be re-validated offline against the naive path.

// PopulationConfig parameterizes the generator.
type PopulationConfig struct {
	// Seed roots all draws.
	Seed uint64
	// Size is the number of strings (default 10_000).
	Size int
	// V2Share is the fraction of TCF v2 strings; the rest are v1
	// (default 0.7 — the 2020 migration-era mix).
	V2Share float64
	// AcceptAllShare / RejectAllShare split user decisions; the
	// remainder are partial grants (defaults 0.55 / 0.25).
	AcceptAllShare float64
	RejectAllShare float64
	// MaxVendorID bounds vendor sections (default 650, the GVL scale
	// the paper observed).
	MaxVendorID int
	// MinVLV / MaxVLV bound the stamped vendor-list versions
	// (defaults 1 / 215).
	MinVLV int
	MaxVLV int
	// RestrictionShare is the fraction of v2 strings carrying
	// publisher restrictions (default 0.08).
	RestrictionShare float64
	// PublisherTCShare is the fraction of v2 strings with a
	// publisher-TC segment (default 0.15).
	PublisherTCShare float64
}

func (c PopulationConfig) withDefaults() PopulationConfig {
	if c.Size <= 0 {
		c.Size = 10_000
	}
	if c.V2Share <= 0 {
		c.V2Share = 0.7
	}
	if c.AcceptAllShare <= 0 {
		c.AcceptAllShare = 0.55
	}
	if c.RejectAllShare <= 0 {
		c.RejectAllShare = 0.25
	}
	if c.MaxVendorID <= 0 {
		c.MaxVendorID = 650
	}
	if c.MinVLV <= 0 {
		c.MinVLV = 1
	}
	if c.MaxVLV < c.MinVLV {
		c.MaxVLV = 215
	}
	if c.RestrictionShare <= 0 {
		c.RestrictionShare = 0.08
	}
	if c.PublisherTCShare <= 0 {
		c.PublisherTCShare = 0.15
	}
	return c
}

// Population is a generated set of consent strings.
type Population struct {
	Strings []string
	Config  PopulationConfig
}

// GeneratePopulation builds a deterministic population.
func GeneratePopulation(cfg PopulationConfig) (*Population, error) {
	cfg = cfg.withDefaults()
	src := rng.New(cfg.Seed).Derive("decision-population")
	p := &Population{Strings: make([]string, 0, cfg.Size), Config: cfg}
	for i := 0; i < cfg.Size; i++ {
		s, err := generateString(src, cfg, i)
		if err != nil {
			return nil, fmt.Errorf("decision: population string %d: %w", i, err)
		}
		p.Strings = append(p.Strings, s)
	}
	return p, nil
}

func generateString(src *rng.Source, cfg PopulationConfig, i int) (string, error) {
	r := src.Stream("pop", rng.Key(i))
	created := simtime.Date(2020, time.January, 1).Time().Add(
		time.Duration(r.Intn(200*24)) * time.Hour)
	vlv := cfg.MinVLV + r.Intn(cfg.MaxVLV-cfg.MinVLV+1)
	maxVendor := 50 + r.Intn(cfg.MaxVendorID-49)
	kindDraw := r.Float64()

	if r.Float64() >= cfg.V2Share {
		// TCF v1.1 string.
		c := tcf.New(created)
		c.CMPID = 1 + r.Intn(300)
		c.VendorListVersion = vlv
		switch {
		case kindDraw < cfg.AcceptAllShare:
			c.SetAllPurposes(true)
			c.SetAllVendors(maxVendor, true)
		case kindDraw < cfg.AcceptAllShare+cfg.RejectAllShare:
			c.MaxVendorID = maxVendor
		default:
			for p := 1; p <= tcf.NumPurposes; p++ {
				c.PurposesAllowed[p] = r.Float64() < 0.6
			}
			c.MaxVendorID = maxVendor
			density := 0.1 + 0.8*r.Float64()
			for v := 1; v <= maxVendor; v++ {
				if r.Float64() < density {
					c.VendorConsent[v] = true
				}
			}
		}
		// Exercise both vendor encodings explicitly; Encode alone
		// would always pick the smaller.
		if r.Float64() < 0.5 {
			return c.EncodeWith(tcf.EncodingBitField)
		}
		return c.EncodeWith(tcf.EncodingRange)
	}

	// TCF v2 string.
	c := tcf.NewV2(created)
	c.CMPID = 1 + r.Intn(300)
	c.VendorListVersion = vlv
	c.IsServiceSpecific = r.Float64() < 0.6
	c.PurposeOneTreatment = r.Float64() < 0.05
	c.MaxVendorID = maxVendor
	switch {
	case kindDraw < cfg.AcceptAllShare:
		for p := 1; p <= tcf.NumPurposesV2; p++ {
			c.PurposesConsent[p] = true
		}
		for v := 1; v <= maxVendor; v++ {
			c.VendorConsent[v] = true
		}
		c.SpecialFeatureOptIns[1] = true
		c.SpecialFeatureOptIns[2] = true
	case kindDraw < cfg.AcceptAllShare+cfg.RejectAllShare:
		// Reject-all still establishes LI transparency for a few
		// purposes — CMPs record the disclosure even on reject.
		for p := 2; p <= tcf.NumPurposesV2; p++ {
			c.PurposesLITransparency[p] = r.Float64() < 0.5
		}
	default:
		for p := 1; p <= tcf.NumPurposesV2; p++ {
			c.PurposesConsent[p] = r.Float64() < 0.6
			c.PurposesLITransparency[p] = r.Float64() < 0.35
		}
		density := 0.1 + 0.8*r.Float64()
		for v := 1; v <= maxVendor; v++ {
			if r.Float64() < density {
				c.VendorConsent[v] = true
			}
		}
		c.MaxVendorLIID = maxVendor
		liDensity := 0.5 * density
		for v := 1; v <= maxVendor; v++ {
			if r.Float64() < liDensity {
				c.VendorLegInt[v] = true
			}
		}
		c.SpecialFeatureOptIns[1] = r.Float64() < 0.4
	}
	if r.Float64() < cfg.RestrictionShare {
		n := 1 + r.Intn(3)
		for j := 0; j < n; j++ {
			pr := tcf.PubRestriction{
				Purpose: 1 + r.Intn(tcf.NumPurposesV2),
				Type:    tcf.RestrictionType(r.Intn(3)),
			}
			for k := 0; k < 1+r.Intn(8); k++ {
				pr.VendorIDs = append(pr.VendorIDs, 1+r.Intn(maxVendor))
			}
			c.PubRestrictions = append(c.PubRestrictions, pr)
		}
	}
	if r.Float64() < cfg.PublisherTCShare {
		c.HasPublisherTC = true
		for p := 1; p <= tcf.NumPurposesV2; p++ {
			c.PubPurposesConsent[p] = r.Float64() < 0.5
		}
	}
	return c.EncodeV2()
}
