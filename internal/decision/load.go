package decision

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rng"
)

// The load driver behind cmd/decisionload and the decision smoke gate.
// It generates a deterministic stream of synthetic bid requests over a
// consent-string population — Zipf-skewed string popularity, uniform
// vendor/purpose draws, auction-shaped runs of decisions per string —
// pre-renders them into NDJSON batch bodies, and drives a consentd over
// real HTTP from concurrent workers. Bodies are rendered before the
// clock starts (the wrk approach), so the measured path is transport +
// server, not client formatting. A validation pass replays sampled
// batches and checks every answer against the naive reference decoder.

// LoadConfig parameterizes a load run.
type LoadConfig struct {
	// ServerURL is the consentd base URL (e.g. "http://127.0.0.1:8344").
	ServerURL string
	// Population supplies the consent strings (required).
	Population *Population
	// Seed roots the traffic draws (default: population seed).
	Seed uint64
	// Workers is the number of concurrent client connections
	// (default 4).
	Workers int
	// Decisions is the total decision target (default 1_000_000).
	Decisions int
	// BatchSize is decisions per HTTP request (default 512).
	BatchSize int
	// Bodies is the size of the pre-rendered body pool the workers
	// cycle through (default 64).
	Bodies int
	// ZipfExponent skews string popularity (default 1.1; ≤0 keeps the
	// default, set Uniform to disable skew).
	ZipfExponent float64
	// Uniform disables the Zipf skew (every string equally likely) —
	// the cache-hostile worst case.
	Uniform bool
	// MaxVendorID / MaxPurpose bound the query draws (defaults 650/10).
	MaxVendorID int
	MaxPurpose  int
	// RunLength is the maximum decisions asked about one string before
	// switching (default 16; real bid requests fan one user's string
	// out across many vendors).
	RunLength int
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Seed == 0 && c.Population != nil {
		c.Seed = c.Population.Config.Seed
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Decisions <= 0 {
		c.Decisions = 1_000_000
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 512
	}
	if c.Bodies <= 0 {
		c.Bodies = 64
	}
	if c.ZipfExponent <= 0 {
		c.ZipfExponent = 1.1
	}
	if c.MaxVendorID <= 0 {
		c.MaxVendorID = 650
	}
	if c.MaxPurpose <= 0 {
		c.MaxPurpose = 10
	}
	if c.RunLength <= 0 {
		c.RunLength = 16
	}
	return c
}

// loadBody is one pre-rendered batch request plus the triples it asks
// about, kept for validation.
type loadBody struct {
	body    []byte
	queries []loadQuery
}

type loadQuery struct {
	stringIdx int // population index
	vendor    int
	purpose   int
}

// buildBodies pre-renders the body pool.
func buildBodies(cfg LoadConfig) []loadBody {
	src := rng.New(cfg.Seed).Derive("decision-load")
	var zipf *rng.Zipf
	if !cfg.Uniform {
		zipf = rng.NewZipf(len(cfg.Population.Strings), cfg.ZipfExponent)
	}
	bodies := make([]loadBody, cfg.Bodies)
	for b := range bodies {
		r := src.Stream("body", rng.Key(b))
		var buf bytes.Buffer
		queries := make([]loadQuery, 0, cfg.BatchSize)
		for len(queries) < cfg.BatchSize {
			var idx int
			if zipf != nil {
				idx = zipf.Rank(r) - 1
			} else {
				idx = r.Intn(len(cfg.Population.Strings))
			}
			run := 1 + r.Intn(cfg.RunLength)
			for j := 0; j < run && len(queries) < cfg.BatchSize; j++ {
				q := loadQuery{
					stringIdx: idx,
					vendor:    1 + r.Intn(cfg.MaxVendorID),
					purpose:   1 + r.Intn(cfg.MaxPurpose),
				}
				if j == 0 {
					buf.WriteString(`{"t":"`)
					buf.WriteString(cfg.Population.Strings[idx])
					buf.WriteString(`","v":`)
				} else {
					buf.WriteString(`{"v":`)
				}
				buf.WriteString(strconv.Itoa(q.vendor))
				buf.WriteString(`,"p":`)
				buf.WriteString(strconv.Itoa(q.purpose))
				buf.WriteString("}\n")
				queries = append(queries, q)
			}
		}
		bodies[b] = loadBody{body: buf.Bytes(), queries: queries}
	}
	return bodies
}

// PrerenderBodies renders the NDJSON batch bodies a load run with this
// configuration would send — exported for benchmarks and tools that
// drive the batch endpoint directly.
func PrerenderBodies(cfg LoadConfig) [][]byte {
	cfg = cfg.withDefaults()
	bodies := buildBodies(cfg)
	out := make([][]byte, len(bodies))
	for i := range bodies {
		out[i] = bodies[i].body
	}
	return out
}

// LoadResult summarizes a load run.
type LoadResult struct {
	Decisions       int64         `json:"decisions"`
	Requests        int64         `json:"requests"`
	Elapsed         time.Duration `json:"elapsed_ns"`
	DecisionsPerSec float64       `json:"decisions_per_sec"`
	// P50 / P99 are per-batch-request latencies.
	P50 time.Duration `json:"p50_ns"`
	P99 time.Duration `json:"p99_ns"`
	// Bases counts answers by basis letter (N/C/L).
	Bases map[string]int64 `json:"bases"`
}

// RunLoad drives the server and measures throughput.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Population == nil || len(cfg.Population.Strings) == 0 {
		return nil, fmt.Errorf("decision: load needs a population")
	}
	if cfg.ServerURL == "" {
		return nil, fmt.Errorf("decision: load needs a server URL")
	}
	bodies := buildBodies(cfg)
	url := cfg.ServerURL + "/v1/batch"

	var (
		decisions atomic.Int64
		requests  atomic.Int64
		nextBody  atomic.Int64
		basisCnt  [3]atomic.Int64
		firstErr  atomic.Value
		wg        sync.WaitGroup
	)
	latencies := make([][]time.Duration, cfg.Workers)

	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Transport: &http.Transport{
				MaxIdleConnsPerHost: 2,
				IdleConnTimeout:     30 * time.Second,
			}}
			respBuf := make([]byte, 64<<10)
			for decisions.Load() < int64(cfg.Decisions) {
				lb := &bodies[int(nextBody.Add(1)-1)%len(bodies)]
				t0 := time.Now()
				resp, err := client.Post(url, "application/x-ndjson", bytes.NewReader(lb.body))
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				if resp.StatusCode == http.StatusTooManyRequests {
					// Shed by the limiter; back off briefly and retry.
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					time.Sleep(2 * time.Millisecond)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					resp.Body.Close()
					firstErr.CompareAndSwap(nil, fmt.Errorf("decision: batch returned %s", resp.Status))
					return
				}
				// Every answer line is exactly BatchAnswerLen bytes;
				// carry keeps a partial line across reads since TCP
				// chunking ignores line boundaries.
				var n int64
				carry := 0
				for {
					k, rerr := resp.Body.Read(respBuf[carry:])
					k += carry
					i := 0
					for ; i+BatchAnswerLen <= k; i += BatchAnswerLen {
						switch respBuf[i+batchAnswerOffset] {
						case 'C':
							basisCnt[BasisConsent].Add(1)
						case 'L':
							basisCnt[BasisLegInt].Add(1)
						default:
							basisCnt[BasisNone].Add(1)
						}
						n++
					}
					carry = copy(respBuf, respBuf[i:k])
					if rerr != nil {
						break
					}
				}
				resp.Body.Close()
				latencies[w] = append(latencies[w], time.Since(t0))
				decisions.Add(n)
				requests.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return nil, err
	}

	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := &LoadResult{
		Decisions:       decisions.Load(),
		Requests:        requests.Load(),
		Elapsed:         elapsed,
		DecisionsPerSec: float64(decisions.Load()) / elapsed.Seconds(),
		Bases: map[string]int64{
			"none":                basisCnt[BasisNone].Load(),
			"consent":             basisCnt[BasisConsent].Load(),
			"legitimate-interest": basisCnt[BasisLegInt].Load(),
		},
	}
	if len(all) > 0 {
		res.P50 = all[len(all)*50/100]
		i99 := len(all) * 99 / 100
		if i99 >= len(all) {
			i99 = len(all) - 1
		}
		res.P99 = all[i99]
	}
	return res, nil
}

// ValidateResult reports a validation replay.
type ValidateResult struct {
	Checked    int `json:"checked"`
	Mismatches int `json:"mismatches"`
	// FirstMismatch describes the first disagreement, if any.
	FirstMismatch string `json:"first_mismatch,omitempty"`
}

// ValidateAgainstNaive replays up to maxBodies pre-rendered batches
// against the server and checks every answer against the naive
// reference path (full re-decode + map lookups, resolver-supplied
// source lists). This is the smoke gate's correctness check: the
// compiled kernel, the cache, the batch parser and the wire format all
// have to agree with the reference for it to pass.
func ValidateAgainstNaive(cfg LoadConfig, resolver *Resolver, maxBodies int) (*ValidateResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Population == nil || len(cfg.Population.Strings) == 0 {
		return nil, fmt.Errorf("decision: validation needs a population")
	}
	bodies := buildBodies(cfg)
	if maxBodies <= 0 || maxBodies > len(bodies) {
		maxBodies = len(bodies)
	}
	client := &http.Client{}
	res := &ValidateResult{}
	for b := 0; b < maxBodies; b++ {
		lb := &bodies[b]
		resp, err := client.Post(cfg.ServerURL+"/v1/batch", "application/x-ndjson", bytes.NewReader(lb.body))
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("decision: validation batch returned %s", resp.Status)
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 4096), 4096)
		i := 0
		for sc.Scan() {
			line := sc.Bytes()
			if i >= len(lb.queries) {
				resp.Body.Close()
				return nil, fmt.Errorf("decision: server answered more lines than asked")
			}
			q := lb.queries[i]
			raw := cfg.Population.Strings[q.stringIdx]
			got, err := parseAnswerLine(line)
			if err != nil {
				resp.Body.Close()
				return nil, err
			}
			want, nerr := naiveForString(raw, resolver, q.vendor, q.purpose)
			if nerr != nil {
				resp.Body.Close()
				return nil, fmt.Errorf("decision: naive path rejected population string %d: %w", q.stringIdx, nerr)
			}
			res.Checked++
			if got != want {
				res.Mismatches++
				if res.FirstMismatch == "" {
					res.FirstMismatch = fmt.Sprintf(
						"string %d vendor %d purpose %d: server=%s naive=%s",
						q.stringIdx, q.vendor, q.purpose, got, want)
				}
			}
			i++
		}
		resp.Body.Close()
		if err := sc.Err(); err != nil {
			return nil, err
		}
		if i != len(lb.queries) {
			return nil, fmt.Errorf("decision: server answered %d of %d lines", i, len(lb.queries))
		}
	}
	return res, nil
}

// naiveForString answers one triple via the reference path, resolving
// the source list from the string's stamped version.
func naiveForString(raw string, resolver *Resolver, vendor, purpose int) (Basis, error) {
	c, err := Compile(raw)
	if err != nil {
		return BasisNone, err
	}
	if resolver == nil {
		return NaiveDecide(raw, nil, vendor, purpose)
	}
	return NaiveDecide(raw, resolver.List(c.VendorListVersion), vendor, purpose)
}

func parseAnswerLine(line []byte) (Basis, error) {
	if len(line) != BatchAnswerLen-1 { // scanner strips the newline
		return BasisNone, fmt.Errorf("decision: malformed answer line %q", line)
	}
	switch line[batchAnswerOffset] {
	case 'N':
		return BasisNone, nil
	case 'C':
		return BasisConsent, nil
	case 'L':
		return BasisLegInt, nil
	}
	return BasisNone, fmt.Errorf("decision: unknown basis in answer line %q", line)
}
