package decision

import (
	"sync"
	"testing"

	"repro/internal/gvl"
	"repro/internal/rng"
)

// The differential contract: for every consent string — fuzz-generated
// or population-generated — the compiled kernel must answer every
// (vendor, purpose) question identically to the naive reference path,
// with and without GVL tables. This is the acceptance gate for the
// whole package: the bit-packed fast path earns its keep only if it is
// indistinguishable from re-decoding.

var (
	testResolverOnce sync.Once
	testResolver     *Resolver
)

// sharedResolver builds one moderate GVL history for all differential
// tests (40 versions keeps construction fast while still exercising
// version resolution, vendor churn and flexible purposes).
func sharedResolver(t testing.TB) *Resolver {
	t.Helper()
	testResolverOnce.Do(func() {
		h := gvl.GenerateHistory(gvl.HistoryConfig{
			Seed: 7, Versions: 40, InitialVendors: 80, PeakVendors: 300,
		})
		testResolver = NewResolver(gvl.UpgradeHistory(h, gvl.DefaultV2UpgradeConfig()))
	})
	return testResolver
}

// checkTriple asserts kernel/naive agreement for one question.
func checkTriple(t *testing.T, cp *Compiled, r *Resolver, raw string, vendor, purpose int) {
	t.Helper()
	var table *VendorTable
	var list *gvl.ListV2
	if r != nil {
		table = r.Table(cp.VendorListVersion)
		list = r.List(cp.VendorListVersion)
	}
	got := Decide(cp, table, vendor, purpose)
	want, err := NaiveDecide(raw, list, vendor, purpose)
	if err != nil {
		t.Fatalf("naive rejected a string the kernel compiled: %v\nraw=%q", err, raw)
	}
	if got != want {
		t.Fatalf("divergence on vendor=%d purpose=%d: kernel=%v naive=%v\nraw=%q",
			vendor, purpose, got, want, raw)
	}
}

// TestDifferentialPopulation is the ≥100k-string identity check from
// the acceptance criteria (5k under -short). Every string is compiled
// once and probed on deterministic and drawn triples, without tables
// and with the shared resolver.
func TestDifferentialPopulation(t *testing.T) {
	size := differentialPopulationSize
	if testing.Short() {
		size = 5_000
	}
	pop, err := GeneratePopulation(PopulationConfig{Seed: 42, Size: size, MaxVLV: 40})
	if err != nil {
		t.Fatal(err)
	}
	r := sharedResolver(t)
	probe := rng.New(99).Derive("probe")

	fixed := [][2]int{{1, 1}, {3, 2}, {50, 7}, {649, 10}, {651, 1}, {1, 24}}
	for i, raw := range pop.Strings {
		cp, err := Compile(raw)
		if err != nil {
			t.Fatalf("population string %d does not compile: %v\nraw=%q", i, err, raw)
		}
		pr := probe.Stream("s", rng.Key(i))
		for _, fx := range fixed {
			checkTriple(t, cp, nil, raw, fx[0], fx[1])
			checkTriple(t, cp, r, raw, fx[0], fx[1])
		}
		for k := 0; k < 4; k++ {
			v, p := 1+pr.Intn(700), 1+pr.Intn(12)
			checkTriple(t, cp, nil, raw, v, p)
			checkTriple(t, cp, r, raw, v, p)
		}
	}
}

// TestDifferentialCacheAgrees re-asks through the cache: the compiled
// form a cache hit returns must answer exactly like a fresh compile.
func TestDifferentialCacheAgrees(t *testing.T) {
	pop, err := GeneratePopulation(PopulationConfig{Seed: 5, Size: 500})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(CacheConfig{Capacity: 128})
	for round := 0; round < 2; round++ { // second round hits
		for i, raw := range pop.Strings {
			fromCache, err := cache.Get(raw)
			if err != nil {
				t.Fatalf("string %d: %v", i, err)
			}
			fresh, err := Compile(raw)
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range [][2]int{{1, 1}, {20, 3}, {300, 8}} {
				if a, b := Decide(fromCache, nil, q[0], q[1]), Decide(fresh, nil, q[0], q[1]); a != b {
					t.Fatalf("cache answer %v != fresh answer %v for %v", a, b, q)
				}
			}
		}
	}
}

// FuzzDecideDifferential fuzzes raw strings through both paths. The
// kernel and the reference must agree on compilability, and — when a
// string decodes — on every probed decision, with and without tables.
func FuzzDecideDifferential(f *testing.F) {
	pop, err := GeneratePopulation(PopulationConfig{Seed: 11, Size: 64, MaxVLV: 40})
	if err != nil {
		f.Fatal(err)
	}
	for _, s := range pop.Strings {
		f.Add(s)
	}
	f.Add("")
	f.Add("BObdrPUOevsguAfDqFENCNAAAAAmeAAA")
	f.Add("COtybn4PA_zT4KjACBENAPCIAEBAAECAAIAAAAAAAAAA")
	f.Add("!!!!")
	f.Add("CP")

	h := gvl.GenerateHistory(gvl.HistoryConfig{
		Seed: 7, Versions: 10, InitialVendors: 40, PeakVendors: 120,
	})
	resolver := NewResolver(gvl.UpgradeHistory(h, gvl.DefaultV2UpgradeConfig()))

	f.Fuzz(func(t *testing.T, raw string) {
		cp, cerr := Compile(raw)
		_, nerr := NaiveDecide(raw, nil, 1, 1)
		if (cerr == nil) != (nerr == nil) {
			t.Fatalf("compilability disagreement: compile err=%v naive err=%v raw=%q", cerr, nerr, raw)
		}
		if cerr != nil {
			return
		}
		table := resolver.Table(cp.VendorListVersion)
		list := resolver.List(cp.VendorListVersion)
		for _, q := range [][2]int{{1, 1}, {2, 3}, {37, 5}, {100, 10}, {5000, 2}, {1, 24}, {0, 1}, {1, 0}} {
			got := Decide(cp, nil, q[0], q[1])
			want, err := NaiveDecide(raw, nil, q[0], q[1])
			if err != nil {
				t.Fatalf("naive failed after compile succeeded: %v", err)
			}
			if got != want {
				t.Fatalf("divergence (no table) v=%d p=%d: kernel=%v naive=%v raw=%q",
					q[0], q[1], got, want, raw)
			}
			got = Decide(cp, table, q[0], q[1])
			want, err = NaiveDecide(raw, list, q[0], q[1])
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("divergence (table v%d) v=%d p=%d: kernel=%v naive=%v raw=%q",
					cp.VendorListVersion, q[0], q[1], got, want, raw)
			}
		}
	})
}
