package decision

// Decide answers: may this vendor process for this purpose under the
// given consent string, and on which legal basis? It is the hot path —
// pure bit arithmetic over the Compiled form and the pre-resolved
// vendor table, 0 allocs/op (gated by TestDecideNoAllocs and
// BenchmarkDecideOne).
//
// Semantics (identical to NaiveDecide, asserted differentially):
//
//   - A RestrictionNotAllowed publisher restriction covering
//     (purpose, vendor) denies outright.
//   - The consent path requires the purpose-consent signal (with the
//     purpose-one treatment applied) AND per-vendor consent.
//   - The LI path requires purpose LI transparency AND per-vendor LI
//     establishment; v1-compiled strings have no LI signals, so the
//     path is naturally dead for them.
//   - RequireConsent / RequireLegInt restrictions disable the other
//     path for covered (purpose, vendor) pairs.
//   - With a vendor table (t != nil), the vendor must additionally be
//     registered on that GVL version and have declared the purpose
//     under the basis in question. A flexible purpose declared under
//     one basis may serve the other exactly when a Require* publisher
//     restriction switches it.
//
// t == nil answers from the string alone — the legal-basis declaration
// check is skipped, as for strings stamped with a vendor-list version
// predating the resolver's history.
func Decide(c *Compiled, t *VendorTable, vendor, purpose int) Basis {
	if c == nil || vendor <= 0 || purpose < 1 || purpose > NumPurposeBits {
		return BasisNone
	}
	var notAllowed, requireConsent, requireLI bool
	if len(c.restrictNA) > 0 {
		notAllowed = covers(c.restrictNA, vendor, purpose)
	}
	if notAllowed {
		return BasisNone
	}
	if len(c.restrictRC) > 0 {
		requireConsent = covers(c.restrictRC, vendor, purpose)
	}
	if len(c.restrictRL) > 0 {
		requireLI = covers(c.restrictRL, vendor, purpose)
	}

	pbit := uint(purpose - 1)
	purposeConsent := c.purposes>>pbit&1 == 1
	if purpose == 1 && c.PurposeOneTreatment {
		purposeConsent = true
	}
	consentOK := purposeConsent && c.vendorConsent.test(vendor)
	liOK := c.purposesLI>>pbit&1 == 1 && c.vendorLI.test(vendor)

	if t != nil {
		if !t.present.test(vendor) {
			return BasisNone
		}
		declC := t.declaresConsent(vendor, purpose)
		declLI := t.declaresLegInt(vendor, purpose)
		flex := t.declaresFlexible(vendor, purpose)
		// A Require* restriction switches a flexible purpose onto the
		// mandated basis; without flexibility the declaration stands.
		canConsent := declC || (declLI && flex && requireConsent)
		canLI := declLI || (declC && flex && requireLI)
		consentOK = consentOK && canConsent
		liOK = liOK && canLI
	}
	if requireConsent {
		liOK = false
	}
	if requireLI {
		consentOK = false
	}

	if consentOK {
		return BasisConsent
	}
	if liOK {
		return BasisLegInt
	}
	return BasisNone
}

// FilterVendors appends to dst the subset of vendors that may process
// for the purpose ("which of these K vendors may bid?") and returns
// it. dst may be nil; pass a reused buffer to keep the call
// allocation-free once grown.
func FilterVendors(c *Compiled, t *VendorTable, vendors []int, purpose int, dst []int) []int {
	for _, v := range vendors {
		if Decide(c, t, v, purpose).Allowed() {
			dst = append(dst, v)
		}
	}
	return dst
}
