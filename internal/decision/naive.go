package decision

import (
	"fmt"

	"repro/internal/gvl"
	"repro/internal/tcf"
)

// The naive reference path: decode the string with the batch codec on
// every call and answer from the original map representation, reading
// legal-basis declarations straight off the JSON-shaped vendor list.
// This is what a decision cost before this package existed, and it is
// the ground truth the compiled kernel is differentially tested
// against — over the fuzz corpus and the generated population, Decide
// and NaiveDecide must agree on every (string, vendor, purpose).

// NaiveDecide re-decodes raw and answers with map lookups. l is the
// source vendor list for the string's stamped version (nil skips the
// declaration check, mirroring Decide with a nil table).
func NaiveDecide(raw string, l *gvl.ListV2, vendor, purpose int) (Basis, error) {
	if raw == "" {
		return BasisNone, fmt.Errorf("decision: empty consent string")
	}
	version, ok := sixBits(raw[0])
	if !ok {
		return BasisNone, fmt.Errorf("decision: %q is not a base64 consent string", raw[0])
	}
	var v2 *tcf.V2ConsentString
	switch version {
	case tcf.Version:
		c, err := tcf.Decode(raw)
		if err != nil {
			return BasisNone, err
		}
		// The kernel serves v1 strings through their v2 upgrade; the
		// reference path uses the codec's own migration.
		v2 = tcf.UpgradeToV2(c)
	case tcf.V2Version:
		c, err := tcf.DecodeV2(raw)
		if err != nil {
			return BasisNone, err
		}
		v2 = c
	default:
		return BasisNone, fmt.Errorf("decision: unsupported consent string version %d", version)
	}
	return naiveDecideV2(v2, l, vendor, purpose), nil
}

func naiveDecideV2(c *tcf.V2ConsentString, l *gvl.ListV2, vendor, purpose int) Basis {
	if vendor <= 0 || purpose < 1 || purpose > NumPurposeBits {
		return BasisNone
	}
	var notAllowed, requireConsent, requireLI bool
	for _, pr := range c.PubRestrictions {
		if pr.Purpose != purpose || !containsVendor(pr.VendorIDs, vendor) {
			continue
		}
		switch pr.Type {
		case tcf.RestrictionNotAllowed:
			notAllowed = true
		case tcf.RestrictionRequireConsent:
			requireConsent = true
		case tcf.RestrictionRequireLegInt:
			requireLI = true
		}
	}
	if notAllowed {
		return BasisNone
	}

	purposeConsent := c.PurposesConsent[purpose]
	if purpose == 1 && c.PurposeOneTreatment {
		purposeConsent = true
	}
	consentOK := purposeConsent && vendor <= c.MaxVendorID && c.VendorConsent[vendor]
	liOK := c.PurposesLITransparency[purpose] && vendor <= c.MaxVendorLIID && c.VendorLegInt[vendor]

	if l != nil {
		v := l.Vendor(vendor)
		if v == nil {
			return BasisNone
		}
		declC := v.DeclaresConsent(purpose)
		declLI := v.DeclaresLegInt(purpose)
		flex := v.DeclaresFlexible(purpose)
		canConsent := declC || (declLI && flex && requireConsent)
		canLI := declLI || (declC && flex && requireLI)
		consentOK = consentOK && canConsent
		liOK = liOK && canLI
	}
	if requireConsent {
		liOK = false
	}
	if requireLI {
		consentOK = false
	}

	if consentOK {
		return BasisConsent
	}
	if liOK {
		return BasisLegInt
	}
	return BasisNone
}

func containsVendor(ids []int, v int) bool {
	for _, id := range ids {
		if id == v {
			return true
		}
	}
	return false
}
