package decision

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
)

// The consentd HTTP surface. Three decision endpoints sit behind a
// load-shedding resilience.HTTPLimiter; /healthz stays outside it so
// orchestration keeps working while traffic is being shed (the same
// split capd uses).
//
//	GET  /decide?tc=S&vendor=N&purpose=P
//	     one decision as JSON: {"allowed":…,"basis":…}
//
//	POST /v1/batch
//	     NDJSON in, NDJSON out, one line per decision. Request lines
//	     are canonical (no spaces, keys in order):
//	         {"t":"<tc-string>","v":<vendor>,"p":<purpose>}
//	         {"v":<vendor>,"p":<purpose>}          # reuses previous t
//	     The sticky "t" mirrors the auction shape — one user's string
//	     asked about many vendors — and keeps the per-line cost to a
//	     few dozen nanoseconds. Response lines are {"b":"C"} with
//	     b ∈ {"N","C","L"} (denied / consent / legitimate interest),
//	     in request order.
//
//	POST /v1/filter
//	     {"t":"<tc>","purpose":P,"vendors":[…]} →
//	     {"allowed":[…],"checked":K} — the pre-auction vendor filter.
//
//	GET  /healthz
//	     uptime, decision counters, cache and GVL state, limiter.

// ServerConfig wires a decision server.
type ServerConfig struct {
	// Resolver provides pre-resolved GVL tables; nil serves decisions
	// from the string alone.
	Resolver *Resolver
	// Cache sizes the compiled-form cache (zero values take the
	// CacheConfig defaults).
	Cache CacheConfig
	// MaxInFlight / RequestTimeout parameterize the HTTP limiter
	// (defaults 256 / 10s).
	MaxInFlight    int
	RequestTimeout time.Duration
	// Registry / Tracer attach the obs surface; both optional.
	Registry *obs.Registry
	// Tracer records decision spans.
	Tracer *obs.Tracer
	// MaxBatchBytes caps a /v1/batch request body (default 8 MiB).
	MaxBatchBytes int64
}

// Server answers consent decisions over HTTP.
type Server struct {
	cache    *Cache
	resolver *Resolver
	limiter  *resilience.HTTPLimiter
	tracer   *obs.Tracer
	m        *serverMetrics
	start    time.Time
	maxBatch int64

	decisions atomic.Int64
	requests  atomic.Int64
	errors    atomic.Int64
}

// serverMetrics holds pre-resolved children so the hot path never
// touches the label map.
type serverMetrics struct {
	decisionsBy [3][3]*obs.Counter // [endpoint][basis]
	requestsBy  [3]*obs.Counter
	errorsBy    [3]*obs.Counter
	singleSec   *obs.Histogram
	batchSec    *obs.Histogram
	batchPerReq *obs.Histogram
	filterSec   *obs.Histogram
}

const (
	epSingle = 0
	epBatch  = 1
	epFilter = 2
)

var epNames = [3]string{"single", "batch", "filter"}
var basisNames = [3]string{"none", "consent", "legitimate-interest"}

func newServerMetrics(reg *obs.Registry, s *Server) *serverMetrics {
	m := &serverMetrics{}
	dv := obs.NewCounterVec(reg, "decision_decisions_total",
		"Consent decisions answered, by endpoint and resulting legal basis.", "endpoint", "basis")
	rv := obs.NewCounterVec(reg, "decision_requests_total",
		"Decision API requests served, by endpoint.", "endpoint")
	ev := obs.NewCounterVec(reg, "decision_errors_total",
		"Decision API requests rejected with a client error, by endpoint.", "endpoint")
	for e := 0; e < 3; e++ {
		for b := 0; b < 3; b++ {
			m.decisionsBy[e][b] = dv.With(epNames[e], basisNames[b])
		}
		m.requestsBy[e] = rv.With(epNames[e])
		m.errorsBy[e] = ev.With(epNames[e])
	}
	m.singleSec = obs.NewHistogram(reg, "decision_single_seconds",
		"Per-decision latency of the single-decision endpoint.",
		obs.ExponentialBuckets(1e-6, 4, 12))
	m.batchSec = obs.NewHistogram(reg, "decision_batch_seconds",
		"Per-request latency of the batch endpoint.",
		obs.ExponentialBuckets(1e-5, 4, 12))
	m.batchPerReq = obs.NewHistogram(reg, "decision_batch_decisions",
		"Decisions per batch request.",
		obs.ExponentialBuckets(1, 4, 10))
	m.filterSec = obs.NewHistogram(reg, "decision_filter_seconds",
		"Per-request latency of the vendor-filter endpoint.",
		obs.ExponentialBuckets(1e-6, 4, 12))

	obs.NewCounterFunc(reg, "decision_cache_hits_total",
		"Compiled-form cache hits.", func() int64 { return s.cache.hits.Load() })
	obs.NewCounterFunc(reg, "decision_cache_misses_total",
		"Compiled-form cache misses (each one paid a full decode).", func() int64 { return s.cache.misses.Load() })
	obs.NewCounterFunc(reg, "decision_cache_evictions_total",
		"Compiled forms evicted by the LRU bound.", func() int64 { return s.cache.evictions.Load() })
	obs.NewGaugeFunc(reg, "decision_cache_hit_ratio",
		"Compiled-form cache hit ratio since start.", func() float64 { return s.cache.Stats().HitRatio() })
	obs.NewGaugeFunc(reg, "decision_cache_entries",
		"Compiled forms currently cached.", func() float64 { return float64(s.cache.Stats().Size) })
	if s.resolver != nil {
		obs.NewGaugeFunc(reg, "decision_gvl_versions",
			"GVL versions pre-resolved into serving tables.", func() float64 {
				_, _, n := s.resolver.Versions()
				return float64(n)
			})
	}
	obs.NewCounterFunc(reg, "decision_http_admitted_total",
		"Requests admitted by the decision limiter.", func() int64 { return s.limiter.Stats().Admitted })
	obs.NewCounterFunc(reg, "decision_http_shed_total",
		"Requests shed with 429 by the decision limiter.", func() int64 { return s.limiter.Stats().Shed })
	return m
}

// NewServer builds the decision service.
func NewServer(cfg ServerConfig) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 256
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.MaxBatchBytes <= 0 {
		cfg.MaxBatchBytes = 8 << 20
	}
	s := &Server{
		cache:    NewCache(cfg.Cache),
		resolver: cfg.Resolver,
		tracer:   cfg.Tracer,
		start:    time.Now(),
		maxBatch: cfg.MaxBatchBytes,
	}
	s.limiter = resilience.NewHTTPLimiter(resilience.HTTPLimiterConfig{
		MaxInFlight: cfg.MaxInFlight,
		Timeout:     cfg.RequestTimeout,
	})
	if cfg.Registry != nil {
		s.m = newServerMetrics(cfg.Registry, s)
	}
	return s
}

// Cache exposes the compiled-form cache (the CLI shares it).
func (s *Server) Cache() *Cache { return s.cache }

// Handler returns the full HTTP surface: decision endpoints behind the
// limiter, /healthz outside it.
func (s *Server) Handler() http.Handler {
	api := http.NewServeMux()
	api.HandleFunc("/decide", s.handleDecide)
	api.HandleFunc("/v1/batch", s.handleBatch)
	api.HandleFunc("/v1/filter", s.handleFilter)
	limited := s.limiter.Wrap(api)
	outer := http.NewServeMux()
	outer.HandleFunc("/healthz", s.handleHealthz)
	outer.Handle("/", limited)
	return outer
}

// table resolves the serving table for a compiled string.
func (s *Server) table(c *Compiled) *VendorTable {
	if s.resolver == nil {
		return nil
	}
	return s.resolver.Table(c.VendorListVersion)
}

func (s *Server) clientErr(w http.ResponseWriter, ep int, code int, msg string) {
	s.errors.Add(1)
	if s.m != nil {
		s.m.errorsBy[ep].Inc()
	}
	http.Error(w, msg, code)
}

// decideResponse is the single-decision JSON shape.
type decideResponse struct {
	Allowed bool   `json:"allowed"`
	Basis   string `json:"basis"`
	// WireVersion is the consent string's wire format (1 or 2).
	WireVersion int `json:"wireVersion"`
	// VendorListVersion is the version stamped on the string;
	// GVLResolved is the table version it resolved to (0 = none, the
	// declaration check was skipped).
	VendorListVersion int `json:"vendorListVersion"`
	GVLResolved       int `json:"gvlResolved"`
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.requests.Add(1)
	if s.m != nil {
		s.m.requestsBy[epSingle].Inc()
	}
	q := r.URL.Query()
	tc := q.Get("tc")
	vendor, err1 := strconv.Atoi(q.Get("vendor"))
	purpose, err2 := strconv.Atoi(q.Get("purpose"))
	if tc == "" || err1 != nil || err2 != nil {
		s.clientErr(w, epSingle, http.StatusBadRequest, "need tc, vendor and purpose parameters")
		return
	}
	c, err := s.cache.Get(tc)
	if err != nil {
		s.clientErr(w, epSingle, http.StatusBadRequest, "bad consent string: "+err.Error())
		return
	}
	var sp *obs.Span
	if s.tracer != nil {
		sp = s.tracer.Start("decision.single")
	}
	t := s.table(c)
	basis := Decide(c, t, vendor, purpose)
	s.decisions.Add(1)
	if s.m != nil {
		s.m.decisionsBy[epSingle][basis].Inc()
		s.m.singleSec.Observe(time.Since(start).Seconds())
	}
	if sp != nil {
		sp.Attr("basis", basis.String())
		sp.End()
	}
	resp := decideResponse{
		Allowed:           basis.Allowed(),
		Basis:             basis.String(),
		WireVersion:       c.WireVersion,
		VendorListVersion: c.VendorListVersion,
	}
	if t != nil {
		resp.GVLResolved = t.Version
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// Pre-rendered batch response lines, indexed by Basis.
var batchAnswers = [3][]byte{
	[]byte("{\"b\":\"N\"}\n"),
	[]byte("{\"b\":\"C\"}\n"),
	[]byte("{\"b\":\"L\"}\n"),
}

// BatchAnswerLen is the byte length of one batch response line; the
// response body is exactly n·BatchAnswerLen bytes for n decisions.
const BatchAnswerLen = 10

// batchAnswerOffset is where the basis letter sits in a response line.
const batchAnswerOffset = 6

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.requests.Add(1)
	if s.m != nil {
		s.m.requestsBy[epBatch].Inc()
	}
	if r.Method != http.MethodPost {
		s.clientErr(w, epBatch, http.StatusMethodNotAllowed, "POST NDJSON decision lines")
		return
	}
	var sp *obs.Span
	if s.tracer != nil {
		// A fleet pusher's Traceparent header stitches the batch span
		// into the caller's trace; absent or malformed headers degrade
		// to a root span.
		pctx, _ := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
		sp = s.tracer.StartRemote("decision.batch", pctx)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	br := bufio.NewReaderSize(http.MaxBytesReader(w, r.Body, s.maxBatch), 64<<10)
	bw := bufio.NewWriterSize(w, 64<<10)

	var (
		cur  *Compiled // sticky consent string
		curT *VendorTable
		n    int64
	)
	for {
		line, err := br.ReadSlice('\n')
		if err == io.EOF && len(line) == 0 {
			break
		}
		if err != nil && err != io.EOF {
			// Oversized line or transport error: cut the stream. If
			// nothing was written yet this surfaces as a clean 400.
			if n == 0 {
				s.clientErr(w, epBatch, http.StatusBadRequest, "batch line unreadable: "+err.Error())
			}
			if sp != nil {
				sp.Attr("error", err.Error())
				sp.End()
			}
			return
		}
		line = bytes.TrimSuffix(line, []byte{'\n'})
		line = bytes.TrimSuffix(line, []byte{'\r'})
		if len(line) == 0 {
			continue
		}
		tc, vendor, purpose, perr := parseBatchLine(line)
		if perr != nil {
			if n == 0 {
				s.clientErr(w, epBatch, http.StatusBadRequest, perr.Error())
			}
			if sp != nil {
				sp.Attr("error", perr.Error())
				sp.End()
			}
			return
		}
		if tc != nil {
			c, cerr := s.cache.GetBytes(tc)
			if cerr != nil {
				if n == 0 {
					s.clientErr(w, epBatch, http.StatusBadRequest, "bad consent string: "+cerr.Error())
				}
				if sp != nil {
					sp.Attr("error", cerr.Error())
					sp.End()
				}
				return
			}
			cur, curT = c, s.table(c)
		}
		if cur == nil {
			if n == 0 {
				s.clientErr(w, epBatch, http.StatusBadRequest, "first batch line must carry a consent string")
			}
			if sp != nil {
				sp.End()
			}
			return
		}
		basis := Decide(cur, curT, vendor, purpose)
		if s.m != nil {
			s.m.decisionsBy[epBatch][basis].Inc()
		}
		bw.Write(batchAnswers[basis])
		n++
	}
	bw.Flush()
	s.decisions.Add(n)
	if s.m != nil {
		s.m.batchSec.Observe(time.Since(start).Seconds())
		s.m.batchPerReq.Observe(float64(n))
	}
	if sp != nil {
		sp.Attr("decisions", strconv.FormatInt(n, 10))
		sp.End()
	}
}

// parseBatchLine parses one canonical batch line. tc is nil when the
// line reuses the previous string. The grammar is deliberately rigid —
// no whitespace, keys in order — so the hot path is a byte scan, not a
// JSON parse.
func parseBatchLine(line []byte) (tc []byte, vendor, purpose int, err error) {
	rest := line
	if !bytes.HasPrefix(rest, []byte(`{"`)) {
		return nil, 0, 0, fmt.Errorf("decision: batch line must be a canonical JSON object")
	}
	rest = rest[2:]
	if bytes.HasPrefix(rest, []byte(`t":"`)) {
		rest = rest[4:]
		end := bytes.IndexByte(rest, '"')
		if end < 0 {
			return nil, 0, 0, fmt.Errorf("decision: unterminated consent string in batch line")
		}
		tc = rest[:end]
		for _, b := range tc {
			if b < 0x20 || b == '\\' {
				return nil, 0, 0, fmt.Errorf("decision: consent string contains invalid byte %q", b)
			}
		}
		rest = rest[end+1:]
		if !bytes.HasPrefix(rest, []byte(`,"`)) {
			return nil, 0, 0, fmt.Errorf("decision: expected vendor after consent string")
		}
		rest = rest[2:]
	}
	if !bytes.HasPrefix(rest, []byte(`v":`)) {
		return nil, 0, 0, fmt.Errorf("decision: batch line missing vendor")
	}
	rest = rest[3:]
	vendor, rest, err = parseInt(rest)
	if err != nil {
		return nil, 0, 0, err
	}
	if !bytes.HasPrefix(rest, []byte(`,"p":`)) {
		return nil, 0, 0, fmt.Errorf("decision: batch line missing purpose")
	}
	rest = rest[5:]
	purpose, rest, err = parseInt(rest)
	if err != nil {
		return nil, 0, 0, err
	}
	if len(rest) != 1 || rest[0] != '}' {
		return nil, 0, 0, fmt.Errorf("decision: trailing bytes in batch line")
	}
	return tc, vendor, purpose, nil
}

func parseInt(b []byte) (int, []byte, error) {
	n, i := 0, 0
	for ; i < len(b) && b[i] >= '0' && b[i] <= '9'; i++ {
		if n > (1<<31)/10 {
			return 0, nil, fmt.Errorf("decision: integer out of range")
		}
		n = n*10 + int(b[i]-'0')
	}
	if i == 0 {
		return 0, nil, fmt.Errorf("decision: expected integer")
	}
	return n, b[i:], nil
}

// filterRequest / filterResponse are the vendor-filter wire shapes.
type filterRequest struct {
	TC      string `json:"t"`
	Purpose int    `json:"purpose"`
	Vendors []int  `json:"vendors"`
}

type filterResponse struct {
	Allowed []int `json:"allowed"`
	Checked int   `json:"checked"`
}

// maxFilterVendors bounds one filter request.
const maxFilterVendors = 65536

func (s *Server) handleFilter(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.requests.Add(1)
	if s.m != nil {
		s.m.requestsBy[epFilter].Inc()
	}
	if r.Method != http.MethodPost {
		s.clientErr(w, epFilter, http.StatusMethodNotAllowed, "POST a filter request")
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req filterRequest
	if err := dec.Decode(&req); err != nil {
		s.clientErr(w, epFilter, http.StatusBadRequest, "malformed filter request: "+err.Error())
		return
	}
	if req.TC == "" || len(req.Vendors) == 0 || len(req.Vendors) > maxFilterVendors {
		s.clientErr(w, epFilter, http.StatusBadRequest, "need t and 1..65536 vendors")
		return
	}
	c, err := s.cache.Get(req.TC)
	if err != nil {
		s.clientErr(w, epFilter, http.StatusBadRequest, "bad consent string: "+err.Error())
		return
	}
	var sp *obs.Span
	if s.tracer != nil {
		sp = s.tracer.Start("decision.filter")
	}
	t := s.table(c)
	allowed := make([]int, 0, len(req.Vendors))
	if s.m == nil {
		allowed = FilterVendors(c, t, req.Vendors, req.Purpose, allowed)
	} else {
		for _, v := range req.Vendors {
			basis := Decide(c, t, v, req.Purpose)
			s.m.decisionsBy[epFilter][basis].Inc()
			if basis.Allowed() {
				allowed = append(allowed, v)
			}
		}
	}
	s.decisions.Add(int64(len(req.Vendors)))
	if s.m != nil {
		s.m.filterSec.Observe(time.Since(start).Seconds())
	}
	if sp != nil {
		sp.Attr("checked", strconv.Itoa(len(req.Vendors)))
		sp.Attr("allowed", strconv.Itoa(len(allowed)))
		sp.End()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(filterResponse{Allowed: allowed, Checked: len(req.Vendors)})
}

// Health is the /healthz document.
type Health struct {
	UptimeSeconds float64                 `json:"uptime_seconds"`
	Decisions     int64                   `json:"decisions"`
	Requests      int64                   `json:"requests"`
	Errors        int64                   `json:"errors"`
	Cache         CacheStats              `json:"cache"`
	CacheHitRatio float64                 `json:"cache_hit_ratio"`
	GVL           GVLHealth               `json:"gvl"`
	Limiter       resilience.LimiterStats `json:"limiter"`
	// Telemetry is the capd-style digest (uptime + slowest batch-latency
	// buckets), present only when the server runs with metrics.
	Telemetry *obs.TelemetrySummary `json:"telemetry,omitempty"`
}

// GVLHealth summarizes the resolver.
type GVLHealth struct {
	Versions   int `json:"versions"`
	MinVersion int `json:"min_version"`
	MaxVersion int `json:"max_version"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.cache.Stats()
	h := Health{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Decisions:     s.decisions.Load(),
		Requests:      s.requests.Load(),
		Errors:        s.errors.Load(),
		Cache:         st,
		CacheHitRatio: st.HitRatio(),
		Limiter:       s.limiter.Stats(),
	}
	if s.resolver != nil {
		min, max, n := s.resolver.Versions()
		h.GVL = GVLHealth{Versions: n, MinVersion: min, MaxVersion: max}
	}
	if s.m != nil {
		h.Telemetry = obs.Summarize(time.Since(s.start), s.m.batchSec.Snapshot(), 3)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}
