//go:build race

package decision

// Under the race detector every decode runs ~10× slower; the identity
// check keeps full coverage of the generator's shape at a size that
// stays inside `make race`'s budget. The acceptance-scale run happens
// in the regular test build (see race_off_test.go).
const differentialPopulationSize = 10_000
