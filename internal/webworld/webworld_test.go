package webworld

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cmps"
	"repro/internal/psl"
	"repro/internal/simtime"
)

func testWorld(t *testing.T) *World {
	t.Helper()
	return New(Config{Seed: 1, Domains: 5_000})
}

func TestWorldDeterminism(t *testing.T) {
	a := New(Config{Seed: 3, Domains: 500})
	b := New(Config{Seed: 3, Domains: 500})
	for rank := 1; rank <= 500; rank++ {
		da, db := a.DomainAt(rank), b.DomainAt(rank)
		if da.Name != db.Name || da.AntiBot != db.AntiBot || len(da.Episodes) != len(db.Episodes) {
			t.Fatalf("rank %d differs between identically-seeded worlds", rank)
		}
		for i := range da.Episodes {
			if da.Episodes[i] != db.Episodes[i] {
				t.Fatalf("rank %d episode %d differs", rank, i)
			}
		}
	}
}

func TestDomainLookups(t *testing.T) {
	w := testWorld(t)
	if w.NumDomains() != 5_000 {
		t.Fatalf("NumDomains = %d", w.NumDomains())
	}
	d := w.DomainAt(1)
	if d == nil || d.Rank != 1 {
		t.Fatal("DomainAt(1) broken")
	}
	if w.Domain(d.Name) != d {
		t.Error("name lookup must return the same domain")
	}
	if w.DomainAt(0) != nil || w.DomainAt(5_001) != nil {
		t.Error("out-of-range ranks must be nil")
	}
	order := w.TrueOrder()
	if len(order) != 5_000 || order[0] != w.DomainAt(1).Name {
		t.Error("TrueOrder mismatch")
	}
}

func TestDomainNamesNormalize(t *testing.T) {
	w := testWorld(t)
	for rank := 1; rank <= 1000; rank++ {
		d := w.DomainAt(rank)
		got, err := psl.EffectiveTLDPlusOne("www." + d.Name)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if got != d.Name {
			t.Fatalf("domain %q is not registrable (got %q)", d.Name, got)
		}
	}
}

func TestTop50NeverAdopt(t *testing.T) {
	// "None of the largest websites embed the CMPs under
	// consideration" (Section 4.1).
	w := New(Config{Seed: 2, Domains: 2_000})
	for rank := 1; rank <= 50; rank++ {
		if d := w.DomainAt(rank); len(d.Episodes) > 0 {
			t.Errorf("rank %d adopted %v", rank, d.Episodes)
		}
	}
}

func TestEpisodesWellFormed(t *testing.T) {
	w := testWorld(t)
	adopters := 0
	for _, d := range w.Domains() {
		if len(d.Episodes) == 0 {
			continue
		}
		adopters++
		for i, e := range d.Episodes {
			if !e.CMP.Valid() {
				t.Fatalf("%s: invalid CMP", d.Name)
			}
			if e.Start >= e.End {
				t.Fatalf("%s: empty episode %+v", d.Name, e)
			}
			if e.Start < e.CMP.Launch() {
				t.Fatalf("%s: %s episode starts before launch", d.Name, e.CMP)
			}
			if i > 0 && e.Start < d.Episodes[i-1].End {
				t.Fatalf("%s: overlapping episodes", d.Name)
			}
		}
	}
	if adopters < 100 {
		t.Fatalf("only %d adopters in 5k domains", adopters)
	}
}

func TestCMPAt(t *testing.T) {
	d := &Domain{Episodes: []Episode{
		{CMP: cmps.Cookiebot, Start: 10, End: 100},
		{CMP: cmps.OneTrust, Start: 100, End: simtime.Day(simtime.NumDays)},
	}}
	cases := []struct {
		day  simtime.Day
		want cmps.ID
	}{
		{5, cmps.None}, {10, cmps.Cookiebot}, {99, cmps.Cookiebot},
		{100, cmps.OneTrust}, {500, cmps.OneTrust},
	}
	for _, c := range cases {
		if got := d.CMPAt(c.day); got != c.want {
			t.Errorf("CMPAt(%d) = %v, want %v", c.day, got, c.want)
		}
	}
	if !d.EverUsedCMP() {
		t.Error("EverUsedCMP")
	}
}

func TestVisitBasics(t *testing.T) {
	w := testWorld(t)
	// Find a reachable CMP domain with an active episode at its start.
	var d *Domain
	for _, cand := range w.Domains() {
		if len(cand.Episodes) > 0 && !cand.Unreachable && cand.RedirectTo == "" &&
			!cand.AntiBot && !cand.Geo451 && !cand.EUOnlyEmbed && !cand.SlowLoad && !cand.APIOnly {
			d = cand
			break
		}
	}
	if d == nil {
		t.Skip("no suitable domain in sample")
	}
	day := d.Episodes[0].Start
	page, err := w.Visit(d.Name, "/", VisitContext{Day: day, Geo: GeoEU})
	if err != nil {
		t.Fatal(err)
	}
	if page.Status != 200 || page.FinalDomain != d.Name {
		t.Fatalf("page: %+v", page)
	}
	cmp := d.Episodes[0].CMP
	if !hasHost(page, cmp.Hostname()) {
		t.Errorf("CMP indicator host %s missing from resources", cmp.Hostname())
	}
	// Before adoption, the indicator must be absent.
	if day > 0 {
		before, err := w.Visit(d.Name, "/", VisitContext{Day: day - 1, Geo: GeoEU})
		if err != nil {
			t.Fatal(err)
		}
		if hasHost(before, cmp.Hostname()) && d.CMPAt(day-1) == cmps.None {
			t.Error("CMP indicator present before adoption")
		}
	}
}

func hasHost(p *Page, host string) bool {
	for _, r := range p.Resources {
		if r.Host == host {
			return true
		}
	}
	return false
}

func findDomain(w *World, pred func(*Domain) bool) *Domain {
	for _, d := range w.Domains() {
		if pred(d) {
			return d
		}
	}
	return nil
}

func TestAntiBotBlocksCloudOnly(t *testing.T) {
	w := testWorld(t)
	d := findDomain(w, func(d *Domain) bool {
		return d.AntiBot && d.RedirectTo == "" && !d.Unreachable && !d.Geo451
	})
	if d == nil {
		t.Skip("no anti-bot domain in sample")
	}
	day := d.Episodes[0].Start
	cloud, err := w.Visit(d.Name, "/", VisitContext{Day: day, Geo: GeoEU, Cloud: true})
	if err != nil {
		t.Fatal(err)
	}
	if !cloud.AntiBotBlocked || cloud.Status != 403 {
		t.Errorf("cloud visit not blocked: %+v", cloud)
	}
	if hasHost(cloud, d.Episodes[0].CMP.Hostname()) {
		t.Error("blocked page must not load CMP resources")
	}
	uni, err := w.Visit(d.Name, "/", VisitContext{Day: day, Geo: GeoEU, Cloud: false})
	if err != nil {
		t.Fatal(err)
	}
	if uni.AntiBotBlocked {
		t.Error("university visit must not be blocked")
	}
}

func TestEUOnlyEmbed(t *testing.T) {
	w := testWorld(t)
	d := findDomain(w, func(d *Domain) bool {
		return d.EUOnlyEmbed && d.USVisibleFrom == 0 && !d.AntiBot && d.RedirectTo == "" && !d.Geo451 && !d.SlowLoad
	})
	if d == nil {
		t.Skip("no EU-only domain in sample")
	}
	day := d.Episodes[len(d.Episodes)-1].Start
	cmp := d.CMPAt(day)
	eu, _ := w.Visit(d.Name, "/", VisitContext{Day: day, Geo: GeoEU})
	us, _ := w.Visit(d.Name, "/", VisitContext{Day: day, Geo: GeoUS})
	if !hasHost(eu, cmp.Hostname()) {
		t.Error("EU visit must load the CMP")
	}
	if hasHost(us, cmp.Hostname()) {
		t.Error("US visit must not load an EU-only CMP")
	}
}

func TestUSVisibleFromWave(t *testing.T) {
	w := testWorld(t)
	d := findDomain(w, func(d *Domain) bool {
		return d.EUOnlyEmbed && d.USVisibleFrom > 0 && !d.AntiBot && d.RedirectTo == "" && !d.Geo451 && !d.SlowLoad &&
			d.Episodes[len(d.Episodes)-1].End == simtime.Day(simtime.NumDays) &&
			d.Episodes[len(d.Episodes)-1].Start < d.USVisibleFrom
	})
	if d == nil {
		t.Skip("no CCPA-wave domain in sample")
	}
	cmp := d.Episodes[len(d.Episodes)-1].CMP
	before, _ := w.Visit(d.Name, "/", VisitContext{Day: d.USVisibleFrom - 1, Geo: GeoUS})
	after, _ := w.Visit(d.Name, "/", VisitContext{Day: d.USVisibleFrom, Geo: GeoUS})
	if hasHost(before, cmp.Hostname()) {
		t.Error("CMP visible from the US before the CCPA wave")
	}
	if !hasHost(after, cmp.Hostname()) {
		t.Error("CMP invisible from the US after the wave date")
	}
}

func TestGeo451(t *testing.T) {
	w := testWorld(t)
	d := findDomain(w, func(d *Domain) bool { return d.Geo451 && d.RedirectTo == "" })
	if d == nil {
		t.Skip("no 451 domain in sample")
	}
	eu, _ := w.Visit(d.Name, "/", VisitContext{Day: 800, Geo: GeoEU})
	us, _ := w.Visit(d.Name, "/", VisitContext{Day: 800, Geo: GeoUS})
	if eu.Status != 451 {
		t.Errorf("EU status = %d, want 451", eu.Status)
	}
	if us.Status == 451 {
		t.Error("US visitors must not get 451")
	}
}

func TestRedirects(t *testing.T) {
	w := testWorld(t)
	d := findDomain(w, func(d *Domain) bool { return d.RedirectTo != "" })
	if d == nil {
		t.Skip("no redirect domain in sample")
	}
	page, err := w.Visit(d.Name, "/", VisitContext{Day: 100, Geo: GeoEU})
	if err != nil {
		t.Skipf("redirect target unreachable: %v", err)
	}
	if page.FinalDomain == d.Name {
		t.Error("redirect must change the final domain")
	}
	if len(page.RedirectChain) == 0 || page.RedirectChain[0] != d.Name {
		t.Errorf("redirect chain = %v", page.RedirectChain)
	}
}

func TestBarePagesLoadNothingExternal(t *testing.T) {
	w := testWorld(t)
	d := findDomain(w, func(d *Domain) bool {
		return d.BarePages > 0 && len(d.Episodes) > 0 && d.RedirectTo == "" && !d.AntiBot && !d.Geo451 && !d.Unreachable
	})
	if d == nil {
		t.Skip("no bare-page CMP domain in sample")
	}
	day := d.Episodes[0].Start
	bare := d.Subsites - 1 // highest index is bare
	page, err := w.Visit(d.Name, d.SubsitePath(bare), VisitContext{Day: day, Geo: GeoEU})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range page.Resources {
		if r.Host != page.FinalHost {
			t.Errorf("bare page loaded external resource %s", r.Host)
		}
	}
}

func TestUnknownDomain(t *testing.T) {
	w := testWorld(t)
	_, err := w.Visit("nonexistent.example", "/", VisitContext{})
	if _, ok := err.(*ErrUnknownDomain); !ok {
		t.Errorf("want ErrUnknownDomain, got %v", err)
	}
}

func TestVisitDeterminism(t *testing.T) {
	w := testWorld(t)
	d := findDomain(w, func(d *Domain) bool { return len(d.Episodes) > 0 && d.RedirectTo == "" && !d.Unreachable })
	if d == nil {
		t.Skip("no adopter")
	}
	ctx := VisitContext{Day: d.Episodes[0].Start, Geo: GeoEU}
	a, err := w.Visit(d.Name, "/", ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Visit(d.Name, "/", ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Resources) != len(b.Resources) || a.ScreenshotText != b.ScreenshotText {
		t.Error("identical visits must render identically")
	}
	for i := range a.Resources {
		if a.Resources[i] != b.Resources[i] {
			t.Fatal("resource logs must be identical")
		}
	}
}

func TestCustomizationDistribution(t *testing.T) {
	w := New(Config{Seed: 4, Domains: 30_000})
	variants := map[cmps.ID]map[BannerVariant]int{}
	totals := map[cmps.ID]int{}
	for _, d := range w.Domains() {
		if len(d.Episodes) == 0 {
			continue
		}
		c := d.Episodes[len(d.Episodes)-1].CMP
		if variants[c] == nil {
			variants[c] = map[BannerVariant]int{}
		}
		variants[c][d.Custom.Variant]++
		totals[c]++
	}
	// Quantcast: 55% direct reject / 45% more options (±8pts), among
	// non-API-only sites.
	qc := variants[cmps.Quantcast]
	qcTotal := float64(qc[VariantDirectReject] + qc[VariantMoreOptions])
	if share := float64(qc[VariantDirectReject]) / qcTotal; share < 0.47 || share > 0.63 {
		t.Errorf("Quantcast 1-click-reject share = %.2f, want ≈0.55", share)
	}
	// OneTrust: conventional banner must dominate.
	ot := variants[cmps.OneTrust]
	if float64(ot[VariantConventional])/float64(totals[cmps.OneTrust]) < 0.6 {
		t.Errorf("OneTrust conventional share too low: %v", ot)
	}
	// TrustArc: autonomy-button ≈44%.
	ta := variants[cmps.TrustArc]
	if share := float64(ta[VariantAutonomyButton]) / float64(totals[cmps.TrustArc]); share < 0.30 || share > 0.52 {
		t.Errorf("TrustArc autonomy share = %.2f, want ≈0.44·(1-api)", share)
	}
	// API-only across all CMPs ≈8%.
	api, tot := 0, 0
	for c, m := range variants {
		api += m[VariantCustomAPI]
		tot += totals[c]
	}
	if share := float64(api) / float64(tot); share < 0.05 || share > 0.11 {
		t.Errorf("API-only share = %.2f, want ≈0.08", share)
	}
}

func TestSubsitePathRoundTrip(t *testing.T) {
	d := &Domain{Subsites: 20}
	f := func(i uint8) bool {
		idx := int(i) % 20
		return subsiteIndexOf(d, d.SubsitePath(idx)) == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if subsiteIndexOf(d, "/unknown") != 0 {
		t.Error("unknown paths map to the landing page")
	}
}

func TestDialogTextContainsConsentLanguage(t *testing.T) {
	w := testWorld(t)
	d := findDomain(w, func(d *Domain) bool {
		return len(d.Episodes) > 0 && !d.APIOnly && d.RedirectTo == "" && !d.AntiBot && !d.Unreachable && !d.Geo451 &&
			d.Custom.Variant != VariantFooterLink && d.Custom.Variant != VariantHiddenFromEU && !d.ShowDialogOnlyEU
	})
	if d == nil {
		t.Skip("no dialog domain")
	}
	page, err := w.Visit(d.Name, "/", VisitContext{Day: d.Episodes[len(d.Episodes)-1].Start, Geo: GeoEU})
	if err != nil {
		t.Fatal(err)
	}
	if !page.DialogShown {
		t.Fatal("dialog should be shown")
	}
	if !strings.Contains(page.ScreenshotText, "We value your privacy") {
		t.Errorf("screenshot lacks consent language: %q", page.ScreenshotText)
	}
	if !strings.Contains(page.DOM, "data-variant=") {
		t.Error("DOM lacks the variant marker")
	}
}
