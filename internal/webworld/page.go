package webworld

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/cmps"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/tcf"
)

var (
	preChoiceOnce  sync.Once
	preChoiceValue string
)

// preChoiceConsent returns the canned fully-granting TCF string that
// pre-choice-consent sites store without asking the user.
func preChoiceConsent() string {
	preChoiceOnce.Do(func() {
		c := tcf.New(time.Date(2020, time.January, 1, 0, 0, 0, 0, time.UTC))
		c.SetAllPurposes(true)
		c.SetAllVendors(500, true)
		s, err := c.Encode()
		if err != nil {
			panic("webworld: pre-choice consent string: " + err.Error())
		}
		preChoiceValue = s
	})
	return preChoiceValue
}

// Geo is the geographic origin of a visit.
type Geo int

const (
	GeoUS Geo = iota
	GeoEU
)

func (g Geo) String() string {
	if g == GeoEU {
		return "EU"
	}
	return "US"
}

// VisitContext describes one page visit: when, from where, and from
// what kind of address space.
type VisitContext struct {
	Day simtime.Day
	Geo Geo
	// Cloud marks public-cloud address space; CDN anti-bot
	// interstitials block such visitors (Section 3.5).
	Cloud bool
	// Language is the browser's preferred language ("en-US", "de",
	// "en-GB"). The paper found it has no significant effect; the
	// simulation honours that.
	Language string
}

// Resource is one HTTP request a page load triggers.
type Resource struct {
	Host string
	Path string
	// StartMS is when the request starts, relative to navigation.
	StartMS int
	Status  int
	// BytesCompressed / BytesRaw are transfer sizes.
	BytesCompressed int
	BytesRaw        int
}

// Cookie is a stored cookie observed in a capture.
type Cookie struct {
	Domain string
	Name   string
	Value  string
}

// StorageKind distinguishes the browser storage mechanisms Netograph
// records for every domain in a capture (Section 3.2).
type StorageKind int

const (
	LocalStorage StorageKind = iota
	SessionStorage
	IndexedDB
	WebSQL
)

func (k StorageKind) String() string {
	switch k {
	case LocalStorage:
		return "localStorage"
	case SessionStorage:
		return "sessionStorage"
	case IndexedDB:
		return "indexedDB"
	case WebSQL:
		return "webSQL"
	default:
		return "unknown"
	}
}

// StorageRecord is one browser-storage entry created during a load.
type StorageRecord struct {
	Kind   StorageKind
	Origin string // the writing origin (host)
	Key    string
	// Identifying marks values that could identify the user across
	// visits (Sanchez-Rola et al.: 90% of sites use cookies that could
	// identify users, even post-GDPR).
	Identifying bool
}

// Page is the ground-truth result of rendering a URL in a context.
// The browser package turns Pages into crawler captures by applying
// timeout policies.
type Page struct {
	// Status is the final HTTP status of the main document.
	Status int
	// RedirectChain lists registrable domains traversed before the
	// final one, excluding it. Empty for direct loads.
	RedirectChain []string
	// FinalHost is the address-bar hostname after redirects.
	FinalHost string
	// FinalDomain is FinalHost normalized to its registrable domain.
	FinalDomain string
	// Path is the final path.
	Path string
	// Resources are all subresource requests, in start order.
	Resources []Resource
	// Cookies set during the load.
	Cookies []Cookie
	// Storage lists browser-storage records created during the load.
	Storage []StorageRecord
	// IdleAtMS is when the page first goes network-idle.
	IdleAtMS int
	// DialogShown reports whether a consent dialog rendered.
	DialogShown bool
	// ScreenshotText is the visible text (above the fold).
	ScreenshotText string
	// DOM is a synthesized DOM snippet (populated only on request via
	// ctx-independent domain traits; the browser decides whether to
	// store it).
	DOM string
	// AntiBotBlocked marks an interstitial page served instead of the
	// site content.
	AntiBotBlocked bool
}

// ErrTemporarilyDown marks a transient outage; retrying on another day
// usually succeeds.
var ErrTemporarilyDown = errors.New("temporarily unavailable")

// transientDownRate is the per-(domain, day) probability of a
// transient outage among otherwise reachable domains.
const transientDownRate = 0.02

// TransientDown reports whether the (reachable) domain suffers a
// transient outage on the given day.
func (w *World) TransientDown(name string, day simtime.Day) bool {
	rate := transientDownRate
	switch {
	case w.cfg.TransientDownRate < 0:
		return false
	case w.cfg.TransientDownRate > 0:
		rate = w.cfg.TransientDownRate
	}
	return w.src.Bool(rate, "transient", name, day.String())
}

// ErrUnknownDomain is returned for visits to domains outside the
// universe.
type ErrUnknownDomain struct{ Name string }

func (e *ErrUnknownDomain) Error() string {
	return fmt.Sprintf("webworld: unknown domain %q", e.Name)
}

// Visit renders the page at domain+path in the given context. It
// resolves top-level redirects, applies geo- and vantage-dependent
// behaviour, and emits the resource log that CMP detection consumes.
func (w *World) Visit(domainName, path string, ctx VisitContext) (*Page, error) {
	d := w.byName[domainName]
	if d == nil {
		return nil, &ErrUnknownDomain{domainName}
	}
	var chain []string
	for d.RedirectTo != "" {
		chain = append(chain, d.Name)
		next := w.byName[d.RedirectTo]
		if next == nil || len(chain) > 5 {
			break
		}
		d = next
	}
	p := &Page{
		RedirectChain: chain,
		FinalHost:     "www." + d.Name,
		FinalDomain:   d.Name,
		Path:          path,
		Status:        200,
	}
	if !d.HTTPSWWW {
		p.FinalHost = d.Name
	}

	switch {
	case d.Unreachable:
		return nil, fmt.Errorf("webworld: %s: connection refused", d.Name)
	case w.TransientDown(d.Name, ctx.Day):
		// Temporarily unavailable: the toplist procedure retries these
		// "three times over a week" (Section 3.2).
		return nil, fmt.Errorf("webworld: %s: %w", d.Name, ErrTemporarilyDown)
	case d.NoValidResponse:
		p.Status = 0
		return p, nil
	case d.HTTPError:
		p.Status = 503
		p.IdleAtMS = 400
		return p, nil
	case d.Geo451 && ctx.Geo == GeoEU:
		// Complying with CCPA in the US but refusing EU visitors.
		p.Status = 451
		p.IdleAtMS = 350
		p.ScreenshotText = "451 Unavailable For Legal Reasons"
		return p, nil
	case d.AntiBot && ctx.Cloud:
		// CDN anti-bot interstitial: no site resources load.
		p.AntiBotBlocked = true
		p.Status = 403
		p.IdleAtMS = 600
		p.ScreenshotText = "Checking your browser before accessing " + d.Name
		p.Resources = append(p.Resources, Resource{
			Host: "cdn-challenge.example.net", Path: "/interstitial.js",
			StartMS: 120, Status: 200, BytesCompressed: 9_000, BytesRaw: 22_000,
		})
		return p, nil
	}

	w.renderContent(d, p, ctx)
	return p, nil
}

// pageStream derives the deterministic randomness for one page render.
func (w *World) pageStream(d *Domain, path string, ctx VisitContext) *rng.Source {
	return w.src.Derive("page", d.Name, path, ctx.Day.String(), ctx.Geo.String())
}

// renderContent emits the resources, cookies and dialog state for a
// successfully loaded page.
func (w *World) renderContent(d *Domain, p *Page, ctx VisitContext) {
	ps := w.pageStream(d, p.Path, ctx)
	r := ps.Stream("load")

	// Base document and first-party assets.
	addRes := func(host, path string, startMS, compressed, raw int) {
		p.Resources = append(p.Resources, Resource{
			Host: host, Path: path, StartMS: startMS, Status: 200,
			BytesCompressed: compressed, BytesRaw: raw,
		})
	}
	addRes(p.FinalHost, p.Path, 0, 18_000+r.Intn(40_000), 70_000+r.Intn(150_000))
	nAssets := 4 + r.Intn(12)
	for i := 0; i < nAssets; i++ {
		addRes(p.FinalHost, fmt.Sprintf("/static/asset-%d.js", i),
			80+r.Intn(900), 3_000+r.Intn(30_000), 9_000+r.Intn(90_000))
	}
	// Third-party trackers on most non-bare pages.
	subsiteIdx := subsiteIndexOf(d, p.Path)
	bare := d.subsiteIsBare(subsiteIdx)
	if !bare {
		for _, t := range trackerHosts {
			if r.Float64() < 0.45 {
				addRes(t, "/collect", 200+r.Intn(1200), 800+r.Intn(4_000), 1_500+r.Intn(9_000))
				// Trackers set identifying cookies regardless of
				// consent on the vast majority of sites (Sanchez-Rola
				// et al., cited in Section 6); the privacy-friendly
				// minority configures them cookieless.
				if !d.PrivacyFriendly && r.Float64() < 0.90 {
					p.Cookies = append(p.Cookies, Cookie{Domain: t, Name: "uid", Value: "u-" + rng.Key(r.Intn(1_000_000))})
				}
			}
		}
		if d.PrivacyFriendly {
			// An anonymous, value-less session marker only.
			p.Cookies = append(p.Cookies, Cookie{Domain: d.Name, Name: "session", Value: ""})
		} else {
			p.Cookies = append(p.Cookies, Cookie{Domain: d.Name, Name: "session", Value: "s-" + rng.Key(r.Intn(1_000_000))})
		}
		// First- and third-party browser storage, per Netograph's
		// capture schema.
		if r.Float64() < 0.65 {
			p.Storage = append(p.Storage, StorageRecord{
				Kind: LocalStorage, Origin: p.FinalHost, Key: "prefs", Identifying: false,
			})
		}
		if !d.PrivacyFriendly && r.Float64() < 0.55 {
			p.Storage = append(p.Storage, StorageRecord{
				Kind: LocalStorage, Origin: "www.google-analytics.com", Key: "_ga_client", Identifying: true,
			})
		}
		if r.Float64() < 0.18 {
			p.Storage = append(p.Storage, StorageRecord{
				Kind: IndexedDB, Origin: p.FinalHost, Key: "app-cache", Identifying: false,
			})
		}
		if r.Float64() < 0.10 {
			p.Storage = append(p.Storage, StorageRecord{
				Kind: SessionStorage, Origin: p.FinalHost, Key: "nav-state", Identifying: false,
			})
		}
	}
	p.IdleAtMS = 1_600 + r.Intn(2_400)
	p.ScreenshotText = fmt.Sprintf("Welcome to %s — latest stories and updates.", d.Name)
	p.DOM = fmt.Sprintf("<html><head><title>%s</title></head><body><main class=\"content\">…</main>%s</body></html>", d.Name, "")

	cmp := d.CMPAt(ctx.Day)
	if cmp == cmps.None || bare {
		return
	}
	if d.CMPSubsitesOnly && subsiteIdx == 0 {
		// The landing page carries no consent management; only the
		// (ad-funded) content pages do. Front-page crawls miss this
		// site's CMP entirely.
		return
	}
	if d.EUOnlyEmbed && ctx.Geo != GeoEU {
		// The CMP is only embedded for EU visitors, unless the site
		// has joined the CCPA wave and serves it to US visitors too.
		if d.USVisibleFrom == 0 || ctx.Day < d.USVisibleFrom {
			return
		}
	}

	// CMP resources: the indicator hostname request (Table A.2) plus
	// auxiliary CMP endpoints. Slow-loading sites start the CMP stack
	// only after the page has already gone idle once, which aggressive
	// idle timeouts cut off (Section 3.5, "Crawler Timeouts").
	cmpStart := 300 + r.Intn(1_000)
	if d.SlowLoad {
		cmpStart = p.IdleAtMS + 5_400 + r.Intn(2_500)
	}
	addRes(cmp.Hostname(), "/cmp.js", cmpStart, 24_000+r.Intn(18_000), 85_000+r.Intn(60_000))
	addRes(cmp.Hostname(), "/config/"+d.Name+".json", cmpStart+150, 2_000+r.Intn(2_000), 6_000+r.Intn(8_000))
	if cmp.ImplementsTCF() {
		addRes("vendorlist.consensu.org", "/vendor-list.json", cmpStart+300, 30_000, 210_000)
		if d.PreChoiceConsent {
			// The consent signal is sent before the user makes any
			// choice: a fully-granting euconsent cookie appears on
			// first load (Matte et al.: 12% of TCF sites).
			p.Cookies = append(p.Cookies, Cookie{
				Domain: ".consensu.org", Name: "euconsent", Value: preChoiceConsent(),
			})
		}
	}

	// Dialog visibility: geo-configured dialogs and customization.
	showDialog := true
	if d.ShowDialogOnlyEU && ctx.Geo != GeoEU {
		showDialog = false
	}
	if d.Custom.Variant == VariantHiddenFromEU && ctx.Geo == GeoEU {
		showDialog = false
	}
	if d.Custom.Variant == VariantFooterLink {
		showDialog = false
		p.DOM += fmt.Sprintf("<footer><a href=\"/privacy\">%s</a></footer>", d.Custom.Footer)
	}
	p.DialogShown = showDialog
	if showDialog {
		p.ScreenshotText += " " + dialogText(cmp, d)
		p.DOM += dialogDOM(cmp, d, w.PromptRevision(cmp, ctx.Day))
	}
}

// trackerHosts are common third parties unrelated to consent; present
// so detection must discriminate rather than flag any third party.
var trackerHosts = []string{
	"www.google-analytics.com",
	"securepubads.g.doubleclick.net",
	"connect.facebook.net",
	"cdn.jsdelivr.net",
	"static.hotjar.com",
}

// dialogText synthesizes the visible consent-prompt wording, including
// the GDPR phrases Degeling et al. catalogued (used by the detector's
// text fallback).
func dialogText(cmp cmps.ID, d *Domain) string {
	if d.APIOnly {
		return fmt.Sprintf("%s cares about your data. Manage preferences in our custom settings.", d.Name)
	}
	var b strings.Builder
	b.WriteString("We value your privacy. We and our partners use technologies, such as cookies, and process personal data. ")
	switch d.Custom.Variant {
	case VariantDirectReject:
		fmt.Fprintf(&b, "[%s] [I DO NOT ACCEPT]", d.Custom.AcceptText)
	case VariantMoreOptions:
		fmt.Fprintf(&b, "[%s] [MORE OPTIONS]", d.Custom.AcceptText)
	case VariantScriptBanner:
		fmt.Fprintf(&b, "[Accept] [Reject/Manage Scripts]")
	case VariantOptOutConnects, VariantAutonomyButton:
		fmt.Fprintf(&b, "[%s] [Manage My Choices]", d.Custom.AcceptText)
	case VariantNoControlLink:
		fmt.Fprintf(&b, "[%s] (privacy notice)", d.Custom.AcceptText)
	default:
		fmt.Fprintf(&b, "[%s] [Cookie Settings]", d.Custom.AcceptText)
	}
	fmt.Fprintf(&b, " Powered by %s", cmp)
	return b.String()
}

// dialogDOM synthesizes the CMP dialog markup with provider-specific
// CSS classes and the framework's prompt revision; the toplist crawls
// store this for the I3 analysis and the prompt-change history.
func dialogDOM(cmp cmps.ID, d *Domain, rev int) string {
	class := map[cmps.ID]string{
		cmps.OneTrust:  "onetrust-banner-sdk",
		cmps.Quantcast: "qc-cmp-ui",
		cmps.TrustArc:  "truste_overlay",
		cmps.Cookiebot: "CybotCookiebotDialog",
		cmps.LiveRamp:  "faktor-cmp",
		cmps.Crownpeak: "evidon-banner",
	}[cmp]
	return fmt.Sprintf("<div class=%q data-variant=%q data-confirm=%t data-prompt-rev=\"%d\">%s</div>",
		class, d.Custom.Variant, d.Custom.ConfirmRequired, rev, d.Custom.AcceptText)
}

// subsiteIndexOf parses a subsite path back to its index; unknown
// paths map to the landing page.
func subsiteIndexOf(d *Domain, path string) int {
	var i int
	if _, err := fmt.Sscanf(path, "/page/%d", &i); err == nil && i > 0 && i < d.Subsites {
		return i
	}
	return 0
}
