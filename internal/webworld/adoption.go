package webworld

import (
	"math/rand"
	"time"

	"repro/internal/cmps"
	"repro/internal/simtime"
)

// This file implements the CMP adoption model: which domains adopt a
// CMP, which one, when, and how they churn between providers. The
// model is a per-domain episode state machine whose parameters are
// calibrated against the paper's aggregates (DESIGN.md §4):
//
//   - adoption by rank band peaks in the Tranco 1k–5k range and never
//     vanishes in the tail (Figure 5);
//   - per-CMP market shares and their jurisdictional skew match
//     Table 1 / Figures A.4–A.6 (Quantcast EU-heavy and early-dominant,
//     OneTrust overtaking via CCPA demand);
//   - adoption dates spike when GDPR and CCPA come into effect
//     (Figure 6);
//   - Cookiebot acts as a "gateway CMP", losing an order of magnitude
//     more sites than it gains (Figure 4); Crownpeak collapses in
//     early 2020 (Table A.3 vs Table 1).

// bandAdoptProb is the probability that a domain of the given true
// rank ever adopts one of the six CMPs during the window.
func bandAdoptProb(rank int) float64 {
	switch {
	case rank <= 50:
		return 0 // the largest sites build consent management in-house
	case rank <= 100:
		return 0.10
	case rank <= 500:
		return 0.16
	case rank <= 1000:
		return 0.22
	case rank <= 5000:
		return 0.19
	case rank <= 10_000:
		return 0.135
	case rank <= 50_000:
		return 0.085
	case rank <= 100_000:
		return 0.055
	default:
		return 0.010
	}
}

// entryWeight returns the relative probability that a domain's *first*
// CMP is c, given its rank band and jurisdiction. Entry weights exceed
// final market shares for high-churn CMPs (Cookiebot, Crownpeak).
func entryWeight(c cmps.ID, rank int, euuk bool) float64 {
	base := map[cmps.ID]float64{
		cmps.OneTrust:  0.355,
		cmps.Quantcast: 0.270,
		cmps.TrustArc:  0.175,
		cmps.Cookiebot: 0.150,
		cmps.LiveRamp:  0.014,
		cmps.Crownpeak: 0.036,
	}[c]

	// Rank-band skew: Quantcast leads the very top and the long tail,
	// OneTrust the 500–50k mid-market (Section 4.1).
	switch {
	case rank <= 100:
		switch c {
		case cmps.Quantcast:
			base *= 2.6
		case cmps.OneTrust:
			base *= 0.45
		case cmps.Cookiebot, cmps.Crownpeak, cmps.LiveRamp:
			base *= 0.4
		}
	case rank <= 500:
		switch c {
		case cmps.Quantcast:
			base *= 1.25
		case cmps.OneTrust:
			base *= 0.95
		}
	case rank <= 50_000:
		switch c {
		case cmps.OneTrust:
			base *= 1.12
		case cmps.Quantcast:
			base *= 0.88
		}
	default:
		switch c {
		case cmps.Quantcast:
			base *= 1.45
		case cmps.OneTrust:
			base *= 0.70
		case cmps.Cookiebot:
			base *= 1.15
		}
	}

	// Jurisdictional skew: Quantcast's product targets the GDPR and is
	// EU/UK-heavy (38.3% EU+UK TLDs); OneTrust and TrustArc target the
	// CCPA-driven US market; Cookiebot is a Danish product.
	if euuk {
		switch c {
		case cmps.Quantcast:
			base *= 2.05
		case cmps.Cookiebot:
			base *= 1.55
		case cmps.OneTrust:
			base *= 0.72
		case cmps.TrustArc:
			base *= 0.45
		}
	} else {
		switch c {
		case cmps.Quantcast:
			base *= 0.85
		case cmps.OneTrust:
			base *= 1.10
		case cmps.TrustArc:
			base *= 1.15
		case cmps.Cookiebot:
			base *= 0.90
		}
	}
	return base
}

// dateComponent is one mixture component of an adoption-date
// distribution: either uniform over [a,b] or Gaussian(mean=a, sd=b).
type dateComponent struct {
	w        float64
	gaussian bool
	a, b     float64 // uniform: [a,b]; gaussian: mean a, sd b
}

func day(d simtime.Day) float64 { return float64(d) }

var (
	endDay = day(simtime.Day(simtime.NumDays - 1))
	dec19  = day(simtime.Date(2019, time.December, 1))
	oct19  = day(simtime.Date(2019, time.October, 1))
	jan20  = day(simtime.CCPAEffective)
	gdpr   = day(simtime.GDPREffective)
)

// entryDates per CMP. Shapes follow Figure 6: Quantcast spikes at GDPR
// and is unaffected by CCPA; OneTrust has a pronounced CCPA wave;
// LiveRamp launches December 2019.
func entryDates(c cmps.ID) []dateComponent {
	switch c {
	case cmps.Quantcast:
		return []dateComponent{
			{0.05, false, 0, gdpr},
			{0.32, true, gdpr + 5, 12},
			{0.33, false, gdpr + 10, dec19},
			{0.30, false, jan20, endDay},
		}
	case cmps.OneTrust:
		return []dateComponent{
			{0.03, false, 0, gdpr},
			{0.10, true, gdpr + 5, 14},
			{0.27, false, gdpr + 10, dec19},
			{0.29, true, jan20 + 10, 22},
			{0.31, false, jan20 + 45, endDay},
		}
	case cmps.TrustArc:
		return []dateComponent{
			{0.04, false, 0, gdpr},
			{0.17, true, gdpr + 5, 15},
			{0.37, false, gdpr + 10, dec19},
			{0.17, true, jan20 + 10, 25},
			{0.25, false, jan20 + 30, endDay},
		}
	case cmps.Cookiebot:
		return []dateComponent{
			{0.09, false, 0, gdpr},
			{0.30, true, gdpr + 3, 10},
			{0.36, false, gdpr + 10, dec19},
			{0.25, false, jan20, endDay},
		}
	case cmps.LiveRamp:
		return []dateComponent{{1, false, dec19, endDay}}
	case cmps.Crownpeak:
		return []dateComponent{
			{0.25, true, gdpr + 5, 15},
			{0.60, false, gdpr + 10, oct19},
			{0.15, false, oct19, endDay},
		}
	default:
		return []dateComponent{{1, false, 0, endDay}}
	}
}

// sampleDate draws a day from a mixture, clamped to the window and to
// the CMP's launch day.
func sampleDate(r *rand.Rand, mix []dateComponent, notBefore simtime.Day) simtime.Day {
	u := r.Float64()
	var comp dateComponent
	for _, c := range mix {
		if u < c.w {
			comp = c
			break
		}
		u -= c.w
	}
	if comp.w == 0 {
		comp = mix[len(mix)-1]
	}
	var v float64
	if comp.gaussian {
		v = r.NormFloat64()*comp.b + comp.a
	} else {
		v = comp.a + r.Float64()*(comp.b-comp.a)
	}
	d := simtime.Day(v)
	if d < notBefore {
		d = notBefore + simtime.Day(r.Intn(30))
	}
	if d < 0 {
		d = 0
	}
	if int(d) >= simtime.NumDays {
		d = simtime.Day(simtime.NumDays - 1)
	}
	return d
}

// exitProb is the probability that a domain eventually leaves the CMP
// (switching away or dropping consent management).
func exitProb(c cmps.ID) float64 {
	switch c {
	case cmps.Cookiebot:
		return 0.45
	case cmps.Crownpeak:
		return 0.78
	case cmps.TrustArc:
		return 0.18
	case cmps.Quantcast:
		return 0.10
	case cmps.OneTrust:
		return 0.06
	default: // LiveRamp: too new to churn
		return 0.02
	}
}

// sampleExit draws the day a domain leaves the CMP it adopted on
// `entry`. Returning a day >= NumDays means the exit falls outside the
// window (episode remains ongoing). Crownpeak's exits concentrate in
// early 2020, producing its Table A.3 → Table 1 collapse.
func sampleExit(r *rand.Rand, c cmps.ID, entry simtime.Day) simtime.Day {
	minStay := simtime.Day(45)
	var exit simtime.Day
	if c == cmps.Crownpeak {
		exit = simtime.Day(r.NormFloat64()*40 + jan20 + 75)
	} else {
		// Uniform over [entry+60, end+40%]: a share of exits falls
		// beyond the window and is therefore unobserved churn.
		span := float64(simtime.NumDays)*1.4 - float64(entry+60)
		exit = entry + 60 + simtime.Day(r.Float64()*span)
	}
	if exit < entry+minStay {
		exit = entry + minStay
	}
	return exit
}

// successorWeights is the distribution of the next CMP after a switch.
// OneTrust and Quantcast absorb most switchers; Cookiebot gains almost
// nothing back (the "gateway CMP" dynamic of Figure 4).
func successorWeights(after simtime.Day) map[cmps.ID]float64 {
	w := map[cmps.ID]float64{
		cmps.OneTrust:  0.52,
		cmps.Quantcast: 0.33,
		cmps.TrustArc:  0.08,
		cmps.Cookiebot: 0.04,
		cmps.Crownpeak: 0.01,
	}
	if after >= cmps.LiveRamp.Launch() {
		w[cmps.LiveRamp] = 0.02
	}
	return w
}

// switchAfterExitProb is the share of exits that move to another CMP
// (the rest abandon consent management).
const switchAfterExitProb = 0.62

// assignEpisodes draws the domain's full CMP history.
func (w *World) assignEpisodes(d *Domain, r *rand.Rand) {
	if d.Unreachable || d.Infrastructure {
		return
	}
	if r.Float64() >= bandAdoptProb(d.Rank) {
		return
	}

	// First CMP by entry weights.
	first := weightedCMP(r, func(c cmps.ID) float64 { return entryWeight(c, d.Rank, d.EUUK) })
	entry := sampleDate(r, entryDates(first), first.Launch())

	cur := first
	start := entry
	end := simtime.Day(simtime.NumDays)
	for depth := 0; depth < 3; depth++ {
		if r.Float64() >= exitProb(cur) {
			break
		}
		exit := sampleExit(r, cur, start)
		if int(exit) >= simtime.NumDays {
			break // churn beyond the observation window
		}
		d.Episodes = append(d.Episodes, Episode{CMP: cur, Start: start, End: exit})
		if r.Float64() >= switchAfterExitProb {
			return // abandoned consent management
		}
		sw := successorWeights(exit)
		delete(sw, cur)
		next := weightedCMP(r, func(c cmps.ID) float64 { return sw[c] })
		if !next.Valid() {
			return
		}
		cur = next
		start = exit
	}
	d.Episodes = append(d.Episodes, Episode{CMP: cur, Start: start, End: end})
	d.Episodes = sortEpisodes(d.Episodes)
}

// weightedCMP draws a CMP proportionally to weightOf.
func weightedCMP(r *rand.Rand, weightOf func(cmps.ID) float64) cmps.ID {
	total := 0.0
	for _, c := range cmps.All() {
		total += weightOf(c)
	}
	if total <= 0 {
		return cmps.None
	}
	u := r.Float64() * total
	for _, c := range cmps.All() {
		u -= weightOf(c)
		if u < 0 {
			return c
		}
	}
	return cmps.Crownpeak
}

// assignGeoBehaviour draws geo-dependent embedding: EU-only CMPs and
// the CCPA-driven wave of sites becoming visible from the US
// (explaining the Table A.3 → Table 1 US coverage rise, 70% → 79%).
func (w *World) assignGeoBehaviour(d *Domain, r *rand.Rand) {
	last := d.Episodes[len(d.Episodes)-1].CMP
	euOnlyP := map[cmps.ID]float64{
		cmps.Quantcast: 0.32,
		cmps.Cookiebot: 0.24,
		cmps.OneTrust:  0.16,
		cmps.TrustArc:  0.10,
		cmps.LiveRamp:  0.15,
		cmps.Crownpeak: 0.15,
	}[last]
	if d.EUUK {
		euOnlyP *= 1.4
	}
	if r.Float64() < euOnlyP {
		d.EUOnlyEmbed = true
		// Roughly half of the EU-only sites start serving their CMP to
		// US visitors during the CCPA wave (Dec 2019 – May 2020).
		if r.Float64() < 0.50 {
			wave := simtime.Date(2019, time.December, 1)
			d.USVisibleFrom = wave + simtime.Day(r.Intn(170))
		}
	} else if r.Float64() < 0.35 {
		// Sites that always embed the framework but only show dialogs
		// to EU visitors; network detection still works from the US.
		d.ShowDialogOnlyEU = true
	}
}
