package webworld

import (
	"testing"
	"testing/quick"

	"repro/internal/psl"
	"repro/internal/simtime"
)

// TestWorldInvariantsProperty checks structural invariants of the
// universe across many seeds: the top 50 never adopt, episodes are
// well-formed and launch-respecting, names normalize to themselves,
// and geo behaviour is only assigned to adopters.
func TestWorldInvariantsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test over many worlds")
	}
	f := func(seed uint16) bool {
		w := New(Config{Seed: uint64(seed), Domains: 800})
		for _, d := range w.Domains() {
			if d.Rank <= 50 && len(d.Episodes) > 0 {
				return false
			}
			if got, err := psl.EffectiveTLDPlusOne(d.Name); err != nil || got != d.Name {
				return false
			}
			prevEnd := simtime.Day(-1)
			for _, e := range d.Episodes {
				if !e.CMP.Valid() || e.Start >= e.End || e.Start < e.CMP.Launch() || e.Start < prevEnd {
					return false
				}
				prevEnd = e.End
			}
			if len(d.Episodes) == 0 {
				// Non-adopters carry no CMP-specific traits.
				if d.AntiBot || d.APIOnly || d.EUOnlyEmbed || d.Custom.Variant != VariantNone {
					return false
				}
			}
			if d.EUOnlyEmbed && d.ShowDialogOnlyEU {
				return false // mutually exclusive geo behaviours
			}
			if d.BarePages > 0 && d.Subsites < 12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestVisitNeverPanicsProperty drives Visit across random domains,
// days, paths, and contexts: it must return a page or an error, never
// panic, and pages must carry a coherent status.
func TestVisitNeverPanicsProperty(t *testing.T) {
	w := New(Config{Seed: 1, Domains: 2_000})
	f := func(rank uint16, dayRaw uint32, sub uint8, geoEU, cloud bool) bool {
		d := w.DomainAt(int(rank%2_000) + 1)
		day := simtime.Day(dayRaw % uint32(simtime.NumDays))
		geo := GeoUS
		if geoEU {
			geo = GeoEU
		}
		page, err := w.Visit(d.Name, d.SubsitePath(int(sub)%maxInt(1, d.Subsites)), VisitContext{
			Day: day, Geo: geo, Cloud: cloud,
		})
		if err != nil {
			return true // errors are fine; panics are not
		}
		switch page.Status {
		case 0, 200, 403, 451, 503:
			return true
		default:
			return false
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
