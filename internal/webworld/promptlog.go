package webworld

import (
	"sort"

	"repro/internal/cmps"
	"repro/internal/simtime"
)

// CMP dialog frameworks evolve rapidly: the paper observed Quantcast's
// consent prompt change 38 times during the observation period
// (Figure 1) and collected the change history via the Internet Wayback
// Machine (Section 3.4). The simulator versions each CMP's prompt and
// stamps the revision into the rendered dialog DOM, so the change
// history can be recovered from captures exactly as the paper did from
// archived screenshots.

// promptChanges is the number of prompt revisions per CMP over the
// window. Quantcast's 38 is measured; the others are plausible
// framework release cadences.
var promptChanges = map[cmps.ID]int{
	cmps.OneTrust:  24,
	cmps.Quantcast: 38,
	cmps.TrustArc:  15,
	cmps.Cookiebot: 19,
	cmps.LiveRamp:  6,
	cmps.Crownpeak: 9,
}

// promptChangeDays returns the sorted days on which the CMP shipped a
// new prompt revision.
func (w *World) promptChangeDays(c cmps.ID) []simtime.Day {
	n := promptChanges[c]
	if n == 0 {
		return nil
	}
	r := w.src.Stream("prompt-revisions", c.String())
	days := make([]simtime.Day, 0, n)
	seen := make(map[simtime.Day]bool, n)
	start := int(c.Launch())
	for len(days) < n {
		d := simtime.Day(start + r.Intn(simtime.NumDays-start))
		if !seen[d] {
			seen[d] = true
			days = append(days, d)
		}
	}
	sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
	return days
}

// PromptRevision returns the prompt revision of the CMP's dialog
// framework active at the given day. Revision 1 is the initial design;
// each change day increments it, so the final revision is
// 1 + number-of-changes.
func (w *World) PromptRevision(c cmps.ID, day simtime.Day) int {
	w.promptOnce.Do(func() {
		w.promptDays = make(map[cmps.ID][]simtime.Day, cmps.Count)
		for _, id := range cmps.All() {
			w.promptDays[id] = w.promptChangeDays(id)
		}
	})
	days := w.promptDays[c]
	// Binary search: revision = 1 + #changes on or before day.
	lo, hi := 0, len(days)
	for lo < hi {
		mid := (lo + hi) / 2
		if days[mid] <= day {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return 1 + lo
}

// PromptChangeCount returns how many times the CMP's prompt changed
// within the window (Figure 1 reports 38 for Quantcast).
func (w *World) PromptChangeCount(c cmps.ID) int {
	return promptChanges[c]
}
