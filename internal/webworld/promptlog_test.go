package webworld

import (
	"strings"
	"testing"

	"repro/internal/cmps"
	"repro/internal/simtime"
)

func TestPromptRevisionMonotone(t *testing.T) {
	w := New(Config{Seed: 1, Domains: 100})
	for _, c := range cmps.All() {
		prev := 0
		for day := simtime.Day(0); int(day) < simtime.NumDays; day += 10 {
			rev := w.PromptRevision(c, day)
			if rev < prev {
				t.Fatalf("%s: revision decreased %d → %d at %s", c, prev, rev, day)
			}
			prev = rev
		}
	}
}

func TestQuantcastPromptChanges(t *testing.T) {
	// Figure 1: Quantcast's consent prompt changed 38 times in the
	// observation period.
	w := New(Config{Seed: 1, Domains: 100})
	if got := w.PromptChangeCount(cmps.Quantcast); got != 38 {
		t.Errorf("change count = %d, want 38", got)
	}
	first := w.PromptRevision(cmps.Quantcast, 0)
	last := w.PromptRevision(cmps.Quantcast, simtime.Day(simtime.NumDays-1))
	if last-first > 38 {
		t.Errorf("window revisions span %d → %d, more changes than configured", first, last)
	}
	if last-first < 35 {
		t.Errorf("window revisions span %d → %d, too few changes realized", first, last)
	}
}

func TestPromptRevisionRespectsLaunch(t *testing.T) {
	w := New(Config{Seed: 1, Domains: 100})
	// LiveRamp launched December 2019: revision 1 until then.
	if got := w.PromptRevision(cmps.LiveRamp, cmps.LiveRamp.Launch()-1); got != 1 {
		t.Errorf("pre-launch revision = %d", got)
	}
}

func TestPromptRevisionInDialogDOM(t *testing.T) {
	w := New(Config{Seed: 1, Domains: 5_000})
	d := findDomain(w, func(d *Domain) bool {
		return len(d.Episodes) > 0 && !d.APIOnly && d.RedirectTo == "" && !d.AntiBot && !d.Unreachable &&
			!d.Geo451 && d.Custom.Variant != VariantFooterLink && d.Custom.Variant != VariantHiddenFromEU &&
			!d.ShowDialogOnlyEU && d.Episodes[len(d.Episodes)-1].End == simtime.Day(simtime.NumDays)
	})
	if d == nil {
		t.Skip("no dialog domain")
	}
	ep := d.Episodes[len(d.Episodes)-1]
	early, err := w.Visit(d.Name, "/", VisitContext{Day: ep.Start, Geo: GeoEU})
	if err != nil {
		t.Fatal(err)
	}
	late, err := w.Visit(d.Name, "/", VisitContext{Day: simtime.Day(simtime.NumDays - 1), Geo: GeoEU})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(early.DOM, "data-prompt-rev=") || !strings.Contains(late.DOM, "data-prompt-rev=") {
		t.Fatalf("prompt revision missing from DOM: %q", early.DOM)
	}
}
