package webworld

import (
	"fmt"

	"repro/internal/cmps"
	"repro/internal/simtime"
)

// Domain is one registrable website in the synthetic web. All fields
// are immutable after construction.
type Domain struct {
	// Name is the registrable (effective second-level) domain.
	Name string
	// Rank is the true popularity rank, 1-based. Toplists observe this
	// through provider noise.
	Rank int
	// TLD is the public suffix, e.g. "com" or "co.uk".
	TLD string
	// EUUK reports whether the TLD is an EU or UK country code.
	EUUK bool

	// Infrastructure marks domains not directly accessed by users
	// (CDNs, API endpoints); they are never shared on social media.
	// The paper found >90% of never-shared-but-reachable Tranco-10k
	// domains to be infrastructure (Section 3.5).
	Infrastructure bool
	// NeverShared marks domains that never appear in the social feed.
	NeverShared bool

	// Reachability of the seed URL (Section 3.2, toplist crawling):
	// Unreachable domains fail TCP/TLS entirely; NoValidResponse
	// domains accept connections but emit garbage; HTTPError domains
	// return a 4xx/5xx status.
	Unreachable     bool
	NoValidResponse bool
	HTTPError       bool
	// HTTPSWWW reports whether https://www.<domain>/ serves a valid
	// certificate (the preferred seed URL form).
	HTTPSWWW bool
	// HTTPWWW reports whether plain HTTP on www.<domain>:80 connects
	// when TLS does not — the seed-probe fallback between HTTPS-www and
	// the bare apex (Section 3.2).
	HTTPWWW bool
	// RedirectTo, when non-empty, is the registrable domain this
	// domain redirects to at the top level. About 11% of all crawls
	// include such redirects.
	RedirectTo string

	// AntiBot marks sites behind CDN anti-bot interstitials that block
	// crawls from public-cloud address space (~10% of CMP sites).
	AntiBot bool
	// SlowLoad marks sites whose CMP resources load after Netograph's
	// aggressive idle timeout (~2% of CMP sites are missed this way).
	SlowLoad bool
	// Geo451 marks sites that respond with HTTP 451 Unavailable For
	// Legal Reasons to European visitors (0.2% fringe, Section 3.5).
	Geo451 bool

	// EUOnlyEmbed marks sites that embed their CMP only for EU
	// visitors. USVisibleFrom, when set (> 0), is the day such a site
	// starts embedding the CMP for US visitors too (CCPA adoption).
	EUOnlyEmbed   bool
	USVisibleFrom simtime.Day

	// ShowDialogOnlyEU marks sites that always embed the CMP framework
	// but configure it to only display dialogs to EU visitors. Network
	// detection still works from the US for these.
	ShowDialogOnlyEU bool

	// Episodes is the domain's CMP usage history, ordered by start
	// day, non-overlapping.
	Episodes []Episode

	// APIOnly marks publishers using the CMP for its API only, with a
	// fully custom consent dialog (~8%, Section 4.1).
	APIOnly bool
	// PrivacyFriendly marks the minority of sites that store no
	// user-identifying state at all — Sanchez-Rola et al. found 90% of
	// sites use cookies that could identify users even post-GDPR, so
	// ≈10% do not.
	PrivacyFriendly bool
	// PreChoiceConsent marks sites that send the consent signal before
	// the user makes any choice — Matte et al. (cited in Section 6)
	// found this on 12% of TCF websites.
	PreChoiceConsent bool
	// IgnoresOptOut marks sites that record positive consent even
	// after an explicit opt-out ("some even record the user's consent
	// after an explicit opt-out").
	IgnoresOptOut bool
	// Custom describes how the publisher customized the embedded
	// dialog (item I3).
	Custom Customization

	// Subsites is how many distinct subsite paths the domain has.
	Subsites int
	// BarePages is the number of subsites (<= Subsites) that embed no
	// external scripts at all — e.g. privacy-policy pages — and hence
	// show no CMP resources.
	BarePages int
	// CMPSubsitesOnly marks sites that embed the CMP on content pages
	// but not on the landing page (e.g. ad-funded article pages under
	// a clean corporate front page). Front-page-only crawls miss these
	// entirely; the paper's subsite sampling is what finds them
	// ("it allows us to detect CMPs that are only present on specific
	// subdomains or subsites", Section 3.5).
	CMPSubsitesOnly bool
}

// Episode is one continuous period during which the domain embedded a
// CMP. End is exclusive; an ongoing episode has End == NumDays.
type Episode struct {
	CMP   cmps.ID
	Start simtime.Day
	End   simtime.Day
}

// CMPAt returns the CMP embedded on the domain at the given day, or
// cmps.None.
func (d *Domain) CMPAt(day simtime.Day) cmps.ID {
	for _, e := range d.Episodes {
		if day >= e.Start && day < e.End {
			return e.CMP
		}
	}
	return cmps.None
}

// EverUsedCMP reports whether the domain embedded any studied CMP at
// any point in the window.
func (d *Domain) EverUsedCMP() bool { return len(d.Episodes) > 0 }

// SubsitePath returns the canonical path of subsite i (0 is the
// landing page).
func (d *Domain) SubsitePath(i int) string {
	if i <= 0 {
		return "/"
	}
	return fmt.Sprintf("/page/%d", i)
}

// subsiteIsBare reports whether subsite i is one of the pages that
// embed no external scripts.
func (d *Domain) subsiteIsBare(i int) bool {
	// Bare pages are the highest-numbered subsites, so the landing
	// page is never bare.
	return i > 0 && i > d.Subsites-1-d.BarePages
}
