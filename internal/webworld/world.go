// Package webworld simulates the web of March 2018 – September 2020 as
// the measurement substrate for the reproduction. It substitutes for
// the live internet the paper crawled: a deterministic universe of
// registrable domains with popularity ranks, CMP adoption histories,
// geo- and vantage-dependent behaviour, redirects, subsites and the
// other confounders Section 3.5 of the paper documents.
//
// The adoption model's parameters are calibrated against the aggregate
// statistics the paper reports (see DESIGN.md §4); given a seed, the
// whole world is bit-reproducible and side-effect free.
package webworld

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cmps"
	"repro/internal/rng"
	"repro/internal/simtime"
)

// Config parameterizes the universe.
type Config struct {
	// Seed roots all randomness.
	Seed uint64
	// Domains is the universe size (the paper observed 4.2M unique
	// domains; the default reproduction scale is 100k).
	Domains int
	// TransientDownRate overrides the per-(domain, day) probability of
	// a transient outage: 0 keeps the calibrated default (2%,
	// Section 3.5), negative disables outages entirely. Outages are
	// drawn per day, so same-day retries never recover them — chaos
	// experiments isolating injected fault rates set this negative.
	TransientDownRate float64
}

// DefaultConfig returns the default reproduction scale.
func DefaultConfig() Config {
	return Config{Seed: 1, Domains: 100_000}
}

// World is the immutable synthetic web.
type World struct {
	cfg     Config
	src     *rng.Source
	domains []*Domain // index = rank-1
	byName  map[string]*Domain

	// promptDays caches per-CMP prompt-revision change days.
	promptOnce sync.Once
	promptDays map[cmps.ID][]simtime.Day
}

// tldTable is the TLD mix of the universe. Weights loosely follow the
// composition of the Tranco list; EU+UK TLDs are frequent enough to
// express the jurisdictional CMP preferences (Section 4.1).
var tldTable = []struct {
	tld    string
	weight float64
	euuk   bool
}{
	{"com", 0.46, false},
	{"org", 0.06, false},
	{"net", 0.05, false},
	{"io", 0.03, false},
	{"co", 0.02, false},
	{"de", 0.05, true},
	{"co.uk", 0.05, true},
	{"fr", 0.03, true},
	{"it", 0.02, true},
	{"nl", 0.02, true},
	{"es", 0.02, true},
	{"pl", 0.02, true},
	{"se", 0.01, true},
	{"eu", 0.01, true},
	{"ru", 0.03, false},
	{"jp", 0.03, false},
	{"com.br", 0.02, false},
	{"in", 0.02, false},
	{"com.au", 0.02, false},
	{"ca", 0.01, false},
	{"ch", 0.01, true}, // not EU, but GDPR-adjacent; counted non-EUUK below
	{"github.io", 0.01, false},
}

// New builds the universe. Construction cost is O(Domains).
func New(cfg Config) *World {
	if cfg.Domains <= 0 {
		cfg.Domains = DefaultConfig().Domains
	}
	w := &World{
		cfg:    cfg,
		src:    rng.New(cfg.Seed).Derive("webworld"),
		byName: make(map[string]*Domain, cfg.Domains),
	}
	w.domains = make([]*Domain, cfg.Domains)
	for rank := 1; rank <= cfg.Domains; rank++ {
		d := w.generateDomain(rank)
		w.domains[rank-1] = d
		w.byName[d.Name] = d
	}
	// Redirect targets must exist; point alias domains at a nearby
	// more-popular domain.
	for _, d := range w.domains {
		if d.RedirectTo == "redirect-pending" {
			target := w.domains[w.src.Intn(maxInt(1, d.Rank-1), "redirtarget", d.Name)]
			if target.Name == d.Name || target.RedirectTo != "" {
				d.RedirectTo = ""
			} else {
				d.RedirectTo = target.Name
			}
		}
	}
	return w
}

// Config returns the world's configuration.
func (w *World) Config() Config { return w.cfg }

// NumDomains returns the universe size.
func (w *World) NumDomains() int { return len(w.domains) }

// DomainAt returns the domain with the given true rank (1-based).
func (w *World) DomainAt(rank int) *Domain {
	if rank < 1 || rank > len(w.domains) {
		return nil
	}
	return w.domains[rank-1]
}

// Domain returns the domain by registrable name, or nil.
func (w *World) Domain(name string) *Domain { return w.byName[name] }

// TrueOrder returns all domain names in true popularity order, for
// feeding toplist providers.
func (w *World) TrueOrder() []string {
	out := make([]string, len(w.domains))
	for i, d := range w.domains {
		out[i] = d.Name
	}
	return out
}

// Domains returns all domains in rank order. The slice is shared; do
// not mutate.
func (w *World) Domains() []*Domain { return w.domains }

// generateDomain draws all immutable properties for one rank.
func (w *World) generateDomain(rank int) *Domain {
	key := rng.Key(rank)
	r := w.src.Stream("domain", key)

	// TLD by weighted draw; infrastructure domains skew toward com/net/io.
	u := r.Float64()
	tld, euuk := "com", false
	for _, e := range tldTable {
		if u < e.weight {
			tld, euuk = e.tld, e.euuk && e.tld != "ch"
			break
		}
		u -= e.weight
	}
	name := fmt.Sprintf("%s%d.%s", sitePrefixes[r.Intn(len(sitePrefixes))], rank, tld)

	d := &Domain{Name: name, Rank: rank, TLD: tld, EUUK: euuk}

	// Infrastructure share grows toward the head of the list (CDNs and
	// API hosts are extremely popular by traffic but never shared).
	infraP := 0.05
	if rank <= 10_000 {
		infraP = 0.045
	}
	d.Infrastructure = r.Float64() < infraP

	// Reachability (Section 3.5 missing-data breakdown, scaled to the
	// Tranco 10k: 315 unreachable, 4 invalid, 70 HTTP error of 10k).
	d.Unreachable = r.Float64() < 0.0315
	d.NoValidResponse = !d.Unreachable && r.Float64() < 0.0004
	d.HTTPError = !d.Unreachable && !d.NoValidResponse && r.Float64() < 0.0070
	d.HTTPSWWW = r.Float64() < 0.85
	// Among domains without a valid www certificate, a subset still
	// serves plain HTTP on www:80. Drawn from a dedicated stream so the
	// calibrated draws below are unperturbed.
	d.HTTPWWW = !d.HTTPSWWW && !d.Unreachable && w.src.Bool(0.4, "http-www", d.Name)

	// Top-level redirects: 192/10k domains redirect to another domain
	// permanently; transient URL-level redirects are handled in page
	// rendering. Mark for fix-up after all domains exist.
	if !d.Unreachable && rank > 1 && r.Float64() < 0.0192 {
		d.RedirectTo = "redirect-pending"
	}

	// Never shared on social media: all infrastructure and unreachable
	// domains plus a small remainder (1076/10k total in the paper).
	d.NeverShared = d.Infrastructure || d.Unreachable || d.NoValidResponse ||
		d.HTTPError || r.Float64() < 0.012
	d.PrivacyFriendly = w.src.Bool(0.10, "privacy-friendly", d.Name)

	// Subsites and bare pages.
	d.Subsites = 3 + r.Intn(38)
	if d.Subsites >= 12 && r.Float64() < 0.35 {
		// Domains with a privacy-policy-like page that loads no
		// external scripts. Keeps per-domain daily CMP shares >95%
		// (Section 3.5, Subsites).
		d.BarePages = 1
	}

	// CMP adoption history (see adoption.go).
	w.assignEpisodes(d, r)

	if len(d.Episodes) > 0 {
		d.AntiBot = r.Float64() < 0.115
		d.SlowLoad = r.Float64() < 0.021
		d.Geo451 = r.Float64() < 0.002
		d.APIOnly = r.Float64() < 0.08
		// TCF compliance defects documented by Matte et al. (S&P '20).
		// Drawn from dedicated streams so adding them does not perturb
		// the calibrated draws below.
		d.PreChoiceConsent = w.src.Bool(0.12, "prechoice", d.Name)
		d.IgnoresOptOut = w.src.Bool(0.054, "ignores-optout", d.Name)
		d.CMPSubsitesOnly = w.src.Bool(0.06, "subsites-only", d.Name)
		w.assignGeoBehaviour(d, r)
		w.assignCustomization(d, r)
	}
	return d
}

var sitePrefixes = []string{
	"news", "daily", "shop", "blog", "media", "portal", "online", "the",
	"my", "best", "info", "web", "go", "get", "top", "live", "meta",
	"pixel", "cloud", "data", "play", "game", "tech", "sport", "food",
	"travel", "health", "auto", "home", "style", "music", "video",
}

// sortEpisodes orders and sanity-checks a domain's episodes.
func sortEpisodes(eps []Episode) []Episode {
	sort.Slice(eps, func(i, j int) bool { return eps[i].Start < eps[j].Start })
	return eps
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
