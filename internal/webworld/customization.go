package webworld

import (
	"math/rand"

	"repro/internal/cmps"
)

// Publisher customization of embedded CMPs (item I3, Section 4.1).
// CMPs differ in how much customizability they extend: closed
// customization (finitely many options, e.g. banner structure) and
// open customization (free text, e.g. button wording).

// BannerVariant is the closed-customization structure of the consent
// interface a publisher chose.
type BannerVariant int

const (
	// VariantNone is set for domains without a CMP.
	VariantNone BannerVariant = iota
	// VariantConventional: cookie banner with a 1-click accept button
	// and a second button/link to a page with fine-grained controls.
	VariantConventional
	// VariantDirectReject: banner with a first-page opt-out/reject
	// button ("Do Not Sell", "Reject/Manage Cookies", "Deny All").
	VariantDirectReject
	// VariantScriptBanner: OneTrust's "script banner" — a cookie
	// banner in all but name, with Accept and Reject/Manage *Scripts*
	// buttons (the linguistic shift from cookies to scripts).
	VariantScriptBanner
	// VariantFooterLink: no banner, only a cookie/privacy link in the
	// website footer.
	VariantFooterLink
	// VariantMoreOptions: first page offers accept or "More Options";
	// rejecting requires navigating to a second page (Quantcast
	// configuration B, Figure A.2).
	VariantMoreOptions
	// VariantOptOutConnects: first-page opt-out that must establish
	// connections with multiple partners before completing (TrustArc,
	// measured in Figure 9).
	VariantOptOutConnects
	// VariantAutonomyButton: first-page button implying the user has
	// autonomy, leading to further controls (TrustArc).
	VariantAutonomyButton
	// VariantNoControlLink: link or button that does not imply the
	// user has control (TrustArc).
	VariantNoControlLink
	// VariantHiddenFromEU: dialogue hidden from EU IP addresses
	// (TrustArc CCPA product).
	VariantHiddenFromEU
	// VariantCustomAPI: publisher uses the CMP for its API only and
	// built a fully custom dialog (~8% of CMP sites).
	VariantCustomAPI
)

var variantNames = map[BannerVariant]string{
	VariantNone:           "none",
	VariantConventional:   "conventional-banner",
	VariantDirectReject:   "direct-reject",
	VariantScriptBanner:   "script-banner",
	VariantFooterLink:     "footer-link",
	VariantMoreOptions:    "more-options",
	VariantOptOutConnects: "optout-connects-partners",
	VariantAutonomyButton: "autonomy-button",
	VariantNoControlLink:  "no-control-link",
	VariantHiddenFromEU:   "hidden-from-eu",
	VariantCustomAPI:      "custom-api-only",
}

func (v BannerVariant) String() string {
	if s, ok := variantNames[v]; ok {
		return s
	}
	return "unknown"
}

// FooterLinkText is the open customization of footer-link-only sites.
type FooterLinkText int

const (
	FooterNoLink FooterLinkText = iota
	FooterDoNotSell
	FooterCaliforniaPrivacy
	FooterPrivacyPolicy
)

func (f FooterLinkText) String() string {
	switch f {
	case FooterDoNotSell:
		return "Do Not Sell"
	case FooterCaliforniaPrivacy:
		return "California Privacy Rights"
	case FooterPrivacyPolicy:
		return "Privacy Policy"
	default:
		return ""
	}
}

// Customization bundles a publisher's dialog customization choices.
type Customization struct {
	Variant BannerVariant
	// ConfirmRequired: the opt-out button requires further clicks to
	// confirm (40% of OneTrust direct-reject banners).
	ConfirmRequired bool
	// Footer is the footer link wording for VariantFooterLink sites.
	Footer FooterLinkText
	// AcceptAffirmative: accept-button text is a variation of
	// "I agree/consent/accept" (87% of Quantcast sites); otherwise the
	// publisher used free-form text that may not qualify as
	// affirmative consent.
	AcceptAffirmative bool
	// AcceptText is the literal accept-button wording.
	AcceptText string
}

// freeform accept-button texts observed in the wild (Section 4.1).
var freeformAccepts = []string{"Whatever", "Sounds good", "Accept and move on"}
var affirmativeAccepts = []string{"I ACCEPT", "I agree", "Accept", "I consent", "Agree & continue"}

// assignCustomization draws the I3 traits for the domain's current
// (last) CMP, following the per-CMP distributions of Section 4.1.
func (w *World) assignCustomization(d *Domain, r *rand.Rand) {
	if d.APIOnly {
		d.Custom.Variant = VariantCustomAPI
		d.Custom.AcceptText = "OK"
		return
	}
	last := d.Episodes[len(d.Episodes)-1].CMP
	u := r.Float64()
	switch last {
	case cmps.OneTrust:
		// 61% conventional, 2.4% direct opt-out (40% need confirm),
		// 5.5% script banner, 7.5% footer link (11:15:4 wording split),
		// remainder: other conventional-like designs.
		switch {
		case u < 0.61:
			d.Custom.Variant = VariantConventional
		case u < 0.634:
			d.Custom.Variant = VariantDirectReject
			d.Custom.ConfirmRequired = r.Float64() < 0.40
		case u < 0.689:
			d.Custom.Variant = VariantScriptBanner
		case u < 0.764:
			d.Custom.Variant = VariantFooterLink
			fu := r.Float64()
			switch {
			case fu < 11.0/30:
				d.Custom.Footer = FooterDoNotSell
			case fu < 26.0/30:
				d.Custom.Footer = FooterCaliforniaPrivacy
			default:
				d.Custom.Footer = FooterPrivacyPolicy
			}
		default:
			d.Custom.Variant = VariantConventional
		}
	case cmps.Quantcast:
		// Closed customization: 55% 1-click reject-all (config A), 45%
		// "More Options" second button (config B). Open customization:
		// 87% affirmative accept wording.
		if u < 0.55 {
			d.Custom.Variant = VariantDirectReject
		} else {
			d.Custom.Variant = VariantMoreOptions
		}
		d.Custom.AcceptAffirmative = r.Float64() < 0.87
	case cmps.TrustArc:
		// 7% instant opt-out; 12% opt-out connecting to partners; 44%
		// autonomy-implying button; 31% no-control link; 4.4% hidden
		// from EU; remainder other.
		switch {
		case u < 0.07:
			d.Custom.Variant = VariantDirectReject
		case u < 0.19:
			d.Custom.Variant = VariantOptOutConnects
		case u < 0.63:
			d.Custom.Variant = VariantAutonomyButton
		case u < 0.94:
			d.Custom.Variant = VariantNoControlLink
		case u < 0.984:
			d.Custom.Variant = VariantHiddenFromEU
		default:
			d.Custom.Variant = VariantConventional
		}
	default:
		// Cookiebot, LiveRamp, Crownpeak: mostly conventional banners
		// with a minority offering a first-page reject.
		if u < 0.75 {
			d.Custom.Variant = VariantConventional
		} else {
			d.Custom.Variant = VariantDirectReject
		}
	}
	if d.Custom.AcceptText == "" {
		if d.Custom.AcceptAffirmative || last != cmps.Quantcast {
			d.Custom.AcceptText = affirmativeAccepts[r.Intn(len(affirmativeAccepts))]
			d.Custom.AcceptAffirmative = true
		} else {
			d.Custom.AcceptText = freeformAccepts[r.Intn(len(freeformAccepts))]
		}
	}
}
