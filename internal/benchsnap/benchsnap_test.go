package benchsnap

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) CPU
BenchmarkTable1Vantage-8       	       5	 163200000 ns/op
BenchmarkCoverageSeries-8      	       5	 385900000 ns/op	      12 campaigns
BenchmarkCaptureDB/write-8     	       5	     25280 ns/op	  42.80 MB/s	    2048 B/op	      12 allocs/op
BenchmarkDetectOne-8           	 5000000	       211 ns/op	       0 B/op	       0 allocs/op
--- some test log line
PASS
ok  	repro	16.2s
`

func parseSample(t *testing.T) *Snapshot {
	t.Helper()
	s, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return s
}

func TestParse(t *testing.T) {
	s := parseSample(t)
	if s.Goos != "linux" || s.Goarch != "amd64" || s.Pkg != "repro" {
		t.Errorf("header = %q/%q/%q, want linux/amd64/repro", s.Goos, s.Goarch, s.Pkg)
	}
	if !strings.Contains(s.CPU, "Xeon") {
		t.Errorf("CPU = %q, want Xeon", s.CPU)
	}
	if len(s.Benchmarks) != 4 {
		t.Fatalf("got %d benchmarks, want 4: %v", len(s.Benchmarks), s.Names())
	}

	// GOMAXPROCS suffix must be stripped; sub-benchmark names kept.
	r, ok := s.Benchmarks["BenchmarkCaptureDB/write"]
	if !ok {
		t.Fatalf("missing BenchmarkCaptureDB/write in %v", s.Names())
	}
	if r.Iterations != 5 || r.NsPerOp != 25280 {
		t.Errorf("write = %+v, want 5 iters, 25280 ns/op", r)
	}
	if r.MBPerS == nil || *r.MBPerS != 42.80 {
		t.Errorf("write MB/s = %v, want 42.80", r.MBPerS)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 2048 || r.AllocsPerOp == nil || *r.AllocsPerOp != 12 {
		t.Errorf("write mem = %v B/op %v allocs/op, want 2048/12", r.BytesPerOp, r.AllocsPerOp)
	}

	// Custom b.ReportMetric units land in Metrics.
	cov := s.Benchmarks["BenchmarkCoverageSeries"]
	if cov.Metrics["campaigns"] != 12 {
		t.Errorf("campaigns metric = %v, want 12", cov.Metrics)
	}

	det := s.Benchmarks["BenchmarkDetectOne"]
	if det.Iterations != 5000000 || det.NsPerOp != 211 {
		t.Errorf("DetectOne = %+v", det)
	}
	if det.AllocsPerOp == nil || *det.AllocsPerOp != 0 {
		t.Errorf("DetectOne allocs = %v, want 0", det.AllocsPerOp)
	}
}

// With -count > 1 the fastest repeat must win, regardless of order.
func TestParseRepeatsKeepMin(t *testing.T) {
	out := `BenchmarkX-8	100	300 ns/op
BenchmarkX-8	100	250 ns/op
BenchmarkX-8	100	280 ns/op
`
	s, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := s.Benchmarks["BenchmarkX"].NsPerOp; got != 250 {
		t.Errorf("BenchmarkX = %v ns/op, want min 250", got)
	}
}

func TestParseEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok\n")); err == nil {
		t.Fatal("Parse of output with no benchmarks: want error")
	}
}

func TestRoundTrip(t *testing.T) {
	s := parseSample(t)
	s.Date = "2026-08-05"
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := s.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Date != "2026-08-05" || len(got.Benchmarks) != len(s.Benchmarks) {
		t.Fatalf("round trip lost data: %+v", got)
	}
	for name, want := range s.Benchmarks {
		if got.Benchmarks[name].NsPerOp != want.NsPerOp {
			t.Errorf("%s: ns/op %v != %v", name, got.Benchmarks[name].NsPerOp, want.NsPerOp)
		}
	}
}

func TestCompare(t *testing.T) {
	alloc0, alloc3 := 0.0, 3.0
	old := &Snapshot{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 1000, AllocsPerOp: &alloc0},
		"BenchmarkB": {NsPerOp: 1000},
		"BenchmarkC": {NsPerOp: 1000},
		"BenchmarkGone": {NsPerOp: 50},
	}}
	new := &Snapshot{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 1150, AllocsPerOp: &alloc3}, // +15%: within threshold
		"BenchmarkB": {NsPerOp: 1300},                       // +30%: regression
		"BenchmarkC": {NsPerOp: 200},                        // 5x faster
		"BenchmarkNew": {NsPerOp: 10},
	}}
	rep := Compare(old, new, 0.20)
	if len(rep.Deltas) != 3 {
		t.Fatalf("got %d deltas, want 3", len(rep.Deltas))
	}
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Name != "BenchmarkB" {
		t.Fatalf("regressions = %+v, want only BenchmarkB", regs)
	}
	if got := regs[0].Ratio; got != 1.3 {
		t.Errorf("BenchmarkB ratio = %v, want 1.3", got)
	}
	if len(rep.OnlyOld) != 1 || rep.OnlyOld[0] != "BenchmarkGone" {
		t.Errorf("OnlyOld = %v", rep.OnlyOld)
	}
	if len(rep.OnlyNew) != 1 || rep.OnlyNew[0] != "BenchmarkNew" {
		t.Errorf("OnlyNew = %v", rep.OnlyNew)
	}

	var buf bytes.Buffer
	rep.Format(&buf)
	out := buf.String()
	for _, want := range []string{"! BenchmarkB", "+ BenchmarkC", "5.00x faster", "1.30x slower", "allocs +3/op", "BenchmarkGone", "BenchmarkNew"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
}

func TestCompareNoRegression(t *testing.T) {
	old := &Snapshot{Benchmarks: map[string]Result{"BenchmarkA": {NsPerOp: 1000}}}
	new := &Snapshot{Benchmarks: map[string]Result{"BenchmarkA": {NsPerOp: 1100}}}
	if regs := Compare(old, new, 0.20).Regressions(); len(regs) != 0 {
		t.Fatalf("+10%% flagged as regression at 20%% threshold: %+v", regs)
	}
}
