// Package benchsnap parses `go test -bench` output into JSON
// snapshots and diffs two snapshots against a regression threshold.
// It is the engine behind `make bench` (which emits BENCH_<date>.json
// files) and cmd/benchdiff (which gates changes on them), closing the
// benchmark-regression loop for the analysis hot path.
package benchsnap

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements. Unset float fields are
// encoded as absent (pointer nil) so a snapshot records exactly what
// the run reported.
type Result struct {
	// Iterations is the b.N the numbers were averaged over.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the primary regression-gated metric.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp are present with -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// MBPerS is present when the benchmark calls b.SetBytes.
	MBPerS *float64 `json:"mb_per_s,omitempty"`
	// Metrics holds custom b.ReportMetric values by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is one benchmark run: environment header plus per-name
// results. Names have the -GOMAXPROCS suffix stripped so snapshots
// from machines with different core counts stay comparable.
type Snapshot struct {
	Date       string            `json:"date,omitempty"`
	Goos       string            `json:"goos,omitempty"`
	Goarch     string            `json:"goarch,omitempty"`
	Pkg        string            `json:"pkg,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// gomaxprocsSuffix strips the trailing -N procs suffix from names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// Parse reads `go test -bench` output. Lines that are not benchmark
// results (headers, PASS/ok, test logs) are skipped. When a benchmark
// appears more than once (`-count` > 1) the fastest run wins: the
// minimum is the standard robust estimator — slower repeats measure
// scheduler and frequency noise, not the code.
func Parse(r io.Reader) (*Snapshot, error) {
	s := &Snapshot{Benchmarks: make(map[string]Result)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			s.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			s.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			s.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			s.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		name, res, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		if prev, seen := s.Benchmarks[name]; !seen || res.NsPerOp < prev.NsPerOp {
			s.Benchmarks[name] = res
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchsnap: no benchmark results found")
	}
	return s, nil
}

// parseBenchLine parses one "BenchmarkX-8  3  42 ns/op  ..." line:
// name, iteration count, then whitespace-separated (value, unit)
// measurement pairs.
func parseBenchLine(line string) (string, Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", Result{}, false
	}
	name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	res := Result{Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			break
		}
		v := val
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
			seen = true
		case "B/op":
			res.BytesPerOp = &v
		case "allocs/op":
			res.AllocsPerOp = &v
		case "MB/s":
			res.MBPerS = &v
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = v
		}
	}
	return name, res, seen
}

// Load reads a snapshot JSON file.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("benchsnap: %s: %w", path, err)
	}
	return &s, nil
}

// WriteFile writes the snapshot as indented JSON.
func (s *Snapshot) WriteFile(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Names returns the benchmark names in sorted order.
func (s *Snapshot) Names() []string {
	out := make([]string, 0, len(s.Benchmarks))
	for name := range s.Benchmarks {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Delta is one benchmark's old-vs-new comparison. Ratio is new/old for
// ns/op; <1 is an improvement.
type Delta struct {
	Name       string
	OldNs      float64
	NewNs      float64
	Ratio      float64
	Regression bool
	// AllocDelta is new-old allocs/op when both snapshots report it.
	AllocDelta float64
}

// Report is the outcome of comparing two snapshots.
type Report struct {
	Deltas []Delta
	// OnlyOld / OnlyNew list benchmarks present in one snapshot only
	// (renames and removals are surfaced, not silently dropped).
	OnlyOld []string
	OnlyNew []string
	// Threshold is the relative ns/op regression bound the report was
	// computed with.
	Threshold float64
}

// Regressions returns the deltas that exceeded the threshold.
func (r *Report) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// Compare diffs two snapshots: a benchmark regresses when its ns/op
// grew by more than threshold (e.g. 0.20 → +20%) relative to old.
func Compare(old, new *Snapshot, threshold float64) *Report {
	rep := &Report{Threshold: threshold}
	for _, name := range old.Names() {
		o := old.Benchmarks[name]
		n, ok := new.Benchmarks[name]
		if !ok {
			rep.OnlyOld = append(rep.OnlyOld, name)
			continue
		}
		d := Delta{Name: name, OldNs: o.NsPerOp, NewNs: n.NsPerOp}
		if o.NsPerOp > 0 {
			d.Ratio = n.NsPerOp / o.NsPerOp
			d.Regression = d.Ratio > 1+threshold
		}
		if o.AllocsPerOp != nil && n.AllocsPerOp != nil {
			d.AllocDelta = *n.AllocsPerOp - *o.AllocsPerOp
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	for _, name := range new.Names() {
		if _, ok := old.Benchmarks[name]; !ok {
			rep.OnlyNew = append(rep.OnlyNew, name)
		}
	}
	return rep
}

// Format renders the report as an aligned text table, regressions
// flagged, biggest movers first.
func (r *Report) Format(w io.Writer) {
	deltas := append([]Delta(nil), r.Deltas...)
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Ratio > deltas[j].Ratio })
	for _, d := range deltas {
		flag := " "
		switch {
		case d.Regression:
			flag = "!"
		case d.Ratio > 0 && d.Ratio < 1/(1+r.Threshold):
			flag = "+"
		}
		fmt.Fprintf(w, "%s %-60s %14.0f → %14.0f ns/op  %7s", flag, d.Name, d.OldNs, d.NewNs, ratioString(d.Ratio))
		if d.AllocDelta != 0 {
			fmt.Fprintf(w, "  (allocs %+.0f/op)", d.AllocDelta)
		}
		fmt.Fprintln(w)
	}
	for _, name := range r.OnlyOld {
		fmt.Fprintf(w, "- %-60s removed\n", name)
	}
	for _, name := range r.OnlyNew {
		fmt.Fprintf(w, "+ %-60s new\n", name)
	}
}

// ratioString renders a new/old ratio as a speedup/slowdown label.
func ratioString(ratio float64) string {
	switch {
	case ratio == 0:
		return "n/a"
	case ratio <= 1:
		return fmt.Sprintf("%.2fx faster", 1/ratio)
	default:
		return fmt.Sprintf("%.2fx slower", ratio)
	}
}
