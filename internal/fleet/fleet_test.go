package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/capstore"
	"repro/internal/capture"
	"repro/internal/crawler"
	"repro/internal/resilience"
	"repro/internal/simtime"
	"repro/internal/socialfeed"
	"repro/internal/webworld"
)

const (
	fleetSeed    = 11
	fleetDomains = 1_500
	fleetShares  = 120
	fleetShards  = 4
	fleetDays    = 2
	fleetRetries = 2
)

func fleetWorld() *webworld.World {
	return webworld.New(webworld.Config{Seed: fleetSeed, Domains: fleetDomains})
}

func fleetFeed(w *webworld.World) *socialfeed.Feed {
	return socialfeed.New(w, socialfeed.Config{Seed: fleetSeed, SharesPerDay: fleetShares})
}

// baselineStore runs the single-process StreamPlatform reference:
// Workers=1 records captures in share order — the canonical byte
// layout the fleet must reproduce.
func baselineStore(t *testing.T) (dir string, stats crawler.StreamStats) {
	t.Helper()
	dir = t.TempDir()
	st, err := capstore.Create(dir, fleetShards)
	if err != nil {
		t.Fatal(err)
	}
	w := fleetWorld()
	feed := fleetFeed(w)
	p := crawler.NewStreamPlatform(w, crawler.StreamConfig{
		Seed:           fleetSeed,
		Workers:        1,
		PerDomainDelay: time.Millisecond,
		Retry:          resilience.RetryPolicy{MaxAttempts: fleetRetries, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Multiplier: 2, Jitter: 0.5},
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Run(context.Background(), st)
	}()
	ctx := context.Background()
	for day := simtime.Day(0); day < fleetDays; day++ {
		for _, s := range feed.Day(day) {
			if err := p.Submit(ctx, day, s); err != nil {
				t.Errorf("baseline submit: %v", err)
			}
		}
	}
	p.Close()
	<-done
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, p.Stats()
}

func readSegs(t *testing.T, dir string) map[string]string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(p)] = string(data)
	}
	return out
}

// runFleet drives a full fleet run: coordinator behind a real HTTP
// server, capd-style ingest behind another, n workers plus one doomed
// worker that crashes mid-lease at the given stage ("processed" = after
// crawling, before the push; "pushed" = after the push, before the
// completion — the latter exercises ingest idempotency under
// re-delivery).
func runFleet(t *testing.T, n int, crashStage string) (dir string, ledger Ledger, ingStats capstore.IngestStats) {
	t.Helper()
	dir = t.TempDir()
	store, err := capstore.Create(dir, fleetShards)
	if err != nil {
		t.Fatal(err)
	}
	ing, err := capstore.NewIngester(store, capstore.IngestConfig{})
	if err != nil {
		t.Fatal(err)
	}
	capdMux := httptest.NewServer(ing)
	defer capdMux.Close()

	world := fleetWorld()
	items := WorkFromFeed(fleetFeed(world), 0, fleetDays-1)
	capCl := capstore.NewClient(capdMux.URL)
	co, err := NewCoordinator(items, CoordinatorConfig{
		LeaseSize:        16,
		LeaseTTL:         500 * time.Millisecond,
		LeaseRetryBudget: 5,
		IdleRetry:        20 * time.Millisecond,
		Skip: func(at, nn int64) error {
			_, err := capCl.RecordBatchAt(at, nn, nil)
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	coordSrv := httptest.NewServer(NewHandler(co, RunConfig{
		WorldSeed:     fleetSeed,
		WorldDomains:  fleetDomains,
		CrawlSeed:     fleetSeed,
		RetryAttempts: fleetRetries,
		PolitenessMS:  1,
		IngestURL:     capdMux.URL,
	}, ServerConfig{}))
	defer coordSrv.Close()

	sweepStop := make(chan struct{})
	var sweepWG sync.WaitGroup
	sweepWG.Add(1)
	go func() {
		defer sweepWG.Done()
		ticker := time.NewTicker(50 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-sweepStop:
				return
			case <-ticker.C:
				co.Sweep()
			}
		}
	}()

	coord := NewClient(coordSrv.URL)
	rc, err := coord.Config()
	if err != nil {
		t.Fatal(err)
	}
	newWorker := func(id string) *Worker {
		w, err := NewWorker(WorkerConfig{
			ID:          id,
			Coordinator: NewClient(coordSrv.URL),
			Push:        IngestPush(capCl),
			World:       fleetWorld(), // each worker rebuilds the world, like a real node
			Run:         rc,
		})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := newWorker(fmt.Sprintf("worker-%d", i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	// The doomed worker crashes on its first lease and never returns —
	// the in-process stand-in for a SIGKILLed node.
	doomed := newWorker("doomed")
	var crashed atomic.Bool
	doomed.crash = func(stage string, first int64) bool {
		return stage == crashStage && crashed.CompareAndSwap(false, true)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := doomed.Run(ctx)
		if err != nil && !errors.Is(err, ErrWorkerCrashed) && !errors.Is(err, context.Canceled) {
			t.Errorf("doomed worker: %v", err)
		}
	}()

	select {
	case <-co.Done():
	case <-ctx.Done():
		t.Fatalf("fleet did not drain: status=%+v ingest=%+v", co.Status(), ing.Stats())
	}
	cancel() // release idle workers
	wg.Wait()
	close(sweepStop)
	sweepWG.Wait()
	if !crashed.Load() {
		t.Fatalf("crash hook never fired at stage %q — the chaos path went untested", crashStage)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, co.Ledger(), ing.Stats()
}

// TestFleetDeterminism is the tentpole's headline invariant: a fleet of
// N workers — including a worker that crashes mid-lease — produces a
// capstore byte-identical to the single-process StreamPlatform run over
// the same feed window.
func TestFleetDeterminism(t *testing.T) {
	baseDir, baseStats := baselineStore(t)
	want := readSegs(t, baseDir)
	if baseStats.Succeeded+baseStats.FailedRecorded == 0 {
		t.Fatal("baseline produced no captures; the comparison is vacuous")
	}

	for _, tc := range []struct {
		workers    int
		crashStage string
	}{
		{1, "processed"},
		{3, "processed"},
		{3, "pushed"}, // crash after the push: re-delivery must dedup
	} {
		tc := tc
		t.Run(fmt.Sprintf("workers=%d/crash=%s", tc.workers, tc.crashStage), func(t *testing.T) {
			dir, ledger, ingStats := runFleet(t, tc.workers, tc.crashStage)
			got := readSegs(t, dir)
			if len(got) != len(want) {
				t.Fatalf("segment count: got %d, want %d", len(got), len(want))
			}
			for name, w := range want {
				if got[name] != w {
					t.Errorf("segment %s differs from single-process baseline (got %d bytes, want %d)",
						name, len(got[name]), len(w))
				}
			}
			if ledger.Captures+ledger.DeadLettered+ledger.Dropped != ledger.Submitted {
				t.Errorf("ledger does not balance: %+v", ledger)
			}
			if ledger.Captures != baseStats.Succeeded+baseStats.FailedRecorded {
				t.Errorf("fleet captures = %d, baseline recorded %d",
					ledger.Captures, baseStats.Succeeded+baseStats.FailedRecorded)
			}
			if ledger.DeadLettered != baseStats.DeadLettered {
				t.Errorf("fleet dead-lettered = %d, baseline %d", ledger.DeadLettered, baseStats.DeadLettered)
			}
			if ingStats.NextSeq != ledger.Submitted {
				t.Errorf("ingest cursor = %d, want %d (every range committed or skipped)",
					ingStats.NextSeq, ledger.Submitted)
			}
			if tc.crashStage == "pushed" && ingStats.Duplicates == 0 {
				t.Error("crash-after-push run saw no ingest duplicates; idempotency went unexercised")
			}
		})
	}
}

// TestVantageAgreement (satellite 1): CrawlDay, StreamPlatform, and the
// fleet worker path all assign vantages through the shared helper, so a
// capture of the same share gets the same vantage everywhere.
func TestVantageAgreement(t *testing.T) {
	w := fleetWorld()
	feed := fleetFeed(w)
	shares := feed.Day(0)
	if len(shares) == 0 {
		t.Fatal("no shares")
	}

	// Reference assignments through the shared helper.
	src := crawler.VantageSource(fleetSeed)
	wantVantage := make(map[string]string, len(shares))
	for _, s := range shares {
		wantVantage[s.URL] = crawler.PickVantage(src, s.URL, 0).Name
	}

	// CrawlDay path.
	batch := capture.NewMemStore()
	crawler.NewPlatform(w, crawler.Config{Seed: fleetSeed, Workers: 4}).CrawlDay(0, shares, batch)
	for _, c := range batch.All() {
		if c.Vantage.Name != wantVantage[c.SeedURL] {
			t.Fatalf("CrawlDay vantage for %s = %s, helper says %s", c.SeedURL, c.Vantage.Name, wantVantage[c.SeedURL])
		}
	}

	// StreamPlatform path.
	stream := capture.NewMemStore()
	p := crawler.NewStreamPlatform(fleetWorld(), crawler.StreamConfig{Seed: fleetSeed, Workers: 4, PerDomainDelay: time.Millisecond})
	done := make(chan struct{})
	go func() { defer close(done); p.Run(context.Background(), stream) }()
	for _, s := range shares {
		if err := p.Submit(context.Background(), 0, s); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	<-done
	for _, c := range stream.All() {
		if c.Vantage.Name != wantVantage[c.SeedURL] {
			t.Fatalf("StreamPlatform vantage for %s = %s, helper says %s", c.SeedURL, c.Vantage.Name, wantVantage[c.SeedURL])
		}
	}
}

// TestWorkerPatience: a worker facing a vanished coordinator must give
// up after its patience window instead of retrying forever — the
// coordinator exits right after draining, so a worker that was idle at
// that moment never receives a drained frame.
func TestWorkerPatience(t *testing.T) {
	srv := httptest.NewServer(nil)
	srv.Close() // nothing listens: every request is a transport error
	w, err := NewWorker(WorkerConfig{
		ID:          "impatient",
		Coordinator: NewClient(srv.URL),
		Push:        func(trace string, at, n int64, caps []*capture.Capture) error { return nil },
		World:       fleetWorld(),
		Patience:    200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = w.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("want unreachable error, got %v", err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("worker took %v to give up, want ~patience", d)
	}
}
