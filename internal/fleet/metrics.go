package fleet

import "repro/internal/obs"

// coordMetrics is the coordinator's counter set. All fields are nil-safe
// through the nil-receiver checks at the call sites (metrics == nil when
// no registry is attached).
type coordMetrics struct {
	granted        *obs.Counter
	reassigned     *obs.Counter
	completions    *obs.Counter
	dupCompletions *obs.Counter
	captured       *obs.Counter
	dead           *obs.Counter
	shed           *obs.Counter
}

// registerMetrics attaches the fleet metric families to the configured
// registry. Gauges are sampled from coordinator state at scrape time.
func (co *Coordinator) registerMetrics() {
	reg := co.cfg.Registry
	if reg == nil {
		return
	}
	co.metrics = &coordMetrics{
		granted: obs.NewCounter(reg, "fleet_leases_granted_total",
			"Leases handed to workers, including re-grants of reassigned chunks."),
		reassigned: obs.NewCounter(reg, "fleet_leases_reassigned_total",
			"Leases expired without completion and returned to the queue."),
		completions: obs.NewCounter(reg, "fleet_completions_total",
			"Chunk completions accepted and accounted."),
		dupCompletions: obs.NewCounter(reg, "fleet_duplicate_completions_total",
			"Completions for chunks already accounted (reassigned and finished elsewhere)."),
		captured: obs.NewCounter(reg, "fleet_shares_captured_total",
			"Work items whose capture record reached the store."),
		dead: obs.NewCounter(reg, "fleet_shares_dead_total",
			"Work items dead-lettered (worker budget exhaustion or lease expiry past the retry budget)."),
		shed: obs.NewCounter(reg, "fleet_grants_shed_total",
			"Lease requests refused at the max-active-leases bound."),
	}
	obs.NewGaugeFunc(reg, "fleet_leases_active",
		"Leases currently held by workers.", func() float64 {
			co.mu.Lock()
			defer co.mu.Unlock()
			return float64(len(co.byLease))
		})
	obs.NewGaugeFunc(reg, "fleet_chunks_pending",
		"Chunks waiting to be leased.", func() float64 {
			co.mu.Lock()
			defer co.mu.Unlock()
			n := 0
			for _, c := range co.chunks {
				if c.state == chunkPending {
					n++
				}
			}
			return float64(n)
		})
	obs.NewGaugeFunc(reg, "fleet_shares_remaining",
		"Work items not yet accounted (pending or leased).", func() float64 {
			co.mu.Lock()
			defer co.mu.Unlock()
			var n int64
			for _, c := range co.chunks {
				if c.state == chunkPending || c.state == chunkActive {
					n += int64(c.n())
				}
			}
			return float64(n)
		})
	obs.NewGaugeFunc(reg, "fleet_workers_live",
		"Workers heard from within two lease TTLs.", func() float64 {
			co.mu.Lock()
			defer co.mu.Unlock()
			return float64(co.liveWorkersLocked())
		})
}
