package fleet

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame pins the wire decoder against arbitrary bytes: it
// must never panic, every accepted frame must survive an
// encode→decode round trip byte-identically (the protocol has one
// canonical encoding), and re-validation of an accepted frame must
// pass (decode implies valid). Seeds cover every frame type the
// protocol speaks plus the malformed shapes a torn TCP stream or a
// version-skewed peer could deliver.
func FuzzDecodeFrame(f *testing.F) {
	seeds := []string{
		`{"k":"lease-request","w":"worker-1"}`,
		`{"k":"lease-request","w":"eu.4321","cap":64}`,
		`{"k":"lease-grant","l":7,"f":96,"n":2,"ttl":10000,"i":[` +
			`{"q":96,"u":"https://news3.com/a?utm=1","d":"news3.com","t":12},` +
			`{"q":97,"u":"https://shop9.de/b","d":"shop9.de","t":12}]}`,
		`{"k":"idle","rty":250}`,
		`{"k":"drained"}`,
		`{"k":"heartbeat","w":"worker-1","l":7}`,
		`{"k":"completion","w":"worker-1","l":7,"res":[` +
			`{"q":96,"c":true},` +
			`{"q":97,"a":3,"r":"budget-exhausted","e":"webworld: shop9.de: temporarily unavailable"}]}`,
		`{"k":"ack"}`,
		`{"k":"ack","dup":true}`,
		`{"k":"error","e":"unknown lease 7 for worker worker-1"}`,
		// Malformed: unknown type, unknown field, non-contiguous range,
		// item/N mismatch, results out of order, torn tails, garbage.
		`{"k":"gossip"}`,
		`{"k":"heartbeat","w":"w","l":7,"extra":1}`,
		`{"k":"lease-grant","l":1,"f":0,"n":2,"ttl":1,"i":[{"q":0,"u":"u","d":"d","t":0},{"q":5,"u":"u","d":"d","t":0}]}`,
		`{"k":"lease-grant","l":1,"f":0,"n":3,"ttl":1,"i":[]}`,
		`{"k":"completion","w":"w","l":1,"res":[{"q":9,"c":true},{"q":3,"c":true}]}`,
		`{"k":"completion","w":"w","l":1,"res":[{"q":0}]}`,
		`{"k":"lease-grant","l":7,"f":96,"n":2,"tt`,
		`{"k":"ack"}{"k":"ack"}`,
		``,
		`null`,
		`[1,2,3]`,
		"\x00\x01\xfe\xff",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			return // rejected input; only acceptance carries obligations
		}
		if verr := fr.Validate(); verr != nil {
			t.Fatalf("DecodeFrame accepted a frame its own Validate rejects: %v\ninput: %q", verr, data)
		}
		enc, err := EncodeFrame(fr)
		if err != nil {
			t.Fatalf("EncodeFrame failed on accepted frame: %v\ninput: %q", err, data)
		}
		fr2, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("re-decoding canonical encoding failed: %v\nencoded: %q", err, enc)
		}
		enc2, err := EncodeFrame(fr2)
		if err != nil {
			t.Fatalf("re-encoding failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding not canonical:\nfirst:  %q\nsecond: %q", enc, enc2)
		}
	})
}
