package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client speaks the wire protocol to a coordinator. It is a thin
// transport: retry policy lives in the worker loop, which knows which
// exchanges are idempotent (all of them — grants are leased, heartbeats
// are monotone, completions dedup server-side).
type Client struct {
	// BaseURL is the fleetd root, e.g. "http://127.0.0.1:8660".
	BaseURL string
	// HTTP defaults to http.DefaultClient.
	HTTP *http.Client
}

// NewClient returns a client for the coordinator at base.
func NewClient(base string) *Client {
	return &Client{BaseURL: strings.TrimRight(base, "/")}
}

func (cl *Client) httpClient() *http.Client {
	if cl.HTTP != nil {
		return cl.HTTP
	}
	return http.DefaultClient
}

// exchange POSTs a frame and decodes the response frame.
func (cl *Client) exchange(path string, f *Frame) (*Frame, error) {
	body, err := EncodeFrame(f)
	if err != nil {
		return nil, err
	}
	resp, err := cl.httpClient().Post(cl.BaseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, fmt.Errorf("fleet: %s: reading response: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: %s: %s: %s", path, resp.Status, strings.TrimSpace(string(data)))
	}
	return DecodeFrame(data)
}

// Lease asks for work. The response is a lease-grant, idle, or drained
// frame.
func (cl *Client) Lease(worker string, capacity int) (*Frame, error) {
	return cl.exchange("/lease", &Frame{Type: FrameLeaseRequest, Worker: worker, Capacity: capacity})
}

// Heartbeat extends a lease; an error frame means the lease is gone and
// the chunk should be abandoned. trace echoes the grant's trace context
// (empty for untraced runs) so the lease's frames share one trace.
func (cl *Client) Heartbeat(worker string, lease int64, trace string) (*Frame, error) {
	return cl.exchange("/heartbeat", &Frame{Type: FrameHeartbeat, Worker: worker, Lease: lease, Trace: trace})
}

// Complete reports a lease's outcomes; trace as on Heartbeat.
func (cl *Client) Complete(worker string, lease int64, results []Result, trace string) (*Frame, error) {
	return cl.exchange("/complete", &Frame{Type: FrameCompletion, Worker: worker, Lease: lease, Results: results, Trace: trace})
}

// Config fetches the coordinator's RunConfig.
func (cl *Client) Config() (RunConfig, error) {
	var rc RunConfig
	err := cl.getJSON("/config", &rc)
	return rc, err
}

// Status fetches the coordinator's Status.
func (cl *Client) Status() (Status, error) {
	var st Status
	err := cl.getJSON("/status", &st)
	return st, err
}

func (cl *Client) getJSON(path string, v any) error {
	resp, err := cl.httpClient().Get(cl.BaseURL + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("fleet: %s: %s: %s", path, resp.Status, strings.TrimSpace(string(msg)))
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("fleet: %s: %w", path, err)
	}
	return nil
}
