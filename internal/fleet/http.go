package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/resilience"
)

// RunConfig is everything a worker needs to participate in a fleet run
// beyond the coordinator's address, served on GET /config. Shipping the
// run parameters from the coordinator — instead of flag-matching across
// machines — is what makes "same run" a property the system enforces:
// vantage assignment, retry jitter, and the synthetic world all derive
// from these seeds, so a worker that fetched /config provably agrees
// with every other worker and with the single-process baseline.
type RunConfig struct {
	WorldSeed    uint64 `json:"world_seed"`
	WorldDomains int    `json:"world_domains"`
	CrawlSeed    uint64 `json:"crawl_seed"`
	// RetryAttempts and BreakerThreshold parameterize the worker-side
	// StreamPlatform; BreakerThreshold 0 disables breakers (their state
	// is order-dependent across shares, so determinism runs disable
	// them — see DESIGN.md §9).
	RetryAttempts    int   `json:"retry_attempts"`
	BreakerThreshold int   `json:"breaker_threshold"`
	PolitenessMS     int64 `json:"politeness_ms"`
	// IngestURL is the capd the workers push captures to.
	IngestURL string `json:"ingest_url"`
	// ObsURL, when set, is the obsd aggregator workers push their span
	// exports to (POST {ObsURL}/ingest/spans) after draining — workers
	// are ephemeral, so scrape-based collection would miss them.
	ObsURL string `json:"obs_url,omitempty"`
}

// ServerConfig parameterizes the coordinator's HTTP surface.
type ServerConfig struct {
	// MaxInFlight bounds concurrently served protocol requests; excess
	// is shed with 429 + Retry-After (default 128).
	MaxInFlight int
	// MaxBodyBytes caps one request body (default 1 MiB; completion
	// frames are small).
	MaxBodyBytes int64
}

// NewHandler mounts the fleet wire protocol over a coordinator:
//
//	POST /lease      lease-request frame → lease-grant | idle | drained
//	POST /heartbeat  heartbeat frame     → ack | error
//	POST /complete   completion frame    → ack (Dup marks stale) | error
//	GET  /status     coordinator Status as JSON
//	GET  /config     RunConfig as JSON
//	GET  /healthz    liveness (outside the limiter)
//
// Protocol responses are HTTP 200 with the semantics in the frame Type,
// so transport failures and protocol outcomes stay distinguishable.
func NewHandler(co *Coordinator, rc RunConfig, cfg ServerConfig) http.Handler {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 128
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/lease", func(w http.ResponseWriter, r *http.Request) {
		frameExchange(w, r, cfg.MaxBodyBytes, FrameLeaseRequest, func(f *Frame) *Frame {
			return co.Grant(f.Worker, f.Capacity)
		})
	})
	mux.HandleFunc("/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		frameExchange(w, r, cfg.MaxBodyBytes, FrameHeartbeat, func(f *Frame) *Frame {
			return co.Heartbeat(f.Worker, f.Lease)
		})
	})
	mux.HandleFunc("/complete", func(w http.ResponseWriter, r *http.Request) {
		frameExchange(w, r, cfg.MaxBodyBytes, FrameCompletion, func(f *Frame) *Frame {
			return co.Complete(f.Worker, f.Lease, f.Results)
		})
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(co.Status()) //nolint:errcheck
	})
	mux.HandleFunc("/config", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rc) //nolint:errcheck
	})

	limited := resilience.NewHTTPLimiter(resilience.HTTPLimiterConfig{
		MaxInFlight: cfg.MaxInFlight,
	}).Wrap(mux)
	outer := http.NewServeMux()
	// Liveness answers even while the protocol path sheds.
	outer.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		st := co.Status()
		json.NewEncoder(w).Encode(map[string]any{"ok": true, "drained": st.Drained}) //nolint:errcheck
	})
	outer.Handle("/", limited)
	return outer
}

// frameExchange decodes one frame of the expected type, applies fn, and
// writes the response frame.
func frameExchange(w http.ResponseWriter, r *http.Request, maxBody int64, want FrameType, fn func(*Frame) *Frame) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "fleet: frame endpoints are POST-only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		http.Error(w, fmt.Sprintf("fleet: reading frame: %v", err), http.StatusBadRequest)
		return
	}
	f, err := DecodeFrame(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if f.Type != want {
		http.Error(w, fmt.Sprintf("fleet: endpoint wants %s frame, got %s", want, f.Type), http.StatusBadRequest)
		return
	}
	writeFrame(w, fn(f))
}

func writeFrame(w http.ResponseWriter, f *Frame) {
	data, err := EncodeFrame(f)
	if err != nil {
		http.Error(w, fmt.Sprintf("fleet: encoding response: %v", err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data) //nolint:errcheck
}
