// Package fleet distributes a crawl window across worker nodes without
// giving up byte-reproducibility. The paper's platform was a fleet of
// Chrome crawlers in US and EU data centers feeding a central capture
// database (Section 3.4, Figure 3); this package reproduces that shape:
// a coordinator chunks the feed-ordered work list into contiguous
// leases, hands them to workers over HTTP, reassigns leases whose
// heartbeats stop, checkpoints progress so a restart never re-issues
// completed work, and accounts for every share exactly once. Workers
// crawl through the same StreamPlatform retry path as a single-process
// run and push results to capd's ordered ingest API, which commits
// batches at their canonical feed positions — so the fleet's capstore
// is byte-identical to a single-process run, for any worker count and
// through worker crashes. The determinism argument is spelled out in
// DESIGN.md §9.
package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/obs"
	"repro/internal/simtime"
)

// FrameType tags a wire frame. Every fleet HTTP exchange is one frame
// in the request body and one frame in the response.
type FrameType string

const (
	// FrameLeaseRequest asks the coordinator for work
	// (worker → POST /lease).
	FrameLeaseRequest FrameType = "lease-request"
	// FrameLeaseGrant carries a contiguous chunk of work items
	// (coordinator → worker).
	FrameLeaseGrant FrameType = "lease-grant"
	// FrameIdle tells the worker no chunk is currently eligible;
	// RetryMS hints when to ask again.
	FrameIdle FrameType = "idle"
	// FrameDrained tells the worker the window is fully accounted for
	// and it can exit.
	FrameDrained FrameType = "drained"
	// FrameHeartbeat extends a lease (worker → POST /heartbeat).
	FrameHeartbeat FrameType = "heartbeat"
	// FrameCompletion reports per-item outcomes for a lease
	// (worker → POST /complete).
	FrameCompletion FrameType = "completion"
	// FrameAck acknowledges a heartbeat or completion; Dup marks a
	// completion for a chunk that was already accounted for.
	FrameAck FrameType = "ack"
	// FrameError reports a protocol-level failure (unknown lease,
	// malformed frame); Err carries the reason.
	FrameError FrameType = "error"
)

// WorkItem is one share at its position in the fleet's total order.
// Seq is the item's index in the feed-ordered work list; the ordered
// ingest API commits captures by these positions, which is what pins
// the distributed store to the single-process byte layout.
type WorkItem struct {
	Seq    int64       `json:"q"`
	URL    string      `json:"u"`
	Domain string      `json:"d"`
	Day    simtime.Day `json:"t"`
}

// Result is one work item's outcome inside a completion frame.
type Result struct {
	Seq int64 `json:"q"`
	// Captured is set when the visit produced a capture record (pushed
	// to capd by the worker before the completion was sent).
	Captured bool `json:"c,omitempty"`
	// Attempts is how many visit attempts the item consumed.
	Attempts int `json:"a,omitempty"`
	// Reason classifies non-captured outcomes (dead-letter reason).
	Reason string `json:"r,omitempty"`
	// Err preserves the final error text for non-captured outcomes.
	Err string `json:"e,omitempty"`
}

// Frame is the single wire envelope; Type selects which fields are
// meaningful. Short tags keep heartbeat traffic small, mirroring the
// capturedb wire schema.
type Frame struct {
	Type   FrameType `json:"k"`
	Worker string    `json:"w,omitempty"`
	// Lease identifies a grant; echoed on heartbeats and completions.
	Lease int64 `json:"l,omitempty"`
	// Capacity is advisory on lease requests: how many items the
	// worker wants (0 means coordinator default).
	Capacity int `json:"cap,omitempty"`
	// First and N describe the granted range [First, First+N) of the
	// total order; Items lists the shares, in order.
	First int64      `json:"f,omitempty"`
	N     int        `json:"n,omitempty"`
	Items []WorkItem `json:"i,omitempty"`
	// TTLMS is the lease's time-to-live in milliseconds; a lease not
	// heartbeat within it is reassigned.
	TTLMS int64 `json:"ttl,omitempty"`
	// RetryMS hints how long an idle worker should wait before asking
	// again.
	RetryMS int64 `json:"rty,omitempty"`
	// Results carries per-item outcomes on completion frames.
	Results []Result `json:"res,omitempty"`
	// Dup marks an ack for a completion that was already accounted for
	// (the chunk was reassigned and finished elsewhere first).
	Dup bool `json:"dup,omitempty"`
	// Err carries the reason on error frames.
	Err string `json:"e,omitempty"`
	// Trace carries the lease span's context in traceparent form: set
	// by the coordinator on grants (when it runs a tracer), echoed by
	// workers on heartbeats and completions, and adopted as the remote
	// parent of every worker-side span. Optional — an empty string
	// means the exchange is untraced.
	Trace string `json:"tp,omitempty"`
}

// EncodeFrame renders a frame as one JSON line (with trailing newline).
func EncodeFrame(f *Frame) ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	data, err := json.Marshal(f)
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeFrame parses one frame and validates its per-type invariants.
// Unknown fields are rejected: a frame from a newer protocol revision
// must fail loudly rather than be half-understood.
func DecodeFrame(data []byte) (*Frame, error) {
	var f Frame
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("fleet: decoding frame: %w", err)
	}
	// Exactly one JSON value per frame: trailing non-space bytes mean a
	// framing error, not a second message.
	if dec.More() {
		return nil, fmt.Errorf("fleet: trailing data after frame")
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Validate checks the per-type structural invariants.
func (f *Frame) Validate() error {
	switch f.Type {
	case FrameLeaseRequest:
		if f.Worker == "" {
			return fmt.Errorf("fleet: %s frame without worker id", f.Type)
		}
		if f.Capacity < 0 {
			return fmt.Errorf("fleet: %s frame with negative capacity %d", f.Type, f.Capacity)
		}
	case FrameLeaseGrant:
		if f.Lease <= 0 {
			return fmt.Errorf("fleet: %s frame with lease id %d", f.Type, f.Lease)
		}
		if f.First < 0 || f.N < 1 {
			return fmt.Errorf("fleet: %s frame with range first=%d n=%d", f.Type, f.First, f.N)
		}
		if len(f.Items) != f.N {
			return fmt.Errorf("fleet: %s frame with %d items for n=%d", f.Type, len(f.Items), f.N)
		}
		if f.TTLMS <= 0 {
			return fmt.Errorf("fleet: %s frame with ttl %dms", f.Type, f.TTLMS)
		}
		for i, it := range f.Items {
			if it.Seq != f.First+int64(i) {
				return fmt.Errorf("fleet: %s frame item %d has seq %d, want %d (ranges are contiguous)",
					f.Type, i, it.Seq, f.First+int64(i))
			}
			if it.URL == "" || it.Domain == "" {
				return fmt.Errorf("fleet: %s frame item %d missing url or domain", f.Type, i)
			}
			if !it.Day.Valid() {
				return fmt.Errorf("fleet: %s frame item %d has invalid day %d", f.Type, i, it.Day)
			}
		}
	case FrameIdle:
		if f.RetryMS < 0 {
			return fmt.Errorf("fleet: %s frame with retry %dms", f.Type, f.RetryMS)
		}
	case FrameDrained, FrameAck:
		// No required fields; Dup is meaningful on acks.
	case FrameHeartbeat:
		if f.Worker == "" || f.Lease <= 0 {
			return fmt.Errorf("fleet: %s frame needs worker and lease (worker=%q lease=%d)", f.Type, f.Worker, f.Lease)
		}
	case FrameCompletion:
		if f.Worker == "" || f.Lease <= 0 {
			return fmt.Errorf("fleet: %s frame needs worker and lease (worker=%q lease=%d)", f.Type, f.Worker, f.Lease)
		}
		for i, r := range f.Results {
			if r.Seq < 0 {
				return fmt.Errorf("fleet: %s frame result %d has seq %d", f.Type, i, r.Seq)
			}
			if i > 0 && r.Seq <= f.Results[i-1].Seq {
				return fmt.Errorf("fleet: %s frame results out of order at %d (%d after %d)",
					f.Type, i, r.Seq, f.Results[i-1].Seq)
			}
			if !r.Captured && r.Reason == "" {
				return fmt.Errorf("fleet: %s frame result %d neither captured nor classified", f.Type, i)
			}
		}
	case FrameError:
		if f.Err == "" {
			return fmt.Errorf("fleet: %s frame without error text", f.Type)
		}
	default:
		return fmt.Errorf("fleet: unknown frame type %q", f.Type)
	}
	if f.Trace != "" {
		if _, err := obs.ParseTraceparent(f.Trace); err != nil {
			return fmt.Errorf("fleet: %s frame trace context: %w", f.Type, err)
		}
	}
	return nil
}
