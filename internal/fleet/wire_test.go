package fleet

import (
	"strings"
	"testing"

	"repro/internal/simtime"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []*Frame{
		{Type: FrameLeaseRequest, Worker: "w1", Capacity: 8},
		{Type: FrameLeaseGrant, Lease: 3, First: 64, N: 2, TTLMS: 5000, Items: []WorkItem{
			{Seq: 64, URL: "https://a.com/x", Domain: "a.com", Day: simtime.Day(1)},
			{Seq: 65, URL: "https://b.com/y", Domain: "b.com", Day: simtime.Day(1)},
		}},
		{Type: FrameIdle, RetryMS: 250},
		{Type: FrameDrained},
		{Type: FrameHeartbeat, Worker: "w1", Lease: 3},
		{Type: FrameCompletion, Worker: "w1", Lease: 3, Results: []Result{
			{Seq: 64, Captured: true},
			{Seq: 65, Attempts: 3, Reason: "budget-exhausted", Err: "boom"},
		}},
		{Type: FrameAck},
		{Type: FrameAck, Dup: true},
		{Type: FrameError, Err: "unknown lease"},
	}
	for _, f := range frames {
		data, err := EncodeFrame(f)
		if err != nil {
			t.Fatalf("%s: encode: %v", f.Type, err)
		}
		got, err := DecodeFrame(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", f.Type, err)
		}
		data2, err := EncodeFrame(got)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", f.Type, err)
		}
		if string(data) != string(data2) {
			t.Errorf("%s: round trip not identical:\n%q\n%q", f.Type, data, data2)
		}
	}
}

func TestDecodeFrameRejects(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"unknown type", `{"k":"gossip"}`, "unknown frame type"},
		{"unknown field", `{"k":"ack","zzz":1}`, "unknown field"},
		{"trailing garbage", `{"k":"ack"} {"k":"ack"}`, "trailing data"},
		{"request without worker", `{"k":"lease-request"}`, "without worker"},
		{"grant gap", `{"k":"lease-grant","l":1,"f":0,"n":2,"ttl":1,"i":[{"q":0,"u":"u","d":"d","t":0},{"q":7,"u":"u","d":"d","t":0}]}`, "contiguous"},
		{"grant count mismatch", `{"k":"lease-grant","l":1,"f":0,"n":3,"ttl":1,"i":[{"q":0,"u":"u","d":"d","t":0}]}`, "items for n=3"},
		{"grant bad day", `{"k":"lease-grant","l":1,"f":0,"n":1,"ttl":1,"i":[{"q":0,"u":"u","d":"d","t":-4}]}`, "invalid day"},
		{"completion disorder", `{"k":"completion","w":"w","l":1,"res":[{"q":5,"c":true},{"q":2,"c":true}]}`, "out of order"},
		{"completion unclassified", `{"k":"completion","w":"w","l":1,"res":[{"q":0}]}`, "neither captured nor classified"},
		{"error without text", `{"k":"error"}`, "without error text"},
	}
	for _, tc := range cases {
		if _, err := DecodeFrame([]byte(tc.in)); err == nil {
			t.Errorf("%s: accepted %q", tc.name, tc.in)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}
