package fleet

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/simtime"
)

// fakeClock is an injectable, manually-advanced clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// testItems fabricates n work items; domain repeats every `domains`
// items so politeness conflicts are constructible.
func testItems(n, domains int) []WorkItem {
	items := make([]WorkItem, n)
	for i := range items {
		d := fmt.Sprintf("d%d.com", i%domains)
		items[i] = WorkItem{
			Seq:    int64(i),
			URL:    fmt.Sprintf("https://%s/p/%d", d, i),
			Domain: d,
			Day:    simtime.Day(0),
		}
	}
	return items
}

// allCaptured fabricates a completion claiming every item captured.
func allCaptured(g *Frame) []Result {
	rs := make([]Result, g.N)
	for i := range rs {
		rs[i] = Result{Seq: g.First + int64(i), Captured: true}
	}
	return rs
}

func TestCoordinatorLeaseLifecycle(t *testing.T) {
	clock := newFakeClock()
	co, err := NewCoordinator(testItems(20, 20), CoordinatorConfig{
		LeaseSize: 8,
		LeaseTTL:  10 * time.Second,
		Now:       clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	g1 := co.Grant("w1", 0)
	if g1.Type != FrameLeaseGrant || g1.First != 0 || g1.N != 8 {
		t.Fatalf("first grant = %+v", g1)
	}
	if f := co.Heartbeat("w1", g1.Lease); f.Type != FrameAck {
		t.Fatalf("heartbeat = %+v", f)
	}
	if f := co.Heartbeat("w2", g1.Lease); f.Type != FrameError {
		t.Fatalf("foreign heartbeat accepted: %+v", f)
	}
	if f := co.Complete("w1", g1.Lease, allCaptured(g1)); f.Type != FrameAck || f.Dup {
		t.Fatalf("completion = %+v", f)
	}
	// A second completion for the same lease is a duplicate, not an error.
	if f := co.Complete("w1", g1.Lease, allCaptured(g1)); f.Type != FrameAck || !f.Dup {
		t.Fatalf("re-completion = %+v", f)
	}

	g2 := co.Grant("w1", 0)
	g3 := co.Grant("w2", 0)
	if g2.First != 8 || g3.First != 16 {
		t.Fatalf("grants out of order: %d, %d", g2.First, g3.First)
	}
	co.Complete("w1", g2.Lease, allCaptured(g2))
	co.Complete("w2", g3.Lease, allCaptured(g3))

	select {
	case <-co.Done():
	default:
		t.Fatal("coordinator not drained after all completions")
	}
	if f := co.Grant("w1", 0); f.Type != FrameDrained {
		t.Fatalf("post-drain grant = %+v", f)
	}
	l := co.Ledger()
	if l.Captures != 20 || l.Captures+l.DeadLettered+l.Dropped != l.Submitted {
		t.Fatalf("ledger = %+v", l)
	}
	if l.DuplicateCompletions != 1 {
		t.Fatalf("duplicate completions = %d", l.DuplicateCompletions)
	}
}

func TestCoordinatorPolitenessGuard(t *testing.T) {
	// Two one-item chunks over the SAME domain: the second must not be
	// granted while the first is leased.
	items := testItems(2, 1)
	co, err := NewCoordinator(items, CoordinatorConfig{LeaseSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	g1 := co.Grant("w1", 0)
	if g1.Type != FrameLeaseGrant {
		t.Fatalf("grant = %+v", g1)
	}
	if f := co.Grant("w2", 0); f.Type != FrameIdle {
		t.Fatalf("conflicting grant = %+v, want idle (domain held by w1)", f)
	}
	co.Complete("w1", g1.Lease, allCaptured(g1))
	if f := co.Grant("w2", 0); f.Type != FrameLeaseGrant || f.First != 1 {
		t.Fatalf("post-release grant = %+v", f)
	}
}

func TestCoordinatorExpiryReassignsThenDeadLetters(t *testing.T) {
	clock := newFakeClock()
	dead := resilience.NewMemDeadLetter()
	var skips []skipRange
	var skipMu sync.Mutex
	co, err := NewCoordinator(testItems(4, 4), CoordinatorConfig{
		LeaseSize:        4,
		LeaseTTL:         time.Second,
		LeaseRetryBudget: 2,
		Now:              clock.Now,
		DeadLetter:       dead,
		Skip: func(at, n int64) error {
			skipMu.Lock()
			skips = append(skips, skipRange{at, n})
			skipMu.Unlock()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Attempt 1 and 2: granted, never heartbeat, expired.
	for attempt := 1; attempt <= 2; attempt++ {
		g := co.Grant("w1", 0)
		if g.Type != FrameLeaseGrant {
			t.Fatalf("attempt %d: grant = %+v", attempt, g)
		}
		clock.Advance(2 * time.Second)
		co.Sweep()
		if l := co.Ledger(); l.Reassigned != int64(attempt) {
			t.Fatalf("attempt %d: reassigned = %d", attempt, l.Reassigned)
		}
		// The worker's late completion is a duplicate, not a crash.
		if f := co.Complete("w1", g.Lease, allCaptured(g)); !f.Dup {
			t.Fatalf("late completion = %+v", f)
		}
	}
	// Attempt 3 exceeds the budget on expiry: chunk dies.
	g := co.Grant("w1", 0)
	clock.Advance(2 * time.Second)
	co.Sweep()
	_ = g
	l := co.Ledger()
	if l.DeadLettered != 4 || l.Captures != 0 {
		t.Fatalf("ledger after death = %+v", l)
	}
	if l.Captures+l.DeadLettered+l.Dropped != l.Submitted {
		t.Fatalf("ledger does not balance: %+v", l)
	}
	by := dead.ByReason()
	if by[ReasonLeaseExpired] != 4 {
		t.Fatalf("dead letters by reason = %v", by)
	}
	skipMu.Lock()
	defer skipMu.Unlock()
	if len(skips) != 1 || skips[0] != (skipRange{0, 4}) {
		t.Fatalf("cursor skips = %v, want [{0 4}]", skips)
	}
	select {
	case <-co.Done():
	default:
		t.Fatal("coordinator not drained after chunk death")
	}
}

func TestCoordinatorShedsAtMaxLeases(t *testing.T) {
	co, err := NewCoordinator(testItems(30, 30), CoordinatorConfig{
		LeaseSize:       1,
		MaxActiveLeases: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	co.Grant("w1", 0)
	co.Grant("w2", 0)
	if f := co.Grant("w3", 0); f.Type != FrameIdle {
		t.Fatalf("grant past ceiling = %+v, want idle", f)
	}
	if l := co.Ledger(); l.Shed != 1 {
		t.Fatalf("shed = %d", l.Shed)
	}
}

func TestCoordinatorAbortBalancesLedger(t *testing.T) {
	dead := resilience.NewMemDeadLetter()
	co, err := NewCoordinator(testItems(10, 10), CoordinatorConfig{
		LeaseSize:  3,
		DeadLetter: dead,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := co.Grant("w1", 0)
	co.Complete("w1", g.Lease, allCaptured(g))
	co.Grant("w1", 0) // leased but never completed
	co.Abort()
	l := co.Ledger()
	if l.Captures != 3 || l.Dropped != 7 {
		t.Fatalf("ledger after abort = %+v", l)
	}
	if l.Captures+l.DeadLettered+l.Dropped != l.Submitted {
		t.Fatalf("ledger does not balance: %+v", l)
	}
	if dead.ByReason()[resilience.ReasonShutdownDrop] != 7 {
		t.Fatalf("dead letters = %v", dead.ByReason())
	}
	select {
	case <-co.Done():
	default:
		t.Fatal("not drained after abort")
	}
}

// TestCoordinatorRestartResume is the checkpoint half of the headline
// invariant: a restarted coordinator accounts for completed chunks
// without re-issuing them, and the ledger balances across the restart.
func TestCoordinatorRestartResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "fleet.ckpt")
	items := testItems(20, 20)
	cfg := CoordinatorConfig{LeaseSize: 4, CheckpointPath: ckpt}

	co1, err := NewCoordinator(items, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g1 := co1.Grant("w1", 0) // [0,4): completed
	co1.Complete("w1", g1.Lease, allCaptured(g1))
	g2 := co1.Grant("w1", 0) // [4,8): one dead-letter result
	rs := allCaptured(g2)
	rs[1] = Result{Seq: g2.First + 1, Attempts: 3, Reason: resilience.ReasonBudgetExhausted, Err: "x"}
	co1.Complete("w1", g2.Lease, rs)
	co1.Grant("w1", 0) // [8,12): leased, never completed — lost with the crash
	if err := co1.Close(); err != nil {
		t.Fatal(err)
	}

	co2, err := NewCoordinator(items, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer co2.Close()
	l := co2.Ledger()
	if l.Captures != 7 || l.DeadLettered != 1 {
		t.Fatalf("restored ledger = %+v, want 7 captures / 1 dead", l)
	}
	st := co2.Status()
	if st.DoneN != 2 || st.Pending != 3 {
		t.Fatalf("restored status = %+v, want 2 done / 3 pending", st)
	}
	// The resumed coordinator must grant only unfinished ranges.
	seen := map[int64]bool{}
	for {
		g := co2.Grant("w", 0)
		if g.Type == FrameDrained {
			break
		}
		if g.Type != FrameLeaseGrant {
			t.Fatalf("grant = %+v", g)
		}
		if g.First < 8 {
			t.Fatalf("re-issued completed range [%d,%d)", g.First, g.First+int64(g.N))
		}
		if seen[g.First] {
			t.Fatalf("range %d granted twice", g.First)
		}
		seen[g.First] = true
		co2.Complete("w", g.Lease, allCaptured(g))
	}
	l = co2.Ledger()
	if l.Captures != 19 || l.DeadLettered != 1 || l.Dropped != 0 {
		t.Fatalf("final ledger = %+v", l)
	}
	if l.Captures+l.DeadLettered+l.Dropped != l.Submitted {
		t.Fatalf("ledger does not balance across restart: %+v", l)
	}
}

// TestCheckpointRejectsMismatchedWorkList: a log replayed against a
// different window fails loudly.
func TestCheckpointRejectsMismatchedWorkList(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "fleet.ckpt")
	cfg := CoordinatorConfig{LeaseSize: 4, CheckpointPath: ckpt}
	co1, err := NewCoordinator(testItems(20, 20), cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := co1.Grant("w", 0)
	co1.Complete("w", g.Lease, allCaptured(g))
	co1.Close()

	if _, err := NewCoordinator(testItems(10, 10), CoordinatorConfig{LeaseSize: 2, CheckpointPath: ckpt}); err == nil {
		t.Fatal("mismatched work list accepted")
	}
}
