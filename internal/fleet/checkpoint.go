package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// The checkpoint log is the coordinator's crash-safe progress record:
// one JSON line per finally-accounted chunk (done or dead), appended
// and fsynced before the outcome is acknowledged. A restarted
// coordinator replays the log against the deterministically
// reconstructed work list — the (chunk index, first, n) triple is
// validated on replay, so a log from a different seed or window fails
// loudly instead of silently mis-attributing progress. A torn final
// line (crash mid-append) is truncated away on open, mirroring
// capstore's segment-tail repair.

const (
	ckptDone = "done"
	ckptDead = "dead"
)

// ckptRecord is one finally-accounted chunk.
type ckptRecord struct {
	Kind     string `json:"k"`
	Chunk    int    `json:"c"`
	First    int64  `json:"f"`
	N        int    `json:"n"`
	Captures int64  `json:"cap,omitempty"`
	Dead     int64  `json:"dead,omitempty"`
}

type checkpointLog struct {
	f *os.File
}

// openCheckpoint opens (or creates) the log at path and repairs a torn
// tail so the append position starts at the last complete record.
func openCheckpoint(path string) (*checkpointLog, error) {
	_, statErr := os.Stat(path)
	created := os.IsNotExist(statErr)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: opening checkpoint: %w", err)
	}
	if created {
		// Appends fsync the file, but the name→inode link lives in the
		// parent directory's own page: without syncing it, a crash right
		// after creation can lose the whole file, and a restarted
		// coordinator would silently start from zero.
		if err := syncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: syncing checkpoint dir: %w", err)
		}
	}
	valid, err := validPrefix(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("fleet: repairing checkpoint tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &checkpointLog{f: f}, nil
}

// validPrefix scans for the byte length of the intact record prefix.
// A complete-but-malformed line is an error (the log is corrupt, not
// merely torn); only an unterminated, unparseable tail is repairable.
func validPrefix(f *os.File) (int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	br := bufio.NewReader(f)
	var valid int64
	line := 0
	for {
		data, err := br.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return 0, err
		}
		if len(data) == 0 {
			return valid, nil
		}
		line++
		if data[len(data)-1] != '\n' {
			// Append writes record+newline in one call, so any
			// unterminated tail is a torn write: truncate it.
			return valid, nil
		}
		var r ckptRecord
		if jerr := json.Unmarshal(data, &r); jerr != nil {
			return 0, fmt.Errorf("fleet: checkpoint line %d corrupt: %v", line, jerr)
		}
		valid += int64(len(data))
	}
}

// Replay streams the log's records to fn in append order.
func (l *checkpointLog) Replay(fn func(ckptRecord) error) error {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	br := bufio.NewReader(l.f)
	for {
		data, err := br.ReadBytes('\n')
		if len(data) > 0 && data[len(data)-1] == '\n' {
			var r ckptRecord
			if jerr := json.Unmarshal(data, &r); jerr != nil {
				return fmt.Errorf("fleet: checkpoint replay: %v", jerr)
			}
			if ferr := fn(r); ferr != nil {
				return ferr
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
	}
	_, err := l.f.Seek(0, io.SeekEnd)
	return err
}

// Append durably records one chunk outcome: written, then fsynced,
// before the coordinator acknowledges the completion.
func (l *checkpointLog) Append(r ckptRecord) error {
	data, err := json.Marshal(r)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := l.f.Write(data); err != nil {
		return fmt.Errorf("fleet: checkpoint append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("fleet: checkpoint sync: %w", err)
	}
	return nil
}

func (l *checkpointLog) Close() error { return l.f.Close() }

// syncDir fsyncs a directory. A newly created file is only durable
// once both its data pages and its directory entry are on stable
// storage; file.Sync covers the former, this covers the latter.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
