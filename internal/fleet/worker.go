package fleet

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/browser"
	"repro/internal/capstore"
	"repro/internal/capture"
	"repro/internal/crawler"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/socialfeed"
	"repro/internal/webworld"
)

// PushFunc delivers a completed chunk's captures to the store at its
// canonical range [at, at+n). trace is the worker's push-span context
// in traceparent form (empty for untraced runs); HTTP pushers forward
// it as the Traceparent header so the store's ingest span joins the
// lease's trace. capstore.Client.RecordBatchAtTrace satisfies it over
// HTTP; tests push straight into an in-process Ingester.
type PushFunc func(trace string, at, n int64, caps []*capture.Capture) error

// IngestPush adapts a capstore client to PushFunc.
func IngestPush(cl *capstore.Client) PushFunc {
	return func(trace string, at, n int64, caps []*capture.Capture) error {
		_, err := cl.RecordBatchAtTrace(trace, at, n, caps)
		return err
	}
}

// WorkerConfig parameterizes one fleet worker.
type WorkerConfig struct {
	// ID names the worker in the protocol (required).
	ID string
	// Coordinator speaks the wire protocol (required).
	Coordinator *Client
	// Push delivers captures (required).
	Push PushFunc
	// World is the synthetic substrate the worker crawls. cmd/crawl
	// rebuilds it from the coordinator's RunConfig seeds.
	World *webworld.World
	// Run carries the fleet-wide crawl parameters (normally fetched
	// from the coordinator's /config).
	Run RunConfig
	// Visitor overrides the load substrate (chaos fault injection);
	// nil means World.
	Visitor browser.Visitor
	// Patience bounds how long the worker tolerates consecutive
	// transport failures against the coordinator or the store before
	// giving up (0 means a minute). It must cover a coordinator
	// crash+restart; without a bound, a worker that misses the drained
	// frame because the coordinator exited would retry forever.
	Patience time.Duration
	// Tracer records the worker's spans (the per-lease work span, its
	// visit children, and the push span), adopted into the grant's
	// trace context; nil disables tracing. Configure it with a role
	// Service ("worker"), never a per-worker name — exports must stay
	// byte-identical across worker counts.
	Tracer *obs.Tracer
}

// ErrWorkerCrashed is returned by Worker.Run when the test crash hook
// fires — the in-process stand-in for a SIGKILLed worker node.
var ErrWorkerCrashed = errors.New("fleet: worker crashed (injected)")

// Worker pulls leases from a coordinator, crawls them through the same
// StreamPlatform path as a single-process run, pushes the captures to
// the store at their canonical positions, and reports completions.
type Worker struct {
	id       string
	coord    *Client
	push     PushFunc
	world    *webworld.World
	run      RunConfig
	visitor  browser.Visitor
	patience time.Duration
	tracer   *obs.Tracer

	// crash, when set by in-package tests, is consulted at named stages
	// ("granted" before processing, "processed" before the push,
	// "pushed" before the completion); returning true abandons the
	// worker abruptly, mid-lease, like a killed process.
	crash func(stage string, first int64) bool
}

// NewWorker wires a worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.ID == "" || cfg.Coordinator == nil || cfg.Push == nil || cfg.World == nil {
		return nil, errors.New("fleet: worker needs ID, Coordinator, Push, and World")
	}
	patience := cfg.Patience
	if patience <= 0 {
		patience = time.Minute
	}
	return &Worker{
		id:       cfg.ID,
		coord:    cfg.Coordinator,
		push:     cfg.Push,
		world:    cfg.World,
		run:      cfg.Run,
		visitor:  cfg.Visitor,
		patience: patience,
		tracer:   cfg.Tracer,
	}, nil
}

// Run pulls and executes leases until the coordinator reports the
// window drained, ctx is cancelled, or the crash hook fires.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		f, err := w.leaseWithRetry(ctx)
		if err != nil {
			return err
		}
		switch f.Type {
		case FrameDrained:
			return nil
		case FrameIdle:
			if err := sleepCtx(ctx, time.Duration(f.RetryMS)*time.Millisecond); err != nil {
				return err
			}
		case FrameLeaseGrant:
			if err := w.runLease(ctx, f); err != nil {
				return err
			}
		default:
			return fmt.Errorf("fleet: unexpected %s frame from /lease", f.Type)
		}
	}
}

// outage tracks a run of consecutive transport failures against one
// peer and reports when it has outlasted the worker's patience. A
// success (or a live-server response such as 429 shedding) resets it.
type outage struct {
	limit time.Duration
	since time.Time
}

func (o *outage) fail() bool {
	if o.since.IsZero() {
		o.since = time.Now()
	}
	return time.Since(o.since) > o.limit
}

func (o *outage) reset() { o.since = time.Time{} }

// leaseWithRetry asks for work, retrying transport failures and 429
// shedding with a flat delay — the coordinator may simply be saturated
// or restarting. An outage longer than the worker's patience gives up:
// a drained coordinator exits without telling idle-retrying workers.
func (w *Worker) leaseWithRetry(ctx context.Context) (*Frame, error) {
	down := outage{limit: w.patience}
	for {
		f, err := w.coord.Lease(w.id, 0)
		if err == nil {
			return f, nil
		}
		if down.fail() {
			return nil, fmt.Errorf("fleet: coordinator unreachable for %v: %w", w.patience, err)
		}
		if serr := sleepCtx(ctx, 100*time.Millisecond); serr != nil {
			return nil, serr
		}
	}
}

// runLease executes one granted chunk end to end: heartbeats keep the
// lease alive while the chunk crawls; the captures are pushed at the
// chunk's canonical range; the completion closes the loop. Losing the
// lease (heartbeat rejected) abandons the chunk without pushing — the
// coordinator has already re-granted it, and the replacement worker's
// push is byte-identical anyway.
func (w *Worker) runLease(ctx context.Context, grant *Frame) error {
	if w.crashed("granted", grant.First) {
		return ErrWorkerCrashed
	}
	// Adopt the grant's trace context: the work span (and through it
	// every visit and the push) becomes a child of fleetd's lease span.
	// A malformed context is treated as absent — tracing must never
	// fail a lease.
	pctx, _ := obs.ParseTraceparent(grant.Trace)
	var work *obs.Span
	if w.tracer != nil {
		work = w.tracer.StartRemote("work", pctx,
			obs.A("first", fmt.Sprintf("%d", grant.First)))
		defer work.End()
	}
	leaseCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeat(leaseCtx, grant, cancel)
	}()
	defer func() { cancel(); <-hbDone }()

	results, caps := w.processChunk(leaseCtx, grant, work.Context())
	if leaseCtx.Err() != nil && ctx.Err() == nil {
		// Lease lost mid-crawl: abandon silently.
		work.Attr("outcome", "lease-lost")
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if w.crashed("processed", grant.First) {
		return ErrWorkerCrashed
	}
	if err := w.pushWithRetry(ctx, grant, caps, work); err != nil {
		return err
	}
	if w.crashed("pushed", grant.First) {
		return ErrWorkerCrashed
	}
	work.Attr("outcome", "completed")
	down := outage{limit: w.patience}
	for {
		f, err := w.coord.Complete(w.id, grant.Lease, results, grant.Trace)
		if err == nil {
			if f.Type == FrameError {
				return fmt.Errorf("fleet: completion rejected: %s", f.Err)
			}
			return nil // ack — Dup is fine, the chunk is accounted
		}
		// Giving up on a completion is safe: the lease expires, the
		// chunk is reassigned, and the replacement delivery dedups.
		if down.fail() {
			return fmt.Errorf("fleet: coordinator unreachable for %v: %w", w.patience, err)
		}
		if serr := sleepCtx(ctx, 100*time.Millisecond); serr != nil {
			return serr
		}
	}
}

func (w *Worker) crashed(stage string, first int64) bool {
	return w.crash != nil && w.crash(stage, first)
}

// heartbeat extends the lease at TTL/3 until the lease context ends; a
// rejected heartbeat (unknown lease — it expired and was reassigned)
// cancels the lease context so the crawl is abandoned.
func (w *Worker) heartbeat(ctx context.Context, grant *Frame, cancel context.CancelFunc) {
	interval := time.Duration(grant.TTLMS) * time.Millisecond / 3
	if interval <= 0 {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			f, err := w.coord.Heartbeat(w.id, grant.Lease, grant.Trace)
			if err != nil {
				continue // transient transport failure; the TTL absorbs a few
			}
			if f.Type == FrameError {
				cancel()
				return
			}
		}
	}
}

// processChunk crawls the chunk through a fresh single-worker
// StreamPlatform — the exact retry/politeness/vantage path of the
// single-process pipeline. Workers=1 makes the sink receive captures in
// share order, so the captures slice is already in canonical order for
// the ordered push. Breakers follow RunConfig.BreakerThreshold
// (0 disables; their state is cross-share order-dependent, so
// determinism runs keep them off).
func (w *Worker) processChunk(ctx context.Context, grant *Frame, tctx obs.SpanContext) ([]Result, []*capture.Capture) {
	sink := capture.NewMemStore()
	dead := resilience.NewMemDeadLetter()
	p := crawler.NewStreamPlatform(w.world, crawler.StreamConfig{
		Seed:           w.run.CrawlSeed,
		Workers:        1,
		QueueDepth:     grant.N,
		Tracer:         w.tracer,
		TraceContext:   tctx,
		PerDomainDelay: time.Duration(w.run.PolitenessMS) * time.Millisecond,
		Retry: resilience.RetryPolicy{
			MaxAttempts: w.run.RetryAttempts,
			BaseDelay:   time.Millisecond,
			MaxDelay:    10 * time.Millisecond,
			Multiplier:  2,
			Jitter:      0.5,
		},
		Breaker:    resilience.BreakerConfig{Threshold: w.run.BreakerThreshold},
		Visitor:    w.visitor,
		DeadLetter: dead,
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Run(context.Background(), sink)
	}()
	for _, it := range grant.Items {
		if err := p.Submit(ctx, it.Day, crawlShare(it)); err != nil {
			break // cancelled: the lease is lost, outcomes are moot
		}
	}
	p.Close()
	<-done

	// Map outcomes back to sequence numbers. Every submitted item
	// reached exactly one terminal: a recorded capture or a dead-letter
	// entry; items never submitted (cancellation) stay unaccounted,
	// which is fine — a lost lease's results are discarded.
	seqOf := make(map[string]int64, grant.N)
	for _, it := range grant.Items {
		seqOf[it.URL+"\x1f"+it.Day.String()] = it.Seq
	}
	caps := sink.All()
	results := make([]Result, 0, grant.N)
	for _, c := range caps {
		results = append(results, Result{
			Seq:      seqOf[c.SeedURL+"\x1f"+c.Day.String()],
			Captured: true,
		})
	}
	for _, e := range dead.Entries() {
		results = append(results, Result{
			Seq:      seqOf[e.URL+"\x1f"+e.Day.String()],
			Attempts: e.Attempts,
			Reason:   e.Reason,
			Err:      e.LastErr,
		})
	}
	sortResults(results)
	return results, caps
}

// crawlShare rebuilds the socialfeed.Share a work item was cut from.
// Platform and Hour do not influence the crawl, so the wire protocol
// does not carry them.
func crawlShare(it WorkItem) socialfeed.Share {
	return socialfeed.Share{URL: it.URL, Domain: it.Domain}
}

func sortResults(rs []Result) {
	// Insertion sort: chunks are small and nearly ordered (captures are
	// in share order; dead letters interleave).
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Seq < rs[j-1].Seq; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// pushWithRetry delivers the chunk's captures, absorbing reorder-buffer
// shedding (the store is waiting for an earlier range) with retries.
// Shedding is a live server asking for backoff and never counts toward
// the patience budget; transport failures do.
func (w *Worker) pushWithRetry(ctx context.Context, grant *Frame, caps []*capture.Capture, work *obs.Span) error {
	var push *obs.Span
	if work != nil {
		push = work.Start("push", obs.A("first", fmt.Sprintf("%d", grant.First)))
		defer push.End()
	}
	down := outage{limit: w.patience}
	for {
		// No per-retry attrs: shed/retry counts vary across worker
		// counts and would break byte-identical trace exports.
		err := w.push(push.Context().Traceparent(), grant.First, int64(grant.N), caps)
		if err == nil {
			return nil
		}
		delay := 100 * time.Millisecond
		if errors.Is(err, capstore.ErrIngestShed) {
			delay = 250 * time.Millisecond
			down.reset()
		} else if down.fail() {
			return fmt.Errorf("fleet: store unreachable for %v: %w", w.patience, err)
		}
		if serr := sleepCtx(ctx, delay); serr != nil {
			return serr
		}
	}
}

// sleepCtx waits d, cut short by cancellation.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
