package fleet

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/simtime"
	"repro/internal/socialfeed"
)

// ReasonLeaseExpired marks shares dead-lettered by the coordinator
// because every lease over their chunk expired past the retry budget —
// the fleet-level analogue of resilience.ReasonBudgetExhausted.
const ReasonLeaseExpired = "lease-expired"

// chunk states. A chunk is the lease unit: a contiguous run of the
// feed-ordered work list. Contiguity is what lets a completed chunk be
// committed to the store as one ordered batch at its canonical
// position.
type chunkState int

const (
	chunkPending chunkState = iota
	chunkActive
	chunkDone
	chunkDead
)

type chunk struct {
	idx      int
	first    int64
	items    []WorkItem
	state    chunkState
	attempts int // leases granted over this chunk so far
	lease    int64
	worker   string
	deadline time.Time
	// domains is the chunk's registrable-domain set, reserved while
	// the chunk is leased so no two workers hit one domain at once.
	domains map[string]struct{}
}

func (c *chunk) n() int { return len(c.items) }

// Ledger is the coordinator's exactly-once account of the window.
// Captures + DeadLettered + Dropped == Submitted holds at drain and
// across coordinator restarts.
type Ledger struct {
	// Submitted is the window's total work items.
	Submitted int64 `json:"submitted"`
	// Captures counts items whose record reached the store (successful
	// and failed-but-recorded visits alike, matching StreamPlatform's
	// Succeeded+FailedRecorded).
	Captures int64 `json:"captures"`
	// DeadLettered counts items that left the pipeline without a
	// record: worker-side budget exhaustion and coordinator-side lease
	// expiry past the retry budget.
	DeadLettered int64 `json:"dead_lettered"`
	// Dropped counts items abandoned by Abort.
	Dropped int64 `json:"dropped"`
	// Leases, Reassigned, Completions, DuplicateCompletions count the
	// protocol's control plane.
	Leases               int64 `json:"leases"`
	Reassigned           int64 `json:"reassigned"`
	Completions          int64 `json:"completions"`
	DuplicateCompletions int64 `json:"duplicate_completions"`
	// Shed counts lease requests refused at MaxActiveLeases.
	Shed int64 `json:"shed"`
}

// SkipFunc advances the ordered-ingest commit cursor over a range that
// will never be pushed (a dead chunk). capstore.Client.RecordBatchAt
// with an empty batch satisfies it.
type SkipFunc func(at, n int64) error

// CoordinatorConfig parameterizes a Coordinator.
type CoordinatorConfig struct {
	// LeaseSize is the items-per-lease chunking grain (default 32).
	LeaseSize int
	// LeaseTTL is how long a lease lives without a heartbeat
	// (default 10s).
	LeaseTTL time.Duration
	// LeaseRetryBudget is how many leases a chunk may consume before
	// its shares are dead-lettered (default 3).
	LeaseRetryBudget int
	// MaxActiveLeases bounds in-flight leases; requests beyond it are
	// shed with an idle frame (default 64).
	MaxActiveLeases int
	// IdleRetry is the retry hint sent with idle frames (default 250ms).
	IdleRetry time.Duration
	// CheckpointPath, when set, persists per-chunk outcomes so a
	// restarted coordinator resumes without re-issuing completed work.
	CheckpointPath string
	// Skip, when set, is called (with retries across sweeps) for each
	// dead chunk's range so the store's ordered commit cursor does not
	// stall behind work nobody will push.
	Skip SkipFunc
	// DeadLetter receives the coordinator's lease-expired shares.
	DeadLetter resilience.DeadLetterSink
	// Now is injectable for tests (default time.Now).
	Now func() time.Time
	// Registry and Tracer attach the obs surface; both may be nil.
	Registry *obs.Registry
	Tracer   *obs.Tracer
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.LeaseSize <= 0 {
		c.LeaseSize = 32
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.LeaseRetryBudget <= 0 {
		c.LeaseRetryBudget = 3
	}
	if c.MaxActiveLeases <= 0 {
		c.MaxActiveLeases = 64
	}
	if c.IdleRetry <= 0 {
		c.IdleRetry = 250 * time.Millisecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Coordinator owns the window's work list and its exactly-once ledger.
// All methods are safe for concurrent use.
type Coordinator struct {
	cfg CoordinatorConfig

	mu      sync.Mutex
	chunks  []*chunk
	held    map[string]int // domain → active-lease refcount
	byLease map[int64]*chunk
	nextID  int64
	ledger  Ledger
	// skips are dead ranges whose cursor advance hasn't succeeded yet.
	skips []skipRange
	// lastSeen tracks worker liveness for the fleet_workers_live gauge.
	lastSeen map[string]time.Time
	ckpt     *checkpointLog
	done     chan struct{}
	doneSet  bool
	spans    map[int64]*obs.Span

	metrics *coordMetrics
}

type skipRange struct {
	at int64
	n  int64
}

// WorkFromFeed materializes the fleet's total order for a feed window:
// day by day, shares in feed order, sequence numbers dense from 0.
// This is exactly the order a single-process StreamPlatform run with
// Workers=1 records captures in, which is what the ordered ingest path
// reproduces.
func WorkFromFeed(feed *socialfeed.Feed, from, to simtime.Day) []WorkItem {
	var items []WorkItem
	for day := from; day <= to; day++ {
		for _, s := range feed.Day(day) {
			items = append(items, WorkItem{
				Seq:    int64(len(items)),
				URL:    s.URL,
				Domain: s.Domain,
				Day:    day,
			})
		}
	}
	return items
}

// NewCoordinator chunks the work list and, when cfg.CheckpointPath
// names an existing log, replays it so already-accounted chunks are not
// re-issued.
func NewCoordinator(items []WorkItem, cfg CoordinatorConfig) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	co := &Coordinator{
		cfg:      cfg,
		held:     make(map[string]int),
		byLease:  make(map[int64]*chunk),
		lastSeen: make(map[string]time.Time),
		done:     make(chan struct{}),
		spans:    make(map[int64]*obs.Span),
	}
	for i := range items {
		if items[i].Seq != int64(i) {
			return nil, fmt.Errorf("fleet: work item %d has seq %d; the list must be dense from 0", i, items[i].Seq)
		}
	}
	for first := 0; first < len(items); first += cfg.LeaseSize {
		end := first + cfg.LeaseSize
		if end > len(items) {
			end = len(items)
		}
		c := &chunk{
			idx:     len(co.chunks),
			first:   int64(first),
			items:   items[first:end],
			domains: make(map[string]struct{}),
		}
		for _, it := range c.items {
			c.domains[it.Domain] = struct{}{}
		}
		co.chunks = append(co.chunks, c)
	}
	co.ledger.Submitted = int64(len(items))
	if cfg.CheckpointPath != "" {
		ckpt, err := openCheckpoint(cfg.CheckpointPath)
		if err != nil {
			return nil, err
		}
		if err := co.replay(ckpt); err != nil {
			ckpt.Close()
			return nil, err
		}
		co.ckpt = ckpt
	}
	co.registerMetrics()
	co.checkDrained()
	return co, nil
}

// replay applies a checkpoint log's records to the fresh chunk list.
func (co *Coordinator) replay(ckpt *checkpointLog) error {
	return ckpt.Replay(func(r ckptRecord) error {
		if r.Chunk < 0 || r.Chunk >= len(co.chunks) {
			return fmt.Errorf("fleet: checkpoint names chunk %d of %d — log does not match this work list", r.Chunk, len(co.chunks))
		}
		c := co.chunks[r.Chunk]
		if r.First != c.first || r.N != c.n() {
			return fmt.Errorf("fleet: checkpoint chunk %d has range [%d,%d), work list says [%d,%d) — log does not match this work list",
				r.Chunk, r.First, r.First+int64(r.N), c.first, c.first+int64(c.n()))
		}
		if c.state != chunkPending {
			return fmt.Errorf("fleet: checkpoint accounts chunk %d twice", r.Chunk)
		}
		switch r.Kind {
		case ckptDone:
			c.state = chunkDone
			co.ledger.Completions++
		case ckptDead:
			c.state = chunkDead
			// The skip may or may not have reached the store before the
			// previous coordinator died; re-posting is idempotent.
			co.skips = append(co.skips, skipRange{at: c.first, n: int64(c.n())})
		default:
			return fmt.Errorf("fleet: checkpoint record kind %q unknown", r.Kind)
		}
		co.ledger.Captures += r.Captures
		co.ledger.DeadLettered += r.Dead
		return nil
	})
}

// Grant answers a lease request: a grant, an idle hint, or drained.
func (co *Coordinator) Grant(worker string, capacity int) *Frame {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.lastSeen[worker] = co.cfg.Now()
	if co.drainedLocked() {
		return &Frame{Type: FrameDrained}
	}
	active := len(co.byLease)
	if active >= co.cfg.MaxActiveLeases {
		co.ledger.Shed++
		if co.metrics != nil {
			co.metrics.shed.Inc()
		}
		return co.idleFrame()
	}
	// Lowest-first eligible chunk whose domains aren't already leased:
	// the politeness guard, fleet-wide — two workers never crawl one
	// registrable domain concurrently, mirroring StreamPlatform's
	// per-domain spacing.
	for _, c := range co.chunks {
		if c.state != chunkPending {
			continue
		}
		if co.domainsHeld(c) {
			continue
		}
		return co.grantLocked(worker, c)
	}
	return co.idleFrame()
}

func (co *Coordinator) domainsHeld(c *chunk) bool {
	for d := range c.domains {
		if co.held[d] > 0 {
			return true
		}
	}
	return false
}

func (co *Coordinator) grantLocked(worker string, c *chunk) *Frame {
	co.nextID++
	c.state = chunkActive
	c.attempts++
	c.lease = co.nextID
	c.worker = worker
	c.deadline = co.cfg.Now().Add(co.cfg.LeaseTTL)
	co.byLease[c.lease] = c
	for d := range c.domains {
		co.held[d]++
	}
	co.ledger.Leases++
	if co.metrics != nil {
		co.metrics.granted.Inc()
	}
	var trace string
	if co.cfg.Tracer != nil {
		// Span identity is structural: (name, Start attrs). first+attempt
		// uniquely identifies this lease across the run; worker and
		// outcome are display-only post-Start attrs. The span's context
		// rides the grant so every downstream span — worker visits, the
		// ordered push, ring fan-out, capd ingest — joins this trace.
		// No worker attr: which worker wins a lease is a scheduling
		// accident, and recording it would break byte-identical trace
		// exports across worker counts.
		sp := co.cfg.Tracer.Start("lease",
			obs.A("first", fmt.Sprintf("%d", c.first)),
			obs.A("attempt", fmt.Sprintf("%d", c.attempts)))
		co.spans[c.lease] = sp
		trace = sp.Context().Traceparent()
	}
	return &Frame{
		Type:  FrameLeaseGrant,
		Lease: c.lease,
		First: c.first,
		N:     c.n(),
		Items: c.items,
		TTLMS: co.cfg.LeaseTTL.Milliseconds(),
		Trace: trace,
	}
}

func (co *Coordinator) idleFrame() *Frame {
	return &Frame{Type: FrameIdle, RetryMS: co.cfg.IdleRetry.Milliseconds()}
}

// Heartbeat extends a lease. An unknown or superseded lease gets an
// error frame — the signal for a worker to abandon the chunk.
func (co *Coordinator) Heartbeat(worker string, lease int64) *Frame {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.lastSeen[worker] = co.cfg.Now()
	c, ok := co.byLease[lease]
	if !ok || c.worker != worker {
		return &Frame{Type: FrameError, Err: fmt.Sprintf("unknown lease %d for worker %s", lease, worker)}
	}
	c.deadline = co.cfg.Now().Add(co.cfg.LeaseTTL)
	return &Frame{Type: FrameAck}
}

// Complete accounts a lease's per-item outcomes. A completion for a
// lease that was reassigned (and possibly finished elsewhere) is
// acknowledged as a duplicate: the worker already pushed its batch, but
// the ordered ingest path drops re-deliveries, so nothing double-counts.
func (co *Coordinator) Complete(worker string, lease int64, results []Result) *Frame {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.lastSeen[worker] = co.cfg.Now()
	c, ok := co.byLease[lease]
	if !ok || c.worker != worker {
		co.ledger.DuplicateCompletions++
		if co.metrics != nil {
			co.metrics.dupCompletions.Inc()
		}
		return &Frame{Type: FrameAck, Dup: true}
	}
	lo, hi := c.first, c.first+int64(c.n())
	for _, r := range results {
		if r.Seq < lo || r.Seq >= hi {
			return &Frame{Type: FrameError, Err: fmt.Sprintf("result seq %d outside lease range [%d,%d)", r.Seq, lo, hi)}
		}
	}
	if len(results) != c.n() {
		return &Frame{Type: FrameError, Err: fmt.Sprintf("completion has %d results for %d items", len(results), c.n())}
	}
	co.releaseLocked(c)
	c.state = chunkDone
	var caps, dead int64
	for _, r := range results {
		if r.Captured {
			caps++
		} else {
			dead++
			if co.cfg.DeadLetter != nil {
				it := c.items[r.Seq-c.first]
				co.cfg.DeadLetter.Add(resilience.DeadEntry{
					URL: it.URL, Domain: it.Domain, Day: it.Day,
					Attempts: r.Attempts, Reason: r.Reason, LastErr: r.Err,
				})
			}
		}
	}
	co.ledger.Captures += caps
	co.ledger.DeadLettered += dead
	co.ledger.Completions++
	if co.metrics != nil {
		co.metrics.completions.Inc()
		co.metrics.captured.Add(caps)
		co.metrics.dead.Add(dead)
	}
	if sp := co.spans[lease]; sp != nil {
		sp.Attr("outcome", "completed")
		sp.End()
		delete(co.spans, lease)
	}
	if co.ckpt != nil {
		if err := co.ckpt.Append(ckptRecord{Kind: ckptDone, Chunk: c.idx, First: c.first, N: c.n(), Captures: caps, Dead: dead}); err != nil {
			// The in-memory account stays authoritative; a restart just
			// re-runs this chunk (idempotent downstream).
			return &Frame{Type: FrameError, Err: fmt.Sprintf("checkpoint append: %v", err)}
		}
	}
	co.checkDrained()
	return &Frame{Type: FrameAck}
}

// releaseLocked drops a chunk's lease bookkeeping.
func (co *Coordinator) releaseLocked(c *chunk) {
	delete(co.byLease, c.lease)
	for d := range c.domains {
		if co.held[d]--; co.held[d] <= 0 {
			delete(co.held, d)
		}
	}
	c.lease = 0
	c.worker = ""
}

// Sweep expires overdue leases, dead-letters chunks past the retry
// budget, and retries pending cursor skips. Call it periodically
// (cmd/fleetd ticks at TTL/2).
func (co *Coordinator) Sweep() {
	co.mu.Lock()
	now := co.cfg.Now()
	var expired []*chunk
	for _, c := range co.byLease {
		if now.After(c.deadline) {
			expired = append(expired, c)
		}
	}
	// Deterministic processing order for logs/metrics.
	sort.Slice(expired, func(i, j int) bool { return expired[i].first < expired[j].first })
	for _, c := range expired {
		lease := c.lease
		co.releaseLocked(c)
		co.ledger.Reassigned++
		if co.metrics != nil {
			co.metrics.reassigned.Inc()
		}
		if sp := co.spans[lease]; sp != nil {
			sp.Attr("outcome", "expired")
			sp.End()
			delete(co.spans, lease)
		}
		if c.attempts > co.cfg.LeaseRetryBudget {
			co.killLocked(c)
		} else {
			c.state = chunkPending
		}
	}
	skips := co.skips
	co.skips = nil
	skip := co.cfg.Skip
	co.mu.Unlock()

	// Flush cursor skips outside the lock: Skip is an HTTP call.
	var remaining []skipRange
	for _, s := range skips {
		if skip == nil {
			continue
		}
		if err := skip(s.at, s.n); err != nil {
			remaining = append(remaining, s)
		}
	}
	co.mu.Lock()
	co.skips = append(remaining, co.skips...)
	co.checkDrained()
	co.mu.Unlock()
}

// killLocked dead-letters a chunk whose leases expired past the budget.
func (co *Coordinator) killLocked(c *chunk) {
	c.state = chunkDead
	var dead int64
	for _, it := range c.items {
		dead++
		if co.cfg.DeadLetter != nil {
			co.cfg.DeadLetter.Add(resilience.DeadEntry{
				URL: it.URL, Domain: it.Domain, Day: it.Day,
				Attempts: c.attempts, Reason: ReasonLeaseExpired,
			})
		}
	}
	co.ledger.DeadLettered += dead
	if co.metrics != nil {
		co.metrics.dead.Add(dead)
	}
	co.skips = append(co.skips, skipRange{at: c.first, n: int64(c.n())})
	if co.ckpt != nil {
		co.ckpt.Append(ckptRecord{Kind: ckptDead, Chunk: c.idx, First: c.first, N: c.n(), Dead: dead}) //nolint:errcheck
	}
}

// Abort drops all unfinished work (counted as Dropped, dead-lettered
// with the shutdown reason) so the ledger invariant can be audited
// after an early shutdown.
func (co *Coordinator) Abort() {
	co.mu.Lock()
	defer co.mu.Unlock()
	for _, c := range co.chunks {
		if c.state == chunkDone || c.state == chunkDead {
			continue
		}
		if c.state == chunkActive {
			co.releaseLocked(c)
		}
		c.state = chunkDead
		co.ledger.Dropped += int64(c.n())
		if co.cfg.DeadLetter != nil {
			for _, it := range c.items {
				co.cfg.DeadLetter.Add(resilience.DeadEntry{
					URL: it.URL, Domain: it.Domain, Day: it.Day,
					Reason: resilience.ReasonShutdownDrop,
				})
			}
		}
	}
	co.checkDrained()
}

// drainedLocked reports whether every chunk is accounted for and every
// dead range's cursor skip has been delivered.
func (co *Coordinator) drainedLocked() bool {
	if len(co.skips) > 0 {
		return false
	}
	for _, c := range co.chunks {
		if c.state != chunkDone && c.state != chunkDead {
			return false
		}
	}
	return true
}

func (co *Coordinator) checkDrained() {
	if !co.doneSet && co.drainedLocked() {
		co.doneSet = true
		close(co.done)
	}
}

// Done is closed when the window is fully accounted for.
func (co *Coordinator) Done() <-chan struct{} { return co.done }

// Ledger snapshots the account.
func (co *Coordinator) Ledger() Ledger {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.ledger
}

// Status is the /status payload.
type Status struct {
	Ledger  Ledger `json:"ledger"`
	Chunks  int    `json:"chunks"`
	Pending int    `json:"pending"`
	Active  int    `json:"active"`
	DoneN   int    `json:"done"`
	Dead    int    `json:"dead"`
	Workers int    `json:"workers_live"`
	Drained bool   `json:"drained"`
}

// Status snapshots coordinator state for operators and the smoke test.
func (co *Coordinator) Status() Status {
	co.mu.Lock()
	defer co.mu.Unlock()
	st := Status{Ledger: co.ledger, Chunks: len(co.chunks), Drained: co.drainedLocked()}
	for _, c := range co.chunks {
		switch c.state {
		case chunkPending:
			st.Pending++
		case chunkActive:
			st.Active++
		case chunkDone:
			st.DoneN++
		case chunkDead:
			st.Dead++
		}
	}
	st.Workers = co.liveWorkersLocked()
	return st
}

// liveWorkersLocked counts workers seen within two lease TTLs.
func (co *Coordinator) liveWorkersLocked() int {
	cutoff := co.cfg.Now().Add(-2 * co.cfg.LeaseTTL)
	n := 0
	for _, t := range co.lastSeen {
		if t.After(cutoff) {
			n++
		}
	}
	return n
}

// Close flushes the checkpoint log.
func (co *Coordinator) Close() error {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.ckpt != nil {
		return co.ckpt.Close()
	}
	return nil
}
