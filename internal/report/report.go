// Package report renders the reproduction's results in the layout of
// the paper's tables and figures: plain-text tables for terminals and
// markdown for EXPERIMENTS.md. Each renderer consumes the result types
// of the analysis packages, so the same data feeds benchmarks, CLI
// tools and documentation.
package report

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/analysis"
	"repro/internal/cmps"
	"repro/internal/compliance"
	"repro/internal/consent"
	"repro/internal/gvl"
	"repro/internal/simtime"
	"repro/internal/stats"
)

// table builds an aligned text table.
func table(render func(w *tabwriter.Writer)) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	render(w)
	w.Flush()
	return sb.String()
}

// VantageTable renders Table 1 / Table A.3.
func VantageTable(title string, t *analysis.VantageTable) string {
	return title + "\n" + table(func(w *tabwriter.Writer) {
		fmt.Fprint(w, "CMP")
		for _, cfg := range t.Configs {
			fmt.Fprintf(w, "\t%s", shortConfig(cfg))
		}
		fmt.Fprintln(w)
		for _, c := range cmps.All() {
			fmt.Fprintf(w, "%s", c)
			for _, cfg := range t.Configs {
				fmt.Fprintf(w, "\t%d", t.Count(c, cfg))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprint(w, "Σ")
		for _, cfg := range t.Configs {
			fmt.Fprintf(w, "\t%d", t.Totals[cfg])
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, "Coverage")
		for _, cfg := range t.Configs {
			fmt.Fprintf(w, "\t%.0f%%", 100*t.Coverage[cfg])
		}
		fmt.Fprintln(w)
	})
}

func shortConfig(key string) string {
	key = strings.ReplaceAll(key, "eu-university/", "uni:")
	key = strings.ReplaceAll(key, "/default", "")
	key = strings.ReplaceAll(key, "extended-timeout", "ext")
	key = strings.ReplaceAll(key, "lang-", "")
	return key
}

// MarketShare renders Figure 5 / A.4–A.6.
func MarketShare(title string, pts []analysis.MarketSharePoint) string {
	return title + "\n" + table(func(w *tabwriter.Writer) {
		fmt.Fprint(w, "Toplist size")
		for _, c := range cmps.All() {
			fmt.Fprintf(w, "\t%s", c)
		}
		fmt.Fprintln(w, "\tTotal")
		for _, pt := range pts {
			fmt.Fprintf(w, "%d", pt.Size)
			for _, c := range cmps.All() {
				fmt.Fprintf(w, "\t%.2f%%", 100*pt.Share[c])
			}
			fmt.Fprintf(w, "\t%.2f%%\n", 100*pt.TotalShare)
		}
	})
}

// Adoption renders Figure 6 as a monthly series with the event
// timeline interleaved.
func Adoption(title string, pts []analysis.AdoptionPoint, toplistSize int) string {
	events := simtime.Events()
	return title + "\n" + table(func(w *tabwriter.Writer) {
		fmt.Fprint(w, "Month")
		for _, c := range cmps.All() {
			fmt.Fprintf(w, "\t%s", c)
		}
		fmt.Fprintln(w, "\tTotal\tShare\tEvent")
		lastMonth := simtime.Day(-1)
		for _, pt := range pts {
			m := pt.Day.Month()
			if m == lastMonth {
				continue
			}
			lastMonth = m
			fmt.Fprintf(w, "%s", pt.Day.Time().Format("2006-01"))
			for _, c := range cmps.All() {
				fmt.Fprintf(w, "\t%d", pt.Counts[c])
			}
			fmt.Fprintf(w, "\t%d\t%.1f%%", pt.Total, 100*float64(pt.Total)/float64(toplistSize))
			names := []string{}
			for _, e := range events {
				if e.Day.Month() == m {
					names = append(names, e.Name)
				}
			}
			fmt.Fprintf(w, "\t%s\n", strings.Join(names, "; "))
		}
	})
}

// Flows renders Figure 4: per-CMP gains/losses plus the transition
// matrix between providers.
func Flows(m *analysis.FlowMatrix) string {
	out := "Figure 4 — inter-CMP switching flows\n" + table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "CMP\tgains←competitors\tlosses→competitors\tnet\tadoptions\tabandons")
		for _, c := range cmps.All() {
			fmt.Fprintf(w, "%s\t%d\t%d\t%+d\t%d\t%d\n", c,
				m.GainsFromCompetitors(c), m.LossesToCompetitors(c), m.NetCompetitive(c),
				m.Adoptions(c), m.Abandons(c))
		}
	})
	out += "Transition matrix (row → column):\n" + table(func(w *tabwriter.Writer) {
		fmt.Fprint(w, "from\\to")
		for _, to := range cmps.All() {
			fmt.Fprintf(w, "\t%s", to)
		}
		fmt.Fprintln(w)
		for _, from := range cmps.All() {
			fmt.Fprintf(w, "%s", from)
			for _, to := range cmps.All() {
				fmt.Fprintf(w, "\t%d", m.Between(from, to))
			}
			fmt.Fprintln(w)
		}
	})
	return out
}

// GVLSeries renders Figure 7 (quarterly resolution).
func GVLSeries(series []gvl.PurposePoint) string {
	return "Figure 7 — vendors and purposes on the Global Vendor List\n" + table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Date\tVersion\tVendors\tP1\tP2\tP3\tP4\tP5\tLI1\tLI2\tLI3\tLI4\tLI5")
		for i, pt := range series {
			if i%12 != 0 && i != len(series)-1 {
				continue
			}
			fmt.Fprintf(w, "%s\t%d\t%d", pt.Date.Format("2006-01-02"), pt.Version, pt.VendorCount)
			for p := 1; p <= 5; p++ {
				fmt.Fprintf(w, "\t%d", pt.Consent[p])
			}
			for p := 1; p <= 5; p++ {
				fmt.Fprintf(w, "\t%d", pt.LegInt[p])
			}
			fmt.Fprintln(w)
		}
	})
}

// LegalBasisFlows renders Figure 8.
func LegalBasisFlows(h *gvl.History) string {
	flows := h.LegalBasisFlows()
	out := "Figure 8 — legal-basis changes by existing GVL vendors (monthly)\n" + table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Month\tstart-consent\tstop-consent\tstart-LI\tstop-LI\tconsent→LI\tLI→consent\tjoined\tleft")
		for _, f := range flows {
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
				f.Month.Format("2006-01"),
				f.Count(gvl.StartConsent), f.Count(gvl.StopConsent),
				f.Count(gvl.StartLegInt), f.Count(gvl.StopLegInt),
				f.Count(gvl.ConsentToLegInt), f.Count(gvl.LegIntToConsent),
				f.Count(gvl.VendorJoined), f.Count(gvl.VendorLeft))
		}
	})
	out += fmt.Sprintf("Net LI→consent over the window: %+d (paper: net positive — vendors moved toward obtaining consent)\n",
		h.NetLegIntToConsent())
	return out
}

// TrustArc renders Figure 9.
func TrustArc(runs []*consent.OptOutRun) string {
	med := consent.MedianTotalMS(runs) / 1000
	r := runs[0]
	out := fmt.Sprintf("Figure 9 — TrustArc opt-out on forbes.com (hourly × %d days)\n", len(runs)/24)
	out += fmt.Sprintf("median opt-out wait: %.1f s (paper: ≥34 s); clicks: %d (paper: 7)\n", med, r.Clicks)
	out += fmt.Sprintf("network overhead vs accept: +%d requests to %d domains, +%.1f MB / %.1f MB (compressed/raw; paper: +279 to 25, +1.2/5.8 MB)\n",
		r.ExtraRequests, r.ExtraDomains, float64(r.ExtraBytesCompressed)/1e6, float64(r.ExtraBytesRaw)/1e6)
	out += "Opt-out pipeline stages (first run):\n" + table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "stage\tclick\tstart\tend\trequests")
		for _, s := range r.Steps {
			fmt.Fprintf(w, "%s\t%v\t%.1fs\t%.1fs\t%d\n", s.Name, s.Click, s.StartMS/1000, s.EndMS/1000, s.Requests)
		}
	})
	return out
}

// Quantcast renders Figure 10.
func Quantcast(res *consent.ExperimentResult) string {
	out := fmt.Sprintf("Figure 10 — Quantcast dialog timing (randomized, %d dialogs shown)\n", res.TotalShown)
	render := func(cr consent.ConfigResult, label string) string {
		return table(func(w *tabwriter.Writer) {
			fmt.Fprintf(w, "config\t%s\n", label)
			fmt.Fprintf(w, "N accept / N reject\t%d / %d\n", len(cr.AcceptTimes), len(cr.RejectTimes))
			fmt.Fprintf(w, "median accept / reject\t%.1f s / %.1f s\n", cr.MedianAcceptSec, cr.MedianRejectSec)
			fmt.Fprintf(w, "consent rate\t%.0f%%\n", 100*cr.ConsentRate)
			fmt.Fprintf(w, "Mann–Whitney\tU=%.0f z=%.2f p=%.4g\n", cr.Test.U, cr.Test.Z, cr.Test.P)
		})
	}
	out += render(res.DirectReject, "A: direct reject button (Figure A.1)")
	out += render(res.MoreOptions, "B: \"More Options\" (Figures A.2–A.3)")
	out += "Paper: A = 3.2s/3.6s at 83%, U(1344,279)=166582, z=-2.93, p<0.01;\n"
	out += "       B reject doubles to 6.7s at 90%, U(1152,135)=30494, z=-11.57, p<0.001.\n"
	return out
}

// Customization renders the item-I3 statistics.
func Customization(statsByCMP map[cmps.ID]*analysis.CustomizationStats) string {
	out := "Section 4.1 — publisher customization (I3, EU-university DOM store)\n"
	for _, c := range cmps.All() {
		s := statsByCMP[c]
		if s == nil || s.Websites == 0 {
			continue
		}
		out += fmt.Sprintf("%s (%d websites):\n", c, s.Websites)
		var names []string
		for v := range s.Variants {
			names = append(names, v)
		}
		sort.Strings(names)
		out += table(func(w *tabwriter.Writer) {
			for _, v := range names {
				fmt.Fprintf(w, "  %s\t%d\t%.1f%%\n", v, s.Variants[v], 100*s.VariantShare(v))
			}
			if s.ConfirmRequired > 0 {
				fmt.Fprintf(w, "  opt-out needs confirmation\t%d\t\n", s.ConfirmRequired)
			}
			if s.AffirmativeAccept+s.FreeformAccept > 0 {
				fmt.Fprintf(w, "  affirmative / freeform accept wording\t%d / %d\t\n",
					s.AffirmativeAccept, s.FreeformAccept)
			}
			for text, n := range s.FooterTexts {
				fmt.Fprintf(w, "  footer link %q\t%d\t\n", text, n)
			}
		})
	}
	out += fmt.Sprintf("API-only (custom dialog) share: %.1f%% (paper: ≈8%%)\n",
		100*analysis.APIOnlyShare(statsByCMP))
	return out
}

// MissingData renders the Section 3.5 breakdown.
func MissingData(md *analysis.MissingData) string {
	return "Section 3.5 — toplist domains never shared on social media\n" + table(func(w *tabwriter.Writer) {
		fmt.Fprintf(w, "toplist size\t%d\n", md.ToplistSize)
		fmt.Fprintf(w, "never shared\t%d\t(paper: 1076 of 10k)\n", md.NeverShared)
		fmt.Fprintf(w, "  unreachable\t%d\t(315)\n", md.Unreachable)
		fmt.Fprintf(w, "  no valid HTTP response\t%d\t(4)\n", md.NoValidResponse)
		fmt.Fprintf(w, "  HTTP error status\t%d\t(70)\n", md.HTTPError)
		fmt.Fprintf(w, "  redirected elsewhere\t%d\t(192)\n", md.RedirectedElswhere)
		fmt.Fprintf(w, "  infrastructure\t%d\t(>90%% of remainder)\n", md.Infrastructure)
		fmt.Fprintf(w, "  other\t%d\n", md.Other)
	})
}

// PriorWork renders Figure 1.
func PriorWork() string {
	return "Figure 1 — prior post-GDPR studies vs this work\n" + table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Study\tVenue\tWindow\tDomains\tDesign")
		for _, s := range analysis.PriorWork() {
			design := "longitudinal"
			if s.Snapshot {
				design = "snapshot"
			}
			fmt.Fprintf(w, "%s\t%s\t%s – %s\t%d\t%s\n", s.Label, s.Venue,
				s.Start.Format("2006-01"), s.End.Format("2006-01"), s.Domains, design)
		}
	}) + fmt.Sprintf("Quantcast's consent prompt alone changed %d times in the observation period.\n",
		analysis.QuantcastPromptChanges)
}

// Compliance renders a violation survey (Matte-et-al audit classes).
func Compliance(res *compliance.SurveyResult) string {
	out := fmt.Sprintf("Compliance audit — %d TCF websites\n", res.Audited)
	return out + table(func(w *tabwriter.Writer) {
		ref := map[compliance.Violation]string{
			compliance.ConsentBeforeChoice:   "(Matte et al.: 12%)",
			compliance.ConsentAfterOptOut:    "(Matte et al.: \"some\")",
			compliance.NoDirectReject:        "(Nouwens et al.: ≈50%)",
			compliance.NonAffirmativeWording: "(this paper: 13% of Quantcast sites)",
		}
		for _, v := range compliance.Violations() {
			fmt.Fprintf(w, "%s\t%d\t%.1f%%\t%s\n", v, res.Counts[v], 100*res.Share(v), ref[v])
		}
	})
}

// PromptChanges renders the per-CMP prompt-change history (Figure 1's
// annotation).
func PromptChanges(changes map[cmps.ID]int) string {
	return "Prompt changes observed over the window (Figure 1: Quantcast changed 38 times)\n" +
		table(func(w *tabwriter.Writer) {
			for _, c := range cmps.All() {
				fmt.Fprintf(w, "%s\t%d\n", c, changes[c])
			}
		})
}

// TimeCost renders the privacy time-cost synthesis.
func TimeCost(res analysis.TimeCostResult) string {
	out := "Privacy time cost — an always-reject user vs an accept-everything user\n"
	out += fmt.Sprintf("  a visited site shows a dialog with probability %.1f%%\n", 100*res.DialogChance)
	out += fmt.Sprintf("  expected extra interaction: %.2f s per site visited, %.0f s per 100 sites\n",
		res.ExtraSecPerVisit, res.ExtraSecPer100Sites)
	out += "  by CMP (expected extra seconds per visit):\n"
	out += table(func(w *tabwriter.Writer) {
		for _, c := range cmps.All() {
			if res.PerCMP[c] > 0 {
				fmt.Fprintf(w, "    %s\t%.3f s\n", c, res.PerCMP[c])
			}
		}
	})
	return out
}

// Retention renders the Kaplan–Meier customer-lifetime estimates
// behind the Figure 4 gateway narrative.
func Retention(ret map[cmps.ID]*analysis.Retention) string {
	return "Customer retention (Kaplan–Meier over witnessed removals; fade-out ends are censoring.\n" +
		"At sparse sampling most ends are censored — survival estimates are upper bounds.)\n" +
		table(func(w *tabwriter.Writer) {
			fmt.Fprintln(w, "CMP\tepisodes\tcensored\tS(1y)\tS(2y)\tmedian lifetime")
			for _, c := range cmps.All() {
				r := ret[c]
				if r == nil || r.Episodes == 0 {
					continue
				}
				med := "> window"
				if r.MedianDays > 0 {
					med = fmt.Sprintf("%d d", r.MedianDays)
				}
				fmt.Fprintf(w, "%s\t%d\t%d\t%.2f\t%.2f\t%s\n",
					c, r.Episodes, r.Censored, r.SurvivalAt(365), r.SurvivalAt(730), med)
			}
		})
}

// CoverageSeries renders the monthly vantage-coverage series (the
// continuous version of Tables 1 and A.3).
func CoverageSeries(pts []analysis.CoveragePoint) string {
	return "Vantage coverage over time (Tables 1/A.3 continuously: CCPA drives US visibility up)\n" +
		table(func(w *tabwriter.Writer) {
			fmt.Fprintln(w, "Month\tUS cloud\tEU cloud\tEU university")
			for _, pt := range pts {
				fmt.Fprintf(w, "%s\t%.0f%%\t%.0f%%\t%.0f%%\n",
					pt.Day.Time().Format("2006-01"), 100*pt.USCloud, 100*pt.EUCloud, 100*pt.UniDefault)
			}
		})
}

// Tracking renders the third-party tracking context statistics.
func Tracking(s *analysis.TrackingStats) string {
	return fmt.Sprintf(
		"Tracking context — %d websites: %.0f%% store identifying state "+
			"(Sanchez-Rola et al.: 90%%), %.0f%% embed known trackers, "+
			"%.1f third-party hosts per site on average\n",
		s.Websites, 100*s.IdentifyingShare(), 100*s.TrackerShare(), s.MeanThirdParties)
}

// Subsites renders the subsite-coverage comparison.
func Subsites(c *analysis.SubsiteCoverage) string {
	return fmt.Sprintf(
		"Subsite coverage — %d domains: front pages reveal %d CMPs, subsite "+
			"sampling %d (+%.1f%%); %d sites carry their CMP only on subsites "+
			"(Section 3.5: subsite crawling \"increases the reliability of our results\")\n",
		c.Domains, c.FrontPageCMP, c.SubsiteCMP, 100*c.Gain(), c.OnlyOnSubsites)
}

// Timing summarizes a latency sample for custom reports.
func Timing(label string, xs []float64) string {
	s, err := stats.Summarize(xs)
	if err != nil {
		return fmt.Sprintf("%s: no data\n", label)
	}
	return fmt.Sprintf("%s: n=%d median=%.2f p25=%.2f p75=%.2f mean=%.2f\n",
		label, s.N, s.Median, s.P25, s.P75, s.Mean)
}
