package report

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cmps"
	"repro/internal/compliance"
	"repro/internal/simtime"
)

func TestComplianceRendering(t *testing.T) {
	res := &compliance.SurveyResult{Audited: 100}
	res.Counts[compliance.ConsentBeforeChoice] = 12
	res.Counts[compliance.NoDirectReject] = 50
	out := Compliance(res)
	for _, want := range []string{"100 TCF websites", "consent-before-choice", "12.0%", "Matte et al."} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPromptChangesRendering(t *testing.T) {
	out := PromptChanges(map[cmps.ID]int{cmps.Quantcast: 38, cmps.OneTrust: 21})
	if !strings.Contains(out, "Quantcast\t38") && !strings.Contains(out, "Quantcast  38") {
		t.Errorf("rendering:\n%s", out)
	}
}

func TestCoverageSeriesRendering(t *testing.T) {
	out := CoverageSeries([]analysis.CoveragePoint{
		{Day: simtime.Date(2020, 1, 15), USCloud: 0.70, EUCloud: 0.84, UniDefault: 0.97},
	})
	for _, want := range []string{"2020-01", "70%", "84%", "97%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTrackingRendering(t *testing.T) {
	out := Tracking(&analysis.TrackingStats{
		Websites: 500, WithIdentifyingCookie: 450, WithThirdPartyTracker: 440,
		MeanThirdParties: 2.4,
	})
	if !strings.Contains(out, "90%") || !strings.Contains(out, "2.4") {
		t.Errorf("rendering: %s", out)
	}
}

func TestSubsitesRendering(t *testing.T) {
	out := Subsites(&analysis.SubsiteCoverage{
		Domains: 1000, FrontPageCMP: 100, SubsiteCMP: 106, OnlyOnSubsites: 6,
	})
	if !strings.Contains(out, "+6.0%") || !strings.Contains(out, "only on subsites") {
		t.Errorf("rendering: %s", out)
	}
}

func TestRetentionRendering(t *testing.T) {
	ret := map[cmps.ID]*analysis.Retention{
		cmps.Cookiebot: {
			CMP: cmps.Cookiebot, Episodes: 200, Censored: 80,
			Curve:      []analysis.SurvivalPoint{{Days: 300, Survival: 0.45}},
			MedianDays: 300,
		},
	}
	out := Retention(ret)
	for _, want := range []string{"Cookiebot", "200", "300 d", "Kaplan"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// CMPs without episodes are omitted, not rendered as zero rows.
	if strings.Contains(out, "LiveRamp") {
		t.Error("empty CMPs must be omitted")
	}
}

func TestTimeCostRendering(t *testing.T) {
	out := TimeCost(analysis.TimeCostResult{
		DialogChance:        0.09,
		ExtraSecPerVisit:    0.25,
		ExtraSecPer100Sites: 25,
		PerCMP:              map[cmps.ID]float64{cmps.TrustArc: 0.08},
	})
	for _, want := range []string{"9.0%", "0.25 s per site", "25 s per 100 sites", "TrustArc"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
