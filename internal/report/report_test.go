package report

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cmps"
	"repro/internal/consent"
	"repro/internal/gvl"
	"repro/internal/simtime"
)

func TestVantageTableRendering(t *testing.T) {
	vt := &analysis.VantageTable{
		Configs:  []string{"us-cloud/default", "eu-university/extended-timeout"},
		Counts:   map[cmps.ID]map[string]int{},
		Totals:   map[string]int{"us-cloud/default": 10, "eu-university/extended-timeout": 12},
		Coverage: map[string]float64{"us-cloud/default": 0.83, "eu-university/extended-timeout": 1},
	}
	for _, c := range cmps.All() {
		vt.Counts[c] = map[string]int{"us-cloud/default": 1, "eu-university/extended-timeout": 2}
	}
	out := VantageTable("Table 1", vt)
	for _, want := range []string{"Table 1", "OneTrust", "Crownpeak", "Σ", "Coverage", "83%", "100%", "uni:ext"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMarketShareRendering(t *testing.T) {
	pts := []analysis.MarketSharePoint{{
		Size:       1000,
		Count:      map[cmps.ID]int{cmps.Quantcast: 50},
		Share:      map[cmps.ID]float64{cmps.Quantcast: 0.05},
		TotalShare: 0.13,
	}}
	out := MarketShare("Figure 5", pts)
	for _, want := range []string{"Figure 5", "1000", "5.00%", "13.00%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestAdoptionRenderingInterleavesEvents(t *testing.T) {
	var pts []analysis.AdoptionPoint
	for d := simtime.Day(0); int(d) < simtime.NumDays; d += 7 {
		pts = append(pts, analysis.AdoptionPoint{
			Day: d, Counts: map[cmps.ID]int{cmps.Quantcast: 1}, Total: 1,
		})
	}
	out := Adoption("Figure 6", pts, 100)
	if !strings.Contains(out, "GDPR comes into effect") {
		t.Error("event timeline missing")
	}
	if !strings.Contains(out, "2018-05") || !strings.Contains(out, "2020-09") {
		t.Error("monthly series must span the window")
	}
}

func TestFlowsRendering(t *testing.T) {
	m := &analysis.FlowMatrix{}
	m.Counts[cmps.Cookiebot][cmps.OneTrust] = 5
	m.Counts[cmps.None][cmps.Quantcast] = 7
	out := Flows(m)
	if !strings.Contains(out, "Cookiebot") || !strings.Contains(out, "Transition matrix") {
		t.Errorf("flows output malformed:\n%s", out)
	}
	if !strings.Contains(out, "-5") {
		t.Error("net competitive numbers missing")
	}
}

func TestGVLRendering(t *testing.T) {
	h := gvl.GenerateHistory(gvl.HistoryConfig{Seed: 1, Versions: 30, InitialVendors: 30, PeakVendors: 80})
	series := GVLSeries(h.PurposeSeries())
	if !strings.Contains(series, "Vendors") || !strings.Contains(series, "LI5") {
		t.Errorf("GVL series malformed:\n%s", series)
	}
	flows := LegalBasisFlows(h)
	if !strings.Contains(flows, "LI→consent") || !strings.Contains(flows, "Net LI→consent") {
		t.Errorf("legal basis rendering malformed:\n%s", flows)
	}
}

func TestTrustArcRendering(t *testing.T) {
	runs := consent.NewTrustArcFlow(1).HourlySeries(1)
	out := TrustArc(runs)
	for _, want := range []string{"median opt-out wait", "clicks: 7", "send-partner-optouts", "25 domains"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestQuantcastRendering(t *testing.T) {
	h := gvl.GenerateHistory(gvl.HistoryConfig{Seed: 1, Versions: 2, InitialVendors: 30, PeakVendors: 40})
	exp := consent.NewFieldExperiment(1, &h.Versions[1])
	exp.Visitors = 2_000
	res, err := consent.Analyze(exp.Run())
	if err != nil {
		t.Fatal(err)
	}
	out := Quantcast(res)
	for _, want := range []string{"direct reject button", "More Options", "Mann–Whitney", "consent rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCustomizationRendering(t *testing.T) {
	stats := map[cmps.ID]*analysis.CustomizationStats{
		cmps.Quantcast: {
			CMP: cmps.Quantcast, Websites: 10,
			Variants:          map[string]int{"direct-reject": 6, "more-options": 4},
			AffirmativeAccept: 8, FreeformAccept: 2,
			FooterTexts: map[string]int{},
		},
	}
	out := Customization(stats)
	if !strings.Contains(out, "Quantcast (10 websites)") || !strings.Contains(out, "direct-reject") {
		t.Errorf("customization rendering malformed:\n%s", out)
	}
	if !strings.Contains(out, "API-only") {
		t.Error("API-only summary missing")
	}
}

func TestMissingDataRendering(t *testing.T) {
	out := MissingData(&analysis.MissingData{ToplistSize: 10_000, NeverShared: 1076, Unreachable: 315})
	if !strings.Contains(out, "1076") || !strings.Contains(out, "315") {
		t.Errorf("missing data rendering malformed:\n%s", out)
	}
}

func TestPriorWorkRendering(t *testing.T) {
	out := PriorWork()
	if !strings.Contains(out, "Nouwens") || !strings.Contains(out, "longitudinal") || !strings.Contains(out, "38 times") {
		t.Errorf("prior work rendering malformed:\n%s", out)
	}
}

func TestTimingSummary(t *testing.T) {
	out := Timing("accept", []float64{1, 2, 3})
	if !strings.Contains(out, "median=2.00") {
		t.Errorf("timing summary malformed: %s", out)
	}
	if !strings.Contains(Timing("empty", nil), "no data") {
		t.Error("empty sample handling")
	}
}
