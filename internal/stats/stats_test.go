package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMedian(t *testing.T) {
	tests := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1}, 1},
		{[]float64{1, 2}, 1.5},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, tt := range tests {
		got, err := Median(tt.in)
		if err != nil || !almost(got, tt.want, 1e-12) {
			t.Errorf("Median(%v) = %v, %v; want %v", tt.in, got, err, tt.want)
		}
	}
	if _, err := Median(nil); err != ErrEmpty {
		t.Error("empty median must fail")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, tt := range []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	} {
		got, err := Quantile(xs, tt.q)
		if err != nil || !almost(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("out-of-range quantile must fail")
	}
	if _, err := Quantile(xs, math.NaN()); err == nil {
		t.Error("NaN quantile must fail")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile must not mutate its input")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 6, 8})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 || s.Min != 2 || s.Max != 8 || !almost(s.Mean, 5, 1e-12) || !almost(s.Median, 5, 1e-12) {
		t.Errorf("Summarize = %+v", s)
	}
}

func TestECDF(t *testing.T) {
	x, f := ECDF([]float64{3, 1, 2})
	if len(x) != 3 || x[0] != 1 || x[2] != 3 {
		t.Errorf("ECDF x = %v", x)
	}
	if !almost(f[0], 1.0/3, 1e-12) || !almost(f[2], 1, 1e-12) {
		t.Errorf("ECDF f = %v", f)
	}
	if x, f := ECDF(nil); x != nil || f != nil {
		t.Error("empty ECDF must return nil")
	}
}

func TestMannWhitneyKnown(t *testing.T) {
	// Classic example: group A clearly below group B.
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{6, 7, 8, 9, 10}
	res, err := MannWhitney(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.U != 0 {
		t.Errorf("U = %v, want 0 (complete separation)", res.U)
	}
	if res.U2 != 25 {
		t.Errorf("U2 = %v, want 25", res.U2)
	}
	if res.P > 0.02 {
		t.Errorf("p = %v, want significant", res.P)
	}
	if res.Z >= 0 {
		t.Errorf("z = %v, want negative (A below B)", res.Z)
	}
}

func TestMannWhitneyTies(t *testing.T) {
	// a = {1,2,2}, b = {2,3,4}: midranks give R1 = 1+3+3 = 7, so
	// U1 = 7 - 6 = 1 (pair counting: 0 + 0.5 + 0.5). Tie-corrected
	// sigma² = 0.75·(7 - 24/30) = 4.65, z = (1-4.5+0.5)/2.156 ≈ -1.39,
	// p ≈ 0.16.
	a := []float64{1, 2, 2}
	b := []float64{2, 3, 4}
	res, err := MannWhitney(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.U, 1, 1e-9) {
		t.Errorf("U = %v, want 1", res.U)
	}
	if !almost(res.P, 0.164, 0.02) {
		t.Errorf("p = %v, want ≈0.164", res.P)
	}
}

func TestMannWhitneyAllTied(t *testing.T) {
	res, err := MannWhitney([]float64{5, 5}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 || res.Z != 0 {
		t.Errorf("all-tied: z=%v p=%v, want 0/1", res.Z, res.P)
	}
}

func TestMannWhitneyEmpty(t *testing.T) {
	if _, err := MannWhitney(nil, []float64{1}); err != ErrEmpty {
		t.Error("empty sample must fail")
	}
}

// TestMannWhitneyUSum checks the invariant U1 + U2 = n1*n2.
func TestMannWhitneyUSum(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(n1, n2 uint8) bool {
		m1, m2 := int(n1%20)+1, int(n2%20)+1
		a := make([]float64, m1)
		b := make([]float64, m2)
		for i := range a {
			a[i] = math.Floor(r.Float64() * 10) // induce ties
		}
		for i := range b {
			b[i] = math.Floor(r.Float64() * 10)
		}
		res, err := MannWhitney(a, b)
		if err != nil {
			return false
		}
		return almost(res.U1+res.U2, float64(m1*m2), 1e-9) &&
			res.P >= 0 && res.P <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestMannWhitneySymmetry: swapping samples flips the sign of z and
// mirrors U.
func TestMannWhitneySymmetry(t *testing.T) {
	a := []float64{1.2, 3.4, 2.2, 5.5}
	b := []float64{2.1, 6.7, 4.4}
	r1, _ := MannWhitney(a, b)
	r2, _ := MannWhitney(b, a)
	if !almost(r1.U1, r2.U2, 1e-9) || !almost(r1.Z, -r2.Z, 1e-9) || !almost(r1.P, r2.P, 1e-9) {
		t.Errorf("symmetry violated: %+v vs %+v", r1, r2)
	}
}

func TestMannWhitneyBalanced(t *testing.T) {
	// R1 = 1+4+5+8+9 = 27, U1 = 27-15 = 12; near the null mean 12.5,
	// so with continuity correction z = 0 and p = 1.
	res, err := MannWhitney([]float64{1, 4, 5, 8, 9}, []float64{2, 3, 6, 7, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.U, 12, 1e-9) {
		t.Errorf("U = %v, want 12", res.U)
	}
	if res.P < 0.9 {
		t.Errorf("p = %v, want ≈1 (no evidence)", res.P)
	}
}

func TestHistogram(t *testing.T) {
	edges, counts := Histogram([]float64{0.5, 1.5, 1.6, 2.5, 10}, 3, 0, 3)
	if len(edges) != 4 || len(counts) != 3 {
		t.Fatalf("edges=%v counts=%v", edges, counts)
	}
	if counts[0] != 1 || counts[1] != 2 || counts[2] != 1 {
		t.Errorf("counts = %v, want [1 2 1] (10 out of range)", counts)
	}
	if e, c := Histogram(nil, 0, 0, 1); e != nil || c != nil {
		t.Error("invalid bin count must return nil")
	}
}
