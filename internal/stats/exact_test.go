package stats

import (
	"math"
	"testing"
)

func TestUDistributionSanity(t *testing.T) {
	// The null distribution's total mass is C(n1+n2, n1), and it is
	// symmetric around n1·n2/2.
	cases := []struct{ n1, n2 int }{{3, 4}, {5, 5}, {2, 8}, {10, 7}}
	for _, c := range cases {
		counts := uDistribution(c.n1, c.n2)
		total := 0.0
		for _, v := range counts {
			total += v
		}
		if want := binom(c.n1+c.n2, c.n1); math.Abs(total-want) > 1e-6 {
			t.Errorf("(%d,%d): total %v, want %v", c.n1, c.n2, total, want)
		}
		maxU := c.n1 * c.n2
		for u := 0; u <= maxU/2; u++ {
			if math.Abs(counts[u]-counts[maxU-u]) > 1e-9 {
				t.Errorf("(%d,%d): asymmetric at u=%d: %v vs %v",
					c.n1, c.n2, u, counts[u], counts[maxU-u])
			}
		}
	}
}

func binom(n, k int) float64 {
	v := 1.0
	for i := 0; i < k; i++ {
		v = v * float64(n-i) / float64(i+1)
	}
	return v
}

func TestMannWhitneyExactKnownValue(t *testing.T) {
	// n1 = n2 = 5, complete separation shifted: a = {1,2,3,4,6},
	// b = {5,7,8,9,10} gives U1 = #(a>b) = 1 (only 6>5).
	// P(U ≤ 1) = 2/252, two-sided p = 4/252 ≈ 0.01587.
	a := []float64{1, 2, 3, 4, 6}
	b := []float64{5, 7, 8, 9, 10}
	res, err := MannWhitneyExact(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.U != 1 {
		t.Fatalf("U = %v, want 1", res.U)
	}
	if !almost(res.P, 4.0/252, 1e-9) {
		t.Errorf("p = %v, want %v", res.P, 4.0/252)
	}
}

func TestMannWhitneyExactCompleteSeparation(t *testing.T) {
	// U = 0 with n1 = n2 = 5: two-sided p = 2·(1/252).
	res, err := MannWhitneyExact([]float64{1, 2, 3, 4, 5}, []float64{6, 7, 8, 9, 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.U != 0 || !almost(res.P, 2.0/252, 1e-9) {
		t.Errorf("U=%v p=%v", res.U, res.P)
	}
	if res.Z >= 0 {
		t.Error("z must be negative")
	}
}

func TestMannWhitneyExactBalanced(t *testing.T) {
	// A balanced interleaving has p near 1 (capped).
	res, err := MannWhitneyExact([]float64{1, 4, 5, 8, 9}, []float64{2, 3, 6, 7, 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.8 {
		t.Errorf("p = %v, want ≈1", res.P)
	}
}

func TestMannWhitneyExactRejectsTies(t *testing.T) {
	if _, err := MannWhitneyExact([]float64{1, 2}, []float64{2, 3}); err != ErrTies {
		t.Errorf("cross-sample tie: %v", err)
	}
	if _, err := MannWhitneyExact([]float64{1, 1}, []float64{2, 3}); err != ErrTies {
		t.Errorf("within-sample tie: %v", err)
	}
}

func TestMannWhitneyExactLimits(t *testing.T) {
	big := make([]float64, exactMaxN+1)
	for i := range big {
		big[i] = float64(i)
	}
	if _, err := MannWhitneyExact(big, []float64{0.5}); err != ErrTooLarge {
		t.Errorf("oversized sample: %v", err)
	}
	if _, err := MannWhitneyExact(nil, []float64{1}); err != ErrEmpty {
		t.Errorf("empty sample: %v", err)
	}
}

// TestExactMatchesApproximation: for moderate sizes the exact p and
// the normal approximation agree closely.
func TestExactMatchesApproximation(t *testing.T) {
	a := []float64{1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23, 25, 27, 2.5}
	b := []float64{2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 29.5}
	exact, err := MannWhitneyExact(a, b)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := MannWhitney(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if exact.U != approx.U {
		t.Fatalf("U differs: exact %v vs approx %v", exact.U, approx.U)
	}
	if math.Abs(exact.P-approx.P) > 0.05 {
		t.Errorf("p differs: exact %v vs approx %v", exact.P, approx.P)
	}
}
