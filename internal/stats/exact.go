package stats

import (
	"errors"
	"math"
)

// Exact Mann–Whitney U test for small samples. The normal
// approximation used for the paper's sample sizes (hundreds of
// visitors) is unreliable below roughly n = 8 per group; the exact
// test enumerates the null distribution of U by dynamic programming
// instead. It requires tie-free data (the recurrence assumes distinct
// ranks).

// exactMaxN bounds the per-group size for the exact computation; the
// DP table grows with n1·n2 and the approximation is fine above this.
const exactMaxN = 30

// ErrTies is returned when the exact test encounters tied values.
var ErrTies = errors.New("stats: exact test requires tie-free samples")

// ErrTooLarge is returned when the samples exceed the exact test's
// size limit; use MannWhitney (normal approximation) instead.
var ErrTooLarge = errors.New("stats: samples too large for the exact test")

// MannWhitneyExact performs the two-sided exact Mann–Whitney U test.
func MannWhitneyExact(a, b []float64) (MannWhitneyResult, error) {
	n1, n2 := len(a), len(b)
	if n1 == 0 || n2 == 0 {
		return MannWhitneyResult{}, ErrEmpty
	}
	if n1 > exactMaxN || n2 > exactMaxN {
		return MannWhitneyResult{}, ErrTooLarge
	}
	// U1 by direct pair counting; detect ties on the way.
	u1 := 0
	for _, x := range a {
		for _, y := range b {
			switch {
			case x == y:
				return MannWhitneyResult{}, ErrTies
			case x > y:
				u1++
			}
		}
	}
	// Check within-sample ties too: they do not affect U but signal
	// data the exact null distribution does not cover.
	if hasDuplicates(a) || hasDuplicates(b) {
		return MannWhitneyResult{}, ErrTies
	}

	res := MannWhitneyResult{
		U: float64(u1), U1: float64(u1), U2: float64(n1*n2 - u1),
		N1: n1, N2: n2,
	}
	// Null distribution of U via the standard recurrence:
	// f(n1, n2, u) = f(n1-1, n2, u-n2) + f(n1, n2-1, u).
	counts := uDistribution(n1, n2)
	total := 0.0
	for _, c := range counts {
		total += c
	}
	// Two-sided p: twice the smaller tail, capped at 1.
	uMin := u1
	if n1*n2-u1 < uMin {
		uMin = n1*n2 - u1
	}
	tail := 0.0
	for u := 0; u <= uMin; u++ {
		tail += counts[u]
	}
	res.P = math.Min(1, 2*tail/total)
	// Report the equivalent z for interface parity.
	mu := float64(n1*n2) / 2
	sigma := math.Sqrt(float64(n1*n2*(n1+n2+1)) / 12)
	if sigma > 0 {
		res.Z = (float64(u1) - mu) / sigma
	}
	return res, nil
}

// uDistribution returns counts[u] = number of rank arrangements with
// U statistic u, for u in [0, n1·n2], via the classic Mann–Whitney
// recurrence N(u; n1, n2) = N(u−n2; n1−1, n2) + N(u; n1, n2−1).
// The counts over all u sum to C(n1+n2, n1).
func uDistribution(n1, n2 int) []float64 {
	maxU := n1 * n2
	// dp[i][j][u] rolled over j: for fixed j, build i = 0..n1.
	// Iterate j outer so N(·; i, j−1) is available.
	cur := make([][]float64, n1+1)
	for i := range cur {
		cur[i] = make([]float64, maxU+1)
	}
	// j = 0: U must be 0 regardless of i.
	for i := 0; i <= n1; i++ {
		cur[i][0] = 1
	}
	for j := 1; j <= n2; j++ {
		next := make([][]float64, n1+1)
		next[0] = make([]float64, maxU+1)
		next[0][0] = 1 // i = 0: only U = 0
		for i := 1; i <= n1; i++ {
			next[i] = make([]float64, maxU+1)
			for u := 0; u <= i*j; u++ {
				v := cur[i][u] // N(u; i, j-1)
				if u >= j {
					v += next[i-1][u-j] // N(u-j; i-1, j)
				}
				next[i][u] = v
			}
		}
		cur = next
	}
	return cur[n1]
}

func hasDuplicates(xs []float64) bool {
	seen := make(map[float64]bool, len(xs))
	for _, x := range xs {
		if seen[x] {
			return true
		}
		seen[x] = true
	}
	return false
}
