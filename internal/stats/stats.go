// Package stats implements the statistical machinery the paper relies
// on: medians and quantiles of skewed latency distributions, empirical
// CDFs for the timing plots, and the Mann–Whitney U test ("a
// nonparametric test that is robust to skewed distributions") used to
// compare consent-decision times in Section 4.3.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned when a computation needs at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Median returns the sample median. It copies the input.
func Median(xs []float64) (float64, error) {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-th sample quantile (0 <= q <= 1) using linear
// interpolation between closest ranks (type-7, the R/NumPy default).
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile out of range")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Summary bundles the descriptive statistics reported for timing
// distributions.
type Summary struct {
	N      int
	Median float64
	P25    float64
	P75    float64
	Mean   float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	med, _ := Median(xs)
	p25, _ := Quantile(xs, 0.25)
	p75, _ := Quantile(xs, 0.75)
	mean, _ := Mean(xs)
	min, max := xs[0], xs[0]
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return Summary{N: len(xs), Median: med, P25: p25, P75: p75, Mean: mean, Min: min, Max: max}, nil
}

// ECDF returns the empirical CDF evaluated at each of the (sorted)
// sample points, as (x, F(x)) pairs. Used for the Figure 10 curves.
func ECDF(xs []float64) (x, f []float64) {
	if len(xs) == 0 {
		return nil, nil
	}
	x = append([]float64(nil), xs...)
	sort.Float64s(x)
	f = make([]float64, len(x))
	n := float64(len(x))
	for i := range x {
		f[i] = float64(i+1) / n
	}
	return x, f
}

// MannWhitneyResult reports the U statistic, the normal-approximation
// z-score (with tie correction and continuity correction), and the
// two-sided p-value, matching how the paper reports e.g.
// U(N_accept=1344, N_reject=279) = 166582, z = -2.93, p < 0.01.
type MannWhitneyResult struct {
	U  float64 // U statistic of the first sample
	U1 float64 // alias of U (first sample)
	U2 float64 // U statistic of the second sample
	Z  float64 // normal approximation z-score
	P  float64 // two-sided p-value
	N1 int
	N2 int
}

// MannWhitney performs the two-sided Mann–Whitney U test on two
// independent samples using the normal approximation with tie
// correction. It returns an error for empty samples; the approximation
// is standard for the sample sizes in the paper (hundreds+).
func MannWhitney(a, b []float64) (MannWhitneyResult, error) {
	n1, n2 := len(a), len(b)
	if n1 == 0 || n2 == 0 {
		return MannWhitneyResult{}, ErrEmpty
	}
	type obs struct {
		v     float64
		group int
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range a {
		all = append(all, obs{v, 0})
	}
	for _, v := range b {
		all = append(all, obs{v, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Assign midranks and accumulate the tie-correction term Σ(t³-t).
	ranks := make([]float64, len(all))
	tieTerm := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}

	r1 := 0.0
	for i, o := range all {
		if o.group == 0 {
			r1 += ranks[i]
		}
	}
	fn1, fn2 := float64(n1), float64(n2)
	u1 := r1 - fn1*(fn1+1)/2
	u2 := fn1*fn2 - u1

	mu := fn1 * fn2 / 2
	n := fn1 + fn2
	sigma2 := fn1 * fn2 / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	res := MannWhitneyResult{U: u1, U1: u1, U2: u2, N1: n1, N2: n2}
	if sigma2 <= 0 {
		// All observations tied: no evidence against the null.
		res.Z, res.P = 0, 1
		return res, nil
	}
	sigma := math.Sqrt(sigma2)
	// Continuity correction toward the mean.
	diff := u1 - mu
	switch {
	case diff > 0:
		diff -= 0.5
	case diff < 0:
		diff += 0.5
	}
	res.Z = diff / sigma
	res.P = 2 * normSurvival(math.Abs(res.Z))
	if res.P > 1 {
		res.P = 1
	}
	return res, nil
}

// normSurvival returns P(Z > z) for a standard normal variable.
func normSurvival(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// Histogram bins values into n equal-width bins over [min,max] and
// returns bin edges (n+1) and counts (n). Used by report renderers.
func Histogram(xs []float64, n int, min, max float64) (edges []float64, counts []int) {
	if n <= 0 || max <= min {
		return nil, nil
	}
	edges = make([]float64, n+1)
	counts = make([]int, n)
	width := (max - min) / float64(n)
	for i := range edges {
		edges[i] = min + float64(i)*width
	}
	for _, x := range xs {
		if x < min || x > max {
			continue
		}
		i := int((x - min) / width)
		if i == n {
			i = n - 1
		}
		counts[i]++
	}
	return edges, counts
}
