package resilience

import (
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/rng"
)

func TestClassifyError(t *testing.T) {
	cases := []struct {
		msg  string
		want Class
	}{
		{"webworld: news3.com: connection refused", Terminal},
		{`webworld: unknown domain "nope.example"`, Terminal},
		{`browser: seed ":" has no host`, Terminal},
		{"browser: parse seed: invalid URL", Terminal},
		{"no valid HTTP response", Terminal},
		{"webworld: shop9.de: temporarily unavailable", Retryable},
		{"chaos: shop9.de: read tcp: connection reset by peer", Retryable},
		{"chaos: shop9.de: transient 503 service unavailable", Retryable},
		{"chaos: shop9.de: anti-bot interstitial challenge", Retryable},
		{"i/o timeout", Retryable},
		{"request timed out", Retryable},
		// Unknown errors default to retryable: never abandon a share on
		// first sight of an unrecognized failure.
		{"", Retryable},
		{"something entirely new", Retryable},
	}
	for _, c := range cases {
		if got := ClassifyError(c.msg); got != c.want {
			t.Errorf("ClassifyError(%q) = %v, want %v", c.msg, got, c.want)
		}
	}
}

func TestClassifyCapture(t *testing.T) {
	if got := ClassifyCapture(&capture.Capture{Status: 200}); got != Success {
		t.Errorf("ok capture = %v", got)
	}
	// Soft failures the platform records as observations are Success.
	if got := ClassifyCapture(&capture.Capture{Status: 503}); got != Success {
		t.Errorf("recorded 503 page = %v", got)
	}
	if got := ClassifyCapture(&capture.Capture{Failed: true, Error: "x: temporarily unavailable"}); got != Retryable {
		t.Errorf("transient = %v", got)
	}
	if got := ClassifyCapture(&capture.Capture{Failed: true, Error: "x: connection refused"}); got != Terminal {
		t.Errorf("refused = %v", got)
	}
	if got := ClassifyCapture(nil); got != Terminal {
		t.Errorf("nil capture = %v", got)
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}
	src := rng.New(42)
	var prev []time.Duration
	for run := 0; run < 2; run++ {
		var got []time.Duration
		for retry := 1; retry <= 6; retry++ {
			d := p.Backoff(src, retry, "https://example.com/", "2019-06-01")
			// Jitter 0.5 → within [0.75, 1.25] of the nominal delay.
			nominal := float64(10*time.Millisecond) * float64(int(1)<<(retry-1))
			if nominal > float64(80*time.Millisecond) {
				nominal = float64(80 * time.Millisecond)
			}
			if float64(d) < 0.74*nominal || float64(d) > 1.26*nominal {
				t.Errorf("retry %d: delay %v outside jitter band of %v", retry, d, time.Duration(nominal))
			}
			got = append(got, d)
		}
		if run == 1 {
			for i := range got {
				if got[i] != prev[i] {
					t.Errorf("retry %d: backoff not deterministic: %v vs %v", i+1, got[i], prev[i])
				}
			}
		}
		prev = got
	}
	// Different shares draw different jitter.
	a := p.Backoff(src, 1, "https://a.com/")
	b := p.Backoff(src, 1, "https://b.com/")
	if a == b {
		t.Errorf("distinct keys drew identical jitter %v", a)
	}
}

func TestRetryPolicyZeroValueDisabled(t *testing.T) {
	var p RetryPolicy
	if p.Enabled() {
		t.Fatal("zero policy must be disabled")
	}
	if d := p.Backoff(rng.New(1), 1, "k"); d < 0 {
		t.Fatalf("negative backoff %v", d)
	}
}

func TestDeadLetterSink(t *testing.T) {
	m := NewMemDeadLetter()
	m.Add(DeadEntry{URL: "u1", Domain: "a.com", Reason: ReasonBudgetExhausted})
	m.Add(DeadEntry{URL: "u2", Domain: "a.com", Reason: ReasonCancelled})
	m.Add(DeadEntry{URL: "u3", Domain: "b.com", Reason: ReasonBudgetExhausted})
	if m.Len() != 3 {
		t.Fatalf("len = %d", m.Len())
	}
	by := m.ByReason()
	if by[ReasonBudgetExhausted] != 2 || by[ReasonCancelled] != 1 {
		t.Fatalf("by reason: %v", by)
	}
	if e := m.Entries(); len(e) != 3 || e[0].URL != "u1" {
		t.Fatalf("entries: %v", e)
	}
}
