package resilience

import (
	"sync"

	"repro/internal/simtime"
)

// Dead-letter reasons. Every share that leaves the pipeline without a
// recorded capture carries one, so operators can audit exactly what was
// lost and why — the paper's Section 3.5 does this accounting by hand
// for its toplist ("315 unreachable, 4 invalid, 70 HTTP error …").
const (
	ReasonBudgetExhausted = "budget-exhausted" // retry budget spent on transient failures
	ReasonBreakerOpen     = "breaker-open"     // domain breaker rejecting
	ReasonCancelled       = "cancelled"        // shutdown landed mid-wait or mid-backoff
	ReasonShutdownDrop    = "shutdown-drop"    // queued but never dequeued before Run returned
)

// DeadEntry is one share that exhausted its chances.
type DeadEntry struct {
	URL      string
	Domain   string
	Day      simtime.Day
	Attempts int    // loads performed before giving up
	Reason   string // one of the Reason* constants
	LastErr  string // last capture error observed, if any
}

// DeadLetterSink consumes dead-lettered shares. Implementations must be
// safe for concurrent use.
type DeadLetterSink interface {
	Add(e DeadEntry)
}

// MemDeadLetter retains dead-lettered shares in memory.
type MemDeadLetter struct {
	mu      sync.Mutex
	entries []DeadEntry
}

// NewMemDeadLetter returns an empty sink.
func NewMemDeadLetter() *MemDeadLetter { return &MemDeadLetter{} }

// Add implements DeadLetterSink.
func (m *MemDeadLetter) Add(e DeadEntry) {
	m.mu.Lock()
	m.entries = append(m.entries, e)
	m.mu.Unlock()
}

// Len returns the number of entries.
func (m *MemDeadLetter) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Entries returns a snapshot copy.
func (m *MemDeadLetter) Entries() []DeadEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]DeadEntry(nil), m.entries...)
}

// ByReason tallies entries per reason.
func (m *MemDeadLetter) ByReason() map[string]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int)
	for _, e := range m.entries {
		out[e.Reason]++
	}
	return out
}
