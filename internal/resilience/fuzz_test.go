package resilience

import (
	"strings"
	"testing"
)

// FuzzClassifyError pins the retry-classification of arbitrary —
// including malformed — webworld/browser error strings: it must be
// total (always Retryable or Terminal), stable, and case-insensitive.
// The seeds cover every error shape the substrate emits today plus
// torn/garbage variants a crashed worker might log.
func FuzzClassifyError(f *testing.F) {
	seeds := []string{
		"",
		"webworld: news3.com: connection refused",
		"webworld: shop9.de: temporarily unavailable",
		`webworld: unknown domain "nope.example"`,
		"no valid HTTP response",
		`browser: seed ":" has no host`,
		"browser: parse seed: net/url: invalid control character in URL",
		"chaos: a.com: read tcp: connection reset by peer",
		"chaos: a.com: transient 503 service unavailable",
		"chaos: a.com: anti-bot interstitial challenge",
		// Malformed: torn mid-word, embedded NULs, mixed case, huge.
		"webworld: x.com: temporarily unavai",
		"CONNECTION REFUSED\x00\xff",
		"\x00\x01\x02 503 \xfe",
		strings.Repeat("connection ", 1000) + "reset",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, msg string) {
		c := ClassifyError(msg)
		if c != Retryable && c != Terminal {
			t.Fatalf("ClassifyError(%q) = %v: classification must be total", msg, c)
		}
		if c2 := ClassifyError(msg); c2 != c {
			t.Fatalf("ClassifyError(%q) unstable: %v then %v", msg, c, c2)
		}
		if c3 := ClassifyError(strings.ToUpper(msg)); c3 != c {
			t.Fatalf("ClassifyError(%q) case-sensitive: %v vs %v", msg, c, c3)
		}
	})
}
