package resilience

import (
	"testing"
	"time"
)

// fakeClock is an adjustable breaker clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time            { return c.t }
func (c *fakeClock) advance(d time.Duration)   { c.t = c.t.Add(d) }

func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Minute, Now: clk.now})

	// Closed: everything passes; failures below threshold keep it closed.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		b.Failure()
	}
	if b.Open() {
		t.Fatal("breaker open below threshold")
	}
	// Success resets the streak.
	b.Success()
	b.Failure()
	b.Failure()
	if b.Open() {
		t.Fatal("streak did not reset on success")
	}
	// Third consecutive failure opens it.
	b.Failure()
	if !b.Open() {
		t.Fatal("breaker not open at threshold")
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request")
	}

	// After the cooldown exactly one half-open probe is admitted.
	clk.advance(time.Minute)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe rejected")
	}
	if b.Allow() {
		t.Fatal("second concurrent half-open probe admitted")
	}
	// Failed probe re-opens with a fresh cooldown.
	b.Failure()
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a request")
	}
	clk.advance(time.Minute)
	if !b.Allow() {
		t.Fatal("second probe rejected after fresh cooldown")
	}
	// Successful probe closes it fully.
	b.Success()
	if !b.Allow() || !b.Allow() {
		t.Fatal("closed breaker rejecting after successful probe")
	}
}

func TestBreakerSet(t *testing.T) {
	if s := NewBreakerSet(BreakerConfig{}); s != nil {
		t.Fatal("zero threshold must return a nil (disabled) set")
	}
	var disabled *BreakerSet
	if !disabled.Allow("a.com") {
		t.Fatal("nil set must allow")
	}
	disabled.Success("a.com") // must not panic
	disabled.Failure("a.com")
	if disabled.OpenCount() != 0 {
		t.Fatal("nil set open count")
	}

	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	s := NewBreakerSet(BreakerConfig{Threshold: 2, Cooldown: time.Minute, Now: clk.now})
	s.Failure("a.com")
	s.Failure("a.com")
	s.Failure("b.com")
	if s.Allow("a.com") {
		t.Fatal("a.com should be open")
	}
	if !s.Allow("b.com") {
		t.Fatal("b.com should still be closed")
	}
	if n := s.OpenCount(); n != 1 {
		t.Fatalf("open count = %d", n)
	}
}
