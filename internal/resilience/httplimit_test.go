package resilience

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestChaosLimiterShedsUnderSaturation saturates a slow handler behind
// the limiter: excess load is shed with 429 + Retry-After while every
// admitted request completes promptly (bounded p99 for admitted work,
// the acceptance shape for capd under a saturating client).
func TestChaosLimiterShedsUnderSaturation(t *testing.T) {
	const maxInFlight = 4
	const clients = 48
	var concurrent, peak atomic.Int64
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur := concurrent.Add(1)
		defer concurrent.Add(-1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		w.Write([]byte("ok"))
	})
	lim := NewHTTPLimiter(HTTPLimiterConfig{MaxInFlight: maxInFlight, RetryAfter: 2 * time.Second})
	srv := httptest.NewServer(lim.Wrap(slow))
	defer srv.Close()

	var wg sync.WaitGroup
	var ok, shed atomic.Int64
	var slowest atomic.Int64 // worst admitted-request latency, ns
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			resp, err := http.Get(srv.URL)
			if err != nil {
				t.Errorf("get: %v", err)
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			switch resp.StatusCode {
			case http.StatusOK:
				ok.Add(1)
				ns := time.Since(start).Nanoseconds()
				for {
					s := slowest.Load()
					if ns <= s || slowest.CompareAndSwap(s, ns) {
						break
					}
				}
			case http.StatusTooManyRequests:
				shed.Add(1)
				if resp.Header.Get("Retry-After") != "2" {
					t.Errorf("Retry-After = %q, want \"2\"", resp.Header.Get("Retry-After"))
				}
			default:
				t.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()

	if ok.Load() == 0 || shed.Load() == 0 {
		t.Fatalf("ok=%d shed=%d: saturating burst must both admit and shed", ok.Load(), shed.Load())
	}
	if ok.Load()+shed.Load() != clients {
		t.Fatalf("ok+shed = %d, want %d", ok.Load()+shed.Load(), clients)
	}
	if p := peak.Load(); p > maxInFlight {
		t.Fatalf("handler concurrency peaked at %d > limit %d", p, maxInFlight)
	}
	// Admitted requests stay bounded: the handler sleeps 20ms and at
	// most maxInFlight run at once, so even generous scheduling slack
	// keeps admitted latency well under a second.
	if worst := time.Duration(slowest.Load()); worst > 2*time.Second {
		t.Fatalf("worst admitted latency %v unbounded", worst)
	}
	st := lim.Stats()
	if st.Admitted != ok.Load() || st.Shed != shed.Load() {
		t.Fatalf("stats %+v disagree with observed ok=%d shed=%d", st, ok.Load(), shed.Load())
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight %d after drain", st.InFlight)
	}
}

func TestLimiterTimeoutCancelsRequestContext(t *testing.T) {
	done := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			close(done)
		case <-time.After(5 * time.Second):
			t.Error("request context never cancelled")
		}
	})
	lim := NewHTTPLimiter(HTTPLimiterConfig{MaxInFlight: 1, Timeout: 30 * time.Millisecond})
	srv := httptest.NewServer(lim.Wrap(h))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not observe deadline")
	}
}
