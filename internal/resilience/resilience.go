// Package resilience hardens the deployment-shaped crawl path against
// the hostile substrate the paper's platform lived on: transient
// outages, anti-bot interstitials and aggressive timeouts caused ~9% of
// toplist loads to fail (Section 3.5), and the production pipeline must
// neither lose those shares silently nor hammer a struggling domain.
//
// The package provides the four building blocks the stream pipeline and
// capd wire together:
//
//   - failure classification (Classify*): transient vs. terminal, the
//     split behind the paper's Section 3.5 loss categories;
//   - RetryPolicy: capped exponential backoff with deterministic,
//     seed-derived jitter and a bounded attempt budget;
//   - Breaker / BreakerSet: per-registrable-domain circuit breakers
//     (open after N consecutive failures, half-open probe, cooldown);
//   - DeadLetterSink: the terminal parking lot for shares that exhaust
//     their budget, so nothing is dropped without a trace.
package resilience

import (
	"strings"
	"time"

	"repro/internal/capture"
	"repro/internal/rng"
)

// Class is the retry-relevance of a capture failure.
type Class int

const (
	// Success: a usable capture was produced (including "soft"
	// failures the platform records as-is: HTTP 4xx/5xx pages,
	// anti-bot interstitial pages, geo-blocks — all real observations
	// of the web, not crawl losses).
	Success Class = iota
	// Retryable: a transient loss — outage, connection reset, timeout,
	// injected interstitial — that a later attempt may recover, as the
	// paper's toplist procedure does ("three times over a week",
	// Section 3.2).
	Retryable
	// Terminal: retrying cannot help — unknown or unreachable domain,
	// malformed seed URL, no valid HTTP response. Recorded as a failed
	// capture immediately, matching the platform's record-everything
	// behaviour.
	Terminal
)

// String returns the class label.
func (c Class) String() string {
	switch c {
	case Success:
		return "success"
	case Retryable:
		return "retryable"
	case Terminal:
		return "terminal"
	default:
		return "unknown"
	}
}

// terminalPatterns mark failures where the loss category is permanent
// (Section 3.5: invalid domains, unreachable hosts, no valid response).
// They are checked before retryablePatterns: "connection refused" must
// not be caught by a broader transient match.
var terminalPatterns = []string{
	"connection refused",
	"unknown domain",
	"has no host",
	"parse seed",
	"no valid http response",
}

// retryablePatterns mark transient losses worth another attempt.
var retryablePatterns = []string{
	"temporarily unavailable",
	"connection reset",
	"timed out",
	"timeout",
	"interstitial",
	"transient",
	"502",
	"503",
	"504",
	"429",
}

// ClassifyError classifies a capture error message. It is total and
// deterministic over arbitrary (including malformed) input: unknown
// errors default to Retryable, the standard crawler posture — a share
// is only abandoned to the dead-letter sink after its budget, never on
// first sight of an unrecognized error.
func ClassifyError(msg string) Class {
	m := strings.ToLower(msg)
	for _, p := range terminalPatterns {
		if strings.Contains(m, p) {
			return Terminal
		}
	}
	for _, p := range retryablePatterns {
		if strings.Contains(m, p) {
			return Retryable
		}
	}
	return Retryable
}

// ClassifyCapture classifies a completed browser load.
func ClassifyCapture(c *capture.Capture) Class {
	if c == nil {
		return Terminal
	}
	if !c.Failed {
		return Success
	}
	return ClassifyError(c.Error)
}

// RetryPolicy is a bounded exponential-backoff schedule. The zero value
// disables retries (MaxAttempts <= 1): every capture, failed or not, is
// recorded on the first attempt — the pipeline's historical behaviour.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget including the first
	// load; <= 1 disables retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 2s).
	MaxDelay time.Duration
	// Multiplier grows the delay per attempt (default 2).
	Multiplier float64
	// Jitter is the fraction of the delay randomized around its
	// midpoint, in (0,1] (0 means the default 0.5; negative disables
	// jitter entirely). Jitter is drawn from the pipeline's rng.Source
	// keyed by (share, attempt), so a given seed reproduces the exact
	// backoff schedule.
	Jitter float64
}

// Enabled reports whether the policy retries at all.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 1 }

// withDefaults fills unset knobs.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	switch {
	case p.Jitter == 0:
		p.Jitter = 0.5
	case p.Jitter < 0:
		p.Jitter = 0
	case p.Jitter > 1:
		p.Jitter = 1
	}
	return p
}

// Backoff returns the deterministic jittered delay before retry number
// `retry` (1-based: the delay after the first failed attempt is
// Backoff(src, 1, …)). Keys identify the share so concurrent workers
// draw independent, reorder-stable jitter.
func (p RetryPolicy) Backoff(src *rng.Source, retry int, key ...string) time.Duration {
	p = p.withDefaults()
	d := float64(p.BaseDelay)
	for i := 1; i < retry; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 && src != nil {
		u := src.Float64(append([]string{"backoff", rng.Key(retry)}, key...)...)
		d *= 1 - p.Jitter/2 + p.Jitter*u
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}
