package chaos

import (
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/rng"
)

// Node-loss chaos for the replicated capture store: a Gate sits in
// front of one storage node's handler and, while "killed", tears every
// connection the way a SIGKILLed process would (no response, no clean
// close), so clients observe genuine transport failures. A KillPlan is
// a seeded, deterministic schedule of single-node outages expressed in
// commit counts rather than wall time — the test harness applies each
// event when the writer's committed-record counter crosses the
// threshold, which makes the fault schedule independent of goroutine
// interleaving and machine speed.

// Gate wraps one node's HTTP handler with a kill switch.
type Gate struct {
	next    http.Handler
	down    atomic.Bool
	refused atomic.Int64
}

// NewGate wraps h; the gate starts alive.
func NewGate(h http.Handler) *Gate {
	return &Gate{next: h}
}

// Kill makes every subsequent request tear its connection.
func (g *Gate) Kill() { g.down.Store(true) }

// Revive restores service.
func (g *Gate) Revive() { g.down.Store(false) }

// Down reports the current state.
func (g *Gate) Down() bool { return g.down.Load() }

// Refused counts requests torn while down.
func (g *Gate) Refused() int64 { return g.refused.Load() }

// ServeHTTP tears the connection while down (http.ErrAbortHandler is
// recovered by net/http and closes the TCP stream mid-flight).
func (g *Gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.down.Load() {
		g.refused.Add(1)
		panic(http.ErrAbortHandler)
	}
	g.next.ServeHTTP(w, r)
}

// NodeEvent is one scheduled single-node outage: kill Node when the
// writer has committed at least KillAt records, revive it when the
// writer has committed at least ReviveAt.
type NodeEvent struct {
	Node     string
	KillAt   int64
	ReviveAt int64
}

// KillPlan draws a deterministic schedule of `count` single-node
// outages across `span` committed records. Outages are strictly
// sequential and disjoint (one node down at a time — the replicated
// store's declared failure domain): event i lives inside the window
// [i, i+1)·span/count, killing at a seeded point in the window's first
// half and reviving at a seeded point in its second half.
func KillPlan(seed uint64, nodes []string, count int, span int64) []NodeEvent {
	if count <= 0 || span <= 0 || len(nodes) == 0 {
		return nil
	}
	src := rng.New(seed).Derive("node-chaos")
	window := span / int64(count)
	if window < 2 {
		window = 2
	}
	events := make([]NodeEvent, 0, count)
	for i := 0; i < count; i++ {
		base := int64(i) * window
		half := window / 2
		kill := base + int64(src.Intn(int(half), "kill", rng.Key(i)))
		revive := base + half + int64(src.Intn(int(half), "revive", rng.Key(i)))
		node := nodes[src.Intn(len(nodes), "node", rng.Key(i))]
		events = append(events, NodeEvent{Node: node, KillAt: kill, ReviveAt: revive})
	}
	return events
}

// NodeChaos applies a KillPlan against live gates as the observed
// commit counter advances. Safe for concurrent Step calls.
type NodeChaos struct {
	mu     sync.Mutex
	plan   []NodeEvent
	gates  map[string]*Gate
	idx    int
	killed bool
	log    []string
}

// NewNodeChaos binds a plan to the gates it drives.
func NewNodeChaos(plan []NodeEvent, gates map[string]*Gate) *NodeChaos {
	return &NodeChaos{plan: plan, gates: gates}
}

// Step advances the schedule to the given committed-record count,
// applying any kill/revive whose threshold has been crossed. Returns
// true while events remain (killed or future).
func (c *NodeChaos) Step(committed int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.idx < len(c.plan) {
		ev := c.plan[c.idx]
		g := c.gates[ev.Node]
		if g == nil {
			c.idx++
			continue
		}
		if !c.killed {
			if committed < ev.KillAt {
				break
			}
			g.Kill()
			c.killed = true
			c.log = append(c.log, "kill "+ev.Node)
		}
		if committed < ev.ReviveAt {
			break
		}
		g.Revive()
		c.killed = false
		c.log = append(c.log, "revive "+ev.Node)
		c.idx++
	}
	return c.idx < len(c.plan) || c.killed
}

// Finish revives anything still down (end of run).
func (c *NodeChaos) Finish() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.killed && c.idx < len(c.plan) {
		c.gates[c.plan[c.idx].Node].Revive()
		c.killed = false
		c.idx++
		c.log = append(c.log, "revive "+c.plan[c.idx-1].Node)
	}
}

// Log returns the applied transitions in order.
func (c *NodeChaos) Log() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.log...)
}
