// Package chaos injects deterministic faults into the crawl pipeline,
// in the spirit of reproducible web-measurement artifacts (Web
// Execution Bundles): the substrate misbehaves, but identically on
// every run with the same seed. The injector wraps the webworld at the
// Visit boundary (added latency, transient 5xx, connection drops,
// anti-bot interstitials) and the capture store at the Record boundary
// (torn tail writes), drawing every fault from rng.Source streams keyed
// by (domain, path, day, visit-number) — per-key visit counters make
// the schedule independent of worker interleaving, so a seeded run
// reproduces the exact fault schedule byte for byte.
package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/capstore"
	"repro/internal/capture"
	"repro/internal/capturedb"
	"repro/internal/rng"
	"repro/internal/webworld"
)

// Fault kinds, as they appear in the schedule and counters.
const (
	FaultLatency = "latency"
	FaultFiveXX  = "5xx"
	FaultDrop    = "drop"
	FaultAntiBot = "antibot"
	FaultTorn    = "torn"
)

// Config parameterizes the injector. All rates are per-visit
// probabilities in [0,1]; zero disables that fault.
type Config struct {
	// Seed roots the fault schedule; independent of the world seed.
	Seed uint64
	// LatencyRate adds a deterministic real-time stall to a visit.
	LatencyRate float64
	// LatencyMax bounds the injected stall (default 2ms — enough to
	// perturb scheduling, small enough for tests).
	LatencyMax time.Duration
	// FiveXXRate fails a visit with a transient 503.
	FiveXXRate float64
	// DropRate fails a visit with a connection reset.
	DropRate float64
	// AntiBotRate fails a visit with a transient anti-bot
	// interstitial challenge.
	AntiBotRate float64
	// TornWriteRate tears a capture-store write: the record's encoded
	// tail is left crash-truncated for capstore's repair-on-open path
	// (applies to sinks wrapped with TornSink).
	TornWriteRate float64
}

// Event is one scheduled fault.
type Event struct {
	Fault string
	Key   string // domain|path|day for visits, seed URL|day for writes
	Visit int    // 0-based per-key occurrence number
}

// Counts tallies injected faults.
type Counts struct {
	Visits  int64
	Latency int64
	FiveXX  int64
	Drops   int64
	AntiBot int64
	Records int64
	Torn    int64
}

// Total returns the number of injected faults (latency included).
func (c Counts) Total() int64 {
	return c.Latency + c.FiveXX + c.Drops + c.AntiBot + c.Torn
}

// Injector draws the fault schedule. Safe for concurrent use.
type Injector struct {
	cfg Config
	src *rng.Source

	mu     sync.Mutex
	visits map[string]int // per-key occurrence counters
	events []Event
	counts Counts
}

// New returns an injector for the config.
func New(cfg Config) *Injector {
	if cfg.LatencyMax <= 0 {
		cfg.LatencyMax = 2 * time.Millisecond
	}
	return &Injector{
		cfg:    cfg,
		src:    rng.New(cfg.Seed).Derive("chaos"),
		visits: make(map[string]int),
	}
}

// next bumps and returns the 0-based occurrence number for key.
func (i *Injector) next(counterSpace, key string) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	k := counterSpace + "\x1f" + key
	n := i.visits[k]
	i.visits[k] = n + 1
	return n
}

func (i *Injector) note(e Event, bump func(*Counts)) {
	i.mu.Lock()
	i.events = append(i.events, e)
	bump(&i.counts)
	i.mu.Unlock()
}

// draw is one independent deterministic fault decision.
func (i *Injector) draw(fault string, rate float64, key string, visit int) bool {
	return rate > 0 && i.src.Bool(rate, fault, key, rng.Key(visit))
}

// Counts snapshots the fault tallies.
func (i *Injector) Counts() Counts {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.counts
}

// Schedule serializes the full fault schedule, one event per line,
// sorted so the bytes are independent of worker interleaving: two runs
// with the same seed and workload produce byte-identical schedules.
func (i *Injector) Schedule() []byte {
	i.mu.Lock()
	lines := make([]string, len(i.events))
	for j, e := range i.events {
		lines[j] = e.Fault + "\t" + e.Key + "\t" + strconv.Itoa(e.Visit) + "\n"
	}
	i.mu.Unlock()
	sort.Strings(lines)
	return []byte(strings.Join(lines, ""))
}

// Visitor is the shape of webworld.World's Visit method (structurally
// identical to browser.Visitor); declared here so chaos composes with
// anything page-shaped without importing the browser.
type Visitor interface {
	Visit(domain, path string, ctx webworld.VisitContext) (*webworld.Page, error)
}

// injVisitor wraps an upstream substrate with fault injection.
type injVisitor struct {
	inj *Injector
	up  Visitor
}

// Visitor wraps the upstream substrate (normally *webworld.World) so
// browsers built over the result experience the injected faults. Fault
// checks run in a fixed order (drop, 5xx, anti-bot, latency) with
// independent draws, so enabling one fault never perturbs another's
// schedule.
func (i *Injector) Visitor(up Visitor) Visitor {
	return &injVisitor{inj: i, up: up}
}

// Visit implements the substrate with faults ahead of the real visit.
func (v *injVisitor) Visit(domain, path string, ctx webworld.VisitContext) (*webworld.Page, error) {
	i := v.inj
	key := domain + "|" + path + "|" + ctx.Day.String()
	n := i.next("visit", key)
	i.mu.Lock()
	i.counts.Visits++
	i.mu.Unlock()

	if i.draw(FaultDrop, i.cfg.DropRate, key, n) {
		i.note(Event{Fault: FaultDrop, Key: key, Visit: n}, func(c *Counts) { c.Drops++ })
		return nil, fmt.Errorf("chaos: %s: read tcp: connection reset by peer", domain)
	}
	if i.draw(FaultFiveXX, i.cfg.FiveXXRate, key, n) {
		i.note(Event{Fault: FaultFiveXX, Key: key, Visit: n}, func(c *Counts) { c.FiveXX++ })
		return nil, fmt.Errorf("chaos: %s: transient 503 service unavailable", domain)
	}
	if i.draw(FaultAntiBot, i.cfg.AntiBotRate, key, n) {
		i.note(Event{Fault: FaultAntiBot, Key: key, Visit: n}, func(c *Counts) { c.AntiBot++ })
		return nil, fmt.Errorf("chaos: %s: anti-bot interstitial challenge", domain)
	}
	if i.draw(FaultLatency, i.cfg.LatencyRate, key, n) {
		i.note(Event{Fault: FaultLatency, Key: key, Visit: n}, func(c *Counts) { c.Latency++ })
		// Deterministic duration, real-time stall: perturbs worker
		// scheduling without touching the page's simulated timings.
		frac := i.src.Float64("latency-ms", key, rng.Key(n))
		time.Sleep(time.Duration(frac * float64(i.cfg.LatencyMax)))
	}
	return v.up.Visit(domain, path, ctx)
}

// TornSink wraps a capture store with torn-write injection. Scheduled
// records are withheld during the run and, at Close, their encoded
// bytes are appended crash-truncated to segment tails — exercising
// capstore's repair-on-open recovery end to end. At most one tear lands
// per segment file (tail repair fixes only final lines); tears beyond
// that count as plain lost writes.
type TornSink struct {
	inj   *Injector
	store *capstore.Store

	mu      sync.Mutex
	pending [][]byte // encoded lines scheduled to tear
	lost    int      // tears beyond the per-segment capacity
}

// TornSink wraps the store. The result implements capture.Sink; call
// its Close (not the store's) so the scheduled tears land.
func (i *Injector) TornSink(store *capstore.Store) *TornSink {
	return &TornSink{inj: i, store: store}
}

// Record implements capture.Sink.
func (t *TornSink) Record(c *capture.Capture) {
	i := t.inj
	i.mu.Lock()
	i.counts.Records++
	i.mu.Unlock()
	key := c.SeedURL + "|" + c.Day.String()
	n := i.next("write", key)
	if i.draw(FaultTorn, i.cfg.TornWriteRate, key, n) {
		line, err := capturedb.Encode(c)
		if err != nil {
			t.store.Record(c) // unencodable: let the store surface it
			return
		}
		i.note(Event{Fault: FaultTorn, Key: key, Visit: n}, func(c *Counts) { c.Torn++ })
		t.mu.Lock()
		t.pending = append(t.pending, line)
		t.mu.Unlock()
		return
	}
	t.store.Record(c)
}

// Close closes the store, then appends each scheduled torn record —
// truncated at a deterministic offset — to a distinct segment tail, as
// a crash mid-write would leave it.
func (t *TornSink) Close() error {
	if err := t.store.Close(); err != nil {
		return err
	}
	segs, err := filepath.Glob(filepath.Join(t.store.Dir(), "*.jsonl"))
	if err != nil {
		return err
	}
	sort.Strings(segs)
	t.mu.Lock()
	pending := t.pending
	t.mu.Unlock()
	for j, line := range pending {
		if j >= len(segs) {
			t.mu.Lock()
			t.lost++
			t.mu.Unlock()
			continue
		}
		// Tear somewhere strictly inside the record so the fragment has
		// no trailing newline: 1 ≤ cut ≤ len-2 (len includes '\n').
		cut := 1
		if len(line) > 2 {
			cut = 1 + t.inj.src.Intn(len(line)-2, "torn-cut", strconv.Itoa(j))
		}
		f, err := os.OpenFile(segs[j], os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write(line[:cut]); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// Torn returns how many tears were scheduled and landed on a segment.
func (t *TornSink) Torn() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.pending) - t.lost
	if n < 0 {
		n = 0
	}
	return n
}

// Lost returns tears that exceeded per-segment capacity (plain lost
// writes).
func (t *TornSink) Lost() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lost
}

// ParseSpec parses the -chaos CLI flag: comma-separated key=value
// pairs, e.g. "5xx=0.05,drop=0.02,antibot=0.01,latency=0.05,
// latmax=5ms,torn=0.01,seed=7". Unknown keys are errors; an empty spec
// yields a zero config.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return cfg, fmt.Errorf("chaos: bad spec element %q (want key=value)", part)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		switch k {
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("chaos: bad seed %q", v)
			}
			cfg.Seed = n
		case "latmax":
			d, err := time.ParseDuration(v)
			if err != nil {
				return cfg, fmt.Errorf("chaos: bad latmax %q", v)
			}
			cfg.LatencyMax = d
		case FaultLatency, FaultFiveXX, FaultDrop, FaultAntiBot, FaultTorn:
			rate, err := strconv.ParseFloat(v, 64)
			if err != nil || rate < 0 || rate > 1 {
				return cfg, fmt.Errorf("chaos: bad rate %s=%q (want [0,1])", k, v)
			}
			switch k {
			case FaultLatency:
				cfg.LatencyRate = rate
			case FaultFiveXX:
				cfg.FiveXXRate = rate
			case FaultDrop:
				cfg.DropRate = rate
			case FaultAntiBot:
				cfg.AntiBotRate = rate
			case FaultTorn:
				cfg.TornWriteRate = rate
			}
		default:
			return cfg, fmt.Errorf("chaos: unknown spec key %q", k)
		}
	}
	return cfg, nil
}
