package chaos

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/capstore"
	"repro/internal/capture"
	"repro/internal/simtime"
	"repro/internal/webworld"
)

// visitSweep visits the same workload through an injector-wrapped
// world, from `workers` goroutines in nondeterministic order.
func visitSweep(t *testing.T, inj *Injector, w *webworld.World, domains int, workers int) {
	t.Helper()
	v := inj.Visitor(w)
	var wg sync.WaitGroup
	work := make(chan string, domains)
	for _, d := range w.Domains()[:domains] {
		work <- d.Name
	}
	close(work)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for name := range work {
				for day := simtime.Day(10); day < 13; day++ {
					v.Visit(name, "/", webworld.VisitContext{Day: day, Geo: webworld.GeoEU, Cloud: true}) //nolint:errcheck
				}
			}
		}()
	}
	wg.Wait()
}

// TestChaosScheduleDeterministic: the full fault schedule is
// byte-identical across two runs with the same seed, regardless of
// worker interleaving.
func TestChaosScheduleDeterministic(t *testing.T) {
	w := webworld.New(webworld.Config{Seed: 1, Domains: 600})
	cfg := Config{Seed: 7, FiveXXRate: 0.05, DropRate: 0.02, AntiBotRate: 0.01, LatencyRate: 0.03, LatencyMax: 100 * time.Microsecond}

	var schedules [][]byte
	for run := 0; run < 2; run++ {
		inj := New(cfg)
		visitSweep(t, inj, w, 600, 2+run*6) // different worker counts on purpose
		schedules = append(schedules, inj.Schedule())
	}
	if len(schedules[0]) == 0 {
		t.Fatal("no faults scheduled at these rates over 1800 visits")
	}
	if !bytes.Equal(schedules[0], schedules[1]) {
		t.Fatalf("fault schedules differ between same-seed runs:\n%d bytes vs %d bytes",
			len(schedules[0]), len(schedules[1]))
	}
	// A different seed yields a different schedule.
	inj := New(Config{Seed: 8, FiveXXRate: 0.05, DropRate: 0.02, AntiBotRate: 0.01})
	visitSweep(t, inj, w, 600, 4)
	if bytes.Equal(schedules[0], inj.Schedule()) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestChaosFaultRates: injected fault frequencies land near their
// configured rates, and the error text of each fault classifies as the
// transient failure it models.
func TestChaosFaultRates(t *testing.T) {
	w := webworld.New(webworld.Config{Seed: 1, Domains: 2_000})
	inj := New(Config{Seed: 3, FiveXXRate: 0.05, DropRate: 0.02, AntiBotRate: 0.01})
	visitSweep(t, inj, w, 2_000, 8)
	c := inj.Counts()
	if c.Visits != 6_000 {
		t.Fatalf("visits = %d", c.Visits)
	}
	within := func(name string, got int64, rate float64) {
		want := rate * float64(c.Visits)
		if float64(got) < 0.5*want || float64(got) > 1.6*want {
			t.Errorf("%s = %d, want ≈%.0f", name, got, want)
		}
	}
	within("5xx", c.FiveXX, 0.05)
	// Drop and anti-bot draw after 5xx on independent streams, so their
	// observed rate is conditioned only on earlier faults not firing.
	within("drops", c.Drops, 0.02*0.95)
	within("antibot", c.AntiBot, 0.01*0.95)
}

func TestChaosFaultErrorsAreTransient(t *testing.T) {
	w := webworld.New(webworld.Config{Seed: 1, Domains: 50})
	inj := New(Config{Seed: 1, DropRate: 1})
	v := inj.Visitor(w)
	_, err := v.Visit(w.DomainAt(1).Name, "/", webworld.VisitContext{Day: 10, Geo: webworld.GeoUS})
	if err == nil {
		t.Fatal("rate-1 drop did not fail the visit")
	}
	// The classification contract lives in resilience; here we pin the
	// message shape it keys on.
	if !bytes.Contains([]byte(err.Error()), []byte("connection reset")) {
		t.Fatalf("drop error %q lacks transient marker", err)
	}
}

// TestChaosTornWriteRepair runs the full torn-write cycle: records flow
// through a TornSink into a real store, scheduled tears land as
// crash-truncated segment tails at Close, and reopening repairs exactly
// the torn tails while preserving every completed record.
func TestChaosTornWriteRepair(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := capstore.Create(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	inj := New(Config{Seed: 11, TornWriteRate: 0.02})
	sink := inj.TornSink(st)

	const n = 400
	for i := 0; i < n; i++ {
		sink.Record(&capture.Capture{
			SeedURL:     fmt.Sprintf("https://www.site%d.com/", i),
			FinalURL:    fmt.Sprintf("https://www.site%d.com/", i),
			FinalDomain: fmt.Sprintf("site%d.com", i),
			Day:         simtime.Day(100 + i%5),
			Vantage:     capture.EUCloud,
			Status:      200,
		})
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	torn, lost := sink.Torn(), sink.Lost()
	if torn == 0 {
		t.Fatalf("no tears scheduled over %d writes at 2%%", n)
	}
	if torn > 4 {
		t.Fatalf("torn = %d exceeds segment count", torn)
	}

	re, err := capstore.Open(dir)
	if err != nil {
		t.Fatalf("reopen after torn tails: %v", err)
	}
	defer re.Close()
	stats := re.Stats()
	if int(stats.TruncatedTails) != torn {
		t.Errorf("repaired %d tails, want %d", stats.TruncatedTails, torn)
	}
	if want := int64(n - torn - lost); stats.Records != want {
		t.Errorf("records after repair = %d, want %d", stats.Records, want)
	}
	// Torn writes appear in the schedule like any other fault.
	if c := inj.Counts(); int(c.Torn) != torn+lost {
		t.Errorf("counts.Torn = %d, want %d", c.Torn, torn+lost)
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("5xx=0.05, drop=0.02,antibot=0.01,latency=0.05,latmax=5ms,torn=0.01,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 7, FiveXXRate: 0.05, DropRate: 0.02, AntiBotRate: 0.01,
		LatencyRate: 0.05, LatencyMax: 5 * time.Millisecond, TornWriteRate: 0.01}
	if cfg != want {
		t.Fatalf("cfg = %+v, want %+v", cfg, want)
	}
	if c, err := ParseSpec(""); err != nil || c != (Config{}) {
		t.Fatalf("empty spec: %+v, %v", c, err)
	}
	for _, bad := range []string{"nope=1", "drop=2", "drop", "seed=x", "latmax=fast"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q did not error", bad)
		}
	}
}
