package resilience

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestBreakerTransitionMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	now := time.Unix(0, 0)
	cfg := BreakerConfig{Threshold: 2, Cooldown: time.Second, Now: func() time.Time { return now }}
	s := NewBreakerSet(cfg)
	s.RegisterMetrics(reg)
	m := s.cfg.Metrics

	// Two failures trip the breaker open.
	s.Failure("example.com")
	s.Failure("example.com")
	if got := m.Opened.Value(); got != 1 {
		t.Errorf("opened = %d, want 1", got)
	}
	if s.OpenCount() != 1 {
		t.Errorf("open count = %d, want 1", s.OpenCount())
	}
	// Cooldown expiry admits a half-open probe; its failure re-opens.
	now = now.Add(time.Second)
	if !s.Allow("example.com") {
		t.Fatal("cooldown expiry should admit a probe")
	}
	if got := m.HalfOpen.Value(); got != 1 {
		t.Errorf("half-open = %d, want 1", got)
	}
	s.Failure("example.com")
	if got := m.Opened.Value(); got != 2 {
		t.Errorf("opened after failed probe = %d, want 2", got)
	}
	// A successful probe closes it.
	now = now.Add(time.Second)
	if !s.Allow("example.com") {
		t.Fatal("second probe should be admitted")
	}
	s.Success("example.com")
	if got := m.Closed.Value(); got != 1 {
		t.Errorf("closed = %d, want 1", got)
	}
	// A success on an already-closed breaker is not a transition.
	s.Success("example.com")
	if got := m.Closed.Value(); got != 1 {
		t.Errorf("closed after steady-state success = %d, want 1", got)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"resilience_breaker_opened_total 2",
		"resilience_breakers_tracked 1",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, buf.String())
		}
	}
}

// RegisterMetrics must patch breakers created before AND after the
// call, and stay race-free against concurrent breaker traffic.
func TestBreakerSetRegisterMetricsConcurrent(t *testing.T) {
	s := NewBreakerSet(BreakerConfig{Threshold: 1})
	s.Failure("pre-existing.com")
	reg := obs.NewRegistry()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		s.RegisterMetrics(reg)
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			s.Failure("busy.com")
			s.Allow("busy.com")
		}
	}()
	wg.Wait()
	s.Failure("post.com") // created after registration: must be metered
	if got := s.cfg.Metrics.Opened.Value(); got < 1 {
		t.Errorf("opened = %d, want >= 1", got)
	}
}

func TestHTTPLimiterMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	l := NewHTTPLimiter(HTTPLimiterConfig{MaxInFlight: 1})
	l.RegisterMetrics(reg)

	release := make(chan struct{})
	inside := make(chan struct{})
	h := l.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(inside)
		<-release
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	errc := make(chan error, 1)
	go func() {
		resp, err := http.Get(srv.URL)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-inside
	// Second request while the first holds the only slot: shed.
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429", resp.StatusCode)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"resilience_http_in_flight 1",
		"resilience_http_max_in_flight 1",
		"resilience_http_admitted_total 1",
		"resilience_http_shed_total 1",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, buf.String())
		}
	}
	close(release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}
