package resilience

import "repro/internal/obs"

// BreakerMetrics counts circuit-breaker state transitions. A nil
// *BreakerMetrics is the no-op recorder, so breakers carry no feature
// flag for disabled telemetry.
type BreakerMetrics struct {
	// Opened counts transitions into the open state (threshold trips
	// and failed half-open probes re-opening).
	Opened *obs.Counter
	// HalfOpen counts cooldown expiries admitting a half-open probe.
	HalfOpen *obs.Counter
	// Closed counts successes that closed a non-closed breaker.
	Closed *obs.Counter
}

// NewBreakerMetrics registers the transition counters on reg; returns
// nil (the no-op recorder) when reg is nil.
func NewBreakerMetrics(reg *obs.Registry) *BreakerMetrics {
	if reg == nil {
		return nil
	}
	return &BreakerMetrics{
		Opened: obs.NewCounter(reg, "resilience_breaker_opened_total",
			"Breaker transitions into the open state."),
		HalfOpen: obs.NewCounter(reg, "resilience_breaker_half_open_total",
			"Cooldown expiries admitting a half-open probe."),
		Closed: obs.NewCounter(reg, "resilience_breaker_closed_total",
			"Successes closing a previously open or half-open breaker."),
	}
}

func (m *BreakerMetrics) opened() {
	if m != nil {
		m.Opened.Inc()
	}
}

func (m *BreakerMetrics) halfOpen() {
	if m != nil {
		m.HalfOpen.Inc()
	}
}

func (m *BreakerMetrics) closed() {
	if m != nil {
		m.Closed.Inc()
	}
}

// RegisterMetrics publishes the set's live breaker state on reg as
// gauges and attaches transition counters to every breaker, existing
// and future. Nil-safe on both receiver and registry.
func (s *BreakerSet) RegisterMetrics(reg *obs.Registry) {
	if s == nil || reg == nil {
		return
	}
	m := NewBreakerMetrics(reg)
	s.mu.Lock()
	s.cfg.Metrics = m
	for _, b := range s.m {
		b.mu.Lock()
		b.cfg.Metrics = m
		b.mu.Unlock()
	}
	s.mu.Unlock()
	obs.NewGaugeFunc(reg, "resilience_breakers_open",
		"Per-domain circuit breakers currently open (rejecting).",
		func() float64 { return float64(s.OpenCount()) })
	obs.NewGaugeFunc(reg, "resilience_breakers_tracked",
		"Domains with an instantiated circuit breaker.",
		func() float64 {
			s.mu.Lock()
			n := len(s.m)
			s.mu.Unlock()
			return float64(n)
		})
}

// RegisterMetrics publishes the limiter's admission-queue state on
// reg: requests in flight, capacity, and the cumulative admitted/shed
// counters. Nil-safe on both receiver and registry.
func (l *HTTPLimiter) RegisterMetrics(reg *obs.Registry) {
	if l == nil || reg == nil {
		return
	}
	obs.NewGaugeFunc(reg, "resilience_http_in_flight",
		"Admitted requests currently being served.",
		func() float64 { return float64(l.inFlight.Load()) })
	obs.NewGaugeFunc(reg, "resilience_http_max_in_flight",
		"Concurrent-request ceiling before load shedding.",
		func() float64 { return float64(l.cfg.MaxInFlight) })
	obs.NewCounterFunc(reg, "resilience_http_admitted_total",
		"Requests admitted past the limiter.", l.admitted.Load)
	obs.NewCounterFunc(reg, "resilience_http_shed_total",
		"Requests shed with 429 + Retry-After.", l.shed.Load)
}
