package resilience

import (
	"sync"
	"time"
)

// BreakerConfig parameterizes per-domain circuit breakers. A zero (or
// negative) Threshold disables breaking entirely.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that opens the
	// breaker.
	Threshold int
	// Cooldown is how long an open breaker rejects before allowing a
	// half-open probe (default 30s).
	Cooldown time.Duration
	// Now is the clock, injectable for deterministic tests (default
	// time.Now).
	Now func() time.Time
	// Metrics receives state-transition counts; nil disables recording
	// (see BreakerSet.RegisterMetrics for wiring a whole set).
	Metrics *BreakerMetrics
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// breakerState is the classic three-state machine.
type breakerState int

const (
	stateClosed breakerState = iota
	stateOpen
	stateHalfOpen
)

// Breaker is one domain's circuit breaker. Closed passes everything;
// after Threshold consecutive failures it opens and rejects; after
// Cooldown it admits a single half-open probe whose outcome closes or
// re-opens it.
type Breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	state    breakerState
	fails    int // consecutive failures
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a request may proceed. In the half-open state
// exactly one probe is admitted; its Success/Failure resolves the
// state for everyone else.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return true
	case stateOpen:
		if b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
			b.state = stateHalfOpen
			b.probing = true
			b.cfg.Metrics.halfOpen()
			return true
		}
		return false
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a successful request: the breaker closes and the
// failure streak resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != stateClosed {
		b.cfg.Metrics.closed()
	}
	b.state = stateClosed
	b.fails = 0
	b.probing = false
}

// Failure records a failed request; the breaker opens when the streak
// reaches the threshold, and a failed half-open probe re-opens it with
// a fresh cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.state == stateHalfOpen || (b.cfg.Threshold > 0 && b.fails >= b.cfg.Threshold) {
		if b.state != stateOpen {
			b.cfg.Metrics.opened()
		}
		b.state = stateOpen
		b.openedAt = b.cfg.Now()
		b.probing = false
	}
}

// Open reports whether the breaker currently rejects (open and still
// cooling down).
func (b *Breaker) Open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == stateOpen && b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown
}

// BreakerSet keys breakers by registrable domain, creating them
// lazily. Nil-safe: a nil set allows everything.
type BreakerSet struct {
	mu  sync.Mutex
	cfg BreakerConfig
	m   map[string]*Breaker
}

// NewBreakerSet returns an empty set, or nil when the config disables
// breaking (Threshold <= 0) so callers can branch on set == nil.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	if cfg.Threshold <= 0 {
		return nil
	}
	return &BreakerSet{cfg: cfg.withDefaults(), m: make(map[string]*Breaker)}
}

// get returns the domain's breaker, creating it on first use.
func (s *BreakerSet) get(domain string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.m[domain]
	if b == nil {
		b = NewBreaker(s.cfg)
		s.m[domain] = b
	}
	return b
}

// Allow reports whether the domain may be crawled now.
func (s *BreakerSet) Allow(domain string) bool {
	if s == nil {
		return true
	}
	return s.get(domain).Allow()
}

// Success records a successful crawl of the domain.
func (s *BreakerSet) Success(domain string) {
	if s == nil {
		return
	}
	s.get(domain).Success()
}

// Failure records a failed crawl of the domain.
func (s *BreakerSet) Failure(domain string) {
	if s == nil {
		return
	}
	s.get(domain).Failure()
}

// OpenCount returns how many breakers are currently open.
func (s *BreakerSet) OpenCount() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	breakers := make([]*Breaker, 0, len(s.m))
	for _, b := range s.m {
		breakers = append(breakers, b)
	}
	s.mu.Unlock()
	n := 0
	for _, b := range breakers {
		if b.Open() {
			n++
		}
	}
	return n
}
