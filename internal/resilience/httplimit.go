package resilience

import (
	"context"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// HTTPLimiterConfig parameterizes graceful degradation for an HTTP
// service: admit up to MaxInFlight concurrent requests, shed the rest
// immediately with 429 + Retry-After (load shedding beats queueing —
// queued requests would time out anyway and take the server's memory
// with them), and bound each admitted request with a context deadline.
type HTTPLimiterConfig struct {
	// MaxInFlight is the concurrent-request ceiling (default 64).
	MaxInFlight int
	// RetryAfter is the client backoff hint sent with 429 responses
	// (default 1s; rounded up to whole seconds for the header).
	RetryAfter time.Duration
	// Timeout is the per-request context deadline; 0 disables.
	// Handlers observe it through r.Context() so streaming responses
	// are cut rather than buffered.
	Timeout time.Duration
}

func (c HTTPLimiterConfig) withDefaults() HTTPLimiterConfig {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// HTTPLimiter is a concurrency limiter with shed counters.
type HTTPLimiter struct {
	cfg HTTPLimiterConfig
	sem chan struct{}

	inFlight atomic.Int64
	admitted atomic.Int64
	shed     atomic.Int64
}

// NewHTTPLimiter returns a limiter for the config.
func NewHTTPLimiter(cfg HTTPLimiterConfig) *HTTPLimiter {
	cfg = cfg.withDefaults()
	return &HTTPLimiter{cfg: cfg, sem: make(chan struct{}, cfg.MaxInFlight)}
}

// Wrap applies admission control and the per-request deadline to next.
func (l *HTTPLimiter) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case l.sem <- struct{}{}:
		default:
			l.shed.Add(1)
			secs := int((l.cfg.RetryAfter + time.Second - 1) / time.Second)
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			http.Error(w, "server saturated, retry later", http.StatusTooManyRequests)
			return
		}
		defer func() { <-l.sem }()
		l.admitted.Add(1)
		l.inFlight.Add(1)
		defer l.inFlight.Add(-1)
		if l.cfg.Timeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), l.cfg.Timeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		next.ServeHTTP(w, r)
	})
}

// LimiterStats is a counter snapshot.
type LimiterStats struct {
	InFlight    int64 `json:"in_flight"`
	MaxInFlight int   `json:"max_in_flight"`
	Admitted    int64 `json:"admitted"`
	Shed        int64 `json:"shed"`
}

// Stats snapshots the limiter.
func (l *HTTPLimiter) Stats() LimiterStats {
	return LimiterStats{
		InFlight:    l.inFlight.Load(),
		MaxInFlight: l.cfg.MaxInFlight,
		Admitted:    l.admitted.Load(),
		Shed:        l.shed.Load(),
	}
}

// Saturated reports whether the limiter is at capacity right now.
func (l *HTTPLimiter) Saturated() bool {
	return l.inFlight.Load() >= int64(l.cfg.MaxInFlight)
}
