// Package socialfeed simulates the URL stream that seeds Netograph's
// crawlers: all URLs shared on Reddit plus 1% of public tweets via
// Twitter's sample feed (Section 3.4). Popular URLs are re-shared and
// retweeted, so the sample skews heavily towards popular domains —
// modelled as a Zipf distribution over the shareable domain universe.
//
// The feed applies the platform's dedup rules: a URL is skipped if the
// same domain was captured in the last hour or the precise URL in the
// last 48 hours (this drops about 40% of submissions).
package socialfeed

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/webworld"
)

// Platform is the social network a share came from.
type Platform int

const (
	Twitter Platform = iota
	Reddit
)

func (p Platform) String() string {
	if p == Reddit {
		return "reddit"
	}
	return "twitter"
}

// twitterShare is the fraction of URLs from Twitter ("Twitter accounts
// for 80% of all URLs").
const twitterShare = 0.80

// Share is one URL submission that passed dedup.
type Share struct {
	URL      string
	Domain   string // registrable domain of the shared URL
	Platform Platform
	// Hour is the hour-of-day the share was observed.
	Hour int
}

// Config parameterizes the feed.
type Config struct {
	Seed uint64
	// SharesPerDay is the raw number of share events ingested per day,
	// before dedup. The paper's platform ingested ~175k/day; the
	// default reproduction scale is 2,000/day.
	SharesPerDay int
	// ZipfExponent controls popularity skew (default 0.92).
	ZipfExponent float64
}

// DefaultConfig returns the default reproduction scale.
func DefaultConfig() Config {
	return Config{Seed: 1, SharesPerDay: 2_500, ZipfExponent: 1.0}
}

// Feed generates the daily share stream. Days must be consumed in
// increasing order for the cross-day dedup state to be meaningful.
type Feed struct {
	cfg       Config
	src       *rng.Source
	shareable []*webworld.Domain // in true-rank order
	zipf      *rng.Zipf

	// Dedup state. Keys are pruned as days advance.
	lastURLDay     map[string]simtime.Day
	lastDomainHour map[string]int64

	// Skipped counts submissions dropped by dedup.
	Skipped int64
	// Submitted counts raw submissions.
	Submitted int64
}

// New builds a feed over the world's shareable domains.
func New(w *webworld.World, cfg Config) *Feed {
	if cfg.SharesPerDay <= 0 {
		cfg.SharesPerDay = DefaultConfig().SharesPerDay
	}
	if cfg.ZipfExponent <= 0 {
		cfg.ZipfExponent = DefaultConfig().ZipfExponent
	}
	var shareable []*webworld.Domain
	for _, d := range w.Domains() {
		if !d.NeverShared {
			shareable = append(shareable, d)
		}
	}
	return &Feed{
		cfg:            cfg,
		src:            rng.New(cfg.Seed).Derive("socialfeed"),
		shareable:      shareable,
		zipf:           rng.NewZipf(len(shareable), cfg.ZipfExponent),
		lastURLDay:     make(map[string]simtime.Day),
		lastDomainHour: make(map[string]int64),
	}
}

// NumShareable returns how many domains can ever appear in the feed.
func (f *Feed) NumShareable() int { return len(f.shareable) }

// Day produces the deduplicated shares for one day.
func (f *Feed) Day(day simtime.Day) []Share {
	r := f.src.Stream("day", day.String())
	shares := make([]Share, 0, f.cfg.SharesPerDay)
	for i := 0; i < f.cfg.SharesPerDay; i++ {
		f.Submitted++
		d := f.shareable[f.zipf.Rank(r)-1]
		hour := r.Intn(24)
		subsite := r.Intn(d.Subsites)
		u := fmt.Sprintf("https://www.%s%s", d.Name, d.SubsitePath(subsite))
		if r.Float64() < 0.12 {
			// Some shares carry tracking query parameters; the URL
			// dedup key is the precise URL, so these pass.
			u += fmt.Sprintf("?utm_source=%s&ref=%d", Platform(btoi(r.Float64() >= twitterShare)), r.Intn(1_000))
		}

		absHour := int64(day)*24 + int64(hour)
		if h, ok := f.lastDomainHour[d.Name]; ok && absHour-h < 1 {
			f.Skipped++
			continue
		}
		if dd, ok := f.lastURLDay[u]; ok && day-dd < 2 {
			f.Skipped++
			continue
		}
		f.lastDomainHour[d.Name] = absHour
		f.lastURLDay[u] = day

		p := Twitter
		if r.Float64() >= twitterShare {
			p = Reddit
		}
		shares = append(shares, Share{URL: u, Domain: d.Name, Platform: p, Hour: hour})
	}
	f.prune(day)
	return shares
}

// prune drops dedup entries too old to matter.
func (f *Feed) prune(day simtime.Day) {
	for u, d := range f.lastURLDay {
		if day-d >= 2 {
			delete(f.lastURLDay, u)
		}
	}
	cutoff := (int64(day) - 1) * 24
	for dom, h := range f.lastDomainHour {
		if h < cutoff {
			delete(f.lastDomainHour, dom)
		}
	}
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}
