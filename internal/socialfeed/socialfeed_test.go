package socialfeed

import (
	"strings"
	"testing"

	"repro/internal/simtime"
	"repro/internal/webworld"
)

func feedWorld(t *testing.T) *webworld.World {
	t.Helper()
	return webworld.New(webworld.Config{Seed: 1, Domains: 3_000})
}

func TestFeedBasics(t *testing.T) {
	w := feedWorld(t)
	f := New(w, Config{Seed: 1, SharesPerDay: 500})
	if f.NumShareable() == 0 || f.NumShareable() >= w.NumDomains() {
		t.Fatalf("shareable = %d of %d", f.NumShareable(), w.NumDomains())
	}
	shares := f.Day(0)
	if len(shares) == 0 || len(shares) > 500 {
		t.Fatalf("day 0 shares = %d", len(shares))
	}
	for _, s := range shares {
		if !strings.HasPrefix(s.URL, "https://www.") {
			t.Fatalf("malformed URL %q", s.URL)
		}
		if w.Domain(s.Domain) == nil {
			t.Fatalf("unknown domain %q", s.Domain)
		}
		if s.Hour < 0 || s.Hour > 23 {
			t.Fatalf("hour %d", s.Hour)
		}
	}
}

func TestNeverSharedExcluded(t *testing.T) {
	w := feedWorld(t)
	f := New(w, Config{Seed: 2, SharesPerDay: 2_000})
	for day := simtime.Day(0); day < 20; day++ {
		for _, s := range f.Day(day) {
			if w.Domain(s.Domain).NeverShared {
				t.Fatalf("never-shared domain %q appeared in feed", s.Domain)
			}
		}
	}
}

func TestDedupRules(t *testing.T) {
	w := feedWorld(t)
	f := New(w, Config{Seed: 3, SharesPerDay: 3_000})
	// With heavy volume over few domains, dedup must kick in.
	seenURL := map[string]simtime.Day{}
	for day := simtime.Day(0); day < 5; day++ {
		perDomainHour := map[string]map[int]int{}
		for _, s := range f.Day(day) {
			if d, ok := seenURL[s.URL]; ok && day-d < 2 {
				t.Fatalf("URL %q re-captured within 48h", s.URL)
			}
			seenURL[s.URL] = day
			if perDomainHour[s.Domain] == nil {
				perDomainHour[s.Domain] = map[int]int{}
			}
			perDomainHour[s.Domain][s.Hour]++
			if perDomainHour[s.Domain][s.Hour] > 1 {
				t.Fatalf("domain %q captured twice in hour %d", s.Domain, s.Hour)
			}
		}
	}
	if f.Skipped == 0 {
		t.Error("dedup should skip some submissions at this volume")
	}
	skipRate := float64(f.Skipped) / float64(f.Submitted)
	if skipRate < 0.05 || skipRate > 0.9 {
		t.Errorf("skip rate = %.2f, implausible", skipRate)
	}
}

func TestPopularitySkew(t *testing.T) {
	w := feedWorld(t)
	f := New(w, Config{Seed: 4, SharesPerDay: 2_000, ZipfExponent: 1.0})
	counts := map[string]int{}
	for day := simtime.Day(0); day < 30; day++ {
		for _, s := range f.Day(day) {
			counts[s.Domain]++
		}
	}
	headShares, tailShares := 0, 0
	for _, d := range w.Domains() {
		if d.NeverShared {
			continue
		}
		if d.Rank <= 300 {
			headShares += counts[d.Name]
		} else if d.Rank > 1500 {
			tailShares += counts[d.Name]
		}
	}
	if headShares <= tailShares {
		t.Errorf("head shares (%d) must exceed tail shares (%d)", headShares, tailShares)
	}
	if tailShares == 0 {
		t.Error("tail must still be sampled occasionally")
	}
}

func TestPlatformMix(t *testing.T) {
	w := feedWorld(t)
	f := New(w, Config{Seed: 5, SharesPerDay: 4_000})
	tw, rd := 0, 0
	for day := simtime.Day(0); day < 10; day++ {
		for _, s := range f.Day(day) {
			if s.Platform == Twitter {
				tw++
			} else {
				rd++
			}
		}
	}
	share := float64(tw) / float64(tw+rd)
	if share < 0.75 || share > 0.85 {
		t.Errorf("Twitter share = %.2f, want ≈0.80", share)
	}
}

func TestFeedDeterminism(t *testing.T) {
	w := feedWorld(t)
	a := New(w, Config{Seed: 6, SharesPerDay: 300})
	b := New(w, Config{Seed: 6, SharesPerDay: 300})
	for day := simtime.Day(0); day < 3; day++ {
		sa, sb := a.Day(day), b.Day(day)
		if len(sa) != len(sb) {
			t.Fatalf("day %d: %d vs %d shares", day, len(sa), len(sb))
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("day %d share %d differs", day, i)
			}
		}
	}
}
