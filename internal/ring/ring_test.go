package ring

import (
	"fmt"
	"reflect"
	"testing"
)

func mustNew(t testing.TB, cfg Config) *Ring {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node-%02d", i)
	}
	return out
}

func TestPlacementTotalAndDistinct(t *testing.T) {
	r := mustNew(t, Config{Seed: 7, Nodes: names(5), Replicas: 3})
	for i := 0; i < 1000; i++ {
		p := r.Place(fmt.Sprintf("key-%d", i))
		if len(p) != 3 {
			t.Fatalf("key-%d placed on %d nodes, want 3", i, len(p))
		}
		seen := map[string]bool{}
		for _, n := range p {
			if seen[n] {
				t.Fatalf("key-%d placement repeats node %s: %v", i, n, p)
			}
			seen[n] = true
		}
	}
}

func TestPlacementStable(t *testing.T) {
	a := mustNew(t, Config{Seed: 7, Nodes: names(4), Replicas: 2})
	b := mustNew(t, Config{Seed: 7, Nodes: []string{"node-03", "node-01", "node-00", "node-02"}, Replicas: 2})
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("seg-%d", i)
		if got, want := b.Place(k), a.Place(k); !reflect.DeepEqual(got, want) {
			t.Fatalf("placement depends on node enumeration order: %v vs %v", got, want)
		}
	}
}

func TestSeedSeparation(t *testing.T) {
	a := mustNew(t, Config{Seed: 1, Nodes: names(6), Replicas: 2})
	b := mustNew(t, Config{Seed: 2, Nodes: names(6), Replicas: 2})
	same := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		if reflect.DeepEqual(a.Place(k), b.Place(k)) {
			same++
		}
	}
	if same == keys {
		t.Fatalf("seed has no effect on placement")
	}
}

// TestNodeAddMovesBoundedKeys is the consistent-hashing contract: when
// a node joins, the only keys whose primary changes are those the new
// node takes over — roughly 1/N of them — and every changed placement
// includes the new node.
func TestNodeAddMovesBoundedKeys(t *testing.T) {
	const keys = 5000
	before := mustNew(t, Config{Seed: 11, Nodes: names(8), Replicas: 2})
	after := mustNew(t, Config{Seed: 11, Nodes: append(names(8), "node-99"), Replicas: 2})
	movedPrimary := 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		pb, pa := before.Place(k), after.Place(k)
		if pb[0] != pa[0] {
			movedPrimary++
			if pa[0] != "node-99" {
				t.Fatalf("key %s primary moved %s→%s without the new node claiming it", k, pb[0], pa[0])
			}
		}
		// Any placement change must be caused by the new node's
		// insertion: the after-set minus the new node must be a subset
		// of the before-set.
		inBefore := map[string]bool{}
		for _, n := range pb {
			inBefore[n] = true
		}
		for _, n := range pa {
			if n != "node-99" && !inBefore[n] {
				t.Fatalf("key %s gained node %s that neither held it before nor is the new node (%v → %v)", k, n, pb, pa)
			}
		}
	}
	// Expect ~ keys/9 primaries to move; allow generous slack (3×) for
	// virtual-node variance.
	if lim := 3 * keys / 9; movedPrimary > lim {
		t.Fatalf("node add moved %d/%d primaries, want ≲ keys/N (limit %d)", movedPrimary, keys, lim)
	}
	if movedPrimary == 0 {
		t.Fatalf("node add moved no keys; the new node owns nothing")
	}
}

func TestSegmentsOfCoverAll(t *testing.T) {
	const shards = 64
	r := mustNew(t, Config{Seed: 3, Nodes: names(3), Replicas: 2})
	cover := make([]int, shards)
	for _, n := range r.Nodes() {
		for _, s := range r.SegmentsOf(n, shards) {
			cover[s]++
		}
	}
	for i, c := range cover {
		if c != 2 {
			t.Fatalf("segment %d has %d replicas, want 2", i, c)
		}
	}
}

// TestSegmentBalance is the regression for the FNV clustering bug:
// without a finalizing mix, "seg-N" keys and each node's vnode points
// hash into tight clusters, and every segment lands on the same
// replica pair — some nodes own nothing. Every node must carry a
// reasonable share of the segments across several small cluster
// shapes and seeds.
func TestSegmentBalance(t *testing.T) {
	const shards = 64
	for _, nodes := range []int{3, 4, 5} {
		for seed := uint64(1); seed <= 24; seed++ {
			r := mustNew(t, Config{Seed: seed, Nodes: names(nodes), Replicas: 2})
			counts := map[string]int{}
			for s := 0; s < shards; s++ {
				for _, n := range r.PlaceSegment(s) {
					counts[n]++
				}
			}
			fair := 2 * shards / nodes
			for _, n := range r.Nodes() {
				if counts[n] < fair/4 {
					t.Fatalf("seed %d, %d nodes: %s owns %d/%d segment replicas, fair share %d (counts %v)",
						seed, nodes, n, counts[n], 2*shards, fair, counts)
				}
			}
		}
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := New(Config{Nodes: []string{"a", "a"}}); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, err := New(Config{Nodes: []string{"a", ""}}); err == nil {
		t.Fatal("empty node name accepted")
	}
	// Replicas beyond the member count clamp rather than fail: a
	// 3-replica ring over 2 nodes is a 2-replica ring.
	r := mustNew(t, Config{Nodes: []string{"a", "b"}, Replicas: 5})
	if got := r.Replicas(); got != 2 {
		t.Fatalf("Replicas()=%d, want clamped 2", got)
	}
}

// FuzzRingPlacement checks the placement invariants over arbitrary
// keys and node-set sizes: placement is total (exactly R distinct
// live nodes), stable (recomputing the same ring agrees), and adding
// one node only ever moves a key onto the new node.
func FuzzRingPlacement(f *testing.F) {
	f.Add("example.com", uint64(1), 3)
	f.Add("seg-7", uint64(42), 5)
	f.Add("", uint64(0), 1)
	f.Add("\x00\x1fkey", uint64(1<<63), 9)
	f.Fuzz(func(t *testing.T, key string, seed uint64, n int) {
		if n < 1 || n > 12 {
			return
		}
		cfg := Config{Seed: seed, Nodes: names(n), Replicas: 2, VirtualNodes: 32}
		a, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		b, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		pa := a.Place(key)
		if len(pa) != a.Replicas() {
			t.Fatalf("placement of %q has %d nodes, want %d", key, len(pa), a.Replicas())
		}
		seen := map[string]bool{}
		for _, node := range pa {
			if seen[node] {
				t.Fatalf("placement of %q repeats %s: %v", key, node, pa)
			}
			seen[node] = true
		}
		if pb := b.Place(key); !reflect.DeepEqual(pa, pb) {
			t.Fatalf("placement of %q unstable: %v vs %v", key, pa, pb)
		}
		grown, err := New(Config{Seed: seed, Nodes: append(names(n), "zz-added"), Replicas: 2, VirtualNodes: 32})
		if err != nil {
			t.Fatalf("New(grown): %v", err)
		}
		pg := grown.Place(key)
		for _, node := range pg {
			if node != "zz-added" && !seen[node] {
				t.Fatalf("adding a node moved %q onto pre-existing node %s: %v → %v", key, node, pa, pg)
			}
		}
	})
}
