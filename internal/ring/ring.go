// Package ring is the deterministic consistent-hash ring behind the
// replicated capture store: it places each logical store segment on R
// of the N storage nodes so that the loss of any single node leaves
// every segment with live replicas, and adding a node moves only the
// keys the new node takes over.
//
// Determinism is the whole point. The ring is a pure function of
// (seed, node names, virtual-node count): every capring proxy, every
// repair loop, and every test that builds the same ring computes the
// same placement, with no membership protocol and no persisted state
// to drift. Virtual-node positions are FNV-64a points keyed by
// (seed, node, replica index), so a node's points are stable across
// restarts and independent of join order.
package ring

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-node point count used when Config
// leaves it zero. 128 points keeps the max/min key-share ratio within
// a few percent for small clusters without bloating the point table.
const DefaultVirtualNodes = 128

// Config parameterizes a ring.
type Config struct {
	// Seed roots the point hash, so disjoint deployments can use
	// disjoint rings over the same node names.
	Seed uint64
	// Nodes are the member names (addresses, usually). Order does not
	// affect placement; duplicates are an error.
	Nodes []string
	// Replicas is the replication factor R: how many distinct nodes
	// each key is placed on (default 2, capped at len(Nodes)).
	Replicas int
	// VirtualNodes is the per-node point count (default
	// DefaultVirtualNodes).
	VirtualNodes int
}

// mix64 is a 64-bit finalizer (the splitmix64 / murmur3 fmix
// construction) applied on top of FNV-64a. FNV alone has almost no
// avalanche on short inputs that differ only in a trailing counter —
// "seg-0".."seg-63" hash into one tight cluster, and so do a node's
// virtual-node points — which degenerates the ring into one arc per
// node and places every segment on the same replica set. The mix
// spreads those clusters uniformly over the 64-bit circle.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// point is one virtual node: a position on the 64-bit ring owned by a
// member node.
type point struct {
	pos  uint64
	node int32
}

// Ring is an immutable consistent-hash ring. Safe for concurrent use.
type Ring struct {
	cfg    Config
	nodes  []string
	points []point
}

// New builds the ring. Nodes are deduplicated as an error, not
// silently: a typo'd duplicate address would halve the real
// replication factor.
func New(cfg Config) (*Ring, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("ring: no nodes")
	}
	seen := make(map[string]bool, len(cfg.Nodes))
	for _, n := range cfg.Nodes {
		if n == "" {
			return nil, errors.New("ring: empty node name")
		}
		if seen[n] {
			return nil, fmt.Errorf("ring: duplicate node %q", n)
		}
		seen[n] = true
	}
	if cfg.VirtualNodes <= 0 {
		cfg.VirtualNodes = DefaultVirtualNodes
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Replicas > len(cfg.Nodes) {
		cfg.Replicas = len(cfg.Nodes)
	}
	// Sort a copy of the node list so placement is independent of the
	// order the caller enumerated members in.
	nodes := append([]string(nil), cfg.Nodes...)
	sort.Strings(nodes)
	r := &Ring{
		cfg:    cfg,
		nodes:  nodes,
		points: make([]point, 0, len(nodes)*cfg.VirtualNodes),
	}
	seedStr := strconv.FormatUint(cfg.Seed, 10)
	for ni, name := range nodes {
		for v := 0; v < cfg.VirtualNodes; v++ {
			h := fnv.New64a()
			h.Write([]byte(seedStr))
			h.Write([]byte{0x1f})
			h.Write([]byte(name))
			h.Write([]byte{0x1f})
			h.Write([]byte(strconv.Itoa(v)))
			r.points = append(r.points, point{pos: mix64(h.Sum64()), node: int32(ni)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		// Position collisions resolve by node order so the ring stays a
		// total function even on (astronomically unlikely) hash ties.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Nodes returns the member names in placement order (sorted).
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Replicas returns the effective replication factor.
func (r *Ring) Replicas() int { return r.cfg.Replicas }

// hashKey maps a key onto the ring.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// Place returns the R distinct nodes owning key, in ring order
// starting at the key's successor point. It is total (every key maps
// to exactly R nodes) and stable (the same ring always returns the
// same slice).
func (r *Ring) Place(key string) []string {
	out := make([]string, 0, r.cfg.Replicas)
	taken := make([]bool, len(r.nodes))
	pos := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	for i := 0; len(out) < r.cfg.Replicas; i++ {
		p := r.points[(start+i)%len(r.points)]
		if taken[p.node] {
			continue
		}
		taken[p.node] = true
		out = append(out, r.nodes[p.node])
	}
	return out
}

// PlaceSegment places logical store segment i — the unit of
// replication for the capture store, whose segment layout is fixed
// fleet-wide.
func (r *Ring) PlaceSegment(i int) []string {
	return r.Place("seg-" + strconv.Itoa(i))
}

// Owns reports whether node is one of key's R replicas.
func (r *Ring) Owns(node, key string) bool {
	for _, n := range r.Place(key) {
		if n == node {
			return true
		}
	}
	return false
}

// SegmentsOf returns the logical segments (of shards total) placed on
// node, in ascending order.
func (r *Ring) SegmentsOf(node string, shards int) []int {
	var out []int
	for i := 0; i < shards; i++ {
		if r.Owns(node, "seg-"+strconv.Itoa(i)) {
			out = append(out, i)
		}
	}
	return out
}
