package tcf

import (
	"encoding/base64"
	"errors"
	"fmt"
	"strings"
	"time"
)

// TCF v2.0 support. IAB Europe finalized TCF v2 in 2019 and CMPs
// migrated to it during the tail of the paper's observation window
// (the switchover deadline was August 2020, right at the end of the
// study). The v2 consent string is substantially richer than v1: ten
// purposes with separate consent and legitimate-interest signals,
// special feature opt-ins, publisher restrictions, and optional
// segments appended with '.' separators.
//
// This implementation covers the core segment, the disclosed-vendors
// segment and the publisher-TC segment — everything a CMP needs to
// store a complete user decision.

// V2Version is the consent-string version number of TCF v2 strings.
const V2Version = 2

// NumPurposesV2 is the number of standardized purposes in TCF v2.
const NumPurposesV2 = 10

// NumSpecialFeatures is the number of standardized special features
// that require explicit opt-in under TCF v2.
const NumSpecialFeatures = 2

// RestrictionType classifies a publisher restriction on a purpose.
type RestrictionType int

const (
	// RestrictionNotAllowed: the purpose is flatly disallowed for the
	// listed vendors on this publisher's sites.
	RestrictionNotAllowed RestrictionType = 0
	// RestrictionRequireConsent: vendors must use consent as the legal
	// basis even if they registered legitimate interest.
	RestrictionRequireConsent RestrictionType = 1
	// RestrictionRequireLegInt: vendors must use legitimate interest.
	RestrictionRequireLegInt RestrictionType = 2
)

// PubRestriction is one publisher restriction entry.
type PubRestriction struct {
	Purpose int
	Type    RestrictionType
	// VendorIDs the restriction applies to.
	VendorIDs []int
}

// V2ConsentString is a decoded TCF v2.0 TC string.
type V2ConsentString struct {
	Created              time.Time
	LastUpdated          time.Time
	CMPID                int
	CMPVersion           int
	ConsentScreen        int
	ConsentLanguage      string // two letters
	VendorListVersion    int
	TCFPolicyVersion     int
	IsServiceSpecific    bool
	UseNonStandardStacks bool
	// SpecialFeatureOptIns holds opt-ins per special feature (1-based).
	SpecialFeatureOptIns map[int]bool
	// PurposesConsent / PurposesLITransparency per purpose (1-based,
	// up to 24 wire bits; 10 standardized).
	PurposesConsent        map[int]bool
	PurposesLITransparency map[int]bool
	// PurposeOneTreatment: purpose 1 is handled by local law instead
	// of consent (e.g. German publishers).
	PurposeOneTreatment bool
	// PublisherCC is the publisher's country code.
	PublisherCC string
	// Vendor signals.
	MaxVendorID     int
	VendorConsent   map[int]bool
	MaxVendorLIID   int
	VendorLegInt    map[int]bool
	PubRestrictions []PubRestriction
	// DisclosedVendors is the optional segment listing vendors whose
	// information was disclosed to the user (global scope only).
	DisclosedVendors map[int]bool
	// Publisher TC segment.
	HasPublisherTC               bool
	PubPurposesConsent           map[int]bool
	PubPurposesLITransparency    map[int]bool
	NumCustomPurposes            int
	CustomPurposesConsent        map[int]bool
	CustomPurposesLITransparency map[int]bool
}

// NewV2 returns a v2 string with initialized maps.
func NewV2(created time.Time) *V2ConsentString {
	return &V2ConsentString{
		Created:                      created,
		LastUpdated:                  created,
		ConsentLanguage:              "EN",
		PublisherCC:                  "DE",
		TCFPolicyVersion:             2,
		SpecialFeatureOptIns:         make(map[int]bool),
		PurposesConsent:              make(map[int]bool),
		PurposesLITransparency:       make(map[int]bool),
		VendorConsent:                make(map[int]bool),
		VendorLegInt:                 make(map[int]bool),
		DisclosedVendors:             make(map[int]bool),
		PubPurposesConsent:           make(map[int]bool),
		PubPurposesLITransparency:    make(map[int]bool),
		CustomPurposesConsent:        make(map[int]bool),
		CustomPurposesLITransparency: make(map[int]bool),
	}
}

// segment type identifiers for optional segments.
const (
	segmentCore             = 0
	segmentDisclosedVendors = 1
	segmentAllowedVendors   = 2
	segmentPublisherTC      = 3
)

// EncodeV2 serializes the TC string: core segment plus any optional
// segments, '.'-separated, each websafe-base64 without padding.
func (c *V2ConsentString) EncodeV2() (string, error) {
	core, err := c.encodeCore()
	if err != nil {
		return "", err
	}
	parts := []string{core}
	if len(c.DisclosedVendors) > 0 {
		parts = append(parts, c.encodeVendorSegment(segmentDisclosedVendors, c.DisclosedVendors))
	}
	if c.HasPublisherTC {
		parts = append(parts, c.encodePublisherTC())
	}
	return strings.Join(parts, "."), nil
}

func (c *V2ConsentString) encodeCore() (string, error) {
	if len(c.ConsentLanguage) != 2 || len(c.PublisherCC) != 2 {
		return "", errors.New("tcf: v2 language and publisher CC must be two letters")
	}
	if c.MaxVendorID >= maxVendorLimit || c.MaxVendorLIID >= maxVendorLimit {
		return "", fmt.Errorf("tcf: v2 vendor id out of range")
	}
	w := &bitWriter{}
	w.writeBits(V2Version, 6)
	w.writeBits(deciseconds(c.Created), 36)
	w.writeBits(deciseconds(c.LastUpdated), 36)
	w.writeBits(uint64(c.CMPID), 12)
	w.writeBits(uint64(c.CMPVersion), 12)
	w.writeBits(uint64(c.ConsentScreen), 6)
	for i := 0; i < 2; i++ {
		if err := w.writeLetter(c.ConsentLanguage[i]); err != nil {
			return "", err
		}
	}
	w.writeBits(uint64(c.VendorListVersion), 12)
	w.writeBits(uint64(c.TCFPolicyVersion), 6)
	w.writeBool(c.IsServiceSpecific)
	w.writeBool(c.UseNonStandardStacks)
	writeBitmap(w, c.SpecialFeatureOptIns, 12)
	writeBitmap(w, c.PurposesConsent, 24)
	writeBitmap(w, c.PurposesLITransparency, 24)
	w.writeBool(c.PurposeOneTreatment)
	for i := 0; i < 2; i++ {
		if err := w.writeLetter(c.PublisherCC[i]); err != nil {
			return "", err
		}
	}
	writeVendorField(w, c.MaxVendorID, c.VendorConsent)
	writeVendorField(w, c.MaxVendorLIID, c.VendorLegInt)

	// Publisher restrictions.
	if len(c.PubRestrictions) >= 1<<12 {
		return "", errors.New("tcf: too many publisher restrictions")
	}
	w.writeBits(uint64(len(c.PubRestrictions)), 12)
	for _, pr := range c.PubRestrictions {
		w.writeBits(uint64(pr.Purpose), 6)
		w.writeBits(uint64(pr.Type), 2)
		ranges := idsToRanges(pr.VendorIDs)
		w.writeBits(uint64(len(ranges)), 12)
		for _, r := range ranges {
			writeRangeEntry(w, r)
		}
	}
	return base64.RawURLEncoding.EncodeToString(w.bytes()), nil
}

// writeBitmap writes a 1-based boolean map as an n-bit field, bit 1 at
// the most significant position.
func writeBitmap(w *bitWriter, m map[int]bool, n int) {
	var v uint64
	for i := 1; i <= n; i++ {
		v <<= 1
		if m[i] {
			v |= 1
		}
	}
	w.writeBits(v, n)
}

func readBitmap(r *bitReader, n int) (map[int]bool, error) {
	v, err := r.readBits(n)
	if err != nil {
		return nil, err
	}
	m := make(map[int]bool)
	for i := 1; i <= n; i++ {
		if v&(1<<uint(n-i)) != 0 {
			m[i] = true
		}
	}
	return m, nil
}

// writeVendorField writes a v2 vendor section (no default-consent bit,
// unlike v1): MaxVendorId, IsRangeEncoding, then bitfield or ranges.
func writeVendorField(w *bitWriter, maxID int, consent map[int]bool) {
	w.writeBits(uint64(maxID), 16)
	var ids []int
	for v := 1; v <= maxID; v++ {
		if consent[v] {
			ids = append(ids, v)
		}
	}
	ranges := idsToRanges(ids)
	rangeBits := 12 + 33*len(ranges) // upper bound
	if rangeBits < maxID {
		w.writeBool(true)
		w.writeBits(uint64(len(ranges)), 12)
		for _, r := range ranges {
			writeRangeEntry(w, r)
		}
	} else {
		w.writeBool(false)
		for v := 1; v <= maxID; v++ {
			w.writeBool(consent[v])
		}
	}
}

func writeRangeEntry(w *bitWriter, r [2]int) {
	if r[0] == r[1] {
		w.writeBool(false)
		w.writeBits(uint64(r[0]), 16)
	} else {
		w.writeBool(true)
		w.writeBits(uint64(r[0]), 16)
		w.writeBits(uint64(r[1]), 16)
	}
}

// idsToRanges compresses a sorted id list into [start,end] ranges. The
// input need not be sorted; consecutive runs are detected after an
// insertion sort of the (typically short) slice.
func idsToRanges(ids []int) [][2]int {
	if len(ids) == 0 {
		return nil
	}
	sorted := append([]int(nil), ids...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var ranges [][2]int
	start, prev := sorted[0], sorted[0]
	for _, id := range sorted[1:] {
		if id == prev || id == prev+1 {
			prev = id
			continue
		}
		ranges = append(ranges, [2]int{start, prev})
		start, prev = id, id
	}
	return append(ranges, [2]int{start, prev})
}

// encodeVendorSegment writes an optional vendor segment (disclosed or
// allowed vendors).
func (c *V2ConsentString) encodeVendorSegment(segType int, vendors map[int]bool) string {
	w := &bitWriter{}
	w.writeBits(uint64(segType), 3)
	max := 0
	for id := range vendors {
		if vendors[id] && id > max {
			max = id
		}
	}
	writeVendorField(w, max, vendors)
	return base64.RawURLEncoding.EncodeToString(w.bytes())
}

// encodePublisherTC writes the publisher-TC segment.
func (c *V2ConsentString) encodePublisherTC() string {
	w := &bitWriter{}
	w.writeBits(segmentPublisherTC, 3)
	writeBitmap(w, c.PubPurposesConsent, 24)
	writeBitmap(w, c.PubPurposesLITransparency, 24)
	w.writeBits(uint64(c.NumCustomPurposes), 6)
	for i := 1; i <= c.NumCustomPurposes; i++ {
		w.writeBool(c.CustomPurposesConsent[i])
	}
	for i := 1; i <= c.NumCustomPurposes; i++ {
		w.writeBool(c.CustomPurposesLITransparency[i])
	}
	return base64.RawURLEncoding.EncodeToString(w.bytes())
}

// DecodeV2 parses a full TC string including optional segments.
func DecodeV2(s string) (*V2ConsentString, error) {
	parts := strings.Split(s, ".")
	c, err := decodeV2Core(parts[0])
	if err != nil {
		return nil, err
	}
	for _, seg := range parts[1:] {
		if err := c.decodeSegment(seg); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func decodeV2Core(s string) (*V2ConsentString, error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("tcf: v2 base64: %w", err)
	}
	r := &bitReader{buf: raw}
	version, err := r.readBits(6)
	if err != nil {
		return nil, err
	}
	if version != V2Version {
		return nil, fmt.Errorf("tcf: not a v2 consent string (version %d)", version)
	}
	c := NewV2(time.Time{})
	created, err := r.readBits(36)
	if err != nil {
		return nil, err
	}
	updated, err := r.readBits(36)
	if err != nil {
		return nil, err
	}
	c.Created = fromDeciseconds(created)
	c.LastUpdated = fromDeciseconds(updated)
	for _, f := range []struct {
		dst  *int
		bits int
	}{{&c.CMPID, 12}, {&c.CMPVersion, 12}, {&c.ConsentScreen, 6}} {
		v, err := r.readBits(f.bits)
		if err != nil {
			return nil, err
		}
		*f.dst = int(v)
	}
	lang, err := readLetters(r, 2)
	if err != nil {
		return nil, err
	}
	c.ConsentLanguage = lang
	vlv, err := r.readBits(12)
	if err != nil {
		return nil, err
	}
	c.VendorListVersion = int(vlv)
	pol, err := r.readBits(6)
	if err != nil {
		return nil, err
	}
	c.TCFPolicyVersion = int(pol)
	if c.IsServiceSpecific, err = r.readBool(); err != nil {
		return nil, err
	}
	if c.UseNonStandardStacks, err = r.readBool(); err != nil {
		return nil, err
	}
	if c.SpecialFeatureOptIns, err = readBitmap(r, 12); err != nil {
		return nil, err
	}
	if c.PurposesConsent, err = readBitmap(r, 24); err != nil {
		return nil, err
	}
	if c.PurposesLITransparency, err = readBitmap(r, 24); err != nil {
		return nil, err
	}
	if c.PurposeOneTreatment, err = r.readBool(); err != nil {
		return nil, err
	}
	if c.PublisherCC, err = readLetters(r, 2); err != nil {
		return nil, err
	}
	if c.MaxVendorID, c.VendorConsent, err = readVendorField(r); err != nil {
		return nil, err
	}
	if c.MaxVendorLIID, c.VendorLegInt, err = readVendorField(r); err != nil {
		return nil, err
	}
	numRestrictions, err := r.readBits(12)
	if err != nil {
		return nil, err
	}
	// Restriction ranges carry no max-vendor bound of their own, so a
	// hostile string could expand 4095 restrictions × 4095 entries ×
	// 65535-wide ranges into gigabytes. Validate each entry and cap the
	// total expansion across the section.
	expanded := 0
	for i := 0; i < int(numRestrictions); i++ {
		purpose, err := r.readBits(6)
		if err != nil {
			return nil, err
		}
		rtype, err := r.readBits(2)
		if err != nil {
			return nil, err
		}
		pr := PubRestriction{Purpose: int(purpose), Type: RestrictionType(rtype)}
		numEntries, err := r.readBits(12)
		if err != nil {
			return nil, err
		}
		for j := 0; j < int(numEntries); j++ {
			start, end, err := readRangeEntry(r)
			if err != nil {
				return nil, err
			}
			if start == 0 || end < start {
				return nil, fmt.Errorf("tcf: v2 invalid restriction range [%d,%d]", start, end)
			}
			expanded += end - start + 1
			if expanded > maxRestrictionVendorIDs {
				return nil, fmt.Errorf("tcf: v2 restriction ranges expand past %d vendor ids", maxRestrictionVendorIDs)
			}
			for v := start; v <= end; v++ {
				pr.VendorIDs = append(pr.VendorIDs, v)
			}
		}
		c.PubRestrictions = append(c.PubRestrictions, pr)
	}
	return c, nil
}

// maxRestrictionVendorIDs caps the total vendor IDs the publisher-
// restriction section may expand to — two orders of magnitude above
// any real GVL, small enough to bound hostile input.
const maxRestrictionVendorIDs = 1 << 17

func readLetters(r *bitReader, n int) (string, error) {
	b := make([]byte, n)
	for i := range b {
		l, err := r.readLetter()
		if err != nil {
			return "", err
		}
		b[i] = l
	}
	return string(b), nil
}

func readVendorField(r *bitReader) (int, map[int]bool, error) {
	maxID, err := r.readBits(16)
	if err != nil {
		return 0, nil, err
	}
	if maxID >= maxVendorLimit {
		return 0, nil, fmt.Errorf("tcf: v2 MaxVendorID %d out of range", maxID)
	}
	isRange, err := r.readBool()
	if err != nil {
		return 0, nil, err
	}
	consent := make(map[int]bool)
	if !isRange {
		for v := 1; v <= int(maxID); v++ {
			ok, err := r.readBool()
			if err != nil {
				return 0, nil, err
			}
			if ok {
				consent[v] = true
			}
		}
		return int(maxID), consent, nil
	}
	numEntries, err := r.readBits(12)
	if err != nil {
		return 0, nil, err
	}
	for i := 0; i < int(numEntries); i++ {
		start, end, err := readRangeEntry(r)
		if err != nil {
			return 0, nil, err
		}
		if start == 0 || end < start || end > int(maxID) {
			return 0, nil, fmt.Errorf("tcf: v2 invalid range [%d,%d]", start, end)
		}
		for v := start; v <= end; v++ {
			consent[v] = true
		}
	}
	return int(maxID), consent, nil
}

func readRangeEntry(r *bitReader) (start, end int, err error) {
	isRange, err := r.readBool()
	if err != nil {
		return 0, 0, err
	}
	s, err := r.readBits(16)
	if err != nil {
		return 0, 0, err
	}
	e := s
	if isRange {
		if e, err = r.readBits(16); err != nil {
			return 0, 0, err
		}
	}
	return int(s), int(e), nil
}

// decodeSegment parses one optional '.'-separated segment.
func (c *V2ConsentString) decodeSegment(s string) error {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return fmt.Errorf("tcf: v2 segment base64: %w", err)
	}
	r := &bitReader{buf: raw}
	segType, err := r.readBits(3)
	if err != nil {
		return err
	}
	switch segType {
	case segmentDisclosedVendors:
		_, vendors, err := readVendorField(r)
		if err != nil {
			return err
		}
		c.DisclosedVendors = vendors
	case segmentAllowedVendors:
		// Parsed for completeness; allowed-vendors is only used by
		// publisher-specific strings, which we do not model further.
		if _, _, err := readVendorField(r); err != nil {
			return err
		}
	case segmentPublisherTC:
		c.HasPublisherTC = true
		if c.PubPurposesConsent, err = readBitmap(r, 24); err != nil {
			return err
		}
		if c.PubPurposesLITransparency, err = readBitmap(r, 24); err != nil {
			return err
		}
		n, err := r.readBits(6)
		if err != nil {
			return err
		}
		c.NumCustomPurposes = int(n)
		for i := 1; i <= c.NumCustomPurposes; i++ {
			ok, err := r.readBool()
			if err != nil {
				return err
			}
			if ok {
				c.CustomPurposesConsent[i] = true
			}
		}
		for i := 1; i <= c.NumCustomPurposes; i++ {
			ok, err := r.readBool()
			if err != nil {
				return err
			}
			if ok {
				c.CustomPurposesLITransparency[i] = true
			}
		}
	default:
		return fmt.Errorf("tcf: unknown v2 segment type %d", segType)
	}
	return nil
}

// UpgradeToV2 converts a v1 consent string to its closest v2
// equivalent, as CMP SDKs did during the 2020 migration: v1 purposes
// 1–5 map onto their v2 successors and vendor consent carries over.
// Legitimate-interest transparency cannot be derived from a v1 string
// and is left empty.
func UpgradeToV2(v1 *ConsentString) *V2ConsentString {
	c := NewV2(v1.Created)
	c.LastUpdated = v1.LastUpdated
	c.CMPID = v1.CMPID
	c.CMPVersion = v1.CMPVersion
	c.ConsentScreen = v1.ConsentScreen
	c.ConsentLanguage = v1.ConsentLanguage
	c.VendorListVersion = v1.VendorListVersion
	c.MaxVendorID = v1.MaxVendorID
	for v, ok := range v1.VendorConsent {
		if ok {
			c.VendorConsent[v] = true
		}
	}
	// v1→v2 purpose mapping: storage/access → 1; personalisation →
	// profile-based selection (3, 5); ad selection → 2, 4; content
	// selection → 6; measurement → 7, 8.
	mapping := map[int][]int{1: {1}, 2: {3, 5}, 3: {2, 4}, 4: {6}, 5: {7, 8}}
	for p1, ok := range v1.PurposesAllowed {
		if !ok {
			continue
		}
		for _, p2 := range mapping[p1] {
			c.PurposesConsent[p2] = true
		}
	}
	return c
}

// PurposesV2 returns the ten standardized TCF v2 purposes.
func PurposesV2() []Purpose {
	return []Purpose{
		{1, "Store and/or access information on a device", "Cookies, device identifiers, or other information can be stored or accessed on your device."},
		{2, "Select basic ads", "Ads can be shown to you based on the content you're viewing, the app you're using, your approximate location, or your device type."},
		{3, "Create a personalised ads profile", "A profile can be built about you and your interests to show you personalised ads that are relevant to you."},
		{4, "Select personalised ads", "Personalised ads can be shown to you based on a profile about you."},
		{5, "Create a personalised content profile", "A profile can be built about you and your interests to show you personalised content that is relevant to you."},
		{6, "Select personalised content", "Personalised content can be shown to you based on a profile about you."},
		{7, "Measure ad performance", "The performance and effectiveness of ads that you see or interact with can be measured."},
		{8, "Measure content performance", "The performance and effectiveness of content that you see or interact with can be measured."},
		{9, "Apply market research to generate audience insights", "Market research can be used to learn more about the audiences who visit sites/apps and view ads."},
		{10, "Develop and improve products", "Your data can be used to improve existing systems and software, and to develop new products."},
	}
}

// SpecialFeaturesV2 returns the two v2 special features requiring
// explicit opt-in.
func SpecialFeaturesV2() []Feature {
	return []Feature{
		{1, "Use precise geolocation data", "Your precise geolocation data can be used in support of one or more purposes."},
		{2, "Actively scan device characteristics for identification", "Your device can be identified based on a scan of your device's unique combination of characteristics."},
	}
}
