package tcf

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleV2() *V2ConsentString {
	c := NewV2(time.Date(2020, time.August, 10, 9, 0, 0, 0, time.UTC))
	c.CMPID = 10
	c.CMPVersion = 2
	c.ConsentScreen = 1
	c.ConsentLanguage = "FR"
	c.VendorListVersion = 48
	c.TCFPolicyVersion = 2
	c.IsServiceSpecific = false
	c.SpecialFeatureOptIns[1] = true
	for p := 1; p <= 7; p++ {
		c.PurposesConsent[p] = true
	}
	c.PurposesLITransparency[2] = true
	c.PurposesLITransparency[9] = true
	c.PurposeOneTreatment = false
	c.PublisherCC = "DE"
	c.MaxVendorID = 700
	for _, v := range []int{1, 2, 3, 50, 51, 52, 699} {
		c.VendorConsent[v] = true
	}
	c.MaxVendorLIID = 650
	c.VendorLegInt[10] = true
	c.VendorLegInt[11] = true
	c.PubRestrictions = []PubRestriction{
		{Purpose: 2, Type: RestrictionRequireConsent, VendorIDs: []int{5, 6, 7, 20}},
	}
	return c
}

func TestV2RoundTripCore(t *testing.T) {
	c := sampleV2()
	s, err := c.EncodeV2()
	if err != nil {
		t.Fatal(err)
	}
	if strings.ContainsAny(s, "+/=") {
		t.Error("v2 strings must be websafe base64 without padding")
	}
	d, err := DecodeV2(s)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Created.Equal(c.Created) || d.CMPID != c.CMPID || d.ConsentLanguage != "FR" ||
		d.VendorListVersion != 48 || d.TCFPolicyVersion != 2 || d.PublisherCC != "DE" {
		t.Errorf("header fields: %+v", d)
	}
	for p := 1; p <= 24; p++ {
		if d.PurposesConsent[p] != c.PurposesConsent[p] {
			t.Errorf("purpose consent %d mismatch", p)
		}
		if d.PurposesLITransparency[p] != c.PurposesLITransparency[p] {
			t.Errorf("purpose LI %d mismatch", p)
		}
	}
	if !d.SpecialFeatureOptIns[1] || d.SpecialFeatureOptIns[2] {
		t.Error("special feature opt-ins mismatch")
	}
	if d.MaxVendorID != 700 || d.MaxVendorLIID != 650 {
		t.Errorf("max vendor ids: %d/%d", d.MaxVendorID, d.MaxVendorLIID)
	}
	for v := 1; v <= 700; v++ {
		if d.VendorConsent[v] != c.VendorConsent[v] {
			t.Fatalf("vendor consent %d mismatch", v)
		}
	}
	for v := 1; v <= 650; v++ {
		if d.VendorLegInt[v] != c.VendorLegInt[v] {
			t.Fatalf("vendor LI %d mismatch", v)
		}
	}
	if len(d.PubRestrictions) != 1 {
		t.Fatalf("restrictions: %+v", d.PubRestrictions)
	}
	pr := d.PubRestrictions[0]
	if pr.Purpose != 2 || pr.Type != RestrictionRequireConsent || len(pr.VendorIDs) != 4 {
		t.Errorf("restriction: %+v", pr)
	}
}

func TestV2Segments(t *testing.T) {
	c := sampleV2()
	c.DisclosedVendors[3] = true
	c.DisclosedVendors[4] = true
	c.DisclosedVendors[100] = true
	c.HasPublisherTC = true
	c.PubPurposesConsent[1] = true
	c.PubPurposesLITransparency[7] = true
	c.NumCustomPurposes = 2
	c.CustomPurposesConsent[1] = true
	c.CustomPurposesLITransparency[2] = true

	s, err := c.EncodeV2()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(s, "."); got != 2 {
		t.Fatalf("want 2 optional segments, got %d in %q", got, s)
	}
	d, err := DecodeV2(s)
	if err != nil {
		t.Fatal(err)
	}
	if !d.DisclosedVendors[3] || !d.DisclosedVendors[4] || !d.DisclosedVendors[100] || d.DisclosedVendors[5] {
		t.Errorf("disclosed vendors: %v", d.DisclosedVendors)
	}
	if !d.HasPublisherTC || !d.PubPurposesConsent[1] || !d.PubPurposesLITransparency[7] {
		t.Errorf("publisher TC: %+v", d)
	}
	if d.NumCustomPurposes != 2 || !d.CustomPurposesConsent[1] || !d.CustomPurposesLITransparency[2] {
		t.Errorf("custom purposes: %+v", d)
	}
}

func TestV2RejectsV1(t *testing.T) {
	v1 := sampleConsent()
	s, err := v1.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeV2(s); err == nil {
		t.Error("v1 strings must be rejected by the v2 decoder")
	}
	v2 := sampleV2()
	s2, err := v2.EncodeV2()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(strings.Split(s2, ".")[0]); err == nil {
		t.Error("v2 strings must be rejected by the v1 decoder")
	}
}

func TestV2DecodeErrors(t *testing.T) {
	for _, s := range []string{"", "!!bad!!", "AAAA", "COw.!!bad!!"} {
		if _, err := DecodeV2(s); err == nil {
			t.Errorf("DecodeV2(%q): want error", s)
		}
	}
}

func TestV2EncodeValidation(t *testing.T) {
	c := NewV2(time.Unix(0, 0))
	c.PublisherCC = "DEU"
	if _, err := c.EncodeV2(); err == nil {
		t.Error("bad publisher CC must fail")
	}
	c = NewV2(time.Unix(0, 0))
	c.MaxVendorID = 1 << 16
	if _, err := c.EncodeV2(); err == nil {
		t.Error("oversized vendor id must fail")
	}
}

func TestIDsToRanges(t *testing.T) {
	tests := []struct {
		ids  []int
		want [][2]int
	}{
		{nil, nil},
		{[]int{5}, [][2]int{{5, 5}}},
		{[]int{1, 2, 3}, [][2]int{{1, 3}}},
		{[]int{3, 1, 2}, [][2]int{{1, 3}}}, // unsorted input
		{[]int{1, 3, 4, 9}, [][2]int{{1, 1}, {3, 4}, {9, 9}}},
		{[]int{2, 2, 3}, [][2]int{{2, 3}}}, // duplicates collapse
	}
	for _, tt := range tests {
		got := idsToRanges(tt.ids)
		if len(got) != len(tt.want) {
			t.Errorf("idsToRanges(%v) = %v, want %v", tt.ids, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("idsToRanges(%v) = %v, want %v", tt.ids, got, tt.want)
			}
		}
	}
}

// TestV2RoundTripProperty: arbitrary vendor/purpose subsets survive a
// round trip, for both dense (bitfield) and sparse (range) encodings.
func TestV2RoundTripProperty(t *testing.T) {
	f := func(seed uint32, maxVendor uint16, dense bool) bool {
		max := int(maxVendor%900) + 1
		c := NewV2(time.Unix(1_596_000_000, 0).UTC())
		c.MaxVendorID = max
		c.MaxVendorLIID = max / 2
		x := seed + 1
		for v := 1; v <= max; v++ {
			x = x*1664525 + 1013904223
			threshold := uint32(1 << 28)
			if dense {
				threshold = 3 << 30
			}
			if x < threshold {
				c.VendorConsent[v] = true
			}
			if v <= max/2 && x%7 == 0 {
				c.VendorLegInt[v] = true
			}
		}
		for p := 1; p <= 10; p++ {
			if (seed>>uint(p))&1 == 1 {
				c.PurposesConsent[p] = true
			}
		}
		s, err := c.EncodeV2()
		if err != nil {
			return false
		}
		d, err := DecodeV2(s)
		if err != nil {
			return false
		}
		if d.MaxVendorID != max || d.MaxVendorLIID != max/2 {
			return false
		}
		for v := 1; v <= max; v++ {
			if d.VendorConsent[v] != c.VendorConsent[v] {
				return false
			}
		}
		for v := 1; v <= max/2; v++ {
			if d.VendorLegInt[v] != c.VendorLegInt[v] {
				return false
			}
		}
		for p := 1; p <= 10; p++ {
			if d.PurposesConsent[p] != c.PurposesConsent[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestUpgradeToV2(t *testing.T) {
	v1 := sampleConsent()
	v1.SetAllPurposes(true)
	v2 := UpgradeToV2(v1)
	if v2.CMPID != v1.CMPID || v2.VendorListVersion != v1.VendorListVersion {
		t.Error("header fields must carry over")
	}
	// All five v1 purposes granted → v2 purposes 1–8 granted.
	for p := 1; p <= 8; p++ {
		if !v2.PurposesConsent[p] {
			t.Errorf("v2 purpose %d missing after upgrade", p)
		}
	}
	if v2.PurposesConsent[9] || v2.PurposesConsent[10] {
		t.Error("v2 purposes 9/10 have no v1 equivalent")
	}
	for v, ok := range v1.VendorConsent {
		if ok && !v2.VendorConsent[v] {
			t.Errorf("vendor %d consent lost in upgrade", v)
		}
	}
	// The upgraded string must encode and decode.
	s, err := v2.EncodeV2()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeV2(s); err != nil {
		t.Fatal(err)
	}
}

func TestV2StandardTables(t *testing.T) {
	if len(PurposesV2()) != NumPurposesV2 {
		t.Error("v2 purpose table size")
	}
	if len(SpecialFeaturesV2()) != NumSpecialFeatures {
		t.Error("v2 special feature table size")
	}
	if PurposesV2()[0].Name != "Store and/or access information on a device" {
		t.Error("v2 purpose 1 name")
	}
}
