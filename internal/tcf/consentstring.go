// Package tcf implements version 1.1 of the IAB Europe Transparency and
// Consent Framework as used by the paper: the purposes and features of
// Table A.1, the binary consent-string wire format stored in the global
// consensu.org cookie, and the __cmp() JavaScript API surface that the
// paper instruments in its timing experiment (Section 3.2).
package tcf

import (
	"encoding/base64"
	"errors"
	"fmt"
	"sort"
	"time"
)

// Version is the consent-string version implemented here. TCF 1.0/1.1
// strings carry version 1; the paper's measurements predate TCF v2
// adoption.
const Version = 1

// NumPurposes is the number of standardized purposes in TCF v1
// (Table A.1).
const NumPurposes = 5

// maxVendorLimit bounds MaxVendorID when decoding untrusted strings.
const maxVendorLimit = 1 << 15

// ConsentString is the decoded form of a TCF v1.1 consent string.
type ConsentString struct {
	Created           time.Time
	LastUpdated       time.Time
	CMPID             int
	CMPVersion        int
	ConsentScreen     int
	ConsentLanguage   string // two-letter code, e.g. "EN"
	VendorListVersion int
	// PurposesAllowed holds consent per purpose ID (1-based key).
	PurposesAllowed map[int]bool
	// MaxVendorID is the highest vendor ID the string covers.
	MaxVendorID int
	// VendorConsent holds per-vendor consent for IDs 1..MaxVendorID.
	// Vendors not present are treated as no-consent.
	VendorConsent map[int]bool
}

// New returns a ConsentString with initialized maps, stamped with the
// given creation time.
func New(created time.Time) *ConsentString {
	return &ConsentString{
		Created:         created,
		LastUpdated:     created,
		ConsentLanguage: "EN",
		PurposesAllowed: make(map[int]bool),
		VendorConsent:   make(map[int]bool),
	}
}

// SetAllPurposes grants or revokes all five standardized purposes.
func (c *ConsentString) SetAllPurposes(allowed bool) {
	for p := 1; p <= NumPurposes; p++ {
		c.PurposesAllowed[p] = allowed
	}
}

// SetAllVendors grants or revokes consent for vendor IDs 1..max.
func (c *ConsentString) SetAllVendors(max int, allowed bool) {
	c.MaxVendorID = max
	for v := 1; v <= max; v++ {
		c.VendorConsent[v] = allowed
	}
}

// ConsentedVendors returns the sorted IDs of vendors with consent.
func (c *ConsentString) ConsentedVendors() []int {
	ids := make([]int, 0, len(c.VendorConsent))
	for id, ok := range c.VendorConsent {
		if ok {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// deciseconds converts a time to the TCF epoch representation
// (deciseconds since Unix epoch, 36 bits).
func deciseconds(t time.Time) uint64 {
	return uint64(t.UnixNano() / int64(100*time.Millisecond))
}

func fromDeciseconds(ds uint64) time.Time {
	return time.Unix(0, int64(ds)*int64(100*time.Millisecond)).UTC()
}

// Encode serializes the consent string to its websafe-base64 form. The
// vendor section is encoded with whichever of the bitfield or range
// encodings is smaller, as real CMP SDKs do; EncodeWith forces one.
func (c *ConsentString) Encode() (string, error) {
	bf, err := c.EncodeWith(EncodingBitField)
	if err != nil {
		return "", err
	}
	rg, err := c.EncodeWith(EncodingRange)
	if err != nil {
		return "", err
	}
	if len(rg) < len(bf) {
		return rg, nil
	}
	return bf, nil
}

// VendorEncoding selects the vendor-section representation.
type VendorEncoding int

const (
	// EncodingBitField stores one bit per vendor ID up to MaxVendorID.
	EncodingBitField VendorEncoding = 0
	// EncodingRange stores ranges of consecutive IDs that differ from a
	// default consent value.
	EncodingRange VendorEncoding = 1
)

// EncodeWith serializes using the requested vendor encoding.
func (c *ConsentString) EncodeWith(enc VendorEncoding) (string, error) {
	if c.MaxVendorID < 0 || c.MaxVendorID >= maxVendorLimit {
		return "", fmt.Errorf("tcf: MaxVendorID %d out of range", c.MaxVendorID)
	}
	if len(c.ConsentLanguage) != 2 {
		return "", fmt.Errorf("tcf: consent language %q must be two letters", c.ConsentLanguage)
	}
	w := &bitWriter{}
	w.writeBits(Version, 6)
	w.writeBits(deciseconds(c.Created), 36)
	w.writeBits(deciseconds(c.LastUpdated), 36)
	w.writeBits(uint64(c.CMPID), 12)
	w.writeBits(uint64(c.CMPVersion), 12)
	w.writeBits(uint64(c.ConsentScreen), 6)
	if err := w.writeLetter(c.ConsentLanguage[0]); err != nil {
		return "", err
	}
	if err := w.writeLetter(c.ConsentLanguage[1]); err != nil {
		return "", err
	}
	w.writeBits(uint64(c.VendorListVersion), 12)
	// 24 purpose bits; purpose 1 is the most significant.
	var purposes uint64
	for p := 1; p <= 24; p++ {
		purposes <<= 1
		if c.PurposesAllowed[p] {
			purposes |= 1
		}
	}
	w.writeBits(purposes, 24)
	w.writeBits(uint64(c.MaxVendorID), 16)

	switch enc {
	case EncodingBitField:
		w.writeBool(false)
		for v := 1; v <= c.MaxVendorID; v++ {
			w.writeBool(c.VendorConsent[v])
		}
	case EncodingRange:
		w.writeBool(true)
		// Choose the default that minimizes entries.
		consented := 0
		for v := 1; v <= c.MaxVendorID; v++ {
			if c.VendorConsent[v] {
				consented++
			}
		}
		defaultConsent := consented*2 > c.MaxVendorID
		w.writeBool(defaultConsent)
		ranges := c.exceptionRanges(defaultConsent)
		if len(ranges) >= 1<<12 {
			return "", errors.New("tcf: too many range entries")
		}
		w.writeBits(uint64(len(ranges)), 12)
		for _, r := range ranges {
			if r[0] == r[1] {
				w.writeBool(false)
				w.writeBits(uint64(r[0]), 16)
			} else {
				w.writeBool(true)
				w.writeBits(uint64(r[0]), 16)
				w.writeBits(uint64(r[1]), 16)
			}
		}
	default:
		return "", fmt.Errorf("tcf: unknown vendor encoding %d", enc)
	}
	return base64.RawURLEncoding.EncodeToString(w.bytes()), nil
}

// exceptionRanges returns [start,end] vendor-ID ranges whose consent
// differs from defaultConsent.
func (c *ConsentString) exceptionRanges(defaultConsent bool) [][2]int {
	var ranges [][2]int
	start := 0
	for v := 1; v <= c.MaxVendorID+1; v++ {
		exception := v <= c.MaxVendorID && c.VendorConsent[v] != defaultConsent
		if exception && start == 0 {
			start = v
		}
		if !exception && start != 0 {
			ranges = append(ranges, [2]int{start, v - 1})
			start = 0
		}
	}
	return ranges
}

// Decode parses a websafe-base64 TCF v1.1 consent string.
func Decode(s string) (*ConsentString, error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		// Tolerate padded input, which some CMPs emit.
		raw, err = base64.URLEncoding.DecodeString(s)
		if err != nil {
			return nil, fmt.Errorf("tcf: base64: %w", err)
		}
	}
	r := &bitReader{buf: raw}
	version, err := r.readBits(6)
	if err != nil {
		return nil, err
	}
	if version != Version {
		return nil, fmt.Errorf("tcf: unsupported consent string version %d", version)
	}
	c := &ConsentString{
		PurposesAllowed: make(map[int]bool),
		VendorConsent:   make(map[int]bool),
	}
	created, err := r.readBits(36)
	if err != nil {
		return nil, err
	}
	updated, err := r.readBits(36)
	if err != nil {
		return nil, err
	}
	c.Created = fromDeciseconds(created)
	c.LastUpdated = fromDeciseconds(updated)
	fields := []struct {
		dst  *int
		bits int
	}{
		{&c.CMPID, 12}, {&c.CMPVersion, 12}, {&c.ConsentScreen, 6},
	}
	for _, f := range fields {
		v, err := r.readBits(f.bits)
		if err != nil {
			return nil, err
		}
		*f.dst = int(v)
	}
	l1, err := r.readLetter()
	if err != nil {
		return nil, err
	}
	l2, err := r.readLetter()
	if err != nil {
		return nil, err
	}
	c.ConsentLanguage = string([]byte{l1, l2})
	vlv, err := r.readBits(12)
	if err != nil {
		return nil, err
	}
	c.VendorListVersion = int(vlv)
	purposes, err := r.readBits(24)
	if err != nil {
		return nil, err
	}
	for p := 1; p <= 24; p++ {
		if purposes&(1<<uint(24-p)) != 0 {
			c.PurposesAllowed[p] = true
		}
	}
	maxVendor, err := r.readBits(16)
	if err != nil {
		return nil, err
	}
	if maxVendor >= maxVendorLimit {
		return nil, fmt.Errorf("tcf: MaxVendorID %d out of range", maxVendor)
	}
	c.MaxVendorID = int(maxVendor)
	isRange, err := r.readBool()
	if err != nil {
		return nil, err
	}
	if !isRange {
		for v := 1; v <= c.MaxVendorID; v++ {
			ok, err := r.readBool()
			if err != nil {
				return nil, err
			}
			if ok {
				c.VendorConsent[v] = true
			}
		}
		return c, nil
	}
	defaultConsent, err := r.readBool()
	if err != nil {
		return nil, err
	}
	numEntries, err := r.readBits(12)
	if err != nil {
		return nil, err
	}
	if defaultConsent {
		for v := 1; v <= c.MaxVendorID; v++ {
			c.VendorConsent[v] = true
		}
	}
	for i := 0; i < int(numEntries); i++ {
		isRangeEntry, err := r.readBool()
		if err != nil {
			return nil, err
		}
		start, err := r.readBits(16)
		if err != nil {
			return nil, err
		}
		end := start
		if isRangeEntry {
			end, err = r.readBits(16)
			if err != nil {
				return nil, err
			}
		}
		if start == 0 || end < start || int(end) > c.MaxVendorID {
			return nil, fmt.Errorf("tcf: invalid range entry [%d,%d]", start, end)
		}
		for v := start; v <= end; v++ {
			if defaultConsent {
				delete(c.VendorConsent, int(v))
			} else {
				c.VendorConsent[int(v)] = true
			}
		}
	}
	return c, nil
}
