package tcf

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleConsent() *ConsentString {
	c := New(time.Date(2020, time.May, 10, 14, 30, 0, 0, time.UTC))
	c.CMPID = 10
	c.CMPVersion = 3
	c.ConsentScreen = 2
	c.ConsentLanguage = "DE"
	c.VendorListVersion = 183
	c.PurposesAllowed[1] = true
	c.PurposesAllowed[3] = true
	c.MaxVendorID = 600
	c.VendorConsent[1] = true
	c.VendorConsent[17] = true
	c.VendorConsent[599] = true
	return c
}

func TestRoundTripBitField(t *testing.T) {
	c := sampleConsent()
	s, err := c.EncodeWith(EncodingBitField)
	if err != nil {
		t.Fatal(err)
	}
	checkRoundTrip(t, c, s)
}

func TestRoundTripRange(t *testing.T) {
	c := sampleConsent()
	s, err := c.EncodeWith(EncodingRange)
	if err != nil {
		t.Fatal(err)
	}
	checkRoundTrip(t, c, s)
}

func checkRoundTrip(t *testing.T, c *ConsentString, s string) {
	t.Helper()
	if strings.ContainsAny(s, "+/=") {
		t.Error("consent strings must be websafe base64 without padding")
	}
	d, err := Decode(s)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Created.Equal(c.Created) || !d.LastUpdated.Equal(c.LastUpdated) {
		t.Errorf("timestamps: got %v/%v want %v/%v", d.Created, d.LastUpdated, c.Created, c.LastUpdated)
	}
	if d.CMPID != c.CMPID || d.CMPVersion != c.CMPVersion || d.ConsentScreen != c.ConsentScreen {
		t.Errorf("CMP fields: %+v", d)
	}
	if d.ConsentLanguage != c.ConsentLanguage {
		t.Errorf("language = %q, want %q", d.ConsentLanguage, c.ConsentLanguage)
	}
	if d.VendorListVersion != c.VendorListVersion || d.MaxVendorID != c.MaxVendorID {
		t.Errorf("versions: %+v", d)
	}
	for p := 1; p <= 24; p++ {
		if d.PurposesAllowed[p] != c.PurposesAllowed[p] {
			t.Errorf("purpose %d mismatch", p)
		}
	}
	for v := 1; v <= c.MaxVendorID; v++ {
		if d.VendorConsent[v] != c.VendorConsent[v] {
			t.Errorf("vendor %d consent mismatch", v)
		}
	}
}

// TestRoundTripProperty: arbitrary vendor sets survive both encodings.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint16, maxVendor uint16, dense bool) bool {
		max := int(maxVendor%800) + 1
		c := New(time.Unix(1_589_000_000, 0).UTC())
		c.MaxVendorID = max
		// Pseudo-random vendor subset from the seed.
		x := uint32(seed) + 1
		for v := 1; v <= max; v++ {
			x = x*1664525 + 1013904223
			threshold := uint32(1 << 30)
			if dense {
				threshold = 3 << 30
			}
			if x < threshold {
				c.VendorConsent[v] = true
			}
		}
		c.PurposesAllowed[int(seed%5)+1] = true
		for _, enc := range []VendorEncoding{EncodingBitField, EncodingRange} {
			s, err := c.EncodeWith(enc)
			if err != nil {
				return false
			}
			d, err := Decode(s)
			if err != nil {
				return false
			}
			if d.MaxVendorID != max {
				return false
			}
			for v := 1; v <= max; v++ {
				if d.VendorConsent[v] != c.VendorConsent[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEncodePicksSmaller(t *testing.T) {
	// All vendors consent: range encoding (default=1, zero entries)
	// is far smaller than a 4000-bit field.
	c := New(time.Unix(1_589_000_000, 0).UTC())
	c.SetAllPurposes(true)
	c.SetAllVendors(4000, true)
	auto, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	bf, _ := c.EncodeWith(EncodingBitField)
	rg, _ := c.EncodeWith(EncodingRange)
	if len(rg) >= len(bf) {
		t.Fatalf("range (%d) should beat bitfield (%d) here", len(rg), len(bf))
	}
	if auto != rg {
		t.Error("Encode must pick the smaller encoding")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"",              // empty
		"!!!not-b64!!!", // invalid base64
		"AAAA",          // truncated
	}
	for _, s := range cases {
		if _, err := Decode(s); err == nil {
			t.Errorf("Decode(%q): want error", s)
		}
	}
	// Wrong version: craft a string with version 2 in the first 6 bits.
	c := sampleConsent()
	s, _ := c.Encode()
	raw := []byte(s)
	raw[0] = 'C' // flips version bits
	if _, err := Decode(string(raw)); err == nil {
		t.Error("version mismatch must fail")
	}
}

func TestDecodePaddedBase64(t *testing.T) {
	c := sampleConsent()
	s, err := c.EncodeWith(EncodingBitField)
	if err != nil {
		t.Fatal(err)
	}
	padded := s
	for len(padded)%4 != 0 {
		padded += "="
	}
	if padded == s {
		padded = s // nothing to pad; still exercises the path
	}
	if _, err := Decode(padded); err != nil {
		t.Errorf("padded consent strings must decode: %v", err)
	}
}

func TestConsentedVendors(t *testing.T) {
	c := sampleConsent()
	got := c.ConsentedVendors()
	want := []int{1, 17, 599}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestEncodeValidation(t *testing.T) {
	c := New(time.Unix(0, 0))
	c.ConsentLanguage = "E" // too short
	if _, err := c.Encode(); err == nil {
		t.Error("bad language must fail")
	}
	c = New(time.Unix(0, 0))
	c.ConsentLanguage = "E1"
	if _, err := c.Encode(); err == nil {
		t.Error("non-letter language must fail")
	}
	c = New(time.Unix(0, 0))
	c.MaxVendorID = 1 << 16
	if _, err := c.Encode(); err == nil {
		t.Error("oversized MaxVendorID must fail")
	}
}

func TestPurposesAndFeatures(t *testing.T) {
	ps := Purposes()
	if len(ps) != 5 {
		t.Fatalf("want 5 purposes (Table A.1), got %d", len(ps))
	}
	if ps[0].Name != "Information storage and access" {
		t.Errorf("purpose 1 = %q", ps[0].Name)
	}
	for i, p := range ps {
		if p.ID != i+1 || p.Definition == "" {
			t.Errorf("purpose %d malformed", i+1)
		}
	}
	fs := Features()
	if len(fs) != 3 {
		t.Fatalf("want 3 features (Table A.1), got %d", len(fs))
	}
	if fs[2].Name != "Precise geographic location data" {
		t.Errorf("feature 3 = %q", fs[2].Name)
	}
	if PurposeName(2) != "Personalisation" || PurposeName(99) != "" {
		t.Error("PurposeName lookup broken")
	}
}

func TestCMPAPI(t *testing.T) {
	api := NewCMPAPI(true, true)
	if api.Ping().CMPLoaded {
		t.Error("CMP must not report loaded before Load")
	}
	api.Load()
	ping := api.Ping()
	if !ping.CMPLoaded || !ping.GDPRAppliesGlobally {
		t.Errorf("ping = %+v", ping)
	}
	if _, err := api.GetConsentData(); err != ErrNoConsent {
		t.Error("GetConsentData before decision must fail")
	}
	c := sampleConsent()
	api.RecordConsent(c)
	data, err := api.GetConsentData()
	if err != nil {
		t.Fatal(err)
	}
	if !data.GDPRApplies || !data.HasGlobalScope || data.ConsentData == "" {
		t.Errorf("consent data = %+v", data)
	}
	if _, err := Decode(data.ConsentData); err != nil {
		t.Errorf("API consent string must decode: %v", err)
	}
	if api.Consent() != c {
		t.Error("Consent accessor broken")
	}
}

func TestTimestampGranularity(t *testing.T) {
	// The wire format stores deciseconds; sub-decisecond precision is
	// truncated, not rounded.
	c := New(time.Date(2020, 1, 2, 3, 4, 5, 678_000_000, time.UTC))
	c.MaxVendorID = 1
	s, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decode(s)
	if err != nil {
		t.Fatal(err)
	}
	want := time.Date(2020, 1, 2, 3, 4, 5, 600_000_000, time.UTC)
	if !d.Created.Equal(want) {
		t.Errorf("created = %v, want %v", d.Created, want)
	}
}
