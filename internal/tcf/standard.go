package tcf

// Purpose is a standardized TCF v1 data-processing purpose (Table A.1).
type Purpose struct {
	ID   int
	Name string
	// Definition is the standardized text shown to users.
	Definition string
}

// Feature is a standardized TCF v1 feature: a method of data use that
// overlaps multiple purposes (Table A.1).
type Feature struct {
	ID         int
	Name       string
	Definition string
}

// Purposes returns the five purposes defined in version 1 of the TCF,
// verbatim from Table A.1. The slice is freshly allocated.
func Purposes() []Purpose {
	return []Purpose{
		{1, "Information storage and access",
			"The storage of information, or access to information that is already stored, on your device such as advertising identifiers, device identifiers, cookies, and similar technologies."},
		{2, "Personalisation",
			"The collection and processing of information about your use of this service to subsequently personalise advertising and/or content for you in other contexts, such as on other websites or apps, over time."},
		{3, "Ad selection, delivery, reporting",
			"The collection of information, and combination with previously collected information, to select and deliver advertisements for you, and to measure the delivery and effectiveness of such advertisements."},
		{4, "Content selection, delivery, reporting",
			"The collection of information, and combination with previously collected information, to select and deliver content for you, and to measure the delivery and effectiveness of such content."},
		{5, "Measurement",
			"The collection of information about your use of the content, and combination with previously collected information, used to measure, understand, and report on your usage of the service."},
	}
}

// Features returns the three features defined in version 1 of the TCF
// (Table A.1).
func Features() []Feature {
	return []Feature{
		{1, "Offline data matching",
			"Combining data from offline sources that were initially collected in other contexts with data collected online in support of one or more purposes."},
		{2, "Device linking",
			"Processing data to link multiple devices that belong to the same user in support of one or more purposes."},
		{3, "Precise geographic location data",
			"Collecting and supporting precise geographic location data in support of one or more purposes."},
	}
}

// PurposeName returns the name for a purpose ID, or "" if unknown.
func PurposeName(id int) string {
	for _, p := range Purposes() {
		if p.ID == id {
			return p.Name
		}
	}
	return ""
}
