package tcf

import (
	"testing"
	"time"
)

// FuzzDecode hardens the v1 consent-string parser against arbitrary
// input: it must never panic, and anything it accepts must re-encode
// to a string that decodes to the same vendor set.
func FuzzDecode(f *testing.F) {
	c := sampleConsent()
	for _, enc := range []VendorEncoding{EncodingBitField, EncodingRange} {
		if s, err := c.EncodeWith(enc); err == nil {
			f.Add(s)
		}
	}
	f.Add("")
	f.Add("BOzapMAOzapMAAAAAAENAA-AAAAfTAAA")
	f.Add("!!!!")
	f.Fuzz(func(t *testing.T, s string) {
		d, err := Decode(s)
		if err != nil {
			return
		}
		re, err := d.Encode()
		if err != nil {
			t.Fatalf("accepted string failed to re-encode: %v", err)
		}
		d2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded string failed to decode: %v", err)
		}
		if d2.MaxVendorID != d.MaxVendorID {
			t.Fatalf("MaxVendorID drifted: %d → %d", d.MaxVendorID, d2.MaxVendorID)
		}
		for v := 1; v <= d.MaxVendorID; v++ {
			if d.VendorConsent[v] != d2.VendorConsent[v] {
				t.Fatalf("vendor %d consent drifted", v)
			}
		}
	})
}

// FuzzDecodeV2 does the same for the v2 parser, including optional
// segments.
func FuzzDecodeV2(f *testing.F) {
	c := NewV2(time.Unix(1_596_000_000, 0).UTC())
	c.MaxVendorID = 20
	c.VendorConsent[3] = true
	c.DisclosedVendors[5] = true
	c.HasPublisherTC = true
	c.PubPurposesConsent[1] = true
	if s, err := c.EncodeV2(); err == nil {
		f.Add(s)
	}
	f.Add("COw.seg.seg")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		d, err := DecodeV2(s)
		if err != nil {
			return
		}
		re, err := d.EncodeV2()
		if err != nil {
			t.Fatalf("accepted v2 string failed to re-encode: %v", err)
		}
		d2, err := DecodeV2(re)
		if err != nil {
			t.Fatalf("re-encoded v2 string failed to decode: %v", err)
		}
		for v := 1; v <= d.MaxVendorID; v++ {
			if d.VendorConsent[v] != d2.VendorConsent[v] {
				t.Fatalf("v2 vendor %d consent drifted", v)
			}
		}
	})
}
