package tcf

import "errors"

// The __cmp() function is standardized as part of the IAB's
// Transparency & Consent Framework. The paper instruments two of its
// commands to timestamp the consent dialog lifecycle:
//
//	__cmp('ping', ...)            — the dialog framework has loaded
//	__cmp('getConsentData', ...)  — the user's decision is available
//
// CMPAPI models that surface for the simulated dialogs.

// PingResult mirrors the TCF v1.1 ping response.
type PingResult struct {
	GDPRAppliesGlobally bool
	CMPLoaded           bool
}

// ConsentData mirrors the TCF v1.1 getConsentData response.
type ConsentData struct {
	// ConsentData is the websafe-base64 consent string.
	ConsentData    string
	GDPRApplies    bool
	HasGlobalScope bool
}

// ErrNoConsent is returned by GetConsentData before the user decided.
var ErrNoConsent = errors.New("tcf: no consent decision recorded")

// CMPAPI is the scriptable state of an embedded CMP on one page view.
type CMPAPI struct {
	loaded      bool
	gdprApplies bool
	globalScope bool
	consent     *ConsentString
}

// NewCMPAPI returns an API facade for a page where GDPR applies as
// indicated. globalScope marks CMPs that store consent in the shared
// consensu.org cookie rather than per-site.
func NewCMPAPI(gdprApplies, globalScope bool) *CMPAPI {
	return &CMPAPI{gdprApplies: gdprApplies, globalScope: globalScope}
}

// Load marks the CMP script as loaded (dialog framework available).
func (a *CMPAPI) Load() { a.loaded = true }

// Ping implements __cmp('ping').
func (a *CMPAPI) Ping() PingResult {
	return PingResult{GDPRAppliesGlobally: a.globalScope, CMPLoaded: a.loaded}
}

// RecordConsent stores the user's decision, as the dialog does when it
// closes.
func (a *CMPAPI) RecordConsent(c *ConsentString) { a.consent = c }

// GetConsentData implements __cmp('getConsentData').
func (a *CMPAPI) GetConsentData() (ConsentData, error) {
	if a.consent == nil {
		return ConsentData{}, ErrNoConsent
	}
	s, err := a.consent.Encode()
	if err != nil {
		return ConsentData{}, err
	}
	return ConsentData{
		ConsentData:    s,
		GDPRApplies:    a.gdprApplies,
		HasGlobalScope: a.globalScope,
	}, nil
}

// Consent returns the stored decision, or nil if none.
func (a *CMPAPI) Consent() *ConsentString { return a.consent }
