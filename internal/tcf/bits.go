package tcf

import (
	"errors"
	"fmt"
)

// bitWriter appends big-endian bit fields to a byte buffer, as required
// by the TCF consent-string wire format.
type bitWriter struct {
	buf  []byte
	nbit int // total bits written
}

// writeBits appends the low n bits of v, most significant bit first.
func (w *bitWriter) writeBits(v uint64, n int) {
	for i := n - 1; i >= 0; i-- {
		bit := byte(v>>uint(i)) & 1
		if w.nbit%8 == 0 {
			w.buf = append(w.buf, 0)
		}
		if bit == 1 {
			w.buf[w.nbit/8] |= 1 << uint(7-w.nbit%8)
		}
		w.nbit++
	}
}

// writeBool appends a single bit.
func (w *bitWriter) writeBool(b bool) {
	if b {
		w.writeBits(1, 1)
	} else {
		w.writeBits(0, 1)
	}
}

// bytes returns the buffer, zero-padded to a whole byte.
func (w *bitWriter) bytes() []byte { return w.buf }

// bitReader consumes big-endian bit fields from a byte buffer.
type bitReader struct {
	buf []byte
	pos int // bit position
}

var errShortBuffer = errors.New("tcf: consent string truncated")

// readBits reads n bits as an unsigned integer.
func (r *bitReader) readBits(n int) (uint64, error) {
	if r.pos+n > len(r.buf)*8 {
		return 0, errShortBuffer
	}
	var v uint64
	for i := 0; i < n; i++ {
		byteIdx := r.pos / 8
		bit := (r.buf[byteIdx] >> uint(7-r.pos%8)) & 1
		v = v<<1 | uint64(bit)
		r.pos++
	}
	return v, nil
}

// readBool reads a single bit.
func (r *bitReader) readBool() (bool, error) {
	v, err := r.readBits(1)
	return v == 1, err
}

// readLetter reads a 6-bit letter (0='A' ... 25='Z').
func (r *bitReader) readLetter() (byte, error) {
	v, err := r.readBits(6)
	if err != nil {
		return 0, err
	}
	if v > 25 {
		return 0, fmt.Errorf("tcf: invalid 6-bit letter %d", v)
	}
	return byte('A' + v), nil
}

// writeLetter writes a 6-bit letter; only ASCII A-Z (case-insensitive)
// are representable.
func (w *bitWriter) writeLetter(c byte) error {
	switch {
	case c >= 'A' && c <= 'Z':
		w.writeBits(uint64(c-'A'), 6)
	case c >= 'a' && c <= 'z':
		w.writeBits(uint64(c-'a'), 6)
	default:
		return fmt.Errorf("tcf: letter %q not encodable", c)
	}
	return nil
}
