package webserve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cmps"
	"repro/internal/consensu"
	"repro/internal/gvl"
	"repro/internal/simtime"
	"repro/internal/tcf"
	"repro/internal/webworld"
)

func startConsentServer(t *testing.T) (*webworld.World, *consensu.Store, *httptest.Server) {
	t.Helper()
	world := webworld.New(webworld.Config{Seed: 1, Domains: 8_000})
	history := gvl.GenerateHistory(gvl.HistoryConfig{Seed: 1, Versions: 5, InitialVendors: 40, PeakVendors: 80})
	server := NewServer(world, history)
	store := consensu.NewStore()
	server.EnableConsentEndpoints(store)
	ts := httptest.NewServer(server)
	t.Cleanup(ts.Close)
	return world, store, ts
}

func cmpRequest(t *testing.T, ts *httptest.Server, method, path, body string) (*http.Response, string) {
	t.Helper()
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, ts.URL+path, rdr)
	if err != nil {
		t.Fatal(err)
	}
	req.Host = cmps.Quantcast.Hostname()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp, string(data)
}

func findConsentSite(w *webworld.World, pred func(*webworld.Domain) bool) *webworld.Domain {
	day := simtime.Table1Snapshot
	for _, d := range w.Domains() {
		cmp := d.CMPAt(day)
		if cmp == cmps.Quantcast && cmp.ImplementsTCF() && pred(d) {
			return d
		}
	}
	return nil
}

// TestConsentOverHTTP drives the full wire-level flow: an honest site
// records the rejection; CookieAccess returns a non-granting cookie.
func TestConsentOverHTTP(t *testing.T) {
	world, store, ts := startConsentServer(t)
	site := findConsentSite(world, func(d *webworld.Domain) bool { return !d.IgnoresOptOut })
	if site == nil {
		t.Skip("no honest Quantcast site")
	}
	// Fresh user: CookieAccess 404s.
	resp, _ := cmpRequest(t, ts, http.MethodGet, "/CookieAccess?user=u1", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("fresh CookieAccess status = %d", resp.StatusCode)
	}
	// Post a rejection.
	resp, _ = cmpRequest(t, ts, http.MethodPost, "/consent",
		`{"site":"`+site.Name+`","user":"u1","decision":"reject"}`)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("consent POST status = %d", resp.StatusCode)
	}
	// The global cookie now exists and grants nothing.
	resp, body := cmpRequest(t, ts, http.MethodGet, "/CookieAccess?user=u1", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("CookieAccess status = %d", resp.StatusCode)
	}
	c, err := tcf.Decode(body)
	if err != nil {
		t.Fatalf("cookie must be a valid consent string: %v", err)
	}
	if len(c.ConsentedVendors()) != 0 {
		t.Error("honest rejection must grant nothing")
	}
	if store.Len() != 1 {
		t.Errorf("store holds %d cookies", store.Len())
	}
}

// TestConsentOverHTTPViolation: an IgnoresOptOut site stores a full
// grant for an explicit rejection — the violation visible from the
// wire alone.
func TestConsentOverHTTPViolation(t *testing.T) {
	world, _, ts := startConsentServer(t)
	site := findConsentSite(world, func(d *webworld.Domain) bool { return d.IgnoresOptOut })
	if site == nil {
		t.Skip("no violating Quantcast site")
	}
	resp, _ := cmpRequest(t, ts, http.MethodPost, "/consent",
		`{"site":"`+site.Name+`","user":"u2","decision":"reject"}`)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("consent POST status = %d", resp.StatusCode)
	}
	_, body := cmpRequest(t, ts, http.MethodGet, "/CookieAccess?user=u2", "")
	c, err := tcf.Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.ConsentedVendors()) == 0 {
		t.Error("the violating site must have stored a grant despite the opt-out")
	}
}

func TestConsentEndpointValidation(t *testing.T) {
	_, _, ts := startConsentServer(t)
	// Missing user.
	resp, _ := cmpRequest(t, ts, http.MethodGet, "/CookieAccess", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing user: %d", resp.StatusCode)
	}
	// Unknown site.
	resp, _ = cmpRequest(t, ts, http.MethodPost, "/consent", `{"site":"nope.example","user":"u","decision":"accept"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown site: %d", resp.StatusCode)
	}
	// Malformed body.
	resp, _ = cmpRequest(t, ts, http.MethodPost, "/consent", "not json")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: %d", resp.StatusCode)
	}
	// Non-TCF CMP host rejects the endpoints.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/CookieAccess?user=u", nil)
	req.Host = cmps.TrustArc.Hostname()
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Errorf("non-TCF host: %d", r2.StatusCode)
	}
}

// TestConsentEndpointsDisabled: without an attached store the paths
// fall through to the script handler.
func TestConsentEndpointsDisabled(t *testing.T) {
	world := webworld.New(webworld.Config{Seed: 1, Domains: 200})
	ts := httptest.NewServer(NewServer(world, nil))
	t.Cleanup(ts.Close)
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/CookieAccess?user=u", nil)
	req.Host = cmps.Quantcast.Hostname()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), "__cmp") {
		t.Errorf("disabled endpoints must serve the framework script: %d %q", resp.StatusCode, data)
	}
}
