// Package webserve exposes the synthetic web over real HTTP. A single
// net/http server answers for every hostname of the simulated internet
// — websites, CMP endpoints (cdn.cookielaw.org, *.consensu.org, …) and
// third-party trackers — by routing on the request's Host header,
// exactly as a CDN edge would. The companion Crawler dials the server
// for every hostname (a DNS override, the standard technique for
// testing crawlers against a fixture web) and reconstructs captures
// from genuine HTTP traffic.
//
// Simulation context travels in headers: X-Sim-Day carries the
// simulated date (in reality: the wall clock), X-Sim-Geo the visitor's
// region (in reality: GeoIP on the source address), X-Sim-Cloud the
// address-space class (in reality: published cloud IP ranges). The
// serving logic itself is ordinary HTTP.
package webserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/cmps"
	"repro/internal/consensu"
	"repro/internal/gvl"
	"repro/internal/psl"
	"repro/internal/simtime"
	"repro/internal/tcf"
	"repro/internal/webworld"
)

// Context headers.
const (
	HeaderDay   = "X-Sim-Day"
	HeaderGeo   = "X-Sim-Geo"
	HeaderCloud = "X-Sim-Cloud"
)

// Server serves the synthetic web.
type Server struct {
	world *webworld.World
	// gvl, when set, is served at vendorlist.consensu.org.
	gvl *gvl.History
	// consents, when set, backs the CMP consent endpoints: POST
	// /consent records decisions, GET /CookieAccess returns the stored
	// global cookie — the endpoint the paper queried at
	// api.quantcast.mgr.consensu.org/CookieAccess.
	consents *consensu.Store
}

// NewServer returns a server over the world; history may be nil.
func NewServer(w *webworld.World, history *gvl.History) *Server {
	return &Server{world: w, gvl: history}
}

// EnableConsentEndpoints attaches a consent store to the CMP hosts.
func (s *Server) EnableConsentEndpoints(store *consensu.Store) {
	s.consents = store
}

// ctxFromRequest decodes the simulation headers.
func ctxFromRequest(r *http.Request) webworld.VisitContext {
	ctx := webworld.VisitContext{Day: simtime.Table1Snapshot, Geo: webworld.GeoEU}
	if v := r.Header.Get(HeaderDay); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			ctx.Day = simtime.Day(n)
		}
	}
	if r.Header.Get(HeaderGeo) == "US" {
		ctx.Geo = webworld.GeoUS
	}
	ctx.Cloud = r.Header.Get(HeaderCloud) == "1"
	return ctx
}

// ServeHTTP implements http.Handler, routing on the Host header.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	host := strings.ToLower(r.Host)
	if i := strings.IndexByte(host, ':'); i >= 0 {
		host = host[:i]
	}
	switch {
	case host == "vendorlist.consensu.org":
		s.serveVendorList(w, r)
		return
	case cmps.ByHostname(host) != cmps.None:
		s.serveCMPResource(w, r, cmps.ByHostname(host))
		return
	case isTrackerHost(host):
		w.Header().Set("Content-Type", "image/gif")
		w.Write([]byte("GIF89a tracking pixel"))
		return
	case host == "cdn-challenge.example.net":
		w.Header().Set("Content-Type", "application/javascript")
		w.Write([]byte("/* interstitial challenge */"))
		return
	}
	s.serveSite(w, r, host)
}

// isTrackerHost matches the unrelated third parties the synthetic web
// embeds.
func isTrackerHost(host string) bool {
	switch host {
	case "www.google-analytics.com", "securepubads.g.doubleclick.net",
		"connect.facebook.net", "cdn.jsdelivr.net", "static.hotjar.com":
		return true
	}
	return false
}

// serveSite renders a website page as HTML.
func (s *Server) serveSite(w http.ResponseWriter, r *http.Request, host string) {
	domain, err := psl.EffectiveTLDPlusOne(strings.TrimPrefix(host, "www."))
	if err != nil {
		domain = strings.TrimPrefix(host, "www.")
	}
	d := s.world.Domain(domain)
	if d == nil {
		http.NotFound(w, r)
		return
	}
	// Real HTTP redirect for alias domains; the crawler follows it.
	if d.RedirectTo != "" {
		target := "http://www." + d.RedirectTo + r.URL.Path
		http.Redirect(w, r, target, http.StatusMovedPermanently)
		return
	}
	ctx := ctxFromRequest(r)
	page, err := s.world.Visit(domain, r.URL.Path, ctx)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	if page.Status != 200 {
		if page.Status == 0 {
			// No valid HTTP response: hijack-free approximation.
			http.Error(w, "invalid response", http.StatusInternalServerError)
			return
		}
		http.Error(w, page.ScreenshotText, page.Status)
		return
	}
	for _, c := range page.Cookies {
		http.SetCookie(w, &http.Cookie{Name: c.Name, Value: c.Value, Domain: c.Domain, Path: "/"})
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, "<!doctype html><html><head><title>%s</title>\n", domain)
	for _, res := range page.Resources {
		if res.Host == page.FinalHost {
			continue // first-party assets are inlined below
		}
		fmt.Fprintf(w, "<script src=\"http://%s%s\" data-start-ms=\"%d\"></script>\n",
			res.Host, res.Path, res.StartMS)
	}
	fmt.Fprintf(w, "</head><body>\n<!-- screenshot: %s -->\n%s\n</body></html>\n",
		page.ScreenshotText, page.DOM)
}

// serveCMPResource serves a CMP endpoint: dialog script, per-site
// config, and (when a consent store is attached) the consent-recording
// and CookieAccess endpoints of a TCF CMP.
func (s *Server) serveCMPResource(w http.ResponseWriter, r *http.Request, id cmps.ID) {
	switch {
	case r.URL.Path == "/CookieAccess" && s.consents != nil:
		s.serveCookieAccess(w, r, id)
	case r.URL.Path == "/consent" && r.Method == http.MethodPost && s.consents != nil:
		s.serveConsentPost(w, r, id)
	case strings.HasSuffix(r.URL.Path, ".json"):
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"cmp":%q,"tcf":%t}`, id.String(), id.ImplementsTCF())
	default:
		w.Header().Set("Content-Type", "application/javascript")
		fmt.Fprintf(w, "/* %s consent dialog framework */ window.__cmp=function(){};", id)
	}
}

// serveCookieAccess returns a user's stored global consent cookie —
// "manually fetching https://api.quantcast.mgr.consensu.org/
// CookieAccess, which returns the user's existing Quantcast TCF
// cookie" (Section 3.2).
func (s *Server) serveCookieAccess(w http.ResponseWriter, r *http.Request, id cmps.ID) {
	if !id.ImplementsTCF() {
		http.Error(w, "CMP does not store global TCF cookies", http.StatusNotFound)
		return
	}
	user := r.URL.Query().Get("user")
	if user == "" {
		http.Error(w, "missing user", http.StatusBadRequest)
		return
	}
	cookie, err := s.consents.CookieAccess(user)
	if err != nil {
		http.Error(w, "no consent cookie", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprint(w, cookie)
}

// consentPost is the POST /consent request body.
type consentPost struct {
	Site     string `json:"site"`
	User     string `json:"user"`
	Decision string `json:"decision"` // "accept" or "reject"
}

// serveConsentPost records a dialog decision made on a site into the
// global store, honouring the site's (possibly defective)
// implementation: IgnoresOptOut sites store a full grant even for
// explicit rejections.
func (s *Server) serveConsentPost(w http.ResponseWriter, r *http.Request, id cmps.ID) {
	if !id.ImplementsTCF() {
		http.Error(w, "CMP does not store global TCF cookies", http.StatusNotFound)
		return
	}
	var req consentPost
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<10)).Decode(&req); err != nil {
		http.Error(w, "malformed request: "+err.Error(), http.StatusBadRequest)
		return
	}
	d := s.world.Domain(req.Site)
	if d == nil || req.User == "" {
		http.Error(w, "unknown site or missing user", http.StatusBadRequest)
		return
	}
	ctx := ctxFromRequest(r)
	grant := req.Decision == "accept" || d.IgnoresOptOut
	c := tcf.New(ctx.Day.Time())
	c.MaxVendorID = 500
	if grant {
		c.SetAllPurposes(true)
		c.SetAllVendors(500, true)
	}
	encoded, err := c.Encode()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if err := s.consents.Set(req.User, encoded); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// serveVendorList serves the GVL version appropriate for the request's
// simulated day, mirroring vendorlist.consensu.org.
func (s *Server) serveVendorList(w http.ResponseWriter, r *http.Request) {
	if s.gvl == nil || len(s.gvl.Versions) == 0 {
		http.Error(w, "no vendor list configured", http.StatusNotFound)
		return
	}
	ctx := ctxFromRequest(r)
	// Versioned path /vN/vendor-list.json or the latest as of the day.
	list := s.listForDay(ctx.Day)
	var vn int
	if _, err := fmt.Sscanf(r.URL.Path, "/v%d/vendor-list.json", &vn); err == nil {
		list = nil
		for i := range s.gvl.Versions {
			if s.gvl.Versions[i].VendorListVersion == vn {
				list = &s.gvl.Versions[i]
				break
			}
		}
		if list == nil {
			http.NotFound(w, r)
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(list); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// listForDay returns the latest version published on or before day.
func (s *Server) listForDay(day simtime.Day) *gvl.List {
	best := &s.gvl.Versions[0]
	for i := range s.gvl.Versions {
		l := &s.gvl.Versions[i]
		if !l.LastUpdated.After(day.Time()) {
			best = l
		}
	}
	return best
}
