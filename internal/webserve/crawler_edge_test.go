package webserve

import (
	"net/http"
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/cmps"
	"repro/internal/simtime"
	"repro/internal/webworld"
)

func TestHTTPCrawlUnknownHost(t *testing.T) {
	_, _, ts := startServer(t)
	crawler := NewCrawler(serverAddr(t, ts))
	cap, err := crawler.Fetch("http://www.not-in-universe.example/", 100, capture.EUCloud)
	if err != nil {
		t.Fatal(err)
	}
	if cap.Status != http.StatusNotFound {
		t.Errorf("status = %d, want 404", cap.Status)
	}
}

func TestHTTPCrawlBadSeed(t *testing.T) {
	_, _, ts := startServer(t)
	crawler := NewCrawler(serverAddr(t, ts))
	cap, err := crawler.Fetch("::bad::", 100, capture.EUCloud)
	if err != nil {
		t.Fatal(err)
	}
	if !cap.Failed {
		t.Error("malformed seeds must fail the capture")
	}
}

func TestHTTPCrawl451(t *testing.T) {
	world, _, ts := startServer(t)
	var d *webworld.Domain
	for _, cand := range world.Domains() {
		if cand.Geo451 && cand.RedirectTo == "" && !cand.Unreachable {
			d = cand
			break
		}
	}
	if d == nil {
		t.Skip("no 451 domain")
	}
	crawler := NewCrawler(serverAddr(t, ts))
	day := findCalmDay(world, d, simtime.Table1Snapshot)
	eu, err := crawler.Fetch("http://www."+d.Name+"/", day, capture.EUCloud)
	if err != nil {
		t.Fatal(err)
	}
	if eu.Status != http.StatusUnavailableForLegalReasons {
		t.Errorf("EU status = %d, want 451", eu.Status)
	}
}

// findCalmDay skips transient-outage days near the anchor.
func findCalmDay(w *webworld.World, d *webworld.Domain, anchor simtime.Day) simtime.Day {
	for off := simtime.Day(0); off < 30; off++ {
		if !w.TransientDown(d.Name, anchor+off) {
			return anchor + off
		}
	}
	return anchor
}

func TestHTTPCrawlTimeout(t *testing.T) {
	_, _, ts := startServer(t)
	crawler := NewCrawler(serverAddr(t, ts))
	crawler.Timeout = time.Nanosecond // everything times out
	cap, err := crawler.Fetch("http://www.whatever.example/", 100, capture.EUCloud)
	if err != nil {
		t.Fatal(err)
	}
	if !cap.Failed {
		t.Error("deadline exceeded must fail the capture")
	}
}

func TestHTTPCrawlCookies(t *testing.T) {
	world, _, ts := startServer(t)
	day := simtime.Table1Snapshot
	d := findSite(world, day, func(d *webworld.Domain) bool {
		return d.PreChoiceConsent && d.CMPAt(day) != cmps.None && d.CMPAt(day).ImplementsTCF() &&
			!d.AntiBot && !d.EUOnlyEmbed && !d.SlowLoad && !d.CMPSubsitesOnly &&
			!world.TransientDown(d.Name, day)
	})
	if d == nil {
		t.Skip("no pre-choice-consent site")
	}
	crawler := NewCrawler(serverAddr(t, ts))
	cap, err := crawler.Fetch("http://www."+d.Name+"/", day, capture.EUUniversity)
	if err != nil || cap.Failed {
		t.Fatalf("%v %s", err, cap.Error)
	}
	found := false
	for _, ck := range cap.Cookies {
		if ck.Name == "euconsent" && ck.Value != "" {
			found = true
		}
	}
	if !found {
		t.Error("pre-choice consent cookie must cross the wire")
	}
}
