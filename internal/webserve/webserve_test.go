package webserve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/capture"
	"repro/internal/cmps"
	"repro/internal/detect"
	"repro/internal/gvl"
	"repro/internal/simtime"
	"repro/internal/webworld"
)

func startServer(t *testing.T) (*webworld.World, *gvl.History, *httptest.Server) {
	t.Helper()
	world := webworld.New(webworld.Config{Seed: 1, Domains: 8_000})
	history := gvl.GenerateHistory(gvl.HistoryConfig{Seed: 1, Versions: 20, InitialVendors: 50, PeakVendors: 120})
	ts := httptest.NewServer(NewServer(world, history))
	t.Cleanup(ts.Close)
	return world, history, ts
}

func serverAddr(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	u, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

func findSite(w *webworld.World, day simtime.Day, pred func(*webworld.Domain) bool) *webworld.Domain {
	for _, d := range w.Domains() {
		if pred(d) && !d.Unreachable && !d.NoValidResponse && !d.HTTPError && d.RedirectTo == "" && !d.Geo451 {
			return d
		}
	}
	return nil
}

func TestHTTPCrawlDetectsCMP(t *testing.T) {
	world, _, ts := startServer(t)
	day := simtime.Table1Snapshot
	d := findSite(world, day, func(d *webworld.Domain) bool {
		return d.CMPAt(day) != cmps.None && !d.AntiBot && !d.EUOnlyEmbed && !d.SlowLoad
	})
	if d == nil {
		t.Skip("no suitable site")
	}
	crawler := NewCrawler(serverAddr(t, ts))
	cap, err := crawler.Fetch("http://www."+d.Name+"/", day, capture.EUUniversity)
	if err != nil {
		t.Fatal(err)
	}
	if cap.Failed {
		t.Fatalf("crawl failed: %s", cap.Error)
	}
	if cap.FinalDomain != d.Name || cap.Status != 200 {
		t.Fatalf("capture: domain=%q status=%d", cap.FinalDomain, cap.Status)
	}
	det := detect.Default()
	if got := det.DetectOne(cap); got != d.CMPAt(day) {
		t.Errorf("HTTP detection = %v, ground truth %v", got, d.CMPAt(day))
	}
	if !strings.Contains(cap.ScreenshotText, "") || cap.DOM == "" {
		t.Error("screenshot/DOM not reconstructed from HTML")
	}
}

func TestHTTPCrawlNoCMPSite(t *testing.T) {
	world, _, ts := startServer(t)
	day := simtime.Table1Snapshot
	d := findSite(world, day, func(d *webworld.Domain) bool { return len(d.Episodes) == 0 })
	if d == nil {
		t.Skip("no CMP-less site")
	}
	crawler := NewCrawler(serverAddr(t, ts))
	cap, err := crawler.Fetch("http://www."+d.Name+"/", day, capture.EUCloud)
	if err != nil {
		t.Fatal(err)
	}
	if got := detect.Default().DetectOne(cap); got != cmps.None {
		t.Errorf("false positive: %v", got)
	}
}

func TestHTTPRedirectFollowed(t *testing.T) {
	world, _, ts := startServer(t)
	var d *webworld.Domain
	for _, cand := range world.Domains() {
		if cand.RedirectTo != "" {
			if target := world.Domain(cand.RedirectTo); target != nil && !target.Unreachable &&
				!target.HTTPError && !target.NoValidResponse && !target.Geo451 {
				d = cand
				break
			}
		}
	}
	if d == nil {
		t.Skip("no redirect domain")
	}
	crawler := NewCrawler(serverAddr(t, ts))
	cap, err := crawler.Fetch("http://www."+d.Name+"/", simtime.Table1Snapshot, capture.EUUniversity)
	if err != nil {
		t.Fatal(err)
	}
	if cap.Failed {
		t.Fatalf("crawl failed: %s", cap.Error)
	}
	if cap.FinalDomain == d.Name {
		t.Errorf("redirect not followed: final=%q", cap.FinalDomain)
	}
	// The chain is logged: first request got a 301.
	if len(cap.Requests) < 2 || cap.Requests[0].Status != http.StatusMovedPermanently {
		t.Errorf("redirect chain not logged: %+v", cap.Requests[:1])
	}
}

func TestHTTPAntiBotVantage(t *testing.T) {
	world, _, ts := startServer(t)
	day := simtime.Table1Snapshot
	d := findSite(world, day, func(d *webworld.Domain) bool {
		return d.AntiBot && d.CMPAt(day) != cmps.None
	})
	if d == nil {
		t.Skip("no anti-bot site")
	}
	crawler := NewCrawler(serverAddr(t, ts))
	cloud, err := crawler.Fetch("http://www."+d.Name+"/", day, capture.EUCloud)
	if err != nil {
		t.Fatal(err)
	}
	if cloud.Status != http.StatusForbidden {
		t.Errorf("cloud crawl status = %d, want 403 interstitial", cloud.Status)
	}
	uni, err := crawler.Fetch("http://www."+d.Name+"/", day, capture.EUUniversity)
	if err != nil {
		t.Fatal(err)
	}
	if uni.Status != http.StatusOK {
		t.Errorf("university crawl status = %d", uni.Status)
	}
}

func TestHTTPGeoHeaders(t *testing.T) {
	world, _, ts := startServer(t)
	day := simtime.Table1Snapshot
	d := findSite(world, day, func(d *webworld.Domain) bool {
		return d.EUOnlyEmbed && d.USVisibleFrom == 0 && d.CMPAt(day) != cmps.None && !d.AntiBot && !d.SlowLoad
	})
	if d == nil {
		t.Skip("no EU-only site")
	}
	crawler := NewCrawler(serverAddr(t, ts))
	det := detect.Default()
	eu, _ := crawler.Fetch("http://www."+d.Name+"/", day, capture.EUUniversity)
	us, _ := crawler.Fetch("http://www."+d.Name+"/", day, capture.USCloud)
	if det.DetectOne(eu) == cmps.None {
		t.Error("EU crawl must see the CMP")
	}
	if us.Status == http.StatusOK && det.DetectOne(us) != cmps.None {
		t.Error("US crawl must not see an EU-only CMP")
	}
}

func TestVendorListEndpoint(t *testing.T) {
	_, history, ts := startServer(t)
	get := func(path string, day simtime.Day) (*http.Response, []byte) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		req.Host = "vendorlist.consensu.org"
		req.Header.Set(HeaderDay, fmt.Sprint(int(day)))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp, body
	}
	// Versioned fetch.
	resp, body := get("/v5/vendor-list.json", 100)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var list gvl.List
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if list.VendorListVersion != 5 {
		t.Errorf("version = %d", list.VendorListVersion)
	}
	// Latest-as-of-day fetch.
	last := history.Versions[len(history.Versions)-1]
	resp, body = get("/vendor-list.json", simtime.Day(simtime.NumDays-1))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if list.VendorListVersion != last.VendorListVersion {
		t.Errorf("latest version = %d, want %d", list.VendorListVersion, last.VendorListVersion)
	}
	// Unknown version.
	resp, _ = get("/v999/vendor-list.json", 100)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown version status = %d", resp.StatusCode)
	}
}

func TestUnknownHostIs404(t *testing.T) {
	_, _, ts := startServer(t)
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/", nil)
	req.Host = "www.never-registered.example"
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

// TestHTTPvsSimulatedBrowserAgreement: the HTTP pipeline and the
// simulated browser must classify the same sites identically.
func TestHTTPvsSimulatedBrowserAgreement(t *testing.T) {
	world, _, ts := startServer(t)
	day := simtime.Table1Snapshot
	crawler := NewCrawler(serverAddr(t, ts))
	det := detect.Default()
	checked := 0
	for _, d := range world.Domains() {
		if checked >= 40 {
			break
		}
		if d.Unreachable || d.NoValidResponse || d.HTTPError || d.Geo451 || d.RedirectTo != "" || d.SlowLoad {
			continue
		}
		checked++
		cap, err := crawler.Fetch("http://www."+d.Name+"/", day, capture.EUUniversity)
		if err != nil || cap.Failed {
			t.Fatalf("%s: %v %s", d.Name, err, cap.Error)
		}
		httpGot := det.DetectOne(cap)
		want := d.CMPAt(day)
		if d.EUOnlyEmbed && d.USVisibleFrom == 0 {
			// EU university crawl sees EU-only CMPs; nothing changes.
			_ = want
		}
		if httpGot != want {
			// Bare landing pages never exist (index 0 is never bare),
			// so disagreement is a real bug.
			t.Errorf("%s: http=%v truth=%v", d.Name, httpGot, want)
		}
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
}
