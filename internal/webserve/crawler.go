package webserve

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"regexp"
	"strings"
	"time"

	"repro/internal/capture"
	"repro/internal/psl"
	"repro/internal/simtime"
	"repro/internal/webworld"
)

// Crawler fetches pages from a Server over genuine HTTP: it resolves
// every hostname to the server's address (a DNS override), follows
// redirects, extracts subresource URLs from the returned HTML, fetches
// them, and assembles a capture — the same artifact the simulated
// browser produces, but built from the wire.
type Crawler struct {
	client *http.Client
	// Timeout bounds one full page load including subresources.
	Timeout time.Duration
}

// NewCrawler returns a crawler whose transport dials serverAddr
// ("host:port") for every hostname.
func NewCrawler(serverAddr string) *Crawler {
	dialer := &net.Dialer{Timeout: 5 * time.Second}
	transport := &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			return dialer.DialContext(ctx, network, serverAddr)
		},
		MaxIdleConnsPerHost: 8,
	}
	return &Crawler{
		client: &http.Client{
			Transport: transport,
			// Redirects are followed manually so the chain is logged.
			CheckRedirect: func(req *http.Request, via []*http.Request) error {
				return http.ErrUseLastResponse
			},
		},
		Timeout: 30 * time.Second,
	}
}

// scriptSrc extracts subresource URLs from the served HTML.
var scriptSrc = regexp.MustCompile(`<script src="(http://[^"]+)"`)

// Fetch crawls one seed URL in the given simulation context and
// returns the assembled capture.
func (c *Crawler) Fetch(seedURL string, day simtime.Day, vantage capture.Vantage) (*capture.Capture, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.Timeout)
	defer cancel()

	cap := &capture.Capture{
		SeedURL: seedURL,
		Day:     day,
		Vantage: vantage,
		Config:  "http",
	}

	// Follow the redirect chain manually, logging each hop.
	current := seedURL
	var resp *http.Response
	var body []byte
	for hop := 0; hop < 8; hop++ {
		var err error
		resp, body, err = c.get(ctx, current, day, vantage)
		if err != nil {
			cap.Failed = true
			cap.Error = err.Error()
			return cap, nil
		}
		u, _ := url.Parse(current)
		cap.Requests = append(cap.Requests, capture.Request{
			Host: u.Hostname(), Path: u.Path, Status: resp.StatusCode,
			BytesRaw: len(body), BytesCompressed: len(body),
		})
		if resp.StatusCode/100 != 3 {
			break
		}
		loc := resp.Header.Get("Location")
		if loc == "" {
			break
		}
		next, err := url.Parse(loc)
		if err != nil {
			cap.Failed = true
			cap.Error = "bad redirect: " + err.Error()
			return cap, nil
		}
		current = u.ResolveReference(next).String()
	}
	final, _ := url.Parse(current)
	cap.FinalURL = current
	cap.Status = resp.StatusCode
	host := strings.TrimPrefix(strings.ToLower(final.Hostname()), "www.")
	if d, err := psl.EffectiveTLDPlusOne(host); err == nil {
		cap.FinalDomain = d
	} else {
		cap.FinalDomain = host
	}
	if resp.StatusCode != http.StatusOK {
		cap.ScreenshotText = string(body)
		return cap, nil
	}

	// Record cookies the document set.
	for _, ck := range resp.Cookies() {
		cap.Cookies = append(cap.Cookies, webworld.Cookie{
			Domain: ck.Domain, Name: ck.Name, Value: ck.Value,
		})
	}

	// Extract the screenshot comment and the DOM from the HTML.
	html := string(body)
	if i := strings.Index(html, "<!-- screenshot: "); i >= 0 {
		rest := html[i+len("<!-- screenshot: "):]
		if j := strings.Index(rest, " -->"); j >= 0 {
			cap.ScreenshotText = rest[:j]
		}
	}
	cap.DOM = html

	// Fetch third-party subresources, exactly as the browser would.
	for _, m := range scriptSrc.FindAllStringSubmatch(html, -1) {
		ru, err := url.Parse(m[1])
		if err != nil {
			continue
		}
		sub, subBody, err := c.get(ctx, m[1], day, vantage)
		status := 0
		if err == nil {
			status = sub.StatusCode
		}
		cap.Requests = append(cap.Requests, capture.Request{
			Host: ru.Hostname(), Path: ru.Path, Status: status,
			BytesRaw: len(subBody), BytesCompressed: len(subBody),
		})
	}
	return cap, nil
}

// get performs one GET with simulation headers and returns the
// response and its drained body.
func (c *Crawler) get(ctx context.Context, rawURL string, day simtime.Day, vantage capture.Vantage) (*http.Response, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rawURL, nil)
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set(HeaderDay, fmt.Sprint(int(day)))
	req.Header.Set(HeaderGeo, vantage.Geo.String())
	if vantage.Cloud {
		req.Header.Set(HeaderCloud, "1")
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, nil, err
	}
	return resp, body, nil
}
