package core
