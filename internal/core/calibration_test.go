package core

import (
	"strconv"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cmps"
	"repro/internal/consent"
	"repro/internal/simtime"
	"repro/internal/stats"
)

// TestCalibrationReport runs the reduced-scale end-to-end study and
// prints the key aggregates next to the paper's values. It asserts
// only weakly; the strong shape assertions live in the dedicated
// integration tests. Run with -v to see the report.
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	s := NewStudy(TestConfig())
	s.RunSocialCrawl(nil)

	t.Logf("captures=%d domains-observed=%d multiCMP=%d",
		s.Observations.Total, s.Observations.NumDomains(), s.Observations.MultiCMP)

	top := s.Toplist.Top(s.Config.ToplistSize)
	points, err := s.AdoptionOverTime(len(top), 14)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []simtime.Day{
		simtime.Date(2018, 4, 1), simtime.Date(2018, 6, 15), simtime.Date(2019, 6, 15),
		simtime.Date(2020, 1, 15), simtime.Date(2020, 5, 15), simtime.Date(2020, 9, 1),
	} {
		pt := analysis.At(points, d)
		t.Logf("adoption %s: total=%d (%.2f%%) byCMP=%v", d, pt.Total,
			100*float64(pt.Total)/float64(len(top)), fmtCounts(pt.Counts))
	}

	ms, err := s.MarketShareByRank(simtime.Table1Snapshot, []int{100, 500, 1000, 2000, 5000, 10000, s.Config.Domains})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range ms {
		t.Logf("marketshare size=%d total=%.2f%%", pt.Size, 100*pt.TotalShare)
	}

	euuk := analysis.EUUKShare(s.Presence, simtime.Table1Snapshot)
	t.Logf("EU+UK TLD share: QC=%.1f%% OT=%.1f%%", 100*euuk[cmps.Quantcast], 100*euuk[cmps.OneTrust])

	flows, err := s.SwitchingFlows()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cmps.All() {
		t.Logf("flows %s: gains=%d losses=%d adoptions=%d abandons=%d",
			c, flows.GainsFromCompetitors(c), flows.LossesToCompetitors(c),
			flows.Adoptions(c), flows.Abandons(c))
	}

	vt := s.VantageTable(simtime.Table1Snapshot, 1000)
	for _, key := range vt.Configs {
		t.Logf("vantage %-32s total=%3d coverage=%.2f", key, vt.Totals[key], vt.Coverage[key])
	}
	vtJan := s.VantageTable(simtime.TableA3Snapshot, 1000)
	t.Logf("Jan2020 US coverage=%.2f EUcloud=%.2f",
		vtJan.Coverage[analysis.USCloudKey()], vtJan.Coverage[analysis.EUCloudKey()])
	for _, c := range cmps.All() {
		t.Logf("vantage May[%s]: us=%d eu=%d uni=%d | Jan uni=%d", c,
			vt.Count(c, analysis.USCloudKey()), vt.Count(c, analysis.EUCloudKey()),
			vt.Count(c, analysis.EUUniversityExtendedKey()),
			vtJan.Count(c, analysis.EUUniversityExtendedKey()))
	}

	res := s.RunToplistCampaign(simtime.Table1Snapshot, 1000)
	cust := s.Customization(res)
	for _, c := range cmps.All() {
		st := cust[c]
		t.Logf("customization %s: n=%d variants=%v api=%d", c, st.Websites, st.Variants, st.APIOnly)
	}
	t.Logf("API-only share=%.1f%%", 100*analysis.APIOnlyShare(cust))

	exp, err := s.QuantcastExperiment()
	if err != nil {
		t.Fatal(err)
	}
	a, b := exp.DirectReject, exp.MoreOptions
	t.Logf("quantcast A: shown=%d acc=%d rej=%d medAcc=%.2f medRej=%.2f rate=%.2f U=%.0f z=%.2f p=%.4f",
		a.Shown, len(a.AcceptTimes), len(a.RejectTimes), a.MedianAcceptSec, a.MedianRejectSec, a.ConsentRate, a.Test.U, a.Test.Z, a.Test.P)
	t.Logf("quantcast B: shown=%d acc=%d rej=%d medAcc=%.2f medRej=%.2f rate=%.2f U=%.0f z=%.2f p=%.4f",
		b.Shown, len(b.AcceptTimes), len(b.RejectTimes), b.MedianAcceptSec, b.MedianRejectSec, b.ConsentRate, b.Test.U, b.Test.Z, b.Test.P)
	t.Logf("total shown=%d timestamps=%d", exp.TotalShown, exp.Timestamps)

	runs := s.TrustArcOptOut()
	med := consent.MedianTotalMS(runs) / 1000
	r0 := runs[0]
	t.Logf("trustarc: runs=%d medianTotal=%.1fs clicks=%d extraReq=%d extraDomains=%d extraMB=%.2f/%.2f",
		len(runs), med, r0.Clicks, r0.ExtraRequests, r0.ExtraDomains,
		float64(r0.ExtraBytesCompressed)/1e6, float64(r0.ExtraBytesRaw)/1e6)

	series := s.GVL.PurposeSeries()
	first, last := series[0], series[len(series)-1]
	t.Logf("gvl: v1 vendors=%d  v215 vendors=%d netLI2C=%d", first.VendorCount, last.VendorCount, s.GVL.NetLegIntToConsent())
	if s.Observations.Total == 0 {
		t.Fatal("no captures recorded")
	}
	_ = stats.Summary{}
}

// fmtCounts renders a CMP-count map in cmps.All order.
func fmtCounts(m map[cmps.ID]int) string {
	out := ""
	for _, c := range cmps.All() {
		out += c.String() + ":" + strconv.Itoa(m[c]) + " "
	}
	return out
}
