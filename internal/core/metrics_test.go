package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/simtime"
)

// The registered families must track the memoization counters live.
func TestStudyRegisterMetrics(t *testing.T) {
	cfg := TestConfig()
	cfg.Domains = 3_000
	cfg.ToplistSize = 300
	cfg.CampaignCache = 2
	s := NewStudy(cfg)
	reg := obs.NewRegistry()
	s.RegisterMetrics(reg)

	day := simtime.Table1Snapshot
	s.RunToplistCampaign(day, 100) // miss
	s.RunToplistCampaign(day, 100) // hit
	s.RunToplistCampaign(day, 200) // miss

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"study_campaign_cache_hits_total 1",
		"study_campaign_cache_misses_total 2",
		"study_campaign_cache_entries 2",
		"study_campaign_cache_bound 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// hit ratio = 1/3
	if !strings.Contains(text, "study_campaign_cache_hit_ratio 0.333") {
		t.Errorf("exposition missing hit ratio ≈ 1/3:\n%s", text)
	}
	if err := obs.ValidateExposition(strings.NewReader(text)); err != nil {
		t.Errorf("invalid exposition: %v", err)
	}
}
