package core

import "repro/internal/obs"

// RegisterMetrics publishes the study's campaign-memoization state on
// reg: hit/miss counters, the live hit ratio, and the cache's entry
// count against its bound. Safe to call while campaigns run.
func (s *Study) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	obs.NewCounterFunc(reg, "study_campaign_cache_hits_total",
		"Toplist campaigns answered from the memoization cache.",
		func() int64 { h, _ := s.CampaignCacheStats(); return h })
	obs.NewCounterFunc(reg, "study_campaign_cache_misses_total",
		"Toplist campaigns that had to crawl.",
		func() int64 { _, m := s.CampaignCacheStats(); return m })
	obs.NewGaugeFunc(reg, "study_campaign_cache_hit_ratio",
		"Cache hits over lookups (0 before the first lookup).",
		func() float64 {
			h, m := s.CampaignCacheStats()
			if h+m == 0 {
				return 0
			}
			return float64(h) / float64(h+m)
		})
	obs.NewGaugeFunc(reg, "study_campaign_cache_entries",
		"Memoized campaigns currently held.",
		func() float64 {
			s.campMu.Lock()
			n := len(s.campCache)
			s.campMu.Unlock()
			return float64(n)
		})
	obs.NewGaugeFunc(reg, "study_campaign_cache_bound",
		"Memoization LRU size bound (0 = disabled).",
		func() float64 { return float64(s.campaignCacheSize()) })
}
