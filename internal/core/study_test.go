package core

import (
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cmps"
	"repro/internal/interp"
	"repro/internal/simtime"
)

// The integration tests share one crawled study; crawling the full
// window once takes a few seconds at TestConfig scale.
var (
	studyOnce sync.Once
	study     *Study
)

func sharedStudy(t *testing.T) *Study {
	t.Helper()
	if testing.Short() {
		t.Skip("integration test")
	}
	studyOnce.Do(func() {
		study = NewStudy(TestConfig())
		study.RunSocialCrawl(nil)
	})
	return study
}

func TestStudyPipelineBasics(t *testing.T) {
	s := sharedStudy(t)
	if s.Observations.Total == 0 {
		t.Fatal("no captures")
	}
	if s.Presence.Len() == 0 {
		t.Fatal("no presence reconstructed")
	}
	// Multi-CMP overcounting must be negligible (paper: 0.01%).
	if rate := float64(s.Observations.MultiCMP) / float64(s.Observations.Total); rate > 0.001 {
		t.Errorf("multi-CMP rate = %v", rate)
	}
	// Daily CMP shares must be polarized (paper: 99.8% of domains
	// consistently <5% or >95%).
	below, between, above := s.Observations.DailyShareDistribution(3, 0.05, 0.95)
	total := below + between + above
	if total > 0 {
		if polarized := float64(below+above) / float64(total); polarized < 0.95 {
			t.Errorf("polarized share = %.3f, want > 0.95", polarized)
		}
	}
}

// TestFigure6AdoptionShape: adoption roughly doubles Jun 2018 → Jun
// 2019 → Jun 2020 with spikes after GDPR and CCPA; <1% at the window
// start and ≈10% at the end (abstract + Figure 6).
func TestFigure6AdoptionShape(t *testing.T) {
	s := sharedStudy(t)
	top := s.Toplist.Top(s.Config.ToplistSize)
	pts, err := s.AdoptionOverTime(len(top), 7)
	if err != nil {
		t.Fatal(err)
	}
	share := func(d simtime.Day) float64 {
		return float64(analysis.At(pts, d).Total) / float64(len(top))
	}
	if start := share(simtime.Date(2018, 3, 15)); start > 0.01 {
		t.Errorf("March 2018 share = %.3f, want < 1%%", start)
	}
	if end := share(simtime.Date(2020, 9, 1)); end < 0.07 || end > 0.14 {
		t.Errorf("September 2020 share = %.3f, want ≈10%%", end)
	}
	jun18 := simtime.Date(2018, 6, 15)
	jun19 := simtime.Date(2019, 6, 15)
	jun20 := simtime.Date(2020, 6, 15)
	if gf := analysis.GrowthFactor(pts, jun18, jun19); gf < 1.6 || gf > 3.5 {
		t.Errorf("Jun18→Jun19 growth = %.2f, want ≈2", gf)
	}
	if gf := analysis.GrowthFactor(pts, jun19, jun20); gf < 1.4 || gf > 2.6 {
		t.Errorf("Jun19→Jun20 growth = %.2f, want ≈2", gf)
	}
	// GDPR spike: the month after must clearly exceed the month before.
	before := share(simtime.GDPREffective - 21)
	after := share(simtime.GDPREffective + 21)
	if after < before*1.5 {
		t.Errorf("GDPR spike missing: %.3f → %.3f", before, after)
	}
}

// TestFigure5MarketShareShape: none of the top ~50 embed the studied
// CMPs; adoption peaks in the Tranco 1k–5k range; the long tail never
// vanishes (Figure 5).
func TestFigure5MarketShareShape(t *testing.T) {
	s := sharedStudy(t)
	sizes := []int{100, 1_000, 5_000, s.Config.Domains}
	pts, err := s.MarketShareByRank(simtime.Table1Snapshot, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(sizes) {
		t.Fatalf("points = %d", len(pts))
	}
	top100, top1k, top5k, all := pts[0], pts[1], pts[2], pts[3]
	if top100.TotalShare > 0.08 {
		t.Errorf("top-100 share = %.2f, want small (≈4%%)", top100.TotalShare)
	}
	if top1k.TotalShare < 0.08 || top1k.TotalShare > 0.18 {
		t.Errorf("top-1k share = %.2f, want ≈13%%", top1k.TotalShare)
	}
	if top1k.TotalShare <= top100.TotalShare {
		t.Error("share must rise from top-100 to top-1k")
	}
	if all.TotalShare >= top5k.TotalShare {
		t.Error("cumulative share must decline into the long tail")
	}
	if all.TotalShare == 0 {
		t.Error("the long tail must not vanish")
	}
}

// TestJurisdictionalSkew: Quantcast is EU/UK-heavy relative to
// OneTrust (38.3% vs 16.3% EU+UK TLDs, Section 4.1).
func TestJurisdictionalSkew(t *testing.T) {
	s := sharedStudy(t)
	share := analysis.EUUKShare(s.Presence, simtime.Table1Snapshot)
	if share[cmps.Quantcast] < 0.30 || share[cmps.Quantcast] > 0.60 {
		t.Errorf("Quantcast EU+UK share = %.2f, want ≈0.38", share[cmps.Quantcast])
	}
	if share[cmps.OneTrust] > 0.28 {
		t.Errorf("OneTrust EU+UK share = %.2f, want ≈0.16", share[cmps.OneTrust])
	}
	if share[cmps.Quantcast] < share[cmps.OneTrust]+0.10 {
		t.Error("Quantcast must be clearly more EU-centric than OneTrust")
	}
}

// TestFigure4SwitchingShape: Cookiebot is the "gateway CMP" — it loses
// far more websites to competitors than it gains (Figure 4).
func TestFigure4SwitchingShape(t *testing.T) {
	s := sharedStudy(t)
	m, err := s.SwitchingFlows()
	if err != nil {
		t.Fatal(err)
	}
	cbLoss := m.LossesToCompetitors(cmps.Cookiebot)
	cbGain := m.GainsFromCompetitors(cmps.Cookiebot)
	if cbLoss == 0 {
		t.Error("Cookiebot must lose websites to competitors")
	}
	if cbGain > cbLoss {
		t.Errorf("Cookiebot gains (%d) exceed losses (%d); gateway dynamic missing", cbGain, cbLoss)
	}
	// OneTrust and Quantcast absorb switchers on net.
	if m.NetCompetitive(cmps.OneTrust) < 0 {
		t.Errorf("OneTrust net competitive = %d, want ≥ 0", m.NetCompetitive(cmps.OneTrust))
	}
}

// TestTable1VantageShape: EU cloud sees more than US cloud; the
// university vantage beats both clouds (anti-bot interstitials ≈10%);
// extended timeouts recover ≈2%; language has no effect (Table 1).
func TestTable1VantageShape(t *testing.T) {
	s := sharedStudy(t)
	vt := s.VantageTable(simtime.Table1Snapshot, 1_000)
	us := vt.Coverage[analysis.USCloudKey()]
	eu := vt.Coverage[analysis.EUCloudKey()]
	uniDef := vt.Coverage[analysis.EUUniversityDefaultKey()]
	uniExt := vt.Coverage[analysis.EUUniversityExtendedKey()]
	if !(us < eu && eu < uniDef && uniDef <= uniExt) {
		t.Errorf("coverage ordering violated: us=%.2f eu=%.2f uniDef=%.2f uniExt=%.2f",
			us, eu, uniDef, uniExt)
	}
	if us < 0.70 || us > 0.88 {
		t.Errorf("US coverage = %.2f, want ≈0.79", us)
	}
	if eu-us < 0.03 {
		t.Errorf("EU-vs-US gap = %.2f, want noticeable (EU-only embeds)", eu-us)
	}
	if uniDef-eu < 0.05 {
		t.Errorf("university-vs-cloud gap = %.2f, want ≈0.10 (anti-bot)", uniDef-eu)
	}
	if uniExt-uniDef > 0.06 {
		t.Errorf("timeout effect = %.2f, want ≈0.02", uniExt-uniDef)
	}
	// Language columns track the extended-timeout column.
	de := vt.Coverage["eu-university/lang-de"]
	gb := vt.Coverage["eu-university/lang-en-gb"]
	if absf(de-uniExt) > 0.03 || absf(gb-uniExt) > 0.03 {
		t.Errorf("language must have no significant effect: de=%.2f gb=%.2f ext=%.2f", de, gb, uniExt)
	}
	// Row ordering at the university vantage: OneTrust > Quantcast >
	// TrustArc ≥ Cookiebot (Table 1).
	key := analysis.EUUniversityExtendedKey()
	ot, qc := vt.Count(cmps.OneTrust, key), vt.Count(cmps.Quantcast, key)
	ta, cb := vt.Count(cmps.TrustArc, key), vt.Count(cmps.Cookiebot, key)
	if !(ot > qc && qc > ta) {
		t.Errorf("CMP ordering: OT=%d QC=%d TA=%d CB=%d", ot, qc, ta, cb)
	}
}

// TestTableA3JanuaryComparison: US coverage was markedly lower in
// January 2020 than in May 2020 (CCPA adoption outside the EU), and
// Crownpeak collapses between the snapshots (Table A.3 vs Table 1).
func TestTableA3JanuaryComparison(t *testing.T) {
	s := sharedStudy(t)
	may := s.VantageTable(simtime.Table1Snapshot, 1_000)
	jan := s.VantageTable(simtime.TableA3Snapshot, 1_000)
	if jan.Coverage[analysis.USCloudKey()] >= may.Coverage[analysis.USCloudKey()] {
		t.Errorf("US coverage must rise Jan→May: %.2f → %.2f",
			jan.Coverage[analysis.USCloudKey()], may.Coverage[analysis.USCloudKey()])
	}
	key := analysis.EUUniversityExtendedKey()
	cpJan := jan.Count(cmps.Crownpeak, key)
	cpMay := may.Count(cmps.Crownpeak, key)
	if cpMay > cpJan {
		t.Errorf("Crownpeak must decline Jan→May: %d → %d", cpJan, cpMay)
	}
}

// TestCustomizationI3: the publisher-customization distributions of
// Section 4.1 at the EU-university vantage.
func TestCustomizationI3(t *testing.T) {
	s := sharedStudy(t)
	res := s.RunToplistCampaign(simtime.Table1Snapshot, 2_000)
	stats := s.Customization(res)
	qc := stats[cmps.Quantcast]
	if qc.Websites < 20 {
		t.Skipf("too few Quantcast sites (%d) for distribution checks", qc.Websites)
	}
	direct := qc.VariantShare("direct-reject")
	more := qc.VariantShare("more-options")
	if direct < 0.35 || direct > 0.68 {
		t.Errorf("Quantcast 1-click-reject share = %.2f, want ≈0.55·(1-api)", direct)
	}
	if direct+more < 0.8 {
		t.Errorf("Quantcast closed customization must cover most sites: %.2f", direct+more)
	}
	ot := stats[cmps.OneTrust]
	if ot.VariantShare("conventional-banner") < 0.55 {
		t.Errorf("OneTrust conventional share = %.2f, want ≈0.61+", ot.VariantShare("conventional-banner"))
	}
	api := analysis.APIOnlyShare(stats)
	if api < 0.03 || api > 0.15 {
		t.Errorf("API-only share = %.2f, want ≈0.08", api)
	}
}

// TestMissingDataBreakdown reproduces the Section 3.5 reachability
// classification proportions.
func TestMissingDataBreakdown(t *testing.T) {
	s := sharedStudy(t)
	top := s.Toplist.Top(s.Config.ToplistSize)
	md := analysis.ComputeMissingData(s.World, top, func(domain string) bool {
		d := s.World.Domain(domain)
		return d != nil && !d.NeverShared
	})
	if md.NeverShared == 0 {
		t.Fatal("some toplist domains are never shared (1076/10k in the paper)")
	}
	share := float64(md.NeverShared) / float64(md.ToplistSize)
	if share < 0.05 || share > 0.20 {
		t.Errorf("never-shared share = %.3f, want ≈0.11", share)
	}
	if md.Unreachable == 0 || md.Infrastructure == 0 {
		t.Errorf("breakdown incomplete: %+v", md)
	}
	if md.Unreachable < md.HTTPError {
		t.Errorf("unreachable (%d) should dominate HTTP errors (%d), as in the paper (315 vs 70)",
			md.Unreachable, md.HTTPError)
	}
}

// TestInterpolationAblation: disabling interpolation and fade-out must
// strictly reduce measured presence.
func TestInterpolationAblation(t *testing.T) {
	s := sharedStudy(t)
	raw := s.RebuildPresence(interp.Options{NoInterpolation: true, FadeOut: -1})
	top := s.Toplist.Top(s.Config.ToplistSize)
	full := analysis.AdoptionOverTime(s.Presence, top, 30)
	ablated := analysis.AdoptionOverTime(raw, top, 30)
	var fullSum, ablatedSum int
	for i := range full {
		fullSum += full[i].Total
		ablatedSum += ablated[i].Total
	}
	if ablatedSum >= fullSum {
		t.Errorf("ablation must reduce presence: %d vs %d", ablatedSum, fullSum)
	}
	if ablatedSum == 0 {
		t.Error("raw observations must still show presence on capture days")
	}
}

// TestAdoptionSpikeDetection: the GDPR month spikes; enforcement and
// guidance events do not (Figure 6's causal claim, automated).
func TestAdoptionSpikeDetection(t *testing.T) {
	s := sharedStudy(t)
	pts, err := s.AdoptionOverTime(s.Config.ToplistSize, 7)
	if err != nil {
		t.Fatal(err)
	}
	spikes := analysis.DetectAdoptionSpikes(pts, 3)
	if !analysis.SpikeNear(spikes, simtime.GDPREffective, 62) {
		t.Errorf("GDPR spike not detected: %+v", spikes)
	}
	for _, ev := range simtime.Events() {
		if ev.Kind == simtime.LawEffective {
			continue
		}
		if analysis.SpikeNear(spikes, ev.Day, 20) {
			t.Errorf("non-law event %q coincides with a spike", ev.Name)
		}
	}
}

// TestCoverageSeriesTrend: US-cloud coverage rises through the CCPA
// wave while the EU vantages stay flat (Tables 1/A.3 continuously).
func TestCoverageSeriesTrend(t *testing.T) {
	s := sharedStudy(t)
	pts := s.CoverageSeries(simtime.Date(2019, 6, 1), simtime.Date(2020, 5, 31), 500)
	if len(pts) < 10 {
		t.Fatalf("points = %d", len(pts))
	}
	first, last := pts[0], pts[len(pts)-1]
	if last.USCloud-first.USCloud < 0.04 {
		t.Errorf("US coverage must rise through the CCPA wave: %.2f → %.2f",
			first.USCloud, last.USCloud)
	}
	if absf(last.UniDefault-first.UniDefault) > 0.05 {
		t.Errorf("university coverage should stay flat: %.2f → %.2f",
			first.UniDefault, last.UniDefault)
	}
}

// TestComplianceSurvey checks the Matte-et-al violation shares on the
// synthetic web.
func TestComplianceSurvey(t *testing.T) {
	s := sharedStudy(t)
	res, err := s.ComplianceSurvey(simtime.Table1Snapshot, s.Config.ToplistSize)
	if err != nil {
		t.Fatal(err)
	}
	if res.Audited < 50 {
		t.Fatalf("audited only %d sites", res.Audited)
	}
}

// TestPromptChanges recovers the Figure 1 annotation: Quantcast's
// prompt changed 38 times over the observation period.
func TestPromptChanges(t *testing.T) {
	s := sharedStudy(t)
	changes := s.PromptChanges()
	qc := changes[cmps.Quantcast]
	// Weekly sampling of a rotating candidate pool recovers most but
	// not necessarily all 38 changes (some revisions live < 1 week).
	if qc < 28 || qc > 38 {
		t.Errorf("Quantcast prompt changes observed = %d, want ≈38", qc)
	}
	if changes[cmps.OneTrust] <= changes[cmps.LiveRamp] {
		t.Errorf("OneTrust (%d) should change more than late-launching LiveRamp (%d)",
			changes[cmps.OneTrust], changes[cmps.LiveRamp])
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestCampaignMemoization pins the RunToplistCampaign cache contract:
// repeated calls share the memoized result, the LRU bound evicts the
// least recently used key, touching an entry protects it, and a
// negative CampaignCache disables memoization entirely.
func TestCampaignMemoization(t *testing.T) {
	cfg := TestConfig()
	cfg.Domains = 3_000
	cfg.ToplistSize = 300
	cfg.CampaignCache = 2
	s := NewStudy(cfg)
	day := simtime.Table1Snapshot

	a := s.RunToplistCampaign(day, 100)
	if b := s.RunToplistCampaign(day, 100); b != a {
		t.Fatal("repeated call must return the cached pointer")
	}
	if h, m := s.CampaignCacheStats(); h != 1 || m != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", h, m)
	}

	// Fill past the bound of 2: keys (day,200) and (day,300) push
	// (day,100) out; re-requesting it must recompute.
	s.RunToplistCampaign(day, 200)
	s.RunToplistCampaign(day, 300)
	c := s.RunToplistCampaign(day, 100)
	if c == a {
		t.Fatal("evicted entry must be recomputed, not resurrected")
	}
	if len(c.Probes) != len(a.Probes) {
		t.Fatalf("recomputed campaign diverged: %d probes vs %d", len(c.Probes), len(a.Probes))
	}

	// LRU, not FIFO: cache now holds {300, 100}; touching 300 makes
	// 100 the eviction victim when 500 is inserted.
	d300 := s.RunToplistCampaign(day, 300)
	s.RunToplistCampaign(day, 500)
	if got := s.RunToplistCampaign(day, 300); got != d300 {
		t.Fatal("recently touched entry must survive eviction")
	}

	s.FlushCampaignCache()
	if got := s.RunToplistCampaign(day, 300); got == d300 {
		t.Fatal("flush must drop memoized campaigns")
	}

	cfg.CampaignCache = -1
	s2 := NewStudy(cfg)
	x := s2.RunToplistCampaign(day, 100)
	if y := s2.RunToplistCampaign(day, 100); y == x {
		t.Fatal("negative CampaignCache must disable memoization")
	}
	if h, m := s2.CampaignCacheStats(); h != 0 || m != 0 {
		t.Fatalf("disabled cache counted %d hits / %d misses", h, m)
	}
}
