// Package core orchestrates the full reproduction: it wires the
// synthetic web, the social-media feed, the Netograph-style crawler,
// CMP detection, presence interpolation, the toplist campaigns, the
// GVL history, and the consent-dialog experiments into a single Study
// that can regenerate every table and figure of the paper.
package core

import (
	"fmt"
	"sync"

	"repro/internal/analysis"
	"repro/internal/browser"
	"repro/internal/capture"
	"repro/internal/cmps"
	"repro/internal/compliance"
	"repro/internal/consent"
	"repro/internal/crawler"
	"repro/internal/detect"
	"repro/internal/gvl"
	"repro/internal/interp"
	"repro/internal/simtime"
	"repro/internal/socialfeed"
	"repro/internal/toplist"
	"repro/internal/webworld"
)

// Config scales the study. The zero value is unusable; use
// DefaultConfig (paper-shaped, minutes of CPU) or TestConfig (seconds).
type Config struct {
	Seed uint64
	// Domains is the synthetic-web universe size.
	Domains int
	// SharesPerDay is the social-feed ingestion rate.
	SharesPerDay int
	// Workers is crawl concurrency.
	Workers int
	// ToplistSize is the Tranco-style list length used for rank-based
	// analyses (the paper uses the top 10k for Tables 1/A.3 and
	// Figure 6, and the top 1M for Figure 5).
	ToplistSize int
	// CampaignCache bounds the campaign memoization: RunToplistCampaign
	// results are kept in an LRU keyed by (day, topN) so repeated
	// analyses (VantageTable, Customization, CoverageSeries) reuse
	// crawls instead of redoing them. 0 means the default of 8 entries;
	// negative disables memoization.
	CampaignCache int
	// CrawlFrom / CrawlTo bound the social crawl; zero values mean the
	// full observation window.
	CrawlFrom, CrawlTo simtime.Day
}

// DefaultConfig is the full reproduction scale (≈1/100 of the paper's
// capture volume).
func DefaultConfig() Config {
	return Config{
		Seed:         1,
		Domains:      100_000,
		SharesPerDay: 2_000,
		Workers:      8,
		ToplistSize:  10_000,
		CrawlTo:      simtime.Day(simtime.NumDays - 1),
	}
}

// TestConfig is a reduced scale for unit and integration tests.
func TestConfig() Config {
	return Config{
		Seed:         1,
		Domains:      12_000,
		SharesPerDay: 400,
		Workers:      8,
		ToplistSize:  2_000,
		CrawlTo:      simtime.Day(simtime.NumDays - 1),
	}
}

// Study bundles the whole measurement apparatus.
type Study struct {
	Config       Config
	World        *webworld.World
	Feed         *socialfeed.Feed
	Platform     *crawler.Platform
	Detector     *detect.Detector
	Observations *detect.Observations
	// Presence is available after RunSocialCrawl.
	Presence *analysis.PresenceDB
	// Toplist is the Tranco-style list (created 30 January 2020, as
	// in the paper).
	Toplist *toplist.List
	// GVL is the generated Global Vendor List history.
	GVL *gvl.History

	crawled bool

	// Campaign memoization (see Config.CampaignCache). campOrder holds
	// the cached keys in LRU order, most recently used last.
	campMu     sync.Mutex
	campCache  map[campaignKey]*crawler.CampaignResult
	campOrder  []campaignKey
	campHits   int64
	campMisses int64
}

// campaignKey identifies one memoized toplist campaign. The world,
// toplist and seed are fixed per Study, so (day, topN) fully
// determines a campaign's result and entries never go stale; the only
// eviction is the LRU size bound.
type campaignKey struct {
	day  simtime.Day
	topN int
}

// defaultCampaignCache is the memoization bound when
// Config.CampaignCache is zero. Sized to hold a typical monthly
// CoverageSeries window; campaigns retain full captures (DOM included)
// so the bound also caps memory.
const defaultCampaignCache = 8

// NewStudy builds all components; no crawling happens yet.
func NewStudy(cfg Config) *Study {
	if cfg.Domains <= 0 {
		cfg = DefaultConfig()
	}
	if cfg.CrawlTo == 0 {
		cfg.CrawlTo = simtime.Day(simtime.NumDays - 1)
	}
	world := webworld.New(webworld.Config{Seed: cfg.Seed, Domains: cfg.Domains})
	det := detect.Default()
	s := &Study{
		Config:       cfg,
		World:        world,
		Feed:         socialfeed.New(world, socialfeed.Config{Seed: cfg.Seed, SharesPerDay: cfg.SharesPerDay}),
		Platform:     crawler.NewPlatform(world, crawler.Config{Seed: cfg.Seed, Workers: cfg.Workers}),
		Detector:     det,
		Observations: detect.NewObservations(det),
		GVL:          gvl.GenerateHistory(gvl.HistoryConfig{Seed: cfg.Seed, Versions: 215, InitialVendors: 150, PeakVendors: 650}),
	}
	// The list covers the full universe so rank-based analyses can
	// slice any prefix (Figure 5 goes to the top 1M).
	s.Toplist = toplist.Build(toplist.Config{Seed: cfg.Seed, Size: cfg.Domains},
		simtime.TrancoListDate, world.TrueOrder())
	return s
}

// RunSocialCrawl executes the longitudinal social-media crawl and
// builds the presence database. progress may be nil.
func (s *Study) RunSocialCrawl(progress func(day simtime.Day, captures int64)) {
	s.Platform.CrawlWindow(s.Feed, s.Config.CrawlFrom, s.Config.CrawlTo, s.Observations, progress)
	s.Presence = analysis.BuildPresence(s.Observations, interp.Options{})
	s.crawled = true
}

// RebuildPresence rebuilds the presence database with different
// interpolation options (ablations).
func (s *Study) RebuildPresence(opts interp.Options) *analysis.PresenceDB {
	return analysis.BuildPresence(s.Observations, opts)
}

// RunToplistCampaign crawls the top-N toplist domains with all six
// vantage configurations at a snapshot day. Results are memoized in a
// bounded LRU keyed by (day, topN) — the world and toplist are fixed
// per Study, so a repeated call returns the cached (shared, read-only)
// result instead of re-crawling. Crawl concurrency follows
// Config.Workers (≤0 means GOMAXPROCS).
func (s *Study) RunToplistCampaign(day simtime.Day, topN int) *crawler.CampaignResult {
	key := campaignKey{day: day, topN: topN}
	if res := s.campaignLookup(key); res != nil {
		return res
	}
	c := &crawler.Campaign{
		World:   s.World,
		Domains: s.Toplist.Top(topN),
		Day:     day,
		Workers: s.Config.Workers,
	}
	res := c.Run()
	s.campaignInsert(key, res)
	return res
}

// campaignLookup returns the memoized campaign for key, updating LRU
// order and the hit/miss counters.
func (s *Study) campaignLookup(key campaignKey) *crawler.CampaignResult {
	if s.campaignCacheSize() == 0 {
		return nil
	}
	s.campMu.Lock()
	defer s.campMu.Unlock()
	res, ok := s.campCache[key]
	if !ok {
		s.campMisses++
		return nil
	}
	s.campHits++
	for i, k := range s.campOrder {
		if k == key {
			s.campOrder = append(append(s.campOrder[:i:i], s.campOrder[i+1:]...), key)
			break
		}
	}
	return res
}

// campaignInsert memoizes a campaign result, evicting the least
// recently used entry beyond the size bound. Concurrent misses for the
// same key may both crawl; the later insert simply overwrites with an
// identical (deterministic) result.
func (s *Study) campaignInsert(key campaignKey, res *crawler.CampaignResult) {
	size := s.campaignCacheSize()
	if size == 0 {
		return
	}
	s.campMu.Lock()
	defer s.campMu.Unlock()
	if s.campCache == nil {
		s.campCache = make(map[campaignKey]*crawler.CampaignResult, size)
	}
	if _, ok := s.campCache[key]; !ok {
		s.campOrder = append(s.campOrder, key)
	}
	s.campCache[key] = res
	for len(s.campOrder) > size {
		evict := s.campOrder[0]
		s.campOrder = s.campOrder[1:]
		delete(s.campCache, evict)
	}
}

// campaignCacheSize resolves Config.CampaignCache (0 → default,
// negative → disabled).
func (s *Study) campaignCacheSize() int {
	switch {
	case s.Config.CampaignCache < 0:
		return 0
	case s.Config.CampaignCache == 0:
		return defaultCampaignCache
	default:
		return s.Config.CampaignCache
	}
}

// CampaignCacheStats returns the memoization hit/miss counters, for
// observability in cmd/analyze and benchmarks.
func (s *Study) CampaignCacheStats() (hits, misses int64) {
	s.campMu.Lock()
	defer s.campMu.Unlock()
	return s.campHits, s.campMisses
}

// FlushCampaignCache drops all memoized campaigns (the counters are
// kept). Entries never go stale — the world and toplist are immutable
// per Study — so this exists only to release memory.
func (s *Study) FlushCampaignCache() {
	s.campMu.Lock()
	defer s.campMu.Unlock()
	s.campCache = nil
	s.campOrder = nil
}

// VantageTable computes Table 1 (day = simtime.Table1Snapshot) or
// Table A.3 (day = simtime.TableA3Snapshot).
func (s *Study) VantageTable(day simtime.Day, topN int) *analysis.VantageTable {
	return analysis.ComputeVantageTable(s.RunToplistCampaign(day, topN), s.Detector)
}

// MarketShareByRank computes Figure 5/A.4–A.6 at a snapshot day.
func (s *Study) MarketShareByRank(day simtime.Day, sizes []int) ([]analysis.MarketSharePoint, error) {
	if err := s.needPresence(); err != nil {
		return nil, err
	}
	return analysis.MarketShareByRank(s.Presence, s.Toplist, day, sizes), nil
}

// AdoptionOverTime computes Figure 6 over the top-N toplist domains.
func (s *Study) AdoptionOverTime(topN, stepDays int) ([]analysis.AdoptionPoint, error) {
	if err := s.needPresence(); err != nil {
		return nil, err
	}
	return analysis.AdoptionOverTime(s.Presence, s.Toplist.Top(topN), stepDays), nil
}

// SwitchingFlows computes Figure 4.
func (s *Study) SwitchingFlows() (*analysis.FlowMatrix, error) {
	if err := s.needPresence(); err != nil {
		return nil, err
	}
	return analysis.SwitchingFlows(s.Presence), nil
}

// Customization computes the item-I3 statistics from the default
// EU-university store of a toplist campaign.
func (s *Study) Customization(res *crawler.CampaignResult) map[cmps.ID]*analysis.CustomizationStats {
	return analysis.ComputeCustomization(EUUniversityStore(res), s.Detector)
}

func (s *Study) needPresence() error {
	if !s.crawled {
		return fmt.Errorf("core: social crawl has not run; call RunSocialCrawl first")
	}
	return nil
}

// CoverageSeries computes the monthly vantage-coverage series over the
// toplist top-N (the continuous version of Tables 1 and A.3).
func (s *Study) CoverageSeries(from, to simtime.Day, topN int) []analysis.CoveragePoint {
	days := analysis.MonthlyDays(from, to)
	return analysis.CoverageSeries(func(day simtime.Day) *analysis.VantageTable {
		return s.VantageTable(day, topN)
	}, days)
}

// ComplianceSurvey audits every toplist top-N site running a TCF CMP
// at the day for the Matte-et-al violation classes.
func (s *Study) ComplianceSurvey(day simtime.Day, topN int) (*compliance.SurveyResult, error) {
	auditor := compliance.New(s.World)
	return auditor.Survey(s.Toplist.Top(topN), day)
}

// PromptChanges recovers each CMP's prompt-change history from a
// longitudinal series of dialog captures (Figure 1's annotation): the
// EU-university browser visits dialog-showing sites of each CMP weekly
// across the window and counts the distinct prompt revisions in the
// stored DOMs.
func (s *Study) PromptChanges() map[cmps.ID]int {
	b := browser.New(s.World, browser.Options{StoreDOM: true})
	// Precompute dialog-showing candidate sites per CMP, cheapest-rank
	// first, so the weekly loop only checks episode coverage.
	candidates := make(map[cmps.ID][]*webworld.Domain, cmps.Count)
	for _, d := range s.World.Domains() {
		if len(d.Episodes) == 0 || d.Unreachable || d.RedirectTo != "" || d.Geo451 ||
			d.APIOnly || d.ShowDialogOnlyEU || d.SlowLoad ||
			d.Custom.Variant == webworld.VariantFooterLink ||
			d.Custom.Variant == webworld.VariantHiddenFromEU {
			continue
		}
		last := d.Episodes[len(d.Episodes)-1].CMP
		if len(candidates[last]) < 64 {
			candidates[last] = append(candidates[last], d)
		}
	}
	out := make(map[cmps.ID]int, cmps.Count)
	for _, c := range cmps.All() {
		var caps []*capture.Capture
		for day := simtime.Day(0); int(day) < simtime.NumDays; day += 7 {
			for _, d := range candidates[c] {
				if d.CMPAt(day) != c || s.World.TransientDown(d.Name, day) {
					continue
				}
				caps = append(caps, b.Load("https://www."+d.Name+"/", day, capture.EUUniversity))
				break
			}
		}
		out[c] = analysis.PromptChangesObserved(caps, s.Detector, c)
	}
	return out
}

// QuantcastExperiment runs the Figure 10 field experiment against the
// latest GVL version.
func (s *Study) QuantcastExperiment() (*consent.ExperimentResult, error) {
	latest := &s.GVL.Versions[len(s.GVL.Versions)-1]
	exp := consent.NewFieldExperiment(s.Config.Seed, latest)
	return consent.Analyze(exp.Run())
}

// TrustArcOptOut runs the Figure 9 hourly measurement series.
func (s *Study) TrustArcOptOut() []*consent.OptOutRun {
	return consent.NewTrustArcFlow(s.Config.Seed).HourlySeries(consent.MeasurementWindowDays)
}

// EUUniversityStore extracts the default-configuration EU-university
// store from a campaign result (the I3 data source).
func EUUniversityStore(res *crawler.CampaignResult) *capture.MemStore {
	return res.Stores[capture.EUUniversity.Name+"/default"]
}
