// Package simtime provides the simulated observation window used across
// the reproduction: March 2018 through September 2020, matching the
// paper's crawl records ("Our records span March 2018–September 2020").
//
// All simulation components index time as whole days since the window
// start. Day indexing keeps the hazard models, interpolation logic, and
// analyses independent from wall-clock time and trivially deterministic.
package simtime

import (
	"fmt"
	"time"
)

// Day is a whole number of days since the start of the observation
// window (2018-03-01). Day 0 is the first day of the window.
type Day int

// Observation window boundaries. The window deliberately starts before
// the GDPR came into effect and covers the introduction of the CCPA,
// exactly as in the paper (Section 3.4).
var (
	WindowStart = time.Date(2018, time.March, 1, 0, 0, 0, 0, time.UTC)
	WindowEnd   = time.Date(2020, time.September, 30, 0, 0, 0, 0, time.UTC)
)

// NumDays is the number of days in the observation window, inclusive of
// both boundary days.
var NumDays = int(WindowEnd.Sub(WindowStart).Hours()/24) + 1

// FromTime converts a wall-clock instant to its Day index. Instants
// before the window map to negative days; callers that require an
// in-window day should check Valid.
func FromTime(t time.Time) Day {
	return Day(int(t.Sub(WindowStart).Hours() / 24))
}

// Date constructs the Day index for a calendar date.
func Date(year int, month time.Month, day int) Day {
	return FromTime(time.Date(year, month, day, 0, 0, 0, 0, time.UTC))
}

// Time returns the instant at midnight UTC of the day.
func (d Day) Time() time.Time {
	return WindowStart.AddDate(0, 0, int(d))
}

// Valid reports whether the day lies inside the observation window.
func (d Day) Valid() bool {
	return d >= 0 && int(d) < NumDays
}

// String formats the day as an ISO date for logs and reports.
func (d Day) String() string {
	return d.Time().Format("2006-01-02")
}

// Month returns the first day of the month containing d, useful for
// monthly aggregation in longitudinal plots.
func (d Day) Month() Day {
	t := d.Time()
	return FromTime(time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, time.UTC))
}

// Well-known days referenced throughout the paper's analyses.
var (
	// GDPREffective is 25 May 2018, when the GDPR came into effect.
	GDPREffective = Date(2018, time.May, 25)
	// CCPAEffective is 1 January 2020, when the CCPA came into effect.
	CCPAEffective = Date(2020, time.January, 1)
	// CCPAEnforced is 1 July 2020, when CCPA enforcement began.
	CCPAEnforced = Date(2020, time.July, 1)
	// Table1Snapshot is the May 2020 snapshot used for Table 1.
	Table1Snapshot = Date(2020, time.May, 15)
	// TableA3Snapshot is the January 2020 snapshot used for Table A.3.
	TableA3Snapshot = Date(2020, time.January, 15)
	// TrancoListDate is 30 January 2020, the creation date of the
	// Tranco list used by the paper (list K8JW).
	TrancoListDate = Date(2020, time.January, 30)
)

// EventKind distinguishes events that drive adoption (laws coming into
// effect) from events the paper found to have no observable effect
// (fines, guidance).
type EventKind int

const (
	// LawEffective marks a privacy law coming into effect; these caused
	// adoption spikes (Figure 6).
	LawEffective EventKind = iota
	// Enforcement marks fines or enforcement actions; no observable
	// effect on adoption in the paper.
	Enforcement
	// Guidance marks regulatory guidance; no observable effect.
	Guidance
)

func (k EventKind) String() string {
	switch k {
	case LawEffective:
		return "law-effective"
	case Enforcement:
		return "enforcement"
	case Guidance:
		return "guidance"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is an entry of the non-exhaustive timeline of events with
// relevance to the GDPR and the CCPA shown alongside Figure 6.
type Event struct {
	Day  Day
	Kind EventKind
	Name string
}

// Events returns the paper's Figure 6 timeline. The slice is freshly
// allocated; callers may reorder or filter it.
func Events() []Event {
	return []Event{
		{Date(2018, time.May, 25), LawEffective, "GDPR comes into effect"},
		{Date(2019, time.January, 21), Enforcement, "CNIL fines Google €50M"},
		{Date(2019, time.July, 4), Guidance, "CNIL cookie guidelines"},
		{Date(2019, time.July, 8), Enforcement, "ICO intends to fine British Airways"},
		{Date(2020, time.January, 1), LawEffective, "CCPA comes into effect"},
		{Date(2020, time.May, 4), Guidance, "EDPB consent guidelines update"},
		{Date(2020, time.July, 1), Enforcement, "CCPA enforcement begins"},
	}
}
