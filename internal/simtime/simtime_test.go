package simtime

import (
	"testing"
	"time"
)

func TestWindow(t *testing.T) {
	if got := FromTime(WindowStart); got != 0 {
		t.Errorf("window start = day %d, want 0", got)
	}
	if !Day(0).Valid() || !Day(NumDays-1).Valid() {
		t.Error("window boundary days must be valid")
	}
	if Day(-1).Valid() || Day(NumDays).Valid() {
		t.Error("days outside the window must be invalid")
	}
	// The window spans March 2018 – September 2020 (~2.5 years).
	if NumDays < 900 || NumDays > 950 {
		t.Errorf("NumDays = %d, want ≈915", NumDays)
	}
}

func TestDayRoundTrip(t *testing.T) {
	for _, d := range []Day{0, 1, 100, 500, Day(NumDays - 1)} {
		if got := FromTime(d.Time()); got != d {
			t.Errorf("round trip %d -> %v -> %d", d, d.Time(), got)
		}
	}
}

func TestDate(t *testing.T) {
	if got := Date(2018, time.March, 1); got != 0 {
		t.Errorf("Date(2018-03-01) = %d, want 0", got)
	}
	if got := Date(2018, time.March, 2); got != 1 {
		t.Errorf("Date(2018-03-02) = %d, want 1", got)
	}
}

func TestKnownDays(t *testing.T) {
	if GDPREffective.String() != "2018-05-25" {
		t.Errorf("GDPR day = %s", GDPREffective)
	}
	if CCPAEffective.String() != "2020-01-01" {
		t.Errorf("CCPA day = %s", CCPAEffective)
	}
	if !GDPREffective.Valid() || !CCPAEffective.Valid() || !Table1Snapshot.Valid() {
		t.Error("well-known days must fall inside the window")
	}
	if GDPREffective >= CCPAEffective {
		t.Error("GDPR must precede CCPA")
	}
}

func TestMonth(t *testing.T) {
	d := Date(2019, time.July, 17)
	m := d.Month()
	if m.String() != "2019-07-01" {
		t.Errorf("Month() = %s", m)
	}
	if m.Month() != m {
		t.Error("Month must be idempotent")
	}
}

func TestEvents(t *testing.T) {
	events := Events()
	if len(events) < 5 {
		t.Fatalf("want a non-trivial timeline, got %d events", len(events))
	}
	laws := 0
	for i, e := range events {
		if !e.Day.Valid() {
			t.Errorf("event %q outside window", e.Name)
		}
		if i > 0 && events[i].Day < events[i-1].Day {
			t.Error("events must be in chronological order")
		}
		if e.Kind == LawEffective {
			laws++
		}
		if e.Kind.String() == "" {
			t.Error("event kind must have a name")
		}
	}
	if laws != 2 {
		t.Errorf("want exactly GDPR and CCPA as law events, got %d", laws)
	}
}
