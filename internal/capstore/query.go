package capstore

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"repro/internal/capture"
	"repro/internal/capturedb"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// Query streams matching captures to fn in canonical store order
// (segment number, then record position); returning false from fn
// stops early. The planner picks the most selective access path:
// domain index, request-host posting list, or a segment scan pruned by
// per-segment day ranges. Results are exactly those a linear
// capturedb.Scan over the segment files would yield.
//
// Queries running concurrently with ingest see a consistent per-shard
// prefix of the store: a record is visible only once it is fully
// indexed.
func (s *Store) Query(q capturedb.Query, fn func(*capture.Capture) bool) error {
	s.counters.queries.Add(1)
	m := s.metrics.Load()
	var start time.Time
	if m != nil {
		start = m.now()
	}
	counts := s.snapshotCounts()
	var total int64
	for _, n := range counts {
		total += int64(n)
	}

	path := "scan"
	switch {
	case q.Domain != "":
		path = "domain-index"
	case q.RequestHost != "":
		path = "host-index"
	}
	var span *obs.Span
	if tr := s.tracer.Load(); tr != nil {
		span = tr.Start("query", obs.A("path", path))
	}

	var scanned, skipped int64
	var err error
	switch path {
	case "domain-index":
		scanned, skipped, err = s.runRefs(s.lookupRefs(s.byDomain, q.Domain, counts), total, q, fn)
	case "host-index":
		scanned, skipped, err = s.runRefs(s.lookupRefs(s.byHost, q.RequestHost, counts), total, q, fn)
	default:
		scanned, skipped, err = s.runScan(counts, q, fn)
	}
	s.counters.rowsScanned.Add(scanned)
	s.counters.rowsSkipped.Add(skipped)
	if m != nil {
		m.QuerySeconds.Observe(m.now().Sub(start).Seconds())
		m.RowsScanned.Observe(float64(scanned))
		m.RowsSkipped.Observe(float64(skipped))
	}
	if span != nil {
		span.Attr("scanned", strconv.FormatInt(scanned, 10))
		span.Attr("skipped", strconv.FormatInt(skipped, 10))
		span.End()
	}
	return err
}

// Count returns the number of matches.
func (s *Store) Count(q capturedb.Query) (int, error) {
	n := 0
	err := s.Query(q, func(*capture.Capture) bool { n++; return true })
	return n, err
}

// snapshotCounts freezes the per-shard record counts visible to one
// query. Records appended afterwards are ignored for the rest of the
// query, keeping results a consistent prefix per shard.
func (s *Store) snapshotCounts() []int32 {
	counts := make([]int32, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		counts[i] = int32(len(sh.recs))
		sh.mu.Unlock()
	}
	return counts
}

// lookupRefs copies an index posting list capped to the snapshot, in
// canonical order.
func (s *Store) lookupRefs(idx map[string][]ref, key string, counts []int32) []ref {
	s.idxMu.RLock()
	postings := idx[key]
	refs := make([]ref, 0, len(postings))
	for _, r := range postings {
		if r.idx < counts[r.shard] {
			refs = append(refs, r)
		}
	}
	s.idxMu.RUnlock()
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].shard != refs[j].shard {
			return refs[i].shard < refs[j].shard
		}
		return refs[i].idx < refs[j].idx
	})
	return refs
}

// runRefs reads exactly the indexed candidate records, pre-filtering
// on the in-memory day/failed metadata so non-candidates never touch
// disk. Every record excluded without a disk read counts as skipped;
// the per-query tallies are returned so Query can book them globally
// and per-query in one place.
func (s *Store) runRefs(refs []ref, total int64, q capturedb.Query, fn func(*capture.Capture) bool) (scanned, skipped int64, err error) {
	skipped = total - int64(len(refs))

	// Fetch metadata per contiguous shard run (refs are sorted),
	// flushing each touched shard once so ReadAt sees the bytes.
	metas := make([]recMeta, len(refs))
	for i := 0; i < len(refs); {
		j := i
		for j < len(refs) && refs[j].shard == refs[i].shard {
			j++
		}
		sh := s.shards[refs[i].shard]
		sh.mu.Lock()
		if err := sh.bw.Flush(); err != nil {
			sh.mu.Unlock()
			return scanned, skipped, err
		}
		for k := i; k < j; k++ {
			metas[k] = sh.recs[refs[k].idx]
		}
		sh.mu.Unlock()
		i = j
	}

	var buf []byte
	for i, r := range refs {
		meta := metas[i]
		if !q.MatchMeta(simtime.Day(meta.day), meta.failed) {
			skipped++
			continue
		}
		c, err := s.readRecord(s.shards[r.shard], meta, &buf)
		if err != nil {
			return scanned, skipped, err
		}
		scanned++
		if !q.Match(c) {
			continue
		}
		if !fn(c) {
			return scanned, skipped, nil
		}
	}
	return scanned, skipped, nil
}

// runScan is the fallback path for queries with no indexed key: every
// segment is scanned in order, skipping whole segments whose day range
// cannot intersect the query's bounds.
func (s *Store) runScan(counts []int32, q capturedb.Query, fn func(*capture.Capture) bool) (scanned, skipped int64, err error) {
	upper, bounded := q.Upper()
	for i, sh := range s.shards {
		n := int(counts[i])
		if n == 0 {
			continue
		}
		sh.mu.Lock()
		minDay, maxDay := sh.minDay, sh.maxDay
		sh.mu.Unlock()
		// Per-segment day-range pruning. The range may have widened
		// past the snapshot under concurrent ingest, which only makes
		// pruning conservative, never wrong.
		if q.From > maxDay || (bounded && upper < minDay) {
			skipped += int64(n)
			continue
		}
		sh.mu.Lock()
		if err := sh.bw.Flush(); err != nil {
			sh.mu.Unlock()
			return scanned, skipped, err
		}
		metas := make([]recMeta, n)
		copy(metas, sh.recs[:n])
		sh.mu.Unlock()

		var buf []byte
		for _, meta := range metas {
			if !q.MatchMeta(simtime.Day(meta.day), meta.failed) {
				skipped++
				continue
			}
			c, err := s.readRecord(sh, meta, &buf)
			if err != nil {
				return scanned, skipped, err
			}
			scanned++
			if !q.Match(c) {
				continue
			}
			if !fn(c) {
				return scanned, skipped, nil
			}
		}
	}
	return scanned, skipped, nil
}

// readRecord fetches and decodes one record by offset, reusing *buf
// across calls.
func (s *Store) readRecord(sh *shard, meta recMeta, buf *[]byte) (*capture.Capture, error) {
	if cap(*buf) < int(meta.length) {
		*buf = make([]byte, meta.length)
	}
	b := (*buf)[:meta.length]
	if _, err := sh.f.ReadAt(b, meta.off); err != nil {
		return nil, fmt.Errorf("capstore: reading record at %d: %w", meta.off, err)
	}
	c, err := capturedb.Decode(b)
	if err != nil {
		return nil, fmt.Errorf("capstore: record at %d: %w", meta.off, err)
	}
	return c, nil
}
