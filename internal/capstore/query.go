package capstore

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/capstore/pack"
	"repro/internal/capture"
	"repro/internal/capturedb"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// Query streams matching captures to fn in canonical store order
// (shard number, then pack-chain position, then tail position);
// returning false from fn stops early. The planner picks the most
// selective access path: domain index, request-host posting list, or
// a scan pruned by per-pack and tail day ranges. Results are exactly
// those a linear capturedb.Scan over the logical record stream (packs
// then tail, per shard) would yield.
//
// Queries running concurrently with ingest and compaction see a
// consistent per-shard prefix of the store: each shard's pack chain,
// tail state, and tail file handle are snapshotted under one lock
// hold, so a record is visible exactly once — in a pack or in the
// tail — and only once it is fully indexed.
func (s *Store) Query(q capturedb.Query, fn func(*capture.Capture) bool) error {
	s.counters.queries.Add(1)
	m := s.metrics.Load()
	var start time.Time
	if m != nil {
		start = m.now()
	}

	path := "scan"
	switch {
	case q.Domain != "":
		path = "domain-index"
	case q.RequestHost != "":
		path = "host-index"
	}
	var span *obs.Span
	if tr := s.tracer.Load(); tr != nil {
		span = tr.Start("query", obs.A("path", path))
	}

	var scanned, skipped int64
	var err error
	switch path {
	case "domain-index":
		scanned, skipped, err = s.runIndexed(indexDomain, q.Domain, q, fn)
	case "host-index":
		scanned, skipped, err = s.runIndexed(indexHost, q.RequestHost, q, fn)
	default:
		scanned, skipped, err = s.runScan(q, fn)
	}
	s.counters.rowsScanned.Add(scanned)
	s.counters.rowsSkipped.Add(skipped)
	if m != nil {
		m.QuerySeconds.Observe(m.now().Sub(start).Seconds())
		m.RowsScanned.Observe(float64(scanned))
		m.RowsSkipped.Observe(float64(skipped))
	}
	if span != nil {
		span.Attr("scanned", strconv.FormatInt(scanned, 10))
		span.Attr("skipped", strconv.FormatInt(skipped, 10))
		span.End()
	}
	return err
}

// Count returns the number of matches.
func (s *Store) Count(q capturedb.Query) (int, error) {
	n := 0
	err := s.Query(q, func(*capture.Capture) bool { n++; return true })
	return n, err
}

type indexKind int

const (
	indexDomain indexKind = iota
	indexHost
)

// shardView is one shard's consistent query snapshot: the pack chain,
// the tail records (or just the indexed candidates), and the tail
// file handle they refer to — all captured under a single lock hold so
// a concurrent compaction can never tear the view.
type shardView struct {
	packs         []*pack.Pack
	packedRecords int64
	tailCount     int
	f             *os.File

	// Indexed path: candidate tail positions and their metadata.
	tailIdxs  []int32
	tailMetas []recMeta

	// Scan path: every tail record's metadata plus the tail day range.
	allMetas []recMeta
	minDay   simtime.Day
	maxDay   simtime.Day
}

func (v *shardView) total() int64 { return v.packedRecords + int64(v.tailCount) }

// snapshotIndexed captures shard sh's view for an indexed query on
// key. The tail buffer is flushed so ReadAt sees every counted byte.
func (sh *shard) snapshotIndexed(kind indexKind, key string) (shardView, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.bw.Flush(); err != nil {
		return shardView{}, err
	}
	v := shardView{
		packs:         sh.packs[:len(sh.packs):len(sh.packs)],
		packedRecords: sh.packedRecords,
		tailCount:     len(sh.recs),
		f:             sh.f,
	}
	var idxs []int32
	if kind == indexDomain {
		idxs = sh.byDomain[key]
	} else {
		idxs = sh.byHost[key]
	}
	v.tailIdxs = append([]int32(nil), idxs...)
	v.tailMetas = make([]recMeta, len(idxs))
	for k, ix := range idxs {
		v.tailMetas[k] = sh.recs[ix]
	}
	return v, nil
}

// snapshotScan captures shard sh's view for a scan.
func (sh *shard) snapshotScan() (shardView, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.bw.Flush(); err != nil {
		return shardView{}, err
	}
	v := shardView{
		packs:         sh.packs[:len(sh.packs):len(sh.packs)],
		packedRecords: sh.packedRecords,
		tailCount:     len(sh.recs),
		f:             sh.f,
		minDay:        sh.minDay,
		maxDay:        sh.maxDay,
	}
	v.allMetas = make([]recMeta, len(sh.recs))
	copy(v.allMetas, sh.recs)
	return v, nil
}

// runIndexed drives a domain or host query: per shard, pack posting
// lists then tail posting lists, reading exactly the candidate records
// and pre-filtering on day/failed metadata so non-candidates never
// touch disk. Every record excluded without a disk read counts as
// skipped, so scanned+skipped equals the snapshot's record total.
func (s *Store) runIndexed(kind indexKind, key string, q capturedb.Query, fn func(*capture.Capture) bool) (scanned, skipped int64, err error) {
	// A domain lives in exactly one shard; hosts can appear anywhere.
	only := -1
	if kind == indexDomain {
		only = s.shardFor(key)
	}
	var buf []byte
	for i, sh := range s.shards {
		if only >= 0 && i != only {
			sh.mu.Lock()
			skipped += sh.logicalRecords()
			sh.mu.Unlock()
			continue
		}
		v, err := sh.snapshotIndexed(kind, key)
		if err != nil {
			return scanned, skipped, err
		}
		var candidates int64
		stop := false
		for _, p := range v.packs {
			var idxs []int32
			var perr error
			if kind == indexDomain {
				idxs, perr = p.Domain(key)
			} else {
				idxs, perr = p.Host(key)
			}
			if perr != nil {
				return scanned, skipped, perr
			}
			candidates += int64(len(idxs))
			if stop || len(idxs) == 0 {
				continue
			}
			recs, perr := p.Recs()
			if perr != nil {
				return scanned, skipped, perr
			}
			for _, ix := range idxs {
				r := recs[ix]
				if !q.MatchMeta(simtime.Day(r.Day), r.Failed) {
					skipped++
					continue
				}
				line, perr := p.ReadRecord(recs, int(ix), &buf)
				if perr != nil {
					return scanned, skipped, perr
				}
				c, perr := capturedb.Decode(line)
				if perr != nil {
					return scanned, skipped, fmt.Errorf("capstore: pack record %d of %s: %w", ix, p.Path, perr)
				}
				scanned++
				if !q.Match(c) {
					continue
				}
				if !fn(c) {
					stop = true
					break
				}
			}
		}
		candidates += int64(len(v.tailIdxs))
		if !stop {
			for k := range v.tailIdxs {
				meta := v.tailMetas[k]
				if !q.MatchMeta(simtime.Day(meta.day), meta.failed) {
					skipped++
					continue
				}
				c, rerr := readRecord(v.f, meta, &buf)
				if rerr != nil {
					return scanned, skipped, rerr
				}
				scanned++
				if !q.Match(c) {
					continue
				}
				if !fn(c) {
					stop = true
					break
				}
			}
		}
		skipped += v.total() - candidates
		if stop {
			return scanned, skipped, nil
		}
	}
	return scanned, skipped, nil
}

// runScan is the fallback path for queries with no indexed key: every
// shard's packs and tail are walked in order, skipping whole packs (or
// the whole tail) whose day range cannot intersect the query's bounds.
func (s *Store) runScan(q capturedb.Query, fn func(*capture.Capture) bool) (scanned, skipped int64, err error) {
	for _, sh := range s.shards {
		v, err := sh.snapshotScan()
		if err != nil {
			return scanned, skipped, err
		}
		sc, sk, stop, err := scanView(&v, q, fn)
		scanned += sc
		skipped += sk
		if err != nil || stop {
			return scanned, skipped, err
		}
	}
	return scanned, skipped, nil
}

// scanView walks one shard view in logical order: packs, then tail.
func scanView(v *shardView, q capturedb.Query, fn func(*capture.Capture) bool) (scanned, skipped int64, stop bool, err error) {
	upper, bounded := q.Upper()
	var buf []byte
	for _, p := range v.packs {
		// Per-pack day-range pruning from the persistent summary.
		if q.From > simtime.Day(p.Summary.MaxDay) || (bounded && upper < simtime.Day(p.Summary.MinDay)) {
			skipped += p.Summary.Records
			continue
		}
		recs, perr := p.Recs()
		if perr != nil {
			return scanned, skipped, false, perr
		}
		for ix := range recs {
			if !q.MatchMeta(simtime.Day(recs[ix].Day), recs[ix].Failed) {
				skipped++
				continue
			}
			line, perr := p.ReadRecord(recs, ix, &buf)
			if perr != nil {
				return scanned, skipped, false, perr
			}
			c, perr := capturedb.Decode(line)
			if perr != nil {
				return scanned, skipped, false, fmt.Errorf("capstore: pack record %d of %s: %w", ix, p.Path, perr)
			}
			scanned++
			if !q.Match(c) {
				continue
			}
			if !fn(c) {
				return scanned, skipped, true, nil
			}
		}
	}
	if v.tailCount == 0 {
		return scanned, skipped, false, nil
	}
	// Tail day-range pruning. The range may have widened past the
	// snapshot under concurrent ingest, which only makes pruning
	// conservative, never wrong.
	if q.From > v.maxDay || (bounded && upper < v.minDay) {
		skipped += int64(v.tailCount)
		return scanned, skipped, false, nil
	}
	for _, meta := range v.allMetas {
		if !q.MatchMeta(simtime.Day(meta.day), meta.failed) {
			skipped++
			continue
		}
		c, rerr := readRecord(v.f, meta, &buf)
		if rerr != nil {
			return scanned, skipped, false, rerr
		}
		scanned++
		if !q.Match(c) {
			continue
		}
		if !fn(c) {
			return scanned, skipped, true, nil
		}
	}
	return scanned, skipped, false, nil
}

// readRecord fetches and decodes one tail record by offset, reusing
// *buf across calls. The file handle comes from the caller's shard
// view, so a concurrent compaction's tail swap cannot redirect the
// read.
func readRecord(f *os.File, meta recMeta, buf *[]byte) (*capture.Capture, error) {
	if cap(*buf) < int(meta.length) {
		*buf = make([]byte, meta.length)
	}
	b := (*buf)[:meta.length]
	if _, err := f.ReadAt(b, meta.off); err != nil {
		return nil, fmt.Errorf("capstore: reading record at %d: %w", meta.off, err)
	}
	c, err := capturedb.Decode(b)
	if err != nil {
		return nil, fmt.Errorf("capstore: record at %d: %w", meta.off, err)
	}
	return c, nil
}
