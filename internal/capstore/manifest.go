package capstore

import (
	"fmt"
	"io"

	"repro/internal/capstore/pack"
	"repro/internal/capture"
	"repro/internal/capturedb"
)

// The manifest API is the replicated store's diff surface: a replica
// answers "what do you hold?" as per-segment (record count, byte
// length, content hash) triples. Because every replica appends the
// same records in the same canonical commit order, a lagging replica's
// segment is always a byte prefix of a caught-up one — so repair never
// needs record-level diffs: verify the prefix hash, then re-stream the
// missing suffix (StreamShard) into the lagging node's /ingest.
//
// All of it is defined over the *logical record stream* — per shard,
// concat(pack₀.data, pack₁.data, …, tail) — which is byte-identical to
// the never-compacted segment file. Manifests, prefix hashes, and
// repair streams are therefore invariant under compaction: a packed
// store and an unpacked store holding the same records produce the
// same hashes and diff as Equal. Hashing never re-reads packed bytes:
// each pack's footer carries per-record running FNV-64a states, so a
// prefix inside a pack is answered from the index and only tail bytes
// are ever hashed on demand.

// SegmentManifest summarizes one segment's logical content.
type SegmentManifest struct {
	Segment string `json:"segment"`
	Records int    `json:"records"`
	Bytes   int64  `json:"bytes"`
	// Hash is the FNV-64a of the logical stream's bytes, hex-encoded.
	Hash string `json:"hash"`
}

// Manifest is the per-segment content summary of a whole store.
type Manifest struct {
	Segments []SegmentManifest `json:"segments"`
}

// streamView freezes one shard's logical stream for manifest and
// streaming reads: the pack chain plus a consistent (tailRecords,
// tailEnd) pair with buffered bytes flushed, so ReadAt sees everything
// counted.
type streamView struct {
	packs         []*pack.Pack
	packedRecords int64
	packedBytes   int64
	packedHash    uint64
	tailRecs      []recMeta
	tailEnd       int64
	f             io.ReaderAt
}

func (s *Store) streamView(i int) (streamView, error) {
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.bw.Flush(); err != nil {
		return streamView{}, err
	}
	v := streamView{
		packs:         sh.packs[:len(sh.packs):len(sh.packs)],
		packedRecords: sh.packedRecords,
		packedBytes:   sh.packedBytes,
		packedHash:    sh.packedHash,
		tailRecs:      append([]recMeta(nil), sh.recs...),
		tailEnd:       sh.end,
		f:             sh.f,
	}
	return v, nil
}

func (v *streamView) records() int { return int(v.packedRecords) + len(v.tailRecs) }
func (v *streamView) bytes() int64 { return v.packedBytes + v.tailEnd }

// prefixState returns the logical byte length and running FNV-64a
// state of the stream's first n records. Prefixes ending inside or at
// a pack boundary are answered from the pack index without reading
// data; only when the prefix extends into the tail are tail bytes
// hashed, resuming from the chain hash at the pack boundary.
func (v *streamView) prefixState(n int) (int64, uint64, error) {
	if n == 0 {
		return 0, pack.HashOffset, nil
	}
	if int64(n) <= v.packedRecords {
		var base int64
		for _, p := range v.packs {
			if int64(n) <= base+p.Summary.Records {
				h, b, err := p.PrefixHash(int64(n) - base)
				if err != nil {
					return 0, 0, err
				}
				return p.Summary.BaseBytes + b, h, nil
			}
			base += p.Summary.Records
		}
		return 0, 0, fmt.Errorf("capstore: pack chain shorter than %d records", n)
	}
	m := n - int(v.packedRecords)
	meta := v.tailRecs[m-1]
	tailEnd := meta.off + int64(meta.length)
	h, err := pack.HashReader(v.packedHash, io.NewSectionReader(v.f, 0, tailEnd))
	if err != nil {
		return 0, 0, fmt.Errorf("capstore: hashing tail prefix: %w", err)
	}
	return v.packedBytes + tailEnd, h, nil
}

// Manifest summarizes every segment. Concurrent ingest and compaction
// are safe: each shard's stream is snapshotted at a consistent point
// and hashed over exactly those bytes, resuming from the pack chain's
// stored boundary hash so packed bytes are never re-read.
func (s *Store) Manifest() (Manifest, error) {
	m := Manifest{Segments: make([]SegmentManifest, len(s.shards))}
	for i := range s.shards {
		v, err := s.streamView(i)
		if err != nil {
			return Manifest{}, err
		}
		bytes, hash, err := v.prefixState(v.records())
		if err != nil {
			return Manifest{}, err
		}
		m.Segments[i] = SegmentManifest{Segment: segName(i), Records: v.records(), Bytes: bytes, Hash: pack.HashHex(hash)}
	}
	return m, nil
}

// PrefixManifest summarizes the first n records of shard i — the probe
// a repair loop uses to verify that a lagging replica's segment is a
// byte prefix of this store's.
func (s *Store) PrefixManifest(i, n int) (SegmentManifest, error) {
	if i < 0 || i >= len(s.shards) {
		return SegmentManifest{}, fmt.Errorf("capstore: no shard %d", i)
	}
	v, err := s.streamView(i)
	if err != nil {
		return SegmentManifest{}, err
	}
	if n > v.records() {
		return SegmentManifest{}, fmt.Errorf("capstore: %s has %d records, prefix of %d requested", segName(i), v.records(), n)
	}
	bytes, hash, err := v.prefixState(n)
	if err != nil {
		return SegmentManifest{}, err
	}
	return SegmentManifest{Segment: segName(i), Records: n, Bytes: bytes, Hash: pack.HashHex(hash)}, nil
}

// StreamShard writes the raw wire-format bytes of shard i's records
// [from, current) to w — the repair re-stream, spliced transparently
// across the pack chain and the tail. The stream is snapshotted before
// writing, so concurrent appends and compactions never tear the
// output; the bytes are exactly what a peer's /ingest accepts.
func (s *Store) StreamShard(i, from int, w io.Writer) (records int, bytes int64, err error) {
	if i < 0 || i >= len(s.shards) {
		return 0, 0, fmt.Errorf("capstore: no shard %d", i)
	}
	v, err := s.streamView(i)
	if err != nil {
		return 0, 0, err
	}
	count := v.records()
	if from < 0 || from > count {
		return 0, 0, fmt.Errorf("capstore: %s has %d records, stream from %d requested", segName(i), count, from)
	}
	start, err := v.byteOfRecord(from)
	if err != nil {
		return 0, 0, err
	}
	end := v.bytes()
	var n int64
	var base int64
	for _, p := range v.packs {
		lo, hi := base, base+p.Summary.DataBytes
		base = hi
		if start >= hi || lo >= end {
			continue
		}
		pFrom, pTo := max64(start, lo)-lo, min64(end, hi)-lo
		c, cerr := io.Copy(w, p.DataReader(pFrom, pTo))
		n += c
		if cerr != nil {
			return 0, n, fmt.Errorf("capstore: streaming %s: %w", segName(i), cerr)
		}
	}
	if end > v.packedBytes {
		tFrom := max64(start, v.packedBytes) - v.packedBytes
		c, cerr := io.Copy(w, io.NewSectionReader(v.f, tFrom, v.tailEnd-tFrom))
		n += c
		if cerr != nil {
			return 0, n, fmt.Errorf("capstore: streaming %s: %w", segName(i), cerr)
		}
	}
	return count - from, n, nil
}

// byteOfRecord returns the logical byte offset of record n's first
// byte (== the stream's total length for n == records()).
func (v *streamView) byteOfRecord(n int) (int64, error) {
	if n == 0 {
		return 0, nil
	}
	if int64(n) <= v.packedRecords {
		b, _, err := v.prefixState(n)
		return b, err
	}
	m := n - int(v.packedRecords)
	if m == len(v.tailRecs) {
		return v.packedBytes + v.tailEnd, nil
	}
	return v.packedBytes + v.tailRecs[m].off, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// segmentRange snapshots one shard's consistent logical (count, bytes)
// pair with buffered bytes flushed — the bounds handleSegment
// validates against before committing to a response.
func (s *Store) segmentRange(i int) (records int, bytes int64, err error) {
	v, err := s.streamView(i)
	if err != nil {
		return 0, 0, err
	}
	return v.records(), v.bytes(), nil
}

// QueryShard streams shard i's matches to fn in record order — the
// unit of the replicated read fan-out, where each segment is served by
// whichever replica answers first. Matching semantics are exactly
// Query's, restricted to one segment, spliced across packs and tail.
func (s *Store) QueryShard(i int, q capturedb.Query, fn func(*capture.Capture) bool) error {
	if i < 0 || i >= len(s.shards) {
		return fmt.Errorf("capstore: no shard %d", i)
	}
	s.counters.queries.Add(1)
	v, err := s.shards[i].snapshotScan()
	if err != nil {
		return err
	}
	scanned, skipped, _, err := scanView(&v, q, fn)
	s.counters.rowsScanned.Add(scanned)
	s.counters.rowsSkipped.Add(skipped)
	return err
}

// DiffKind classifies one segment's relation to a peer's.
type DiffKind int

const (
	// DiffEqual: identical content.
	DiffEqual DiffKind = iota
	// DiffBehind: this segment is a strict prefix of the peer's — the
	// peer has a suffix this replica is missing.
	DiffBehind
	// DiffAhead: the peer's segment is a strict prefix of this one.
	DiffAhead
	// DiffDiverged: neither is a prefix of the other — real corruption,
	// never produced by crash-truncation under canonical commit order.
	DiffDiverged
)

// SegmentDiff is one segment's repair decision against a peer.
type SegmentDiff struct {
	Shard int
	Kind  DiffKind
	// From/Records/Bytes describe the missing suffix when Kind is
	// DiffBehind: re-stream records [From, From+Records) (Bytes bytes)
	// from the peer.
	From    int
	Records int
	Bytes   int64
}

// DiffManifests compares a local manifest against a peer's, using
// prefixHash to fetch the hash of the longer side's prefix at the
// shorter side's record count (needed only when lengths differ).
// The callback signature keeps the function transport-agnostic: the
// repair loop passes a client call, tests pass Store.PrefixManifest.
func DiffManifests(local, peer Manifest, prefixHash func(shard, n int, ofPeer bool) (SegmentManifest, error)) ([]SegmentDiff, error) {
	if len(local.Segments) != len(peer.Segments) {
		return nil, fmt.Errorf("capstore: manifest shape mismatch: %d vs %d segments (stores created with different shard counts?)",
			len(local.Segments), len(peer.Segments))
	}
	var diffs []SegmentDiff
	for i := range local.Segments {
		l, p := local.Segments[i], peer.Segments[i]
		switch {
		case l.Records == p.Records:
			if l.Hash == p.Hash && l.Bytes == p.Bytes {
				continue
			}
			diffs = append(diffs, SegmentDiff{Shard: i, Kind: DiffDiverged})
		case l.Records < p.Records:
			pp, err := prefixHash(i, l.Records, true)
			if err != nil {
				return nil, err
			}
			if pp.Hash == l.Hash && pp.Bytes == l.Bytes {
				diffs = append(diffs, SegmentDiff{
					Shard: i, Kind: DiffBehind,
					From: l.Records, Records: p.Records - l.Records, Bytes: p.Bytes - l.Bytes,
				})
			} else {
				diffs = append(diffs, SegmentDiff{Shard: i, Kind: DiffDiverged})
			}
		default:
			lp, err := prefixHash(i, p.Records, false)
			if err != nil {
				return nil, err
			}
			if lp.Hash == p.Hash && lp.Bytes == p.Bytes {
				diffs = append(diffs, SegmentDiff{Shard: i, Kind: DiffAhead})
			} else {
				diffs = append(diffs, SegmentDiff{Shard: i, Kind: DiffDiverged})
			}
		}
	}
	return diffs, nil
}
