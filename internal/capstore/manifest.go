package capstore

import (
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/capture"
	"repro/internal/capturedb"
	"repro/internal/simtime"
)

// The manifest API is the replicated store's diff surface: a replica
// answers "what do you hold?" as per-segment (record count, byte
// length, content hash) triples. Because every replica appends the
// same records in the same canonical commit order, a lagging replica's
// segment is always a byte prefix of a caught-up one — so repair never
// needs record-level diffs: verify the prefix hash, then re-stream the
// missing suffix (StreamShard) into the lagging node's /ingest.

// SegmentManifest summarizes one segment's content.
type SegmentManifest struct {
	Segment string `json:"segment"`
	Records int    `json:"records"`
	Bytes   int64  `json:"bytes"`
	// Hash is the FNV-64a of the segment's bytes, hex-encoded.
	Hash string `json:"hash"`
}

// Manifest is the per-segment content summary of a whole store.
type Manifest struct {
	Segments []SegmentManifest `json:"segments"`
}

// segmentRange snapshots one shard's consistent (count, end) pair with
// buffered bytes flushed, so ReadAt sees everything counted.
func (s *Store) segmentRange(i int) (records int, end int64, err error) {
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.bw.Flush(); err != nil {
		return 0, 0, err
	}
	return len(sh.recs), sh.end, nil
}

// hashRange hashes segment i's bytes [0, end).
func (s *Store) hashRange(i int, end int64) (string, error) {
	h := fnv.New64a()
	if _, err := io.Copy(h, io.NewSectionReader(s.shards[i].f, 0, end)); err != nil {
		return "", fmt.Errorf("capstore: hashing %s: %w", segName(i), err)
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// Manifest summarizes every segment. Concurrent ingest is safe: each
// segment is snapshotted at a consistent (records, bytes) point and
// hashed over exactly those bytes.
func (s *Store) Manifest() (Manifest, error) {
	m := Manifest{Segments: make([]SegmentManifest, len(s.shards))}
	for i := range s.shards {
		n, end, err := s.segmentRange(i)
		if err != nil {
			return Manifest{}, err
		}
		hash, err := s.hashRange(i, end)
		if err != nil {
			return Manifest{}, err
		}
		m.Segments[i] = SegmentManifest{Segment: segName(i), Records: n, Bytes: end, Hash: hash}
	}
	return m, nil
}

// prefixEnd returns the byte offset just past record n-1 of shard i
// (0 for n == 0), holding the shard lock only for the metadata read.
func (s *Store) prefixEnd(i, n int) (int64, error) {
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if n > len(sh.recs) {
		return 0, fmt.Errorf("capstore: %s has %d records, prefix of %d requested", segName(i), len(sh.recs), n)
	}
	if err := sh.bw.Flush(); err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, nil
	}
	meta := sh.recs[n-1]
	return meta.off + int64(meta.length), nil
}

// PrefixManifest summarizes the first n records of shard i — the probe
// a repair loop uses to verify that a lagging replica's segment is a
// byte prefix of this store's.
func (s *Store) PrefixManifest(i, n int) (SegmentManifest, error) {
	if i < 0 || i >= len(s.shards) {
		return SegmentManifest{}, fmt.Errorf("capstore: no shard %d", i)
	}
	end, err := s.prefixEnd(i, n)
	if err != nil {
		return SegmentManifest{}, err
	}
	hash, err := s.hashRange(i, end)
	if err != nil {
		return SegmentManifest{}, err
	}
	return SegmentManifest{Segment: segName(i), Records: n, Bytes: end, Hash: hash}, nil
}

// StreamShard writes the raw wire-format bytes of shard i's records
// [from, current) to w — the repair re-stream. The byte range is
// snapshotted before streaming, so concurrent appends never tear the
// output; the bytes are exactly what a peer's /ingest accepts.
func (s *Store) StreamShard(i, from int, w io.Writer) (records int, bytes int64, err error) {
	if i < 0 || i >= len(s.shards) {
		return 0, 0, fmt.Errorf("capstore: no shard %d", i)
	}
	count, end, err := s.segmentRange(i)
	if err != nil {
		return 0, 0, err
	}
	if from < 0 || from > count {
		return 0, 0, fmt.Errorf("capstore: %s has %d records, stream from %d requested", segName(i), count, from)
	}
	start, err := s.prefixEnd(i, from)
	if err != nil {
		return 0, 0, err
	}
	n, err := io.Copy(w, io.NewSectionReader(s.shards[i].f, start, end-start))
	if err != nil {
		return 0, n, fmt.Errorf("capstore: streaming %s: %w", segName(i), err)
	}
	return count - from, n, nil
}

// QueryShard streams shard i's matches to fn in record order — the
// unit of the replicated read fan-out, where each segment is served by
// whichever replica answers first. Matching semantics are exactly
// Query's, restricted to one segment.
func (s *Store) QueryShard(i int, q capturedb.Query, fn func(*capture.Capture) bool) error {
	if i < 0 || i >= len(s.shards) {
		return fmt.Errorf("capstore: no shard %d", i)
	}
	s.counters.queries.Add(1)
	sh := s.shards[i]
	sh.mu.Lock()
	if err := sh.bw.Flush(); err != nil {
		sh.mu.Unlock()
		return err
	}
	metas := make([]recMeta, len(sh.recs))
	copy(metas, sh.recs)
	sh.mu.Unlock()

	var scanned, skipped int64
	var buf []byte
	for _, meta := range metas {
		if !q.MatchMeta(simtime.Day(meta.day), meta.failed) {
			skipped++
			continue
		}
		c, err := s.readRecord(sh, meta, &buf)
		if err != nil {
			s.counters.rowsScanned.Add(scanned)
			s.counters.rowsSkipped.Add(skipped)
			return err
		}
		scanned++
		if !q.Match(c) {
			continue
		}
		if !fn(c) {
			break
		}
	}
	s.counters.rowsScanned.Add(scanned)
	s.counters.rowsSkipped.Add(skipped)
	return nil
}

// DiffKind classifies one segment's relation to a peer's.
type DiffKind int

const (
	// DiffEqual: identical content.
	DiffEqual DiffKind = iota
	// DiffBehind: this segment is a strict prefix of the peer's — the
	// peer has a suffix this replica is missing.
	DiffBehind
	// DiffAhead: the peer's segment is a strict prefix of this one.
	DiffAhead
	// DiffDiverged: neither is a prefix of the other — real corruption,
	// never produced by crash-truncation under canonical commit order.
	DiffDiverged
)

// SegmentDiff is one segment's repair decision against a peer.
type SegmentDiff struct {
	Shard int
	Kind  DiffKind
	// From/Records/Bytes describe the missing suffix when Kind is
	// DiffBehind: re-stream records [From, From+Records) (Bytes bytes)
	// from the peer.
	From    int
	Records int
	Bytes   int64
}

// DiffManifests compares a local manifest against a peer's, using
// prefixHash to fetch the hash of the longer side's prefix at the
// shorter side's record count (needed only when lengths differ).
// The callback signature keeps the function transport-agnostic: the
// repair loop passes a client call, tests pass Store.PrefixManifest.
func DiffManifests(local, peer Manifest, prefixHash func(shard, n int, ofPeer bool) (SegmentManifest, error)) ([]SegmentDiff, error) {
	if len(local.Segments) != len(peer.Segments) {
		return nil, fmt.Errorf("capstore: manifest shape mismatch: %d vs %d segments (stores created with different shard counts?)",
			len(local.Segments), len(peer.Segments))
	}
	var diffs []SegmentDiff
	for i := range local.Segments {
		l, p := local.Segments[i], peer.Segments[i]
		switch {
		case l.Records == p.Records:
			if l.Hash == p.Hash && l.Bytes == p.Bytes {
				continue
			}
			diffs = append(diffs, SegmentDiff{Shard: i, Kind: DiffDiverged})
		case l.Records < p.Records:
			pp, err := prefixHash(i, l.Records, true)
			if err != nil {
				return nil, err
			}
			if pp.Hash == l.Hash && pp.Bytes == l.Bytes {
				diffs = append(diffs, SegmentDiff{
					Shard: i, Kind: DiffBehind,
					From: l.Records, Records: p.Records - l.Records, Bytes: p.Bytes - l.Bytes,
				})
			} else {
				diffs = append(diffs, SegmentDiff{Shard: i, Kind: DiffDiverged})
			}
		default:
			lp, err := prefixHash(i, p.Records, false)
			if err != nil {
				return nil, err
			}
			if lp.Hash == p.Hash && lp.Bytes == p.Bytes {
				diffs = append(diffs, SegmentDiff{Shard: i, Kind: DiffAhead})
			} else {
				diffs = append(diffs, SegmentDiff{Shard: i, Kind: DiffDiverged})
			}
		}
	}
	return diffs, nil
}
