package capstore

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newResilientServer serves a populated store the way cmd/capd does.
func newResilientServer(t *testing.T, n int, cfg ServeConfig) (*Store, *httptest.Server) {
	t.Helper()
	s, err := Create(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, s, n)
	srv := httptest.NewServer(NewResilientHandler(s, cfg))
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})
	return s, srv
}

func TestHealthz(t *testing.T) {
	s, srv := newResilientServer(t, 120, ServeConfig{MaxInFlight: 7})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h struct {
		Status   string `json:"status"`
		Records  int64  `json:"records"`
		Segments int    `json:"segments"`
		Limiter  struct {
			MaxInFlight int   `json:"max_in_flight"`
			Admitted    int64 `json:"admitted"`
		} `json:"limiter"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Records != int64(s.Len()) || h.Segments != 4 || h.Limiter.MaxInFlight != 7 {
		t.Fatalf("healthz payload %+v", h)
	}

	// Health must reflect served traffic without being load-shed
	// itself: /query admissions show up in the limiter counters.
	resp2, err := http.Get(srv.URL + "/query?domain=site-001.com")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body) //nolint:errcheck
	resp2.Body.Close()
	resp3, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if err := json.NewDecoder(resp3.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Limiter.Admitted == 0 {
		t.Fatal("query admission not reflected in healthz")
	}
}

// TestChaosResilientHandlerSheds: a saturating burst of clients against
// a single-slot server yields 429s with Retry-After while every
// admitted query completes correctly and promptly.
func TestChaosResilientHandlerSheds(t *testing.T) {
	_, srv := newResilientServer(t, 2_000, ServeConfig{MaxInFlight: 1})
	const clients = 32
	var ok, shed atomic.Int64
	var worst atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			resp, err := http.Get(srv.URL + "/query?failed=1")
			if err != nil {
				t.Errorf("get: %v", err)
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			switch resp.StatusCode {
			case http.StatusOK:
				ok.Add(1)
				if len(body) == 0 {
					t.Error("admitted query returned no rows")
				}
				ns := time.Since(start).Nanoseconds()
				for {
					w := worst.Load()
					if ns <= w || worst.CompareAndSwap(w, ns) {
						break
					}
				}
			case http.StatusTooManyRequests:
				shed.Add(1)
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
			default:
				t.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	if ok.Load() == 0 {
		t.Fatal("no queries admitted")
	}
	if shed.Load() == 0 {
		t.Fatalf("no load shed with %d clients against 1 slot", clients)
	}
	if w := time.Duration(worst.Load()); w > 10*time.Second {
		t.Fatalf("admitted query latency %v unbounded", w)
	}
}

// TestQueryHonoursRequestDeadline: an already-expired per-request
// context yields a clean 503 instead of a hung or buffered stream.
func TestQueryHonoursRequestDeadline(t *testing.T) {
	s, err := Create(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fill(t, s, 500)
	// Drive the raw handler with a cancelled context: the row-loop
	// deadline check must abort before streaming the first row.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("GET", "/query?failed=1", nil).WithContext(ctx)
	rr := httptest.NewRecorder()
	NewHandler(s).ServeHTTP(rr, req)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("expired-deadline query status = %d, want 503", rr.Code)
	}
}
