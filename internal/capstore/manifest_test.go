package capstore

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/capturedb"
	"repro/internal/resilience"
)

// manifestServer exposes a full store (query + ingest + manifest)
// the way a replicated-store node sees it.
func manifestServer(t *testing.T, shards int) (*Store, *Client) {
	t.Helper()
	store, err := Create(t.TempDir(), shards)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv := httptest.NewServer(NewHandler(store))
	t.Cleanup(srv.Close)
	return store, NewClient(srv.URL)
}

func TestManifestTracksSegments(t *testing.T) {
	store, cl := manifestServer(t, 4)
	fill(t, store, 200)
	m, err := cl.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segments) != 4 {
		t.Fatalf("manifest has %d segments, want 4", len(m.Segments))
	}
	var records int
	for i, sm := range m.Segments {
		if sm.Segment != segName(i) {
			t.Fatalf("segment %d named %q", i, sm.Segment)
		}
		data, err := os.ReadFile(filepath.Join(store.Dir(), sm.Segment))
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(data)) != sm.Bytes {
			t.Fatalf("%s: manifest bytes %d, file %d", sm.Segment, sm.Bytes, len(data))
		}
		want, err := store.PrefixManifest(i, sm.Records)
		if err != nil {
			t.Fatal(err)
		}
		if want.Hash != sm.Hash {
			t.Fatalf("%s: full hash %s != prefix-at-count hash %s", sm.Segment, sm.Hash, want.Hash)
		}
		records += sm.Records
	}
	if int64(records) != store.Len() {
		t.Fatalf("manifest records %d, store %d", records, store.Len())
	}
}

func TestPrefixManifestAndStream(t *testing.T) {
	store, cl := manifestServer(t, 2)
	fill(t, store, 120)
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}
	for shard := 0; shard < 2; shard++ {
		data, err := os.ReadFile(filepath.Join(store.Dir(), segName(shard)))
		if err != nil {
			t.Fatal(err)
		}
		full, err := store.PrefixManifest(shard, segmentCount(t, store, shard))
		if err != nil {
			t.Fatal(err)
		}
		half := full.Records / 2
		pm, err := cl.PrefixManifest(shard, half)
		if err != nil {
			t.Fatal(err)
		}
		// The prefix manifest must hash exactly the leading pm.Bytes of
		// the file, and the /segment stream from `half` must be exactly
		// the remaining suffix.
		local, err := store.PrefixManifest(shard, half)
		if err != nil {
			t.Fatal(err)
		}
		if pm != local {
			t.Fatalf("shard %d: client prefix manifest %+v != local %+v", shard, pm, local)
		}
		rc, err := cl.SegmentReader(shard, half)
		if err != nil {
			t.Fatal(err)
		}
		var suffix bytes.Buffer
		if _, err := suffix.ReadFrom(rc); err != nil {
			t.Fatal(err)
		}
		rc.Close()
		if want := data[pm.Bytes:]; !bytes.Equal(suffix.Bytes(), want) {
			t.Fatalf("shard %d: suffix stream %d bytes, want %d", shard, suffix.Len(), len(want))
		}
	}
	// Out-of-range probes are clean errors, not torn streams.
	if _, err := cl.PrefixManifest(0, 1<<20); err == nil {
		t.Fatal("oversized prefix accepted")
	}
	if _, err := cl.SegmentReader(7, 0); err == nil {
		t.Fatal("bad shard accepted")
	}
}

func segmentCount(t *testing.T, s *Store, shard int) int {
	t.Helper()
	n, _, err := s.segmentRange(shard)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestQueryShardPartitionsQuery: per-shard queries concatenated in
// shard order must reproduce the whole-store query byte for byte —
// the replicated read path's correctness core.
func TestQueryShardPartitionsQuery(t *testing.T) {
	store, cl := manifestServer(t, 4)
	fill(t, store, 300)
	q := capturedb.Query{IncludeFailed: true}
	var whole bytes.Buffer
	if err := store.Query(q, func(c *capture.Capture) bool {
		line, err := capturedb.Encode(c)
		if err != nil {
			t.Fatal(err)
		}
		whole.Write(line)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	var sharded bytes.Buffer
	for i := 0; i < store.NumShards(); i++ {
		if err := cl.QueryShard(i, q, 0, 0, func(c *capture.Capture) bool {
			line, err := capturedb.Encode(c)
			if err != nil {
				t.Fatal(err)
			}
			sharded.Write(line)
			return true
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(whole.Bytes(), sharded.Bytes()) {
		t.Fatalf("shard-partitioned query diverges: %d vs %d bytes", sharded.Len(), whole.Len())
	}
}

func TestDiffManifests(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	a, err := Create(dirA, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Create(dirB, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	caps := make([]*capture.Capture, 40)
	for i := range caps {
		caps[i] = ingestCapture(i)
	}
	for _, c := range caps {
		a.Record(c)
	}
	for _, c := range caps[:25] { // b stops early: strict prefix per shard
		b.Record(c)
	}
	prefixHash := func(shard, n int, ofPeer bool) (SegmentManifest, error) {
		if ofPeer {
			return a.PrefixManifest(shard, n)
		}
		return b.PrefixManifest(shard, n)
	}
	ma, err := a.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	mb, err := b.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	diffs, err := DiffManifests(mb, ma, prefixHash)
	if err != nil {
		t.Fatal(err)
	}
	var repairRecords int
	for _, d := range diffs {
		if d.Kind != DiffBehind {
			t.Fatalf("diff %+v: want DiffBehind", d)
		}
		repairRecords += d.Records
	}
	if repairRecords != 15 {
		t.Fatalf("diffs cover %d missing records, want 15", repairRecords)
	}
	// Apply the repairs by streaming each missing suffix; the stores
	// must converge to byte identity.
	for _, d := range diffs {
		var buf bytes.Buffer
		if _, _, err := a.StreamShard(d.Shard, d.From, &buf); err != nil {
			t.Fatal(err)
		}
		rr := capturedb.NewRecordReader(&buf)
		for {
			c, err := rr.Next()
			if err != nil {
				break
			}
			b.Record(c)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	compareSegments(t, readSegments(t, dirA), readSegments(t, dirB))

	// Reversed direction reports DiffAhead; equality reports nothing.
	mb, err = b.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	diffs, err = DiffManifests(mb, ma, prefixHash)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("converged stores still diff: %+v", diffs)
	}
	// Divergence (same count, different bytes) is flagged, never
	// "repaired".
	b.Record(ingestCapture(100))
	a.Record(ingestCapture(200))
	ma, _ = a.Manifest()
	mb, _ = b.Manifest()
	diffs, err = DiffManifests(mb, ma, prefixHash)
	if err != nil {
		t.Fatal(err)
	}
	foundDiverged := false
	for _, d := range diffs {
		if d.Kind == DiffDiverged {
			foundDiverged = true
		}
	}
	if !foundDiverged {
		t.Fatalf("diverged segments not flagged: %+v", diffs)
	}
}

// TestClientRetryAfterShed: the ingest client absorbs ordered-mode
// shedding by honouring the server's Retry-After hint instead of
// surfacing ErrIngestShed to the caller.
func TestClientRetryAfterShed(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "3")
			http.Error(w, "capstore: ingest reorder buffer full, retry", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"accepted":1}`)
	}))
	defer srv.Close()
	var slept []time.Duration
	cl := NewClient(srv.URL)
	cl.Retry = resilience.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Jitter: -1}
	cl.Sleep = func(d time.Duration) { slept = append(slept, d) }
	res, err := cl.RecordBatchAt(0, 1, []*capture.Capture{ingestCapture(1)})
	if err != nil {
		t.Fatalf("retrying client surfaced: %v", err)
	}
	if res.Accepted != 1 || calls.Load() != 3 {
		t.Fatalf("res=%+v calls=%d", res, calls.Load())
	}
	for _, d := range slept {
		if d != 3*time.Second {
			t.Fatalf("client slept %v, want the server's Retry-After (3s)", d)
		}
	}
	if len(slept) != 2 {
		t.Fatalf("client slept %d times, want 2", len(slept))
	}
}

// TestClientRetryBudgetExhausted: a persistently shedding server still
// surfaces the shed error (wrapped) once the policy budget is spent.
func TestClientRetryBudgetExhausted(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "full", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	cl := NewClient(srv.URL)
	cl.Retry = resilience.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Jitter: -1}
	var naps int
	cl.Sleep = func(time.Duration) { naps++ }
	_, err := cl.RecordBatch([]*capture.Capture{ingestCapture(1)})
	if !errors.Is(err, ErrIngestShed) {
		t.Fatalf("want wrapped ErrIngestShed, got %v", err)
	}
	if naps != 2 {
		t.Fatalf("client slept %d times, want 2 (MaxAttempts-1)", naps)
	}
}
