package capstore

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// ingestCapture fabricates a distinct, fully-populated capture; i keys
// every identifying field so idempotency and ordering are observable.
func ingestCapture(i int) *capture.Capture {
	return &capture.Capture{
		SeedURL:     fmt.Sprintf("https://site%d.com/p/%d", i%7, i),
		FinalURL:    fmt.Sprintf("https://site%d.com/p/%d", i%7, i),
		FinalDomain: fmt.Sprintf("site%d.com", i%7),
		Day:         simtime.Day(i % 5),
		Vantage:     capture.USCloud,
		Status:      200,
		Requests: []capture.Request{
			{Host: fmt.Sprintf("cdn%d.example", i%3), Path: "/t.js", Status: 200, BytesRaw: 100 + i, BytesCompressed: 100 + i},
		},
	}
}

func newIngestServer(t *testing.T, shards int, cfg IngestConfig) (*Store, *Ingester, *Client) {
	t.Helper()
	store, err := Create(t.TempDir(), shards)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	ing, err := NewIngester(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/ingest", ing)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return store, ing, NewClient(srv.URL)
}

// readSegments returns segment-file name → contents for a store dir.
func readSegments(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(p)] = data
	}
	return out
}

func compareSegments(t *testing.T, want, got map[string][]byte) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("segment count differs: %d vs %d", len(want), len(got))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("segment %s missing", name)
		}
		if string(w) != string(g) {
			t.Errorf("segment %s differs:\ndirect: %q\ningest: %q", name, w, g)
		}
	}
}

// TestIngestRoundTripByteEquivalence is the satellite's headline: a
// batch delivered over Client.RecordBatch lands byte-identical to the
// same captures recorded directly with Store.Record.
func TestIngestRoundTripByteEquivalence(t *testing.T) {
	var caps []*capture.Capture
	for i := 0; i < 40; i++ {
		caps = append(caps, ingestCapture(i))
	}

	directDir := t.TempDir()
	direct, err := Create(directDir, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range caps {
		direct.Record(c)
	}
	if err := direct.Close(); err != nil {
		t.Fatal(err)
	}

	remote, _, cl := newIngestServer(t, 4, IngestConfig{})
	res, err := cl.RecordBatch(caps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != int64(len(caps)) || res.Duplicates != 0 {
		t.Fatalf("RecordBatch result = %+v, want %d accepted", res, len(caps))
	}
	if err := remote.Flush(); err != nil {
		t.Fatal(err)
	}
	compareSegments(t, readSegments(t, directDir), readSegments(t, remote.Dir()))
}

// TestIngestIdempotentRedelivery: the same idempotency key twice yields
// one record — via RecordBatch re-delivery and via single Record.
func TestIngestIdempotentRedelivery(t *testing.T) {
	store, ing, cl := newIngestServer(t, 2, IngestConfig{})
	caps := []*capture.Capture{ingestCapture(0), ingestCapture(1)}

	if _, err := cl.RecordBatch(caps); err != nil {
		t.Fatal(err)
	}
	res, err := cl.RecordBatch(caps) // ambiguous-failure re-delivery
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 0 || res.Duplicates != 2 {
		t.Fatalf("re-delivery result = %+v, want 0 accepted / 2 duplicates", res)
	}
	if res3, err := cl.Record(caps[0]); err != nil || res3.Duplicates != 1 {
		t.Fatalf("Record re-delivery = %+v, %v", res3, err)
	}
	if n := store.Stats().Records; n != 2 {
		t.Fatalf("store has %d records, want 2", n)
	}
	st := ing.Stats()
	if st.Accepted != 2 || st.Duplicates != 3 {
		t.Fatalf("ingest stats = %+v", st)
	}
}

// TestIngestIdempotencySurvivesReopen: the key index is seeded from the
// store on NewIngester, so re-delivery after a capd restart still
// dedups.
func TestIngestIdempotencySurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	store, err := Create(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	ing, err := NewIngester(store, IngestConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ing.IngestBatch([]*capture.Capture{ingestCapture(0)})
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	ing2, err := NewIngester(store2, IngestConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res := ing2.IngestBatch([]*capture.Capture{ingestCapture(0), ingestCapture(1)})
	if res.Accepted != 1 || res.Duplicates != 1 {
		t.Fatalf("post-reopen result = %+v, want 1 accepted / 1 duplicate", res)
	}
}

// TestIngestConcurrentClients exercises the ingest path under -race:
// several clients push disjoint batches concurrently; every record
// lands exactly once.
func TestIngestConcurrentClients(t *testing.T) {
	store, _, cl := newIngestServer(t, 4, IngestConfig{})
	const clients, perClient = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var caps []*capture.Capture
			for i := 0; i < perClient; i++ {
				caps = append(caps, ingestCapture(w*perClient+i))
			}
			// Deliver twice: double-delivery must not double-store.
			if _, err := cl.RecordBatch(caps); err != nil {
				errs <- err
				return
			}
			if _, err := cl.RecordBatch(caps); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := store.Stats().Records; n != clients*perClient {
		t.Fatalf("store has %d records, want %d", n, clients*perClient)
	}
}

// TestIngestOrderedCommit: ordered batches commit in range order no
// matter the arrival order, producing the same bytes as a sequential
// direct run; re-delivered and stale ranges are dropped whole.
func TestIngestOrderedCommit(t *testing.T) {
	var caps []*capture.Capture
	for i := 0; i < 12; i++ {
		caps = append(caps, ingestCapture(i))
	}
	directDir := t.TempDir()
	direct, err := Create(directDir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range caps[:8] { // items 8..11 will be a skipped range
		direct.Record(c)
	}
	if err := direct.Close(); err != nil {
		t.Fatal(err)
	}

	remote, ing, cl := newIngestServer(t, 2, IngestConfig{})
	// Arrive out of order: [4,8) first, then [0,4), then the skip.
	if res, err := cl.RecordBatchAt(4, 4, caps[4:8]); err != nil || res.Pending != 1 {
		t.Fatalf("out-of-order push: res=%+v err=%v", res, err)
	}
	if ing.Stats().NextSeq != 0 {
		t.Fatalf("cursor moved before its turn: %+v", ing.Stats())
	}
	if res, err := cl.RecordBatchAt(0, 4, caps[0:4]); err != nil || res.Pending != 0 {
		t.Fatalf("unblocking push: res=%+v err=%v", res, err)
	}
	if res, err := cl.RecordBatchAt(8, 4, nil); err != nil || res.Accepted != 0 { // dead range: cursor skip
		t.Fatalf("skip push: res=%+v err=%v", res, err)
	}
	if st := ing.Stats(); st.NextSeq != 12 || st.PendingBatches != 0 {
		t.Fatalf("cursor = %+v, want next_seq 12", st)
	}
	// Re-delivery of a committed range is a no-op.
	if res, err := cl.RecordBatchAt(4, 4, caps[4:8]); err != nil || res.Duplicates != 4 {
		t.Fatalf("stale push: res=%+v err=%v", res, err)
	}
	if err := remote.Flush(); err != nil {
		t.Fatal(err)
	}
	compareSegments(t, readSegments(t, directDir), readSegments(t, remote.Dir()))
}

// TestIngestOrderedShedding: out-of-order batches beyond the buffer
// bound are refused with ErrIngestShed; the unblocking batch is always
// admitted.
func TestIngestOrderedShedding(t *testing.T) {
	_, ing, cl := newIngestServer(t, 2, IngestConfig{MaxPendingBatches: 1})
	if _, err := cl.RecordBatchAt(2, 2, []*capture.Capture{ingestCapture(2), ingestCapture(3)}); err != nil {
		t.Fatal(err)
	}
	_, err := cl.RecordBatchAt(4, 2, []*capture.Capture{ingestCapture(4), ingestCapture(5)})
	if !errors.Is(err, ErrIngestShed) {
		t.Fatalf("expected ErrIngestShed, got %v", err)
	}
	var shed *ShedError
	if !errors.As(err, &shed) || shed.RetryAfter != time.Second {
		t.Fatalf("shed error should carry the server's Retry-After hint, got %#v", err)
	}
	if ing.Stats().Shed != 1 {
		t.Fatalf("shed counter = %+v", ing.Stats())
	}
	// The batch that unblocks the cursor is admitted past the bound.
	if _, err := cl.RecordBatchAt(0, 2, []*capture.Capture{ingestCapture(0), ingestCapture(1)}); err != nil {
		t.Fatal(err)
	}
	if st := ing.Stats(); st.NextSeq != 4 {
		t.Fatalf("cursor = %+v, want next_seq 4", st)
	}
}

// TestIngestMetrics: the capstore_ingest_* families register and the
// exposition stays valid.
func TestIngestMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	store, err := Create(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	ing, err := NewIngester(store, IngestConfig{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ing.IngestBatch([]*capture.Capture{ingestCapture(0), ingestCapture(0)})
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"capstore_ingest_records_total 1",
		"capstore_ingest_duplicates_total 1",
		"capstore_ingest_batches_total 1",
		"capstore_ingest_next_seq 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
	if err := obs.ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("exposition invalid: %v", err)
	}
}
