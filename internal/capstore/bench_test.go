package capstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"repro/internal/capture"
	"repro/internal/capturedb"
	"repro/internal/simtime"
)

// The perf-trajectory pair: BenchmarkScanQuery is the seed's linear
// capturedb.Scan over every record, BenchmarkIndexedQuery is the same
// query answered through capstore's secondary indexes. Both run the
// domain and request-host (CMP-indicator) shapes that dominate
// detection workloads, over benchRecords synthetic captures.
const (
	benchRecords = 100_000
	benchDomains = 1_000
	benchShards  = 16
)

var (
	benchOnce sync.Once
	benchDir  string
	benchS    *Store
	benchErr  error
)

func TestMain(m *testing.M) {
	code := m.Run()
	if benchS != nil {
		benchS.Close()
	}
	if benchDir != "" {
		os.RemoveAll(benchDir)
	}
	os.Exit(code)
}

// benchStore builds the ≥100k-capture corpus once per process.
func benchStore(b *testing.B) *Store {
	b.Helper()
	benchOnce.Do(func() {
		benchDir, benchErr = os.MkdirTemp("", "capstore-bench-")
		if benchErr != nil {
			return
		}
		var s *Store
		s, benchErr = Create(benchDir, benchShards)
		if benchErr != nil {
			return
		}
		hosts := []string{
			"cdn.cookielaw.org", "consent.cookiebot.com", "quantcast.mgr.consensu.org",
			"static.doubleclick.net", "www.google-analytics.com", "cdn.jsdelivr.net",
			"fonts.gstatic.com", "cdn.segment.com", "js.stripe.com", "cdn.optimizely.com",
		}
		for i := 0; i < benchRecords; i++ {
			c := sample(fmt.Sprintf("site-%05d.com", i%benchDomains),
				simtime.Day(i%900), hosts[i%len(hosts)])
			s.Record(c)
		}
		benchErr = s.Flush()
		benchS = s
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchS
}

var benchQueries = []struct {
	name string
	q    capturedb.Query
}{
	{"domain", capturedb.Query{Domain: "site-00500.com"}},
	{"host", capturedb.Query{RequestHost: "quantcast.mgr.consensu.org"}},
}

func BenchmarkIndexedQuery(b *testing.B) {
	s := benchStore(b)
	for _, bq := range benchQueries {
		b.Run(bq.name, func(b *testing.B) {
			before := s.Stats()
			matches := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				matches = 0
				err := s.Query(bq.q, func(*capture.Capture) bool { matches++; return true })
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if matches == 0 {
				b.Fatal("query matched nothing")
			}
			after := s.Stats()
			scanned := float64(after.RowsScanned-before.RowsScanned) / float64(b.N)
			skipped := float64(after.RowsSkipped-before.RowsSkipped) / float64(b.N)
			if skipped == 0 {
				b.Fatal("indexed path skipped no rows — index pruning is broken")
			}
			b.ReportMetric(float64(matches), "matches")
			b.ReportMetric(scanned, "rows-scanned/op")
			b.ReportMetric(skipped, "rows-skipped/op")
		})
	}
}

func BenchmarkScanQuery(b *testing.B) {
	s := benchStore(b)
	names, err := filepath.Glob(filepath.Join(s.Dir(), "seg-*.jsonl"))
	if err != nil {
		b.Fatal(err)
	}
	sort.Strings(names)
	for _, bq := range benchQueries {
		b.Run(bq.name, func(b *testing.B) {
			matches := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				matches = 0
				for _, name := range names {
					err := capturedb.ScanFile(name, bq.q, func(*capture.Capture) bool {
						matches++
						return true
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			if matches == 0 {
				b.Fatal("query matched nothing")
			}
			b.ReportMetric(float64(matches), "matches")
			b.ReportMetric(float64(benchRecords), "rows-scanned/op")
		})
	}
}
