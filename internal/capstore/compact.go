package capstore

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/capstore/pack"
	"repro/internal/capturedb"
	"repro/internal/simtime"
)

// Compaction folds a shard's tail segment into an immutable pack and
// rewrites the tail to hold only the records appended since. The pack
// is the tail prefix's exact wire bytes, so the shard's logical record
// stream — concat(packs…, tail) — is unchanged byte for byte, and
// manifests, prefix hashes, and replica repair are oblivious to when
// (or whether) compaction ran.
//
// Crash safety is sequencing: the pack commits (write-temp → fsync →
// rename → dir fsync) strictly before the tail rewrite. A crash
// before commit leaves only a .tmp (removed at open); a crash between
// commit and rewrite leaves the packed prefix duplicated in the tail,
// which Open detects by resuming the FNV chain and repairs by
// completing the rewrite.

// CompactConfig tunes the background compactor.
type CompactConfig struct {
	// MinTailBytes triggers compaction once a shard's tail reaches
	// this size. 0 means DefaultMinTailBytes; set negative to disable
	// the size trigger.
	MinTailBytes int64
	// MaxTailAge triggers compaction once a shard's oldest
	// uncompacted record has been observed for this long, regardless
	// of size. 0 disables the age trigger.
	MaxTailAge time.Duration
	// Interval is the trigger-poll cadence (default 1s).
	Interval time.Duration
	// PaceBytesPerSec bounds the compactor's read+write rate so
	// packing a large tail cannot starve live ingest and queries of
	// disk bandwidth. 0 means unpaced.
	PaceBytesPerSec int64

	// Now and Sleep are injectable for tests (default time.Now /
	// time.Sleep).
	Now   func() time.Time
	Sleep func(time.Duration)
}

// DefaultMinTailBytes is the size trigger used when CompactConfig
// leaves MinTailBytes zero.
const DefaultMinTailBytes = 4 << 20

func (c *CompactConfig) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

func (c *CompactConfig) sleep(d time.Duration) {
	if c.Sleep != nil {
		c.Sleep(d)
		return
	}
	time.Sleep(d)
}

// pacer is a token-bucket byte throttle; sleep debt accumulates and is
// paid in ≥10ms chunks so pacing does not degenerate into micro-sleeps.
type pacer struct {
	bytesPerSec int64
	debt        time.Duration
	slept       func(time.Duration)
	sleep       func(time.Duration)
}

func (p *pacer) throttle(n int) {
	if p == nil || p.bytesPerSec <= 0 {
		return
	}
	p.debt += time.Duration(int64(n) * int64(time.Second) / p.bytesPerSec)
	if p.debt >= 10*time.Millisecond {
		d := p.debt
		p.debt = 0
		p.sleep(d)
		if p.slept != nil {
			p.slept(d)
		}
	}
}

// Compactor runs size/age-triggered compaction in the background.
type Compactor struct {
	s    *Store
	cfg  CompactConfig
	stop chan struct{}
	wg   sync.WaitGroup

	// firstSeen tracks, per shard, when the poll loop first observed a
	// non-empty tail — the age trigger's reference point.
	firstSeen []time.Time
}

// StartCompactor launches the background compactor. Close stops it.
func (s *Store) StartCompactor(cfg CompactConfig) *Compactor {
	if cfg.MinTailBytes == 0 {
		cfg.MinTailBytes = DefaultMinTailBytes
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	c := &Compactor{
		s:         s,
		cfg:       cfg,
		stop:      make(chan struct{}),
		firstSeen: make([]time.Time, len(s.shards)),
	}
	c.wg.Add(1)
	go c.run()
	return c
}

// Close stops the compactor and waits for an in-flight pass to finish.
func (c *Compactor) Close() {
	close(c.stop)
	c.wg.Wait()
}

func (c *Compactor) run() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			c.pass()
		}
	}
}

// pass compacts every shard whose tail trips a trigger.
func (c *Compactor) pass() {
	now := c.cfg.now()
	for i, sh := range c.s.shards {
		sh.mu.Lock()
		n, bytes := len(sh.recs), sh.end
		sh.mu.Unlock()
		if n == 0 {
			c.firstSeen[i] = time.Time{}
			continue
		}
		if c.firstSeen[i].IsZero() {
			c.firstSeen[i] = now
		}
		sized := c.cfg.MinTailBytes > 0 && bytes >= c.cfg.MinTailBytes
		aged := c.cfg.MaxTailAge > 0 && now.Sub(c.firstSeen[i]) >= c.cfg.MaxTailAge
		if !sized && !aged {
			continue
		}
		if _, err := c.s.compactShard(i, &c.cfg); err != nil {
			c.s.fail(fmt.Errorf("capstore: compacting shard %d: %w", i, err))
			continue
		}
		c.firstSeen[i] = time.Time{}
	}
}

// CompactAll synchronously compacts every shard's current tail (the
// /compact admin trigger). Returns the number of records packed.
func (s *Store) CompactAll() (int64, error) {
	var total int64
	for i := range s.shards {
		n, err := s.compactShard(i, nil)
		if err != nil {
			return total, fmt.Errorf("capstore: compacting shard %d: %w", i, err)
		}
		total += n
	}
	return total, nil
}

// CompactShard synchronously folds shard i's current tail into a pack.
func (s *Store) CompactShard(i int) (int64, error) {
	if i < 0 || i >= len(s.shards) {
		return 0, fmt.Errorf("capstore: no shard %d", i)
	}
	return s.compactShard(i, nil)
}

// compactShard is the compaction kernel. The shard lock is held only
// to snapshot the tail prefix and, at the end, to publish the pack and
// swap in the rewritten tail; the pack build itself reads the
// immutable snapshot with no lock held, so ingest and queries proceed
// concurrently.
func (s *Store) compactShard(i int, cfg *CompactConfig) (int64, error) {
	sh := s.shards[i]

	sh.mu.Lock()
	if sh.compacting {
		sh.mu.Unlock()
		return 0, nil
	}
	n := len(sh.recs)
	if n == 0 {
		sh.mu.Unlock()
		return 0, nil
	}
	if err := sh.bw.Flush(); err != nil {
		sh.mu.Unlock()
		return 0, err
	}
	sh.compacting = true
	last := sh.recs[n-1]
	cut := last.off + int64(last.length)
	metas := make([]recMeta, n)
	copy(metas, sh.recs[:n])
	base := pack.Base{Records: sh.packedRecords, Bytes: sh.packedBytes, Hash: sh.packedHash}
	seq := len(sh.packs)
	tail := sh.f
	sh.mu.Unlock()

	done := func(err error) (int64, error) {
		sh.mu.Lock()
		sh.compacting = false
		sh.mu.Unlock()
		return 0, err
	}

	var pc *pacer
	if cfg != nil && cfg.PaceBytesPerSec > 0 {
		pc = &pacer{
			bytesPerSec: cfg.PaceBytesPerSec,
			sleep:       cfg.sleep,
			slept:       func(d time.Duration) { s.counters.paceSleepNanos.Add(int64(d)) },
		}
	}

	// Build the pack from the snapshot: the one full read compaction
	// ever does, decoding each record to extract its posting keys.
	b, err := pack.NewBuilder(filepath.Join(s.dir, packName(i, seq)), base)
	if err != nil {
		return done(err)
	}
	var buf []byte
	for _, meta := range metas {
		if cap(buf) < int(meta.length) {
			buf = make([]byte, meta.length)
		}
		line := buf[:meta.length]
		if _, err := tail.ReadAt(line, meta.off); err != nil {
			b.Abort()
			return done(fmt.Errorf("reading tail record at %d: %w", meta.off, err))
		}
		c, err := capturedb.Decode(line)
		if err != nil {
			b.Abort()
			return done(fmt.Errorf("decoding tail record at %d: %w", meta.off, err))
		}
		hosts := make([]string, 0, len(c.Requests))
		seen := make(map[string]bool, len(c.Requests))
		for _, q := range c.Requests {
			if q.Host == "" || seen[q.Host] {
				continue
			}
			seen[q.Host] = true
			hosts = append(hosts, q.Host)
		}
		if err := b.Add(line, pack.RecordMeta{
			Day:    meta.day,
			Failed: meta.failed,
			Domain: c.FinalDomain,
			Hosts:  hosts,
		}); err != nil {
			b.Abort()
			return done(err)
		}
		pc.throttle(int(meta.length))
	}
	p, err := b.Commit()
	if err != nil {
		return done(err)
	}

	// Publish: rewrite the tail without the packed prefix, swap the
	// shard onto the new file, and rebase the tail indexes. Records
	// appended since the snapshot are preserved by the rewrite copy.
	sh.mu.Lock()
	defer func() {
		sh.compacting = false
		sh.mu.Unlock()
	}()
	if err := sh.bw.Flush(); err != nil {
		return 0, err
	}
	segPath := filepath.Join(s.dir, segName(i))
	if err := rewriteTail(segPath, sh.f, cut, sh.end); err != nil {
		return 0, fmt.Errorf("rewriting tail: %w", err)
	}
	nf, err := os.OpenFile(segPath, os.O_RDWR, 0o644)
	if err != nil {
		return 0, err
	}
	newEnd := sh.end - cut
	if _, err := nf.Seek(newEnd, io.SeekStart); err != nil {
		nf.Close()
		return 0, err
	}
	// The previous tail file handle is deliberately not closed here:
	// in-flight queries may still be reading from it through their
	// snapshot. It is garbage-collected once the last reader drops it.
	sh.f = nf
	sh.bw = bufio.NewWriterSize(nf, 1<<16)
	sh.end = newEnd

	remaining := sh.recs[n:]
	sh.recs = make([]recMeta, len(remaining))
	for k, m := range remaining {
		m.off -= cut
		sh.recs[k] = m
	}
	sh.rebaseTailIndexes(int32(n))
	sh.recomputeTailDays()

	sh.packs = append(sh.packs, p)
	sh.packedRecords += p.Summary.Records
	sh.packedBytes += p.Summary.DataBytes
	endHash, err := pack.ParseHash(p.Summary.Hash)
	if err != nil {
		return 0, err
	}
	sh.packedHash = endHash

	s.counters.compactions.Add(1)
	s.counters.packedRecords.Add(p.Summary.Records)
	s.counters.packedBytes.Add(p.Summary.DataBytes)
	return p.Summary.Records, nil
}

// rebaseTailIndexes drops index entries for the first n (now packed)
// tail records and shifts the survivors down by n. Cost is one walk of
// the old tail's postings — O(packed + remaining), independent of
// store size. Callers hold sh.mu.
func (sh *shard) rebaseTailIndexes(n int32) {
	rebase := func(m map[string][]int32) {
		for k, idxs := range m {
			kept := idxs[:0]
			for _, ix := range idxs {
				if ix >= n {
					kept = append(kept, ix-n)
				}
			}
			if len(kept) == 0 {
				delete(m, k)
			} else {
				m[k] = kept
			}
		}
	}
	rebase(sh.byDomain)
	rebase(sh.byHost)
	var posts int64
	for _, idxs := range sh.byHost {
		posts += int64(len(idxs))
	}
	sh.hostPostings = posts
}

// recomputeTailDays rebuilds the tail day range after a rebase.
// Callers hold sh.mu.
func (sh *shard) recomputeTailDays() {
	sh.minDay, sh.maxDay = 0, 0
	for k, m := range sh.recs {
		d := simtime.Day(m.day)
		if k == 0 || d < sh.minDay {
			sh.minDay = d
		}
		if k == 0 || d > sh.maxDay {
			sh.maxDay = d
		}
	}
}
