package replica

import (
	"fmt"

	"repro/internal/capture"
	"repro/internal/capturedb"
)

// Reader fans queries out per segment: each of the store's S segments
// is served by whichever of its R placed replicas answers first
// (healthy-and-clean replicas are tried before known-bad ones), with
// failover resuming mid-segment at the record offset already consumed
// — a torn stream from a dying node costs a retry, never a gap or a
// duplicate. Segments stream in index order, so a full sweep is
// byte-identical to the same query against a single-node store holding
// the canonical commit sequence.
//
// Reads are served while any single node is down (R ≥ 2 keeps every
// segment covered). They are first-healthy-wins, not quorum reads: a
// replica that is catching up can serve a shorter-but-correct prefix
// of a segment until repair converges.
type Reader struct {
	w *Writer
}

// Reader returns the read fan-out over the writer's ring and node
// health view.
func (w *Writer) Reader() *Reader { return &Reader{w: w} }

// candidates orders shard s's replicas for a read attempt: up and
// clean first, placement order within each class.
func (r *Reader) candidates(s int) []*node {
	placed := r.w.ring.PlaceSegment(s)
	nodes := make([]*node, 0, len(placed))
	var degraded []*node
	for _, name := range placed {
		n := r.w.byName[name]
		n.mu.Lock()
		healthy := n.st == nodeUp && !n.dirty
		n.mu.Unlock()
		if healthy {
			nodes = append(nodes, n)
		} else {
			degraded = append(degraded, n)
		}
	}
	return append(nodes, degraded...)
}

// Query streams matches across all segments in segment order.
// Returning false from fn stops early; limit and offset paginate the
// merged stream (0 limit means unlimited).
func (r *Reader) Query(q capturedb.Query, limit, offset int, fn func(*capture.Capture) bool) error {
	seen, sent := 0, 0
	for s := 0; s < r.w.cfg.Shards; s++ {
		stop, err := r.queryShard(s, q, &seen, &sent, limit, offset, fn)
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// queryShard streams one segment with per-replica failover. got counts
// the filtered records already received for this segment across
// attempts, which is exactly the resume offset on the next replica.
func (r *Reader) queryShard(s int, q capturedb.Query, seen, sent *int, limit, offset int, fn func(*capture.Capture) bool) (stop bool, err error) {
	got := 0
	var lastErr error
	cands := r.candidates(s)
	// Two passes over the candidates: a replica that failed mid-stream
	// (e.g. it was being killed) may be the only one that can finish
	// the segment once it returns.
	for round := 0; round < 2; round++ {
		for i, nd := range cands {
			if round > 0 || i > 0 {
				r.w.m.failovers.Inc()
			}
			qerr := nd.cl.QueryShard(s, q, 0, got, func(c *capture.Capture) bool {
				got++
				*seen++
				if *seen <= offset {
					return true
				}
				if !fn(c) {
					stop = true
					return false
				}
				*sent++
				if limit > 0 && *sent >= limit {
					stop = true
					return false
				}
				return true
			})
			if qerr == nil || stop {
				return stop, nil
			}
			lastErr = qerr
		}
	}
	return false, fmt.Errorf("replica: segment %d unavailable on all replicas: %w", s, lastErr)
}

// Count sums per-segment counts, each served by the first replica
// that answers.
func (r *Reader) Count(q capturedb.Query) (int, error) {
	total := 0
	for s := 0; s < r.w.cfg.Shards; s++ {
		var lastErr error
		counted := false
		for i, nd := range r.candidates(s) {
			if i > 0 {
				r.w.m.failovers.Inc()
			}
			n, err := nd.cl.CountShard(s, q)
			if err == nil {
				total += n
				counted = true
				break
			}
			lastErr = err
		}
		if !counted {
			return 0, fmt.Errorf("replica: segment %d unavailable on all replicas: %w", s, lastErr)
		}
	}
	return total, nil
}
