// Package replica turns N independent capd storage nodes into one
// replicated capture store that survives the loss (and return) of any
// single node.
//
// Placement is by segment: the deterministic consistent-hash ring
// (internal/ring) assigns each of the store's S segments to R of the N
// nodes. Every node runs a plain capd with the full S-segment layout;
// only its placed segments ever receive records.
//
// The correctness core is the canonical-prefix property. The Writer
// owns the single global commit order (the fleet's ordered work-item
// cursor, or arrival order for unordered pushes) and each node is fed
// by exactly one sender goroutine delivering committed sub-batches in
// that order over the node's unordered /ingest, whose per-record
// idempotency keys make re-delivery safe. Every node segment is
// therefore always a byte prefix of the canonical single-store
// segment — so replica repair never needs record-level reconciliation:
// verify the prefix hash, then re-stream the missing suffix from a
// healthy peer (capstore's manifest/segment API). A full query sweep
// over the ring after any schedule of single-node crashes and repairs
// is byte-identical to a single-node store fed the same commits.
//
// Failure handling per node is a three-state machine: up → down (a
// delivery failed; committed sub-batches accumulate as hinted handoff,
// optionally mirrored to a durable NDJSON log with torn-tail
// repair-on-open) → dirty (the handoff bound overflowed; hints are
// dropped to the dead-letter counter and the node is flagged for
// anti-entropy repair). Every revival starts with a repair pass to the
// commit watermark — a node that died hard may have lost appends it
// already acknowledged, which hint replay alone cannot heal; when
// nothing is missing the pass is one cheap manifest diff — and then
// queued hints and live deliveries resume (re-delivery is idempotent).
// Writes ack at a per-shard quorum W; reads
// (Reader) fan out per segment, first healthy replica wins, failing
// over mid-stream by record offset.
package replica

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/capstore"
	"repro/internal/capture"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/ring"
)

// ErrQuorumTimeout is surfaced when a committed batch cannot reach its
// write quorum within Config.QuorumTimeout. The batch stays committed
// (its position in the canonical order is taken and its deliveries
// remain queued); the pusher should retry, which re-waits on the same
// commit.
var ErrQuorumTimeout = errors.New("replica: write quorum not reached")

// ErrClosed is returned for pushes after Close.
var ErrClosed = errors.New("replica: writer closed")

// NodeConfig names one storage node and its capd base URL.
type NodeConfig struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// Config parameterizes the replicated writer.
type Config struct {
	// Nodes are the storage nodes (at least Replicas of them).
	Nodes []NodeConfig
	// Shards is the segment count every node's store was created with.
	Shards int
	// Seed roots the placement ring.
	Seed uint64
	// Replicas is the ring's replication factor R (default 2).
	Replicas int
	// VirtualNodes tunes ring smoothness (default ring.DefaultVirtualNodes).
	VirtualNodes int
	// Quorum is the per-shard write quorum W (default 1, clamped to
	// [1, Replicas]). With R=2, W=1 keeps ingest available through any
	// single-node loss.
	Quorum int
	// MaxPendingBatches bounds the ordered-mode reorder buffer; beyond
	// it out-of-order pushes are shed with ErrIngestShed (default 64).
	MaxPendingBatches int
	// MaxHandoff bounds the hinted-handoff queue of a down node, in
	// batches; overflow drops the hints and flags the node dirty for
	// anti-entropy repair (default 256).
	MaxHandoff int
	// HandoffDir, when set, mirrors each node's hinted handoff to a
	// durable NDJSON log (handoff-<node>.ndjson) with torn-tail
	// repair-on-open; hints found at startup are requeued.
	HandoffDir string
	// QuorumTimeout bounds how long a push waits for its write quorum
	// before surfacing ErrQuorumTimeout (default 5s).
	QuorumTimeout time.Duration
	// ProbeInterval paces the /healthz revival probes of a down node
	// (default 100ms).
	ProbeInterval time.Duration
	// NodeTimeout bounds each HTTP call to a node (default 10s).
	NodeTimeout time.Duration
	// Registry, when non-nil, receives the replication metrics.
	Registry *obs.Registry
	// Tracer, when non-nil, records a ring.ingest span per traced
	// commit (the pusher's Traceparent header parents it) and stamps
	// the span's context onto every per-node delivery.
	Tracer *obs.Tracer
	// HTTP overrides the per-node HTTP client (tests).
	HTTP *http.Client
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Quorum <= 0 {
		c.Quorum = 1
	}
	if c.Quorum > c.Replicas {
		c.Quorum = c.Replicas
	}
	if c.MaxPendingBatches <= 0 {
		c.MaxPendingBatches = 64
	}
	if c.MaxHandoff <= 0 {
		c.MaxHandoff = 256
	}
	if c.QuorumTimeout <= 0 {
		c.QuorumTimeout = 5 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 100 * time.Millisecond
	}
	if c.NodeTimeout <= 0 {
		c.NodeTimeout = 10 * time.Second
	}
	return c
}

// metrics is the nil-safe obs wiring (every field no-ops unregistered).
type metrics struct {
	nodeUp        *obs.GaugeVec
	handoffDepth  *obs.GaugeVec
	deadLetters   *obs.CounterVec
	repairs       *obs.CounterVec
	repairRecords *obs.Counter
	repairBytes   *obs.Counter
	diverged      *obs.Counter
	quorumSeconds *obs.Histogram
	committed     *obs.Counter
	shed          *obs.Counter
	failovers     *obs.Counter
}

func newMetrics(r *obs.Registry) metrics {
	return metrics{
		nodeUp:        obs.NewGaugeVec(r, "repl_node_up", "1 while the storage node is accepting deliveries, 0 while down.", "node"),
		handoffDepth:  obs.NewGaugeVec(r, "repl_handoff_depth", "Queued batches awaiting delivery to the node (hinted handoff while down).", "node"),
		deadLetters:   obs.NewCounterVec(r, "repl_handoff_dropped_total", "Hinted-handoff batches dropped on overflow (node flagged dirty for repair).", "node"),
		repairs:       obs.NewCounterVec(r, "repl_repairs_total", "Anti-entropy repair passes completed for the node.", "node"),
		repairRecords: obs.NewCounter(r, "repl_repair_records_total", "Records re-streamed into lagging replicas by repair."),
		repairBytes:   obs.NewCounter(r, "repl_repair_bytes_total", "Wire-format bytes re-streamed into lagging replicas by repair."),
		diverged:      obs.NewCounter(r, "repl_repair_diverged_total", "Segments whose prefix hash failed verification (never auto-repaired)."),
		quorumSeconds: obs.NewHistogram(r, "repl_quorum_wait_seconds", "Commit-to-write-quorum latency.", obs.LatencyBuckets),
		committed:     obs.NewCounter(r, "repl_committed_records_total", "Records committed to the canonical order."),
		shed:          obs.NewCounter(r, "repl_ingest_shed_total", "Ordered-mode pushes shed because the reorder buffer was full."),
		failovers:     obs.NewCounter(r, "repl_read_failovers_total", "Per-segment read attempts that failed over to another replica."),
	}
}

// item is one committed sub-batch bound for one node: the records of
// every placed shard this node covers, in canonical commit order.
type item struct {
	caps   []*capture.Capture
	shards []int // distinct shards covered, for quorum acking
	wait   *commitWait
	// tp is the commit's ring.ingest span context, forwarded on the
	// node delivery so capd's ingest span joins the same trace. Empty
	// for untraced commits and handoff replays loaded from disk.
	tp string
}

// commitWait tracks one commit's write quorum: each touched shard
// needs W node acks; done closes when every shard has them.
type commitWait struct {
	seq       int64 // ordered-mode position, -1 for unordered commits
	need      map[int]int
	remaining int
	start     time.Time
	done      chan struct{}
	span      *obs.Span // ring.ingest span, ended when the quorum lands
}

type pendingBatch struct {
	n     int64
	caps  []*capture.Capture
	trace string // pusher's traceparent, replayed when the batch commits
}

type nodeState int

const (
	nodeUp nodeState = iota
	nodeDown
)

// node is one storage node's delivery machinery. A single sender
// goroutine drains queue in order — the only writer to the node's
// /ingest, which is what preserves the canonical-prefix property
// (repair runs inside the same goroutine, so it serializes against
// live appends).
type node struct {
	name string
	cl   *capstore.Client
	w    *Writer

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []item
	st      nodeState
	dirty   bool
	closed  bool
	breaker *resilience.Breaker
	handoff *handoffLog // nil without HandoffDir
	// delivered counts the records per shard this node has
	// acknowledged — what its store must durably hold. A clean
	// revival repairs to this watermark (anything above it is still
	// queued or in flight and arrives in order); a dirty revival owes
	// the writer's full canonical counts instead.
	delivered []int64

	depth *obs.Gauge
	up    *obs.Gauge
	dead  *obs.Counter
}

// Writer is the replicating ingest proxy: the single owner of the
// canonical commit order, fanning each committed batch to its placed
// nodes with quorum accounting.
type Writer struct {
	cfg    Config
	ring   *ring.Ring
	nodes  []*node
	byName map[string]*node
	m      metrics

	mu          sync.Mutex
	nextSeq     int64
	pending     map[int64]pendingBatch
	awaiting    map[int64]*commitWait
	shardCounts []int64 // canonical records committed per shard
	committed   int64
	closed      bool
	done        chan struct{}

	wg sync.WaitGroup
}

// NewWriter builds the proxy, loads any durable handoff hints, and
// starts one sender per node.
func NewWriter(cfg Config) (*Writer, error) {
	cfg = cfg.withDefaults()
	if cfg.Shards <= 0 {
		return nil, errors.New("replica: Config.Shards must be positive")
	}
	if len(cfg.Nodes) < cfg.Replicas {
		return nil, fmt.Errorf("replica: %d nodes cannot hold %d replicas", len(cfg.Nodes), cfg.Replicas)
	}
	names := make([]string, len(cfg.Nodes))
	for i, nc := range cfg.Nodes {
		if nc.Name == "" || nc.URL == "" {
			return nil, fmt.Errorf("replica: node %d needs both name and URL", i)
		}
		names[i] = nc.Name
	}
	rg, err := ring.New(ring.Config{Seed: cfg.Seed, Nodes: names, Replicas: cfg.Replicas, VirtualNodes: cfg.VirtualNodes})
	if err != nil {
		return nil, err
	}
	w := &Writer{
		cfg:         cfg,
		ring:        rg,
		byName:      make(map[string]*node, len(cfg.Nodes)),
		m:           newMetrics(cfg.Registry),
		pending:     make(map[int64]pendingBatch),
		awaiting:    make(map[int64]*commitWait),
		shardCounts: make([]int64, cfg.Shards),
		done:        make(chan struct{}),
	}
	httpClient := cfg.HTTP
	if httpClient == nil {
		httpClient = &http.Client{Timeout: cfg.NodeTimeout}
	}
	for _, nc := range cfg.Nodes {
		cl := capstore.NewClient(nc.URL)
		cl.HTTP = httpClient
		n := &node{
			name: nc.Name,
			cl:   cl,
			w:    w,
			breaker: resilience.NewBreaker(resilience.BreakerConfig{
				Threshold: 1,
				Cooldown:  cfg.ProbeInterval,
			}),
			depth:     w.m.handoffDepth.With(nc.Name),
			up:        w.m.nodeUp.With(nc.Name),
			dead:      w.m.deadLetters.With(nc.Name),
			delivered: make([]int64, cfg.Shards),
		}
		n.cond = sync.NewCond(&n.mu)
		n.up.Set(1)
		if cfg.HandoffDir != "" {
			log, hints, err := openHandoffLog(cfg.HandoffDir, nc.Name)
			if err != nil {
				return nil, err
			}
			n.handoff = log
			for _, h := range hints {
				it, err := h.item()
				if err != nil {
					return nil, fmt.Errorf("replica: handoff log %s: %w", nc.Name, err)
				}
				n.queue = append(n.queue, it)
			}
			n.depth.Set(float64(len(n.queue)))
		}
		w.nodes = append(w.nodes, n)
		w.byName[nc.Name] = n
	}
	for _, n := range w.nodes {
		w.wg.Add(1)
		go func(n *node) {
			defer w.wg.Done()
			n.run()
		}(n)
	}
	return w, nil
}

// Ring exposes the placement ring (for /ring and the Reader).
func (w *Writer) Ring() *ring.Ring { return w.ring }

func (w *Writer) isClosed() bool {
	select {
	case <-w.done:
		return true
	default:
		return false
	}
}

// Close stops the senders. Queued hints that have not been delivered
// stay in the durable handoff log (when configured) for the next run.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	close(w.done)
	w.mu.Unlock()
	for _, n := range w.nodes {
		n.mu.Lock()
		n.closed = true
		n.cond.Broadcast()
		n.mu.Unlock()
	}
	w.wg.Wait()
	var err error
	for _, n := range w.nodes {
		if n.handoff != nil {
			if cerr := n.handoff.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	}
	return err
}

// RecordBatch commits caps immediately in arrival order (unordered
// mode) and waits for the write quorum.
func (w *Writer) RecordBatch(caps []*capture.Capture) (capstore.IngestResult, error) {
	return w.RecordBatchTrace("", caps)
}

// RecordBatchTrace is RecordBatch with the pusher's traceparent: when
// the writer has a Tracer, the commit records a ring.ingest span
// parented by trace and forwards its context on every node delivery.
func (w *Writer) RecordBatchTrace(trace string, caps []*capture.Capture) (capstore.IngestResult, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return capstore.IngestResult{}, ErrClosed
	}
	sp := w.ringSpan(trace, -1, 0)
	wait := w.fanOutLocked(-1, caps, sp)
	if wait == nil && sp != nil {
		sp.End() // empty batch: nothing fans out
	}
	w.mu.Unlock()
	res := capstore.IngestResult{Accepted: int64(len(caps))}
	return w.await(wait, res)
}

// RecordBatchAt commits the ordered batch covering work items
// [at, at+n) — the fleet's commit path, with the same contract as a
// single capd's ordered /ingest: batches commit strictly in range
// order, out-of-order arrivals buffer (bounded, shedding with
// ErrIngestShed beyond the bound), and re-delivered ranges are dropped
// whole as duplicates. In-order pushes additionally wait for the write
// quorum of their own records.
func (w *Writer) RecordBatchAt(at, n int64, caps []*capture.Capture) (capstore.IngestResult, error) {
	return w.RecordBatchAtTrace("", at, n, caps)
}

// RecordBatchAtTrace is RecordBatchAt with the pusher's traceparent.
// Buffered out-of-order batches remember their trace and commit under
// it when the gap fills.
func (w *Writer) RecordBatchAtTrace(trace string, at, n int64, caps []*capture.Capture) (capstore.IngestResult, error) {
	if at < 0 || n <= 0 {
		return capstore.IngestResult{}, fmt.Errorf("replica: bad ordered range at=%d n=%d", at, n)
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return capstore.IngestResult{}, ErrClosed
	}
	switch {
	case at < w.nextSeq:
		// Already committed. If its quorum is still outstanding, the
		// re-pusher waits on it (an ambiguous earlier failure must not
		// ack before the records are actually safe).
		wait := w.awaiting[at]
		w.mu.Unlock()
		return w.await(wait, capstore.IngestResult{Duplicates: int64(len(caps))})
	case at > w.nextSeq:
		if _, dup := w.pending[at]; dup {
			res := capstore.IngestResult{Duplicates: int64(len(caps)), Pending: len(w.pending)}
			w.mu.Unlock()
			return res, nil
		}
		if len(w.pending) >= w.cfg.MaxPendingBatches {
			w.mu.Unlock()
			w.m.shed.Inc()
			return capstore.IngestResult{}, capstore.ErrIngestShed
		}
		w.pending[at] = pendingBatch{n: n, caps: caps, trace: trace}
		res := capstore.IngestResult{Accepted: int64(len(caps)), Pending: len(w.pending)}
		w.mu.Unlock()
		return res, nil
	}
	// at == nextSeq: commit, then drain whatever it unblocked.
	wait := w.commitLocked(at, n, caps, trace)
	for {
		pb, ok := w.pending[w.nextSeq]
		if !ok {
			break
		}
		seq := w.nextSeq
		delete(w.pending, seq)
		w.commitLocked(seq, pb.n, pb.caps, pb.trace)
	}
	res := capstore.IngestResult{Accepted: int64(len(caps)), Pending: len(w.pending)}
	w.mu.Unlock()
	return w.await(wait, res)
}

// commitLocked assigns the batch its canonical position and fans it
// out. Caller holds w.mu.
func (w *Writer) commitLocked(seq, n int64, caps []*capture.Capture, trace string) *commitWait {
	sp := w.ringSpan(trace, seq, n)
	wait := w.fanOutLocked(seq, caps, sp)
	if wait == nil && sp != nil {
		sp.End() // skip-range commit: no records to wait for
	}
	w.nextSeq = seq + n
	return wait
}

// ringSpan starts the commit's ring.ingest span when the pusher
// carried a trace context. Attrs are canonical coordinates only —
// never node names, queue depths, or retry counts — so propagated
// traces stay byte-identical across worker counts and replica
// layouts.
func (w *Writer) ringSpan(trace string, seq, n int64) *obs.Span {
	if w.cfg.Tracer == nil || trace == "" {
		return nil
	}
	pctx, err := obs.ParseTraceparent(trace)
	if err != nil || !pctx.Valid() {
		return nil
	}
	if seq >= 0 {
		return w.cfg.Tracer.StartRemote("ring.ingest", pctx,
			obs.A("at", strconv.FormatInt(seq, 10)),
			obs.A("n", strconv.FormatInt(n, 10)))
	}
	return w.cfg.Tracer.StartRemote("ring.ingest", pctx)
}

// fanOutLocked splits caps by shard, enqueues each node's sub-batch on
// its sender, and registers the commit's quorum accounting. Caller
// holds w.mu; enqueue order across nodes is the canonical order
// because this lock serializes all commits.
func (w *Writer) fanOutLocked(seq int64, caps []*capture.Capture, sp *obs.Span) *commitWait {
	if len(caps) == 0 {
		return nil
	}
	tp := ""
	if sp != nil {
		tp = sp.Context().Traceparent()
	}
	perNode := make(map[string]*item)
	nodeShards := make(map[string]map[int]bool)
	touched := make(map[int]bool)
	for _, c := range caps {
		s := capstore.ShardOf(c.FinalDomain, w.cfg.Shards)
		w.shardCounts[s]++
		touched[s] = true
		for _, name := range w.ring.PlaceSegment(s) {
			it := perNode[name]
			if it == nil {
				it = &item{}
				perNode[name] = it
				nodeShards[name] = make(map[int]bool)
			}
			it.caps = append(it.caps, c)
			nodeShards[name][s] = true
		}
	}
	w.committed += int64(len(caps))
	w.m.committed.Add(int64(len(caps)))

	wait := &commitWait{seq: seq, need: make(map[int]int, len(touched)), start: time.Now(), done: make(chan struct{}), span: sp}
	enqueued := make(map[int]int, len(touched))
	// Deterministic fan-out order keeps runs comparable (map iteration
	// would shuffle only goroutine wakeups, never bytes, but stable
	// order makes schedules reproducible in tests and traces).
	names := make([]string, 0, len(perNode))
	for name := range perNode {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		it := perNode[name]
		it.wait = wait
		it.tp = tp
		for s := range nodeShards[name] {
			it.shards = append(it.shards, s)
		}
		sort.Ints(it.shards)
		if w.byName[name].enqueue(*it) {
			for _, s := range it.shards {
				enqueued[s]++
			}
		}
	}
	for s := range touched {
		need := w.cfg.Quorum
		if n := enqueued[s]; n < need && n > 0 {
			// Fewer live replicas than W (the rest are dirty): ack at
			// what is reachable rather than stalling ingest — repair
			// restores full replication afterwards.
			need = n
		}
		wait.need[s] = need
		wait.remaining++
	}
	if seq >= 0 {
		w.awaiting[seq] = wait
	}
	return wait
}

// ackDelivery credits a delivered sub-batch against its commit's
// quorum.
func (w *Writer) ackDelivery(it item) {
	if it.wait == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	wait := it.wait
	for _, s := range it.shards {
		if n := wait.need[s]; n > 0 {
			wait.need[s] = n - 1
			if n == 1 {
				wait.remaining--
			}
		}
	}
	if wait.remaining == 0 && !isClosedChan(wait.done) {
		close(wait.done)
		w.m.quorumSeconds.Observe(time.Since(wait.start).Seconds())
		if wait.span != nil {
			wait.span.End() // span brackets commit → write quorum
		}
		if wait.seq >= 0 {
			delete(w.awaiting, wait.seq)
		}
	}
}

func isClosedChan(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// await blocks until the commit reaches quorum, the timeout passes, or
// the writer closes.
func (w *Writer) await(wait *commitWait, res capstore.IngestResult) (capstore.IngestResult, error) {
	if wait == nil {
		return res, nil
	}
	t := time.NewTimer(w.cfg.QuorumTimeout)
	defer t.Stop()
	select {
	case <-wait.done:
		return res, nil
	case <-t.C:
		return res, ErrQuorumTimeout
	case <-w.done:
		return res, ErrClosed
	}
}

// NodeStatus is one node's state snapshot.
type NodeStatus struct {
	Name    string `json:"name"`
	URL     string `json:"url"`
	Up      bool   `json:"up"`
	Dirty   bool   `json:"dirty"`
	Handoff int    `json:"handoff"` // queued batches
}

// Stats is the writer's state snapshot.
type Stats struct {
	NextSeq   int64        `json:"next_seq"`
	Committed int64        `json:"committed_records"`
	Pending   int          `json:"pending_batches"`
	Awaiting  int          `json:"awaiting_quorum"`
	Nodes     []NodeStatus `json:"nodes"`
}

// Stats snapshots the writer.
func (w *Writer) Stats() Stats {
	w.mu.Lock()
	st := Stats{NextSeq: w.nextSeq, Committed: w.committed, Pending: len(w.pending), Awaiting: len(w.awaiting)}
	w.mu.Unlock()
	for i, nc := range w.cfg.Nodes {
		n := w.nodes[i]
		n.mu.Lock()
		st.Nodes = append(st.Nodes, NodeStatus{
			Name: n.name, URL: nc.URL,
			Up: n.st == nodeUp, Dirty: n.dirty, Handoff: len(n.queue),
		})
		n.mu.Unlock()
	}
	return st
}

// Converged reports whether every queue is drained, every quorum is
// settled, and every node's placed segments hold exactly the canonical
// record counts — the smoke tests' repair-completion gate.
func (w *Writer) Converged() (bool, error) {
	w.mu.Lock()
	counts := append([]int64(nil), w.shardCounts...)
	awaiting := len(w.awaiting)
	pending := len(w.pending)
	w.mu.Unlock()
	if awaiting > 0 || pending > 0 {
		return false, nil
	}
	for _, n := range w.nodes {
		n.mu.Lock()
		busy := len(n.queue) > 0 || n.st != nodeUp || n.dirty
		n.mu.Unlock()
		if busy {
			return false, nil
		}
		m, err := n.cl.Manifest()
		if err != nil {
			return false, err
		}
		if len(m.Segments) != w.cfg.Shards {
			return false, fmt.Errorf("replica: node %s has %d segments, ring expects %d", n.name, len(m.Segments), w.cfg.Shards)
		}
		for _, s := range w.ring.SegmentsOf(n.name, w.cfg.Shards) {
			if int64(m.Segments[s].Records) != counts[s] {
				return false, nil
			}
		}
	}
	return true, nil
}

// WaitConverged polls Converged until it holds or the deadline passes.
func (w *Writer) WaitConverged(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ok, err := w.Converged()
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			if err == nil {
				err = errors.New("replicas not converged")
			}
			return fmt.Errorf("replica: convergence wait timed out: %w", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ----- per-node sender -----

// enqueue hands a committed sub-batch to the node's sender. Returns
// false when the batch was dead-lettered: the node is down with its
// handoff dropped (dirty — repair owes these records), or this push
// overflowed the hinted-handoff bound (which drops the queue and flags
// the node dirty). A node that is back up but still repairing accepts
// enqueues normally — they queue behind the repair, which owes only
// the records committed before its watermark. Caller holds w.mu, which
// makes cross-node enqueue order the canonical commit order.
func (n *node) enqueue(it item) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return false
	}
	if n.st == nodeDown {
		if n.dirty {
			n.dead.Inc()
			return false
		}
		if len(n.queue) >= n.w.cfg.MaxHandoff {
			// Hinted handoff overflow: drop the hints, flag for repair.
			// Signal so an idle sender wakes to probe for revival.
			n.dead.Add(int64(len(n.queue)) + 1)
			n.queue = nil
			n.dirty = true
			n.depth.Set(0)
			if n.handoff != nil {
				n.handoff.Reset() //nolint:errcheck // best-effort: repair supersedes the log
			}
			n.cond.Signal()
			return false
		}
		n.queue = append(n.queue, it)
		if n.handoff != nil {
			n.handoff.Append(it) //nolint:errcheck // best-effort durability for hints
		}
	} else {
		n.queue = append(n.queue, it)
	}
	n.depth.Set(float64(len(n.queue)))
	n.cond.Signal()
	return true
}

type senderWork int

const (
	workStop senderWork = iota
	workDeliver
	workRevive
)

// dequeue blocks for the sender's next piece of work: a sub-batch to
// deliver, a revival to probe for (the node is down-and-dirty with
// nothing queued, so no delivery would otherwise trigger one), or
// stop on close.
func (n *node) dequeue() (item, senderWork) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for len(n.queue) == 0 && !n.closed && !(n.st == nodeDown && n.dirty) {
		if n.st == nodeUp && n.handoff != nil {
			// Idle and caught up: the durable hints are all delivered.
			n.handoff.Reset() //nolint:errcheck
		}
		n.cond.Wait()
	}
	if len(n.queue) == 0 {
		if n.closed {
			return item{}, workStop
		}
		return item{}, workRevive
	}
	it := n.queue[0]
	n.queue = n.queue[1:]
	n.depth.Set(float64(len(n.queue)))
	return it, workDeliver
}

// run is the sender loop: the node's only writer.
func (n *node) run() {
	for {
		it, work := n.dequeue()
		switch work {
		case workStop:
			return
		case workRevive:
			if !n.awaitRevival() {
				return
			}
		case workDeliver:
			n.deliver(it)
		}
	}
}

func (n *node) state() (st nodeState, dirty bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.st, n.dirty
}

// deliver pushes one sub-batch until it lands, the node goes dirty
// (repair will supersede it), or the writer closes.
func (n *node) deliver(it item) {
	for {
		if n.w.isClosed() {
			return
		}
		st, dirty := n.state()
		if st == nodeDown {
			if dirty {
				// Superseded: this item was committed before the node
				// went dirty, so the revival repair owes its records.
				return
			}
			if !n.awaitRevival() {
				return
			}
		}
		_, err := n.cl.RecordBatchTrace(it.tp, it.caps)
		if err == nil {
			n.noteSuccess(it)
			n.w.ackDelivery(it)
			return
		}
		var shed *capstore.ShedError
		if errors.As(err, &shed) {
			// Node alive but shedding: plain backpressure, not an outage.
			d := shed.RetryAfter
			if d <= 0 {
				d = n.w.cfg.ProbeInterval
			}
			time.Sleep(d)
			continue
		}
		n.noteFailure(it)
	}
}

func (n *node) noteSuccess(it item) {
	n.mu.Lock()
	n.breaker.Success()
	if n.st != nodeUp {
		n.st = nodeUp
		n.up.Set(1)
	}
	for _, c := range it.caps {
		n.delivered[capstore.ShardOf(c.FinalDomain, n.w.cfg.Shards)]++
	}
	n.mu.Unlock()
}

// noteFailure transitions the node down after a failed delivery of it.
// On the up→down edge the durable hint log captures the failed item
// and everything already queued — from here until revival (or
// overflow) the log mirrors the node's entire delivery debt, so a
// proxy crash mid-outage loses nothing that was only hinted.
func (n *node) noteFailure(it item) {
	n.mu.Lock()
	n.breaker.Failure()
	if n.st != nodeDown {
		n.st = nodeDown
		n.up.Set(0)
		if n.handoff != nil {
			n.handoff.Append(it) //nolint:errcheck // best-effort durability for hints
			for _, q := range n.queue {
				n.handoff.Append(q) //nolint:errcheck
			}
		}
	}
	n.mu.Unlock()
}

// awaitRevival probes /healthz (paced by the breaker's cooldown) until
// the node answers, then transitions it back up — running anti-entropy
// repair first when the handoff was dropped. Returns false when the
// writer closed instead.
//
// The up transition and the repair watermark are taken under w.mu in
// one critical section: from that instant every new commit enqueues to
// this node again, and repair owes exactly the records committed
// before it. Together they cover everything; overlap is deduplicated
// by the nodes' idempotency keys without disturbing record order.
func (n *node) awaitRevival() bool {
	for {
		if n.w.isClosed() {
			return false
		}
		if n.breaker.Allow() {
			if _, err := n.cl.Health(); err == nil {
				n.w.mu.Lock()
				n.mu.Lock()
				n.breaker.Success()
				n.st = nodeUp
				wasDirty := n.dirty
				n.up.Set(1)
				// The repair watermark: a dirty node dropped hints, so
				// it owes the full canonical counts; a clean node owes
				// only what it has already acknowledged — everything
				// above that is still queued (or in flight) and will
				// arrive in commit order. Repairing even a clean node
				// matters because a node that died hard may have lost
				// appends it acked (buffered writes, torn segment
				// tails); when nothing was lost the pass is one cheap
				// local manifest diff that touches no peer.
				var watermark []int64
				if wasDirty {
					watermark = append([]int64(nil), n.w.shardCounts...)
				} else {
					watermark = append([]int64(nil), n.delivered...)
				}
				n.mu.Unlock()
				n.w.mu.Unlock()
				if !n.repair(watermark) {
					return false
				}
				n.mu.Lock()
				for s, c := range watermark {
					if n.delivered[s] < c {
						n.delivered[s] = c
					}
				}
				n.dirty = false
				n.mu.Unlock()
				return true
			}
			n.breaker.Failure() // reopen with a fresh cooldown
		}
		time.Sleep(n.w.cfg.ProbeInterval / 4)
	}
}
