package replica

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/capture"
	"repro/internal/capturedb"
)

// The durable hinted-handoff log mirrors a down node's delivery queue
// to disk, one JSON hint per line, so hints survive a proxy restart.
// Like the capstore segments and the fleet checkpoint it is
// crash-tolerant by torn-tail repair-on-open: a write cut mid-line by
// a crash leaves a tail that is not a complete, parseable hint line;
// opening the log keeps the longest valid prefix and truncates the
// rest. Append is not fsynced per hint (hints are an optimization —
// anti-entropy repair reconciles any loss), but the valid-prefix scan
// guarantees a torn log never resurrects corrupt deliveries.

// hint is the wire form of one queued sub-batch.
type hint struct {
	// Seq is the commit's ordered-mode position (-1 for unordered).
	Seq int64 `json:"seq"`
	// Shards are the distinct segments the sub-batch touches.
	Shards []int `json:"shards"`
	// Caps are the records in canonical order, each a capturedb
	// wire-format line without its trailing newline (a wire line is
	// itself JSON, so it embeds verbatim).
	Caps []json.RawMessage `json:"caps"`
}

// item reconstructs the in-memory delivery item. Loaded hints carry no
// commitWait: their pushers belong to a previous process, so there is
// no quorum left to credit.
func (h hint) item() (item, error) {
	var buf bytes.Buffer
	for _, raw := range h.Caps {
		buf.Write(raw)
		buf.WriteByte('\n')
	}
	rr := capturedb.NewRecordReader(&buf)
	var caps []*capture.Capture
	for {
		c, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return item{}, err
		}
		caps = append(caps, c)
	}
	if len(caps) != len(h.Caps) {
		return item{}, fmt.Errorf("hint decoded %d of %d records", len(caps), len(h.Caps))
	}
	return item{caps: caps, shards: h.Shards}, nil
}

// handoffLog is one node's durable hint log.
type handoffLog struct {
	path string
	f    *os.File
	size int64
}

// handoffPath names the node's log file.
func handoffPath(dir, node string) string {
	return filepath.Join(dir, "handoff-"+node+".ndjson")
}

// openHandoffLog opens (creating if absent) the node's hint log,
// repairs any torn tail, and returns the surviving hints in append
// order.
func openHandoffLog(dir, nodeName string) (*handoffLog, []hint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	path := handoffPath(dir, nodeName)
	_, statErr := os.Stat(path)
	created := os.IsNotExist(statErr)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if created {
		// The name→inode link is a page of the parent directory, not of
		// the file: sync it once at creation so a crash cannot drop the
		// whole log while its appends survive.
		if err := syncDir(dir); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	hints, valid := validHintPrefix(data)
	if int64(valid) < int64(len(data)) {
		// Torn tail: keep the valid prefix, drop the fragment.
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &handoffLog{path: path, f: f, size: int64(valid)}, hints, nil
}

// syncDir fsyncs a directory so a just-created log's entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// validHintPrefix scans data for the longest prefix of complete,
// parseable hint lines, returning the decoded hints and the prefix
// length in bytes. Anything after the first incomplete or unparseable
// line is a torn tail.
func validHintPrefix(data []byte) ([]hint, int) {
	var hints []hint
	valid := 0
	for valid < len(data) {
		nl := bytes.IndexByte(data[valid:], '\n')
		if nl < 0 {
			break // no terminator: cut mid-line
		}
		line := data[valid : valid+nl]
		var h hint
		if err := json.Unmarshal(line, &h); err != nil {
			break // complete line but not a hint: corrupt, stop here
		}
		hints = append(hints, h)
		valid += nl + 1
	}
	return hints, valid
}

// Append records one queued sub-batch.
func (l *handoffLog) Append(it item) error {
	h := hint{Shards: it.shards, Caps: make([]json.RawMessage, 0, len(it.caps))}
	if it.wait != nil {
		h.Seq = it.wait.seq
	} else {
		h.Seq = -1
	}
	for _, c := range it.caps {
		line, err := capturedb.Encode(c)
		if err != nil {
			return err
		}
		h.Caps = append(h.Caps, json.RawMessage(bytes.TrimSuffix(line, []byte("\n"))))
	}
	line, err := json.Marshal(h)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	n, err := l.f.Write(line)
	l.size += int64(n)
	return err
}

// Reset drops all hints (delivered, or superseded by repair).
func (l *handoffLog) Reset() error {
	if l.size == 0 {
		return nil
	}
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	l.size = 0
	return nil
}

func (l *handoffLog) Close() error { return l.f.Close() }
