package replica

import (
	"io"
	"time"

	"repro/internal/capstore"
)

// Anti-entropy repair runs inside the node's sender goroutine — the
// node's only writer — so a repair stream can never interleave with a
// live delivery. The canonical-prefix property makes it cheap: a dirty
// node's segment is always a byte prefix of a healthy peer's, so the
// whole reconciliation is (1) diff manifests, (2) verify the prefix
// hash, (3) re-stream the missing suffix straight from the peer's
// /segment into the node's /ingest. Divergent segments (prefix hash
// mismatch — real corruption, not crash truncation) are counted and
// left alone; they never self-"repair" by overwriting.
//
// Repair owes the node every record committed before its up
// transition (the watermark taken in awaitRevival); records committed
// after it flow through the live queue behind this repair. A peer may
// itself still be draining those older commits, so repair loops —
// diff, stream, re-check — until the node's placed segments reach the
// watermark.

// countingReader tallies bytes pulled through a repair stream.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// repair reconciles the node up to watermark (canonical per-shard
// record counts at revival). Returns false only when the writer
// closed mid-repair.
func (n *node) repair(watermark []int64) bool {
	owned := make(map[int]bool)
	for _, s := range n.w.ring.SegmentsOf(n.name, n.w.cfg.Shards) {
		owned[s] = true
	}
	for {
		if n.w.isClosed() {
			return false
		}
		behind, err := n.repairPass(owned, watermark)
		if err != nil {
			// Peer or node hiccup: back off and retry; the sender cannot
			// proceed past repair anyway.
			time.Sleep(n.w.cfg.ProbeInterval)
			continue
		}
		if !behind {
			n.w.m.repairs.With(n.name).Inc()
			return true
		}
		// Still short of the watermark (peers draining their own
		// queues): let them catch up, then diff again.
		time.Sleep(n.w.cfg.ProbeInterval / 4)
	}
}

// repairPass runs one diff-and-stream cycle. behind reports whether
// any owned segment is still short of the watermark afterwards.
func (n *node) repairPass(owned map[int]bool, watermark []int64) (behind bool, err error) {
	local, err := n.cl.Manifest()
	if err != nil {
		return false, err
	}
	// Segments still short of the repair debt, grouped by the peer
	// that will serve them: for each, the first other placed node that
	// is currently up (with R=2 there is exactly one other).
	needs := make(map[*node][]int)
	for s := range owned {
		if int64(local.Segments[s].Records) >= watermark[s] {
			continue
		}
		behind = true
		if peer := n.w.peerFor(s, n.name); peer != nil {
			needs[peer] = append(needs[peer], s)
		}
	}
	if !behind {
		return false, nil
	}
	for peer, shards := range needs {
		if n.w.isClosed() {
			return behind, nil
		}
		if err := n.repairFrom(peer, shards, local); err != nil {
			return behind, err
		}
	}
	return behind, nil
}

// repairFrom diffs this node against one peer and streams every
// missing suffix among shards.
func (n *node) repairFrom(peer *node, shards []int, local capstore.Manifest) error {
	peerM, err := peer.cl.Manifest()
	if err != nil {
		return err
	}
	diffs, err := capstore.DiffManifests(local, peerM, func(shard, cnt int, ofPeer bool) (capstore.SegmentManifest, error) {
		if ofPeer {
			return peer.cl.PrefixManifest(shard, cnt)
		}
		return n.cl.PrefixManifest(shard, cnt)
	})
	if err != nil {
		return err
	}
	want := make(map[int]bool, len(shards))
	for _, s := range shards {
		want[s] = true
	}
	for _, d := range diffs {
		if !want[d.Shard] {
			continue
		}
		switch d.Kind {
		case capstore.DiffBehind:
			rc, err := peer.cl.SegmentReader(d.Shard, d.From)
			if err != nil {
				return err
			}
			cr := &countingReader{r: rc}
			res, err := n.cl.RecordStream(cr)
			rc.Close()
			if err != nil {
				return err
			}
			n.w.m.repairRecords.Add(res.Accepted)
			n.w.m.repairBytes.Add(cr.n)
		case capstore.DiffDiverged:
			n.w.m.diverged.Inc()
		}
	}
	return nil
}

// peerFor picks the replica that serves shard s's repair stream: the
// first placed node other than self that is up and clean.
func (w *Writer) peerFor(s int, self string) *node {
	for _, name := range w.ring.PlaceSegment(s) {
		if name == self {
			continue
		}
		p := w.byName[name]
		p.mu.Lock()
		ok := p.st == nodeUp && !p.dirty
		p.mu.Unlock()
		if ok {
			return p
		}
	}
	return nil
}
