package replica

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"slices"
	"testing"
	"time"

	"repro/internal/capstore"
	"repro/internal/capture"
	"repro/internal/capturedb"
	"repro/internal/obs"
	"repro/internal/resilience/chaos"
	"repro/internal/simtime"
)

// mkCapture fabricates a distinct capture; i keys every identifying
// field so idempotency, ordering, and placement are all observable.
func mkCapture(i int) *capture.Capture {
	return &capture.Capture{
		SeedURL:     fmt.Sprintf("https://site%d.example/p/%d", i%13, i),
		FinalURL:    fmt.Sprintf("https://site%d.example/p/%d", i%13, i),
		FinalDomain: fmt.Sprintf("site%d.example", i%13),
		Day:         simtime.Day(i % 7),
		Vantage:     capture.USCloud,
		Status:      200,
		Requests: []capture.Request{
			{Host: fmt.Sprintf("cmp%d.example", i%3), Path: "/c.js", Status: 200, BytesRaw: 90 + i, BytesCompressed: 80 + i},
		},
	}
}

// cluster is an in-process ring: each node is a full capd surface
// (ingest + query + manifest + healthz) behind a chaos kill gate.
type cluster struct {
	names  []string
	stores []*capstore.Store
	gates  map[string]*chaos.Gate
	w      *Writer
}

func newCluster(t *testing.T, nodes, shards int, mut func(*Config)) *cluster {
	t.Helper()
	c := &cluster{gates: make(map[string]*chaos.Gate)}
	cfg := Config{
		Shards:        shards,
		Seed:          11,
		Replicas:      2,
		Quorum:        1,
		MaxHandoff:    4,
		QuorumTimeout: 250 * time.Millisecond,
		ProbeInterval: 4 * time.Millisecond,
		NodeTimeout:   5 * time.Second,
	}
	for i := 0; i < nodes; i++ {
		name := fmt.Sprintf("node-%d", i)
		store, err := capstore.Create(t.TempDir(), shards)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { store.Close() })
		ing, err := capstore.NewIngester(store, capstore.IngestConfig{})
		if err != nil {
			t.Fatal(err)
		}
		mux := http.NewServeMux()
		mux.Handle("/ingest", ing)
		mux.Handle("/", capstore.NewResilientHandler(store, capstore.ServeConfig{}))
		gate := chaos.NewGate(mux)
		srv := httptest.NewServer(gate)
		t.Cleanup(srv.Close)
		c.names = append(c.names, name)
		c.stores = append(c.stores, store)
		c.gates[name] = gate
		cfg.Nodes = append(cfg.Nodes, NodeConfig{Name: name, URL: srv.URL})
	}
	if mut != nil {
		mut(&cfg)
	}
	w, err := NewWriter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	c.w = w
	return c
}

// pushOrdered retries through shedding and missed quorums — the fleet
// worker's contract — calling step between attempts so a chaos
// schedule keyed to commits can make progress.
func (c *cluster) pushOrdered(at, n int64, caps []*capture.Capture, step func()) error {
	for {
		_, err := c.w.RecordBatchAt(at, n, caps)
		switch {
		case err == nil:
			return nil
		case errors.Is(err, capstore.ErrIngestShed), errors.Is(err, ErrQuorumTimeout):
			if step != nil {
				step()
			}
			time.Sleep(2 * time.Millisecond)
		default:
			return err
		}
	}
}

// baseline builds the canonical single-node store for the commit
// sequence and returns its segment bytes.
func baseline(t *testing.T, caps []*capture.Capture, shards int) (dir string, segs map[string][]byte) {
	t.Helper()
	dir = t.TempDir()
	st, err := capstore.Create(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range caps {
		st.Record(c)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, readSegs(t, dir)
}

func readSegs(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(p)] = data
	}
	return out
}

// assertNodesCanonical checks the byte-identity invariant: every
// node's placed segments equal the canonical store's bytes exactly,
// and its unplaced segments are empty.
func (c *cluster) assertNodesCanonical(t *testing.T, want map[string][]byte, shards int) {
	t.Helper()
	for i, name := range c.names {
		if err := c.stores[i].Flush(); err != nil {
			t.Fatal(err)
		}
		got := readSegs(t, c.stores[i].Dir())
		owned := make(map[int]bool)
		for _, s := range c.w.Ring().SegmentsOf(name, shards) {
			owned[s] = true
		}
		for s := 0; s < shards; s++ {
			seg := fmt.Sprintf("seg-%03d.jsonl", s)
			if owned[s] {
				if !bytes.Equal(got[seg], want[seg]) {
					t.Errorf("%s %s: %d bytes, canonical %d — replica diverged from canonical prefix order",
						name, seg, len(got[seg]), len(want[seg]))
				}
			} else if len(got[seg]) != 0 {
				t.Errorf("%s %s: %d bytes in an unplaced segment", name, seg, len(got[seg]))
			}
		}
	}
}

func sweep(t *testing.T, query func(capturedb.Query, int, int, func(*capture.Capture) bool) error) []byte {
	t.Helper()
	var buf bytes.Buffer
	err := query(capturedb.Query{IncludeFailed: true}, 0, 0, func(c *capture.Capture) bool {
		line, err := capturedb.Encode(c)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestOrderedContractParity: the writer's ordered-mode semantics match
// a single capd's — strict range order, bounded reorder buffer with
// shedding, whole-batch duplicate drops, skip markers.
func TestOrderedContractParity(t *testing.T) {
	const shards = 4
	c := newCluster(t, 3, shards, func(cfg *Config) { cfg.MaxPendingBatches = 1 })
	var caps []*capture.Capture
	for i := 0; i < 12; i++ {
		caps = append(caps, mkCapture(i))
	}
	// Out of order: [4,8) buffers.
	if res, err := c.w.RecordBatchAt(4, 4, caps[4:8]); err != nil || res.Pending != 1 {
		t.Fatalf("buffered push: res=%+v err=%v", res, err)
	}
	// Buffer full: [8,12) sheds.
	if _, err := c.w.RecordBatchAt(8, 4, caps[8:12]); !errors.Is(err, capstore.ErrIngestShed) {
		t.Fatalf("want ErrIngestShed, got %v", err)
	}
	// Unblock: commits [0,8) in order, waits for quorum.
	if res, err := c.w.RecordBatchAt(0, 4, caps[0:4]); err != nil || res.Accepted != 4 {
		t.Fatalf("unblocking push: res=%+v err=%v", res, err)
	}
	// Skip marker advances the cursor without records.
	if _, err := c.w.RecordBatchAt(8, 4, nil); err != nil {
		t.Fatal(err)
	}
	if st := c.w.Stats(); st.NextSeq != 12 {
		t.Fatalf("cursor %+v, want next_seq 12", st)
	}
	// Re-delivery of a committed range: duplicates, no re-fan-out.
	if res, err := c.w.RecordBatchAt(0, 4, caps[0:4]); err != nil || res.Duplicates != 4 {
		t.Fatalf("stale push: res=%+v err=%v", res, err)
	}
	if err := c.w.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	_, want := baseline(t, caps[:8], shards)
	c.assertNodesCanonical(t, want, shards)
}

// TestChaosKillReviveByteIdentity is the tentpole's determinism gate:
// under a seeded schedule of single-node kills and revivals — long
// enough outages to overflow the hinted handoff and force anti-entropy
// repair — the ring converges to byte identity with a single-node
// store fed the same commit sequence, and a full replicated query
// sweep is byte-identical to the single store's.
func TestChaosKillReviveByteIdentity(t *testing.T) {
	const (
		shards = 8
		total  = 600
		batch  = 5
	)
	reg := obs.NewRegistry()
	c := newCluster(t, 3, shards, func(cfg *Config) {
		cfg.Registry = reg
		cfg.MaxHandoff = 3 // small: outages overflow into dirty + repair
		// Short quorum timeout so a stalled pusher retries fast enough
		// to drive the chaos clock (see stallTicks below).
		cfg.QuorumTimeout = 50 * time.Millisecond
	})
	var caps []*capture.Capture
	for i := 0; i < total; i++ {
		caps = append(caps, mkCapture(i))
	}
	plan := chaos.KillPlan(23, c.names, 3, total)
	if len(plan) != 3 {
		t.Fatalf("plan: %+v", plan)
	}
	nc := chaos.NewNodeChaos(plan, c.gates)
	// The chaos clock advances on commits, plus a tick per retry: a
	// commit can legitimately stall when its replica set is doubly
	// impaired (one node down, the other still repairing from the
	// PREVIOUS outage and thus unable to append without breaking its
	// byte prefix) — in production the down node revives on wall
	// clock, so the harness must let a stalled pusher reach the next
	// ReviveAt threshold too.
	var stallTicks int64
	step := func() {
		stallTicks++
		nc.Step(c.w.Stats().Committed + stallTicks)
	}
	for at := 0; at < total; at += batch {
		if err := c.pushOrdered(int64(at), batch, caps[at:at+batch], step); err != nil {
			t.Fatal(err)
		}
		step()
	}
	nc.Finish()
	if err := c.w.WaitConverged(30 * time.Second); err != nil {
		t.Fatalf("post-chaos convergence: %v (stats %+v, chaos %v)", err, c.w.Stats(), nc.Log())
	}
	if got := len(nc.Log()); got != 6 {
		t.Fatalf("chaos applied %d transitions (%v), want 6", got, nc.Log())
	}

	dir, want := baseline(t, caps, shards)
	c.assertNodesCanonical(t, want, shards)

	// Full sweep byte-identity: replicated reader vs the single store.
	single, err := capstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	wantSweep := sweep(t, func(q capturedb.Query, _, _ int, fn func(*capture.Capture) bool) error {
		return single.Query(q, fn)
	})
	gotSweep := sweep(t, c.w.Reader().Query)
	if !bytes.Equal(wantSweep, gotSweep) {
		t.Fatalf("replicated sweep %d bytes != single-store sweep %d bytes", len(gotSweep), len(wantSweep))
	}

	// The metrics surface stayed valid and saw the outages.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("exposition invalid: %v", err)
	}
	for _, fam := range []string{"repl_node_up", "repl_repair_records_total", "repl_committed_records_total", "repl_quorum_wait_seconds"} {
		if !bytes.Contains(buf.Bytes(), []byte(fam)) {
			t.Errorf("exposition missing %s", fam)
		}
	}
}

// TestRepairDuringIngestRace runs live ordered ingest concurrently
// with a node loss, handoff overflow, and anti-entropy repair — under
// -race this exercises the serialization of repair against deliveries
// (both run in the per-node sender), and the final byte-identity check
// proves committed records were neither duplicated nor reordered by
// the overlap of hint replay, repair streams, and live appends.
func TestRepairDuringIngestRace(t *testing.T) {
	const (
		shards = 4
		total  = 400
		batch  = 4
	)
	c := newCluster(t, 3, shards, func(cfg *Config) { cfg.MaxHandoff = 2 })
	var caps []*capture.Capture
	for i := 0; i < total; i++ {
		caps = append(caps, mkCapture(i))
	}
	errs := make(chan error, 1)
	go func() {
		for at := 0; at < total; at += batch {
			if err := c.pushOrdered(int64(at), batch, caps[at:at+batch], nil); err != nil {
				errs <- err
				return
			}
		}
		errs <- nil
	}()
	victim := c.names[1]
	c.gates[victim].Kill()
	// Hold the outage until the victim went dirty (handoff overflowed)
	// so revival runs a real repair against live traffic.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := c.w.Stats()
		if st.Nodes[1].Dirty {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim never went dirty: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.gates[victim].Revive()
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if err := c.w.WaitConverged(30 * time.Second); err != nil {
		t.Fatalf("convergence: %v (stats %+v)", err, c.w.Stats())
	}
	_, want := baseline(t, caps, shards)
	c.assertNodesCanonical(t, want, shards)
}

// TestReadServesDegraded: with one of three nodes hard down, the read
// path keeps serving the complete, correct result set via failover.
func TestReadServesDegraded(t *testing.T) {
	const shards = 8
	reg := obs.NewRegistry()
	c := newCluster(t, 3, shards, func(cfg *Config) { cfg.Registry = reg })
	var caps []*capture.Capture
	for i := 0; i < 240; i++ {
		caps = append(caps, mkCapture(i))
	}
	for at := 0; at < len(caps); at += 8 {
		if err := c.pushOrdered(int64(at), 8, caps[at:at+8], nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.w.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	dir, _ := baseline(t, caps, shards)
	single, err := capstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	want := sweep(t, func(q capturedb.Query, _, _ int, fn func(*capture.Capture) bool) error {
		return single.Query(q, fn)
	})

	rd := c.w.Reader()
	for _, down := range c.names {
		c.gates[down].Kill()
		got := sweep(t, rd.Query)
		if !bytes.Equal(want, got) {
			t.Fatalf("sweep with %s down: %d bytes, want %d", down, len(got), len(want))
		}
		if n, err := rd.Count(capturedb.Query{IncludeFailed: true}); err != nil || n != len(caps) {
			t.Fatalf("count with %s down: %d, %v", down, n, err)
		}
		c.gates[down].Revive()
	}
	if v := obs.NewCounter(reg, "repl_read_failovers_total", "").Value(); v == 0 {
		t.Error("no read failovers recorded despite node-down sweeps")
	}
}

// TestHandoffLogTornTailRepair mirrors the segment torn-tail tests for
// the durable hint log: a crash mid-append leaves a torn final line;
// opening the log keeps the valid prefix and truncates the fragment.
func TestHandoffLogTornTailRepair(t *testing.T) {
	dir := t.TempDir()
	log, hints, err := openHandoffLog(dir, "n0")
	if err != nil {
		t.Fatal(err)
	}
	if len(hints) != 0 {
		t.Fatalf("fresh log has %d hints", len(hints))
	}
	for i := 0; i < 3; i++ {
		it := item{caps: []*capture.Capture{mkCapture(i), mkCapture(i + 50)}, shards: []int{i % 2}}
		if err := log.Append(it); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	path := handoffPath(dir, "n0")
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Crash mid-append: a fourth hint cut inside its line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":9,"shards":[1],"caps":[{"tor`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	log2, hints2, err := openHandoffLog(dir, "n0")
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if len(hints2) != 3 {
		t.Fatalf("repaired log has %d hints, want 3", len(hints2))
	}
	repaired, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(repaired, clean) {
		t.Fatalf("torn tail not truncated: %d bytes, want %d", len(repaired), len(clean))
	}
	// Hints round-trip into deliverable items.
	for i, h := range hints2 {
		it, err := h.item()
		if err != nil {
			t.Fatal(err)
		}
		if len(it.caps) != 2 || it.caps[0].SeedURL != mkCapture(i).SeedURL {
			t.Fatalf("hint %d decoded %+v", i, it.caps)
		}
	}
	// A complete-but-corrupt line also stops the valid prefix.
	if err := os.WriteFile(path, append(append([]byte{}, clean...), []byte("not json\n{}\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	log2.Close()
	log3, hints3, err := openHandoffLog(dir, "n0")
	if err != nil {
		t.Fatal(err)
	}
	defer log3.Close()
	if len(hints3) != 3 {
		t.Fatalf("corrupt-line log yields %d hints, want 3", len(hints3))
	}
}

// TestHandoffDurableReplay: hints written while a node is down survive
// a writer restart and deliver on the next run.
func TestHandoffDurableReplay(t *testing.T) {
	const shards = 4
	handoffDir := t.TempDir()
	c := newCluster(t, 3, shards, func(cfg *Config) {
		cfg.HandoffDir = handoffDir
		cfg.MaxHandoff = 1 << 20 // never overflow: hints only
	})
	var caps []*capture.Capture
	for i := 0; i < 40; i++ {
		caps = append(caps, mkCapture(i))
	}
	if err := c.pushOrdered(0, 20, caps[:20], nil); err != nil {
		t.Fatal(err)
	}
	if err := c.w.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// The victim must own segments or it never sees a delivery: pick
	// the node placed for the most segments.
	owned := make(map[string]int)
	for s := 0; s < shards; s++ {
		for _, name := range c.w.Ring().PlaceSegment(s) {
			owned[name]++
		}
	}
	victim := c.names[0]
	for _, name := range c.names {
		if owned[name] > owned[victim] {
			victim = name
		}
	}
	vidx := slices.Index(c.names, victim)
	c.gates[victim].Kill()
	// Several small batches: the first failed delivery marks the node
	// down (logging the in-flight item), and every later batch is then
	// enqueued while down, accumulating queued hints.
	for at := 20; at < 40; at += 4 {
		if err := c.pushOrdered(int64(at), 4, caps[at:at+4], nil); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until the writer noticed the outage, then "crash" it with
	// the node still down.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := c.w.Stats()
		if !st.Nodes[vidx].Up {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("writer never marked %s down (gate refused %d): %+v",
				victim, c.gates[victim].Refused(), st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := c.w.Close(); err != nil {
		t.Fatal(err)
	}
	if data, err := os.ReadFile(handoffPath(handoffDir, victim)); err != nil || len(data) == 0 {
		t.Fatalf("durable handoff log empty (err %v)", err)
	}

	// Next run: same nodes, same log dir; the node is back.
	c.gates[victim].Revive()
	cfg := c.w.cfg // carries the node URLs of the live test servers
	w2, err := NewWriter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	// Replayed hints must land the missing records; convergence checks
	// counts via manifests, and the byte check proves order survived.
	w2.mu.Lock()
	copy(w2.shardCounts, shardCountsFor(caps, shards))
	w2.committed = int64(len(caps))
	w2.mu.Unlock()
	if err := w2.WaitConverged(10 * time.Second); err != nil {
		t.Fatalf("replay convergence: %v (stats %+v)", err, w2.Stats())
	}
	c2 := &cluster{names: c.names, stores: c.stores, gates: c.gates, w: w2}
	_, want := baseline(t, caps, shards)
	c2.assertNodesCanonical(t, want, shards)
}

func shardCountsFor(caps []*capture.Capture, shards int) []int64 {
	counts := make([]int64, shards)
	for _, c := range caps {
		counts[capstore.ShardOf(c.FinalDomain, shards)]++
	}
	return counts
}

// assertNodesLogicalCanonical is assertNodesCanonical for stores that
// may have been compacted: instead of raw segment files it compares
// each node's *logical* stream — packs and tail spliced by
// StreamShard — against the canonical bytes. Unplaced segments must
// still stream empty.
func (c *cluster) assertNodesLogicalCanonical(t *testing.T, want map[string][]byte, shards int) {
	t.Helper()
	for i, name := range c.names {
		owned := make(map[int]bool)
		for _, s := range c.w.Ring().SegmentsOf(name, shards) {
			owned[s] = true
		}
		for s := 0; s < shards; s++ {
			var buf bytes.Buffer
			if _, _, err := c.stores[i].StreamShard(s, 0, &buf); err != nil {
				t.Fatal(err)
			}
			seg := fmt.Sprintf("seg-%03d.jsonl", s)
			if owned[s] {
				if !bytes.Equal(buf.Bytes(), want[seg]) {
					t.Errorf("%s %s: logical stream %d bytes, canonical %d — replica diverged from canonical prefix order",
						name, seg, buf.Len(), len(want[seg]))
				}
			} else if buf.Len() != 0 {
				t.Errorf("%s %s: %d bytes in an unplaced segment", name, seg, buf.Len())
			}
		}
	}
}

// TestRepairWithPackedStores: compaction is invisible to replication.
// A node goes down mid-history and compacts its partial store locally,
// so its repair-time manifest comes entirely from pack footer indexes.
// The surviving peers then compact the full history, so the victim's
// prefix probe resolves *inside* a pack on the peer side and the
// missing suffix re-streams out of pack data spliced with the tail.
// The revived node must converge to the canonical logical stream, and
// a further compaction of the repaired store must not disturb it.
func TestRepairWithPackedStores(t *testing.T) {
	const (
		shards = 4
		head   = 70
		total  = 200
	)
	c := newCluster(t, 3, shards, nil)
	var caps []*capture.Capture
	for i := 0; i < total; i++ {
		caps = append(caps, mkCapture(i))
	}
	for at := 0; at < head; at += 5 {
		if err := c.pushOrdered(int64(at), 5, caps[at:at+5], nil); err != nil {
			t.Fatal(err)
		}
	}
	victim := c.names[1]
	c.gates[victim].Kill()
	if _, err := c.stores[1].CompactAll(); err != nil {
		t.Fatal(err)
	}
	for at := head; at < total; at += 5 {
		if err := c.pushOrdered(int64(at), 5, caps[at:at+5], nil); err != nil {
			t.Fatal(err)
		}
	}
	// Hold the outage until handoff overflowed so revival runs a real
	// manifest-diff repair rather than a hint replay.
	deadline := time.Now().Add(10 * time.Second)
	for !c.w.Stats().Nodes[1].Dirty {
		if time.Now().After(deadline) {
			t.Fatalf("victim never went dirty: %+v", c.w.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	for i, name := range c.names {
		if name == victim {
			continue
		}
		if _, err := c.stores[i].CompactAll(); err != nil {
			t.Fatal(err)
		}
		if st := c.stores[i].Stats(); st.Packs == 0 {
			t.Fatalf("%s: compaction produced no packs", name)
		}
	}
	c.gates[victim].Revive()
	if err := c.w.WaitConverged(30 * time.Second); err != nil {
		t.Fatalf("convergence: %v (stats %+v)", err, c.w.Stats())
	}
	_, want := baseline(t, caps, shards)
	c.assertNodesLogicalCanonical(t, want, shards)
	if _, err := c.stores[1].CompactAll(); err != nil {
		t.Fatal(err)
	}
	c.assertNodesLogicalCanonical(t, want, shards)
}
