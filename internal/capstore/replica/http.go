package replica

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/capstore"
	"repro/internal/capture"
	"repro/internal/capturedb"
	"repro/internal/obs"
)

// The replicated store's HTTP surface, served by cmd/capring. It
// mirrors a single capd closely enough that the fleet and capq talk to
// either interchangeably:
//
//	POST /ingest            unordered batch, committed in arrival order
//	POST /ingest?at=S&n=N   ordered fleet commit; 503 + Retry-After on
//	                        reorder shedding or a missed write quorum
//	GET  /query?…           merged stream across segments, replica
//	                        failover hidden from the client
//	GET  /count?…           {"count": N}
//	GET  /ring              placement: nodes, states, segment → replicas
//	GET  /healthz           writer snapshot (never load-shed)

// maxIngestBody mirrors capstore.IngestConfig's default body cap.
const maxIngestBody = 64 << 20

// Handler exposes the writer and its reader. Wrap it in a
// resilience.HTTPLimiter (as cmd/capring does) to bound concurrency;
// /healthz should be mounted outside the limiter.
func Handler(w *Writer) http.Handler {
	rd := w.Reader()
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", func(rw http.ResponseWriter, r *http.Request) { handleIngest(w, rw, r) })
	mux.HandleFunc("/query", func(rw http.ResponseWriter, r *http.Request) { handleQuery(rd, rw, r) })
	mux.HandleFunc("/count", func(rw http.ResponseWriter, r *http.Request) { handleCount(rd, rw, r) })
	mux.HandleFunc("/ring", func(rw http.ResponseWriter, r *http.Request) { handleRing(w, rw, r) })
	return mux
}

// HealthzHandler answers the writer snapshot; mount it outside any
// limiter so probes are never shed. With metrics registered the
// payload carries the capd-style telemetry digest (uptime + slowest
// quorum-wait buckets), so capstore.Client.Health round-trips it.
func HealthzHandler(w *Writer) http.Handler {
	started := time.Now()
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		st := w.Stats()
		status := "ok"
		for _, n := range st.Nodes {
			if !n.Up || n.Dirty {
				status = "degraded"
			}
		}
		var tel *obs.TelemetrySummary
		if w.cfg.Registry != nil {
			tel = obs.Summarize(time.Since(started), w.m.quorumSeconds.Snapshot(), 3)
		}
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(struct { //nolint:errcheck
			Status string `json:"status"`
			Stats
			Telemetry *obs.TelemetrySummary `json:"telemetry,omitempty"`
		}{Status: status, Stats: st, Telemetry: tel})
	})
}

func handleIngest(w *Writer, rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(rw, "replica: /ingest wants POST", http.StatusMethodNotAllowed)
		return
	}
	values := r.URL.Query()
	ordered := values.Get("at") != "" || values.Get("n") != ""
	var at, n int64
	if ordered {
		var err error
		if at, err = strconv.ParseInt(values.Get("at"), 10, 64); err != nil || at < 0 {
			http.Error(rw, fmt.Sprintf("replica: bad at=%q", values.Get("at")), http.StatusBadRequest)
			return
		}
		if n, err = strconv.ParseInt(values.Get("n"), 10, 64); err != nil || n <= 0 {
			http.Error(rw, fmt.Sprintf("replica: bad n=%q", values.Get("n")), http.StatusBadRequest)
			return
		}
	}
	body := http.MaxBytesReader(rw, r.Body, maxIngestBody)
	rr := capturedb.NewRecordReader(body)
	var caps []*capture.Capture
	for {
		c, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			http.Error(rw, "replica: bad ingest body: "+err.Error(), http.StatusBadRequest)
			return
		}
		caps = append(caps, c)
	}
	var res capstore.IngestResult
	var err error
	trace := r.Header.Get(obs.TraceparentHeader)
	if ordered {
		res, err = w.RecordBatchAtTrace(trace, at, n, caps)
	} else {
		res, err = w.RecordBatchTrace(trace, caps)
	}
	switch {
	case errors.Is(err, capstore.ErrIngestShed):
		rw.Header().Set("Retry-After", "1")
		http.Error(rw, "replica: ingest reorder buffer full, retry", http.StatusServiceUnavailable)
		return
	case errors.Is(err, ErrQuorumTimeout):
		// Committed but not yet safe on W replicas: the pusher must
		// retry (it will re-wait on the same commit), not ack.
		rw.Header().Set("Retry-After", "1")
		http.Error(rw, "replica: write quorum not reached, retry", http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(rw, "replica: "+err.Error(), http.StatusInternalServerError)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(res) //nolint:errcheck
}

// flushEvery matches capstore's streaming cadence.
const flushEvery = 256

func handleQuery(rd *Reader, rw http.ResponseWriter, r *http.Request) {
	q, limit, offset, err := capstore.ParseHTTPQuery(r.URL.Query())
	if err != nil {
		http.Error(rw, "replica: "+err.Error(), http.StatusBadRequest)
		return
	}
	rw.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := rw.(http.Flusher)
	sent := 0
	var werr error
	qerr := rd.Query(q, limit, offset, func(c *capture.Capture) bool {
		line, err := capturedb.Encode(c)
		if err == nil {
			_, err = rw.Write(line)
		}
		if err != nil {
			werr = err
			return false
		}
		sent++
		if flusher != nil && sent%flushEvery == 0 {
			flusher.Flush()
		}
		return true
	})
	if qerr != nil && sent == 0 && werr == nil {
		http.Error(rw, "replica: "+qerr.Error(), http.StatusServiceUnavailable)
		return
	}
	if qerr != nil && sent > 0 && werr == nil {
		// Mid-stream replica exhaustion: the status line is gone; cut
		// the connection so the client sees a torn stream, not a clean
		// short read.
		panic(http.ErrAbortHandler)
	}
}

func handleCount(rd *Reader, rw http.ResponseWriter, r *http.Request) {
	q, _, _, err := capstore.ParseHTTPQuery(r.URL.Query())
	if err != nil {
		http.Error(rw, "replica: "+err.Error(), http.StatusBadRequest)
		return
	}
	n, err := rd.Count(q)
	if err != nil {
		http.Error(rw, "replica: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(map[string]int{"count": n}) //nolint:errcheck
}

// RingInfo is the /ring payload: the deterministic placement plus the
// writer's live view of each node.
type RingInfo struct {
	Seed     uint64       `json:"seed"`
	Replicas int          `json:"replicas"`
	Shards   int          `json:"shards"`
	Nodes    []NodeStatus `json:"nodes"`
	// Placement maps segment index → placed node names, primary first.
	Placement [][]string `json:"placement"`
}

func handleRing(w *Writer, rw http.ResponseWriter, r *http.Request) {
	info := RingInfo{
		Seed:     w.cfg.Seed,
		Replicas: w.ring.Replicas(),
		Shards:   w.cfg.Shards,
		Nodes:    w.Stats().Nodes,
	}
	for s := 0; s < w.cfg.Shards; s++ {
		info.Placement = append(info.Placement, w.ring.PlaceSegment(s))
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(info) //nolint:errcheck
}
