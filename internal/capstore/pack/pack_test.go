package pack

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// line fabricates a distinct wire-format-shaped record.
func line(i int) []byte {
	return []byte(fmt.Sprintf(`{"s":"https://site%d.example/","d":%d}`+"\n", i%5, i%3))
}

func buildPack(t *testing.T, dir string, n int, base Base) *Pack {
	t.Helper()
	b, err := NewBuilder(filepath.Join(dir, "p.pack"), base)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		meta := RecordMeta{
			Day:    int32(i % 3),
			Failed: i%7 == 0,
			Domain: fmt.Sprintf("site%d.example", i%5),
			Hosts:  []string{fmt.Sprintf("cmp%d.example", i%2), "static.example"},
		}
		if err := b.Add(line(i), meta); err != nil {
			t.Fatal(err)
		}
	}
	p, err := b.Commit()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// TestHashMatchesStdlib pins the resumable FNV-64a to hash/fnv.
func TestHashMatchesStdlib(t *testing.T) {
	data := []byte("the quick brown fox\njumped\n")
	want := fnv.New64a()
	want.Write(data)
	if got := HashUpdate(HashOffset, data); got != want.Sum64() {
		t.Fatalf("HashUpdate = %016x, stdlib = %016x", got, want.Sum64())
	}
	// Resumability: split the input anywhere.
	h := HashUpdate(HashOffset, data[:11])
	h = HashUpdate(h, data[11:])
	if h != want.Sum64() {
		t.Fatalf("split HashUpdate = %016x, stdlib = %016x", h, want.Sum64())
	}
	hr, err := HashReader(HashOffset, bytes.NewReader(data))
	if err != nil || hr != want.Sum64() {
		t.Fatalf("HashReader = %016x err=%v, want %016x", hr, err, want.Sum64())
	}
	if HashUpdate(HashOffset, nil) != HashOffset {
		t.Fatal("hash of no bytes must be the offset basis")
	}
	rt, err := ParseHash(HashHex(h))
	if err != nil || rt != h {
		t.Fatalf("ParseHash(HashHex) roundtrip: %016x err=%v", rt, err)
	}
}

func TestBuildOpenRoundtrip(t *testing.T) {
	dir := t.TempDir()
	const n = 40
	p := buildPack(t, dir, n, ZeroBase)

	var want bytes.Buffer
	for i := 0; i < n; i++ {
		want.Write(line(i))
	}
	s := p.Summary
	if s.Records != n || s.DataBytes != int64(want.Len()) {
		t.Fatalf("summary records/bytes = %d/%d, want %d/%d", s.Records, s.DataBytes, n, want.Len())
	}
	if s.BaseHash != HashHex(HashOffset) {
		t.Fatalf("base hash = %s", s.BaseHash)
	}
	if s.Hash != HashHex(HashUpdate(HashOffset, want.Bytes())) {
		t.Fatalf("end hash = %s", s.Hash)
	}
	if s.MinDay != 0 || s.MaxDay != 2 {
		t.Fatalf("day range = [%d,%d]", s.MinDay, s.MaxDay)
	}
	if s.DomainKeys != 5 || s.HostKeys != 3 || s.HostPostings != 2*n {
		t.Fatalf("key counts = %d domains, %d hosts, %d postings", s.DomainKeys, s.HostKeys, s.HostPostings)
	}

	// Data section is the exact concatenation.
	var got bytes.Buffer
	if _, err := io.Copy(&got, p.DataReader(0, s.DataBytes)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("data section differs from concatenated input")
	}

	// Per-record reads reproduce each line; rectab metadata matches.
	recs, err := p.Recs()
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	for i := 0; i < n; i++ {
		b, err := p.ReadRecord(recs, i, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, line(i)) {
			t.Fatalf("record %d bytes differ", i)
		}
		if recs[i].Day != int32(i%3) || recs[i].Failed != (i%7 == 0) {
			t.Fatalf("record %d meta = %+v", i, recs[i])
		}
	}

	// Posting lists point at the right records.
	for d := 0; d < 5; d++ {
		idxs, err := p.Domain(fmt.Sprintf("site%d.example", d))
		if err != nil {
			t.Fatal(err)
		}
		if len(idxs) != n/5 {
			t.Fatalf("domain site%d has %d postings", d, len(idxs))
		}
		for _, ix := range idxs {
			if int(ix)%5 != d {
				t.Fatalf("domain site%d posting %d wrong", d, ix)
			}
		}
	}
	static, err := p.Host("static.example")
	if err != nil || len(static) != n {
		t.Fatalf("static.example postings = %d err=%v", len(static), err)
	}
	if none, _ := p.Domain("absent.example"); none != nil {
		t.Fatal("absent domain should have no postings")
	}
}

// TestPrefixHashChain checks every stored running hash equals a
// from-scratch FNV over the logical prefix, across a nonzero base.
func TestPrefixHashChain(t *testing.T) {
	dir := t.TempDir()
	baseData := []byte("earlier-pack-bytes\n")
	base := Base{Records: 3, Bytes: int64(len(baseData)), Hash: HashUpdate(HashOffset, baseData)}
	const n = 9
	p := buildPack(t, dir, n, base)

	stream := append([]byte(nil), baseData...)
	for i := 0; i < n; i++ {
		stream = append(stream, line(i)...)
		h, nbytes, err := p.PrefixHash(int64(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		if want := HashUpdate(HashOffset, stream); h != want {
			t.Fatalf("prefix %d hash = %016x, want %016x", i+1, h, want)
		}
		if want := int64(len(stream)) - base.Bytes; nbytes != want {
			t.Fatalf("prefix %d bytes = %d, want %d", i+1, nbytes, want)
		}
	}
	if _, _, err := p.PrefixHash(0); err == nil {
		t.Fatal("prefix 0 inside a pack must error (callers answer it from base state)")
	}
	if _, _, err := p.PrefixHash(n + 1); err == nil {
		t.Fatal("prefix past the pack must error")
	}
	if p.Summary.BaseRecords != 3 || p.Summary.BaseBytes != base.Bytes || p.Summary.BaseHash != HashHex(base.Hash) {
		t.Fatalf("base chain fields = %+v", p.Summary)
	}
}

func TestOpenRejectsTornAndForeign(t *testing.T) {
	dir := t.TempDir()
	p := buildPack(t, dir, 12, ZeroBase)
	path := p.Path

	cases := map[string]func(b []byte) []byte{
		"truncated-mid-footer": func(b []byte) []byte { return b[:len(b)-trailerLen-5] },
		"truncated-short":      func(b []byte) []byte { return b[:10] },
		"flipped-summary-byte": func(b []byte) []byte {
			b[len(b)-trailerLen-3] ^= 0xff
			return b
		},
		"bad-magic": func(b []byte) []byte {
			copy(b[len(b)-trailerLen:], "NOTAPACK")
			return b
		},
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			bad := filepath.Join(dir, name+".pack")
			if err := os.WriteFile(bad, corrupt(append([]byte(nil), orig...)), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Open(bad); !errors.Is(err, ErrBadPack) {
				t.Fatalf("Open(%s) = %v, want ErrBadPack", name, err)
			}
		})
	}
}

func TestCommitRejectsEmpty(t *testing.T) {
	dir := t.TempDir()
	b, err := NewBuilder(filepath.Join(dir, "e.pack"), ZeroBase)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Commit(); err == nil {
		t.Fatal("empty Commit must fail")
	}
	if _, err := os.Stat(filepath.Join(dir, "e.pack.tmp")); !os.IsNotExist(err) {
		t.Fatal("aborted temp file left behind")
	}
}

func TestAbortRemovesTemp(t *testing.T) {
	dir := t.TempDir()
	b, err := NewBuilder(filepath.Join(dir, "a.pack"), ZeroBase)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Add(line(0), RecordMeta{Domain: "site0.example"}); err != nil {
		t.Fatal(err)
	}
	b.Abort()
	left, _ := filepath.Glob(filepath.Join(dir, "*"))
	if len(left) != 0 {
		t.Fatalf("abort left %v", left)
	}
}
