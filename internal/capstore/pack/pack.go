// Package pack is the capture store's compaction format: many small
// wire-format records folded into one immutable bundle with a
// persistent footer index, so opening a store loads a fixed-size
// summary per pack instead of re-scanning every record, and
// domain/host/day queries seek straight into the pack's data section.
//
// A pack file is laid out as
//
//	[data]     the records' exact wire bytes, concatenated in order
//	[rectab]   fixed-width binary per-record entries (offset, running
//	           FNV-64a prefix hash, day, failed flag)
//	[domains]  JSON posting lists: final domain → pack-local indices
//	[hosts]    JSON posting lists: request host → pack-local indices
//	[summary]  one JSON object locating the sections, carrying the
//	           pack's chain position (logical records/bytes/hash before
//	           and after it) and its day range
//	[trailer]  fixed-size ASCII: magic, summary offset/length, summary
//	           checksum
//
// Because the data section is the records' exact bytes in canonical
// order, concat(pack₀.data, pack₁.data, …, tail) is byte-identical to
// the never-compacted segment file — the logical record stream — and
// the per-record running FNV-64a hashes let a prefix manifest at any
// record count be answered from the index without re-reading packed
// data. Packs are written to a temp name, fsynced, and renamed into
// place, so a crash never leaves a live pack half-written.
package pack

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// FNV-64a, resumable: the running state is just the current uint64, so
// a prefix hash can be stored per record and continued into the tail.
const (
	// HashOffset is the FNV-64a offset basis — the hash of zero bytes,
	// and the chain seed of every shard's logical stream.
	HashOffset uint64 = 0xcbf29ce484222325
	fnvPrime   uint64 = 0x100000001b3
)

// HashUpdate folds p into a running FNV-64a state.
func HashUpdate(h uint64, p []byte) uint64 {
	for _, b := range p {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}

// HashReader folds everything read from r into h.
func HashReader(h uint64, r io.Reader) (uint64, error) {
	buf := make([]byte, 64<<10)
	for {
		n, err := r.Read(buf)
		h = HashUpdate(h, buf[:n])
		if err == io.EOF {
			return h, nil
		}
		if err != nil {
			return h, err
		}
	}
}

// HashHex renders a running hash the way manifests do.
func HashHex(h uint64) string { return fmt.Sprintf("%016x", h) }

// ParseHash is HashHex's inverse.
func ParseHash(s string) (uint64, error) {
	var h uint64
	if _, err := fmt.Sscanf(s, "%016x", &h); err != nil {
		return 0, fmt.Errorf("pack: bad hash %q: %w", s, err)
	}
	return h, nil
}

const (
	magic = "CAPPACK1"
	// trailer: magic(8) + summaryOff hex(16) + summaryLen hex(16) +
	// summary FNV-64a hex(16) + '\n'.
	trailerLen = 8 + 16 + 16 + 16 + 1
	// rectab entry: off(8) + hash(8) + day(4) + failed(1) + pad(3).
	recEntryLen = 24
)

// ErrBadPack marks a pack whose trailer or summary fails validation —
// a torn or foreign file, never a partially-applied compaction (those
// die under a temp name).
var ErrBadPack = errors.New("pack: invalid pack file")

// Base is a pack's chain position: the logical stream state just
// before its first record.
type Base struct {
	Records int64
	Bytes   int64
	Hash    uint64
}

// ZeroBase is the chain position at the start of an empty stream. Note
// the hash seed is the FNV offset basis, not zero.
var ZeroBase = Base{Hash: HashOffset}

// Summary is the pack's persistent footer index header — everything
// Open needs without touching the data or index sections.
type Summary struct {
	Version     int    `json:"version"`
	BaseRecords int64  `json:"base_records"`
	BaseBytes   int64  `json:"base_bytes"`
	BaseHash    string `json:"base_hash"`
	Records     int64  `json:"records"`
	DataBytes   int64  `json:"data_bytes"`
	// Hash is the running logical-stream FNV-64a after this pack's
	// last record — the boundary hash prefix manifests resume from.
	Hash         string   `json:"hash"`
	MinDay       int32    `json:"min_day"`
	MaxDay       int32    `json:"max_day"`
	RecTab       [2]int64 `json:"rectab"`  // offset, length
	Domains      [2]int64 `json:"domains"` // offset, length
	Hosts        [2]int64 `json:"hosts"`   // offset, length
	DomainKeys   int      `json:"domain_keys"`
	HostKeys     int      `json:"host_keys"`
	HostPostings int64    `json:"host_postings"`
}

// Rec is one decoded rectab entry. Hash is the running logical-stream
// FNV-64a after this record; Off is data-section-relative. A record's
// length is the next entry's Off (or DataBytes) minus its own.
type Rec struct {
	Off    int64
	Hash   uint64
	Day    int32
	Failed bool
}

// RecordMeta is what the builder needs to index one record.
type RecordMeta struct {
	Day    int32
	Failed bool
	Domain string
	Hosts  []string // distinct request hosts, first-seen order
}

// Builder accumulates records into <path>.tmp and atomically publishes
// the finished pack on Commit. Not safe for concurrent use.
type Builder struct {
	path    string
	tmp     *os.File
	base    Base
	hash    uint64
	off     int64
	recs    []Rec
	domains map[string][]int32
	hosts   map[string][]int32
	posts   int64
	minDay  int32
	maxDay  int32
	err     error
}

// NewBuilder starts a pack at path (written as path+".tmp" until
// Commit) whose first record continues the logical stream at base.
func NewBuilder(path string, base Base) (*Builder, error) {
	tmp, err := os.Create(path + ".tmp")
	if err != nil {
		return nil, err
	}
	return &Builder{
		path:    path,
		tmp:     tmp,
		base:    base,
		hash:    base.Hash,
		domains: make(map[string][]int32),
		hosts:   make(map[string][]int32),
	}, nil
}

// Add appends one record's exact wire bytes (including the trailing
// newline) and its index entry.
func (b *Builder) Add(line []byte, meta RecordMeta) error {
	if b.err != nil {
		return b.err
	}
	if _, err := b.tmp.Write(line); err != nil {
		b.err = err
		return err
	}
	b.hash = HashUpdate(b.hash, line)
	idx := int32(len(b.recs))
	b.recs = append(b.recs, Rec{Off: b.off, Hash: b.hash, Day: meta.Day, Failed: meta.Failed})
	b.off += int64(len(line))
	if idx == 0 || meta.Day < b.minDay {
		b.minDay = meta.Day
	}
	if idx == 0 || meta.Day > b.maxDay {
		b.maxDay = meta.Day
	}
	if meta.Domain != "" {
		b.domains[meta.Domain] = append(b.domains[meta.Domain], idx)
	}
	for _, h := range meta.Hosts {
		if h == "" {
			continue
		}
		b.hosts[h] = append(b.hosts[h], idx)
		b.posts++
	}
	return nil
}

// Abort discards the temp file.
func (b *Builder) Abort() {
	if b.tmp != nil {
		b.tmp.Close()
		os.Remove(b.tmp.Name())
		b.tmp = nil
	}
}

// Commit writes the footer index, fsyncs, renames the pack into place,
// fsyncs the directory, and returns the opened pack. An empty builder
// is an error: empty packs carry no information and complicate chain
// validation.
func (b *Builder) Commit() (*Pack, error) {
	if b.err != nil {
		b.Abort()
		return nil, b.err
	}
	if len(b.recs) == 0 {
		b.Abort()
		return nil, errors.New("pack: refusing to commit an empty pack")
	}
	sum := Summary{
		Version:      1,
		BaseRecords:  b.base.Records,
		BaseBytes:    b.base.Bytes,
		BaseHash:     HashHex(b.base.Hash),
		Records:      int64(len(b.recs)),
		DataBytes:    b.off,
		Hash:         HashHex(b.hash),
		MinDay:       b.minDay,
		MaxDay:       b.maxDay,
		DomainKeys:   len(b.domains),
		HostKeys:     len(b.hosts),
		HostPostings: b.posts,
	}

	rectab := make([]byte, len(b.recs)*recEntryLen)
	for i, r := range b.recs {
		e := rectab[i*recEntryLen:]
		binary.BigEndian.PutUint64(e[0:], uint64(r.Off))
		binary.BigEndian.PutUint64(e[8:], r.Hash)
		binary.BigEndian.PutUint32(e[16:], uint32(r.Day))
		if r.Failed {
			e[20] = 1
		}
	}
	sum.RecTab = [2]int64{b.off, int64(len(rectab))}
	if _, err := b.tmp.Write(rectab); err != nil {
		b.Abort()
		return nil, err
	}
	pos := sum.RecTab[0] + sum.RecTab[1]

	domJSON, err := json.Marshal(b.domains)
	if err != nil {
		b.Abort()
		return nil, err
	}
	sum.Domains = [2]int64{pos, int64(len(domJSON))}
	if _, err := b.tmp.Write(domJSON); err != nil {
		b.Abort()
		return nil, err
	}
	pos += int64(len(domJSON))

	hostJSON, err := json.Marshal(b.hosts)
	if err != nil {
		b.Abort()
		return nil, err
	}
	sum.Hosts = [2]int64{pos, int64(len(hostJSON))}
	if _, err := b.tmp.Write(hostJSON); err != nil {
		b.Abort()
		return nil, err
	}
	pos += int64(len(hostJSON))

	sumJSON, err := json.Marshal(sum)
	if err != nil {
		b.Abort()
		return nil, err
	}
	trailer := fmt.Sprintf("%s%016x%016x%016x\n",
		magic, pos, len(sumJSON), HashUpdate(HashOffset, sumJSON))
	if _, err := b.tmp.Write(sumJSON); err != nil {
		b.Abort()
		return nil, err
	}
	if _, err := b.tmp.Write([]byte(trailer)); err != nil {
		b.Abort()
		return nil, err
	}
	if err := b.tmp.Sync(); err != nil {
		b.Abort()
		return nil, err
	}
	if err := b.tmp.Close(); err != nil {
		os.Remove(b.path + ".tmp")
		b.tmp = nil
		return nil, err
	}
	b.tmp = nil
	if err := os.Rename(b.path+".tmp", b.path); err != nil {
		os.Remove(b.path + ".tmp")
		return nil, err
	}
	if err := syncDir(filepath.Dir(b.path)); err != nil {
		return nil, err
	}
	return Open(b.path)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Pack is an opened, immutable pack. Open reads only the trailer and
// summary; the rectab and posting lists lazy-load on first use and
// stay cached, so an idle pack costs one Summary of memory.
type Pack struct {
	Path    string
	Summary Summary
	f       *os.File

	recsOnce sync.Once
	recs     []Rec
	recsErr  error

	domOnce sync.Once
	domains map[string][]int32
	domErr  error

	hostOnce sync.Once
	hosts    map[string][]int32
	hostErr  error
}

// Open validates path's trailer and summary and returns the pack.
// Torn or foreign files return an error wrapping ErrBadPack.
func Open(path string) (*Pack, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	p, err := openFile(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return p, nil
}

func openFile(f *os.File, path string) (*Pack, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < trailerLen {
		return nil, fmt.Errorf("%w: %s: %d bytes is shorter than a trailer", ErrBadPack, path, size)
	}
	tr := make([]byte, trailerLen)
	if _, err := f.ReadAt(tr, size-trailerLen); err != nil {
		return nil, err
	}
	if string(tr[:8]) != magic || tr[trailerLen-1] != '\n' {
		return nil, fmt.Errorf("%w: %s: bad trailer magic", ErrBadPack, path)
	}
	var sumOff, sumLen, sumHash uint64
	if _, err := fmt.Sscanf(string(tr[8:trailerLen-1]), "%016x%016x%016x", &sumOff, &sumLen, &sumHash); err != nil {
		return nil, fmt.Errorf("%w: %s: unparseable trailer: %v", ErrBadPack, path, err)
	}
	if int64(sumOff)+int64(sumLen) != size-trailerLen {
		return nil, fmt.Errorf("%w: %s: summary bounds [%d,+%d) disagree with file size %d", ErrBadPack, path, sumOff, sumLen, size)
	}
	sumJSON := make([]byte, sumLen)
	if _, err := f.ReadAt(sumJSON, int64(sumOff)); err != nil {
		return nil, err
	}
	if HashUpdate(HashOffset, sumJSON) != sumHash {
		return nil, fmt.Errorf("%w: %s: summary checksum mismatch", ErrBadPack, path)
	}
	var sum Summary
	if err := json.Unmarshal(sumJSON, &sum); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrBadPack, path, err)
	}
	if sum.Version != 1 || sum.Records <= 0 || sum.DataBytes <= 0 ||
		sum.RecTab[0] != sum.DataBytes || sum.RecTab[1] != sum.Records*recEntryLen ||
		sum.Hosts[0]+sum.Hosts[1] != int64(sumOff) {
		return nil, fmt.Errorf("%w: %s: inconsistent summary", ErrBadPack, path)
	}
	return &Pack{Path: path, Summary: sum, f: f}, nil
}

// Close releases the pack's file handle.
func (p *Pack) Close() error { return p.f.Close() }

// Recs returns the pack's record table, loading and caching it on
// first use.
func (p *Pack) Recs() ([]Rec, error) {
	p.recsOnce.Do(func() {
		raw := make([]byte, p.Summary.RecTab[1])
		if _, err := p.f.ReadAt(raw, p.Summary.RecTab[0]); err != nil {
			p.recsErr = err
			return
		}
		recs := make([]Rec, p.Summary.Records)
		for i := range recs {
			e := raw[i*recEntryLen:]
			recs[i] = Rec{
				Off:    int64(binary.BigEndian.Uint64(e[0:])),
				Hash:   binary.BigEndian.Uint64(e[8:]),
				Day:    int32(binary.BigEndian.Uint32(e[16:])),
				Failed: e[20] == 1,
			}
		}
		p.recs = recs
	})
	return p.recs, p.recsErr
}

// RecLen returns record i's byte length given the loaded rectab.
func (p *Pack) RecLen(recs []Rec, i int) int64 {
	if i == len(recs)-1 {
		return p.Summary.DataBytes - recs[i].Off
	}
	return recs[i+1].Off - recs[i].Off
}

// ReadRecord reads record i's wire bytes into *buf (grown as needed).
func (p *Pack) ReadRecord(recs []Rec, i int, buf *[]byte) ([]byte, error) {
	n := p.RecLen(recs, i)
	if int64(cap(*buf)) < n {
		*buf = make([]byte, n)
	}
	b := (*buf)[:n]
	if _, err := p.f.ReadAt(b, recs[i].Off); err != nil {
		return nil, fmt.Errorf("pack: %s: reading record %d: %w", p.Path, i, err)
	}
	return b, nil
}

func (p *Pack) loadPostings(section [2]int64, dst *map[string][]int32) error {
	raw := make([]byte, section[1])
	if _, err := p.f.ReadAt(raw, section[0]); err != nil {
		return err
	}
	return json.Unmarshal(raw, dst)
}

// Domain returns the pack-local indices of records whose final domain
// is d, in record order. The posting map loads lazily and stays
// cached.
func (p *Pack) Domain(d string) ([]int32, error) {
	p.domOnce.Do(func() { p.domErr = p.loadPostings(p.Summary.Domains, &p.domains) })
	return p.domains[d], p.domErr
}

// Host returns the pack-local indices of records with a request to
// host h, in record order.
func (p *Pack) Host(h string) ([]int32, error) {
	p.hostOnce.Do(func() { p.hostErr = p.loadPostings(p.Summary.Hosts, &p.hosts) })
	return p.hosts[h], p.hostErr
}

// DataReader returns a reader over data-section bytes [from, to).
func (p *Pack) DataReader(from, to int64) io.Reader {
	return io.NewSectionReader(p.f, from, to-from)
}

// PrefixHash returns the logical-stream hash and byte length after the
// pack's first n records (n in [1, Records]); n == Records answers
// from the summary without touching the rectab.
func (p *Pack) PrefixHash(n int64) (hash uint64, bytes int64, err error) {
	if n <= 0 || n > p.Summary.Records {
		return 0, 0, fmt.Errorf("pack: %s: prefix of %d outside [1,%d]", p.Path, n, p.Summary.Records)
	}
	if n == p.Summary.Records {
		h, err := ParseHash(p.Summary.Hash)
		if err != nil {
			return 0, 0, err
		}
		return h, p.Summary.DataBytes, nil
	}
	recs, err := p.Recs()
	if err != nil {
		return 0, 0, err
	}
	return recs[n-1].Hash, recs[n].Off, nil
}
