package capstore

import (
	"bytes"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/capturedb"
	"repro/internal/obs"
)

// Per-query histograms and the query span must agree with the
// cumulative Stats counters for the same query.
func TestStoreQueryTelemetry(t *testing.T) {
	s, err := Create(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fill(t, s, 200)

	reg := obs.NewRegistry()
	s.RegisterMetrics(reg)
	at := time.Unix(1000, 0)
	s.Metrics().Now = func() time.Time { return at }
	tr := obs.NewTracer(obs.TracerConfig{Clock: func() time.Time { return at }})
	s.SetTracer(tr)

	before := s.Stats()
	n, err := s.Count(capturedb.Query{Domain: "site-001.com"})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("query matched nothing; corpus changed?")
	}
	after := s.Stats()

	m := s.Metrics()
	if got := m.QuerySeconds.Snapshot().Count; got != 1 {
		t.Errorf("query latency observations = %d, want 1", got)
	}
	if got := m.RowsScanned.Snapshot().Sum; got != float64(after.RowsScanned-before.RowsScanned) {
		t.Errorf("per-query scanned sum = %v, stats delta %d", got, after.RowsScanned-before.RowsScanned)
	}
	if got := m.RowsSkipped.Snapshot().Sum; got != float64(after.RowsSkipped-before.RowsSkipped) {
		t.Errorf("per-query skipped sum = %v, stats delta %d", got, after.RowsSkipped-before.RowsSkipped)
	}

	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf, "query"); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	if line == "" {
		t.Fatal("no query span exported")
	}
	if !strings.Contains(line, `"id":"query[path=domain-index]"`) {
		t.Errorf("span should carry the access path: %s", line)
	}
	scannedAttr := `{"k":"scanned","v":"` + strconv.FormatInt(after.RowsScanned-before.RowsScanned, 10) + `"}`
	if !strings.Contains(line, scannedAttr) {
		t.Errorf("span missing %s: %s", scannedAttr, line)
	}

	// The registered operational families must expose valid text.
	var exp bytes.Buffer
	if err := reg.WritePrometheus(&exp); err != nil {
		t.Fatal(err)
	}
	text := exp.String()
	for _, want := range []string{
		"capstore_records_total 200",
		"capstore_segments 4",
		"capstore_query_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if err := obs.ValidateExposition(strings.NewReader(text)); err != nil {
		t.Errorf("invalid exposition: %v", err)
	}
}

// The /healthz telemetry summary must round-trip through the HTTP
// client: uptime from the injected clock and the slowest non-empty
// latency buckets, slowest first.
func TestClientHealthTelemetryRoundTrip(t *testing.T) {
	s, err := Create(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fill(t, s, 120)

	reg := obs.NewRegistry()
	s.RegisterMetrics(reg)
	m := s.Metrics()
	// Seed the latency histogram with known observations instead of
	// relying on real query timing: two slow queries, one fast.
	m.QuerySeconds.Observe(0.9) // le=1
	m.QuerySeconds.Observe(0.9) // le=1
	m.QuerySeconds.Observe(2.0) // le=2.5

	now := time.Unix(5000, 0)
	srv := httptest.NewServer(NewResilientHandler(s, ServeConfig{
		Metrics: m,
		Now: func() time.Time {
			now = now.Add(3 * time.Second)
			return now
		},
	}))
	defer srv.Close()
	cl := NewClient(srv.URL)

	h, err := cl.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q", h.Status)
	}
	if h.Records != 120 {
		t.Errorf("records = %d, want 120", h.Records)
	}
	if h.Telemetry == nil {
		t.Fatal("telemetry summary missing")
	}
	if h.Telemetry.UptimeSeconds <= 0 {
		t.Errorf("uptime = %v, want > 0", h.Telemetry.UptimeSeconds)
	}
	want := []QueryBucket{{LE: "2.5", Count: 1}, {LE: "1", Count: 2}}
	got := h.Telemetry.SlowestQueryBuckets
	if len(got) != len(want) {
		t.Fatalf("slowest buckets = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// A server without metrics must omit the summary entirely.
	plain := httptest.NewServer(NewResilientHandler(s, ServeConfig{}))
	defer plain.Close()
	h2, err := NewClient(plain.URL).Health()
	if err != nil {
		t.Fatal(err)
	}
	if h2.Telemetry != nil {
		t.Errorf("telemetry should be absent without metrics, got %+v", h2.Telemetry)
	}
}

// Exercise the slowest-bucket helper's edge cases directly.
func TestSlowestBuckets(t *testing.T) {
	reg := obs.NewRegistry()
	hist := obs.NewHistogram(reg, "h_seconds", "", []float64{0.1, 1, 10})
	if got := slowestBuckets(hist.Snapshot(), 3); len(got) != 0 {
		t.Errorf("empty histogram → %+v, want none", got)
	}
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 100} {
		hist.Observe(v)
	}
	got := slowestBuckets(hist.Snapshot(), 2)
	want := []QueryBucket{{LE: "+Inf", Count: 1}, {LE: "10", Count: 1}}
	if len(got) != len(want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// Telemetry attachment must be safe while queries and ingest run.
func TestRegisterMetricsConcurrentWithQueries(t *testing.T) {
	s, err := Create(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fill(t, s, 50)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			s.Query(capturedb.Query{Domain: "site-001.com"}, func(*capture.Capture) bool { return true }) //nolint:errcheck
			s.Record(sample("race.com", 1, "cdn.cookielaw.org"))
		}
	}()
	reg := obs.NewRegistry()
	s.RegisterMetrics(reg)
	s.SetTracer(obs.NewTracer(obs.TracerConfig{}))
	<-done
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(&buf); err != nil {
		t.Errorf("invalid exposition: %v", err)
	}
}
