package capstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/capture"
	"repro/internal/capturedb"
	"repro/internal/obs"
)

// Remote ingest: POST /ingest turns capd from a read-only query service
// into the fleet's storage backend. The body is NDJSON in the capturedb
// wire format, one record per line, applied in body order.
//
// Two delivery modes share the endpoint:
//
//   - Unordered (no parameters): records append as they arrive, with
//     per-record idempotency — a record whose IngestKey was already
//     accepted is dropped and counted, so clients may re-deliver after
//     an ambiguous transport failure without duplicating storage.
//
//   - Ordered (?at=SEQ&n=N): the batch covers work items [SEQ, SEQ+N)
//     of a coordinator-assigned total order, and batches commit in
//     exactly that order. Out-of-order arrivals wait in a bounded
//     reorder buffer; a batch whose range was already committed (or is
//     already waiting) is a duplicate delivery and is dropped whole.
//     This is what makes a fleet of workers produce a byte-identical
//     store to a single-process run: every worker's appends land at
//     their canonical position no matter when they arrive.
//
// The buffer is the ingest path's graceful-degradation valve: past
// IngestConfig.MaxPendingBatches, out-of-order batches are shed with
// 503 + Retry-After instead of growing memory without bound; the batch
// that unblocks the commit cursor is always admitted.

// IngestKey is the per-share idempotency key, derived from the record
// itself: after feed dedup a (seed URL, day, configuration) triple
// identifies exactly one share, so re-delivered captures need no
// side-channel key to be recognized.
func IngestKey(c *capture.Capture) string {
	return c.SeedURL + "\x1f" + strconv.Itoa(int(c.Day)) + "\x1f" + c.Config
}

// IngestConfig parameterizes an Ingester.
type IngestConfig struct {
	// MaxPendingBatches bounds the ordered-mode reorder buffer; an
	// out-of-order batch arriving past the bound is shed with 503
	// (default 64).
	MaxPendingBatches int
	// MaxBodyBytes caps one ingest request body (default 64 MiB).
	MaxBodyBytes int64
	// Registry, when non-nil, receives the ingest metric families.
	Registry *obs.Registry
	// Tracer, when non-nil, records an ingest span for every /ingest
	// request that arrives with a Traceparent header, parented to the
	// pusher's span — the capd end of the fleetd→worker→ring→capd
	// trace. Requests without the header stay unspanned.
	Tracer *obs.Tracer
	// OnCommit, when non-nil, observes every record the ingest path
	// appends to the store, in commit order, after idempotency dedup —
	// the subscription feed incremental consumers (analytics views)
	// fold record-by-record. It runs under the ingest lock so commit
	// order is exact; implementations must be fast and must not call
	// back into the ingester.
	OnCommit func(caps []*capture.Capture)
}

func (c IngestConfig) withDefaults() IngestConfig {
	if c.MaxPendingBatches <= 0 {
		c.MaxPendingBatches = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	return c
}

// IngestStats is a point-in-time snapshot of the ingest path.
type IngestStats struct {
	// Accepted counts records appended to the store.
	Accepted int64 `json:"accepted"`
	// Duplicates counts records dropped by idempotency — re-delivered
	// ordered ranges and repeated unordered keys alike.
	Duplicates int64 `json:"duplicates"`
	// Batches counts ingest requests that decoded successfully.
	Batches int64 `json:"batches"`
	// Shed counts out-of-order batches refused with 503.
	Shed int64 `json:"shed"`
	// NextSeq is the ordered-mode commit cursor: every work item below
	// it has been committed or skipped.
	NextSeq int64 `json:"next_seq"`
	// PendingBatches is the current reorder-buffer occupancy.
	PendingBatches int `json:"pending_batches"`
}

// IngestResult is the /ingest response body.
type IngestResult struct {
	// Accepted counts records of this request appended (ordered-mode
	// batches count on arrival, even if they commit later).
	Accepted int64 `json:"accepted"`
	// Duplicates counts records of this request dropped by idempotency.
	Duplicates int64 `json:"duplicates"`
	// Pending is the reorder-buffer occupancy after this request.
	Pending int `json:"pending"`
}

type pendingBatch struct {
	n    int64
	caps []*capture.Capture
}

// Ingester applies remote batches to a Store with idempotency and
// (optionally) coordinator-ordered commit. It is an http.Handler for
// POST /ingest and safe for concurrent use.
type Ingester struct {
	store *Store
	cfg   IngestConfig

	mu      sync.Mutex
	seen    map[string]struct{}
	nextSeq int64
	pending map[int64]*pendingBatch
	stats   IngestStats

	metrics *ingestMetrics
}

type ingestMetrics struct {
	records    *obs.Counter
	duplicates *obs.Counter
	batches    *obs.Counter
	shed       *obs.Counter
}

// NewIngester wraps a store for remote ingest. The idempotency index is
// seeded from the store's existing records, so reopening a store and
// re-attaching an ingester keeps re-deliveries idempotent across capd
// restarts.
func NewIngester(s *Store, cfg IngestConfig) (*Ingester, error) {
	cfg = cfg.withDefaults()
	in := &Ingester{
		store:   s,
		cfg:     cfg,
		seen:    make(map[string]struct{}),
		pending: make(map[int64]*pendingBatch),
	}
	err := s.Query(capturedb.Query{IncludeFailed: true}, func(c *capture.Capture) bool {
		in.seen[IngestKey(c)] = struct{}{}
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("capstore: seeding ingest idempotency index: %w", err)
	}
	if cfg.Registry != nil {
		in.metrics = &ingestMetrics{
			records: obs.NewCounter(cfg.Registry, "capstore_ingest_records_total",
				"Records accepted over POST /ingest and appended to the store."),
			duplicates: obs.NewCounter(cfg.Registry, "capstore_ingest_duplicates_total",
				"Re-delivered records dropped by idempotency (per-key and per-range)."),
			batches: obs.NewCounter(cfg.Registry, "capstore_ingest_batches_total",
				"Ingest requests that decoded successfully."),
			shed: obs.NewCounter(cfg.Registry, "capstore_ingest_shed_total",
				"Out-of-order ordered batches refused with 503 at the reorder-buffer bound."),
		}
		obs.NewGaugeFunc(cfg.Registry, "capstore_ingest_pending_batches",
			"Ordered batches waiting in the reorder buffer for their commit turn.",
			func() float64 { return float64(in.Stats().PendingBatches) })
		obs.NewGaugeFunc(cfg.Registry, "capstore_ingest_next_seq",
			"Ordered-ingest commit cursor: work items below it are committed or skipped.",
			func() float64 { return float64(in.Stats().NextSeq) })
	}
	return in, nil
}

// Stats snapshots the ingest counters.
func (in *Ingester) Stats() IngestStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.stats
	st.NextSeq = in.nextSeq
	st.PendingBatches = len(in.pending)
	return st
}

// apply appends records with per-key idempotency. Callers hold in.mu.
func (in *Ingester) apply(caps []*capture.Capture) (accepted, dups int64) {
	var committed []*capture.Capture
	for _, c := range caps {
		k := IngestKey(c)
		if _, ok := in.seen[k]; ok {
			dups++
			continue
		}
		in.seen[k] = struct{}{}
		in.store.Record(c)
		if in.cfg.OnCommit != nil {
			committed = append(committed, c)
		}
		accepted++
	}
	in.stats.Accepted += accepted
	in.stats.Duplicates += dups
	in.metrics.record(accepted, dups)
	if len(committed) > 0 {
		in.cfg.OnCommit(committed)
	}
	return accepted, dups
}

func (m *ingestMetrics) record(accepted, dups int64) {
	if m == nil {
		return
	}
	m.records.Add(accepted)
	m.duplicates.Add(dups)
}

// IngestBatch applies an unordered batch in order, returning how many
// records were appended vs. dropped as duplicates.
func (in *Ingester) IngestBatch(caps []*capture.Capture) IngestResult {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Batches++
	if in.metrics != nil {
		in.metrics.batches.Inc()
	}
	acc, dups := in.apply(caps)
	return IngestResult{Accepted: acc, Duplicates: dups, Pending: len(in.pending)}
}

// ErrIngestShed marks an out-of-order ordered batch refused because the
// reorder buffer is full; the caller should retry after the cursor
// advances.
var ErrIngestShed = errors.New("capstore: ingest reorder buffer full")

// IngestBatchAt enqueues the ordered batch covering work items
// [at, at+n); caps are the records those items produced (possibly fewer
// than n — dead-lettered items produce none — and possibly zero for a
// skip marker). Batches commit strictly in range order. A batch whose
// range is already committed or already waiting is dropped whole as a
// duplicate delivery.
func (in *Ingester) IngestBatchAt(at int64, n int64, caps []*capture.Capture) (IngestResult, error) {
	if at < 0 || n < 1 || int64(len(caps)) > n {
		return IngestResult{}, fmt.Errorf("capstore: bad ordered batch at=%d n=%d records=%d", at, n, len(caps))
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if at < in.nextSeq {
		in.stats.Batches++
		in.stats.Duplicates += int64(len(caps))
		if in.metrics != nil {
			in.metrics.batches.Inc()
		}
		in.metrics.record(0, int64(len(caps)))
		return IngestResult{Duplicates: int64(len(caps)), Pending: len(in.pending)}, nil
	}
	if _, ok := in.pending[at]; ok {
		in.stats.Batches++
		in.stats.Duplicates += int64(len(caps))
		if in.metrics != nil {
			in.metrics.batches.Inc()
		}
		in.metrics.record(0, int64(len(caps)))
		return IngestResult{Duplicates: int64(len(caps)), Pending: len(in.pending)}, nil
	}
	if at != in.nextSeq && len(in.pending) >= in.cfg.MaxPendingBatches {
		in.stats.Shed++
		if in.metrics != nil {
			in.metrics.shed.Inc()
		}
		return IngestResult{Pending: len(in.pending)}, ErrIngestShed
	}
	in.stats.Batches++
	if in.metrics != nil {
		in.metrics.batches.Inc()
	}
	in.pending[at] = &pendingBatch{n: n, caps: caps}
	var acc, dups int64
	for {
		b, ok := in.pending[in.nextSeq]
		if !ok {
			break
		}
		delete(in.pending, in.nextSeq)
		a, d := in.apply(b.caps)
		acc += a
		dups += d
		in.nextSeq += b.n
	}
	// Report this request's records as accepted even when the batch is
	// still waiting its turn: delivery is complete from the worker's
	// perspective, and duplicates of a waiting range are refused above.
	if acc == 0 && dups == 0 && len(caps) > 0 {
		acc = int64(len(caps))
	}
	return IngestResult{Accepted: acc, Duplicates: dups, Pending: len(in.pending)}, nil
}

// ServeHTTP implements POST /ingest.
func (in *Ingester) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "capstore: /ingest is POST-only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	atStr, nStr := q.Get("at"), q.Get("n")
	ordered := atStr != "" || nStr != ""
	var at, n int64
	if ordered {
		var err error
		if at, err = strconv.ParseInt(atStr, 10, 64); err != nil || at < 0 {
			http.Error(w, fmt.Sprintf("capstore: bad at=%q", atStr), http.StatusBadRequest)
			return
		}
		if n, err = strconv.ParseInt(nStr, 10, 64); err != nil || n < 1 {
			http.Error(w, fmt.Sprintf("capstore: bad n=%q", nStr), http.StatusBadRequest)
			return
		}
	}
	// Adopt the pusher's trace context, if any: the ingest span is the
	// capd end of the fleetd→worker→ring→capd trace. Its identity
	// attrs are the batch's canonical coordinates (range for ordered,
	// size for unordered) — never per-node or per-request values — so
	// replica re-deliveries of one batch collapse to one span at
	// assembly and exports stay byte-identical across worker counts.
	// A malformed or absent header leaves the request unspanned;
	// tracing never fails an ingest.
	if in.cfg.Tracer != nil {
		if pctx, err := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); err == nil && pctx.Valid() {
			var span *obs.Span
			if ordered {
				span = in.cfg.Tracer.StartRemote("ingest", pctx,
					obs.A("at", strconv.FormatInt(at, 10)),
					obs.A("n", strconv.FormatInt(n, 10)))
			} else {
				span = in.cfg.Tracer.StartRemote("ingest", pctx)
			}
			defer span.End()
		}
	}

	body := http.MaxBytesReader(w, r.Body, in.cfg.MaxBodyBytes)
	var caps []*capture.Capture
	rr := capturedb.NewRecordReader(body)
	for {
		c, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			http.Error(w, fmt.Sprintf("capstore: /ingest line %d: %v", rr.Line(), err), http.StatusBadRequest)
			return
		}
		caps = append(caps, c)
	}

	var res IngestResult
	if ordered {
		var err error
		res, err = in.IngestBatchAt(at, n, caps)
		if errors.Is(err, ErrIngestShed) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "capstore: ingest reorder buffer full, retry", http.StatusServiceUnavailable)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	} else {
		res = in.IngestBatch(caps)
	}
	if err := in.store.Flush(); err != nil {
		http.Error(w, fmt.Sprintf("capstore: /ingest flush: %v", err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(res) //nolint:errcheck
}
