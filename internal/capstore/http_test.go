package capstore

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/capture"
	"repro/internal/capturedb"
)

// newTestServer builds a populated store and serves it the way
// cmd/capd does.
func newTestServer(t *testing.T, n int) (*Store, *httptest.Server) {
	t.Helper()
	s, err := Create(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, s, n)
	srv := httptest.NewServer(NewHandler(s))
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})
	return s, srv
}

// TestClientRoundTrip is the capq -server end-to-end path: the same
// queries through the HTTP client must match the local store exactly.
func TestClientRoundTrip(t *testing.T) {
	s, srv := newTestServer(t, 300)
	cl := NewClient(srv.URL)

	for _, q := range equivalenceQueries {
		want := indexed(t, s, q)
		var got bytes.Buffer
		err := cl.Query(q, 0, 0, func(c *capture.Capture) bool {
			line, err := capturedb.Encode(c)
			if err != nil {
				t.Fatal(err)
			}
			got.Write(line)
			return true
		})
		if err != nil {
			t.Fatalf("query %+v: %v", q, err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Errorf("query %+v: HTTP result diverges from local store", q)
		}

		wantN, err := s.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		gotN, err := cl.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		if gotN != wantN {
			t.Errorf("query %+v: /count = %d, want %d", q, gotN, wantN)
		}
	}
}

func TestClientPagination(t *testing.T) {
	s, srv := newTestServer(t, 120)
	cl := NewClient(srv.URL)
	q := capturedb.Query{RequestHost: "cdn.cookielaw.org"}

	all := indexed(t, s, q)
	total, err := cl.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("empty corpus")
	}

	// Page through with limit/offset; concatenated pages must equal
	// the unpaginated stream.
	const page = 7
	var paged bytes.Buffer
	for off := 0; off < total; off += page {
		n := 0
		err := cl.Query(q, page, off, func(c *capture.Capture) bool {
			n++
			line, _ := capturedb.Encode(c)
			paged.Write(line)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if want := min(page, total-off); n != want {
			t.Fatalf("page at %d returned %d rows, want %d", off, n, want)
		}
	}
	if !bytes.Equal(paged.Bytes(), all) {
		t.Error("paginated stream diverges from full stream")
	}

	// Early stop from the callback must not error.
	n := 0
	if err := cl.Query(q, 0, 0, func(*capture.Capture) bool { n++; return n < 3 }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("early stop after %d", n)
	}
}

func TestHandlerStatsAndErrors(t *testing.T) {
	s, srv := newTestServer(t, 50)
	cl := NewClient(srv.URL)

	if _, err := cl.Count(capturedb.Query{Domain: "site-001.com"}); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 50 || len(st.Shards) != s.NumShards() {
		t.Errorf("stats over HTTP: %+v", st)
	}
	if st.QueriesServed == 0 || st.RowsSkipped == 0 {
		t.Errorf("counters missing from /stats: %+v", st)
	}

	for _, bad := range []string{
		"/query?from=notaday",
		"/query?limit=-1",
		"/count?failed=maybe",
		"/query?to=",
	} {
		resp, err := http.Get(srv.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		want := http.StatusBadRequest
		if bad == "/query?to=" {
			want = http.StatusOK // empty param = unset, not an error
		}
		if resp.StatusCode != want {
			t.Errorf("%s: status %d (%s), want %d", bad, resp.StatusCode, strings.TrimSpace(string(body)), want)
		}
	}

	// NDJSON content type on the stream.
	resp, err := http.Get(srv.URL + "/query?domain=site-001.com")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}

	// A day-0-only bound must survive the wire (the HasTo fix).
	day0 := capturedb.Query{From: 0, To: 0, HasTo: true}
	wantN, _ := s.Count(day0)
	gotN, err := cl.Count(day0)
	if err != nil || gotN != wantN {
		t.Errorf("day-0 bound over HTTP: got %d want %d err=%v", gotN, wantN, err)
	}
	unbounded, _ := s.Count(capturedb.Query{})
	if wantN == unbounded {
		t.Fatalf("test corpus cannot distinguish day-0 bound (n=%d)", wantN)
	}
}
