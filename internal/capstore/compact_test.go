package capstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/capstore/pack"
	"repro/internal/capture"
	"repro/internal/capturedb"
	"repro/internal/simtime"
)

// twinStores builds a packed/unpacked pair holding identical records:
// n records each, with the packed store compacted at every boundary in
// cuts (record counts) so its shards hold multiple packs plus a tail.
func twinStores(t *testing.T, n int, cuts []int) (packed, plain *Store, packedDir, plainDir string) {
	t.Helper()
	packedDir, plainDir = t.TempDir(), t.TempDir()
	var err error
	packed, err = Create(packedDir, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { packed.Close() })
	plain, err = Create(plainDir, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { plain.Close() })

	hosts := []string{"cdn.cookielaw.org", "consent.cookiebot.com", "quantcast.mgr.consensu.org"}
	cut := 0
	for i := 0; i < n; i++ {
		if cut < len(cuts) && i == cuts[cut] {
			if _, err := packed.CompactAll(); err != nil {
				t.Fatal(err)
			}
			cut++
		}
		c := sample(fmt.Sprintf("site-%03d.com", i%37), simtime.Day(i%300), hosts[i%len(hosts)])
		if i%11 == 0 {
			c.Failed = true
			c.Error = "connection refused"
		}
		packed.Record(c)
		plain.Record(c)
	}
	for cut < len(cuts) {
		if _, err := packed.CompactAll(); err != nil {
			t.Fatal(err)
		}
		cut++
	}
	return packed, plain, packedDir, plainDir
}

// checkTwinEquivalence asserts the packed store answers every
// equivalence query byte-identically to the plain store and that their
// logical manifests match exactly.
func checkTwinEquivalence(t *testing.T, packed, plain *Store) {
	t.Helper()
	for _, q := range equivalenceQueries {
		got, want := indexed(t, packed, q), indexed(t, plain, q)
		if !bytes.Equal(got, want) {
			t.Fatalf("query %+v: packed store diverges from plain store\npacked %d bytes, plain %d bytes", q, len(got), len(want))
		}
	}
	pm, err := packed.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	um, err := plain.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	for i := range pm.Segments {
		if pm.Segments[i] != um.Segments[i] {
			t.Fatalf("manifest of shard %d: packed %+v vs plain %+v", i, pm.Segments[i], um.Segments[i])
		}
	}
}

func TestCompactionEquivalence(t *testing.T) {
	packed, plain, _, _ := twinStores(t, 400, []int{100, 230, 360})
	st := packed.Stats()
	if st.Packs == 0 || st.Compactions == 0 || st.PackedRecords == 0 {
		t.Fatalf("expected compactions to have happened: %+v", st)
	}
	if st.Records != 400 || st.PackedRecords+tailRecords(st) != 400 {
		t.Fatalf("record accounting off: %+v", st)
	}
	checkTwinEquivalence(t, packed, plain)

	// QueryShard splices packs + tail per shard.
	for i := 0; i < packed.NumShards(); i++ {
		var got, want bytes.Buffer
		collect := func(out *bytes.Buffer) func(*capture.Capture) bool {
			return func(c *capture.Capture) bool {
				line, _ := capturedb.Encode(c)
				out.Write(line)
				return true
			}
		}
		if err := packed.QueryShard(i, capturedb.Query{IncludeFailed: true}, collect(&got)); err != nil {
			t.Fatal(err)
		}
		if err := plain.QueryShard(i, capturedb.Query{IncludeFailed: true}, collect(&want)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("QueryShard(%d) diverges under compaction", i)
		}
	}
}

func tailRecords(st Stats) int64 {
	var n int64
	for _, ss := range st.Shards {
		n += int64(ss.TailRecords)
	}
	return n
}

func TestCompactedReopen(t *testing.T) {
	packed, plain, packedDir, _ := twinStores(t, 300, []int{120, 240})
	if err := packed.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(packedDir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { re.Close() })
	if re.Len() != 300 {
		t.Fatalf("reopened store has %d records", re.Len())
	}
	st := re.Stats()
	indexedShards := 0
	for _, ss := range st.Shards {
		if ss.OpenPath == "indexed" {
			if ss.Packs == 0 {
				t.Fatalf("indexed open path with no packs: %+v", ss)
			}
			indexedShards++
		}
	}
	if indexedShards == 0 {
		t.Fatal("no shard took the indexed open path after compaction")
	}
	checkTwinEquivalence(t, re, plain)

	// Appends continue on the reopened tail and stay equivalent.
	extra := sample("site-001.com", 7, "cdn.cookielaw.org")
	re.Record(extra)
	plain.Record(extra)
	checkTwinEquivalence(t, re, plain)
}

// TestPrefixManifestPackEdges drives every prefix length through a
// multi-pack store and demands byte-for-byte agreement with the
// never-compacted twin: n == 0, n inside a pack, n exactly at each
// pack seam, n in the tail, and n beyond the record count.
func TestPrefixManifestPackEdges(t *testing.T) {
	packed, plain, _, _ := twinStores(t, 160, []int{60, 120})
	for i := 0; i < packed.NumShards(); i++ {
		v, err := packed.streamView(i)
		if err != nil {
			t.Fatal(err)
		}
		total := v.records()
		seams := map[int]bool{}
		var base int64
		for _, p := range v.packs {
			base += p.Summary.Records
			seams[int(base)] = true
		}
		for n := 0; n <= total; n++ {
			got, err := packed.PrefixManifest(i, n)
			if err != nil {
				t.Fatalf("shard %d prefix %d: %v", i, n, err)
			}
			want, err := plain.PrefixManifest(i, n)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("shard %d prefix %d (seam=%v): packed %+v vs plain %+v", i, n, seams[n], got, want)
			}
			if n == 0 && got.Hash != pack.HashHex(pack.HashOffset) {
				t.Fatalf("prefix 0 hash = %s, want FNV offset basis", got.Hash)
			}
		}
		if len(seams) < 2 {
			t.Fatalf("shard %d: expected ≥2 pack seams, got %v", i, seams)
		}
		if _, err := packed.PrefixManifest(i, total+1); err == nil {
			t.Fatalf("shard %d: prefix beyond record count must error", i)
		}
	}
	if _, err := packed.PrefixManifest(-1, 0); err == nil {
		t.Fatal("negative shard must error")
	}
}

// TestStreamShardAcrossPacks checks the spliced repair stream equals
// the plain store's from every starting record.
func TestStreamShardAcrossPacks(t *testing.T) {
	packed, plain, _, _ := twinStores(t, 120, []int{40, 80})
	for i := 0; i < packed.NumShards(); i++ {
		n, _, err := packed.segmentRange(i)
		if err != nil {
			t.Fatal(err)
		}
		for from := 0; from <= n; from++ {
			var got, want bytes.Buffer
			gr, gb, err := packed.StreamShard(i, from, &got)
			if err != nil {
				t.Fatalf("shard %d from %d: %v", i, from, err)
			}
			wr, wb, err := plain.StreamShard(i, from, &want)
			if err != nil {
				t.Fatal(err)
			}
			if gr != wr || gb != wb || !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("shard %d from %d: packed stream (%d recs, %d bytes) != plain (%d recs, %d bytes)",
					i, from, gr, gb, wr, wb)
			}
		}
		if _, _, err := packed.StreamShard(i, n+1, &bytes.Buffer{}); err == nil {
			t.Fatal("stream past the record count must error")
		}
	}
}

// TestOverlapRepairOnOpen simulates a crash between pack commit and
// tail rewrite: the pre-compaction segment file (whose prefix is now
// duplicated by the pack) is restored over the rewritten tail, and
// Open must detect the duplicate prefix via the FNV chain and drop it.
func TestOverlapRepairOnOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, s, 100)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Keep the pre-compaction segment bytes.
	before := map[string][]byte{}
	for i := 0; i < 2; i++ {
		b, err := os.ReadFile(filepath.Join(dir, segName(i)))
		if err != nil {
			t.Fatal(err)
		}
		before[segName(i)] = b
	}
	if _, err := s.CompactAll(); err != nil {
		t.Fatal(err)
	}
	fill(t, s, 30) // post-compaction appends land in the new tail
	wantAll := indexed(t, s, capturedb.Query{IncludeFailed: true})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// "Crash": the tail rewrite never happened for shard 0 — restore
	// the old segment, whose start duplicates the pack's content. The
	// 30 extra records appended after compaction are lost with the
	// rewritten tail (they were never in the old file), mirroring an
	// unacked in-flight batch.
	if err := os.WriteFile(filepath.Join(dir, segName(0)), before[segName(0)], 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Stats().OverlapRepairs; got != 1 {
		t.Fatalf("overlap repairs = %d, want 1", got)
	}
	// Shard 0 rolls back to its compaction point (pack only, empty
	// tail); shard 1 keeps everything. Verify against a fresh replay.
	ref, err := Create(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	// Replay both fill batches (each restarts its counter at 0); the
	// second batch's shard-0 records are lost with the unwritten tail.
	hosts := []string{"cdn.cookielaw.org", "consent.cookiebot.com", "quantcast.mgr.consensu.org"}
	replay := func(n int, dropShard0 bool) {
		for i := 0; i < n; i++ {
			c := sample(fmt.Sprintf("site-%03d.com", i%37), simtime.Day(i%300), hosts[i%len(hosts)])
			if i%11 == 0 {
				c.Failed = true
				c.Error = "connection refused"
			}
			if dropShard0 && ShardOf(c.FinalDomain, 2) == 0 {
				continue
			}
			ref.Record(c)
		}
	}
	replay(100, false)
	replay(30, true)
	got := indexed(t, re, capturedb.Query{IncludeFailed: true})
	want := indexed(t, ref, capturedb.Query{IncludeFailed: true})
	if !bytes.Equal(got, want) {
		t.Fatalf("post-repair store diverges from replay: %d vs %d bytes (pre-crash total %d bytes)",
			len(got), len(want), len(wantAll))
	}
}

// TestTornPackQuarantine corrupts the newest pack's footer and
// restores the pre-compaction tail: Open must quarantine the torn pack
// and recover every record from the tail bytes.
func TestTornPackQuarantine(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, s, 60)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(filepath.Join(dir, segName(0)))
	if err != nil {
		t.Fatal(err)
	}
	want := indexed(t, s, capturedb.Query{IncludeFailed: true})
	if _, err := s.CompactAll(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	packPath := filepath.Join(dir, packName(0, 0))
	raw, err := os.ReadFile(packPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(packPath, raw[:len(raw)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(0)), before, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Stats().TornPacks; got != 1 {
		t.Fatalf("torn packs = %d, want 1", got)
	}
	if _, err := os.Stat(packPath + ".corrupt"); err != nil {
		t.Fatalf("torn pack not quarantined: %v", err)
	}
	if got := indexed(t, re, capturedb.Query{IncludeFailed: true}); !bytes.Equal(got, want) {
		t.Fatal("records not recovered from the tail after pack quarantine")
	}
	if re.Len() != 60 {
		t.Fatalf("recovered %d records, want 60", re.Len())
	}
}

// TestCompactorTriggers drives the background compactor's size and age
// triggers with an injected clock.
func TestCompactorTriggers(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fill(t, s, 50)

	now := time.Unix(1000, 0)
	c := s.StartCompactor(CompactConfig{
		MinTailBytes: 1, // any non-empty tail trips the size trigger
		Interval:     time.Millisecond,
		Now:          func() time.Time { return now },
	})
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("size trigger never fired")
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()
	if got := s.Stats().PackedRecords; got != 50 {
		t.Fatalf("packed %d records, want 50", got)
	}

	// Age trigger: huge size floor, tiny age.
	fill(t, s, 10)
	c2 := s.StartCompactor(CompactConfig{
		MinTailBytes: 1 << 40,
		MaxTailAge:   time.Nanosecond,
		Interval:     time.Millisecond,
		Now:          func() time.Time { now = now.Add(time.Second); return now },
	})
	deadline = time.Now().Add(5 * time.Second)
	for s.Stats().Compactions < 2 {
		if time.Now().After(deadline) {
			t.Fatal("age trigger never fired")
		}
		time.Sleep(time.Millisecond)
	}
	c2.Close()
	if got := s.Stats().PackedRecords; got != 60 {
		t.Fatalf("packed %d records, want 60", got)
	}
}

// TestCompactionPacing checks the pacer sleeps roughly in proportion
// to the bytes packed.
func TestCompactionPacing(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fill(t, s, 80)

	var slept time.Duration
	c := s.StartCompactor(CompactConfig{
		MinTailBytes:    1,
		Interval:        time.Millisecond,
		PaceBytesPerSec: 1 << 20,
		Sleep:           func(d time.Duration) { slept += d },
	})
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("compaction never ran")
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()
	st := s.Stats()
	wantSleep := time.Duration(st.PackedBytes * int64(time.Second) / (1 << 20))
	if slept < wantSleep/2 || st.PaceSleepSeconds <= 0 {
		t.Fatalf("paced sleep = %v (counter %.3fs), want about %v", slept, st.PaceSleepSeconds, wantSleep)
	}
}

// TestCompactionUnderConcurrentIngestAndQuery races writers, readers,
// and an aggressive compactor, then demands the result is equivalent
// to a serial never-compacted replay.
func TestCompactionUnderConcurrentIngestAndQuery(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	comp := s.StartCompactor(CompactConfig{MinTailBytes: 1 << 10, Interval: time.Millisecond})
	const writers, perWriter = 4, 100
	hosts := []string{"cdn.cookielaw.org", "consent.cookiebot.com"}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := w*perWriter + i
				s.Record(sample(fmt.Sprintf("site-%03d.com", k%37), simtime.Day(k%300), hosts[k%2]))
			}
		}(w)
	}
	qdone := make(chan struct{})
	go func() {
		defer close(qdone)
		for i := 0; i < 50; i++ {
			if _, err := s.Count(capturedb.Query{Domain: "site-001.com"}); err != nil {
				t.Error(err)
				return
			}
			if _, err := s.Count(capturedb.Query{RequestHost: "cdn.cookielaw.org", From: 10, To: 200}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-qdone
	comp.Close()

	if got := s.Len(); got != writers*perWriter {
		t.Fatalf("len = %d, want %d", got, writers*perWriter)
	}
	// Every record is visible exactly once across packs + tails.
	n, err := s.Count(capturedb.Query{IncludeFailed: true})
	if err != nil {
		t.Fatal(err)
	}
	if n != writers*perWriter {
		t.Fatalf("count = %d, want %d", n, writers*perWriter)
	}
	// Per-domain counts survive the pack/tail splice.
	for d := 0; d < 37; d++ {
		dom := fmt.Sprintf("site-%03d.com", d)
		want := 0
		for k := 0; k < writers*perWriter; k++ {
			if k%37 == d {
				want++
			}
		}
		got, err := s.Count(capturedb.Query{Domain: dom, IncludeFailed: true})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("domain %s: count %d, want %d", dom, got, want)
		}
	}
}

// TestCompactionAccounting re-checks the scanned+skipped invariant on
// a packed store: every query accounts for every record.
func TestCompactionAccounting(t *testing.T) {
	packed, _, _, _ := twinStores(t, 200, []int{100})
	base := packed.Stats()
	if _, err := packed.Count(capturedb.Query{Domain: "site-001.com", IncludeFailed: true}); err != nil {
		t.Fatal(err)
	}
	st := packed.Stats()
	if got := st.RowsScanned + st.RowsSkipped - base.RowsScanned - base.RowsSkipped; got != 200 {
		t.Fatalf("domain query accounted for %d rows, want 200", got)
	}
	if _, err := packed.Count(capturedb.Query{From: 1000}); err != nil {
		t.Fatal(err)
	}
	st2 := packed.Stats()
	if scanned := st2.RowsScanned - st.RowsScanned; scanned != 0 {
		t.Fatalf("out-of-range day query scanned %d rows, want 0 (pack day pruning)", scanned)
	}
	if skipped := st2.RowsSkipped - st.RowsSkipped; skipped != 200 {
		t.Fatalf("out-of-range day query skipped %d rows, want 200", skipped)
	}
}
