package capstore

import "sync/atomic"

// counters are the store's expvar-style operational counters,
// published via /stats on capd.
type counters struct {
	queries     atomic.Int64
	rowsScanned atomic.Int64
	rowsSkipped atomic.Int64
	records     atomic.Int64
	truncated   atomic.Int64
}

// ShardStats describes one segment.
type ShardStats struct {
	Segment string `json:"segment"`
	Records int    `json:"records"`
	Bytes   int64  `json:"bytes"`
	MinDay  int    `json:"min_day"`
	MaxDay  int    `json:"max_day"`
}

// Stats is a point-in-time snapshot of store shape and counters.
type Stats struct {
	Records        int64        `json:"records"`
	Shards         []ShardStats `json:"shards"`
	IndexedDomains int          `json:"indexed_domains"`
	IndexedHosts   int          `json:"indexed_hosts"`
	HostPostings   int64        `json:"host_postings"`
	QueriesServed  int64        `json:"queries_served"`
	RowsScanned    int64        `json:"rows_scanned"`
	RowsSkipped    int64        `json:"rows_skipped"`
	TruncatedTails int64        `json:"truncated_tails"`
}

// Stats snapshots the store: per-shard record counts and byte sizes,
// index sizes, and the cumulative query counters (queries served,
// rows scanned vs. rows skipped by index pruning).
func (s *Store) Stats() Stats {
	st := Stats{
		Records:        s.counters.records.Load(),
		QueriesServed:  s.counters.queries.Load(),
		RowsScanned:    s.counters.rowsScanned.Load(),
		RowsSkipped:    s.counters.rowsSkipped.Load(),
		TruncatedTails: s.counters.truncated.Load(),
	}
	for i, sh := range s.shards {
		sh.mu.Lock()
		ss := ShardStats{
			Segment: segName(i),
			Records: len(sh.recs),
			Bytes:   sh.end,
			MinDay:  int(sh.minDay),
			MaxDay:  int(sh.maxDay),
		}
		sh.mu.Unlock()
		st.Shards = append(st.Shards, ss)
	}
	s.idxMu.RLock()
	st.IndexedDomains = len(s.byDomain)
	st.IndexedHosts = len(s.byHost)
	st.HostPostings = s.postings
	s.idxMu.RUnlock()
	return st
}
