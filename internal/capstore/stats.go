package capstore

import "sync/atomic"

// counters are the store's expvar-style operational counters,
// published via /stats on capd.
type counters struct {
	queries     atomic.Int64
	rowsScanned atomic.Int64
	rowsSkipped atomic.Int64
	records     atomic.Int64
	truncated   atomic.Int64

	// Pack engine.
	compactions    atomic.Int64
	packedRecords  atomic.Int64
	packedBytes    atomic.Int64
	tornPacks      atomic.Int64
	overlapRepairs atomic.Int64
	paceSleepNanos atomic.Int64
}

// ShardStats describes one shard: the logical totals (packs + tail)
// plus the pack/tail split and which open path the shard took.
type ShardStats struct {
	Segment string `json:"segment"`
	Records int    `json:"records"`
	Bytes   int64  `json:"bytes"`
	MinDay  int    `json:"min_day"`
	MaxDay  int    `json:"max_day"`

	Packs         int    `json:"packs"`
	PackedRecords int64  `json:"packed_records"`
	PackedBytes   int64  `json:"packed_bytes"`
	TailRecords   int    `json:"tail_records"`
	TailBytes     int64  `json:"tail_bytes"`
	OpenPath      string `json:"open_path"`
}

// Stats is a point-in-time snapshot of store shape and counters.
type Stats struct {
	Records        int64        `json:"records"`
	Shards         []ShardStats `json:"shards"`
	IndexedDomains int          `json:"indexed_domains"`
	IndexedHosts   int          `json:"indexed_hosts"`
	HostPostings   int64        `json:"host_postings"`
	QueriesServed  int64        `json:"queries_served"`
	RowsScanned    int64        `json:"rows_scanned"`
	RowsSkipped    int64        `json:"rows_skipped"`
	TruncatedTails int64        `json:"truncated_tails"`

	Packs            int     `json:"packs"`
	Compactions      int64   `json:"compactions"`
	PackedRecords    int64   `json:"packed_records"`
	PackedBytes      int64   `json:"packed_bytes"`
	TornPacks        int64   `json:"torn_packs"`
	OverlapRepairs   int64   `json:"overlap_repairs"`
	PaceSleepSeconds float64 `json:"pace_sleep_seconds"`
}

// openPath names the path a shard's open took: "indexed" (pack footer
// summaries + tail scan) or "scan" (full segment scan).
func openPath(indexed bool) string {
	if indexed {
		return "indexed"
	}
	return "scan"
}

// Stats snapshots the store: per-shard record counts and byte sizes
// split by pack/tail, index sizes, compaction totals, and the
// cumulative query counters (queries served, rows scanned vs. rows
// skipped by index pruning). Index-shape figures count posting keys: a
// domain or host present in k packs plus the tail contributes k(+1)
// keys.
func (s *Store) Stats() Stats {
	st := Stats{
		Records:          s.counters.records.Load(),
		QueriesServed:    s.counters.queries.Load(),
		RowsScanned:      s.counters.rowsScanned.Load(),
		RowsSkipped:      s.counters.rowsSkipped.Load(),
		TruncatedTails:   s.counters.truncated.Load(),
		Compactions:      s.counters.compactions.Load(),
		PackedRecords:    s.counters.packedRecords.Load(),
		PackedBytes:      s.counters.packedBytes.Load(),
		TornPacks:        s.counters.tornPacks.Load(),
		OverlapRepairs:   s.counters.overlapRepairs.Load(),
		PaceSleepSeconds: float64(s.counters.paceSleepNanos.Load()) / 1e9,
	}
	for i, sh := range s.shards {
		sh.mu.Lock()
		ss := ShardStats{
			Segment:       segName(i),
			Records:       int(sh.logicalRecords()),
			Bytes:         sh.packedBytes + sh.end,
			MinDay:        int(sh.minDay),
			MaxDay:        int(sh.maxDay),
			Packs:         len(sh.packs),
			PackedRecords: sh.packedRecords,
			PackedBytes:   sh.packedBytes,
			TailRecords:   len(sh.recs),
			TailBytes:     sh.end,
			OpenPath:      openPath(sh.openIndexed),
		}
		// Widen the day range over the pack chain so the stats view
		// covers the shard's whole logical stream, not just the tail.
		haveRange := len(sh.recs) > 0
		for _, p := range sh.packs {
			if !haveRange || int(p.Summary.MinDay) < ss.MinDay {
				ss.MinDay = int(p.Summary.MinDay)
			}
			if !haveRange || int(p.Summary.MaxDay) > ss.MaxDay {
				ss.MaxDay = int(p.Summary.MaxDay)
			}
			haveRange = true
		}
		st.IndexedDomains += len(sh.byDomain)
		st.IndexedHosts += len(sh.byHost)
		st.HostPostings += sh.hostPostings
		for _, p := range sh.packs {
			st.IndexedDomains += p.Summary.DomainKeys
			st.IndexedHosts += p.Summary.HostKeys
			st.HostPostings += p.Summary.HostPostings
		}
		st.Packs += len(sh.packs)
		sh.mu.Unlock()
		st.Shards = append(st.Shards, ss)
	}
	return st
}
