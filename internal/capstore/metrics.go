package capstore

import (
	"time"

	"repro/internal/obs"
)

// rowBuckets grade per-query row counts: 1, 4, 16, … ~260k.
var rowBuckets = obs.ExponentialBuckets(1, 4, 10)

// StoreMetrics is the store's per-query recorder: latency and
// rows-scanned/skipped histograms. A nil *StoreMetrics (what
// NewStoreMetrics returns for a nil registry) is the no-op recorder.
// The latency histogram also feeds the /healthz telemetry summary —
// see HealthTelemetry.
type StoreMetrics struct {
	// QuerySeconds is the wall time of one Query call, dispatch to
	// completion.
	QuerySeconds *obs.Histogram
	// RowsScanned and RowsSkipped are per-query distributions of
	// records read from disk vs. excluded by index or metadata
	// pruning (the cumulative totals live in Stats).
	RowsScanned *obs.Histogram
	RowsSkipped *obs.Histogram
	// Now is the query-latency clock, injectable for deterministic
	// tests (default time.Now).
	Now func() time.Time
}

// NewStoreMetrics registers the per-query metric families on reg;
// returns nil (the no-op recorder) when reg is nil.
func NewStoreMetrics(reg *obs.Registry) *StoreMetrics {
	if reg == nil {
		return nil
	}
	return &StoreMetrics{
		QuerySeconds: obs.NewHistogram(reg, "capstore_query_seconds",
			"Wall time of one store query, dispatch to completion.",
			obs.LatencyBuckets),
		RowsScanned: obs.NewHistogram(reg, "capstore_query_rows_scanned",
			"Records read from disk per query.", rowBuckets),
		RowsSkipped: obs.NewHistogram(reg, "capstore_query_rows_skipped",
			"Records excluded per query without a disk read (index and metadata pruning).",
			rowBuckets),
	}
}

func (m *StoreMetrics) now() time.Time {
	if m.Now != nil {
		return m.Now()
	}
	return time.Now()
}

// RegisterMetrics publishes the store's operational state on reg —
// cumulative counters mirroring Stats() plus index-shape gauges — and
// attaches a NewStoreMetrics per-query recorder to the store. Safe to
// call while queries and ingest are running.
func (s *Store) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	obs.NewCounterFunc(reg, "capstore_records_total",
		"Records ingested into the store.", s.counters.records.Load)
	obs.NewCounterFunc(reg, "capstore_queries_total",
		"Queries served.", s.counters.queries.Load)
	obs.NewCounterFunc(reg, "capstore_rows_scanned_total",
		"Records read from disk across all queries.", s.counters.rowsScanned.Load)
	obs.NewCounterFunc(reg, "capstore_rows_skipped_total",
		"Records excluded across all queries without a disk read.", s.counters.rowsSkipped.Load)
	obs.NewCounterFunc(reg, "capstore_truncated_tails_total",
		"Crash-torn segment tails detected and repaired at open.", s.counters.truncated.Load)
	obs.NewGaugeFunc(reg, "capstore_segments",
		"Segment files backing the store.",
		func() float64 { return float64(len(s.shards)) })
	obs.NewGaugeFunc(reg, "capstore_indexed_domains",
		"Final-domain posting keys across pack indexes and tail indexes.",
		func() float64 {
			n := 0
			for _, sh := range s.shards {
				sh.mu.Lock()
				n += len(sh.byDomain)
				for _, p := range sh.packs {
					n += p.Summary.DomainKeys
				}
				sh.mu.Unlock()
			}
			return float64(n)
		})
	obs.NewGaugeFunc(reg, "capstore_indexed_hosts",
		"Request-host posting keys across pack indexes and tail indexes.",
		func() float64 {
			n := 0
			for _, sh := range s.shards {
				sh.mu.Lock()
				n += len(sh.byHost)
				for _, p := range sh.packs {
					n += p.Summary.HostKeys
				}
				sh.mu.Unlock()
			}
			return float64(n)
		})
	obs.NewGaugeFunc(reg, "capstore_host_postings",
		"Total request-host posting-list entries.",
		func() float64 {
			var n int64
			for _, sh := range s.shards {
				sh.mu.Lock()
				n += sh.hostPostings
				for _, p := range sh.packs {
					n += p.Summary.HostPostings
				}
				sh.mu.Unlock()
			}
			return float64(n)
		})

	// Pack engine.
	obs.NewCounterFunc(reg, "pack_compactions_total",
		"Tail-to-pack compactions completed.", s.counters.compactions.Load)
	obs.NewCounterFunc(reg, "pack_packed_records_total",
		"Records folded into packs by compaction.", s.counters.packedRecords.Load)
	obs.NewCounterFunc(reg, "pack_packed_bytes_total",
		"Wire bytes folded into packs by compaction.", s.counters.packedBytes.Load)
	obs.NewCounterFunc(reg, "pack_torn_quarantined_total",
		"Torn pack files quarantined aside at open.", s.counters.tornPacks.Load)
	obs.NewCounterFunc(reg, "pack_overlap_repairs_total",
		"Interrupted compactions completed at open by dropping the packed tail prefix.",
		s.counters.overlapRepairs.Load)
	obs.NewGaugeFunc(reg, "pack_pace_sleep_seconds_total",
		"Time the compactor slept to honor its write-pace bound.",
		func() float64 { return float64(s.counters.paceSleepNanos.Load()) / 1e9 })
	obs.NewGaugeFunc(reg, "pack_packs",
		"Pack files across all shards.",
		func() float64 {
			n := 0
			for _, sh := range s.shards {
				sh.mu.Lock()
				n += len(sh.packs)
				sh.mu.Unlock()
			}
			return float64(n)
		})
	obs.NewGaugeFunc(reg, "pack_open_indexed_shards",
		"Shards whose last open loaded pack footer indexes instead of a full scan.",
		func() float64 {
			n := 0
			for _, sh := range s.shards {
				if sh.openIndexed {
					n++
				}
			}
			return float64(n)
		})
	obs.NewGaugeFunc(reg, "pack_open_scan_shards",
		"Shards whose last open fell back to a full segment scan.",
		func() float64 {
			n := 0
			for _, sh := range s.shards {
				if !sh.openIndexed {
					n++
				}
			}
			return float64(n)
		})
	s.metrics.Store(NewStoreMetrics(reg))
}

// SetTracer attaches a tracer emitting one "query" span per Query
// call (attrs: access path at start; scanned/skipped row counts on
// completion). Safe to call while queries are running; nil detaches.
func (s *Store) SetTracer(tr *obs.Tracer) { s.tracer.Store(tr) }

// Metrics returns the attached per-query recorder, nil when telemetry
// is disabled.
func (s *Store) Metrics() *StoreMetrics { return s.metrics.Load() }
