package capstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"repro/internal/capture"
	"repro/internal/capturedb"
	"repro/internal/simtime"
	"repro/internal/webworld"
)

func sample(domain string, day simtime.Day, host string) *capture.Capture {
	return &capture.Capture{
		SeedURL:     "https://www." + domain + "/",
		FinalURL:    "https://www." + domain + "/",
		FinalDomain: domain,
		Day:         day,
		Vantage:     capture.EUCloud,
		Config:      "default",
		Status:      200,
		Requests: []capture.Request{
			{Host: "www." + domain, Path: "/", Status: 200, BytesRaw: 1000, BytesCompressed: 1000},
			{Host: host, Path: "/cmp.js", Status: 200, BytesRaw: 500, BytesCompressed: 500},
		},
		Cookies: []webworld.Cookie{{Domain: domain, Name: "session", Value: "abc"}},
	}
}

// fill writes a deterministic mixed corpus and returns it in insert
// order.
func fill(t testing.TB, s *Store, n int) []*capture.Capture {
	t.Helper()
	hosts := []string{"cdn.cookielaw.org", "consent.cookiebot.com", "quantcast.mgr.consensu.org"}
	var all []*capture.Capture
	for i := 0; i < n; i++ {
		c := sample(fmt.Sprintf("site-%03d.com", i%37), simtime.Day(i%300), hosts[i%len(hosts)])
		if i%11 == 0 {
			c.Failed = true
			c.Error = "connection refused"
		}
		s.Record(c)
		all = append(all, c)
	}
	return all
}

// bruteForce scans the raw segment files with capturedb.Scan — the
// reference implementation capstore must agree with byte-for-byte.
func bruteForce(t testing.TB, dir string, q capturedb.Query) []byte {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	var out bytes.Buffer
	for _, name := range names {
		err := capturedb.ScanFile(name, q, func(c *capture.Capture) bool {
			line, err := capturedb.Encode(c)
			if err != nil {
				t.Fatal(err)
			}
			out.Write(line)
			return true
		})
		if err != nil && !errors.Is(err, capturedb.ErrTruncated) {
			t.Fatalf("%s: %v", name, err)
		}
	}
	return out.Bytes()
}

// indexed runs the same query through the store and renders results in
// the same wire format.
func indexed(t testing.TB, s *Store, q capturedb.Query) []byte {
	t.Helper()
	var out bytes.Buffer
	err := s.Query(q, func(c *capture.Capture) bool {
		line, err := capturedb.Encode(c)
		if err != nil {
			t.Fatal(err)
		}
		out.Write(line)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

var equivalenceQueries = []capturedb.Query{
	{},
	{IncludeFailed: true},
	{Domain: "site-001.com"},
	{Domain: "site-001.com", IncludeFailed: true},
	{Domain: "no-such-domain.com"},
	{RequestHost: "cdn.cookielaw.org"},
	{RequestHost: "consent.cookiebot.com", From: 50, To: 120},
	{RequestHost: "no-such-host.example"},
	{Domain: "site-002.com", RequestHost: "cdn.cookielaw.org"},
	{From: 100, To: 200},
	{From: 0, To: 0, HasTo: true},
	{Vantage: "eu-cloud", From: 10},
	{Vantage: "us-cloud"},
}

func checkEquivalence(t *testing.T, s *Store, dir string) {
	t.Helper()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, q := range equivalenceQueries {
		want := bruteForce(t, dir, q)
		got := indexed(t, s, q)
		if !bytes.Equal(got, want) {
			t.Errorf("query %+v: indexed result diverges from linear scan (%d vs %d bytes)",
				q, len(got), len(want))
		}
	}
}

func TestStoreEquivalence(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, s, 500)
	checkEquivalence(t, s, dir)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: indexes rebuilt from disk must answer identically.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 500 {
		t.Fatalf("reopened Len = %d", s2.Len())
	}
	if s2.NumShards() != 4 {
		t.Fatalf("reopened NumShards = %d", s2.NumShards())
	}
	checkEquivalence(t, s2, dir)

	// Appending after reopen keeps store and files in agreement.
	fill(t, s2, 100)
	checkEquivalence(t, s2, dir)
}

// TestConcurrentIngestQuery exercises simultaneous writers and readers
// (run with -race), then asserts index results are byte-identical to a
// brute-force capturedb.Scan over the same records.
func TestConcurrentIngestQuery(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const writers, perWriter = 8, 200
	var writeWG, readWG sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent queriers: results only need to be internally
	// consistent while ingest runs; correctness is checked after.
	for i := 0; i < 4; i++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				prev := simtime.Day(-1)
				err := s.Query(capturedb.Query{Domain: "w3-site-004.com"}, func(c *capture.Capture) bool {
					if c.FinalDomain != "w3-site-004.com" {
						t.Error("query returned wrong domain:", c.FinalDomain)
					}
					if c.Day < prev {
						t.Error("results out of canonical order")
					}
					prev = c.Day
					return true
				})
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Count(capturedb.Query{RequestHost: "cdn.cookielaw.org"}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < perWriter; i++ {
				c := sample(fmt.Sprintf("w%d-site-%03d.com", w, i%10), simtime.Day(i), "cdn.cookielaw.org")
				s.Record(c)
			}
		}(w)
	}
	writeWG.Wait()
	close(stop)
	readWG.Wait()

	if s.Len() != writers*perWriter {
		t.Fatalf("Len = %d, want %d", s.Len(), writers*perWriter)
	}
	checkEquivalence(t, s, dir)
	for w := 0; w < writers; w++ {
		q := capturedb.Query{Domain: fmt.Sprintf("w%d-site-004.com", w)}
		if got, want := indexed(t, s, q), bruteForce(t, dir, q); !bytes.Equal(got, want) {
			t.Errorf("writer %d: indexed diverges from scan", w)
		}
	}
}

// TestTruncatedRecovery crash-truncates a segment tail and checks that
// Open repairs it via the capturedb.ErrTruncated path.
func TestTruncatedRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	all := fill(t, s, 40)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final record of the fuller segment.
	names, _ := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	sort.Strings(names)
	victim := ""
	for _, name := range names {
		if fi, err := os.Stat(name); err == nil && fi.Size() > 0 {
			victim = name
		}
	}
	fi, err := os.Stat(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(victim, fi.Size()-9); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats().TruncatedTails; got != 1 {
		t.Errorf("TruncatedTails = %d, want 1", got)
	}
	if s2.Len() != int64(len(all)-1) {
		t.Errorf("Len after repair = %d, want %d", s2.Len(), len(all)-1)
	}
	// The torn segment was truncated back to a record boundary, so
	// fresh appends stay well-framed.
	fresh := sample("fresh.example.com", 250, "cdn.cookielaw.org")
	s2.Record(fresh)
	checkEquivalence(t, s2, dir)
	n, err := s2.Count(capturedb.Query{Domain: "fresh.example.com"})
	if err != nil || n != 1 {
		t.Errorf("fresh record after repair: n=%d err=%v", n, err)
	}
}

// TestPruningCounters pins the acceptance criterion: indexed queries
// must not scan non-matching rows, visible as RowsSkipped > 0.
func TestPruningCounters(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fill(t, s, 400)

	base := s.Stats()
	var got int
	if err := s.Query(capturedb.Query{Domain: "site-005.com"}, func(*capture.Capture) bool { got++; return true }); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if got == 0 {
		t.Fatal("domain query found nothing")
	}
	scanned := st.RowsScanned - base.RowsScanned
	skipped := st.RowsSkipped - base.RowsSkipped
	if skipped == 0 {
		t.Error("domain query skipped no rows")
	}
	if scanned+skipped != 400 {
		t.Errorf("scanned %d + skipped %d != 400", scanned, skipped)
	}
	if scanned >= 400/4 {
		t.Errorf("domain query scanned %d rows — index not selective", scanned)
	}

	// Day-range pruning on the scan path: an out-of-range window must
	// skip whole segments without reading.
	base = s.Stats()
	n, err := s.Count(capturedb.Query{From: 5000, To: 6000})
	if err != nil || n != 0 {
		t.Fatalf("out-of-range: n=%d err=%v", n, err)
	}
	st = s.Stats()
	if st.RowsScanned != base.RowsScanned {
		t.Error("out-of-range day query read records")
	}
	if st.RowsSkipped-base.RowsSkipped != 400 {
		t.Errorf("out-of-range skipped %d, want 400", st.RowsSkipped-base.RowsSkipped)
	}
	if st.QueriesServed < 2 {
		t.Errorf("QueriesServed = %d", st.QueriesServed)
	}
}

func TestStatsShape(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fill(t, s, 90)
	st := s.Stats()
	if st.Records != 90 || len(st.Shards) != 3 {
		t.Fatalf("stats: %+v", st)
	}
	total := 0
	for _, sh := range st.Shards {
		total += sh.Records
	}
	if total != 90 {
		t.Errorf("shard records sum %d", total)
	}
	if st.IndexedDomains != 37 {
		t.Errorf("IndexedDomains = %d, want 37", st.IndexedDomains)
	}
	if st.IndexedHosts == 0 || st.HostPostings == 0 {
		t.Errorf("host index empty: %+v", st)
	}
}

func TestOpenRejectsNonStore(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Error("Open of empty dir must fail")
	}
}

func TestCreateDefaultShards(t *testing.T) {
	s, err := Create(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.NumShards() != DefaultShards {
		t.Errorf("NumShards = %d", s.NumShards())
	}
	if _, err := Create(t.TempDir(), maxShards+1); err == nil {
		t.Error("shard cap not enforced")
	}
}
