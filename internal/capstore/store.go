// Package capstore is the sharded, indexed capture store behind the
// platform's query API — the production substrate for the "central
// database, which can be queried using a custom API" of Section 3.2.
// Captures are hash-partitioned by final registrable domain into N
// shards in the capturedb wire format. Each shard is a chain of
// immutable pack files (compacted bundles with persistent footer
// indexes — see internal/capstore/pack) plus one active tail segment
// for hot appends. Opening a store loads each pack's fixed-size
// summary and scans only the tail, so open cost tracks tail size, not
// total capture count; domain and CMP-indicator queries resolve
// through pack posting lists and in-memory tail indexes instead of
// full scans. cmd/capd serves the store over HTTP.
package capstore

import (
	"bufio"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/capstore/pack"
	"repro/internal/capture"
	"repro/internal/capturedb"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// DefaultShards is the segment count used when Create is given 0.
const DefaultShards = 8

// maxShards bounds the segment fan-out; past a few hundred segments
// the per-file overhead outweighs any pruning benefit.
const maxShards = 256

// recMeta is the per-record index entry for a tail record: where the
// record lives in the tail file plus the two fields (day, failed)
// every query filters on, so non-matching records are skipped without
// touching disk.
type recMeta struct {
	off    int64
	length int32
	day    int32
	failed bool
}

// shard is one partition: an ordered chain of immutable packs plus the
// active tail segment with its concurrent-safe appender and in-memory
// tail indexes. The tail's secondary indexes are updated under mu in
// the same critical section as the record append, so a tail
// record-count snapshot is always a fully indexed prefix.
type shard struct {
	mu     sync.Mutex
	f      *os.File
	bw     *bufio.Writer
	end    int64 // tail logical end offset, including buffered bytes
	recs   []recMeta
	minDay simtime.Day // tail day range
	maxDay simtime.Day

	// Tail secondary indexes: key → tail-record indices, ascending.
	byDomain     map[string][]int32
	byHost       map[string][]int32
	hostPostings int64

	// The immutable pack chain. packs only ever grows (append on
	// compaction); packedHash is the running logical-stream FNV-64a at
	// the chain's end, which tail hashing resumes from.
	packs         []*pack.Pack
	packedRecords int64
	packedBytes   int64
	packedHash    uint64

	// compacting serializes compaction per shard without holding mu
	// across the pack build.
	compacting bool

	// openIndexed records which open path this shard took: pack
	// summaries + tail scan (true) or full segment scan (false).
	openIndexed bool
}

func (sh *shard) noteDay(d simtime.Day) {
	if len(sh.recs) == 1 || d < sh.minDay {
		sh.minDay = d
	}
	if len(sh.recs) == 1 || d > sh.maxDay {
		sh.maxDay = d
	}
}

// indexTail publishes one tail record's secondary-index entries.
// Callers hold sh.mu.
func (sh *shard) indexTail(c *capture.Capture, idx int32) {
	if c.FinalDomain != "" {
		sh.byDomain[c.FinalDomain] = append(sh.byDomain[c.FinalDomain], idx)
	}
	seen := make(map[string]bool, len(c.Requests))
	for _, q := range c.Requests {
		if q.Host == "" || seen[q.Host] {
			continue
		}
		seen[q.Host] = true
		sh.byHost[q.Host] = append(sh.byHost[q.Host], idx)
		sh.hostPostings++
	}
}

// logicalRecords returns the shard's total record count (packs +
// tail). Callers hold sh.mu.
func (sh *shard) logicalRecords() int64 { return sh.packedRecords + int64(len(sh.recs)) }

// Store is a sharded capture store rooted at a directory of pack and
// segment files. It implements capture.Sink (write-through from the
// crawler) and is safe for concurrent ingest, query, and compaction.
type Store struct {
	dir    string
	shards []*shard

	counters counters

	// Optional telemetry, attached via RegisterMetrics / SetTracer.
	// Atomic so attachment can race live queries without a lock on
	// the hot path.
	metrics atomic.Pointer[StoreMetrics]
	tracer  atomic.Pointer[obs.Tracer]

	errMu sync.Mutex
	err   error
}

func segName(i int) string { return fmt.Sprintf("seg-%03d.jsonl", i) }

// packName is pack file seq of shard i; lexical order is chain order.
func packName(i, seq int) string { return fmt.Sprintf("pack-%03d-%06d.pack", i, seq) }

// Create initialises an empty store with the given number of segments
// (0 means DefaultShards) under dir, truncating any existing segments.
func Create(dir string, shards int) (*Store, error) {
	if shards <= 0 {
		shards = DefaultShards
	}
	if shards > maxShards {
		return nil, fmt.Errorf("capstore: %d shards exceeds the maximum of %d", shards, maxShards)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := newStore(dir, shards)
	for i := range s.shards {
		f, err := os.Create(filepath.Join(dir, segName(i)))
		if err != nil {
			s.Close()
			return nil, err
		}
		s.shards[i].f = f
		s.shards[i].bw = bufio.NewWriterSize(f, 1<<16)
	}
	return s, nil
}

// Open loads an existing store. Shards with a pack chain load each
// pack's persistent footer summary (O(packs), no data read) and scan
// only the tail segment; unpacked shards scan their whole segment to
// rebuild the in-memory indexes. Shard opens run on a
// GOMAXPROCS-bounded worker pool; each shard's index is built inside
// its own worker, so the result is deterministic with no cross-shard
// merge. Crash debris is repaired: leftover .tmp files are removed,
// torn segment tails (capturedb.ErrTruncated) are truncated to the
// last complete record, a torn final pack is quarantined aside, and a
// tail still holding an already-packed prefix (crash between pack
// commit and tail rewrite) is rewritten to drop the duplicate.
func Open(dir string) (*Store, error) {
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("capstore: %s holds no segment files (not a capture store?)", dir)
	}
	sort.Strings(names)
	s := newStore(dir, len(names))

	// Crash debris: in-flight pack builds and tail rewrites die under
	// a .tmp name; anything still there is garbage.
	tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil {
		return nil, err
	}
	for _, t := range tmps {
		if err := os.Remove(t); err != nil {
			return nil, fmt.Errorf("capstore: removing crash debris %s: %w", t, err)
		}
	}

	errs := make([]error, len(names))
	idx := make(chan int)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > len(names) {
		workers = len(names)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = s.openShard(i, names[i])
			}
		}()
	}
	for i := range names {
		idx <- i
	}
	close(idx)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("capstore: %s: %w", names[i], err)
		}
	}
	for _, sh := range s.shards {
		s.counters.records.Add(sh.logicalRecords())
	}
	return s, nil
}

func newStore(dir string, shards int) *Store {
	s := &Store{
		dir:    dir,
		shards: make([]*shard, shards),
	}
	for i := range s.shards {
		s.shards[i] = &shard{
			byDomain:   make(map[string][]int32),
			byHost:     make(map[string][]int32),
			packedHash: pack.HashOffset,
		}
	}
	return s
}

// openShard loads shard i: pack chain first (summaries only), then the
// tail segment scan, repairing crash states along the way.
func (s *Store) openShard(i int, segPath string) error {
	sh := s.shards[i]
	if err := s.openPacks(i, sh); err != nil {
		return err
	}
	if err := s.repairTailOverlap(i, sh, segPath); err != nil {
		return err
	}
	return s.openTail(i, sh, segPath)
}

// openPacks loads shard i's pack chain, validating each pack's chain
// position against the running (records, bytes, hash) state. A torn or
// chain-breaking final pack is quarantined aside (renamed .corrupt) —
// the only way one arises is filesystem damage, and the bytes usually
// still live in the tail (see repairTailOverlap); a broken pack in the
// middle of the chain is unrecoverable locally and fails the open.
func (s *Store) openPacks(i int, sh *shard) error {
	paths, err := filepath.Glob(filepath.Join(s.dir, fmt.Sprintf("pack-%03d-*.pack", i)))
	if err != nil {
		return err
	}
	sort.Strings(paths)
	for k, path := range paths {
		p, err := pack.Open(path)
		if err == nil {
			baseHash, herr := pack.ParseHash(p.Summary.BaseHash)
			if herr != nil {
				err = herr
			} else if p.Summary.BaseRecords != sh.packedRecords ||
				p.Summary.BaseBytes != sh.packedBytes || baseHash != sh.packedHash {
				err = fmt.Errorf("%w: %s: chain position (%d records, %d bytes, %s) does not extend (%d, %d, %s)",
					pack.ErrBadPack, path, p.Summary.BaseRecords, p.Summary.BaseBytes, p.Summary.BaseHash,
					sh.packedRecords, sh.packedBytes, pack.HashHex(sh.packedHash))
			}
		}
		if err != nil {
			if !errors.Is(err, pack.ErrBadPack) || k != len(paths)-1 {
				return err
			}
			if rerr := os.Rename(path, path+".corrupt"); rerr != nil {
				return fmt.Errorf("quarantining torn pack: %w", rerr)
			}
			s.counters.tornPacks.Add(1)
			break
		}
		endHash, err := pack.ParseHash(p.Summary.Hash)
		if err != nil {
			return err
		}
		sh.packs = append(sh.packs, p)
		sh.packedRecords += p.Summary.Records
		sh.packedBytes += p.Summary.DataBytes
		sh.packedHash = endHash
	}
	sh.openIndexed = len(sh.packs) > 0
	return nil
}

// repairTailOverlap completes a compaction interrupted between pack
// commit and tail rewrite: if the tail still starts with the last
// pack's exact bytes (verified by resuming the FNV chain from the
// pack's base hash), the duplicated prefix is dropped by rewriting the
// tail through a temp file and atomic rename.
func (s *Store) repairTailOverlap(i int, sh *shard, segPath string) error {
	if len(sh.packs) == 0 {
		return nil
	}
	lp := sh.packs[len(sh.packs)-1]
	fi, err := os.Stat(segPath)
	if err != nil {
		return err
	}
	if fi.Size() < lp.Summary.DataBytes {
		return nil
	}
	f, err := os.Open(segPath)
	if err != nil {
		return err
	}
	baseHash, err := pack.ParseHash(lp.Summary.BaseHash)
	if err != nil {
		f.Close()
		return err
	}
	h, err := pack.HashReader(baseHash, io.NewSectionReader(f, 0, lp.Summary.DataBytes))
	if err != nil {
		f.Close()
		return err
	}
	if pack.HashHex(h) != lp.Summary.Hash {
		return f.Close() // tail does not duplicate the pack: normal state
	}
	if err := rewriteTail(segPath, f, lp.Summary.DataBytes, fi.Size()); err != nil {
		f.Close()
		return fmt.Errorf("dropping packed tail prefix: %w", err)
	}
	f.Close()
	s.counters.overlapRepairs.Add(1)
	return nil
}

// rewriteTail replaces segPath with bytes [from, to) of src via a temp
// file and atomic rename.
func rewriteTail(segPath string, src io.ReaderAt, from, to int64) error {
	tmp, err := os.Create(segPath + ".tmp")
	if err != nil {
		return err
	}
	if _, err := io.Copy(tmp, io.NewSectionReader(src, from, to-from)); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), segPath); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return syncDir(filepath.Dir(segPath))
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// openTail scans shard i's tail segment, fills the record metadata and
// tail indexes, and repairs a torn tail.
func (s *Store) openTail(i int, sh *shard, segPath string) error {
	f, err := os.OpenFile(segPath, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	sh.f = f
	rr := capturedb.NewRecordReader(f)
	for {
		start := rr.Offset()
		c, err := rr.Next()
		if err == io.EOF {
			break
		}
		if errors.Is(err, capturedb.ErrTruncated) {
			s.counters.truncated.Add(1)
			if err := f.Truncate(rr.Valid()); err != nil {
				return fmt.Errorf("repairing torn tail: %w", err)
			}
			break
		}
		if err != nil {
			return err
		}
		sh.recs = append(sh.recs, recMeta{
			off:    start,
			length: int32(rr.Valid() - start),
			day:    int32(c.Day),
			failed: c.Failed,
		})
		sh.noteDay(c.Day)
		sh.indexTail(c, int32(len(sh.recs)-1))
	}
	sh.end = rr.Valid()
	if _, err := f.Seek(sh.end, io.SeekStart); err != nil {
		return err
	}
	sh.bw = bufio.NewWriterSize(f, 1<<16)
	return nil
}

// ShardOf returns the segment index domain hashes to in a store of n
// segments — exported so the replicated ingest proxy partitions
// batches exactly as every storage node's store will.
func ShardOf(domain string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(domain))
	return int(h.Sum32() % uint32(n))
}

// shardFor hash-partitions by final registrable domain so every
// capture of a domain lands in one segment.
func (s *Store) shardFor(domain string) int {
	return ShardOf(domain, len(s.shards))
}

// Record implements capture.Sink: write-through into the domain's
// tail segment plus tail-index update, all under one shard lock so a
// record is visible to queries only once fully indexed. The first
// error is retained and returned by Close, matching capturedb.Writer
// semantics.
func (s *Store) Record(c *capture.Capture) {
	line, err := capturedb.Encode(c)
	if err != nil {
		s.fail(err)
		return
	}
	si := s.shardFor(c.FinalDomain)
	sh := s.shards[si]
	sh.mu.Lock()
	if _, err := sh.bw.Write(line); err != nil {
		sh.mu.Unlock()
		s.fail(err)
		return
	}
	sh.recs = append(sh.recs, recMeta{
		off:    sh.end,
		length: int32(len(line)),
		day:    int32(c.Day),
		failed: c.Failed,
	})
	sh.end += int64(len(line))
	sh.noteDay(c.Day)
	sh.indexTail(c, int32(len(sh.recs)-1))
	sh.mu.Unlock()
	s.counters.records.Add(1)
}

func (s *Store) fail(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
}

// Len returns the number of records in the store.
func (s *Store) Len() int64 { return s.counters.records.Load() }

// NumShards returns the segment count.
func (s *Store) NumShards() int { return len(s.shards) }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Flush forces buffered appends to disk on every shard.
func (s *Store) Flush() error {
	var first error
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.bw != nil {
			if err := sh.bw.Flush(); err != nil && first == nil {
				first = err
			}
		}
		sh.mu.Unlock()
	}
	if first != nil {
		s.fail(first)
	}
	return first
}

// Close flushes and closes every segment and pack, returning the first
// error encountered over the store's lifetime.
func (s *Store) Close() error {
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.bw != nil {
			if err := sh.bw.Flush(); err != nil {
				s.fail(err)
			}
		}
		if sh.f != nil {
			if err := sh.f.Close(); err != nil {
				s.fail(err)
			}
			sh.f = nil
		}
		for _, p := range sh.packs {
			if err := p.Close(); err != nil {
				s.fail(err)
			}
		}
		sh.packs = nil
		sh.mu.Unlock()
	}
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}
