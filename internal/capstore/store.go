// Package capstore is the sharded, indexed capture store behind the
// platform's query API — the production substrate for the "central
// database, which can be queried using a custom API" of Section 3.2.
// Captures are hash-partitioned by final registrable domain into N
// segment files in the capturedb wire format, with in-memory secondary
// indexes (domain → record offsets, request-host posting lists,
// per-segment day ranges) built at open/ingest time so domain and
// CMP-indicator queries become index lookups instead of full scans.
// cmd/capd serves the store over HTTP.
package capstore

import (
	"bufio"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/capture"
	"repro/internal/capturedb"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// DefaultShards is the segment count used when Create is given 0.
const DefaultShards = 8

// maxShards bounds the segment fan-out; past a few hundred segments
// the per-file overhead outweighs any pruning benefit.
const maxShards = 256

// ref addresses one record: segment number plus position in that
// segment's record list.
type ref struct {
	shard int32
	idx   int32
}

// recMeta is the per-record index entry: where the record lives in its
// segment plus the two fields (day, failed) every query filters on, so
// non-matching records are skipped without touching disk.
type recMeta struct {
	off    int64
	length int32
	day    int32
	failed bool
}

// shard is one segment file with its concurrent-safe appender.
type shard struct {
	mu     sync.Mutex
	f      *os.File
	bw     *bufio.Writer
	end    int64 // logical end offset, including buffered bytes
	recs   []recMeta
	minDay simtime.Day
	maxDay simtime.Day
}

func (sh *shard) noteDay(d simtime.Day) {
	if len(sh.recs) == 1 || d < sh.minDay {
		sh.minDay = d
	}
	if len(sh.recs) == 1 || d > sh.maxDay {
		sh.maxDay = d
	}
}

// Store is a sharded capture store rooted at a directory of segment
// files. It implements capture.Sink (write-through from the crawler)
// and is safe for concurrent ingest and query.
type Store struct {
	dir    string
	shards []*shard

	// Secondary indexes. Lock ordering: shard.mu before idxMu; index
	// entries for a record are published before its shard releases
	// the shard lock, so a per-shard record-count snapshot is always
	// a fully indexed prefix.
	idxMu    sync.RWMutex
	byDomain map[string][]ref
	byHost   map[string][]ref
	postings int64

	counters counters

	// Optional telemetry, attached via RegisterMetrics / SetTracer.
	// Atomic so attachment can race live queries without a lock on
	// the hot path.
	metrics atomic.Pointer[StoreMetrics]
	tracer  atomic.Pointer[obs.Tracer]

	errMu sync.Mutex
	err   error
}

func segName(i int) string { return fmt.Sprintf("seg-%03d.jsonl", i) }

// Create initialises an empty store with the given number of segments
// (0 means DefaultShards) under dir, truncating any existing segments.
func Create(dir string, shards int) (*Store, error) {
	if shards <= 0 {
		shards = DefaultShards
	}
	if shards > maxShards {
		return nil, fmt.Errorf("capstore: %d shards exceeds the maximum of %d", shards, maxShards)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := newStore(dir, shards)
	for i := range s.shards {
		f, err := os.Create(filepath.Join(dir, segName(i)))
		if err != nil {
			s.Close()
			return nil, err
		}
		s.shards[i].f = f
		s.shards[i].bw = bufio.NewWriterSize(f, 1<<16)
	}
	return s, nil
}

// Open loads an existing store, rebuilding the in-memory indexes by
// scanning every segment. Crash-truncated segment tails (torn writes)
// are detected via capturedb.ErrTruncated, counted in Stats, and
// repaired by truncating the segment to its last complete record so
// subsequent appends stay well-framed.
func Open(dir string) (*Store, error) {
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("capstore: %s holds no segment files (not a capture store?)", dir)
	}
	sort.Strings(names)
	s := newStore(dir, len(names))

	captures := make([][]*capture.Capture, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			captures[i], errs[i] = s.openSegment(i, name)
		}(i, name)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("capstore: %s: %w", names[i], err)
		}
	}
	// Index merge runs single-threaded: segment order then record
	// order, the store's canonical result order.
	for i, segCaps := range captures {
		for j, c := range segCaps {
			s.indexRecord(c, ref{shard: int32(i), idx: int32(j)})
		}
		s.counters.records.Add(int64(len(segCaps)))
	}
	return s, nil
}

func newStore(dir string, shards int) *Store {
	s := &Store{
		dir:      dir,
		shards:   make([]*shard, shards),
		byDomain: make(map[string][]ref),
		byHost:   make(map[string][]ref),
	}
	for i := range s.shards {
		s.shards[i] = &shard{}
	}
	return s
}

// openSegment scans one segment file, fills the shard's record
// metadata, repairs a torn tail, and returns the decoded captures for
// index building.
func (s *Store) openSegment(i int, name string) ([]*capture.Capture, error) {
	f, err := os.OpenFile(name, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	sh := s.shards[i]
	sh.f = f
	var captures []*capture.Capture
	rr := capturedb.NewRecordReader(f)
	for {
		start := rr.Offset()
		c, err := rr.Next()
		if err == io.EOF {
			break
		}
		if errors.Is(err, capturedb.ErrTruncated) {
			s.counters.truncated.Add(1)
			if err := f.Truncate(rr.Valid()); err != nil {
				return nil, fmt.Errorf("repairing torn tail: %w", err)
			}
			break
		}
		if err != nil {
			return nil, err
		}
		sh.recs = append(sh.recs, recMeta{
			off:    start,
			length: int32(rr.Valid() - start),
			day:    int32(c.Day),
			failed: c.Failed,
		})
		sh.noteDay(c.Day)
		captures = append(captures, c)
	}
	sh.end = rr.Valid()
	if _, err := f.Seek(sh.end, io.SeekStart); err != nil {
		return nil, err
	}
	sh.bw = bufio.NewWriterSize(f, 1<<16)
	return captures, nil
}

// ShardOf returns the segment index domain hashes to in a store of n
// segments — exported so the replicated ingest proxy partitions
// batches exactly as every storage node's store will.
func ShardOf(domain string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(domain))
	return int(h.Sum32() % uint32(n))
}

// shardFor hash-partitions by final registrable domain so every
// capture of a domain lands in one segment.
func (s *Store) shardFor(domain string) int {
	return ShardOf(domain, len(s.shards))
}

// indexRecord publishes a record's secondary-index entries. Callers
// must already hold the record's shard lock (or be single-threaded,
// as in Open).
func (s *Store) indexRecord(c *capture.Capture, r ref) {
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	if c.FinalDomain != "" {
		s.byDomain[c.FinalDomain] = append(s.byDomain[c.FinalDomain], r)
	}
	seen := make(map[string]bool, len(c.Requests))
	for _, q := range c.Requests {
		if q.Host == "" || seen[q.Host] {
			continue
		}
		seen[q.Host] = true
		s.byHost[q.Host] = append(s.byHost[q.Host], r)
		s.postings++
	}
}

// Record implements capture.Sink: write-through into the domain's
// segment plus index update. The first error is retained and returned
// by Close, matching capturedb.Writer semantics.
func (s *Store) Record(c *capture.Capture) {
	line, err := capturedb.Encode(c)
	if err != nil {
		s.fail(err)
		return
	}
	si := s.shardFor(c.FinalDomain)
	sh := s.shards[si]
	sh.mu.Lock()
	if _, err := sh.bw.Write(line); err != nil {
		sh.mu.Unlock()
		s.fail(err)
		return
	}
	r := ref{shard: int32(si), idx: int32(len(sh.recs))}
	sh.recs = append(sh.recs, recMeta{
		off:    sh.end,
		length: int32(len(line)),
		day:    int32(c.Day),
		failed: c.Failed,
	})
	sh.end += int64(len(line))
	sh.noteDay(c.Day)
	s.indexRecord(c, r)
	sh.mu.Unlock()
	s.counters.records.Add(1)
}

func (s *Store) fail(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
}

// Len returns the number of records in the store.
func (s *Store) Len() int64 { return s.counters.records.Load() }

// NumShards returns the segment count.
func (s *Store) NumShards() int { return len(s.shards) }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Flush forces buffered appends to disk on every shard.
func (s *Store) Flush() error {
	var first error
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.bw != nil {
			if err := sh.bw.Flush(); err != nil && first == nil {
				first = err
			}
		}
		sh.mu.Unlock()
	}
	if first != nil {
		s.fail(first)
	}
	return first
}

// Close flushes and closes every segment, returning the first error
// encountered over the store's lifetime.
func (s *Store) Close() error {
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.bw != nil {
			if err := sh.bw.Flush(); err != nil {
				s.fail(err)
			}
		}
		if sh.f != nil {
			if err := sh.f.Close(); err != nil {
				s.fail(err)
			}
			sh.f = nil
		}
		sh.mu.Unlock()
	}
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}
