package capstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/capture"
	"repro/internal/capturedb"
)

// Client runs queries against a live capd over HTTP, mirroring the
// local Store API so cmd/capq can target either interchangeably.
type Client struct {
	// BaseURL is the capd root, e.g. "http://127.0.0.1:8650".
	BaseURL string
	// HTTP defaults to http.DefaultClient.
	HTTP *http.Client
}

// NewClient returns a client for the capd at base.
func NewClient(base string) *Client {
	return &Client{BaseURL: strings.TrimRight(base, "/")}
}

func (cl *Client) httpClient() *http.Client {
	if cl.HTTP != nil {
		return cl.HTTP
	}
	return http.DefaultClient
}

// params encodes the shared Query type as URL parameters; a set upper
// bound is always sent explicitly so day-0 bounds survive the wire.
func params(q capturedb.Query, limit, offset int) url.Values {
	v := url.Values{}
	if q.Domain != "" {
		v.Set("domain", q.Domain)
	}
	if q.RequestHost != "" {
		v.Set("host", q.RequestHost)
	}
	if q.Vantage != "" {
		v.Set("vantage", q.Vantage)
	}
	if q.From > 0 {
		v.Set("from", strconv.Itoa(int(q.From)))
	}
	if upper, ok := q.Upper(); ok {
		v.Set("to", strconv.Itoa(int(upper)))
	}
	if q.IncludeFailed {
		v.Set("failed", "1")
	}
	if limit > 0 {
		v.Set("limit", strconv.Itoa(limit))
	}
	if offset > 0 {
		v.Set("offset", strconv.Itoa(offset))
	}
	return v
}

func (cl *Client) get(path string, v url.Values) (*http.Response, error) {
	u := cl.BaseURL + path
	if enc := v.Encode(); enc != "" {
		u += "?" + enc
	}
	resp, err := cl.httpClient().Get(u)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		return nil, fmt.Errorf("capstore: %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return resp, nil
}

// Query streams matches from /query to fn; returning false from fn
// stops early. limit and offset paginate server-side (0 limit means
// unlimited). A stream cut mid-record surfaces as an error
// (capturedb.ErrTruncated or a transport error), never as a clean end.
func (cl *Client) Query(q capturedb.Query, limit, offset int, fn func(*capture.Capture) bool) error {
	resp, err := cl.get("/query", params(q, limit, offset))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	rr := capturedb.NewRecordReader(resp.Body)
	for {
		c, err := rr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if !fn(c) {
			return nil
		}
	}
}

// Count runs the query server-side via /count.
func (cl *Client) Count(q capturedb.Query) (int, error) {
	resp, err := cl.get("/count", params(q, 0, 0))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var out struct {
		Count int `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, fmt.Errorf("capstore: /count: %w", err)
	}
	return out.Count, nil
}

// Health fetches /healthz — served outside the server's load-shedding
// limiter, so it answers even when queries are being shed. The
// Telemetry field is populated only when the server runs with metrics
// enabled.
func (cl *Client) Health() (Health, error) {
	var h Health
	resp, err := cl.get("/healthz", nil)
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return h, fmt.Errorf("capstore: /healthz: %w", err)
	}
	return h, nil
}

// ingest POSTs an NDJSON body to /ingest with the given parameters and
// decodes the IngestResult. A 503 (reorder buffer full) is surfaced as
// ErrIngestShed so callers can back off and retry.
func (cl *Client) ingest(v url.Values, body []byte) (IngestResult, error) {
	var res IngestResult
	u := cl.BaseURL + "/ingest"
	if enc := v.Encode(); enc != "" {
		u += "?" + enc
	}
	resp, err := cl.httpClient().Post(u, "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		return res, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 512)) //nolint:errcheck
		return res, ErrIngestShed
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return res, fmt.Errorf("capstore: /ingest: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return res, fmt.Errorf("capstore: /ingest: %w", err)
	}
	return res, nil
}

// encodeBatch renders captures as an NDJSON request body.
func encodeBatch(caps []*capture.Capture) ([]byte, error) {
	var buf bytes.Buffer
	for _, c := range caps {
		line, err := capturedb.Encode(c)
		if err != nil {
			return nil, err
		}
		buf.Write(line)
	}
	return buf.Bytes(), nil
}

// Record pushes one capture over /ingest (unordered mode). Re-delivery
// of the same share is idempotent server-side.
func (cl *Client) Record(c *capture.Capture) (IngestResult, error) {
	return cl.RecordBatch([]*capture.Capture{c})
}

// RecordBatch pushes captures over /ingest (unordered mode); they are
// applied in slice order with per-record idempotency.
func (cl *Client) RecordBatch(caps []*capture.Capture) (IngestResult, error) {
	body, err := encodeBatch(caps)
	if err != nil {
		return IngestResult{}, err
	}
	return cl.ingest(nil, body)
}

// RecordBatchAt pushes the ordered batch covering work items [at, at+n)
// — the fleet's commit path. caps may be shorter than n (failed or
// dead-lettered items produce no record) or empty (a pure skip marker
// advancing the commit cursor). The server commits ranges strictly in
// order; ErrIngestShed means the reorder buffer is full and the push
// should be retried after a short delay.
func (cl *Client) RecordBatchAt(at, n int64, caps []*capture.Capture) (IngestResult, error) {
	body, err := encodeBatch(caps)
	if err != nil {
		return IngestResult{}, err
	}
	v := url.Values{}
	v.Set("at", strconv.FormatInt(at, 10))
	v.Set("n", strconv.FormatInt(n, 10))
	return cl.ingest(v, body)
}

// Stats fetches the server's store snapshot.
func (cl *Client) Stats() (Stats, error) {
	var st Stats
	resp, err := cl.get("/stats", nil)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("capstore: /stats: %w", err)
	}
	return st, nil
}
