package capstore

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/capture"
	"repro/internal/capturedb"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// Client runs queries against a live capd over HTTP, mirroring the
// local Store API so cmd/capq can target either interchangeably.
type Client struct {
	// BaseURL is the capd root, e.g. "http://127.0.0.1:8650".
	BaseURL string
	// HTTP defaults to http.DefaultClient.
	HTTP *http.Client
	// Retry, when enabled (MaxAttempts > 1), makes ingest pushes absorb
	// transient failures client-side instead of surfacing them to the
	// caller: 503 ordered-mode shedding honours the server's
	// Retry-After hint, and transport errors classified Retryable by
	// the resilience taxonomy back off on the policy's schedule.
	// Terminal errors and an exhausted budget still surface.
	Retry resilience.RetryPolicy
	// Sleep is the retry clock, injectable for tests (default
	// time.Sleep).
	Sleep func(time.Duration)
}

// NewClient returns a client for the capd at base.
func NewClient(base string) *Client {
	return &Client{BaseURL: strings.TrimRight(base, "/")}
}

func (cl *Client) httpClient() *http.Client {
	if cl.HTTP != nil {
		return cl.HTTP
	}
	return http.DefaultClient
}

// params encodes the shared Query type as URL parameters; a set upper
// bound is always sent explicitly so day-0 bounds survive the wire.
func params(q capturedb.Query, limit, offset int) url.Values {
	v := url.Values{}
	if q.Domain != "" {
		v.Set("domain", q.Domain)
	}
	if q.RequestHost != "" {
		v.Set("host", q.RequestHost)
	}
	if q.Vantage != "" {
		v.Set("vantage", q.Vantage)
	}
	if q.From > 0 {
		v.Set("from", strconv.Itoa(int(q.From)))
	}
	if upper, ok := q.Upper(); ok {
		v.Set("to", strconv.Itoa(int(upper)))
	}
	if q.IncludeFailed {
		v.Set("failed", "1")
	}
	if limit > 0 {
		v.Set("limit", strconv.Itoa(limit))
	}
	if offset > 0 {
		v.Set("offset", strconv.Itoa(offset))
	}
	return v
}

func (cl *Client) get(path string, v url.Values) (*http.Response, error) {
	u := cl.BaseURL + path
	if enc := v.Encode(); enc != "" {
		u += "?" + enc
	}
	resp, err := cl.httpClient().Get(u)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		return nil, fmt.Errorf("capstore: %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return resp, nil
}

// Query streams matches from /query to fn; returning false from fn
// stops early. limit and offset paginate server-side (0 limit means
// unlimited). A stream cut mid-record surfaces as an error
// (capturedb.ErrTruncated or a transport error), never as a clean end.
func (cl *Client) Query(q capturedb.Query, limit, offset int, fn func(*capture.Capture) bool) error {
	resp, err := cl.get("/query", params(q, limit, offset))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	rr := capturedb.NewRecordReader(resp.Body)
	for {
		c, err := rr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if !fn(c) {
			return nil
		}
	}
}

// Count runs the query server-side via /count.
func (cl *Client) Count(q capturedb.Query) (int, error) {
	resp, err := cl.get("/count", params(q, 0, 0))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var out struct {
		Count int `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, fmt.Errorf("capstore: /count: %w", err)
	}
	return out.Count, nil
}

// Health fetches /healthz — served outside the server's load-shedding
// limiter, so it answers even when queries are being shed. The
// Telemetry field is populated only when the server runs with metrics
// enabled.
func (cl *Client) Health() (Health, error) {
	var h Health
	resp, err := cl.get("/healthz", nil)
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return h, fmt.Errorf("capstore: /healthz: %w", err)
	}
	return h, nil
}

// ShedError is a 503 from /ingest (ordered-mode reorder shedding)
// carrying the server's Retry-After hint. It unwraps to ErrIngestShed
// so existing errors.Is checks keep working.
type ShedError struct {
	// RetryAfter is the server's backoff hint (zero when the header was
	// absent or unparseable).
	RetryAfter time.Duration
}

func (e *ShedError) Error() string { return ErrIngestShed.Error() }
func (e *ShedError) Unwrap() error { return ErrIngestShed }

// parseRetryAfter reads a delay-seconds Retry-After value; HTTP-date
// forms are ignored (the servers here only ever send seconds).
func parseRetryAfter(h string) time.Duration {
	if n, err := strconv.Atoi(strings.TrimSpace(h)); err == nil && n >= 0 {
		return time.Duration(n) * time.Second
	}
	return 0
}

// ingestOnce POSTs an NDJSON body to /ingest and decodes the
// IngestResult. trace, when non-empty, rides the Traceparent header so
// the server's ingest span joins the pusher's trace. A 503 (reorder
// buffer full) is surfaced as a *ShedError wrapping ErrIngestShed.
func (cl *Client) ingestOnce(v url.Values, trace string, body []byte) (IngestResult, error) {
	var res IngestResult
	u := cl.BaseURL + "/ingest"
	if enc := v.Encode(); enc != "" {
		u += "?" + enc
	}
	req, err := http.NewRequest(http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return res, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if trace != "" {
		req.Header.Set(obs.TraceparentHeader, trace)
	}
	resp, err := cl.httpClient().Do(req)
	if err != nil {
		return res, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 512)) //nolint:errcheck
		return res, &ShedError{RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After"))}
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return res, fmt.Errorf("capstore: /ingest: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return res, fmt.Errorf("capstore: /ingest: %w", err)
	}
	return res, nil
}

// ingest pushes with the client's retry policy. Re-delivery after an
// ambiguous failure is safe: the server's idempotency keys drop
// duplicates. Shedding honours the server's Retry-After (or the
// policy's backoff, whichever is longer); other errors retry only when
// the resilience taxonomy classifies them Retryable.
func (cl *Client) ingest(v url.Values, trace string, body []byte) (IngestResult, error) {
	res, err := cl.ingestOnce(v, trace, body)
	if err == nil || !cl.Retry.Enabled() {
		return res, err
	}
	sleep := cl.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	for attempt := 1; attempt < cl.Retry.MaxAttempts; attempt++ {
		delay := cl.Retry.Backoff(nil, attempt)
		var shed *ShedError
		if errors.As(err, &shed) {
			if shed.RetryAfter > delay {
				delay = shed.RetryAfter
			}
		} else if resilience.ClassifyError(err.Error()) == resilience.Terminal {
			return res, err
		}
		sleep(delay)
		res, err = cl.ingestOnce(v, trace, body)
		if err == nil {
			return res, nil
		}
	}
	return res, err
}

// encodeBatch renders captures as an NDJSON request body.
func encodeBatch(caps []*capture.Capture) ([]byte, error) {
	var buf bytes.Buffer
	for _, c := range caps {
		line, err := capturedb.Encode(c)
		if err != nil {
			return nil, err
		}
		buf.Write(line)
	}
	return buf.Bytes(), nil
}

// Record pushes one capture over /ingest (unordered mode). Re-delivery
// of the same share is idempotent server-side.
func (cl *Client) Record(c *capture.Capture) (IngestResult, error) {
	return cl.RecordBatch([]*capture.Capture{c})
}

// RecordBatch pushes captures over /ingest (unordered mode); they are
// applied in slice order with per-record idempotency.
func (cl *Client) RecordBatch(caps []*capture.Capture) (IngestResult, error) {
	return cl.RecordBatchTrace("", caps)
}

// RecordBatchTrace is RecordBatch carrying a propagated trace context
// (traceparent form; empty disables) — the replica fan-out path, where
// each per-node delivery continues the ring's ingest span.
func (cl *Client) RecordBatchTrace(trace string, caps []*capture.Capture) (IngestResult, error) {
	body, err := encodeBatch(caps)
	if err != nil {
		return IngestResult{}, err
	}
	return cl.ingest(nil, trace, body)
}

// RecordBatchAt pushes the ordered batch covering work items [at, at+n)
// — the fleet's commit path. caps may be shorter than n (failed or
// dead-lettered items produce no record) or empty (a pure skip marker
// advancing the commit cursor). The server commits ranges strictly in
// order; ErrIngestShed means the reorder buffer is full and the push
// should be retried after a short delay.
func (cl *Client) RecordBatchAt(at, n int64, caps []*capture.Capture) (IngestResult, error) {
	return cl.RecordBatchAtTrace("", at, n, caps)
}

// RecordBatchAtTrace is RecordBatchAt carrying a propagated trace
// context (traceparent form; empty disables) — the fleet worker's push
// path, which hands its push-span context to the store.
func (cl *Client) RecordBatchAtTrace(trace string, at, n int64, caps []*capture.Capture) (IngestResult, error) {
	body, err := encodeBatch(caps)
	if err != nil {
		return IngestResult{}, err
	}
	v := url.Values{}
	v.Set("at", strconv.FormatInt(at, 10))
	v.Set("n", strconv.FormatInt(n, 10))
	return cl.ingest(v, trace, body)
}

// RecordStream pushes a raw wire-format NDJSON stream over /ingest
// (unordered mode) without buffering it — the repair re-stream sink,
// fed directly from a peer's SegmentReader. No client-side retry: a
// one-shot reader cannot be replayed, so the caller owns recovery
// (re-delivery is idempotent server-side).
func (cl *Client) RecordStream(r io.Reader) (IngestResult, error) {
	var res IngestResult
	resp, err := cl.httpClient().Post(cl.BaseURL+"/ingest", "application/x-ndjson", r)
	if err != nil {
		return res, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 512)) //nolint:errcheck
		return res, &ShedError{RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After"))}
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return res, fmt.Errorf("capstore: /ingest: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return res, fmt.Errorf("capstore: /ingest: %w", err)
	}
	return res, nil
}

// CountShard runs the query server-side against one segment.
func (cl *Client) CountShard(shard int, q capturedb.Query) (int, error) {
	v := params(q, 0, 0)
	v.Set("shard", strconv.Itoa(shard))
	resp, err := cl.get("/count", v)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var out struct {
		Count int `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, fmt.Errorf("capstore: /count: %w", err)
	}
	return out.Count, nil
}

// Manifest fetches the server's per-segment content summary.
func (cl *Client) Manifest() (Manifest, error) {
	var m Manifest
	resp, err := cl.get("/manifest", nil)
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return m, fmt.Errorf("capstore: /manifest: %w", err)
	}
	return m, nil
}

// PrefixManifest fetches the manifest of shard's first n records —
// the repair loop's prefix-verification probe.
func (cl *Client) PrefixManifest(shard, n int) (SegmentManifest, error) {
	var m SegmentManifest
	v := url.Values{}
	v.Set("shard", strconv.Itoa(shard))
	v.Set("n", strconv.Itoa(n))
	resp, err := cl.get("/manifest", v)
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return m, fmt.Errorf("capstore: /manifest: %w", err)
	}
	return m, nil
}

// SegmentReader opens the raw wire-format stream of shard's records
// [from, current) — the repair re-stream. The caller must Close it.
// The bytes are directly acceptable to a peer's /ingest.
func (cl *Client) SegmentReader(shard, from int) (io.ReadCloser, error) {
	v := url.Values{}
	v.Set("shard", strconv.Itoa(shard))
	v.Set("from", strconv.Itoa(from))
	resp, err := cl.get("/segment", v)
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// QueryShard streams one segment's matches — the replicated read
// path's per-segment fan-out unit. Semantics otherwise match Query.
func (cl *Client) QueryShard(shard int, q capturedb.Query, limit, offset int, fn func(*capture.Capture) bool) error {
	v := params(q, limit, offset)
	v.Set("shard", strconv.Itoa(shard))
	resp, err := cl.get("/query", v)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	rr := capturedb.NewRecordReader(resp.Body)
	for {
		c, err := rr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if !fn(c) {
			return nil
		}
	}
}

// CompactResult is capd's /compact response: what one forced
// compaction pass packed and the store's resulting pack shape.
type CompactResult struct {
	PackedRecords int64 `json:"packed_records"`
	Packs         int   `json:"packs"`
	Compactions   int64 `json:"compactions"`
}

// Compact asks the server to fold every shard's tail into packs now —
// the admin trigger behind capring's fleet-wide compaction fan-out.
func (cl *Client) Compact() (CompactResult, error) {
	var res CompactResult
	resp, err := cl.httpClient().Post(cl.BaseURL+"/compact", "", nil)
	if err != nil {
		return res, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return res, fmt.Errorf("capstore: /compact: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return res, fmt.Errorf("capstore: /compact: %w", err)
	}
	return res, nil
}

// Stats fetches the server's store snapshot.
func (cl *Client) Stats() (Stats, error) {
	var st Stats
	resp, err := cl.get("/stats", nil)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("capstore: /stats: %w", err)
	}
	return st, nil
}
