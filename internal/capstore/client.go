package capstore

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/capture"
	"repro/internal/capturedb"
)

// Client runs queries against a live capd over HTTP, mirroring the
// local Store API so cmd/capq can target either interchangeably.
type Client struct {
	// BaseURL is the capd root, e.g. "http://127.0.0.1:8650".
	BaseURL string
	// HTTP defaults to http.DefaultClient.
	HTTP *http.Client
}

// NewClient returns a client for the capd at base.
func NewClient(base string) *Client {
	return &Client{BaseURL: strings.TrimRight(base, "/")}
}

func (cl *Client) httpClient() *http.Client {
	if cl.HTTP != nil {
		return cl.HTTP
	}
	return http.DefaultClient
}

// params encodes the shared Query type as URL parameters; a set upper
// bound is always sent explicitly so day-0 bounds survive the wire.
func params(q capturedb.Query, limit, offset int) url.Values {
	v := url.Values{}
	if q.Domain != "" {
		v.Set("domain", q.Domain)
	}
	if q.RequestHost != "" {
		v.Set("host", q.RequestHost)
	}
	if q.Vantage != "" {
		v.Set("vantage", q.Vantage)
	}
	if q.From > 0 {
		v.Set("from", strconv.Itoa(int(q.From)))
	}
	if upper, ok := q.Upper(); ok {
		v.Set("to", strconv.Itoa(int(upper)))
	}
	if q.IncludeFailed {
		v.Set("failed", "1")
	}
	if limit > 0 {
		v.Set("limit", strconv.Itoa(limit))
	}
	if offset > 0 {
		v.Set("offset", strconv.Itoa(offset))
	}
	return v
}

func (cl *Client) get(path string, v url.Values) (*http.Response, error) {
	u := cl.BaseURL + path
	if enc := v.Encode(); enc != "" {
		u += "?" + enc
	}
	resp, err := cl.httpClient().Get(u)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		return nil, fmt.Errorf("capstore: %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return resp, nil
}

// Query streams matches from /query to fn; returning false from fn
// stops early. limit and offset paginate server-side (0 limit means
// unlimited). A stream cut mid-record surfaces as an error
// (capturedb.ErrTruncated or a transport error), never as a clean end.
func (cl *Client) Query(q capturedb.Query, limit, offset int, fn func(*capture.Capture) bool) error {
	resp, err := cl.get("/query", params(q, limit, offset))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	rr := capturedb.NewRecordReader(resp.Body)
	for {
		c, err := rr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if !fn(c) {
			return nil
		}
	}
}

// Count runs the query server-side via /count.
func (cl *Client) Count(q capturedb.Query) (int, error) {
	resp, err := cl.get("/count", params(q, 0, 0))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var out struct {
		Count int `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, fmt.Errorf("capstore: /count: %w", err)
	}
	return out.Count, nil
}

// Health fetches /healthz — served outside the server's load-shedding
// limiter, so it answers even when queries are being shed. The
// Telemetry field is populated only when the server runs with metrics
// enabled.
func (cl *Client) Health() (Health, error) {
	var h Health
	resp, err := cl.get("/healthz", nil)
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return h, fmt.Errorf("capstore: /healthz: %w", err)
	}
	return h, nil
}

// Stats fetches the server's store snapshot.
func (cl *Client) Stats() (Stats, error) {
	var st Stats
	resp, err := cl.get("/stats", nil)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("capstore: /stats: %w", err)
	}
	return st, nil
}
