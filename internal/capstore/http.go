package capstore

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/capture"
	"repro/internal/capturedb"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/simtime"
)

// The paper's "custom query API" over HTTP, served by cmd/capd:
//
//	GET /query?domain=D&host=H&vantage=V&from=D1&to=D2&failed=1&limit=N&offset=M
//	    → streaming NDJSON, one capturedb wire-format record per line
//	GET /count?…same filters…   → {"count": N}
//	GET /stats                  → Stats JSON (shards, indexes, counters)
//
// from/to are simulation day numbers (simtime.Day); a present `to`
// parameter makes the upper bound explicit even for day 0.

// flushEvery is how many streamed rows go out between explicit
// http.Flusher flushes, so long queries stream instead of buffering.
const flushEvery = 256

// NewHandler exposes a store over HTTP.
func NewHandler(s *Store) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/count", s.handleCount)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/manifest", s.handleManifest)
	mux.HandleFunc("/segment", s.handleSegment)
	return mux
}

// ServeConfig parameterizes the degradation-hardened handler.
type ServeConfig struct {
	// MaxInFlight bounds concurrent query handling; excess load is
	// shed with 429 + Retry-After (default 64).
	MaxInFlight int
	// RequestTimeout bounds each admitted request via its context;
	// streaming queries are torn off mid-stream at the deadline rather
	// than buffered (default 30s, negative disables).
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies; the API is GET-only, so any
	// body is hostile (default 1 MiB).
	MaxBodyBytes int64
	// Registry, when non-nil, receives the limiter's admission metrics
	// (in-flight, shed). Mount obs.Handler on the same outer mux —
	// outside this handler's limiter — to scrape them.
	Registry *obs.Registry
	// Metrics, when non-nil, is the store's per-query recorder; its
	// latency histogram feeds the /healthz telemetry summary.
	Metrics *StoreMetrics
	// Now is the uptime clock for /healthz telemetry, injectable for
	// deterministic tests (default time.Now).
	Now func() time.Time
	// Ingester, when non-nil, contributes the ingest commit cursor and
	// counters to /healthz, so operators can compare the store cursor
	// against analyzed view lag without scraping /metrics.
	Ingester *Ingester
}

func (c ServeConfig) withDefaults() ServeConfig {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.RequestTimeout < 0 {
		c.RequestTimeout = 0
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Health is the /healthz payload: store and admission-queue state,
// plus a telemetry summary when the handler was built with metrics.
type Health struct {
	Status         string                  `json:"status"` // "ok" or "saturated"
	Records        int64                   `json:"records"`
	Segments       int                     `json:"segments"`
	TruncatedTails int64                   `json:"truncated_tails"`
	QueriesServed  int64                   `json:"queries_served"`
	Limiter        resilience.LimiterStats `json:"limiter"`
	// Ingest reports the ingest path (commit cursor, accepted counts)
	// when the node serves /ingest.
	Ingest    *IngestStats     `json:"ingest,omitempty"`
	Telemetry *HealthTelemetry `json:"telemetry,omitempty"`
}

// HealthTelemetry summarizes the live registry for health probes that
// don't want to parse a full /metrics exposition.
type HealthTelemetry struct {
	// UptimeSeconds counts from handler construction.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// SlowestQueryBuckets are the highest-latency non-empty buckets of
	// the query-latency histogram, slowest first, at most three.
	SlowestQueryBuckets []QueryBucket `json:"slowest_query_buckets,omitempty"`
}

// QueryBucket is one histogram bucket in the health summary.
type QueryBucket struct {
	// LE is the bucket's inclusive upper bound in seconds ("+Inf" for
	// the overflow bucket).
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// slowestBuckets converts a cumulative snapshot back to per-bucket
// counts and returns the n highest non-empty ones, slowest first.
func slowestBuckets(snap obs.HistogramSnapshot, n int) []QueryBucket {
	counts := make([]int64, len(snap.Buckets))
	var prev int64
	for i, b := range snap.Buckets {
		counts[i] = b.Count - prev
		prev = b.Count
	}
	var out []QueryBucket
	for i := len(counts) - 1; i >= 0 && len(out) < n; i-- {
		if counts[i] > 0 {
			out = append(out, QueryBucket{LE: snap.Buckets[i].Label, Count: counts[i]})
		}
	}
	return out
}

// NewResilientHandler exposes the store with graceful degradation: a
// concurrency limiter shedding load with 429 + Retry-After,
// per-request timeouts, a request-body cap, and a /healthz endpoint
// (outside the limiter — health probes must not be shed) reporting
// store and queue state.
func NewResilientHandler(s *Store, cfg ServeConfig) http.Handler {
	cfg = cfg.withDefaults()
	lim := resilience.NewHTTPLimiter(resilience.HTTPLimiterConfig{
		MaxInFlight: cfg.MaxInFlight,
		Timeout:     cfg.RequestTimeout,
	})
	lim.RegisterMetrics(cfg.Registry)
	started := cfg.Now()
	core := http.MaxBytesHandler(NewHandler(s), cfg.MaxBodyBytes)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		st := s.Stats()
		h := Health{
			Status:         "ok",
			Records:        st.Records,
			Segments:       len(st.Shards),
			TruncatedTails: st.TruncatedTails,
			QueriesServed:  st.QueriesServed,
			Limiter:        lim.Stats(),
		}
		if lim.Saturated() {
			h.Status = "saturated"
		}
		if cfg.Ingester != nil {
			ist := cfg.Ingester.Stats()
			h.Ingest = &ist
		}
		if cfg.Metrics != nil {
			h.Telemetry = &HealthTelemetry{
				UptimeSeconds:       cfg.Now().Sub(started).Seconds(),
				SlowestQueryBuckets: slowestBuckets(cfg.Metrics.QuerySeconds.Snapshot(), 3),
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(h) //nolint:errcheck
	})
	mux.Handle("/", lim.Wrap(core))
	return mux
}

// parseShard reads an optional shard=N parameter; -1 means absent.
func parseShard(values url.Values) (int, error) {
	v := values.Get("shard")
	if v == "" {
		return -1, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return -1, fmt.Errorf("bad shard=%q", v)
	}
	return n, nil
}

// ParseHTTPQuery translates URL parameters into the shared Query type
// plus pagination bounds — exported so the replicated front end
// (internal/capstore/replica) speaks the exact same query dialect.
func ParseHTTPQuery(values url.Values) (q capturedb.Query, limit, offset int, err error) {
	return parseHTTPQuery(values)
}

// parseHTTPQuery translates URL parameters into the shared Query type
// plus pagination bounds.
func parseHTTPQuery(values url.Values) (q capturedb.Query, limit, offset int, err error) {
	q.Domain = values.Get("domain")
	q.RequestHost = values.Get("host")
	q.Vantage = values.Get("vantage")
	switch v := values.Get("failed"); v {
	case "", "0", "false":
	case "1", "true":
		q.IncludeFailed = true
	default:
		return q, 0, 0, fmt.Errorf("bad failed=%q", v)
	}
	atoi := func(key string) (int, bool, error) {
		v := values.Get(key)
		if v == "" {
			return 0, false, nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, false, fmt.Errorf("bad %s=%q", key, v)
		}
		return n, true, nil
	}
	if n, ok, aerr := atoi("from"); aerr != nil {
		return q, 0, 0, aerr
	} else if ok {
		q.From = simtime.Day(n)
	}
	if n, ok, aerr := atoi("to"); aerr != nil {
		return q, 0, 0, aerr
	} else if ok {
		q.To, q.HasTo = simtime.Day(n), true
	}
	if n, _, aerr := atoi("limit"); aerr != nil {
		return q, 0, 0, aerr
	} else if n < 0 {
		return q, 0, 0, fmt.Errorf("bad limit=%d", n)
	} else {
		limit = n
	}
	if n, _, aerr := atoi("offset"); aerr != nil {
		return q, 0, 0, aerr
	} else if n < 0 {
		return q, 0, 0, fmt.Errorf("bad offset=%d", n)
	} else {
		offset = n
	}
	return q, limit, offset, nil
}

// handleQuery streams matches as NDJSON with limit/offset pagination.
// A shard=N parameter restricts the query to one segment (offset then
// paginates within that segment's stream) — the replicated read path's
// unit of fan-out.
func (s *Store) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, limit, offset, err := parseHTTPQuery(r.URL.Query())
	if err != nil {
		http.Error(w, "capstore: "+err.Error(), http.StatusBadRequest)
		return
	}
	shard, err := parseShard(r.URL.Query())
	if err != nil {
		http.Error(w, "capstore: "+err.Error(), http.StatusBadRequest)
		return
	}
	run := s.Query
	if shard >= 0 {
		if shard >= len(s.shards) {
			http.Error(w, fmt.Sprintf("capstore: no shard %d (store has %d)", shard, len(s.shards)), http.StatusBadRequest)
			return
		}
		run = func(q capturedb.Query, fn func(*capture.Capture) bool) error {
			return s.QueryShard(shard, q, fn)
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	ctx := r.Context()
	sent, seen := 0, 0
	var werr error
	qerr := run(q, func(c *capture.Capture) bool {
		seen++
		// Honour the per-request deadline/cancellation between rows so
		// long streams degrade by being cut, not by buffering forever.
		if (seen-1)%64 == 0 {
			if err := ctx.Err(); err != nil {
				werr = err
				return false
			}
		}
		if seen <= offset {
			return true
		}
		line, err := capturedb.Encode(c)
		if err == nil {
			_, err = w.Write(line)
		}
		if err != nil {
			werr = err
			return false
		}
		sent++
		if flusher != nil && sent%flushEvery == 0 {
			flusher.Flush()
		}
		return limit == 0 || sent < limit
	})
	if qerr != nil && sent == 0 && werr == nil {
		http.Error(w, "capstore: "+qerr.Error(), http.StatusInternalServerError)
		return
	}
	if werr != nil && ctx.Err() != nil && sent == 0 {
		// Deadline hit before the first row went out: a clean 503.
		http.Error(w, "capstore: request timed out", http.StatusServiceUnavailable)
		return
	}
	if ((qerr != nil && werr == nil) || (werr != nil && ctx.Err() != nil)) && sent > 0 {
		// Mid-stream failure or timeout: the status line is gone; cut
		// the connection so the client sees a torn stream, not a clean
		// end.
		panic(http.ErrAbortHandler)
	}
}

// handleCount answers {"count": N}; shard=N restricts to one segment.
func (s *Store) handleCount(w http.ResponseWriter, r *http.Request) {
	q, _, _, err := parseHTTPQuery(r.URL.Query())
	if err != nil {
		http.Error(w, "capstore: "+err.Error(), http.StatusBadRequest)
		return
	}
	shard, err := parseShard(r.URL.Query())
	if err != nil {
		http.Error(w, "capstore: "+err.Error(), http.StatusBadRequest)
		return
	}
	var n int
	if shard >= 0 {
		if shard >= len(s.shards) {
			http.Error(w, fmt.Sprintf("capstore: no shard %d (store has %d)", shard, len(s.shards)), http.StatusBadRequest)
			return
		}
		err = s.QueryShard(shard, q, func(*capture.Capture) bool { n++; return true })
	} else {
		n, err = s.Count(q)
	}
	if err != nil {
		http.Error(w, "capstore: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]int{"count": n}) //nolint:errcheck
}

// handleManifest answers the store's per-segment content summary.
// With shard=N&n=M it answers the prefix manifest of shard N's first
// M records — the repair loop's prefix-verification probe.
func (s *Store) handleManifest(w http.ResponseWriter, r *http.Request) {
	values := r.URL.Query()
	shard, err := parseShard(values)
	if err != nil {
		http.Error(w, "capstore: "+err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if shard < 0 {
		m, err := s.Manifest()
		if err != nil {
			http.Error(w, "capstore: "+err.Error(), http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(m) //nolint:errcheck
		return
	}
	n, err := strconv.Atoi(values.Get("n"))
	if err != nil || n < 0 {
		http.Error(w, fmt.Sprintf("capstore: bad n=%q", values.Get("n")), http.StatusBadRequest)
		return
	}
	sm, err := s.PrefixManifest(shard, n)
	if err != nil {
		http.Error(w, "capstore: "+err.Error(), http.StatusBadRequest)
		return
	}
	json.NewEncoder(w).Encode(sm) //nolint:errcheck
}

// handleSegment streams the raw wire-format bytes of one segment's
// records [from, current) — the repair re-stream source. The output
// is directly acceptable to a peer's /ingest.
func (s *Store) handleSegment(w http.ResponseWriter, r *http.Request) {
	values := r.URL.Query()
	shard, err := parseShard(values)
	if err != nil || shard < 0 {
		http.Error(w, "capstore: /segment needs shard=N", http.StatusBadRequest)
		return
	}
	from := 0
	if v := values.Get("from"); v != "" {
		if from, err = strconv.Atoi(v); err != nil || from < 0 {
			http.Error(w, fmt.Sprintf("capstore: bad from=%q", v), http.StatusBadRequest)
			return
		}
	}
	// Validate bounds before the status line goes out, so parameter
	// errors are clean 400s rather than torn streams.
	if shard >= len(s.shards) {
		http.Error(w, fmt.Sprintf("capstore: no shard %d (store has %d)", shard, len(s.shards)), http.StatusBadRequest)
		return
	}
	if count, _, err := s.segmentRange(shard); err != nil {
		http.Error(w, "capstore: "+err.Error(), http.StatusInternalServerError)
		return
	} else if from > count {
		http.Error(w, fmt.Sprintf("capstore: %s has %d records, stream from %d requested", segName(shard), count, from), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if _, _, err := s.StreamShard(shard, from, w); err != nil {
		// The status line is gone; tear the connection so the client
		// sees a torn stream rather than a clean short read.
		panic(http.ErrAbortHandler)
	}
}

// handleStats answers the store snapshot.
func (s *Store) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats()) //nolint:errcheck
}
