// Package cmps is the registry of the six Consent Management Providers
// the paper studies: "the five major players already identified by
// Nouwens et al. and LiveRamp, a new entrant that launched in December
// 2019" (Section 3.2). It holds each provider's identity, the unique
// indicator hostname of Table A.2, and market-entry metadata shared by
// the simulator, the detector, and the analyses.
package cmps

import (
	"time"

	"repro/internal/simtime"
)

// ID identifies a CMP. The zero value None means "no CMP".
type ID int

const (
	None ID = iota
	OneTrust
	Quantcast
	TrustArc
	Cookiebot
	LiveRamp
	Crownpeak
	numIDs int = iota
)

// All returns the six studied CMPs in the paper's reporting order
// (Table 1 rows).
func All() []ID {
	return []ID{OneTrust, Quantcast, TrustArc, Cookiebot, LiveRamp, Crownpeak}
}

// Count is the number of studied CMPs.
const Count = 6

var names = [numIDs]string{"none", "OneTrust", "Quantcast", "TrustArc", "Cookiebot", "LiveRamp", "Crownpeak"}

func (id ID) String() string {
	if int(id) < len(names) {
		return names[id]
	}
	return "invalid"
}

// Valid reports whether id names one of the six studied CMPs.
func (id ID) Valid() bool { return id > None && int(id) < numIDs }

// indicator hostnames, verbatim from Table A.2. Each consent dialog
// framework performs HTTP requests to a unique hostname on page load,
// which is the paper's robust detection indicator.
var hostnames = [numIDs]string{
	"",
	"cdn.cookielaw.org",
	"quantcast.mgr.consensu.org",
	"consent.trustarc.com",
	"consent.cookiebot.com",
	"cmp.choice.faktor.io",
	"iabmap.evidon.com",
}

// Hostname returns the CMP's unique indicator hostname (Table A.2).
func (id ID) Hostname() string {
	if int(id) < len(hostnames) {
		return hostnames[id]
	}
	return ""
}

// ByHostname resolves an indicator hostname back to its CMP, returning
// None if the hostname belongs to no studied CMP.
func ByHostname(host string) ID {
	for i := 1; i < numIDs; i++ {
		if hostnames[i] == host {
			return ID(i)
		}
	}
	return None
}

// Launch returns the day the CMP product became available. Before this
// day the simulator assigns it to no website. All but LiveRamp predate
// the observation window.
func (id ID) Launch() simtime.Day {
	if id == LiveRamp {
		return simtime.Date(2019, time.December, 1)
	}
	return 0
}

// ImplementsTCF reports whether the CMP implements the IAB TCF (stores
// the global consensu.org consent cookie). TrustArc's product is
// tailored to the CCPA and, like several US-market CMPs, does not
// consistently implement the TCF (Section 2.2).
func (id ID) ImplementsTCF() bool {
	switch id {
	case Quantcast, Cookiebot, LiveRamp, OneTrust:
		return true
	default:
		return false
	}
}
