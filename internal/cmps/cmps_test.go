package cmps

import (
	"testing"

	"repro/internal/simtime"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != Count {
		t.Fatalf("All() = %d, want %d", len(all), Count)
	}
	seenHost := map[string]bool{}
	for _, c := range all {
		if !c.Valid() {
			t.Errorf("%v invalid", c)
		}
		if c.String() == "" || c.String() == "none" {
			t.Errorf("%v has no name", c)
		}
		h := c.Hostname()
		if h == "" || seenHost[h] {
			t.Errorf("%v hostname %q missing or duplicated", c, h)
		}
		seenHost[h] = true
		if ByHostname(h) != c {
			t.Errorf("reverse lookup broken for %v", c)
		}
	}
	if None.Valid() || ID(99).Valid() {
		t.Error("None and out-of-range IDs must be invalid")
	}
	if None.Hostname() != "" || ID(99).Hostname() != "" {
		t.Error("invalid IDs must have no hostname")
	}
	if ID(99).String() != "invalid" {
		t.Error("out-of-range name")
	}
}

func TestLiveRampLaunch(t *testing.T) {
	// LiveRamp is "a new entrant that launched in December 2019".
	if LiveRamp.Launch().String() != "2019-12-01" {
		t.Errorf("LiveRamp launch = %s", LiveRamp.Launch())
	}
	for _, c := range []ID{OneTrust, Quantcast, TrustArc, Cookiebot, Crownpeak} {
		if c.Launch() != simtime.Day(0) {
			t.Errorf("%v must predate the window", c)
		}
	}
}

func TestImplementsTCF(t *testing.T) {
	if !Quantcast.ImplementsTCF() || TrustArc.ImplementsTCF() {
		t.Error("TCF flags wrong (TrustArc's product targets the CCPA)")
	}
}
