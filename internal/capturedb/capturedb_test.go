package capturedb

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/capture"
	"repro/internal/simtime"
	"repro/internal/webworld"
)

func sample(domain string, day simtime.Day, host string) *capture.Capture {
	return &capture.Capture{
		SeedURL:     "https://www." + domain + "/",
		FinalURL:    "https://www." + domain + "/",
		FinalDomain: domain,
		Day:         day,
		Vantage:     capture.EUCloud,
		Config:      "default",
		Status:      200,
		Requests: []capture.Request{
			{Host: "www." + domain, Path: "/", Status: 200, BytesRaw: 1000, BytesCompressed: 1000},
			{Host: host, Path: "/cmp.js", Status: 200, BytesRaw: 500, BytesCompressed: 500},
		},
		Cookies: []webworld.Cookie{{Domain: domain, Name: "session", Value: "abc|123"}},
		Storage: []webworld.StorageRecord{
			{Kind: webworld.LocalStorage, Origin: "www." + domain, Key: "prefs"},
			{Kind: webworld.IndexedDB, Origin: "www.google-analytics.com", Key: "_ga_client", Identifying: true},
		},
		ScreenshotText: "We value your privacy",
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	orig := sample("a.com", 100, "cdn.cookielaw.org")
	w.Record(orig)
	w.Record(&capture.Capture{SeedURL: "x", Failed: true, Error: "connection refused", Vantage: capture.USCloud})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 2 {
		t.Errorf("Len = %d", w.Len())
	}

	var got []*capture.Capture
	err := Scan(bytes.NewReader(buf.Bytes()), Query{IncludeFailed: true}, func(c *capture.Capture) bool {
		got = append(got, c)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("scanned %d", len(got))
	}
	c := got[0]
	if c.FinalDomain != "a.com" || c.Day != 100 || c.Vantage.Name != capture.EUCloud.Name ||
		c.Vantage.Geo != webworld.GeoEU || !c.Vantage.Cloud {
		t.Errorf("capture: %+v", c)
	}
	if len(c.Requests) != 2 || c.Requests[1].Host != "cdn.cookielaw.org" || c.Requests[1].BytesRaw != 500 {
		t.Errorf("requests: %+v", c.Requests)
	}
	if len(c.Cookies) != 1 || c.Cookies[0].Name != "session" || c.Cookies[0].Value != "abc|123" {
		t.Errorf("cookies: %+v", c.Cookies)
	}
	if c.ScreenshotText != "We value your privacy" {
		t.Errorf("screenshot: %q", c.ScreenshotText)
	}
	if len(c.Storage) != 2 || c.Storage[0].Kind != webworld.LocalStorage ||
		!c.Storage[1].Identifying || c.Storage[1].Key != "_ga_client" {
		t.Errorf("storage: %+v", c.Storage)
	}
	if !got[1].Failed || got[1].Error != "connection refused" {
		t.Errorf("failed capture: %+v", got[1])
	}
}

func TestQueryFilters(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Record(sample("a.com", 100, "cdn.cookielaw.org"))
	w.Record(sample("a.com", 200, "consent.cookiebot.com"))
	w.Record(sample("b.com", 150, "cdn.cookielaw.org"))
	failed := sample("c.com", 150, "cdn.cookielaw.org")
	failed.Failed = true
	w.Record(failed)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	count := func(q Query) int {
		n, err := Count(bytes.NewReader(data), q)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	if got := count(Query{}); got != 3 {
		t.Errorf("unfiltered (no failed) = %d", got)
	}
	if got := count(Query{IncludeFailed: true}); got != 4 {
		t.Errorf("with failed = %d", got)
	}
	if got := count(Query{Domain: "a.com"}); got != 2 {
		t.Errorf("by domain = %d", got)
	}
	if got := count(Query{From: 120, To: 180}); got != 1 {
		t.Errorf("by day range = %d", got)
	}
	if got := count(Query{To: 150}); got != 2 {
		t.Errorf("upper bound only = %d", got)
	}
	if got := count(Query{RequestHost: "consent.cookiebot.com"}); got != 1 {
		t.Errorf("by request host = %d", got)
	}
	if got := count(Query{Vantage: "us-cloud"}); got != 0 {
		t.Errorf("by vantage = %d", got)
	}
}

// TestQueryDayZeroBound pins the HasTo fix: a query bounded to day 0
// must not silently become unbounded.
func TestQueryDayZeroBound(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Record(sample("a.com", 0, "cdn.cookielaw.org"))
	w.Record(sample("a.com", 1, "cdn.cookielaw.org"))
	w.Record(sample("a.com", 2, "cdn.cookielaw.org"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	n, err := Count(bytes.NewReader(data), Query{From: 0, To: 0, HasTo: true})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("day-0-only query matched %d, want 1", n)
	}
	// Without HasTo, To == 0 stays unbounded (legacy zero value).
	n, err = Count(bytes.NewReader(data), Query{From: 0, To: 0})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("unbounded query matched %d, want 3", n)
	}
	if upper, ok := (&Query{To: 5}).Upper(); !ok || upper != 5 {
		t.Errorf("Upper() with To>0 = %d,%v", upper, ok)
	}
	if _, ok := (&Query{}).Upper(); ok {
		t.Error("zero query must be unbounded")
	}
}

// TestScanTruncated checks torn-write recovery: all complete records
// are yielded, then ErrTruncated is surfaced.
func TestScanTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Record(sample("a.com", 10, "cdn.cookielaw.org"))
	w.Record(sample("b.com", 20, "cdn.cookielaw.org"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	torn := whole[:len(whole)-7] // cut the final record mid-JSON

	var got []*capture.Capture
	err := Scan(bytes.NewReader(torn), Query{}, func(c *capture.Capture) bool {
		got = append(got, c)
		return true
	})
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if len(got) != 1 || got[0].FinalDomain != "a.com" {
		t.Errorf("complete records before the tear: %+v", got)
	}

	// RecordReader reports the intact prefix length for repair.
	rr := NewRecordReader(bytes.NewReader(torn))
	for {
		if _, err := rr.Next(); err != nil {
			break
		}
	}
	firstLen := int64(bytes.IndexByte(whole, '\n') + 1)
	if rr.Valid() != firstLen {
		t.Errorf("Valid() = %d, want %d", rr.Valid(), firstLen)
	}

	// A clean final line without trailing newline is still accepted.
	n, err := Count(bytes.NewReader(whole[:len(whole)-1]), Query{})
	if err != nil || n != 2 {
		t.Errorf("unterminated clean tail: n=%d err=%v", n, err)
	}
}

func TestScanEarlyStop(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 10; i++ {
		w.Record(sample("a.com", simtime.Day(i), "cdn.cookielaw.org"))
	}
	w.Close()
	n := 0
	err := Scan(bytes.NewReader(buf.Bytes()), Query{}, func(*capture.Capture) bool {
		n++
		return n < 3
	})
	if err != nil || n != 3 {
		t.Errorf("early stop: n=%d err=%v", n, err)
	}
}

func TestScanMalformed(t *testing.T) {
	input := "{\"d\":\"a.com\"}\nnot json\n"
	err := Scan(strings.NewReader(input), Query{IncludeFailed: true}, func(*capture.Capture) bool { return true })
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("want line-2 error, got %v", err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "captures.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Record(sample("a.com", 5, "cdn.cookielaw.org"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := ScanFile(path, Query{}, func(*capture.Capture) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("n = %d", n)
	}
	if err := ScanFile(filepath.Join(t.TempDir(), "missing.jsonl"), Query{}, nil); err == nil {
		t.Error("missing file must error")
	}
}

func TestWriterConcurrent(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				w.Record(sample("a.com", simtime.Day(j), "cdn.cookielaw.org"))
			}
		}(i)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := Count(bytes.NewReader(buf.Bytes()), Query{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 400 {
		t.Errorf("count = %d, want 400", n)
	}
}
