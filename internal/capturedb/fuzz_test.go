package capturedb

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/capture"
)

// FuzzScan hardens the JSONL reader: arbitrary input must never panic,
// and valid lines it accepts must survive a write-read round trip.
func FuzzScan(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Record(sample("a.com", 100, "cdn.cookielaw.org"))
	w.Close()
	f.Add(buf.String())
	f.Add(`{"d":"a.com","t":5,"st":200}`)
	f.Add(`{"r":[["h","/",200,"not-a-number"]]}`)
	f.Add(`{"ck":["no-pipes"]}`)
	f.Add(`{"sto":[[1,"o","k",true]]}`)
	f.Add("not json at all")
	// Torn-write shapes: records cut at segment boundaries that the
	// sharded store must survive on reopen.
	full := buf.String()
	f.Add(full + full[:len(full)/2])       // complete record + truncated tail
	f.Add(full[:len(full)-2])              // final quote+newline torn off
	f.Add(full + `{"d":"b.com","t`)        // tear inside a JSON key
	f.Add(full + full + full[:12])         // two records + short tail
	f.Add(`{"d":"a.com","st":200}` + "\n") // minimal record, clean boundary
	f.Fuzz(func(t *testing.T, input string) {
		var collected []*capture.Capture
		err := Scan(strings.NewReader(input), Query{IncludeFailed: true}, func(c *capture.Capture) bool {
			collected = append(collected, c)
			return true
		})
		if err != nil {
			return
		}
		// Anything accepted must round-trip through the writer.
		var out bytes.Buffer
		w := NewWriter(&out)
		for _, c := range collected {
			w.Record(c)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("round-trip write failed: %v", err)
		}
		n, err := Count(bytes.NewReader(out.Bytes()), Query{IncludeFailed: true})
		if err != nil {
			t.Fatalf("round-trip read failed: %v", err)
		}
		if n != len(collected) {
			t.Fatalf("round-trip count %d != %d", n, len(collected))
		}
	})
}
