// Package capturedb persists crawl captures as line-delimited JSON and
// supports filtered scans — the reproduction's stand-in for Netograph's
// central capture database with its custom query API ("All crawl data
// is stored in a central database, which can be queried using a custom
// API", Section 3.2). The sharded, indexed store built on this wire
// format lives in internal/capstore.
//
// The on-disk schema uses short field names: the paper's platform
// stores 161 M captures, so encoding size matters more than
// readability.
package capturedb

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/capture"
	"repro/internal/simtime"
	"repro/internal/webworld"
)

// rec is the wire schema.
type rec struct {
	Seed    string   `json:"s"`
	Final   string   `json:"f"`
	Domain  string   `json:"d"`
	Day     int      `json:"t"`
	Vantage string   `json:"v"`
	Geo     int      `json:"g"`
	Cloud   bool     `json:"c,omitempty"`
	Config  string   `json:"cfg,omitempty"`
	Status  int      `json:"st"`
	Reqs    [][4]any `json:"r,omitempty"`   // [host, path, status, bytesRaw]
	Cookies []string `json:"ck,omitempty"`  // "domain|name|value"
	Storage [][4]any `json:"sto,omitempty"` // [kind, origin, key, identifying]
	Shot    string   `json:"sh,omitempty"`
	Timeout bool     `json:"to,omitempty"`
	Failed  bool     `json:"x,omitempty"`
	Err     string   `json:"e,omitempty"`
}

func toRec(c *capture.Capture) rec {
	r := rec{
		Seed: c.SeedURL, Final: c.FinalURL, Domain: c.FinalDomain,
		Day: int(c.Day), Vantage: c.Vantage.Name, Geo: int(c.Vantage.Geo),
		Cloud: c.Vantage.Cloud, Config: c.Config, Status: c.Status,
		Shot: c.ScreenshotText, Timeout: c.TimedOut, Failed: c.Failed, Err: c.Error,
	}
	for _, q := range c.Requests {
		r.Reqs = append(r.Reqs, [4]any{q.Host, q.Path, q.Status, q.BytesRaw})
	}
	for _, ck := range c.Cookies {
		r.Cookies = append(r.Cookies, ck.Domain+"|"+ck.Name+"|"+ck.Value)
	}
	for _, sr := range c.Storage {
		r.Storage = append(r.Storage, [4]any{int(sr.Kind), sr.Origin, sr.Key, sr.Identifying})
	}
	return r
}

func (r *rec) capture() (*capture.Capture, error) {
	c := &capture.Capture{
		SeedURL: r.Seed, FinalURL: r.Final, FinalDomain: r.Domain,
		Day: simtime.Day(r.Day),
		Vantage: capture.Vantage{
			Name: r.Vantage, Geo: webworld.Geo(r.Geo), Cloud: r.Cloud,
		},
		Config: r.Config, Status: r.Status, ScreenshotText: r.Shot,
		TimedOut: r.Timeout, Failed: r.Failed, Error: r.Err,
	}
	for _, q := range r.Reqs {
		host, ok1 := q[0].(string)
		path, ok2 := q[1].(string)
		status, ok3 := q[2].(float64)
		size, ok4 := q[3].(float64)
		if !ok1 || !ok2 || !ok3 || !ok4 {
			return nil, errors.New("capturedb: malformed request tuple")
		}
		c.Requests = append(c.Requests, capture.Request{
			Host: host, Path: path, Status: int(status),
			BytesRaw: int(size), BytesCompressed: int(size),
		})
	}
	for _, s := range r.Cookies {
		var ck webworld.Cookie
		n := 0
		for i := 0; i < len(s) && n < 2; i++ {
			if s[i] == '|' {
				if n == 0 {
					ck.Domain = s[:i]
					s = s[i+1:]
					i = -1
				} else {
					ck.Name = s[:i]
					ck.Value = s[i+1:]
				}
				n++
			}
		}
		if n < 2 {
			return nil, errors.New("capturedb: malformed cookie")
		}
		c.Cookies = append(c.Cookies, ck)
	}
	for _, s := range r.Storage {
		kind, ok1 := s[0].(float64)
		origin, ok2 := s[1].(string)
		key, ok3 := s[2].(string)
		identifying, ok4 := s[3].(bool)
		if !ok1 || !ok2 || !ok3 || !ok4 {
			return nil, errors.New("capturedb: malformed storage tuple")
		}
		c.Storage = append(c.Storage, webworld.StorageRecord{
			Kind: webworld.StorageKind(kind), Origin: origin, Key: key, Identifying: identifying,
		})
	}
	return c, nil
}

// Encode renders one capture as a wire-format line, including the
// trailing newline, so other stores (capstore's segment files) can
// reuse the framing byte-for-byte.
func Encode(c *capture.Capture) ([]byte, error) {
	data, err := json.Marshal(toRec(c))
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Decode parses one wire-format line (with or without the trailing
// newline) back into a capture.
func Decode(line []byte) (*capture.Capture, error) {
	var r rec
	if err := json.Unmarshal(line, &r); err != nil {
		return nil, err
	}
	return r.capture()
}

// Writer appends captures to a JSONL stream. It implements
// capture.Sink and is safe for concurrent use; the first write error
// is retained and returned by Close.
type Writer struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	c   io.Closer
	n   int64
	err error
}

// NewWriter wraps an io.Writer (Closer optional).
func NewWriter(w io.Writer) *Writer {
	wr := &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		wr.c = c
	}
	return wr
}

// Create opens path for writing, truncating any existing file.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewWriter(f), nil
}

// Record implements capture.Sink.
func (w *Writer) Record(c *capture.Capture) {
	line, err := Encode(c)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	if err != nil {
		w.err = err
		return
	}
	if _, err := w.bw.Write(line); err != nil {
		w.err = err
		return
	}
	w.n++
}

// Len returns the number of records written.
func (w *Writer) Len() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Close flushes and closes the stream, returning the first error
// encountered during writing.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.bw.Flush(); err != nil && w.err == nil {
		w.err = err
	}
	if w.c != nil {
		if err := w.c.Close(); err != nil && w.err == nil {
			w.err = err
		}
	}
	return w.err
}

// Query filters a scan. Zero values match everything.
type Query struct {
	// Domain restricts to one final registrable domain.
	Domain string
	// From/To bound the capture day, inclusive. The upper bound is
	// active when HasTo is set or To > 0; a query for day 0 only is
	// therefore Query{To: 0, HasTo: true}.
	From, To simtime.Day
	// HasTo makes the To bound explicit even when To == 0.
	HasTo bool
	// Vantage restricts to one vantage name.
	Vantage string
	// RequestHost restricts to captures that logged a request to the
	// host (e.g. a CMP indicator hostname).
	RequestHost string
	// IncludeFailed also yields failed captures.
	IncludeFailed bool
}

// Upper returns the inclusive upper day bound and whether one is set.
func (q *Query) Upper() (simtime.Day, bool) {
	return q.To, q.HasTo || q.To > 0
}

// MatchMeta applies only the filters covered by per-record index
// metadata — the day bounds and the failed flag — so an indexed store
// can discard a record without decoding it.
func (q *Query) MatchMeta(day simtime.Day, failed bool) bool {
	if failed && !q.IncludeFailed {
		return false
	}
	upper, ok := q.Upper()
	return day >= q.From && (!ok || day <= upper)
}

// Match reports whether c satisfies every filter of q.
func (q *Query) Match(c *capture.Capture) bool {
	if c.Failed && !q.IncludeFailed {
		return false
	}
	if q.Domain != "" && c.FinalDomain != q.Domain {
		return false
	}
	if upper, ok := q.Upper(); c.Day < q.From || (ok && c.Day > upper) {
		return false
	}
	if q.Vantage != "" && c.Vantage.Name != q.Vantage {
		return false
	}
	if q.RequestHost != "" {
		found := false
		for _, r := range c.Requests {
			if r.Host == q.RequestHost {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// ErrTruncated marks a stream whose final record was cut short by a
// torn write (crash mid-append): every complete record before it has
// already been yielded. Callers test with errors.Is.
var ErrTruncated = errors.New("capturedb: truncated final record")

// RecordReader iterates a JSONL capture stream record by record,
// tracking byte offsets so indexed stores can address records inside
// segment files. A final line without a terminating newline that does
// not parse is reported as ErrTruncated; Valid() then gives the byte
// length of the intact prefix, suitable for os.File.Truncate repair.
type RecordReader struct {
	br    *bufio.Reader
	off   int64 // offset of the next unread record
	valid int64 // end offset of the last complete record
	line  int
	done  bool
}

// NewRecordReader wraps r.
func NewRecordReader(r io.Reader) *RecordReader {
	return &RecordReader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Offset returns the byte offset at which the next record starts.
func (rr *RecordReader) Offset() int64 { return rr.off }

// Valid returns the end offset of the last complete record read.
func (rr *RecordReader) Valid() int64 { return rr.valid }

// Line returns the 1-based line number of the last record returned.
func (rr *RecordReader) Line() int { return rr.line }

// Next returns the next capture. It returns io.EOF at a clean end of
// stream, ErrTruncated (wrapped) for a torn final line, and a
// line-numbered parse error for malformed complete lines.
func (rr *RecordReader) Next() (*capture.Capture, error) {
	if rr.done {
		return nil, io.EOF
	}
	data, err := rr.br.ReadBytes('\n')
	if err != nil && err != io.EOF {
		return nil, err
	}
	if len(data) == 0 {
		rr.done = true
		return nil, io.EOF
	}
	terminated := data[len(data)-1] == '\n'
	rr.line++
	c, derr := Decode(data)
	if derr != nil {
		if !terminated {
			// Torn write: an unterminated, unparseable tail.
			rr.done = true
			return nil, fmt.Errorf("line %d (offset %d): %w", rr.line, rr.off, ErrTruncated)
		}
		return nil, fmt.Errorf("capturedb: line %d: %w", rr.line, derr)
	}
	rr.off += int64(len(data))
	rr.valid = rr.off
	if !terminated {
		rr.done = true
	}
	return c, nil
}

// Scan streams matching captures to fn; returning false from fn stops
// the scan early. Malformed complete lines abort with an error that
// names the line number; a crash-truncated final line yields all
// complete records first and then returns ErrTruncated (wrapped).
func Scan(r io.Reader, q Query, fn func(*capture.Capture) bool) error {
	rr := NewRecordReader(r)
	for {
		c, err := rr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if !q.Match(c) {
			continue
		}
		if !fn(c) {
			return nil
		}
	}
}

// ScanFile opens path and scans it.
func ScanFile(path string, q Query, fn func(*capture.Capture) bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Scan(f, q, fn)
}

// Count returns the number of matches.
func Count(r io.Reader, q Query) (int, error) {
	n := 0
	err := Scan(r, q, func(*capture.Capture) bool { n++; return true })
	return n, err
}
