package analysis

import (
	"testing"

	"repro/internal/capture"
	"repro/internal/cmps"
	"repro/internal/detect"
	"repro/internal/interp"
	"repro/internal/simtime"
	"repro/internal/toplist"
)

// fakePresence builds a PresenceDB directly from interval maps.
func fakePresence(m map[string][]interp.Interval) *PresenceDB {
	return &PresenceDB{intervals: m}
}

func end() simtime.Day { return simtime.Day(simtime.NumDays) }

func TestPresenceDB(t *testing.T) {
	det := detect.Default()
	obs := detect.NewObservations(det)
	rec := func(domain string, day simtime.Day, host string) {
		c := &capture.Capture{FinalDomain: domain, Day: day, Status: 200}
		c.Requests = append(c.Requests, capture.Request{Host: host})
		obs.Record(c)
	}
	rec("a.com", 100, "cdn.cookielaw.org")
	rec("a.com", 150, "cdn.cookielaw.org")
	rec("b.com", 100, "www.b.com") // never a CMP

	db := BuildPresence(obs, interp.Options{})
	if db.Len() != 1 {
		t.Fatalf("Len = %d", db.Len())
	}
	if db.CMPAt("a.com", 120) != cmps.OneTrust {
		t.Error("interpolated presence missing")
	}
	if db.CMPAt("b.com", 100) != cmps.None {
		t.Error("CMP-less domain must have no presence")
	}
	if db.Intervals("a.com") == nil || db.Intervals("c.com") != nil {
		t.Error("Intervals accessor broken")
	}
	if len(db.Domains()) != 1 {
		t.Error("Domains accessor broken")
	}
}

func TestMarketShareByRank(t *testing.T) {
	day := simtime.Date(2020, 5, 15)
	list := &toplist.List{Domains: []string{"a.com", "b.com", "c.com", "d.com"}}
	db := fakePresence(map[string][]interp.Interval{
		"a.com": {{CMP: cmps.Quantcast, Start: 0, End: end()}},
		"c.com": {{CMP: cmps.OneTrust, Start: 0, End: end()}},
	})
	pts := MarketShareByRank(db, list, day, []int{2, 4})
	if len(pts) != 2 {
		t.Fatalf("points = %+v", pts)
	}
	if pts[0].Size != 2 || pts[0].Count[cmps.Quantcast] != 1 || pts[0].TotalShare != 0.5 {
		t.Errorf("size-2 point: %+v", pts[0])
	}
	if pts[1].Size != 4 || pts[1].TotalShare != 0.5 || pts[1].Share[cmps.OneTrust] != 0.25 {
		t.Errorf("size-4 point: %+v", pts[1])
	}
}

func TestMarketShareOversizedRequest(t *testing.T) {
	list := &toplist.List{Domains: []string{"a.com", "b.com"}}
	db := fakePresence(map[string][]interp.Interval{
		"a.com": {{CMP: cmps.Quantcast, Start: 0, End: end()}},
	})
	pts := MarketShareByRank(db, list, 100, []int{1_000_000})
	if len(pts) != 1 || pts[0].Size != 2 {
		t.Fatalf("oversized size must clamp to the list: %+v", pts)
	}
}

func TestEUUKShare(t *testing.T) {
	db := fakePresence(map[string][]interp.Interval{
		"a.co.uk": {{CMP: cmps.Quantcast, Start: 0, End: end()}},
		"b.de":    {{CMP: cmps.Quantcast, Start: 0, End: end()}},
		"c.com":   {{CMP: cmps.Quantcast, Start: 0, End: end()}},
		"d.com":   {{CMP: cmps.OneTrust, Start: 0, End: end()}},
	})
	share := EUUKShare(db, 100)
	if got := share[cmps.Quantcast]; got < 0.66 || got > 0.67 {
		t.Errorf("Quantcast EU+UK share = %v, want 2/3", got)
	}
	if share[cmps.OneTrust] != 0 {
		t.Errorf("OneTrust share = %v", share[cmps.OneTrust])
	}
}

func TestAdoptionOverTime(t *testing.T) {
	db := fakePresence(map[string][]interp.Interval{
		"a.com": {{CMP: cmps.Quantcast, Start: 100, End: end()}},
		"b.com": {{CMP: cmps.OneTrust, Start: 400, End: end()}},
		"x.com": {{CMP: cmps.OneTrust, Start: 0, End: end()}}, // not in the set
	})
	pts := AdoptionOverTime(db, []string{"a.com", "b.com", "c.com"}, 50)
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	if got := At(pts, 0).Total; got != 0 {
		t.Errorf("day 0 total = %d", got)
	}
	if got := At(pts, 200).Total; got != 1 {
		t.Errorf("day 200 total = %d", got)
	}
	if got := At(pts, 500); got.Total != 2 || got.Counts[cmps.OneTrust] != 1 {
		t.Errorf("day 500 = %+v", got)
	}
	if gf := GrowthFactor(pts, 200, 500); gf != 2 {
		t.Errorf("growth factor = %v", gf)
	}
	if gf := GrowthFactor(pts, 0, 500); gf != 0 {
		t.Errorf("growth from zero must be 0, got %v", gf)
	}
}

func TestSwitchingFlows(t *testing.T) {
	db := fakePresence(map[string][]interp.Interval{
		// Cookiebot → OneTrust switch.
		"a.com": {
			{CMP: cmps.Cookiebot, Start: 100, End: 300},
			{CMP: cmps.OneTrust, Start: 310, End: end()},
		},
		// Cookiebot → Quantcast switch.
		"b.com": {
			{CMP: cmps.Cookiebot, Start: 100, End: 300},
			{CMP: cmps.Quantcast, Start: 320, End: end()},
		},
		// Pure adoption.
		"c.com": {{CMP: cmps.OneTrust, Start: 50, End: end()}},
		// Adoption then abandon.
		"d.com": {{CMP: cmps.TrustArc, Start: 50, End: 500}},
	})
	m := SwitchingFlows(db)
	if m.Between(cmps.Cookiebot, cmps.OneTrust) != 1 || m.Between(cmps.Cookiebot, cmps.Quantcast) != 1 {
		t.Errorf("switch counts wrong: %+v", m.Counts)
	}
	if m.LossesToCompetitors(cmps.Cookiebot) != 2 || m.GainsFromCompetitors(cmps.Cookiebot) != 0 {
		t.Errorf("Cookiebot gains/losses = %d/%d",
			m.GainsFromCompetitors(cmps.Cookiebot), m.LossesToCompetitors(cmps.Cookiebot))
	}
	if m.NetCompetitive(cmps.Cookiebot) != -2 {
		t.Errorf("net = %d", m.NetCompetitive(cmps.Cookiebot))
	}
	if m.Adoptions(cmps.OneTrust) != 1 || m.Abandons(cmps.TrustArc) != 1 {
		t.Errorf("adoptions/abandons wrong")
	}
	if m.GainsFromCompetitors(cmps.OneTrust) != 1 {
		t.Errorf("OneTrust gains = %d", m.GainsFromCompetitors(cmps.OneTrust))
	}
}

func TestComputeCustomization(t *testing.T) {
	det := detect.Default()
	store := capture.NewMemStore()
	add := func(domain, dom string, host string) {
		store.Record(&capture.Capture{
			FinalDomain: domain, Status: 200, DOM: dom,
			Requests: []capture.Request{{Host: host}},
		})
	}
	add("a.com", `<div class="qc-cmp-ui" data-variant="direct-reject" data-confirm=false>I ACCEPT</div>`, "quantcast.mgr.consensu.org")
	add("b.com", `<div class="qc-cmp-ui" data-variant="more-options" data-confirm=false>Whatever</div>`, "quantcast.mgr.consensu.org")
	add("c.com", `<footer><a href="/privacy">Do Not Sell</a></footer>`, "cdn.cookielaw.org")
	add("d.com", `<div class="onetrust-banner-sdk" data-variant="direct-reject" data-confirm=true>Accept</div>`, "cdn.cookielaw.org")
	add("e.com", `<div data-variant="custom-api-only">OK</div>`, "consent.trustarc.com")
	// Duplicate capture of a.com must not double count.
	add("a.com", `<div class="qc-cmp-ui" data-variant="direct-reject" data-confirm=false>I ACCEPT</div>`, "quantcast.mgr.consensu.org")

	stats := ComputeCustomization(store, det)
	qc := stats[cmps.Quantcast]
	if qc.Websites != 2 || qc.Variants["direct-reject"] != 1 || qc.Variants["more-options"] != 1 {
		t.Errorf("Quantcast stats: %+v", qc)
	}
	if qc.AffirmativeAccept != 1 || qc.FreeformAccept != 1 {
		t.Errorf("accept wording: %+v", qc)
	}
	ot := stats[cmps.OneTrust]
	if ot.Websites != 2 || ot.Variants["footer-link"] != 1 || ot.FooterTexts["Do Not Sell"] != 1 {
		t.Errorf("OneTrust stats: %+v", ot)
	}
	if ot.ConfirmRequired != 1 {
		t.Errorf("confirm-required = %d", ot.ConfirmRequired)
	}
	ta := stats[cmps.TrustArc]
	if ta.APIOnly != 1 {
		t.Errorf("TrustArc API-only = %d", ta.APIOnly)
	}
	if got := APIOnlyShare(stats); got != 0.2 {
		t.Errorf("API-only share = %v, want 0.2", got)
	}
	if qc.VariantShare("direct-reject") != 0.5 {
		t.Errorf("variant share = %v", qc.VariantShare("direct-reject"))
	}
}

func TestPriorWork(t *testing.T) {
	studies := PriorWork()
	if len(studies) < 6 {
		t.Fatal("Figure 1 needs the related-work inventory")
	}
	var this *PriorStudy
	for i := range studies {
		s := &studies[i]
		if s.Domains <= 0 || s.End.Before(s.Start) {
			t.Errorf("%s: malformed", s.Label)
		}
		if !s.Snapshot {
			this = s
		}
	}
	if this == nil {
		t.Fatal("this work must be the longitudinal entry")
	}
	for _, s := range studies {
		if s.Snapshot && s.Domains >= this.Domains {
			t.Errorf("%s: snapshot sample (%d) must be smaller than this work (%d)",
				s.Label, s.Domains, this.Domains)
		}
	}
	if QuantcastPromptChanges != 38 {
		t.Error("Quantcast prompt changed 38 times in the observation period")
	}
}
