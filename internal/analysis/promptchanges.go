package analysis

import (
	"regexp"
	"strconv"

	"repro/internal/capture"
	"repro/internal/cmps"
	"repro/internal/detect"
)

// Prompt-change history (Figure 1): the paper recovered how often a
// CMP's consent prompt changed by comparing archived screenshots and
// dialog markup over time. This analysis recovers the same history
// from stored capture DOMs.

var promptRevAttr = regexp.MustCompile(`data-prompt-rev="(\d+)"`)

// PromptRevisionsObserved returns the set of distinct prompt revisions
// of the given CMP appearing in the captures.
func PromptRevisionsObserved(captures []*capture.Capture, det *detect.Detector, cmp cmps.ID) map[int]bool {
	revs := make(map[int]bool)
	for _, c := range captures {
		if c.Failed || det.DetectOne(c) != cmp {
			continue
		}
		if m := promptRevAttr.FindStringSubmatch(c.DOM); m != nil {
			if rev, err := strconv.Atoi(m[1]); err == nil {
				revs[rev] = true
			}
		}
	}
	return revs
}

// PromptChangesObserved returns the number of prompt *changes*
// witnessed by the captures: distinct revisions minus one. A full-
// coverage longitudinal crawl of Quantcast recovers the paper's 38.
func PromptChangesObserved(captures []*capture.Capture, det *detect.Detector, cmp cmps.ID) int {
	n := len(PromptRevisionsObserved(captures, det, cmp))
	if n == 0 {
		return 0
	}
	return n - 1
}
