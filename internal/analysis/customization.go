package analysis

import (
	"regexp"
	"strings"

	"repro/internal/capture"
	"repro/internal/cmps"
	"repro/internal/detect"
	"repro/internal/webworld"
)

// Publisher customization analysis (item I3, Section 4.1). "All
// reported statistics are based on our measurements from an EU
// university vantage point where we have the browser's DOM tree and
// full page screenshots available for inspection." The analysis
// scrapes the stored DOM of EU-university toplist captures.

// CustomizationStats summarizes one CMP's observed customizations.
type CustomizationStats struct {
	CMP cmps.ID
	// Websites is the number of toplist sites embedding the CMP.
	Websites int
	// Variants counts banner structures by variant name.
	Variants map[string]int
	// ConfirmRequired counts direct-reject banners that require
	// further clicks to confirm the opt-out.
	ConfirmRequired int
	// FooterTexts counts footer-link wordings.
	FooterTexts map[string]int
	// AffirmativeAccept / FreeformAccept split accept-button wording
	// ("I agree/consent/accept" variants vs. "Whatever"-style text).
	AffirmativeAccept int
	FreeformAccept    int
	// APIOnly counts publishers using the CMP's API with a fully
	// custom dialog.
	APIOnly int
}

// VariantShare returns a variant's share of the CMP's websites.
func (s *CustomizationStats) VariantShare(variant string) float64 {
	if s.Websites == 0 {
		return 0
	}
	return float64(s.Variants[variant]) / float64(s.Websites)
}

var (
	variantAttr = regexp.MustCompile(`data-variant="([^"]+)"`)
	confirmAttr = regexp.MustCompile(`data-confirm="?(true|false)"?`)
	footerLink  = regexp.MustCompile(`<footer><a href="/privacy">([^<]+)</a></footer>`)
	bannerText  = regexp.MustCompile(`>([^<>]+)</div>`)
)

// affirmative matches accept-button texts that qualify as affirmative
// consent wording.
var affirmative = regexp.MustCompile(`(?i)\b(agree|consent|accept)\b`)

// ComputeCustomization scrapes the DOM trees of an EU-university
// capture store and tallies customization per CMP.
func ComputeCustomization(store *capture.MemStore, det *detect.Detector) map[cmps.ID]*CustomizationStats {
	out := make(map[cmps.ID]*CustomizationStats, cmps.Count)
	for _, c := range cmps.All() {
		out[c] = &CustomizationStats{
			CMP:         c,
			Variants:    make(map[string]int),
			FooterTexts: make(map[string]int),
		}
	}
	seen := make(map[string]bool)
	for _, cap := range store.All() {
		if cap.Failed || seen[cap.FinalDomain] {
			continue
		}
		id := det.DetectOne(cap)
		if id == cmps.None {
			continue
		}
		seen[cap.FinalDomain] = true
		s := out[id]
		s.Websites++

		variant := "unknown"
		if m := variantAttr.FindStringSubmatch(cap.DOM); m != nil {
			variant = m[1]
		} else if m := footerLink.FindStringSubmatch(cap.DOM); m != nil {
			variant = webworld.VariantFooterLink.String()
			s.FooterTexts[m[1]]++
		}
		s.Variants[variant]++
		if variant == webworld.VariantCustomAPI.String() {
			s.APIOnly++
		}
		if m := confirmAttr.FindStringSubmatch(cap.DOM); m != nil && m[1] == "true" {
			s.ConfirmRequired++
		}
		if m := bannerText.FindStringSubmatch(cap.DOM); m != nil {
			text := strings.TrimSpace(m[1])
			if affirmative.MatchString(text) {
				s.AffirmativeAccept++
			} else if text != "" {
				s.FreeformAccept++
			}
		}
	}
	return out
}

// APIOnlyShare returns the overall share of CMP-embedding sites that
// use the CMP for its API only (~8% in the paper).
func APIOnlyShare(stats map[cmps.ID]*CustomizationStats) float64 {
	total, apiOnly := 0, 0
	for _, s := range stats {
		total += s.Websites
		apiOnly += s.APIOnly
	}
	if total == 0 {
		return 0
	}
	return float64(apiOnly) / float64(total)
}
