package analysis

import (
	"repro/internal/browser"
	"repro/internal/capture"
	"repro/internal/cmps"
	"repro/internal/detect"
	"repro/internal/simtime"
	"repro/internal/webworld"
)

// Subsite-coverage comparison (Section 3.5, "Subsites", building on
// Urban et al., WWW 2020): crawling arbitrary subsites instead of only
// landing pages detects CMPs that are absent from the front page. This
// analysis quantifies the difference on a domain set by crawling both
// ways with the same browser and vantage.

// SubsiteCoverage compares front-page-only and subsite-inclusive CMP
// detection.
type SubsiteCoverage struct {
	// Domains is the number of crawlable domains compared.
	Domains int
	// FrontPageCMP counts domains whose landing page reveals a CMP.
	FrontPageCMP int
	// SubsiteCMP counts domains where any sampled page reveals a CMP.
	SubsiteCMP int
	// OnlyOnSubsites counts domains whose CMP is invisible on the
	// landing page but present on subsites.
	OnlyOnSubsites int
}

// Gain returns the relative detection gain of subsite sampling.
func (s *SubsiteCoverage) Gain() float64 {
	if s.FrontPageCMP == 0 {
		return 0
	}
	return float64(s.SubsiteCMP)/float64(s.FrontPageCMP) - 1
}

// CompareSubsiteCoverage crawls each domain's landing page and up to
// samplePages subsites from the EU-university vantage and tallies the
// coverage difference.
func CompareSubsiteCoverage(w *webworld.World, domains []string, day simtime.Day, samplePages int) *SubsiteCoverage {
	b := browser.New(w, browser.Options{})
	det := detect.Default()
	out := &SubsiteCoverage{}
	for _, name := range domains {
		d := w.Domain(name)
		if d == nil || d.Unreachable || d.RedirectTo != "" {
			continue
		}
		load := func(path string) cmps.ID {
			cap := b.Load("https://www."+name+path, day, capture.EUUniversity)
			if cap.Failed {
				return cmps.None
			}
			return det.DetectOne(cap)
		}
		front := load("/")
		sub := front
		for i := 1; i <= samplePages && i < d.Subsites && sub == cmps.None; i++ {
			sub = load(d.SubsitePath(i))
		}
		out.Domains++
		if front != cmps.None {
			out.FrontPageCMP++
		}
		if sub != cmps.None {
			out.SubsiteCMP++
			if front == cmps.None {
				out.OnlyOnSubsites++
			}
		}
	}
	return out
}
