package analysis

import (
	"testing"

	"repro/internal/cmps"
	"repro/internal/simtime"
)

func syntheticAdoption(totals map[simtime.Day]int) []AdoptionPoint {
	var pts []AdoptionPoint
	total := 0
	for day := simtime.Day(0); int(day) < simtime.NumDays; day += 7 {
		if t, ok := totals[day.Month()]; ok {
			total = t
		}
		pts = append(pts, AdoptionPoint{Day: day, Total: total, Counts: map[cmps.ID]int{}})
	}
	return pts
}

func TestDetectAdoptionSpikes(t *testing.T) {
	gdprMonth := simtime.GDPREffective.Month()
	nextMonth := simtime.Date(2018, 6, 1)
	// Slow organic growth of ~2/month with a 40-site jump at GDPR.
	totals := map[simtime.Day]int{simtime.Date(2018, 3, 1): 10}
	base := 10
	for m := simtime.Date(2018, 4, 1); int(m) < simtime.NumDays; {
		base += 2
		if m == gdprMonth || m == nextMonth {
			base += 20
		}
		totals[m] = base
		m = simtime.FromTime(m.Time().AddDate(0, 1, 0))
	}
	pts := syntheticAdoption(totals)
	spikes := DetectAdoptionSpikes(pts, 3)
	if len(spikes) == 0 {
		t.Fatal("no spikes found")
	}
	if !SpikeNear(spikes, simtime.GDPREffective, 45) {
		t.Errorf("GDPR spike not detected: %+v", spikes)
	}
	if SpikeNear(spikes, simtime.Date(2019, 7, 8), 15) {
		t.Error("quiet months must not spike")
	}
	for _, s := range spikes {
		if s.Ratio < 3 || s.Growth < 20 {
			t.Errorf("weak spike reported: %+v", s)
		}
	}
}

func TestDetectAdoptionSpikesDegenerate(t *testing.T) {
	if got := DetectAdoptionSpikes(nil, 3); got != nil {
		t.Error("empty series")
	}
	flat := syntheticAdoption(map[simtime.Day]int{simtime.Date(2018, 4, 1): 5})
	if got := DetectAdoptionSpikes(flat, 3); got != nil {
		t.Errorf("flat series must have no spikes: %+v", got)
	}
}
