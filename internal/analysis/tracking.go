package analysis

import (
	"strings"

	"repro/internal/capture"
)

// Third-party tracking context (Section 6 related work): even after
// GDPR, Sanchez-Rola et al. found 90% of sampled websites using
// cookies that could identify users, and Sørensen & Kosta found no
// change in third-party tracker counts. These statistics provide the
// baseline against which consent management's (in)effectiveness is
// judged.

// TrackingStats summarizes identifying-technology usage over a set of
// captured websites.
type TrackingStats struct {
	// Websites is the number of distinct final domains examined.
	Websites int
	// WithIdentifyingCookie counts sites whose capture stored at least
	// one cookie or storage record that could identify the user.
	WithIdentifyingCookie int
	// WithThirdPartyTracker counts sites that loaded at least one
	// known third-party tracker.
	WithThirdPartyTracker int
	// MeanThirdParties is the average number of distinct third-party
	// hosts contacted per site.
	MeanThirdParties float64
}

// IdentifyingShare returns the fraction of sites with identifying
// storage (≈90% in Sanchez-Rola et al.).
func (s *TrackingStats) IdentifyingShare() float64 {
	if s.Websites == 0 {
		return 0
	}
	return float64(s.WithIdentifyingCookie) / float64(s.Websites)
}

// TrackerShare returns the fraction of sites embedding third-party
// trackers.
func (s *TrackingStats) TrackerShare() float64 {
	if s.Websites == 0 {
		return 0
	}
	return float64(s.WithThirdPartyTracker) / float64(s.Websites)
}

// ComputeTracking derives tracking statistics from a capture store,
// considering one capture per final domain.
func ComputeTracking(store *capture.MemStore) *TrackingStats {
	stats := &TrackingStats{}
	seen := map[string]bool{}
	thirdPartyTotal := 0
	for _, c := range store.All() {
		if c.Failed || c.Status != 200 || seen[c.FinalDomain] {
			continue
		}
		seen[c.FinalDomain] = true
		stats.Websites++

		identifying := false
		for _, ck := range c.Cookies {
			// Third-party uid cookies and session identifiers with
			// unique values can re-identify the user.
			if ck.Name == "uid" || (ck.Name == "session" && ck.Value != "") {
				identifying = true
			}
		}
		for _, sr := range c.Storage {
			if sr.Identifying {
				identifying = true
			}
		}
		if identifying {
			stats.WithIdentifyingCookie++
		}

		siteHost := hostOf(c.FinalURL)
		thirdParties := map[string]bool{}
		hasTracker := false
		for _, r := range c.Requests {
			if r.Host == siteHost || strings.HasSuffix(r.Host, "."+c.FinalDomain) || r.Host == c.FinalDomain {
				continue
			}
			thirdParties[r.Host] = true
			if isKnownTracker(r.Host) {
				hasTracker = true
			}
		}
		if hasTracker {
			stats.WithThirdPartyTracker++
		}
		thirdPartyTotal += len(thirdParties)
	}
	if stats.Websites > 0 {
		stats.MeanThirdParties = float64(thirdPartyTotal) / float64(stats.Websites)
	}
	return stats
}

func hostOf(rawURL string) string {
	s := rawURL
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexAny(s, "/?#"); i >= 0 {
		s = s[:i]
	}
	return strings.ToLower(s)
}

// isKnownTracker matches the tracker hosts of the synthetic web.
func isKnownTracker(host string) bool {
	switch host {
	case "www.google-analytics.com", "securepubads.g.doubleclick.net",
		"connect.facebook.net", "static.hotjar.com":
		return true
	}
	return false
}
