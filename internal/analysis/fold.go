package analysis

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/capture"
	"repro/internal/cmps"
	"repro/internal/detect"
	"repro/internal/interp"
	"repro/internal/simtime"
)

// Incremental folds: the longitudinal analyses re-expressed as
// Fold(state, capture) → state plus a snapshot step, so materialized
// views can advance record-by-record as captures stream in instead of
// re-reading the whole world per run (DESIGN.md §14).
//
// The fold contract every state type here obeys: state is partitioned
// by final registrable domain, and folding depends only on the
// relative order of captures *within* one domain. Any interleaving of
// a capture stream that preserves per-domain order — the ingest commit
// order, a shard-by-shard batch sweep, or a live per-shard follower —
// folds to an identical state, and therefore to byte-identical
// snapshots. This is the same decomposition the capture store's
// hash-partitioned shards implement, which is what lets a follower
// consume per-shard segment streams without a global sequence number.

// ConfigKeyOf returns a capture's vantage/configuration column key,
// matching crawler.ConfigKey for campaign-produced captures (e.g.
// "eu-university/extended-timeout").
func ConfigKeyOf(c *capture.Capture) string {
	return c.Vantage.Name + "/" + c.Config
}

// foldDomain is one domain's presence-fold state: the compact
// detection records plus a lazily rebuilt interval cache.
type foldDomain struct {
	recs   []detect.Rec
	sorted bool
	dirty  bool
}

// PresenceFold is the incremental form of the Observations →
// BuildPresence pipeline: it accumulates per-domain detection records
// capture by capture and maintains a presence-interval cache that is
// re-interpolated only for domains that changed since the last
// snapshot. Folding a whole store and then snapshotting yields exactly
// what NewObservations + BuildPresence yield on the same captures.
//
// PresenceFold is not safe for concurrent use; callers serialize Fold
// and snapshot calls (the analytics engine holds one lock).
type PresenceFold struct {
	det  *detect.Detector
	opts interp.Options

	domains  map[string]*foldDomain
	presence map[string][]interp.Interval // domains with ≥1 interval

	// Total counts folded non-failed captures; MultiCMP those matching
	// more than one CMP (the paper's overcount quantification).
	Total    int64
	MultiCMP int64
}

// NewPresenceFold returns an empty fold classifying with det and
// interpolating with opts (zero opts reproduce the paper).
func NewPresenceFold(det *detect.Detector, opts interp.Options) *PresenceFold {
	return &PresenceFold{
		det:      det,
		opts:     opts,
		domains:  make(map[string]*foldDomain),
		presence: make(map[string][]interp.Interval),
	}
}

// Fold advances the state by one capture. Failed and domain-less
// captures fold to a no-op, mirroring Observations.Record.
func (f *PresenceFold) Fold(c *capture.Capture) {
	if c.Failed || c.FinalDomain == "" {
		return
	}
	id, mask := f.det.DetectMask(c)
	f.Total++
	if bits.OnesCount32(mask) > 1 {
		f.MultiCMP++
	}
	d := f.domains[c.FinalDomain]
	if d == nil {
		d = &foldDomain{}
		f.domains[c.FinalDomain] = d
	}
	d.recs = append(d.recs, detect.Rec{Day: int32(c.Day), CMP: int8(id)})
	d.sorted = false
	d.dirty = true
}

// refresh re-interpolates every dirty domain, leaving the interval
// cache consistent with the folded records.
func (f *PresenceFold) refresh() {
	for domain, d := range f.domains {
		if !d.dirty {
			continue
		}
		if !d.sorted {
			sort.Slice(d.recs, func(i, j int) bool { return d.recs[i].Day < d.recs[j].Day })
			d.sorted = true
		}
		ivs := interp.Build(detect.ClassifyRecs(d.recs, detect.SiteHeuristicThreshold), f.opts)
		if len(ivs) > 0 {
			f.presence[domain] = ivs
		} else {
			delete(f.presence, domain)
		}
		d.dirty = false
	}
}

// Presence snapshots the fold into a PresenceDB. Only domains that
// changed since the previous snapshot are re-interpolated. The
// returned DB aliases the fold's interval cache and is valid until the
// next Fold call.
func (f *PresenceFold) Presence() *PresenceDB {
	f.refresh()
	return &PresenceDB{intervals: f.presence}
}

// NumDomains returns how many distinct final domains were folded.
func (f *PresenceFold) NumDomains() int { return len(f.domains) }

// presenceFoldState is the checkpoint wire form of a PresenceFold:
// per-domain records as flat [day, cmp, day, cmp, …] arrays.
type presenceFoldState struct {
	Total    int64              `json:"total"`
	MultiCMP int64              `json:"multi_cmp"`
	Domains  map[string][]int32 `json:"domains"`
}

// MarshalState serializes the fold for checkpointing. The interval
// cache is derived state and is rebuilt on restore.
func (f *PresenceFold) MarshalState() ([]byte, error) {
	st := presenceFoldState{
		Total:    f.Total,
		MultiCMP: f.MultiCMP,
		Domains:  make(map[string][]int32, len(f.domains)),
	}
	for domain, d := range f.domains {
		flat := make([]int32, 0, 2*len(d.recs))
		for _, r := range d.recs {
			flat = append(flat, r.Day, int32(r.CMP))
		}
		st.Domains[domain] = flat
	}
	return json.Marshal(st)
}

// UnmarshalState restores a checkpointed fold, replacing any folded
// state. Every restored domain is dirty: intervals rebuild on the
// first snapshot.
func (f *PresenceFold) UnmarshalState(b []byte) error {
	var st presenceFoldState
	if err := json.Unmarshal(b, &st); err != nil {
		return fmt.Errorf("analysis: presence fold state: %w", err)
	}
	f.Total, f.MultiCMP = st.Total, st.MultiCMP
	f.domains = make(map[string]*foldDomain, len(st.Domains))
	f.presence = make(map[string][]interp.Interval)
	for domain, flat := range st.Domains {
		if len(flat)%2 != 0 {
			return fmt.Errorf("analysis: presence fold state: odd record array for %q", domain)
		}
		d := &foldDomain{recs: make([]detect.Rec, 0, len(flat)/2), dirty: true}
		for i := 0; i < len(flat); i += 2 {
			d.recs = append(d.recs, detect.Rec{Day: flat[i], CMP: int8(flat[i+1])})
		}
		f.domains[domain] = d
	}
	return nil
}

// CoverageFold incrementally maintains the vantage-point tables
// (Tables 1/A.3 made continuous): per calendar month and
// vantage/configuration column, the set of domains where each CMP was
// first detected. The first *detected* capture of a (month, config,
// domain) triple wins, mirroring ComputeVantageTable's store-order
// sweep; captures without a detection never occupy a slot.
type CoverageFold struct {
	det *detect.Detector
	// months[month][configKey][domain] = first detected CMP.
	months map[simtime.Day]map[string]map[string]cmps.ID
}

// NewCoverageFold returns an empty coverage fold.
func NewCoverageFold(det *detect.Detector) *CoverageFold {
	return &CoverageFold{det: det, months: make(map[simtime.Day]map[string]map[string]cmps.ID)}
}

// Fold advances the state by one capture.
func (f *CoverageFold) Fold(c *capture.Capture) {
	if c.Failed || c.FinalDomain == "" {
		return
	}
	id := f.det.DetectOne(c)
	if id == cmps.None {
		return
	}
	month := c.Day.Month()
	key := ConfigKeyOf(c)
	configs := f.months[month]
	if configs == nil {
		configs = make(map[string]map[string]cmps.ID)
		f.months[month] = configs
	}
	domains := configs[key]
	if domains == nil {
		domains = make(map[string]cmps.ID)
		configs[key] = domains
	}
	if _, dup := domains[c.FinalDomain]; !dup {
		domains[c.FinalDomain] = id
	}
}

// Months returns the folded months in ascending order.
func (f *CoverageFold) Months() []simtime.Day {
	out := make([]simtime.Day, 0, len(f.months))
	for m := range f.months {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// tableOf tallies one month's per-config domain sets into a
// VantageTable (Configs sorted lexicographically — the store-driven
// tables list whatever columns the stream contained).
func tableOf(configs map[string]map[string]cmps.ID) *VantageTable {
	t := &VantageTable{
		Counts:   make(map[cmps.ID]map[string]int),
		Totals:   make(map[string]int),
		Coverage: make(map[string]float64),
	}
	for _, c := range cmps.All() {
		t.Counts[c] = make(map[string]int)
	}
	for key := range configs {
		t.Configs = append(t.Configs, key)
	}
	sort.Strings(t.Configs)
	for _, key := range t.Configs {
		for _, id := range configs[key] {
			t.Counts[id][key]++
			t.Totals[key]++
		}
	}
	max := 0
	for _, total := range t.Totals {
		if total > max {
			max = total
		}
	}
	for key, total := range t.Totals {
		if max > 0 {
			t.Coverage[key] = float64(total) / float64(max)
		}
	}
	return t
}

// MonthTable snapshots one month's vantage table.
func (f *CoverageFold) MonthTable(month simtime.Day) *VantageTable {
	return tableOf(f.months[month])
}

// Cumulative snapshots the whole-window vantage table: per config,
// domains merge across months in ascending month order with the
// earliest month's detection winning — i.e. each domain counts once,
// under the CMP it was first detected with.
func (f *CoverageFold) Cumulative() *VantageTable {
	merged := make(map[string]map[string]cmps.ID)
	for _, month := range f.Months() {
		for key, domains := range f.months[month] {
			dst := merged[key]
			if dst == nil {
				dst = make(map[string]cmps.ID)
				merged[key] = dst
			}
			for domain, id := range domains {
				if _, dup := dst[domain]; !dup {
					dst[domain] = id
				}
			}
		}
	}
	return tableOf(merged)
}

// coverageFoldState is the checkpoint wire form of a CoverageFold.
// Month keys and config keys are JSON object keys; domain → CMP maps
// flatten to parallel arrays would save little, so they stay maps.
type coverageFoldState struct {
	Months map[string]map[string]map[string]int `json:"months"`
}

// MarshalState serializes the fold for checkpointing.
func (f *CoverageFold) MarshalState() ([]byte, error) {
	st := coverageFoldState{Months: make(map[string]map[string]map[string]int, len(f.months))}
	for month, configs := range f.months {
		mc := make(map[string]map[string]int, len(configs))
		for key, domains := range configs {
			md := make(map[string]int, len(domains))
			for domain, id := range domains {
				md[domain] = int(id)
			}
			mc[key] = md
		}
		st.Months[fmt.Sprintf("%d", int(month))] = mc
	}
	return json.Marshal(st)
}

// UnmarshalState restores a checkpointed fold.
func (f *CoverageFold) UnmarshalState(b []byte) error {
	var st coverageFoldState
	if err := json.Unmarshal(b, &st); err != nil {
		return fmt.Errorf("analysis: coverage fold state: %w", err)
	}
	f.months = make(map[simtime.Day]map[string]map[string]cmps.ID, len(st.Months))
	for monthStr, configs := range st.Months {
		var month int
		if _, err := fmt.Sscanf(monthStr, "%d", &month); err != nil {
			return fmt.Errorf("analysis: coverage fold state: bad month %q", monthStr)
		}
		mc := make(map[string]map[string]cmps.ID, len(configs))
		for key, domains := range configs {
			md := make(map[string]cmps.ID, len(domains))
			for domain, id := range domains {
				md[domain] = cmps.ID(id)
			}
			mc[key] = md
		}
		f.months[simtime.Day(month)] = mc
	}
	return nil
}
