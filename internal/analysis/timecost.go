package analysis

import (
	"repro/internal/cmps"
)

// Time-cost synthesis: the paper's user-interface findings (Figures 9
// and 10) show that privacy-aware users pay with their time — rejecting
// takes longer than accepting, doubly so without a first-page reject
// button, and TrustArc's partner-connecting opt-outs take tens of
// seconds. Combining those timings with the measured CMP adoption and
// customization shares yields the expected extra interaction time an
// always-reject user spends browsing, versus an accept-everything user.

// TimeCostInputs collects the measured quantities.
type TimeCostInputs struct {
	// AdoptionShare[c] is the fraction of websites embedding CMP c at
	// the snapshot (from the presence analysis over a toplist).
	AdoptionShare map[cmps.ID]float64
	// DirectRejectShare[c] is the fraction of c's dialogs offering a
	// first-page reject (from the I3 customization analysis).
	DirectRejectShare map[cmps.ID]float64
	// AcceptSec / RejectDirectSec / RejectIndirectSec are the median
	// dialog interaction times (Figure 10): accepting, rejecting with
	// a direct button, rejecting through a second page.
	AcceptSec         float64
	RejectDirectSec   float64
	RejectIndirectSec float64
	// PartnerOptOutSec is the extra waiting time when the opt-out must
	// connect to third parties (Figure 9: ≥34 s), and
	// PartnerConnectShare[c] the share of c's dialogs doing that.
	PartnerOptOutSec    float64
	PartnerConnectShare map[cmps.ID]float64
}

// TimeCostResult is the synthesis.
type TimeCostResult struct {
	// DialogChance is the probability a visited site shows a dialog.
	DialogChance float64
	// ExtraSecPerVisit is the expected extra time per site visit for
	// an always-reject user (first visits; repeat visits show no
	// dialog).
	ExtraSecPerVisit float64
	// ExtraSecPer100Sites is the cost of rejecting everywhere across
	// 100 distinct sites.
	ExtraSecPer100Sites float64
	// PerCMP breaks the expected extra seconds per visit down by CMP.
	PerCMP map[cmps.ID]float64
}

// EstimateTimeCost computes the expected rejection time cost.
func EstimateTimeCost(in TimeCostInputs) TimeCostResult {
	res := TimeCostResult{PerCMP: make(map[cmps.ID]float64, cmps.Count)}
	for _, c := range cmps.All() {
		share := in.AdoptionShare[c]
		if share <= 0 {
			continue
		}
		res.DialogChance += share
		direct := in.DirectRejectShare[c]
		extra := direct*(in.RejectDirectSec-in.AcceptSec) +
			(1-direct)*(in.RejectIndirectSec-in.AcceptSec)
		extra += in.PartnerConnectShare[c] * in.PartnerOptOutSec
		res.PerCMP[c] = share * extra
		res.ExtraSecPerVisit += share * extra
	}
	res.ExtraSecPer100Sites = 100 * res.ExtraSecPerVisit
	return res
}

// TimeCostFromMeasurements assembles the inputs from the study's own
// measured artifacts: presence at the snapshot day for adoption,
// customization stats for the reject-button shares, and the two
// experiments' timings.
func TimeCostFromMeasurements(
	adoption MarketSharePoint,
	custom map[cmps.ID]*CustomizationStats,
	acceptSec, rejectDirectSec, rejectIndirectSec, partnerOptOutSec float64,
) TimeCostResult {
	in := TimeCostInputs{
		AdoptionShare:       make(map[cmps.ID]float64, cmps.Count),
		DirectRejectShare:   make(map[cmps.ID]float64, cmps.Count),
		PartnerConnectShare: make(map[cmps.ID]float64, cmps.Count),
		AcceptSec:           acceptSec,
		RejectDirectSec:     rejectDirectSec,
		RejectIndirectSec:   rejectIndirectSec,
		PartnerOptOutSec:    partnerOptOutSec,
	}
	for _, c := range cmps.All() {
		in.AdoptionShare[c] = adoption.Share[c]
		if s := custom[c]; s != nil && s.Websites > 0 {
			in.DirectRejectShare[c] = s.VariantShare("direct-reject")
			in.PartnerConnectShare[c] = s.VariantShare("optout-connects-partners")
		}
	}
	return EstimateTimeCost(in)
}
