package analysis

import (
	"repro/internal/crawler"
	"repro/internal/detect"
	"repro/internal/webworld"
)

// MissingData reproduces the Section 3.5 "Missing Data" breakdown: of
// the toplist domains never shared on social media, how many were
// unreachable, returned no valid response, returned an HTTP error,
// redirected elsewhere, or are internet infrastructure.
type MissingData struct {
	ToplistSize int
	// NeverShared is the number of toplist domains that never appear
	// in the social feed (1076 of the Tranco 10k in the paper).
	NeverShared int
	// Breakdown of the never-shared domains:
	Unreachable        int // 315 in the paper
	NoValidResponse    int // 4
	HTTPError          int // 70
	RedirectedElswhere int // 192, counted as the redirect target
	Infrastructure     int // >90% of the remainder
	Other              int
}

// ComputeMissingData classifies toplist domains against the world's
// ground truth and the social-feed observation set.
func ComputeMissingData(w *webworld.World, toplistDomains []string, observed func(domain string) bool) *MissingData {
	md := &MissingData{ToplistSize: len(toplistDomains)}
	for _, name := range toplistDomains {
		d := w.Domain(name)
		if d == nil {
			continue
		}
		if observed(name) {
			continue
		}
		md.NeverShared++
		switch {
		case d.Unreachable:
			md.Unreachable++
		case d.NoValidResponse:
			md.NoValidResponse++
		case d.HTTPError:
			md.HTTPError++
		case d.RedirectTo != "":
			md.RedirectedElswhere++
		case d.Infrastructure:
			md.Infrastructure++
		default:
			md.Other++
		}
	}
	return md
}

// TimeoutLoss quantifies the Section 3.5 "Crawler Timeouts" effect by
// comparing default-timing and extended-timeout university stores: the
// fraction of CMP websites only visible with relaxed timeouts (~2%).
func TimeoutLoss(res *crawler.CampaignResult, det *detect.Detector) float64 {
	t := ComputeVantageTable(res, det)
	def := t.Totals[EUUniversityDefaultKey()]
	ext := t.Totals[EUUniversityExtendedKey()]
	if ext == 0 {
		return 0
	}
	return 1 - float64(def)/float64(ext)
}
