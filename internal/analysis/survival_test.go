package analysis

import (
	"math"
	"testing"

	"repro/internal/cmps"
	"repro/internal/interp"
	"repro/internal/simtime"
	"repro/internal/webworld"
)

func newTestWorld(t *testing.T) *webworld.World {
	t.Helper()
	return webworld.New(webworld.Config{Seed: 1, Domains: 20_000})
}

func TestKaplanMeierKnownValues(t *testing.T) {
	// Classic worked example: events at 10, 20 (censored), 30, 40
	// (censored), 50.
	// S(10) = 4/5 = 0.8; S(30) = 0.8·(1−1/3) ≈ 0.533; S(50) = 0.
	endDay := simtime.Day(simtime.NumDays)
	db := fakePresence(map[string][]interp.Interval{
		"a.com": {{CMP: cmps.Cookiebot, Start: 0, End: 10}},
		"b.com": {{CMP: cmps.Cookiebot, Start: endDay - 20, End: endDay}}, // censored at 20
		"c.com": {{CMP: cmps.Cookiebot, Start: 0, End: 30}},
		"d.com": {{CMP: cmps.Cookiebot, Start: endDay - 40, End: endDay}}, // censored at 40
		"e.com": {{CMP: cmps.Cookiebot, Start: 0, End: 50}},
	})
	ret := ComputeRetention(db)[cmps.Cookiebot]
	if ret.Episodes != 5 || ret.Censored != 2 {
		t.Fatalf("episodes=%d censored=%d", ret.Episodes, ret.Censored)
	}
	if got := ret.SurvivalAt(10); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("S(10) = %v, want 0.8", got)
	}
	if got := ret.SurvivalAt(30); math.Abs(got-0.8*2.0/3) > 1e-9 {
		t.Errorf("S(30) = %v, want %v", got, 0.8*2.0/3)
	}
	if got := ret.SurvivalAt(50); got != 0 {
		t.Errorf("S(50) = %v, want 0", got)
	}
	if ret.MedianDays != 50 {
		t.Errorf("median = %d, want 50 (first time S ≤ 0.5)", ret.MedianDays)
	}
	// Ages before the first event survive fully.
	if ret.SurvivalAt(5) != 1 {
		t.Error("S(5) must be 1")
	}
}

func TestRetentionEmptyCMP(t *testing.T) {
	db := fakePresence(map[string][]interp.Interval{})
	ret := ComputeRetention(db)
	for _, c := range cmps.All() {
		if ret[c] == nil || ret[c].Episodes != 0 {
			t.Errorf("%s: %+v", c, ret[c])
		}
	}
}

// TestGatewayCMPHasShorterLifetime: on the synthetic web's measured
// presence, Cookiebot customers churn faster than OneTrust customers.
func TestGatewayCMPHasShorterLifetime(t *testing.T) {
	// Build a small measured presence DB via the ground-truth episode
	// model (cheaper than a crawl and sufficient: survival consumes
	// intervals, however obtained).
	w := newTestWorld(t)
	intervals := make(map[string][]interp.Interval)
	for _, d := range w.Domains() {
		for _, e := range d.Episodes {
			intervals[d.Name] = append(intervals[d.Name], interp.Interval{
				CMP: e.CMP, Start: e.Start, End: e.End,
			})
		}
	}
	ret := ComputeRetention(fakePresence(intervals))
	cb, ot := ret[cmps.Cookiebot], ret[cmps.OneTrust]
	if cb.Episodes < 30 || ot.Episodes < 30 {
		t.Skipf("too few episodes: cb=%d ot=%d", cb.Episodes, ot.Episodes)
	}
	// Compare two-year survival: the gateway CMP retains fewer.
	const twoYears = 730
	if cb.SurvivalAt(twoYears) >= ot.SurvivalAt(twoYears) {
		t.Errorf("Cookiebot 2y survival (%.2f) should be below OneTrust's (%.2f)",
			cb.SurvivalAt(twoYears), ot.SurvivalAt(twoYears))
	}
}
