package analysis

import (
	"sort"

	"repro/internal/cmps"
	"repro/internal/simtime"
)

// Customer-retention analysis behind the Figure 4 narrative: Cookiebot
// functions as a "gateway CMP" that many websites adopt before
// migrating onto other CMPs (Section 5.2), which should show up as a
// shorter customer lifetime. Episode durations are right-censored —
// an episode still running at the window end only lower-bounds the
// true lifetime — so the estimator is a Kaplan–Meier product-limit
// survival function.

// SurvivalPoint is one step of a survival curve.
type SurvivalPoint struct {
	// Days is the episode age.
	Days int
	// Survival is the estimated probability a customer relationship
	// lasts at least this long.
	Survival float64
}

// Retention summarizes one CMP's customer lifetimes.
type Retention struct {
	CMP cmps.ID
	// Episodes is the number of customer relationships observed.
	Episodes int
	// Censored is how many were still running at the window end.
	Censored int
	// Curve is the Kaplan–Meier survival function.
	Curve []SurvivalPoint
	// MedianDays is the median customer lifetime; 0 when the curve
	// never falls below 0.5 (more than half the customers are
	// retained through the whole window).
	MedianDays int
}

// SurvivalAt evaluates the curve at an age, using the step function's
// left-continuous convention.
func (r *Retention) SurvivalAt(days int) float64 {
	s := 1.0
	for _, pt := range r.Curve {
		if pt.Days > days {
			break
		}
		s = pt.Survival
	}
	return s
}

// ComputeRetention estimates per-CMP survival from the presence
// database's episodes.
func ComputeRetention(p *PresenceDB) map[cmps.ID]*Retention {
	type obs struct {
		duration int
		censored bool
	}
	byCMP := make(map[cmps.ID][]obs, cmps.Count)
	for _, ivs := range p.intervals {
		// An episode ends when the site stops using that CMP. Interval
		// ends caused by fade-out or the window boundary are
		// right-censoring (we stopped observing), not churn events —
		// only witnessed removals and switches count as deaths.
		for _, iv := range ivs {
			censored := iv.Censored || int(iv.End) >= simtime.NumDays
			byCMP[iv.CMP] = append(byCMP[iv.CMP], obs{
				duration: int(iv.End - iv.Start),
				censored: censored,
			})
		}
	}
	out := make(map[cmps.ID]*Retention, cmps.Count)
	for _, c := range cmps.All() {
		observations := byCMP[c]
		r := &Retention{CMP: c, Episodes: len(observations)}
		if len(observations) == 0 {
			out[c] = r
			continue
		}
		sort.Slice(observations, func(i, j int) bool {
			return observations[i].duration < observations[j].duration
		})
		// Kaplan–Meier: at each distinct event (non-censored) time t,
		// S *= (1 - d_t / n_t) with n_t the at-risk count.
		atRisk := len(observations)
		s := 1.0
		i := 0
		for i < len(observations) {
			t := observations[i].duration
			deaths, leaving := 0, 0
			for i < len(observations) && observations[i].duration == t {
				if observations[i].censored {
					r.Censored++
				} else {
					deaths++
				}
				leaving++
				i++
			}
			if deaths > 0 {
				s *= 1 - float64(deaths)/float64(atRisk)
				r.Curve = append(r.Curve, SurvivalPoint{Days: t, Survival: s})
				if r.MedianDays == 0 && s <= 0.5 {
					r.MedianDays = t
				}
			}
			atRisk -= leaving
		}
		out[c] = r
	}
	return out
}
