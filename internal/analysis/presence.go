// Package analysis computes every table and figure of the paper's
// evaluation (Section 4) from crawl data: vantage-point tables
// (Tables 1, A.3), market share by toplist size (Figures 5, A.4–A.6),
// adoption over time (Figure 6), inter-CMP switching flows (Figure 4),
// publisher customization (item I3), and the methodology statistics of
// Section 3.5.
package analysis

import (
	"runtime"
	"sync"

	"repro/internal/cmps"
	"repro/internal/detect"
	"repro/internal/interp"
	"repro/internal/simtime"
)

// PresenceDB holds reconstructed per-domain CMP presence intervals —
// the longitudinal core dataset every social-feed analysis consumes.
type PresenceDB struct {
	intervals map[string][]interp.Interval
}

// BuildPresence reconstructs presence for every observed domain. The
// per-domain interpolation is independent, so it fans out across
// GOMAXPROCS workers over contiguous slices of the (sorted) domain
// list; the result is identical to a serial build.
func BuildPresence(obs *detect.Observations, opts interp.Options) *PresenceDB {
	domains := obs.Domains()
	db := &PresenceDB{intervals: make(map[string][]interp.Interval, len(domains))}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(domains) {
		workers = len(domains)
	}
	if workers <= 1 {
		for _, domain := range domains {
			if ivs := interp.Build(obs.DayObservations(domain), opts); len(ivs) > 0 {
				db.intervals[domain] = ivs
			}
		}
		return db
	}
	built := make([][]interp.Interval, len(domains))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(domains) / workers
		hi := (w + 1) * len(domains) / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				built[i] = interp.Build(obs.DayObservations(domains[i]), opts)
			}
		}(lo, hi)
	}
	wg.Wait()
	for i, domain := range domains {
		if len(built[i]) > 0 {
			db.intervals[domain] = built[i]
		}
	}
	return db
}

// CMPAt returns the domain's CMP at the given day, or cmps.None.
func (p *PresenceDB) CMPAt(domain string, day simtime.Day) cmps.ID {
	return interp.At(p.intervals[domain], day)
}

// Intervals returns a domain's presence intervals (nil if none).
func (p *PresenceDB) Intervals(domain string) []interp.Interval {
	return p.intervals[domain]
}

// Domains returns all domains with at least one presence interval.
func (p *PresenceDB) Domains() []string {
	out := make([]string, 0, len(p.intervals))
	for d := range p.intervals {
		out = append(out, d)
	}
	return out
}

// Len returns the number of domains with presence.
func (p *PresenceDB) Len() int { return len(p.intervals) }
