package analysis

import (
	"repro/internal/cmps"
	"repro/internal/psl"
	"repro/internal/simtime"
	"repro/internal/toplist"
)

// MarketSharePoint is one x-position of Figure 5 (and A.4–A.6): the
// cumulative share of websites embedding each CMP among the toplist's
// first Size entries at the snapshot day.
type MarketSharePoint struct {
	Size int
	// Count[cmp] is the number of top-Size websites using the CMP.
	Count map[cmps.ID]int
	// Share[cmp] = Count[cmp] / Size.
	Share map[cmps.ID]float64
	// TotalShare is the share using any studied CMP.
	TotalShare float64
}

// DefaultSizes are the x-axis sample points of Figure 5 (log-spaced,
// top 100 through top 1M, clipped to the list length by the caller).
func DefaultSizes() []int {
	return []int{100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000, 1_000_000}
}

// MarketShareByRank computes cumulative market share as a function of
// toplist size at the snapshot day.
func MarketShareByRank(p *PresenceDB, list *toplist.List, day simtime.Day, sizes []int) []MarketSharePoint {
	var points []MarketSharePoint
	counts := make(map[cmps.ID]int)
	total := 0
	next := 0
	for i, domain := range list.Domains {
		if id := p.CMPAt(domain, day); id != cmps.None {
			counts[id]++
			total++
		}
		for next < len(sizes) && i+1 == sizes[next] {
			points = append(points, snapshotPoint(sizes[next], counts, total))
			next++
		}
	}
	// Sizes beyond the list length are reported at the full list.
	for next < len(sizes) {
		if sizes[next] >= list.Len() {
			points = append(points, snapshotPoint(list.Len(), counts, total))
			break
		}
		next++
	}
	return points
}

func snapshotPoint(size int, counts map[cmps.ID]int, total int) MarketSharePoint {
	pt := MarketSharePoint{
		Size:  size,
		Count: make(map[cmps.ID]int, len(counts)),
		Share: make(map[cmps.ID]float64, len(counts)),
	}
	for c, n := range counts {
		pt.Count[c] = n
		pt.Share[c] = float64(n) / float64(size)
	}
	pt.TotalShare = float64(total) / float64(size)
	return pt
}

// SharePoint is one sample of the store-driven market-share series:
// at Day, how many distinct observed domains each CMP served, among
// all domains with any presence interval.
type SharePoint struct {
	Day simtime.Day
	// Count[cmp] is the number of domains using the CMP at Day.
	Count map[cmps.ID]int
	// WithCMP is the number of domains with any CMP at Day.
	WithCMP int
	// Share[cmp] = Count[cmp] / WithCMP (0 when WithCMP is 0).
	Share map[cmps.ID]float64
}

// CMPShareSeries samples per-CMP domain counts and relative shares at
// each day, over every domain in the presence DB. Unlike
// MarketShareByRank it needs no toplist — it is the market-share
// analysis a live capture stream can answer on its own, and the shape
// the analyzed marketshare view serves.
func CMPShareSeries(p *PresenceDB, days []simtime.Day) []SharePoint {
	points := make([]SharePoint, len(days))
	for i, day := range days {
		points[i] = SharePoint{Day: day, Count: make(map[cmps.ID]int), Share: make(map[cmps.ID]float64)}
	}
	for _, ivs := range p.intervals {
		for i, day := range days {
			for _, iv := range ivs {
				if day >= iv.Start && day < iv.End && iv.CMP != cmps.None {
					points[i].Count[iv.CMP]++
					points[i].WithCMP++
					break
				}
			}
		}
	}
	for i := range points {
		if points[i].WithCMP == 0 {
			continue
		}
		for id, n := range points[i].Count {
			points[i].Share[id] = float64(n) / float64(points[i].WithCMP)
		}
	}
	return points
}

// EUUKShare computes, per CMP, the share of its websites with an EU or
// UK TLD at the snapshot day (Section 4.1: Quantcast 38.3%, OneTrust
// 16.3%).
func EUUKShare(p *PresenceDB, day simtime.Day) map[cmps.ID]float64 {
	count := make(map[cmps.ID]int)
	euuk := make(map[cmps.ID]int)
	for domain, ivs := range p.intervals {
		var id cmps.ID
		for _, iv := range ivs {
			if day >= iv.Start && day < iv.End {
				id = iv.CMP
				break
			}
		}
		if id == cmps.None {
			continue
		}
		count[id]++
		if psl.IsEUUK(domain) {
			euuk[id]++
		}
	}
	out := make(map[cmps.ID]float64, len(count))
	for id, n := range count {
		if n > 0 {
			out[id] = float64(euuk[id]) / float64(n)
		}
	}
	return out
}
