package analysis

import (
	"repro/internal/simtime"
)

// CoveragePoint is one snapshot of vantage-dependent visibility: the
// share of CMP websites each cloud vantage sees relative to the best
// (EU-university, extended-timeout) configuration. Tables 1 and A.3
// are two such snapshots; the series shows the CCPA-driven rise of US
// visibility continuously ("a growing share of websites adapt CMPs
// outside the EU", Table A.3 caption).
type CoveragePoint struct {
	Day        simtime.Day
	USCloud    float64
	EUCloud    float64
	UniDefault float64
}

// CampaignRunner abstracts the study's toplist campaign so the series
// can be computed without importing the orchestration layer.
type CampaignRunner func(day simtime.Day) *VantageTable

// CoverageSeries computes coverage points at the given days.
func CoverageSeries(run CampaignRunner, days []simtime.Day) []CoveragePoint {
	out := make([]CoveragePoint, 0, len(days))
	for _, day := range days {
		t := run(day)
		out = append(out, CoveragePoint{
			Day:        day,
			USCloud:    t.Coverage[USCloudKey()],
			EUCloud:    t.Coverage[EUCloudKey()],
			UniDefault: t.Coverage[EUUniversityDefaultKey()],
		})
	}
	return out
}

// MonthlyDays returns the 15th of each month from `from` through `to`
// (inclusive by month).
func MonthlyDays(from, to simtime.Day) []simtime.Day {
	var out []simtime.Day
	for m := from.Month(); m <= to; {
		mid := m + 14
		if mid.Valid() && mid <= to {
			out = append(out, mid)
		}
		t := m.Time().AddDate(0, 1, 0)
		m = simtime.FromTime(t)
	}
	return out
}
