package analysis

import (
	"testing"

	"repro/internal/capture"
	"repro/internal/crawler"
	"repro/internal/simtime"
	"repro/internal/webworld"
)

func TestComputeTrackingSynthetic(t *testing.T) {
	store := capture.NewMemStore()
	// Site with an identifying tracker cookie and two trackers.
	store.Record(&capture.Capture{
		FinalDomain: "a.com", FinalURL: "https://www.a.com/", Status: 200,
		Requests: []capture.Request{
			{Host: "www.a.com"}, {Host: "www.google-analytics.com"}, {Host: "cdn.jsdelivr.net"},
		},
		Cookies: []webworld.Cookie{{Domain: "www.google-analytics.com", Name: "uid", Value: "u-1"}},
	})
	// Clean site: first-party only, no identifying state.
	store.Record(&capture.Capture{
		FinalDomain: "b.com", FinalURL: "https://www.b.com/", Status: 200,
		Requests: []capture.Request{{Host: "www.b.com"}},
	})
	// Duplicate capture of a.com must not double count.
	store.Record(&capture.Capture{
		FinalDomain: "a.com", FinalURL: "https://www.a.com/", Status: 200,
		Requests: []capture.Request{{Host: "www.a.com"}},
	})

	stats := ComputeTracking(store)
	if stats.Websites != 2 {
		t.Fatalf("websites = %d", stats.Websites)
	}
	if stats.WithIdentifyingCookie != 1 || stats.IdentifyingShare() != 0.5 {
		t.Errorf("identifying: %+v", stats)
	}
	if stats.WithThirdPartyTracker != 1 || stats.TrackerShare() != 0.5 {
		t.Errorf("trackers: %+v", stats)
	}
	if stats.MeanThirdParties != 1 { // a.com has 2, b.com has 0
		t.Errorf("mean third parties = %v", stats.MeanThirdParties)
	}
}

// TestTrackingOnSyntheticWeb: the synthetic web reproduces the related
// work's headline — the overwhelming majority of sites store
// identifying state regardless of consent.
func TestTrackingOnSyntheticWeb(t *testing.T) {
	world := webworld.New(webworld.Config{Seed: 1, Domains: 3_000})
	var domains []string
	for _, d := range world.Domains()[:600] {
		domains = append(domains, d.Name)
	}
	c := &crawler.Campaign{World: world, Domains: domains, Day: simtime.Table1Snapshot}
	res := c.Run()
	store := res.Stores["eu-university/default"]
	stats := ComputeTracking(store)
	if stats.Websites < 300 {
		t.Fatalf("websites = %d", stats.Websites)
	}
	if share := stats.IdentifyingShare(); share < 0.80 {
		t.Errorf("identifying share = %.2f, want ≈0.9 (Sanchez-Rola et al.)", share)
	}
	if stats.MeanThirdParties < 1 {
		t.Errorf("mean third parties = %.1f, implausibly low", stats.MeanThirdParties)
	}
}
