package analysis

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/capture"
	"repro/internal/cmps"
	"repro/internal/detect"
	"repro/internal/interp"
	"repro/internal/simtime"
)

// foldCap fabricates one capture: domain, day, detected CMP (None for
// a CMP-less page), and the vantage/config column.
func foldCap(domain string, day int, id cmps.ID, v capture.Vantage, config string) *capture.Capture {
	c := &capture.Capture{
		SeedURL:     "https://" + domain + fmt.Sprintf("/p/%d", day),
		FinalURL:    "https://" + domain + "/",
		FinalDomain: domain,
		Day:         simtime.Day(day),
		Vantage:     v,
		Config:      config,
		Status:      200,
	}
	if id != cmps.None {
		c.Requests = []capture.Request{{Host: id.Hostname(), Path: "/t.js", Status: 200}}
	}
	return c
}

// syntheticStream builds a deterministic mixed stream: several
// domains, multiple captures per day, CMP switches, failures, and
// multiple vantage/config columns.
func syntheticStream(n int) []*capture.Capture {
	rng := rand.New(rand.NewSource(42))
	vantages := []capture.Vantage{capture.USCloud, capture.EUCloud, capture.EUUniversity}
	configs := []string{"default", "extended-timeout"}
	var out []*capture.Capture
	for i := 0; i < n; i++ {
		domain := fmt.Sprintf("site%d.example", rng.Intn(8))
		day := rng.Intn(simtime.NumDays)
		var id cmps.ID
		switch rng.Intn(4) {
		case 0:
			id = cmps.None
		default:
			// Domains drift between two CMPs over the window,
			// exercising switch transitions.
			if day < simtime.NumDays/2 {
				id = cmps.ID(1 + rng.Intn(3))
			} else {
				id = cmps.ID(1 + rng.Intn(int(cmps.Count)))
			}
		}
		c := foldCap(domain, day, id, vantages[rng.Intn(len(vantages))], configs[rng.Intn(len(configs))])
		if rng.Intn(20) == 0 {
			c.Failed = true
		}
		out = append(out, c)
	}
	return out
}

// TestPresenceFoldMatchesBatch proves the fold refactor: folding a
// stream record-by-record yields exactly the presence DB the batch
// Observations → BuildPresence pipeline computes.
func TestPresenceFoldMatchesBatch(t *testing.T) {
	caps := syntheticStream(600)
	det := detect.Default()

	obs := detect.NewObservations(det)
	for _, c := range caps {
		obs.Record(c)
	}
	batch := BuildPresence(obs, interp.Options{})

	fold := NewPresenceFold(det, interp.Options{})
	for i, c := range caps {
		fold.Fold(c)
		if i == len(caps)/2 {
			// A mid-stream snapshot must not disturb later folding
			// (the dirty-domain cache refreshes incrementally).
			fold.Presence()
		}
	}
	inc := fold.Presence()

	wantDomains := batch.Domains()
	gotDomains := inc.Domains()
	sort.Strings(wantDomains)
	sort.Strings(gotDomains)
	if !reflect.DeepEqual(wantDomains, gotDomains) {
		t.Fatalf("domains: got %v want %v", gotDomains, wantDomains)
	}
	for _, d := range wantDomains {
		if !reflect.DeepEqual(batch.Intervals(d), inc.Intervals(d)) {
			t.Errorf("%s: intervals differ\n got %+v\nwant %+v", d, inc.Intervals(d), batch.Intervals(d))
		}
	}
	if fold.Total != obs.Total || fold.MultiCMP != obs.MultiCMP {
		t.Errorf("counters: fold %d/%d, batch %d/%d", fold.Total, fold.MultiCMP, obs.Total, obs.MultiCMP)
	}
}

// TestPresenceFoldOrderIndependence proves the fold contract: any
// interleaving that preserves per-domain order folds to the same
// presence DB.
func TestPresenceFoldOrderIndependence(t *testing.T) {
	caps := syntheticStream(400)
	det := detect.Default()

	foldA := NewPresenceFold(det, interp.Options{})
	for _, c := range caps {
		foldA.Fold(c)
	}

	// Partition by domain (preserving relative order), then replay
	// domain-by-domain — the batch shard sweep's extreme case.
	byDomain := make(map[string][]*capture.Capture)
	var order []string
	for _, c := range caps {
		if c.FinalDomain != "" {
			if _, ok := byDomain[c.FinalDomain]; !ok {
				order = append(order, c.FinalDomain)
			}
			byDomain[c.FinalDomain] = append(byDomain[c.FinalDomain], c)
		}
	}
	foldB := NewPresenceFold(det, interp.Options{})
	for _, d := range order {
		for _, c := range byDomain[d] {
			foldB.Fold(c)
		}
	}

	a, b := foldA.Presence(), foldB.Presence()
	if a.Len() != b.Len() {
		t.Fatalf("len: %d vs %d", a.Len(), b.Len())
	}
	for _, d := range a.Domains() {
		if !reflect.DeepEqual(a.Intervals(d), b.Intervals(d)) {
			t.Errorf("%s: interleaving changed intervals", d)
		}
	}
}

// TestPresenceFoldCheckpointRoundTrip proves checkpoint restore is
// lossless mid-stream: state → marshal → restore → continue folding
// matches an uninterrupted fold.
func TestPresenceFoldCheckpointRoundTrip(t *testing.T) {
	caps := syntheticStream(300)
	det := detect.Default()

	straight := NewPresenceFold(det, interp.Options{})
	for _, c := range caps {
		straight.Fold(c)
	}

	first := NewPresenceFold(det, interp.Options{})
	for _, c := range caps[:150] {
		first.Fold(c)
	}
	first.Presence() // a refreshed cache must not leak into the checkpoint
	state, err := first.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	resumed := NewPresenceFold(det, interp.Options{})
	if err := resumed.UnmarshalState(state); err != nil {
		t.Fatal(err)
	}
	for _, c := range caps[150:] {
		resumed.Fold(c)
	}

	want, got := straight.Presence(), resumed.Presence()
	if want.Len() != got.Len() {
		t.Fatalf("len: got %d want %d", got.Len(), want.Len())
	}
	for _, d := range want.Domains() {
		if !reflect.DeepEqual(want.Intervals(d), got.Intervals(d)) {
			t.Errorf("%s: restored fold diverged", d)
		}
	}
	if resumed.Total != straight.Total || resumed.MultiCMP != straight.MultiCMP {
		t.Errorf("counters diverged: %d/%d vs %d/%d",
			resumed.Total, resumed.MultiCMP, straight.Total, straight.MultiCMP)
	}
}

// TestCoverageFold checks the monthly and cumulative tables against
// hand-computed expectations, including first-detection-wins dedup.
func TestCoverageFold(t *testing.T) {
	det := detect.Default()
	f := NewCoverageFold(det)
	jan, feb := simtime.Date(2019, 1, 10), simtime.Date(2019, 2, 5)
	us, eu := capture.USCloud, capture.EUCloud

	f.Fold(foldCap("a.com", int(jan), cmps.OneTrust, us, "default"))
	// Same month+config+domain: a later detection must not overwrite.
	f.Fold(foldCap("a.com", int(jan)+1, cmps.Quantcast, us, "default"))
	f.Fold(foldCap("b.com", int(jan), cmps.Quantcast, us, "default"))
	// Different config column counts separately.
	f.Fold(foldCap("a.com", int(jan), cmps.OneTrust, eu, "default"))
	// CMP-less and failed captures never occupy a slot.
	f.Fold(foldCap("c.com", int(jan), cmps.None, us, "default"))
	failed := foldCap("d.com", int(jan), cmps.OneTrust, us, "default")
	failed.Failed = true
	f.Fold(failed)
	// February: a.com switches to Quantcast — new month, fresh slot.
	f.Fold(foldCap("a.com", int(feb), cmps.Quantcast, us, "default"))

	months := f.Months()
	if len(months) != 2 || months[0] != jan.Month() || months[1] != feb.Month() {
		t.Fatalf("months = %v", months)
	}
	janTable := f.MonthTable(jan.Month())
	if got := janTable.Counts[cmps.OneTrust]["us-cloud/default"]; got != 1 {
		t.Errorf("jan OneTrust us-cloud = %d, want 1", got)
	}
	if got := janTable.Counts[cmps.Quantcast]["us-cloud/default"]; got != 1 {
		t.Errorf("jan Quantcast us-cloud = %d, want 1 (first detection wins)", got)
	}
	if got := janTable.Totals["us-cloud/default"]; got != 2 {
		t.Errorf("jan us-cloud total = %d, want 2", got)
	}
	if got := janTable.Totals["eu-cloud/default"]; got != 1 {
		t.Errorf("jan eu-cloud total = %d, want 1", got)
	}
	// Cumulative: a.com counts once under its January (earliest) CMP.
	cum := f.Cumulative()
	if got := cum.Counts[cmps.OneTrust]["us-cloud/default"]; got != 1 {
		t.Errorf("cumulative OneTrust = %d, want 1", got)
	}
	if got := cum.Totals["us-cloud/default"]; got != 2 {
		t.Errorf("cumulative us-cloud total = %d, want 2", got)
	}

	// Checkpoint round-trip preserves both tables exactly.
	state, err := f.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	g := NewCoverageFold(det)
	if err := g.UnmarshalState(state); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f.Cumulative(), g.Cumulative()) {
		t.Error("cumulative table diverged after checkpoint restore")
	}
	for _, m := range months {
		if !reflect.DeepEqual(f.MonthTable(m), g.MonthTable(m)) {
			t.Errorf("month %d table diverged after checkpoint restore", m)
		}
	}
}
