package analysis

import (
	"repro/internal/cmps"
	"repro/internal/simtime"
)

// AdoptionPoint is one x-position of Figure 6: the number of websites
// in a fixed domain set (the Tranco 10k) embedding each CMP on a day.
type AdoptionPoint struct {
	Day    simtime.Day
	Counts map[cmps.ID]int
	Total  int
}

// AdoptionOverTime samples CMP presence across the observation window
// every stepDays for the given domain set.
func AdoptionOverTime(p *PresenceDB, domains []string, stepDays int) []AdoptionPoint {
	if stepDays <= 0 {
		stepDays = 7
	}
	var points []AdoptionPoint
	for day := simtime.Day(0); int(day) < simtime.NumDays; day += simtime.Day(stepDays) {
		pt := AdoptionPoint{Day: day, Counts: make(map[cmps.ID]int, cmps.Count)}
		for _, domain := range domains {
			if id := p.CMPAt(domain, day); id != cmps.None {
				pt.Counts[id]++
				pt.Total++
			}
		}
		points = append(points, pt)
	}
	return points
}

// At returns the adoption point nearest to the given day.
func At(points []AdoptionPoint, day simtime.Day) AdoptionPoint {
	if len(points) == 0 {
		return AdoptionPoint{}
	}
	best := points[0]
	for _, pt := range points[1:] {
		if abs(int(pt.Day-day)) < abs(int(best.Day-day)) {
			best = pt
		}
	}
	return best
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// GrowthFactor returns the adoption-count ratio between two days,
// verifying the abstract's headline ("CMP adoption doubled from June
// 2018 to June 2019 and then doubled again until June 2020").
func GrowthFactor(points []AdoptionPoint, from, to simtime.Day) float64 {
	a := At(points, from)
	b := At(points, to)
	if a.Total == 0 {
		return 0
	}
	return float64(b.Total) / float64(a.Total)
}
