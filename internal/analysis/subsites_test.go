package analysis

import (
	"testing"

	"repro/internal/simtime"
	"repro/internal/webworld"
)

func TestSubsiteCoverageGain(t *testing.T) {
	w := webworld.New(webworld.Config{Seed: 1, Domains: 8_000})
	var domains []string
	for _, d := range w.Domains()[:2_000] {
		domains = append(domains, d.Name)
	}
	cov := CompareSubsiteCoverage(w, domains, simtime.Table1Snapshot, 4)
	if cov.Domains < 1_500 {
		t.Fatalf("compared only %d domains", cov.Domains)
	}
	if cov.SubsiteCMP <= cov.FrontPageCMP {
		t.Errorf("subsite sampling must find more CMPs: front=%d subsite=%d",
			cov.FrontPageCMP, cov.SubsiteCMP)
	}
	if cov.OnlyOnSubsites == 0 {
		t.Error("some CMPs exist only on subsites (Section 3.5)")
	}
	// ~6% of CMP sites are subsite-only; the gain should be in that
	// ballpark (slow-load misses on the front page add a little).
	if g := cov.Gain(); g < 0.02 || g > 0.20 {
		t.Errorf("subsite gain = %.3f, want ≈0.06", g)
	}
}

func TestSubsiteOnlySiteBehaviour(t *testing.T) {
	w := webworld.New(webworld.Config{Seed: 1, Domains: 8_000})
	var target *webworld.Domain
	for _, d := range w.Domains() {
		if d.CMPSubsitesOnly && len(d.Episodes) > 0 && !d.Unreachable && d.RedirectTo == "" &&
			!d.AntiBot && !d.Geo451 && !d.SlowLoad && !d.EUOnlyEmbed {
			target = d
			break
		}
	}
	if target == nil {
		t.Skip("no subsite-only domain in sample")
	}
	day := target.Episodes[0].Start
	cmp := target.Episodes[0].CMP
	front, err := w.Visit(target.Name, "/", webworld.VisitContext{Day: day, Geo: webworld.GeoEU})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := w.Visit(target.Name, target.SubsitePath(1), webworld.VisitContext{Day: day, Geo: webworld.GeoEU})
	if err != nil {
		t.Fatal(err)
	}
	has := func(p *webworld.Page) bool {
		for _, r := range p.Resources {
			if r.Host == cmp.Hostname() {
				return true
			}
		}
		return false
	}
	if has(front) {
		t.Error("landing page must not load the CMP")
	}
	if !has(sub) {
		t.Error("subsite must load the CMP")
	}
}
