package analysis

import (
	"repro/internal/capture"
	"repro/internal/cmps"
	"repro/internal/crawler"
	"repro/internal/detect"
)

// VantageTable is the Table 1 / Table A.3 structure: occurrence of
// CMPs on toplist websites measured from different vantage points and
// browser configurations.
type VantageTable struct {
	// Configs are the column keys in Table 1 order (see
	// crawler.ToplistConfigs).
	Configs []string
	// Counts[cmp][config] is the number of toplist websites where the
	// CMP was detected under that configuration.
	Counts map[cmps.ID]map[string]int
	// Totals[config] is the Σ row.
	Totals map[string]int
	// Coverage[config] = Totals[config] / max over configs.
	Coverage map[string]float64
}

// ComputeVantageTable classifies each campaign store with the detector
// and tallies distinct websites (by final registrable domain) per CMP.
func ComputeVantageTable(res *crawler.CampaignResult, det *detect.Detector) *VantageTable {
	t := &VantageTable{
		Counts:   make(map[cmps.ID]map[string]int),
		Totals:   make(map[string]int),
		Coverage: make(map[string]float64),
	}
	for _, c := range cmps.All() {
		t.Counts[c] = make(map[string]int)
	}
	for _, tc := range crawler.ToplistConfigs() {
		key := crawler.ConfigKey(tc)
		t.Configs = append(t.Configs, key)
		store, ok := res.Stores[key]
		if !ok {
			continue
		}
		seen := make(map[string]cmps.ID)
		for _, c := range store.All() {
			if c.Failed {
				continue
			}
			if id := det.DetectOne(c); id != cmps.None {
				if _, dup := seen[c.FinalDomain]; !dup {
					seen[c.FinalDomain] = id
				}
			}
		}
		for _, id := range seen {
			t.Counts[id][key]++
			t.Totals[key]++
		}
	}
	max := 0
	for _, total := range t.Totals {
		if total > max {
			max = total
		}
	}
	for key, total := range t.Totals {
		if max > 0 {
			t.Coverage[key] = float64(total) / float64(max)
		}
	}
	return t
}

// Count is a convenience accessor.
func (t *VantageTable) Count(c cmps.ID, configKey string) int {
	return t.Counts[c][configKey]
}

// USCloudKey / EUCloudKey / EUUniversityKeys name the standard columns.
func USCloudKey() string { return capture.USCloud.Name + "/default" }

// EUCloudKey returns the EU-cloud column key.
func EUCloudKey() string { return capture.EUCloud.Name + "/default" }

// EUUniversityDefaultKey returns the default-timing university column.
func EUUniversityDefaultKey() string { return capture.EUUniversity.Name + "/default" }

// EUUniversityExtendedKey returns the extended-timeout column.
func EUUniversityExtendedKey() string { return capture.EUUniversity.Name + "/extended-timeout" }
