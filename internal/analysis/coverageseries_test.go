package analysis

import (
	"testing"

	"repro/internal/simtime"
)

func TestMonthlyDays(t *testing.T) {
	from := simtime.Date(2019, 11, 3)
	to := simtime.Date(2020, 2, 20)
	days := MonthlyDays(from, to)
	want := []string{"2019-11-15", "2019-12-15", "2020-01-15", "2020-02-15"}
	if len(days) != len(want) {
		t.Fatalf("days = %v", days)
	}
	for i, d := range days {
		if d.String() != want[i] {
			t.Errorf("day[%d] = %s, want %s", i, d, want[i])
		}
	}
}

func TestCoverageSeries(t *testing.T) {
	// A synthetic runner whose US coverage rises over time.
	runner := func(day simtime.Day) *VantageTable {
		us := 0.6 + 0.2*float64(day)/float64(simtime.NumDays)
		return &VantageTable{
			Coverage: map[string]float64{
				USCloudKey():             us,
				EUCloudKey():             0.85,
				EUUniversityDefaultKey(): 0.97,
			},
		}
	}
	days := []simtime.Day{100, 500, 900}
	pts := CoverageSeries(runner, days)
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if !(pts[0].USCloud < pts[1].USCloud && pts[1].USCloud < pts[2].USCloud) {
		t.Error("series must preserve the runner's trend")
	}
	if pts[0].EUCloud != 0.85 || pts[0].UniDefault != 0.97 {
		t.Errorf("point: %+v", pts[0])
	}
}
