package analysis

import (
	"sort"

	"repro/internal/simtime"
)

// Adoption-spike detection: Figure 6's qualitative claim — "Laws like
// GDPR and CCPA coming into effect were significant drivers in CMP
// adoption ... However, events relevant to privacy law like fines or
// regulatory guidance do not affect adoption" — made algorithmic: a
// month is a spike when its absolute adoption growth exceeds a robust
// multiple of the typical monthly growth.

// Spike is one detected adoption surge.
type Spike struct {
	// Month is the first day of the spiking month.
	Month simtime.Day
	// Growth is the adoption-count increase during the month.
	Growth int
	// Ratio is Growth divided by the median monthly growth.
	Ratio float64
}

// DetectAdoptionSpikes finds months whose adoption growth exceeds
// ratio × the median positive monthly growth. Points should be an
// AdoptionOverTime series (any step ≤ 31 days).
func DetectAdoptionSpikes(points []AdoptionPoint, ratio float64) []Spike {
	if len(points) == 0 {
		return nil
	}
	if ratio <= 1 {
		ratio = 3
	}
	// Aggregate to month ends: last point of each month.
	type monthTotal struct {
		month simtime.Day
		total int
	}
	var months []monthTotal
	for _, pt := range points {
		m := pt.Day.Month()
		if len(months) > 0 && months[len(months)-1].month == m {
			months[len(months)-1].total = pt.Total
		} else {
			months = append(months, monthTotal{month: m, total: pt.Total})
		}
	}
	if len(months) < 3 {
		return nil
	}
	growths := make([]int, 0, len(months)-1)
	for i := 1; i < len(months); i++ {
		growths = append(growths, months[i].total-months[i-1].total)
	}
	// Median of positive growths: robust to the flat early window.
	positive := make([]int, 0, len(growths))
	for _, g := range growths {
		if g > 0 {
			positive = append(positive, g)
		}
	}
	if len(positive) == 0 {
		return nil
	}
	sort.Ints(positive)
	median := float64(positive[len(positive)/2])
	if median <= 0 {
		return nil
	}
	var spikes []Spike
	for i, g := range growths {
		if r := float64(g) / median; r >= ratio {
			spikes = append(spikes, Spike{
				Month:  months[i+1].month,
				Growth: g,
				Ratio:  r,
			})
		}
	}
	return spikes
}

// SpikeNear reports whether any spike falls within windowDays of the
// event day (e.g. a law coming into effect).
func SpikeNear(spikes []Spike, event simtime.Day, windowDays int) bool {
	for _, s := range spikes {
		delta := int(s.Month - event.Month())
		if delta < 0 {
			delta = -delta
		}
		if delta <= windowDays {
			return true
		}
	}
	return false
}
