package analysis

import (
	"repro/internal/cmps"
	"repro/internal/interp"
)

// FlowMatrix is the Figure 4 structure: how many websites moved from
// one CMP to another (or adopted from / abandoned to nothing) over the
// observation window. Index 0 is cmps.None.
type FlowMatrix struct {
	// Counts[from][to] is the number of observed transitions.
	Counts [cmps.Count + 1][cmps.Count + 1]int
}

// SwitchingFlows derives the flow matrix from the presence database.
func SwitchingFlows(p *PresenceDB) *FlowMatrix {
	m := &FlowMatrix{}
	for _, ivs := range p.intervals {
		for _, sw := range interp.Switches(ivs) {
			m.Counts[sw.From][sw.To]++
		}
	}
	return m
}

// Between returns the transition count from one CMP to another.
func (m *FlowMatrix) Between(from, to cmps.ID) int { return m.Counts[from][to] }

// GainsFromCompetitors sums inflows from other CMPs (excluding fresh
// adoptions).
func (m *FlowMatrix) GainsFromCompetitors(c cmps.ID) int {
	total := 0
	for _, from := range cmps.All() {
		if from != c {
			total += m.Counts[from][c]
		}
	}
	return total
}

// LossesToCompetitors sums outflows to other CMPs (excluding drops to
// no CMP).
func (m *FlowMatrix) LossesToCompetitors(c cmps.ID) int {
	total := 0
	for _, to := range cmps.All() {
		if to != c {
			total += m.Counts[c][to]
		}
	}
	return total
}

// Adoptions returns fresh adoptions (from no CMP).
func (m *FlowMatrix) Adoptions(c cmps.ID) int { return m.Counts[cmps.None][c] }

// Abandons returns drops to no CMP.
func (m *FlowMatrix) Abandons(c cmps.ID) int { return m.Counts[c][cmps.None] }

// NetCompetitive returns gains minus losses against competitors; the
// paper's Figure 4 shows Cookiebot losing an order of magnitude more
// than it gains while Quantcast and OneTrust trade in both directions.
func (m *FlowMatrix) NetCompetitive(c cmps.ID) int {
	return m.GainsFromCompetitors(c) - m.LossesToCompetitors(c)
}
