package analysis

import (
	"testing"

	"repro/internal/capture"
	"repro/internal/cmps"
	"repro/internal/crawler"
	"repro/internal/detect"
	"repro/internal/simtime"
	"repro/internal/webworld"
)

// craftCampaign builds a CampaignResult with hand-made captures:
// domain a.com shows OneTrust everywhere; b.com shows Quantcast only
// at the EU university; c.com never shows a CMP.
func craftCampaign() *crawler.CampaignResult {
	res := &crawler.CampaignResult{Stores: map[string]*capture.MemStore{}}
	add := func(key, domain, host string) {
		store := res.Stores[key]
		if store == nil {
			store = capture.NewMemStore()
			res.Stores[key] = store
		}
		c := &capture.Capture{FinalDomain: domain, Status: 200}
		if host != "" {
			c.Requests = append(c.Requests, capture.Request{Host: host})
		}
		store.Record(c)
	}
	for _, tc := range crawler.ToplistConfigs() {
		key := crawler.ConfigKey(tc)
		add(key, "a.com", "cdn.cookielaw.org")
		add(key, "c.com", "")
		if tc.Vantage.Name == capture.EUUniversity.Name {
			add(key, "b.com", "quantcast.mgr.consensu.org")
		} else {
			add(key, "b.com", "")
		}
	}
	return res
}

func TestComputeVantageTableUnit(t *testing.T) {
	vt := ComputeVantageTable(craftCampaign(), detect.Default())
	if len(vt.Configs) != 6 {
		t.Fatalf("configs = %d", len(vt.Configs))
	}
	us := USCloudKey()
	uni := EUUniversityDefaultKey()
	if vt.Count(cmps.OneTrust, us) != 1 || vt.Count(cmps.Quantcast, us) != 0 {
		t.Errorf("US counts: OT=%d QC=%d", vt.Count(cmps.OneTrust, us), vt.Count(cmps.Quantcast, us))
	}
	if vt.Count(cmps.Quantcast, uni) != 1 {
		t.Errorf("university misses Quantcast")
	}
	if vt.Totals[us] != 1 || vt.Totals[uni] != 2 {
		t.Errorf("totals: us=%d uni=%d", vt.Totals[us], vt.Totals[uni])
	}
	if vt.Coverage[uni] != 1 || vt.Coverage[us] != 0.5 {
		t.Errorf("coverage: us=%v uni=%v", vt.Coverage[us], vt.Coverage[uni])
	}
	if vt.Coverage[EUUniversityExtendedKey()] != 1 || vt.Coverage[EUCloudKey()] != 0.5 {
		t.Error("column keys broken")
	}
}

func TestComputeMissingDataUnit(t *testing.T) {
	w := webworld.New(webworld.Config{Seed: 1, Domains: 3_000})
	var domains []string
	for _, d := range w.Domains()[:1_000] {
		domains = append(domains, d.Name)
	}
	// Nothing observed: every domain is never-shared and classified.
	md := ComputeMissingData(w, domains, func(string) bool { return false })
	if md.ToplistSize != 1_000 || md.NeverShared != 1_000 {
		t.Fatalf("breakdown: %+v", md)
	}
	sum := md.Unreachable + md.NoValidResponse + md.HTTPError +
		md.RedirectedElswhere + md.Infrastructure + md.Other
	if sum != md.NeverShared {
		t.Errorf("classification must partition: %d != %d", sum, md.NeverShared)
	}
	// Everything observed: nothing missing.
	md = ComputeMissingData(w, domains, func(string) bool { return true })
	if md.NeverShared != 0 {
		t.Errorf("fully observed toplist: %+v", md)
	}
	// Unknown domains are skipped, not misclassified.
	md = ComputeMissingData(w, []string{"not-in-universe.example"}, func(string) bool { return false })
	if md.NeverShared != 0 {
		t.Errorf("unknown domain classified: %+v", md)
	}
}

func TestTimeoutLossUnit(t *testing.T) {
	w := webworld.New(webworld.Config{Seed: 1, Domains: 5_000})
	var domains []string
	for _, d := range w.Domains()[:1_500] {
		domains = append(domains, d.Name)
	}
	c := &crawler.Campaign{World: w, Domains: domains, Day: simtime.Table1Snapshot}
	res := c.Run()
	loss := TimeoutLoss(res, detect.Default())
	if loss < 0 || loss > 0.10 {
		t.Errorf("timeout loss = %.3f, want ≈0.02", loss)
	}
}

func TestPromptChangesObservedUnit(t *testing.T) {
	det := detect.Default()
	caps := []*capture.Capture{
		{Status: 200, Requests: []capture.Request{{Host: "quantcast.mgr.consensu.org"}},
			DOM: `<div class="qc-cmp-ui" data-prompt-rev="3">A</div>`},
		{Status: 200, Requests: []capture.Request{{Host: "quantcast.mgr.consensu.org"}},
			DOM: `<div class="qc-cmp-ui" data-prompt-rev="3">A</div>`},
		{Status: 200, Requests: []capture.Request{{Host: "quantcast.mgr.consensu.org"}},
			DOM: `<div class="qc-cmp-ui" data-prompt-rev="5">B</div>`},
		// Another CMP's capture must not count toward Quantcast.
		{Status: 200, Requests: []capture.Request{{Host: "cdn.cookielaw.org"}},
			DOM: `<div data-prompt-rev="9">C</div>`},
		// Failed captures are ignored.
		{Failed: true, DOM: `<div data-prompt-rev="7">D</div>`},
	}
	revs := PromptRevisionsObserved(caps, det, cmps.Quantcast)
	if len(revs) != 2 || !revs[3] || !revs[5] {
		t.Errorf("revisions = %v", revs)
	}
	if got := PromptChangesObserved(caps, det, cmps.Quantcast); got != 1 {
		t.Errorf("changes = %d, want 1", got)
	}
	if got := PromptChangesObserved(nil, det, cmps.Quantcast); got != 0 {
		t.Errorf("empty changes = %d", got)
	}
}

func TestDefaultSizes(t *testing.T) {
	sizes := DefaultSizes()
	if len(sizes) == 0 || sizes[0] != 100 || sizes[len(sizes)-1] != 1_000_000 {
		t.Errorf("sizes = %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatal("sizes must increase")
		}
	}
}
