package analysis

import (
	"math"
	"testing"

	"repro/internal/cmps"
)

func TestEstimateTimeCost(t *testing.T) {
	in := TimeCostInputs{
		AdoptionShare: map[cmps.ID]float64{
			cmps.Quantcast: 0.05, // 5% of sites
			cmps.TrustArc:  0.02,
		},
		DirectRejectShare: map[cmps.ID]float64{
			cmps.Quantcast: 0.55,
			cmps.TrustArc:  0.07,
		},
		AcceptSec:         3.2,
		RejectDirectSec:   3.6,
		RejectIndirectSec: 6.7,
		PartnerOptOutSec:  34,
		PartnerConnectShare: map[cmps.ID]float64{
			cmps.TrustArc: 0.12,
		},
	}
	res := EstimateTimeCost(in)
	// Quantcast: 0.05 × (0.55·0.4 + 0.45·3.5) = 0.05 × 1.795 = 0.08975
	wantQC := 0.05 * (0.55*0.4 + 0.45*3.5)
	if math.Abs(res.PerCMP[cmps.Quantcast]-wantQC) > 1e-9 {
		t.Errorf("Quantcast cost = %v, want %v", res.PerCMP[cmps.Quantcast], wantQC)
	}
	// TrustArc: 0.02 × (0.07·0.4 + 0.93·3.5 + 0.12·34) = 0.02 × 7.363
	wantTA := 0.02 * (0.07*0.4 + 0.93*3.5 + 0.12*34)
	if math.Abs(res.PerCMP[cmps.TrustArc]-wantTA) > 1e-9 {
		t.Errorf("TrustArc cost = %v, want %v", res.PerCMP[cmps.TrustArc], wantTA)
	}
	if math.Abs(res.ExtraSecPerVisit-(wantQC+wantTA)) > 1e-9 {
		t.Errorf("total = %v", res.ExtraSecPerVisit)
	}
	if res.ExtraSecPer100Sites != 100*res.ExtraSecPerVisit {
		t.Error("per-100 scaling")
	}
	if math.Abs(res.DialogChance-0.07) > 1e-9 {
		t.Errorf("dialog chance = %v", res.DialogChance)
	}
	// The TrustArc partner wait dominates despite lower adoption:
	// the per-site cost ratio must exceed the adoption ratio.
	if res.PerCMP[cmps.TrustArc] < res.PerCMP[cmps.Quantcast] {
		t.Error("partner opt-outs should dominate the cost despite lower adoption")
	}
}

func TestTimeCostFromMeasurements(t *testing.T) {
	adoption := MarketSharePoint{
		Size:  1_000,
		Share: map[cmps.ID]float64{cmps.Quantcast: 0.03, cmps.OneTrust: 0.05},
	}
	custom := map[cmps.ID]*CustomizationStats{
		cmps.Quantcast: {
			CMP: cmps.Quantcast, Websites: 100,
			Variants: map[string]int{"direct-reject": 55, "more-options": 45},
		},
		cmps.OneTrust: {
			CMP: cmps.OneTrust, Websites: 100,
			Variants: map[string]int{"conventional-banner": 97, "direct-reject": 3},
		},
	}
	res := TimeCostFromMeasurements(adoption, custom, 3.2, 3.6, 6.7, 34)
	if res.ExtraSecPerVisit <= 0 {
		t.Fatal("cost must be positive")
	}
	// OneTrust sites (mostly no direct reject) must cost more per
	// adopted site than Quantcast sites (55% direct reject), after
	// normalizing by adoption.
	otPerSite := res.PerCMP[cmps.OneTrust] / 0.05
	qcPerSite := res.PerCMP[cmps.Quantcast] / 0.03
	if otPerSite <= qcPerSite {
		t.Errorf("per-site cost: OneTrust %.2f vs Quantcast %.2f", otPerSite, qcPerSite)
	}
}
