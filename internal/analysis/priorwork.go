package analysis

import "time"

// PriorStudy is one entry of Figure 1: previous post-GDPR consent
// studies were point-in-time snapshots of comparatively small samples
// in a rapidly changing environment.
type PriorStudy struct {
	Label string
	Venue string
	// Start/End bound the measurement window.
	Start, End time.Time
	// Domains is the sample size.
	Domains int
	// Snapshot marks point-in-time designs (everything but this work).
	Snapshot bool
}

// PriorWork returns the Figure 1 dataset: the related studies' sample
// sizes and windows alongside this study's longitudinal design. Values
// follow the studies cited in the paper (Section 6).
func PriorWork() []PriorStudy {
	d := func(y int, m time.Month) time.Time { return time.Date(y, m, 1, 0, 0, 0, 0, time.UTC) }
	return []PriorStudy{
		{"Degeling et al.", "NDSS '19", d(2018, 1), d(2018, 5), 6_357, true},
		{"Sanchez-Rola et al.", "AsiaCCS '19", d(2018, 10), d(2018, 11), 2_000, true},
		{"van Eijk et al.", "ConPro '19", d(2019, 1), d(2019, 2), 1_500, true},
		{"Utz et al.", "CCS '19", d(2018, 6), d(2018, 8), 1_000, true},
		{"Nouwens et al.", "CHI '20", d(2020, 1), d(2020, 1), 10_000, true},
		{"Matte et al.", "S&P '20", d(2019, 4), d(2019, 9), 28_257, true},
		{"Hils et al. (this work)", "IMC '20", d(2018, 3), d(2020, 9), 4_200_000, false},
	}
}

// QuantcastPromptChanges is the number of times the consent prompt of
// a single CMP (Quantcast) changed during the paper's observation
// period, illustrating the rapidly changing environment (Figure 1).
const QuantcastPromptChanges = 38
