package analysis

import (
	"testing"

	"repro/internal/capture"
	"repro/internal/cmps"
	"repro/internal/detect"
	"repro/internal/interp"
	"repro/internal/simtime"
)

// Edge cases the incremental refactor must not regress: empty worlds,
// single-day windows, and domains that switch CMPs mid-window.

func TestDetectAdoptionSpikesEmptyWorld(t *testing.T) {
	if got := DetectAdoptionSpikes(nil, 3); got != nil {
		t.Errorf("nil series: got %v, want nil", got)
	}
	// An all-zero series (domains observed, none adopting) has no
	// positive growth and therefore no median to spike against.
	var flat []AdoptionPoint
	for d := 0; d < simtime.NumDays; d += 7 {
		flat = append(flat, AdoptionPoint{Day: simtime.Day(d), Counts: map[cmps.ID]int{}})
	}
	if got := DetectAdoptionSpikes(flat, 3); got != nil {
		t.Errorf("flat series: got %v, want nil", got)
	}
}

func TestDetectAdoptionSpikesSingleDayWindow(t *testing.T) {
	// One sample — fewer than the three month aggregates the detector
	// needs — must yield no spikes rather than divide by zero.
	pts := []AdoptionPoint{{Day: simtime.Day(0), Total: 5, Counts: map[cmps.ID]int{cmps.OneTrust: 5}}}
	if got := DetectAdoptionSpikes(pts, 3); got != nil {
		t.Errorf("single point: got %v, want nil", got)
	}
}

func TestCMPShareSeriesEmptyWorld(t *testing.T) {
	fold := NewPresenceFold(detect.Default(), interp.Options{})
	p := fold.Presence()
	days := []simtime.Day{0, 100, simtime.Day(simtime.NumDays - 1)}
	pts := CMPShareSeries(p, days)
	if len(pts) != len(days) {
		t.Fatalf("got %d points, want %d", len(pts), len(days))
	}
	for _, pt := range pts {
		if pt.WithCMP != 0 || len(pt.Count) != 0 || len(pt.Share) != 0 {
			t.Errorf("day %d: empty world produced nonzero share %+v", pt.Day, pt)
		}
	}
}

func TestCMPShareSeriesSingleDayWindow(t *testing.T) {
	det := detect.Default()
	fold := NewPresenceFold(det, interp.Options{})
	day := int(simtime.Date(2019, 6, 1))
	// Two domains observed on exactly one day each: intervals collapse
	// to the minimal censored span around that day.
	fold.Fold(foldCap("one.example", day, cmps.OneTrust, capture.EUCloud, "default"))
	fold.Fold(foldCap("two.example", day, cmps.Quantcast, capture.EUCloud, "default"))
	p := fold.Presence()

	pts := CMPShareSeries(p, []simtime.Day{simtime.Day(day)})
	if len(pts) != 1 {
		t.Fatalf("got %d points, want 1", len(pts))
	}
	pt := pts[0]
	if pt.WithCMP != 2 {
		t.Fatalf("WithCMP = %d, want 2", pt.WithCMP)
	}
	if pt.Share[cmps.OneTrust] != 0.5 || pt.Share[cmps.Quantcast] != 0.5 {
		t.Errorf("shares = %v, want 0.5 each", pt.Share)
	}
	// A day far outside the censored fade-out sees no presence at all.
	far := CMPShareSeries(p, []simtime.Day{0})[0]
	if far.WithCMP != 0 {
		t.Errorf("day 0 WithCMP = %d, want 0", far.WithCMP)
	}
}

// TestCMPShareSeriesMidWindowSwitch drives a domain that switches
// CMPs mid-window through the fold, snapshotting between the two
// halves to exercise the dirty-domain re-interpolation transition.
func TestCMPShareSeriesMidWindowSwitch(t *testing.T) {
	det := detect.Default()
	fold := NewPresenceFold(det, interp.Options{})
	mid := simtime.NumDays / 2
	// Dense observations so interpolation has no gaps to censor away.
	for d := 0; d < mid; d += 3 {
		fold.Fold(foldCap("switcher.example", d, cmps.OneTrust, capture.EUCloud, "default"))
	}
	before := CMPShareSeries(fold.Presence(), []simtime.Day{simtime.Day(mid / 2)})[0]
	if before.Count[cmps.OneTrust] != 1 {
		t.Fatalf("before switch: %+v", before)
	}
	for d := mid; d < simtime.NumDays; d += 3 {
		fold.Fold(foldCap("switcher.example", d, cmps.Quantcast, capture.EUCloud, "default"))
	}
	p := fold.Presence()

	early := CMPShareSeries(p, []simtime.Day{simtime.Day(mid / 2)})[0]
	late := CMPShareSeries(p, []simtime.Day{simtime.Day(mid + mid/2)})[0]
	if early.Count[cmps.OneTrust] != 1 || early.Count[cmps.Quantcast] != 0 {
		t.Errorf("early half: %+v, want OneTrust only", early.Count)
	}
	if late.Count[cmps.Quantcast] != 1 || late.Count[cmps.OneTrust] != 0 {
		t.Errorf("late half: %+v, want Quantcast only", late.Count)
	}

	// The switch must also be visible as adjacent intervals with
	// different CMPs — the fold-state transition itself.
	ivs := p.Intervals("switcher.example")
	var sawSwitch bool
	for i := 1; i < len(ivs); i++ {
		if ivs[i-1].CMP == cmps.OneTrust && ivs[i].CMP == cmps.Quantcast {
			sawSwitch = true
		}
	}
	if !sawSwitch {
		t.Errorf("no OneTrust→Quantcast interval transition in %+v", ivs)
	}
}
