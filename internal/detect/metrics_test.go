package detect

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/capture"
	"repro/internal/cmps"
	"repro/internal/obs"
)

func reqCapture(domain string, hosts ...string) *capture.Capture {
	c := &capture.Capture{FinalDomain: domain, Day: 12}
	for _, h := range hosts {
		c.Requests = append(c.Requests, capture.Request{Host: h})
	}
	return c
}

func TestDetectorMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	d := Default()
	d.SetMetrics(NewMetrics(reg))

	one := reqCapture("a.com", "www.a.com", cmps.OneTrust.Hostname())
	multi := reqCapture("b.com", cmps.Quantcast.Hostname(), cmps.OneTrust.Hostname())
	none := reqCapture("c.com", "www.c.com")

	if got := d.DetectOne(one); got != cmps.OneTrust {
		t.Fatalf("DetectOne = %v", got)
	}
	d.DetectMask(multi)
	d.Detect(none)
	d.Detect(multi)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`detect_captures_total{cmp="OneTrust"} 1`,
		`detect_captures_total{cmp="Quantcast"} 2`,
		`detect_captures_total{cmp="none"} 1`,
		"detect_multi_cmp_total 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if err := obs.ValidateExposition(strings.NewReader(text)); err != nil {
		t.Errorf("invalid exposition: %v", err)
	}
}

func TestObservationsTracerAndSinkMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(obs.TracerConfig{})
	o := NewObservations(Default())
	o.SetTracer(tr)
	o.RegisterMetrics(reg)

	o.Record(reqCapture("a.com", cmps.Cookiebot.Hostname()))
	o.Record(reqCapture("b.com", "www.b.com"))
	failed := reqCapture("c.com", cmps.OneTrust.Hostname())
	failed.Failed = true
	o.Record(failed) // failed captures are not aggregated, not traced

	if tr.Len() != 2 {
		t.Errorf("spans = %d, want 2", tr.Len())
	}
	var spans bytes.Buffer
	if err := tr.WriteNDJSON(&spans, "detect"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(spans.String(), `"id":"detect[domain=a.com;day=day 12]"`) &&
		!strings.Contains(spans.String(), `"domain","v":"a.com"`) {
		t.Errorf("detect span for a.com missing:\n%s", spans.String())
	}
	if !strings.Contains(spans.String(), `{"k":"cmp","v":"Cookiebot"}`) {
		t.Errorf("classified CMP should be a display attribute:\n%s", spans.String())
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"detect_sink_recorded_total 2",
		"detect_sink_domains 2",
		"detect_sink_multi_cmp_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// The hot paths must stay allocation-free with telemetry off and
// allocation-free per classification with counters attached.
func TestDetectHotPathAllocs(t *testing.T) {
	c := reqCapture("a.com", "x.com", cmps.TrustArc.Hostname())
	for name, d := range map[string]*Detector{
		"no-metrics":   Default(),
		"with-metrics": func() *Detector { d := Default(); d.SetMetrics(NewMetrics(obs.NewRegistry())); return d }(),
	} {
		if n := testing.AllocsPerRun(100, func() { d.DetectOne(c) }); n != 0 {
			t.Errorf("%s: DetectOne allocs %v, want 0", name, n)
		}
		if n := testing.AllocsPerRun(100, func() { d.DetectMask(c) }); n != 0 {
			t.Errorf("%s: DetectMask allocs %v, want 0", name, n)
		}
	}
	o := NewObservations(Default())
	o.Record(c) // warm the domain slice
	if n := testing.AllocsPerRun(100, func() { o.Record(c) }); n > 1 {
		t.Errorf("Record allocs %v, want <=1 (amortized slice growth)", n)
	}
}
