// Package detect implements the paper's CMP detection methodology
// (Section 3.2): fingerprints of varying specificity built from HTTP
// request patterns, CSS selectors, and extracted text. The robust
// primary indicator is a unique hostname per consent-dialog framework
// (Table A.2) — e.g. all OneTrust deployments request
// cdn.cookielaw.org on page load regardless of dialog design. Network
// patterns detect CMPs even when no dialog is triggered (e.g. visiting
// an EU-centric website from the US).
package detect

import (
	"strings"

	"repro/internal/capture"
	"repro/internal/cmps"
)

// Fingerprint is one detection rule for a CMP. Rules have varying
// specificity; the hostname rules are the synthesized robust
// indicators of Table A.2.
type Fingerprint struct {
	CMP cmps.ID
	// Hostname matches a logged request host exactly.
	Hostname string
	// CSSSelector matches a class name in the stored DOM (toplist
	// crawls only).
	CSSSelector string
}

// Fingerprints returns the detection rules for the six studied CMPs.
func Fingerprints() []Fingerprint {
	css := map[cmps.ID]string{
		cmps.OneTrust:  "onetrust-banner-sdk",
		cmps.Quantcast: "qc-cmp-ui",
		cmps.TrustArc:  "truste_overlay",
		cmps.Cookiebot: "CybotCookiebotDialog",
		cmps.LiveRamp:  "faktor-cmp",
		cmps.Crownpeak: "evidon-banner",
	}
	fps := make([]Fingerprint, 0, cmps.Count)
	for _, c := range cmps.All() {
		fps = append(fps, Fingerprint{CMP: c, Hostname: c.Hostname(), CSSSelector: css[c]})
	}
	return fps
}

// Detector classifies captures.
type Detector struct {
	byHost map[string]cmps.ID
	byCSS  map[string]cmps.ID
	m      *Metrics // nil = telemetry off; see SetMetrics
}

// New builds a detector from the given fingerprints; pass
// Fingerprints() for the paper's rules.
func New(fps []Fingerprint) *Detector {
	d := &Detector{
		byHost: make(map[string]cmps.ID, len(fps)),
		byCSS:  make(map[string]cmps.ID, len(fps)),
	}
	for _, fp := range fps {
		if fp.Hostname != "" {
			d.byHost[fp.Hostname] = fp.CMP
		}
		if fp.CSSSelector != "" {
			d.byCSS[fp.CSSSelector] = fp.CMP
		}
	}
	return d
}

// Default returns a detector with the Table A.2 rules.
func Default() *Detector { return New(Fingerprints()) }

// Detect returns the CMPs whose network fingerprints match the
// capture, in first-request order. More than one CMP on a page is an
// overcount the paper quantifies at 0.01% of captures. The no-match
// path performs no allocations; a match allocates only the result
// slice (dedup is tracked in a bitmask, not a map).
func (d *Detector) Detect(c *capture.Capture) []cmps.ID {
	var seen uint32
	var out []cmps.ID
	for _, r := range c.Requests {
		if id, ok := d.byHost[r.Host]; ok && seen&(1<<uint(id)) == 0 {
			seen |= 1 << uint(id)
			out = append(out, id)
		}
	}
	if len(out) > 0 {
		d.m.masked(out[0], seen)
	} else {
		d.m.one(cmps.None)
	}
	return out
}

// DetectMask classifies the capture without allocating: it returns the
// first matching CMP in request order (cmps.None when nothing matches)
// and a bitmask with bit i set iff cmps.ID(i) matched. It is the
// hot-path entry point for streaming sinks that record millions of
// captures.
func (d *Detector) DetectMask(c *capture.Capture) (first cmps.ID, mask uint32) {
	for _, r := range c.Requests {
		if id, ok := d.byHost[r.Host]; ok {
			if mask == 0 {
				first = id
			}
			mask |= 1 << uint(id)
		}
	}
	d.m.masked(first, mask)
	return first, mask
}

// DetectOne returns the single detected CMP, or cmps.None. When
// multiple match (0.01% of captures), the first in request order wins.
func (d *Detector) DetectOne(c *capture.Capture) cmps.ID {
	for _, r := range c.Requests {
		if id, ok := d.byHost[r.Host]; ok {
			d.m.one(id)
			return id
		}
	}
	d.m.one(cmps.None)
	return cmps.None
}

// DetectDOM classifies via CSS-selector fingerprints on the stored DOM
// tree. The paper found DOM parsing "much more unreliable" than
// network patterns — it fails whenever the site's configuration does
// not render a dialog; the ablation bench quantifies this.
func (d *Detector) DetectDOM(c *capture.Capture) cmps.ID {
	if c.DOM == "" {
		return cmps.None
	}
	for sel, id := range d.byCSS {
		if strings.Contains(c.DOM, sel) {
			return id
		}
	}
	return cmps.None
}

// gdprPhrases are consent-prompt phrases from Degeling et al. (NDSS
// 2019), used to search toplist screenshots for dialogs the hostname
// fingerprints might have missed (fingerprint validation, Section 3.2).
var gdprPhrases = []string{
	"we value your privacy",
	"we use cookies",
	"cookie consent",
	"personal data",
	"privacy policy",
	"gdpr",
}

// HasConsentLanguage reports whether the capture's screenshot text
// contains a known GDPR consent phrase.
func HasConsentLanguage(c *capture.Capture) bool {
	text := strings.ToLower(c.ScreenshotText)
	for _, p := range gdprPhrases {
		if strings.Contains(text, p) {
			return true
		}
	}
	return false
}

// SiteHeuristicThreshold is the share of captures that must contain
// the CMP for a website to be classified as using it: "we classify a
// website as using a CMP if the CMP is included in at least every
// third capture" (Section 3.5, Subsites).
const SiteHeuristicThreshold = 1.0 / 3
