package detect

import (
	"testing"

	"repro/internal/capture"
	"repro/internal/cmps"
	"repro/internal/simtime"
)

func capWithHosts(domain string, day simtime.Day, hosts ...string) *capture.Capture {
	c := &capture.Capture{FinalDomain: domain, Day: day, Status: 200}
	for _, h := range hosts {
		c.Requests = append(c.Requests, capture.Request{Host: h, Status: 200})
	}
	return c
}

func TestFingerprintsCoverAllCMPs(t *testing.T) {
	fps := Fingerprints()
	if len(fps) != cmps.Count {
		t.Fatalf("fingerprints = %d, want %d", len(fps), cmps.Count)
	}
	seen := map[cmps.ID]bool{}
	for _, fp := range fps {
		if fp.Hostname == "" {
			t.Errorf("%s: missing hostname indicator (Table A.2)", fp.CMP)
		}
		if fp.CSSSelector == "" {
			t.Errorf("%s: missing CSS fingerprint", fp.CMP)
		}
		seen[fp.CMP] = true
	}
	for _, c := range cmps.All() {
		if !seen[c] {
			t.Errorf("no fingerprint for %s", c)
		}
	}
}

func TestTableA2Hostnames(t *testing.T) {
	// The indicator hostnames are normative (Table A.2).
	want := map[cmps.ID]string{
		cmps.OneTrust:  "cdn.cookielaw.org",
		cmps.Quantcast: "quantcast.mgr.consensu.org",
		cmps.TrustArc:  "consent.trustarc.com",
		cmps.Cookiebot: "consent.cookiebot.com",
		cmps.LiveRamp:  "cmp.choice.faktor.io",
		cmps.Crownpeak: "iabmap.evidon.com",
	}
	for c, host := range want {
		if c.Hostname() != host {
			t.Errorf("%s hostname = %q, want %q", c, c.Hostname(), host)
		}
		if cmps.ByHostname(host) != c {
			t.Errorf("reverse lookup of %q broken", host)
		}
	}
	if cmps.ByHostname("example.com") != cmps.None {
		t.Error("unknown hostnames must map to None")
	}
}

func TestDetect(t *testing.T) {
	det := Default()
	c := capWithHosts("example.com", 0,
		"www.example.com", "www.google-analytics.com", "cdn.cookielaw.org")
	got := det.Detect(c)
	if len(got) != 1 || got[0] != cmps.OneTrust {
		t.Errorf("Detect = %v", got)
	}
	if det.DetectOne(c) != cmps.OneTrust {
		t.Error("DetectOne mismatch")
	}
	none := capWithHosts("example.com", 0, "www.example.com", "cdn.jsdelivr.net")
	if len(det.Detect(none)) != 0 || det.DetectOne(none) != cmps.None {
		t.Error("trackers must not be detected as CMPs")
	}
	multi := capWithHosts("example.com", 0, "cdn.cookielaw.org", "consent.cookiebot.com")
	if len(det.Detect(multi)) != 2 {
		t.Error("multi-CMP pages must report both")
	}
}

func TestDetectMask(t *testing.T) {
	det := Default()
	multi := capWithHosts("example.com", 0,
		"www.example.com", "consent.cookiebot.com", "cdn.cookielaw.org", "consent.cookiebot.com")
	first, mask := det.DetectMask(multi)
	if first != cmps.Cookiebot {
		t.Errorf("first = %v, want Cookiebot (first in request order)", first)
	}
	wantMask := uint32(1<<uint(cmps.Cookiebot) | 1<<uint(cmps.OneTrust))
	if mask != wantMask {
		t.Errorf("mask = %b, want %b", mask, wantMask)
	}
	if first != det.DetectOne(multi) {
		t.Error("DetectMask first must agree with DetectOne")
	}
	if _, mask := det.DetectMask(capWithHosts("x.com", 0, "cdn.jsdelivr.net")); mask != 0 {
		t.Errorf("no-CMP capture: mask = %b, want 0", mask)
	}
}

// TestDetectionNoAllocs pins the allocation contract of the per-capture
// hot path: DetectOne, DetectMask, and Detect on no-match captures must
// not allocate (Record runs them under a shard lock for every capture).
func TestDetectionNoAllocs(t *testing.T) {
	det := Default()
	match := capWithHosts("example.com", 0,
		"www.example.com", "www.google-analytics.com", "cdn.cookielaw.org")
	miss := capWithHosts("example.com", 0, "www.example.com", "cdn.jsdelivr.net")
	checks := []struct {
		name string
		fn   func()
	}{
		{"DetectOne/match", func() { det.DetectOne(match) }},
		{"DetectOne/miss", func() { det.DetectOne(miss) }},
		{"DetectMask/match", func() { det.DetectMask(match) }},
		{"DetectMask/miss", func() { det.DetectMask(miss) }},
		{"Detect/miss", func() { det.Detect(miss) }},
	}
	for _, c := range checks {
		if allocs := testing.AllocsPerRun(100, c.fn); allocs != 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", c.name, allocs)
		}
	}
}

func TestDetectDOM(t *testing.T) {
	det := Default()
	c := &capture.Capture{DOM: `<div class="qc-cmp-ui">…</div>`}
	if det.DetectDOM(c) != cmps.Quantcast {
		t.Error("DOM fingerprint missed")
	}
	if det.DetectDOM(&capture.Capture{}) != cmps.None {
		t.Error("empty DOM must yield None")
	}
}

func TestHasConsentLanguage(t *testing.T) {
	yes := &capture.Capture{ScreenshotText: "We value your privacy. We and our partners…"}
	no := &capture.Capture{ScreenshotText: "Breaking news: weather tomorrow."}
	if !HasConsentLanguage(yes) || HasConsentLanguage(no) {
		t.Error("GDPR phrase matching broken")
	}
}

func TestObservationsAggregation(t *testing.T) {
	det := Default()
	obs := NewObservations(det)
	// Day 5: two captures with the CMP, one without → classified
	// OneTrust (share 2/3 ≥ 1/3).
	obs.Record(capWithHosts("a.com", 5, "cdn.cookielaw.org"))
	obs.Record(capWithHosts("a.com", 5, "cdn.cookielaw.org"))
	obs.Record(capWithHosts("a.com", 5, "www.a.com"))
	// Day 9: one of four captures has it → below the ⅓ heuristic.
	obs.Record(capWithHosts("a.com", 9, "cdn.cookielaw.org"))
	obs.Record(capWithHosts("a.com", 9, "www.a.com"))
	obs.Record(capWithHosts("a.com", 9, "www.a.com"))
	obs.Record(capWithHosts("a.com", 9, "www.a.com"))
	// Failed captures are ignored.
	obs.Record(&capture.Capture{FinalDomain: "a.com", Failed: true})

	if obs.Total != 7 {
		t.Errorf("Total = %d", obs.Total)
	}
	if obs.NumDomains() != 1 {
		t.Errorf("NumDomains = %d", obs.NumDomains())
	}
	days := obs.DayObservations("a.com")
	if len(days) != 2 {
		t.Fatalf("days = %+v", days)
	}
	if days[0].Day != 5 || days[0].CMP != cmps.OneTrust || days[0].Captures != 3 {
		t.Errorf("day 5: %+v", days[0])
	}
	if days[1].Day != 9 || days[1].CMP != cmps.None || days[1].Captures != 4 {
		t.Errorf("day 9: %+v", days[1])
	}
	// With a lower threshold the day-9 observation flips.
	loose := obs.DayObservationsWithThreshold("a.com", 0.2)
	if loose[1].CMP != cmps.OneTrust {
		t.Error("threshold override not applied")
	}
	if obs.DayObservations("unknown.com") != nil {
		t.Error("unknown domains must return nil")
	}
}

func TestObservationsMultiCMP(t *testing.T) {
	obs := NewObservations(Default())
	obs.Record(capWithHosts("a.com", 1, "cdn.cookielaw.org", "consent.trustarc.com"))
	if obs.MultiCMP != 1 {
		t.Errorf("MultiCMP = %d", obs.MultiCMP)
	}
}

func TestDailyShareDistribution(t *testing.T) {
	obs := NewObservations(Default())
	// Domain with 10/10 CMP captures on one day.
	for i := 0; i < 10; i++ {
		obs.Record(capWithHosts("high.com", 3, "consent.cookiebot.com"))
	}
	// Domain with 0/10.
	for i := 0; i < 10; i++ {
		obs.Record(capWithHosts("low.com", 3, "www.low.com"))
	}
	// Domain with 5/10 — the anomalous middle.
	for i := 0; i < 10; i++ {
		hosts := []string{"www.mid.com"}
		if i%2 == 0 {
			hosts = []string{"consent.cookiebot.com"}
		}
		obs.Record(capWithHosts("mid.com", 3, hosts...))
	}
	below, between, above := obs.DailyShareDistribution(5, 0.05, 0.95)
	if below != 1 || between != 1 || above != 1 {
		t.Errorf("distribution = %d/%d/%d, want 1/1/1", below, between, above)
	}
}
