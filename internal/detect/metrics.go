package detect

import (
	"math/bits"
	"sync/atomic"

	"repro/internal/cmps"
	"repro/internal/obs"
)

// Metrics is the detector's classification recorder: per-CMP capture
// counts and the multi-CMP overcount. A nil *Metrics (what NewMetrics
// returns for a nil registry) is the no-op recorder, so the detection
// hot paths stay allocation-free and pay a single nil check when
// telemetry is off.
type Metrics struct {
	// captures is indexed by the first detected cmps.ID (0 = none);
	// children are pre-resolved so the hot path never touches the
	// vec's map.
	captures [cmps.Count + 1]*obs.Counter
	multi    *obs.Counter
}

// NewMetrics registers the detection metric families on reg; returns
// nil (the no-op recorder) when reg is nil.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	vec := obs.NewCounterVec(reg, "detect_captures_total",
		`Classified captures by first detected CMP ("none" when no fingerprint matched).`,
		"cmp")
	m := &Metrics{
		multi: obs.NewCounter(reg, "detect_multi_cmp_total",
			"Captures matching more than one CMP fingerprint (the Section 3.5 overcount)."),
	}
	m.captures[cmps.None] = vec.With(cmps.None.String())
	for _, id := range cmps.All() {
		m.captures[id] = vec.With(id.String())
	}
	return m
}

// one books a single-result classification (DetectOne, Detect).
func (m *Metrics) one(id cmps.ID) {
	if m != nil {
		m.captures[id].Inc()
	}
}

// masked books a DetectMask classification including the overcount.
func (m *Metrics) masked(first cmps.ID, mask uint32) {
	if m == nil {
		return
	}
	m.captures[first].Inc()
	if bits.OnesCount32(mask) > 1 {
		m.multi.Inc()
	}
}

// SetMetrics attaches the recorder to the detector's classification
// paths. Call before sharing the detector across goroutines; nil
// detaches.
func (d *Detector) SetMetrics(m *Metrics) { d.m = m }

// RegisterMetrics publishes the aggregate's live state on reg,
// complementing the per-classification counters a Detector records:
// the sink's own ledger under a detect_sink_ prefix so both can share
// one registry.
func (o *Observations) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	obs.NewCounterFunc(reg, "detect_sink_recorded_total",
		"Non-failed captures aggregated by the observations sink.",
		func() int64 { return atomic.LoadInt64(&o.Total) })
	obs.NewCounterFunc(reg, "detect_sink_multi_cmp_total",
		"Aggregated captures matching more than one CMP.",
		func() int64 { return atomic.LoadInt64(&o.MultiCMP) })
	obs.NewGaugeFunc(reg, "detect_sink_domains",
		"Distinct final domains observed by the sink.",
		func() float64 { return float64(o.NumDomains()) })
}

// SetTracer attaches a tracer emitting one root "detect" span per
// recorded capture (identity: final domain and day; the classified
// CMP is a display attribute). Call before recording starts; nil
// detaches. Record stays allocation-free while no tracer is attached.
func (o *Observations) SetTracer(tr *obs.Tracer) { o.tracer = tr }
