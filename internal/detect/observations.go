package detect

import (
	"sort"
	"sync"

	"repro/internal/capture"
	"repro/internal/cmps"
	"repro/internal/simtime"
)

// Observations is a streaming capture sink that aggregates detection
// results into compact per-domain records. The social-media pipeline
// records millions of captures; only an 8-byte record per capture is
// retained, mirroring how the paper's analyses consume the capture
// database rather than raw page data.
type Observations struct {
	det *Detector

	mu      sync.Mutex
	domains map[string]*domainObs
	// MultiCMP counts captures matching more than one CMP (overcount
	// quantification, Section 3.5: 0.01% of captures).
	MultiCMP int64
	// Total counts all recorded (non-failed) captures.
	Total int64
}

// obsRec is one capture's compact detection record.
type obsRec struct {
	day int32
	cmp int8 // cmps.ID of the first detected CMP; 0 = none
}

type domainObs struct {
	recs   []obsRec
	sorted bool
}

// NewObservations returns an empty aggregate fed by the detector.
func NewObservations(det *Detector) *Observations {
	return &Observations{det: det, domains: make(map[string]*domainObs)}
}

// Record implements capture.Sink.
func (o *Observations) Record(c *capture.Capture) {
	if c.Failed || c.FinalDomain == "" {
		return
	}
	detected := o.det.Detect(c)
	var id cmps.ID
	if len(detected) > 0 {
		id = detected[0]
	}

	o.mu.Lock()
	defer o.mu.Unlock()
	o.Total++
	if len(detected) > 1 {
		o.MultiCMP++
	}
	dom := o.domains[c.FinalDomain]
	if dom == nil {
		dom = &domainObs{}
		o.domains[c.FinalDomain] = dom
	}
	dom.recs = append(dom.recs, obsRec{day: int32(c.Day), cmp: int8(id)})
	dom.sorted = false
}

// Observed reports whether the domain ever appeared as a final domain
// in the capture stream.
func (o *Observations) Observed(domain string) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	_, ok := o.domains[domain]
	return ok
}

// NumDomains returns how many distinct final domains were observed.
func (o *Observations) NumDomains() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.domains)
}

// Domains returns the observed domain names, sorted.
func (o *Observations) Domains() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]string, 0, len(o.domains))
	for d := range o.domains {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// DayObservation is a domain's classification on one observed day.
type DayObservation struct {
	Day simtime.Day
	// CMP is the classified provider for the day, or cmps.None. A day
	// is classified as CMP-using if one CMP appears in at least every
	// third capture of that day (SiteHeuristicThreshold).
	CMP cmps.ID
	// Share is the fraction of the day's captures containing the
	// classified CMP (0 for None).
	Share float64
	// Captures is the day's capture count.
	Captures int
}

// DayObservations returns a domain's classified days in ascending
// order, applying the ≥⅓-captures heuristic per day. Returns nil for
// unobserved domains.
func (o *Observations) DayObservations(domain string) []DayObservation {
	return o.DayObservationsWithThreshold(domain, SiteHeuristicThreshold)
}

// DayObservationsWithThreshold applies a custom per-day share
// threshold; used by the site-heuristic ablation.
func (o *Observations) DayObservationsWithThreshold(domain string, threshold float64) []DayObservation {
	recs := o.sortedRecs(domain)
	if recs == nil {
		return nil
	}
	var out []DayObservation
	for i := 0; i < len(recs); {
		j := i
		var counts [cmps.Count + 1]int
		for j < len(recs) && recs[j].day == recs[i].day {
			counts[recs[j].cmp]++
			j++
		}
		total := j - i
		obs := DayObservation{Day: simtime.Day(recs[i].day), Captures: total}
		best, bestCount := cmps.None, 0
		for _, id := range cmps.All() {
			if counts[id] > bestCount {
				best, bestCount = id, counts[id]
			}
		}
		if bestCount > 0 && float64(bestCount) >= threshold*float64(total) {
			obs.CMP = best
			obs.Share = float64(bestCount) / float64(total)
		}
		out = append(out, obs)
		i = j
	}
	return out
}

// sortedRecs returns the domain's records sorted by day, sorting
// lazily under the lock.
func (o *Observations) sortedRecs(domain string) []obsRec {
	o.mu.Lock()
	defer o.mu.Unlock()
	dom := o.domains[domain]
	if dom == nil {
		return nil
	}
	if !dom.sorted {
		sort.Slice(dom.recs, func(i, j int) bool { return dom.recs[i].day < dom.recs[j].day })
		dom.sorted = true
	}
	return dom.recs
}

// DailyShareDistribution reports, over all domain-days with at least
// minCaptures, how many had a CMP-capture share below lo, above hi, or
// in between. The paper reports that for 99.8% of all domains the
// daily share is consistently below 5% or above 95%.
func (o *Observations) DailyShareDistribution(minCaptures int, lo, hi float64) (below, between, above int) {
	var domains []string
	o.mu.Lock()
	for d := range o.domains {
		domains = append(domains, d)
	}
	o.mu.Unlock()
	for _, d := range domains {
		recs := o.sortedRecs(d)
		for i := 0; i < len(recs); {
			j := i
			withCMP := 0
			for j < len(recs) && recs[j].day == recs[i].day {
				if recs[j].cmp != 0 {
					withCMP++
				}
				j++
			}
			total := j - i
			i = j
			if total < minCaptures {
				continue
			}
			share := float64(withCMP) / float64(total)
			switch {
			case share < lo:
				below++
			case share > hi:
				above++
			default:
				between++
			}
		}
	}
	return below, between, above
}
