package detect

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/capture"
	"repro/internal/cmps"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// numShards is the lock-stripe count of an Observations aggregate.
// Domains hash onto shards, so concurrent recorders only contend when
// two captures land on the same stripe; 64 stripes keep the collision
// probability low for any realistic worker count.
const numShards = 64

// Observations is a streaming capture sink that aggregates detection
// results into compact per-domain records. The social-media pipeline
// records millions of captures; only an 8-byte record per capture is
// retained, mirroring how the paper's analyses consume the capture
// database rather than raw page data.
//
// Recording is safe for concurrent use and lock-striped by domain
// hash: crawl workers recording different domains do not serialize on
// a global mutex.
type Observations struct {
	det    *Detector
	tracer *obs.Tracer // nil = tracing off; see SetTracer

	shards [numShards]obsShard

	// MultiCMP counts captures matching more than one CMP (overcount
	// quantification, Section 3.5: 0.01% of captures). Updated
	// atomically; read it only after recording has quiesced (or via
	// atomic.LoadInt64 while recorders are live).
	MultiCMP int64
	// Total counts all recorded (non-failed) captures. Updated
	// atomically, like MultiCMP.
	Total int64
}

// obsShard is one lock stripe: a mutex plus the domains hashing onto
// it. The pad spaces shards a cache line apart so that stripes used by
// different workers do not false-share.
type obsShard struct {
	mu      sync.Mutex
	domains map[string]*domainObs
	_       [40]byte
}

// Rec is one capture's compact detection record: the day it was taken
// and the first detected CMP (0 = none). Eight bytes per capture is all
// the longitudinal analyses retain; the incremental fold layer
// (internal/analysis.PresenceFold) accumulates the same records so the
// batch and streaming paths classify through one implementation.
type Rec struct {
	Day int32
	CMP int8 // cmps.ID of the first detected CMP; 0 = none
}

type domainObs struct {
	recs   []Rec
	sorted bool
}

// NewObservations returns an empty aggregate fed by the detector.
func NewObservations(det *Detector) *Observations {
	o := &Observations{det: det}
	for i := range o.shards {
		o.shards[i].domains = make(map[string]*domainObs)
	}
	return o
}

// shard returns the lock stripe responsible for the domain (FNV-1a,
// inlined to keep Record allocation-free).
func (o *Observations) shard(domain string) *obsShard {
	h := uint32(2166136261)
	for i := 0; i < len(domain); i++ {
		h ^= uint32(domain[i])
		h *= 16777619
	}
	return &o.shards[h%numShards]
}

// Record implements capture.Sink. It performs no allocations beyond
// the amortized growth of the per-domain record slice.
func (o *Observations) Record(c *capture.Capture) {
	if c.Failed || c.FinalDomain == "" {
		return
	}
	var span *obs.Span
	if o.tracer != nil {
		span = o.tracer.Start("detect", obs.A("domain", c.FinalDomain), obs.A("day", c.Day.String()))
	}
	id, mask := o.det.DetectMask(c)
	atomic.AddInt64(&o.Total, 1)
	if bits.OnesCount32(mask) > 1 {
		atomic.AddInt64(&o.MultiCMP, 1)
	}
	sh := o.shard(c.FinalDomain)
	sh.mu.Lock()
	dom := sh.domains[c.FinalDomain]
	if dom == nil {
		dom = &domainObs{}
		sh.domains[c.FinalDomain] = dom
	}
	dom.recs = append(dom.recs, Rec{Day: int32(c.Day), CMP: int8(id)})
	dom.sorted = false
	sh.mu.Unlock()
	if span != nil {
		span.Attr("cmp", id.String())
		span.End()
	}
}

// Observed reports whether the domain ever appeared as a final domain
// in the capture stream.
func (o *Observations) Observed(domain string) bool {
	sh := o.shard(domain)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.domains[domain]
	return ok
}

// NumDomains returns how many distinct final domains were observed.
func (o *Observations) NumDomains() int {
	n := 0
	for i := range o.shards {
		sh := &o.shards[i]
		sh.mu.Lock()
		n += len(sh.domains)
		sh.mu.Unlock()
	}
	return n
}

// Domains returns the observed domain names, sorted.
func (o *Observations) Domains() []string {
	var out []string
	for i := range o.shards {
		sh := &o.shards[i]
		sh.mu.Lock()
		for d := range sh.domains {
			out = append(out, d)
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// DayObservation is a domain's classification on one observed day.
type DayObservation struct {
	Day simtime.Day
	// CMP is the classified provider for the day, or cmps.None. A day
	// is classified as CMP-using if one CMP appears in at least every
	// third capture of that day (SiteHeuristicThreshold).
	CMP cmps.ID
	// Share is the fraction of the day's captures containing the
	// classified CMP (0 for None).
	Share float64
	// Captures is the day's capture count.
	Captures int
}

// DayObservations returns a domain's classified days in ascending
// order, applying the ≥⅓-captures heuristic per day. Returns nil for
// unobserved domains.
func (o *Observations) DayObservations(domain string) []DayObservation {
	return o.DayObservationsWithThreshold(domain, SiteHeuristicThreshold)
}

// DayObservationsWithThreshold applies a custom per-day share
// threshold; used by the site-heuristic ablation.
func (o *Observations) DayObservationsWithThreshold(domain string, threshold float64) []DayObservation {
	return ClassifyRecs(o.sortedRecs(domain), threshold)
}

// ClassifyRecs aggregates a domain's detection records (sorted by day)
// into classified day observations, applying the per-day share
// threshold (pass SiteHeuristicThreshold for the paper's ≥⅓ rule).
// The classification is count-based per day, so any record order
// within a day yields the same result; ties between CMPs break in
// cmps.All order. This is the single day-classification
// implementation, shared by the striped Observations aggregate and the
// incremental presence fold.
func ClassifyRecs(recs []Rec, threshold float64) []DayObservation {
	if recs == nil {
		return nil
	}
	var out []DayObservation
	for i := 0; i < len(recs); {
		j := i
		var counts [cmps.Count + 1]int
		for j < len(recs) && recs[j].Day == recs[i].Day {
			counts[recs[j].CMP]++
			j++
		}
		total := j - i
		obs := DayObservation{Day: simtime.Day(recs[i].Day), Captures: total}
		best, bestCount := cmps.None, 0
		for _, id := range cmps.All() {
			if counts[id] > bestCount {
				best, bestCount = id, counts[id]
			}
		}
		if bestCount > 0 && float64(bestCount) >= threshold*float64(total) {
			obs.CMP = best
			obs.Share = float64(bestCount) / float64(total)
		}
		out = append(out, obs)
		i = j
	}
	return out
}

// sortedRecs returns the domain's records sorted by day, sorting
// lazily under the shard lock.
func (o *Observations) sortedRecs(domain string) []Rec {
	sh := o.shard(domain)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	dom := sh.domains[domain]
	if dom == nil {
		return nil
	}
	if !dom.sorted {
		sort.Slice(dom.recs, func(i, j int) bool { return dom.recs[i].Day < dom.recs[j].Day })
		dom.sorted = true
	}
	return dom.recs
}

// DailyShareDistribution reports, over all domain-days with at least
// minCaptures, how many had a CMP-capture share below lo, above hi, or
// in between. The paper reports that for 99.8% of all domains the
// daily share is consistently below 5% or above 95%.
func (o *Observations) DailyShareDistribution(minCaptures int, lo, hi float64) (below, between, above int) {
	for _, d := range o.Domains() {
		recs := o.sortedRecs(d)
		for i := 0; i < len(recs); {
			j := i
			withCMP := 0
			for j < len(recs) && recs[j].Day == recs[i].Day {
				if recs[j].CMP != 0 {
					withCMP++
				}
				j++
			}
			total := j - i
			i = j
			if total < minCaptures {
				continue
			}
			share := float64(withCMP) / float64(total)
			switch {
			case share < lo:
				below++
			case share > hi:
				above++
			default:
				between++
			}
		}
	}
	return below, between, above
}
