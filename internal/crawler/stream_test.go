package crawler

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/simtime"
	"repro/internal/socialfeed"
	"repro/internal/webworld"
)

func TestStreamPlatformProcessesAll(t *testing.T) {
	w := crawlWorld(t)
	feed := socialfeed.New(w, socialfeed.Config{Seed: 1, SharesPerDay: 300})
	p := NewStreamPlatform(w, StreamConfig{Seed: 1, Workers: 8, PerDomainDelay: time.Millisecond})
	store := capture.NewMemStore()

	ctx := context.Background()
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Run(ctx, store)
	}()

	submitted := 0
	for day := simtime.Day(0); day < 3; day++ {
		for _, s := range feed.Day(day) {
			if err := p.Submit(ctx, day, s); err != nil {
				t.Errorf("submit: %v", err)
			}
			submitted++
		}
	}
	p.Close()
	<-done

	if int(p.Captures()) != submitted {
		t.Errorf("captures = %d, submitted %d", p.Captures(), submitted)
	}
	if store.Len() != submitted {
		t.Errorf("store = %d", store.Len())
	}
}

func TestStreamPlatformCancellation(t *testing.T) {
	w := crawlWorld(t)
	feed := socialfeed.New(w, socialfeed.Config{Seed: 2, SharesPerDay: 500})
	// A long per-domain delay makes in-flight work slow enough that
	// cancellation lands mid-stream.
	p := NewStreamPlatform(w, StreamConfig{Seed: 2, Workers: 2, PerDomainDelay: 5 * time.Millisecond, QueueDepth: 64})
	store := capture.NewMemStore()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Run(ctx, store)
	}()

	shares := feed.Day(0)
	var submitErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for day := simtime.Day(0); ; day++ {
			for _, s := range shares {
				if err := p.Submit(ctx, day, s); err != nil {
					submitErr = err
					return
				}
			}
		}
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop after cancellation")
	}
	if submitErr != context.Canceled {
		t.Errorf("submit error = %v, want context.Canceled", submitErr)
	}
	if p.Captures() == 0 {
		t.Error("some captures should complete before cancellation")
	}
}

func TestStreamPlatformPoliteness(t *testing.T) {
	w := crawlWorld(t)
	var d *webworld.Domain
	for _, cand := range w.Domains() {
		if !cand.Unreachable && !cand.NeverShared && cand.RedirectTo == "" {
			d = cand
			break
		}
	}
	if d == nil {
		t.Skip("no crawlable domain")
	}
	const delay = 20 * time.Millisecond
	const hits = 5
	p := NewStreamPlatform(w, StreamConfig{Seed: 3, Workers: 4, PerDomainDelay: delay})
	store := capture.NewMemStore()
	ctx := context.Background()
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Run(ctx, store)
	}()
	start := time.Now()
	for i := 0; i < hits; i++ {
		share := socialfeed.Share{
			URL:    "https://www." + d.Name + d.SubsitePath(i),
			Domain: d.Name,
		}
		if err := p.Submit(ctx, 100, share); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	<-done
	elapsed := time.Since(start)
	// Five same-domain hits must serialize: at least 4 politeness gaps.
	if min := time.Duration(hits-1) * delay; elapsed < min {
		t.Errorf("elapsed %v < %v: politeness not enforced", elapsed, min)
	}
	if p.Captures() != hits {
		t.Errorf("captures = %d", p.Captures())
	}
}
