package crawler

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"time"

	"repro/internal/browser"
	"repro/internal/capture"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/socialfeed"
	"repro/internal/webworld"
)

// StreamPlatform is the continuously-running variant of the pipeline
// in Figure 3: URLs flow from the social-media ingestor through a
// bounded capture queue into browser worker pools, with per-domain
// politeness limits and graceful cancellation. CrawlDay/CrawlWindow
// batch per day for reproducible analysis runs; StreamPlatform is the
// deployment architecture — "URLs are visited once within a couple of
// minutes after submission".
//
// The deployment path is hardened for the hostile substrate the paper
// describes (~9% of toplist loads failed, Section 3.5): transient
// failures are retried under StreamConfig.Retry with capped
// exponential backoff and deterministic jitter, per-registrable-domain
// circuit breakers stop hammering struggling sites, and every share
// that cannot be captured is accounted for — routed to the dead-letter
// sink with a reason, never silently dropped. Stats() exposes the full
// per-outcome ledger; Captures() + DeadLettered + Dropped always
// equals the number of accepted submissions.
type StreamPlatform struct {
	cfg     StreamConfig
	world   *webworld.World
	visitor browser.Visitor
	src     *rng.Source
	vsrc    *rng.Source

	// queue is the bounded capture queue; ingestion blocks when the
	// crawlers fall behind (backpressure instead of unbounded memory).
	queue chan queued

	breakers *resilience.BreakerSet
	dead     resilience.DeadLetterSink
	memDead  *resilience.MemDeadLetter // when dead is the default sink

	mu       sync.Mutex
	cond     *sync.Cond // signals inflight-submit drain during shutdown
	lastHit  map[string]time.Time
	stats    StreamStats
	captures int64
	inflight int  // Submit calls between admission and enqueue/abort
	stopped  bool // Run finished; no further Submits are accepted
}

type queued struct {
	share socialfeed.Share
	day   simtime.Day
}

// StreamConfig parameterizes the streaming pipeline.
type StreamConfig struct {
	Seed uint64
	// Workers is the number of concurrent browser workers.
	Workers int
	// QueueDepth bounds the capture queue (default 1024).
	QueueDepth int
	// PerDomainDelay is the politeness interval between captures of
	// the same registrable domain (default 10ms of real time at
	// simulation speed; the paper's platform enforces its one-hour
	// rule at the feed level, this guards the crawler itself).
	PerDomainDelay time.Duration
	// Retry is the transient-failure retry policy. The zero value
	// disables retrying: every capture, failed or not, is recorded on
	// its first attempt (the historical behaviour).
	Retry resilience.RetryPolicy
	// Breaker configures per-registrable-domain circuit breakers; a
	// zero Threshold disables them.
	Breaker resilience.BreakerConfig
	// Visitor overrides the substrate the workers' browsers load from
	// (chaos fault injection); nil means the world itself.
	Visitor browser.Visitor
	// DeadLetter receives shares that exhaust their chances; nil
	// installs an in-memory sink readable via DeadLetters().
	DeadLetter resilience.DeadLetterSink
	// Metrics receives per-visit telemetry (latency histogram, outcome
	// and dead-letter counters); nil is the no-op recorder. See also
	// StreamPlatform.RegisterMetrics for the live-state gauges.
	Metrics *StreamMetrics
	// Tracer records visit/retry/store spans for each processed share;
	// nil disables tracing.
	Tracer *obs.Tracer
	// TraceContext, when valid, makes every visit span a child of this
	// remote parent — the fleet worker passes its lease-scoped span so
	// visits stitch into the fleetd-rooted trace.
	TraceContext obs.SpanContext
	// Now is the clock behind politeness scheduling and visit timing,
	// injectable for deterministic tests — the same pattern as
	// resilience.BreakerConfig.Now (default time.Now).
	Now func() time.Time
}

// StreamStats is the pipeline's per-outcome ledger. Succeeded +
// FailedRecorded + DeadLettered + Dropped == Submitted once Run has
// returned; Cancelled and BreakerOpen break down DeadLettered by
// cause.
type StreamStats struct {
	// Submitted counts accepted Submit calls.
	Submitted int64
	// Succeeded counts recorded captures that produced a usable page.
	Succeeded int64
	// FailedRecorded counts recorded captures with terminal failures
	// (the platform records unsuccessful captures too).
	FailedRecorded int64
	// Retries counts retry loads beyond each share's first attempt.
	Retries int64
	// DeadLettered counts shares routed to the dead-letter sink.
	DeadLettered int64
	// Dropped counts shares still queued when Run returned (submitted
	// during shutdown); they are also forwarded to the dead-letter
	// sink with ReasonShutdownDrop but counted separately.
	Dropped int64
	// Cancelled counts dead-letters caused by cancellation landing
	// mid-politeness-wait or mid-backoff.
	Cancelled int64
	// BreakerOpen counts dead-letters caused by an open domain
	// breaker.
	BreakerOpen int64
	// BreakersOpenNow is the number of currently-open breakers.
	BreakersOpenNow int
}

// ErrStopped is returned by Submit after Run has finished.
var ErrStopped = errors.New("crawler: stream platform stopped")

// NewStreamPlatform wires the streaming pipeline.
func NewStreamPlatform(w *webworld.World, cfg StreamConfig) *StreamPlatform {
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.PerDomainDelay <= 0 {
		cfg.PerDomainDelay = 10 * time.Millisecond
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	p := &StreamPlatform{
		cfg:      cfg,
		world:    w,
		visitor:  cfg.Visitor,
		src:      rng.New(cfg.Seed).Derive("stream-crawler"),
		vsrc:     VantageSource(cfg.Seed),
		queue:    make(chan queued, cfg.QueueDepth),
		breakers: resilience.NewBreakerSet(cfg.Breaker),
		dead:     cfg.DeadLetter,
		lastHit:  make(map[string]time.Time),
	}
	if p.visitor == nil {
		p.visitor = w
	}
	if p.dead == nil {
		p.memDead = resilience.NewMemDeadLetter()
		p.dead = p.memDead
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Submit enqueues one share for capture, blocking when the queue is
// full (backpressure) and failing fast when ctx is cancelled or the
// pipeline has stopped.
func (p *StreamPlatform) Submit(ctx context.Context, day simtime.Day, s socialfeed.Share) error {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		if err := ctx.Err(); err != nil {
			return err
		}
		return ErrStopped
	}
	p.inflight++
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.inflight--
		p.cond.Broadcast()
		p.mu.Unlock()
	}()
	select {
	case p.queue <- queued{share: s, day: day}:
		p.mu.Lock()
		p.stats.Submitted++
		p.mu.Unlock()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Captures returns the number of captures recorded so far.
func (p *StreamPlatform) Captures() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.captures
}

// Stats snapshots the outcome ledger.
func (p *StreamPlatform) Stats() StreamStats {
	p.mu.Lock()
	st := p.stats
	p.mu.Unlock()
	st.BreakersOpenNow = p.breakers.OpenCount()
	return st
}

// DeadLetters returns the default in-memory dead-letter sink, or nil
// when StreamConfig.DeadLetter replaced it.
func (p *StreamPlatform) DeadLetters() *resilience.MemDeadLetter { return p.memDead }

// politenessReserve claims the domain's next capture slot under the
// configured clock and returns how long the caller must wait for it.
// Reserving before waiting makes concurrent workers honouring the same
// domain serialize correctly, and keeping the computation pure against
// StreamConfig.Now makes the schedule testable without sleeping.
func (p *StreamPlatform) politenessReserve(domain string) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.cfg.Now()
	next := p.lastHit[domain].Add(p.cfg.PerDomainDelay)
	if next.Before(now) {
		next = now
	}
	p.lastHit[domain] = next
	return next.Sub(now)
}

// politenessWait blocks until the domain may be hit again, respecting
// cancellation.
func (p *StreamPlatform) politenessWait(ctx context.Context, domain string) error {
	d := p.politenessReserve(domain)
	if d <= 0 {
		return nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// sleepCtx waits d, cut short by cancellation.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// record sends a capture to the sink and books the outcome; the store
// span (a child of the visit span) brackets the sink write.
func (p *StreamPlatform) record(sink capture.Sink, c *capture.Capture, ok bool, visit *obs.Span) {
	if visit != nil {
		store := visit.Start("store")
		sink.Record(c)
		store.End()
	} else {
		sink.Record(c)
	}
	p.mu.Lock()
	p.captures++
	if ok {
		p.stats.Succeeded++
	} else {
		p.stats.FailedRecorded++
	}
	p.mu.Unlock()
	p.cfg.Metrics.recordVisit(ok)
}

// deadLetter books a share that leaves the pipeline without a capture.
func (p *StreamPlatform) deadLetter(q queued, attempts int, reason, lastErr string) {
	p.dead.Add(resilience.DeadEntry{
		URL:      q.share.URL,
		Domain:   q.share.Domain,
		Day:      q.day,
		Attempts: attempts,
		Reason:   reason,
		LastErr:  lastErr,
	})
	p.mu.Lock()
	if reason == resilience.ReasonShutdownDrop {
		p.stats.Dropped++
	} else {
		p.stats.DeadLettered++
		switch reason {
		case resilience.ReasonCancelled:
			p.stats.Cancelled++
		case resilience.ReasonBreakerOpen:
			p.stats.BreakerOpen++
		}
	}
	p.mu.Unlock()
	p.cfg.Metrics.deadLetter(reason)
}

// process runs one share to a terminal outcome: a recorded capture
// (possibly after retries) or a dead-letter entry. Exactly one of the
// two happens per dequeued share.
func (p *StreamPlatform) process(ctx context.Context, b *browser.Browser, sink capture.Sink, q queued) {
	domain := q.share.Domain
	var visit *obs.Span
	if p.cfg.Tracer != nil {
		visit = p.cfg.Tracer.StartRemote("visit", p.cfg.TraceContext,
			obs.A("url", q.share.URL), obs.A("day", q.day.String()))
		defer visit.End()
	}
	if m := p.cfg.Metrics; m != nil {
		start := p.cfg.Now()
		defer func() { m.VisitSeconds.Observe(p.cfg.Now().Sub(start).Seconds()) }()
	}
	if !p.breakers.Allow(domain) {
		visit.Attr("outcome", "dead-letter")
		p.deadLetter(q, 0, resilience.ReasonBreakerOpen, "")
		return
	}
	maxAttempts := p.cfg.Retry.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	var lastErr string
	for attempt := 1; ; attempt++ {
		if err := p.politenessWait(ctx, domain); err != nil {
			// Cancelled mid-wait: account for the share instead of
			// losing it.
			visit.Attr("outcome", "dead-letter")
			p.deadLetter(q, attempt-1, resilience.ReasonCancelled, lastErr)
			return
		}
		vantage := PickVantage(p.vsrc, q.share.URL, q.day)
		var retry *obs.Span
		if visit != nil && attempt > 1 {
			retry = visit.Start("retry", obs.A("n", strconv.Itoa(attempt)))
		}
		c := b.Load(q.share.URL, q.day, vantage)
		retry.End()
		switch resilience.ClassifyCapture(c) {
		case resilience.Success:
			p.breakers.Success(domain)
			visit.Attr("outcome", "success")
			p.record(sink, c, true, visit)
			return
		case resilience.Terminal:
			p.breakers.Failure(domain)
			visit.Attr("outcome", "failed")
			p.record(sink, c, false, visit)
			return
		default: // Retryable
			p.breakers.Failure(domain)
			lastErr = c.Error
			if attempt >= maxAttempts {
				if maxAttempts == 1 {
					// Retries disabled: keep the record-everything
					// behaviour of the batch pipeline.
					visit.Attr("outcome", "failed")
					p.record(sink, c, false, visit)
				} else {
					visit.Attr("outcome", "dead-letter")
					p.deadLetter(q, attempt, resilience.ReasonBudgetExhausted, lastErr)
				}
				return
			}
			if !p.breakers.Allow(domain) {
				// Our own failures opened the domain's breaker.
				visit.Attr("outcome", "dead-letter")
				p.deadLetter(q, attempt, resilience.ReasonBreakerOpen, lastErr)
				return
			}
			p.mu.Lock()
			p.stats.Retries++
			p.mu.Unlock()
			p.cfg.Metrics.retry()
			backoff := p.cfg.Retry.Backoff(p.src, attempt, q.share.URL, q.day.String())
			if err := sleepCtx(ctx, backoff); err != nil {
				visit.Attr("outcome", "dead-letter")
				p.deadLetter(q, attempt, resilience.ReasonCancelled, lastErr)
				return
			}
		}
	}
}

// Run starts the worker pool and processes the queue until ctx is
// cancelled AND the queue has been drained of everything submitted
// before cancellation, or until Close is called after the final
// Submit. It blocks until all workers exit; any share still queued at
// that point (a Submit racing shutdown) is counted as Dropped and
// forwarded to the dead-letter sink rather than lost.
func (p *StreamPlatform) Run(ctx context.Context, sink capture.Sink) {
	var wg sync.WaitGroup
	for i := 0; i < p.cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := browser.New(p.visitor, browser.Options{})
			for {
				var q queued
				var ok bool
				select {
				case q, ok = <-p.queue:
					if !ok {
						return
					}
				case <-ctx.Done():
					// Drain what is already queued, then stop.
					select {
					case q, ok = <-p.queue:
						if !ok {
							return
						}
					default:
						return
					}
				}
				p.process(ctx, b, sink, q)
			}
		}()
	}
	wg.Wait()

	// Shutdown sweep: refuse new Submits, wait out the ones already
	// admitted, then account for anything they managed to enqueue.
	// Draining interleaves with the wait so a Submit blocked on a full
	// queue can land its share (which we dead-letter) and return.
	p.mu.Lock()
	p.stopped = true
	for p.inflight > 0 {
		p.mu.Unlock()
		p.drainQueue()
		p.mu.Lock()
		if p.inflight == 0 {
			break
		}
		p.cond.Wait()
	}
	p.mu.Unlock()
	p.drainQueue()
}

// drainQueue empties whatever is queued right now, dead-lettering each
// share as a shutdown drop.
func (p *StreamPlatform) drainQueue() {
	for {
		select {
		case q, ok := <-p.queue:
			if !ok {
				return
			}
			p.deadLetter(q, 0, resilience.ReasonShutdownDrop, "")
		default:
			return
		}
	}
}

// Close signals that no further Submit calls will happen; Run returns
// once the remaining queue drains.
func (p *StreamPlatform) Close() { close(p.queue) }
