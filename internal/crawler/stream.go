package crawler

import (
	"context"
	"sync"
	"time"

	"repro/internal/browser"
	"repro/internal/capture"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/socialfeed"
	"repro/internal/webworld"
)

// StreamPlatform is the continuously-running variant of the pipeline
// in Figure 3: URLs flow from the social-media ingestor through a
// bounded capture queue into browser worker pools, with per-domain
// politeness limits and graceful cancellation. CrawlDay/CrawlWindow
// batch per day for reproducible analysis runs; StreamPlatform is the
// deployment architecture — "URLs are visited once within a couple of
// minutes after submission".
type StreamPlatform struct {
	cfg   StreamConfig
	world *webworld.World
	src   *rng.Source

	// queue is the bounded capture queue; ingestion blocks when the
	// crawlers fall behind (backpressure instead of unbounded memory).
	queue chan queued

	mu       sync.Mutex
	lastHit  map[string]time.Time
	captures int64
}

type queued struct {
	share socialfeed.Share
	day   simtime.Day
}

// StreamConfig parameterizes the streaming pipeline.
type StreamConfig struct {
	Seed uint64
	// Workers is the number of concurrent browser workers.
	Workers int
	// QueueDepth bounds the capture queue (default 1024).
	QueueDepth int
	// PerDomainDelay is the politeness interval between captures of
	// the same registrable domain (default 10ms of real time at
	// simulation speed; the paper's platform enforces its one-hour
	// rule at the feed level, this guards the crawler itself).
	PerDomainDelay time.Duration
}

// NewStreamPlatform wires the streaming pipeline.
func NewStreamPlatform(w *webworld.World, cfg StreamConfig) *StreamPlatform {
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.PerDomainDelay <= 0 {
		cfg.PerDomainDelay = 10 * time.Millisecond
	}
	return &StreamPlatform{
		cfg:     cfg,
		world:   w,
		src:     rng.New(cfg.Seed).Derive("stream-crawler"),
		queue:   make(chan queued, cfg.QueueDepth),
		lastHit: make(map[string]time.Time),
	}
}

// Submit enqueues one share for capture, blocking when the queue is
// full (backpressure) and failing fast when ctx is cancelled.
func (p *StreamPlatform) Submit(ctx context.Context, day simtime.Day, s socialfeed.Share) error {
	select {
	case p.queue <- queued{share: s, day: day}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Captures returns the number of captures performed so far.
func (p *StreamPlatform) Captures() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.captures
}

// politenessWait blocks until the domain may be hit again, respecting
// cancellation. It reserves the next slot before waiting so concurrent
// workers honouring the same domain serialize correctly.
func (p *StreamPlatform) politenessWait(ctx context.Context, domain string) error {
	p.mu.Lock()
	now := time.Now()
	next := p.lastHit[domain].Add(p.cfg.PerDomainDelay)
	if next.Before(now) {
		next = now
	}
	p.lastHit[domain] = next
	p.mu.Unlock()

	d := time.Until(next)
	if d <= 0 {
		return nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Run starts the worker pool and processes the queue until ctx is
// cancelled AND the queue has been drained of everything submitted
// before cancellation, or until Close is called after the final
// Submit. It blocks until all workers exit.
func (p *StreamPlatform) Run(ctx context.Context, sink capture.Sink) {
	var wg sync.WaitGroup
	for i := 0; i < p.cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := browser.New(p.world, browser.Options{})
			for {
				var q queued
				var ok bool
				select {
				case q, ok = <-p.queue:
					if !ok {
						return
					}
				case <-ctx.Done():
					// Drain what is already queued, then stop.
					select {
					case q, ok = <-p.queue:
						if !ok {
							return
						}
					default:
						return
					}
				}
				if err := p.politenessWait(ctx, q.share.Domain); err != nil {
					// Cancelled mid-wait: drop the capture.
					continue
				}
				vantage := capture.USCloud
				if p.src.Bool(0.5, "vantage", q.share.URL, q.day.String()) {
					vantage = capture.EUCloud
				}
				c := b.Load(q.share.URL, q.day, vantage)
				sink.Record(c)
				p.mu.Lock()
				p.captures++
				p.mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

// Close signals that no further Submit calls will happen; Run returns
// once the remaining queue drains.
func (p *StreamPlatform) Close() { close(p.queue) }
