package crawler

import (
	"repro/internal/capture"
	"repro/internal/rng"
	"repro/internal/simtime"
)

// Vantage assignment for the social-media pipeline: each URL is crawled
// from the US or EU cloud with equal probability ("each URL is randomly
// assigned ... 50% of URLs are crawled from within the EU",
// Section 3.4). The draw is keyed by (URL, day) on a dedicated rng
// stream, so the assignment is a pure function of the root seed and the
// share — independent of worker count, submission order, retries, and
// of which component performs the crawl. CrawlDay, StreamPlatform, and
// fleet workers all draw through these two helpers, which is what lets
// a distributed fleet reproduce a single-process run byte for byte.

// VantageSource derives the dedicated vantage stream for a root seed.
// Every pipeline that wants to agree on vantage assignment must derive
// its source here rather than reusing a component-private stream.
func VantageSource(seed uint64) *rng.Source {
	return rng.New(seed).Derive("vantage")
}

// PickVantage assigns the capture vantage for one share.
func PickVantage(src *rng.Source, url string, day simtime.Day) capture.Vantage {
	if src.Bool(0.5, "vantage", url, day.String()) {
		return capture.EUCloud
	}
	return capture.USCloud
}
