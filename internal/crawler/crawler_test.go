package crawler

import (
	"testing"

	"repro/internal/capture"
	"repro/internal/simtime"
	"repro/internal/socialfeed"
	"repro/internal/webworld"
)

func crawlWorld(t *testing.T) *webworld.World {
	t.Helper()
	return webworld.New(webworld.Config{Seed: 1, Domains: 3_000})
}

func TestCrawlDayVantageSplit(t *testing.T) {
	w := crawlWorld(t)
	feed := socialfeed.New(w, socialfeed.Config{Seed: 1, SharesPerDay: 2_000})
	p := NewPlatform(w, Config{Seed: 1, Workers: 8})
	store := capture.NewMemStore()
	for day := simtime.Day(0); day < 3; day++ {
		p.CrawlDay(day, feed.Day(day), store)
	}
	us, eu := 0, 0
	for _, c := range store.All() {
		switch c.Vantage.Name {
		case capture.USCloud.Name:
			us++
		case capture.EUCloud.Name:
			eu++
		default:
			t.Fatalf("unexpected vantage %q", c.Vantage.Name)
		}
		if !c.Vantage.Cloud {
			t.Fatal("social crawls must come from cloud address space")
		}
	}
	total := us + eu
	if total == 0 {
		t.Fatal("no captures")
	}
	usShare := float64(us) / float64(total)
	if usShare < 0.45 || usShare > 0.55 {
		t.Errorf("US share = %.2f, want ≈0.50 (paper: 50%% of crawls from the EU)", usShare)
	}
	if p.Captures != int64(total) {
		t.Errorf("Captures counter = %d, stored %d", p.Captures, total)
	}
}

func TestCrawlDayDeterministicOrder(t *testing.T) {
	w := crawlWorld(t)
	run := func() []string {
		feed := socialfeed.New(w, socialfeed.Config{Seed: 2, SharesPerDay: 300})
		p := NewPlatform(w, Config{Seed: 2, Workers: 4})
		store := capture.NewMemStore()
		p.CrawlDay(0, feed.Day(0), store)
		var out []string
		for _, c := range store.All() {
			out = append(out, c.SeedURL+"|"+c.Vantage.Name)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("capture %d differs despite identical seeds", i)
		}
	}
}

func TestCrawlWindowProgress(t *testing.T) {
	w := crawlWorld(t)
	feed := socialfeed.New(w, socialfeed.Config{Seed: 3, SharesPerDay: 50})
	p := NewPlatform(w, Config{Seed: 3})
	store := capture.NewMemStore()
	days := 0
	p.CrawlWindow(feed, 0, 4, store, func(day simtime.Day, captures int64) { days++ })
	if days != 5 {
		t.Errorf("progress callbacks = %d, want 5", days)
	}
}

func TestSeedProbe(t *testing.T) {
	w := crawlWorld(t)
	var sawHTTPS, sawApex, sawUnreachable bool
	for _, d := range w.Domains()[:1000] {
		probe := SeedProbe(w, d.Name)
		switch probe.Outcome {
		case ProbeHTTPSWWW:
			sawHTTPS = true
			if probe.SeedURL != "https://www."+d.Name+"/" {
				t.Errorf("seed URL %q", probe.SeedURL)
			}
		case ProbeHTTPApex:
			sawApex = true
			if probe.SeedURL != "http://"+d.Name+"/" {
				t.Errorf("seed URL %q", probe.SeedURL)
			}
		case ProbeUnreachable:
			sawUnreachable = true
			if probe.SeedURL != "" {
				t.Error("unreachable probes must not yield a seed URL")
			}
		}
	}
	if !sawHTTPS || !sawApex || !sawUnreachable {
		t.Errorf("probe outcome coverage: https=%v apex=%v unreachable=%v",
			sawHTTPS, sawApex, sawUnreachable)
	}
	if SeedProbe(w, "missing.example").Outcome != ProbeUnreachable {
		t.Error("unknown domains must probe unreachable")
	}
}

func TestToplistCampaign(t *testing.T) {
	w := crawlWorld(t)
	var domains []string
	for _, d := range w.Domains()[:300] {
		domains = append(domains, d.Name)
	}
	c := &Campaign{World: w, Domains: domains, Day: simtime.Table1Snapshot}
	res := c.Run()
	if len(res.Probes) != 300 {
		t.Fatalf("probes = %d", len(res.Probes))
	}
	configs := ToplistConfigs()
	if len(configs) != 6 {
		t.Fatalf("want the six Table 1 configurations, got %d", len(configs))
	}
	keys := map[string]bool{}
	for _, tc := range configs {
		key := ConfigKey(tc)
		if keys[key] {
			t.Fatalf("duplicate config key %q", key)
		}
		keys[key] = true
		store := res.Stores[key]
		if store == nil {
			t.Fatalf("missing store for %q", key)
		}
		if store.Len() == 0 {
			t.Errorf("store %q empty", key)
		}
		// Toplist crawls store the DOM for non-failed captures.
		for _, cap := range store.All() {
			if !cap.Failed && cap.Status == 200 && cap.DOM == "" {
				t.Errorf("%s: toplist capture without DOM", key)
				break
			}
		}
	}
	// Unreachable domains are probed but produce no captures.
	unreachable := 0
	for _, p := range res.Probes {
		if p.Outcome == ProbeUnreachable {
			unreachable++
		}
	}
	want := (300 - unreachable) // per config
	for key, store := range res.Stores {
		if store.Len() != want {
			t.Errorf("%s: %d captures, want %d", key, store.Len(), want)
		}
	}
}

func TestProbeOutcomeString(t *testing.T) {
	for _, o := range []ProbeOutcome{ProbeHTTPSWWW, ProbeHTTPWWW, ProbeHTTPApex, ProbeUnreachable} {
		if o.String() == "" {
			t.Error("empty outcome name")
		}
	}
}
